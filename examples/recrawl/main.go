// recrawl demonstrates the paper's dynamic setting (§4.1, §4.3): a
// crawler keeps discovering pages, and the distributed rankers re-rank
// each growing snapshot warm-started from their previous state. It also
// verifies the recrawl-determinism property behind §4.1's partitioning
// argument: a page keeps its ranker across snapshots under site
// hashing.
//
//	go run ./examples/recrawl
package main

import (
	"fmt"
	"log"

	"p2prank/internal/core"
	"p2prank/internal/crawler"
	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
)

func main() {
	// The "true web" the crawler explores.
	web, err := core.GenerateCrawl(12000, 3)
	if err != nil {
		log.Fatal(err)
	}
	cr, err := crawler.New(web, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Crawl in four batches, snapshotting after each.
	var phases []engine.Phase
	var prevToWeb []int32
	for !cr.Done() {
		cr.Crawl(3000)
		snap, toWeb, err := cr.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		ph := engine.Phase{Graph: snap}
		if prevToWeb != nil {
			ph.CarryOver = crawler.CarryOver(prevToWeb, toWeb)
		}
		phases = append(phases, ph)
		prevToWeb = toWeb
	}
	fmt.Printf("crawled %d pages in %d snapshots\n", web.NumPages(), len(phases))

	cfg := engine.Config{
		Params:       dprcore.Params{Alg: dprcore.DPR1, T1: 5, T2: 5},
		K:            8,
		MaxTime:      500,
		SampleEvery:  1,
		TargetRelErr: 1e-7,
	}
	results, err := engine.RunIncremental(cfg, phases)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nphase  pages  internal-links  first-sample-err  converged-at")
	for i, res := range results {
		g := phases[i].Graph
		first := 1.0
		if len(res.Samples) > 0 {
			first = res.Samples[0].RelErr
		}
		fmt.Printf("%5d  %5d  %14d  %16.2e  %12.0f\n",
			i, g.NumPages(), g.NumInternalLinks(), first, res.ConvergedAt)
	}

	// Compare against cold-starting the final snapshot from scratch.
	coldCfg := cfg
	coldCfg.Graph = phases[len(phases)-1].Graph
	cold, err := engine.Run(coldCfg)
	if err != nil {
		log.Fatal(err)
	}
	warm := results[len(results)-1]
	fmt.Printf("\nfinal snapshot, error at the first sample:\n")
	fmt.Printf("  warm start (carried ranks): %.2e\n", warm.Samples[0].RelErr)
	fmt.Printf("  cold start (R0 = 0):        %.2e\n", cold.Samples[0].RelErr)
	fmt.Println("Rankers warm-start from the previous snapshot instead of")
	fmt.Println("re-ranking the web from scratch after every recrawl.")

	// Fixed points grow as the crawl grows: newly internal links only
	// add rank inflow.
	last := results[len(results)-1]
	fmt.Printf("\nfinal relative error vs centralized: %.2e\n", last.RelErr)
	fmt.Println("top pages after the full crawl:")
	g := phases[len(phases)-1].Graph
	for _, p := range core.TopPages(last.Final, 5) {
		fmt.Printf("  %-40s %.4f\n", g.URL(int32(p)), last.Final[p])
	}
}
