// searchdemo assembles the full system the paper's introduction
// sketches: a crawl partitioned over page rankers on a Pastry overlay,
// ranked distributedly with DPR1 — with every ranker publishing
// versioned, immutable rank snapshots through its checkpoint seam —
// then queried through the serving tier: per-shard partial results
// merged into a global top-k, ordered by the distributed ranks, with
// version, staleness, and overlay-hop accounting on every response.
//
//	go run ./examples/searchdemo
package main

import (
	"fmt"
	"log"

	"p2prank/internal/core"
	"p2prank/internal/engine"
	"p2prank/internal/partition"
	"p2prank/internal/search"
	"p2prank/internal/serve"
)

func main() {
	const k = 16
	graph, err := core.GenerateCrawl(20000, 5)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Distributed ranking. The Checkpoint sink is the serving
	// store's Publisher: every 2 committed rounds each ranker's DPRS
	// checkpoint bytes become an immutable, versioned score snapshot,
	// and the Tracker turns the same rankers' commit hooks into the
	// staleness clock queries report against.
	store, err := serve.NewStore(k)
	if err != nil {
		log.Fatal(err)
	}
	params := core.Params{Alg: core.DPR1, T1: 0, T2: 6}
	params.Checkpoint.Every = 2
	params.Checkpoint.Sink = serve.NewPublisher(store, nil)
	params.Observer = serve.NewTracker(store, nil)
	res, err := core.RankDistributed(core.Config{
		Params: params,
		Graph:  graph, K: k, MaxTime: 400, TargetRelErr: 1e-7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranked %d pages over %d rankers (rel err %.1e, %.1f loops/ranker)\n",
		graph.NumPages(), k, res.RelErr, res.LoopsAtConvergence)
	fmt.Printf("rankers published %d snapshot versions; current staleness %d rounds\n",
		store.Version(), store.MaxStaleness())

	// 2. The query tier: term-partitioned per-shard indexes over the
	// published snapshots, merged per query with a bounded heap.
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		log.Fatal(err)
	}
	assign, err := partition.Assign(graph, ov, partition.BySite, 1)
	if err != nil {
		log.Fatal(err)
	}
	fe, err := serve.NewFrontend(graph, ov, assign, store, serve.Config{})
	if err != nil {
		log.Fatal(err)
	}
	q := fe.NewQuerier()

	// 3. Query. MinVersion: 1 demands ranked (not merely initialized)
	// snapshots; a too-new MinVersion would fail with ErrStaleIndex.
	var resp search.Response
	for _, terms := range [][]int32{{0}, {1, 3}, {0, 2, 5}} {
		names := make([]string, len(terms))
		for i, t := range terms {
			names[i] = search.TermName(t)
		}
		req := search.Request{Terms: terms, K: 3, From: 0, MinVersion: 1}
		if err := q.Serve(req, &resp); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %v (version %d, %d rounds stale, %d shards, %d lookup hops from ranker 0):\n",
			names, resp.Version, resp.Staleness, resp.Cost.Responses, resp.Cost.LookupHops)
		for _, r := range resp.Postings {
			fmt.Printf("  %-40s rank %.4f\n", graph.URL(r.Page), r.Score)
		}
		if len(resp.Postings) == 0 {
			fmt.Println("  (no page contains all terms)")
		}
	}

	// The static single-node index serves the same Request/Response API
	// — the serving tier's answers match it shard-merge for scan.
	ix, err := search.Build(graph, res.Final, ov, assign, search.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic index: %d postings (%d crossed ranker boundaries to reach their term owner)\n",
		ix.PostingsTotal, ix.PostingsMoved)

	// Term ownership is a pure function of the overlay, so any ranker
	// resolves the same owner for a term.
	owner, err := ix.TermOwner(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("term %q lives on ranker %d (ID %s)\n",
		search.TermName(0), owner, ov.NodeID(int(owner)))
}
