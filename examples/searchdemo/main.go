// searchdemo assembles the full system the paper's introduction
// sketches: a crawl partitioned over page rankers on a Pastry overlay,
// ranked distributedly with DPR1, then queried through a term-
// partitioned P2P inverted index (the architecture of the paper's
// reference [17]) with results ordered by the distributed ranks.
//
//	go run ./examples/searchdemo
package main

import (
	"fmt"
	"log"

	"p2prank/internal/core"
	"p2prank/internal/engine"
	"p2prank/internal/partition"
	"p2prank/internal/search"
)

func main() {
	const k = 16
	graph, err := core.GenerateCrawl(20000, 5)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Distributed ranking.
	res, err := core.RankDistributed(core.Config{
		Params: core.Params{Alg: core.DPR1, T1: 0, T2: 6},
		Graph:  graph, K: k, MaxTime: 400, TargetRelErr: 1e-7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ranked %d pages over %d rankers (rel err %.1e, %.1f loops/ranker)\n",
		graph.NumPages(), k, res.RelErr, res.LoopsAtConvergence)

	// 2. Build the term-partitioned index over the distributed ranks.
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		log.Fatal(err)
	}
	assign, err := partition.Assign(graph, ov, partition.BySite, 1)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := search.Build(graph, res.Final, ov, assign, search.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d postings (%d crossed ranker boundaries to reach their term owner)\n",
		ix.PostingsTotal, ix.PostingsMoved)

	// 3. Query.
	for _, q := range [][]int32{{0}, {1, 3}, {0, 2, 5}} {
		names := make([]string, len(q))
		for i, t := range q {
			names[i] = search.TermName(t)
		}
		hops, owners, err := ix.QueryCost(0, q)
		if err != nil {
			log.Fatal(err)
		}
		results, err := ix.Query(q, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquery %v (%d owners, %d lookup hops from ranker 0):\n", names, owners, hops)
		for _, r := range results {
			fmt.Printf("  %-40s rank %.4f\n", graph.URL(r.Page), r.Score)
		}
		if len(results) == 0 {
			fmt.Println("  (no page contains all terms)")
		}
	}

	// Term ownership is a pure function of the overlay, so any ranker
	// resolves the same owner for a term.
	owner, err := ix.TermOwner(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nterm %q lives on ranker %d (ID %s)\n",
		search.TermName(0), owner, ov.NodeID(int(owner)))
}
