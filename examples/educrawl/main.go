// educrawl replays the paper's Figure 6/7 experiment on a synthetic
// "edu crawl": 100 sites with the Google-programming-contest link
// statistics. It runs DPR1 under the three loss/speed settings (curves
// A, B, C) and prints both the relative-error decay (Figure 6) and the
// monotone average-rank sequence (Figure 7), demonstrating Theorem 4.1
// live: rank sequences never decrease, even with 30% of Y transmissions
// lost.
//
//	go run ./examples/educrawl
package main

import (
	"fmt"
	"log"
	"os"

	"p2prank/internal/experiments"
	"p2prank/internal/metrics"
)

func main() {
	w := experiments.Workload{Pages: 20000, Sites: 100, Seed: 7}

	fmt.Println("== Figure 6: relative error (%) of DPR1 vs centralized, K=100 ==")
	fig6, err := experiments.Fig6(w, 100, 80)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s\n", fig6.GraphStats.String())
	printEvery(fig6.Curves, 8)

	fmt.Println("\n== Figure 7: average rank of DPR1 (monotone, plateaus ≈0.3), K=100 ==")
	fig7, err := experiments.Fig7(w, 100, 80)
	if err != nil {
		log.Fatal(err)
	}
	printEvery(fig7.Curves, 8)
	for _, c := range fig7.Curves {
		for i := 1; i < c.Len(); i++ {
			if c.Values[i] < c.Values[i-1]-1e-12 {
				log.Fatalf("monotonicity violated on curve %q", c.Name)
			}
		}
	}
	fmt.Println("\nTheorem 4.1 verified: every curve is monotone non-decreasing.")
	fmt.Printf("converged average rank (curve A): %.3f — well below 1 because %d of %d links leave the crawl.\n",
		fig7.Curves[0].Last(),
		fig7.GraphStats.ExternalLinks,
		fig7.GraphStats.ExternalLinks+fig7.GraphStats.InternalLinks)
}

// printEvery prints each curve as CSV, sampled every nth point to keep
// the terminal output readable.
func printEvery(curves []*metrics.Series, nth int) {
	thinned := make([]*metrics.Series, len(curves))
	for i, c := range curves {
		t := metrics.NewSeries(c.Name)
		for j := 0; j < c.Len(); j += nth {
			t.Add(c.Times[j], c.Values[j])
		}
		thinned[i] = t
	}
	if err := metrics.WriteCSV(os.Stdout, thinned...); err != nil {
		log.Fatal(err)
	}
}
