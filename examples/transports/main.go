// transports measures the §4.4 claim: indirect transmission scales,
// direct transmission does not. It runs the same DPR1 workload over
// both transports at growing ranker populations, prints measured
// per-iteration message and byte counts next to the closed-form model
// (formulas 4.1–4.4), and evaluates the paper's §4.5 worked example
// (Table 1).
//
//	go run ./examples/transports
package main

import (
	"fmt"
	"log"

	"p2prank/internal/bwmodel"
	"p2prank/internal/experiments"
)

func main() {
	fmt.Println("== measured per-iteration traffic: direct vs indirect (§4.4) ==")
	w := experiments.Workload{Pages: 10000, Sites: 64, Seed: 3}
	rows, err := experiments.Transmission(w, []int{8, 16, 32, 64}, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTransmission(rows))

	last := rows[len(rows)-1]
	fmt.Printf("\nat K=%d: indirect uses %.1f%% of direct's messages\n",
		last.K, 100*last.IndirectMsgs/last.DirectMsgs)

	fmt.Println("\n== the paper's worked example (§4.5, Table 1) ==")
	t1, err := bwmodel.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bwmodel.RenderTable1(t1))
	fmt.Println("\nReading: ranking 3B pages over 1000 rankers cannot iterate faster")
	fmt.Println("than every ~2 hours without exceeding 1% of the Internet's bisection")
	fmt.Println("bandwidth — the paper's headline feasibility result.")

	p := bwmodel.DefaultParams()
	p.N, p.H = 1000, bwmodel.PastryHops(1000)
	fmt.Printf("\nmessage-count crossover: indirect wins for N > %.1f rankers\n", p.MessageCrossoverN())
}
