// tcpcluster runs the distributed algorithms over real TCP sockets: six
// page-ranker peers on localhost, each with its own goroutine-driven
// asynchronous loop, exchanging gob-encoded score vectors. Halfway
// through, one peer is killed to show the survivors keep converging —
// the asynchrony/fault model of §4.2 on a real network stack.
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"time"

	"p2prank/internal/core"
	"p2prank/internal/dprcore"
	"p2prank/internal/netpeer"
)

func main() {
	graph, err := core.GenerateCrawl(6000, 11)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := netpeer.StartCluster(graph, netpeer.ClusterConfig{
		Params:   dprcore.Params{Alg: dprcore.DPR1, SendProb: 0.9}, // lose 10% of Y transmissions on top of TCP
		K:        6,
		MeanWait: 25 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	for i, p := range cluster.Peers {
		fmt.Printf("peer %d: %s (%d pages)\n", i, p.Addr(), len(cluster.Assignment.Pages[i]))
	}

	start := time.Now()
	if err := cluster.WaitConverged(1e-4, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreached relative error 1e-4 in %.2fs of wall-clock time\n",
		time.Since(start).Seconds())

	// Kill one peer; the rest keep iterating (their sends to the dead
	// peer fail silently — exactly the loss the algorithms tolerate).
	fmt.Println("killing peer 3 ...")
	cluster.Peers[3].Close()
	loopsBefore := cluster.Peers[0].Loops()
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("peer 0 kept running: %d -> %d loops\n", loopsBefore, cluster.Peers[0].Loops())

	ranks := cluster.Assemble()
	fmt.Printf("final relative error vs centralized: %.2e\n",
		core.RelativeError(ranks, cluster.Reference))
	fmt.Println("\ntop pages:")
	for _, p := range core.TopPages(ranks, 5) {
		fmt.Printf("  %-40s %.4f\n", graph.URL(int32(p)), ranks[p])
	}
}
