// Quickstart: generate a paper-calibrated synthetic crawl, rank it with
// centralized open-system PageRank, rank it again with DPR1 over eight
// simulated page rankers on a Pastry overlay, and show that the two
// agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"p2prank/internal/core"
)

func main() {
	// 1. A synthetic crawl with the statistics of the paper's dataset:
	// ~90% of internal links intra-site, 8/15 of links external.
	graph, err := core.GenerateCrawl(10000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl: %d pages, %d sites, %d internal links\n",
		graph.NumPages(), graph.NumSites(), graph.NumInternalLinks())

	// 2. The centralized reference R*.
	star, err := core.RankCentralized(graph)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Distributed ranking: 8 asynchronous page rankers exchanging
	// scores by indirect transmission over Pastry.
	res, err := core.RankDistributed(core.Config{
		Params:       core.Params{Alg: core.DPR1, T1: 0, T2: 6},
		Graph:        graph,
		K:            8,
		Strategy:     core.BySite,
		Transport:    core.Indirect,
		Overlay:      core.Pastry,
		MaxTime:      500,
		TargetRelErr: 1e-8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. They agree.
	fmt.Printf("distributed converged at virtual time %.0f (%.1f loops/ranker)\n",
		res.ConvergedAt, res.LoopsAtConvergence)
	fmt.Printf("relative error vs centralized: %.2e\n", core.RelativeError(res.Final, star))
	fmt.Printf("network: %d messages, %.1f MB\n",
		res.NetStats.MessagesSent, float64(res.NetStats.BytesSent)/1e6)

	fmt.Println("\ntop pages (distributed ranks):")
	for _, p := range core.TopPages(res.Final, 5) {
		fmt.Printf("  %-40s %.4f\n", graph.URL(int32(p)), res.Final[p])
	}
}
