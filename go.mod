module p2prank

go 1.22
