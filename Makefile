# Developer entry points. `make verify` runs exactly what CI runs
# (.github/workflows/ci.yml), so a green local verify means a green PR.

GO ?= go

.PHONY: build vet lint test race bench bench-gate chaos obs-smoke serve-smoke scale-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The project's own determinism/concurrency analyzers (internal/lint):
# norand, nowallclock, floateq, senderr, maporder, hotalloc, lockscope,
# gorolife (see DESIGN.md §12 for the catalog).
lint:
	$(GO) run ./cmd/p2plint ./...

test:
	$(GO) test ./...

# The layers with real goroutines: sockets (netpeer), the loop core
# they drive (dprcore), the transport fabric, the simulator
# (compute-phase batching), the worker pool, and everything the
# parallel kernels touch.
race:
	$(GO) test -race ./internal/netpeer/... ./internal/dprcore/... ./internal/transport/... \
		./internal/simnet/... ./internal/vecmath/... ./internal/pagerank/... \
		./internal/engine/... ./internal/par/... ./internal/telemetry/... ./internal/serve/...

# Failure-path suite under the race detector: crash/restart churn in
# both runtimes, checkpointed recovery, the supervisor, the reliable
# ack/retry/backoff layer, and the partition/straggler fault lattice
# (see DESIGN.md §11 and §17) — plus the end-to-end serve-under-
# partition smoke (dprnode -serve through a healing cut).
chaos:
	$(GO) test -race -count=1 -run 'Churn|KillRestart|Supervisor|Snapshot|Checkpoint|Reliable|Partition|Straggler' \
		./internal/dprcore/... ./internal/engine/... ./internal/netpeer/...
	$(GO) test -run TestServeChaosPartitionDprnode -v ./internal/clitest/

# End-to-end observability check: boot a 3-ranker dprnode cluster with
# -obs, scrape /metrics while it runs, and require the round counters
# to advance between scrapes (internal/clitest).
obs-smoke:
	$(GO) test -run TestDprnodeObsSmoke -v ./internal/clitest/

# End-to-end serving check: dprnode -demo with the query tier and load
# generator on (HTTP /search + query metrics on /metrics), and the
# dprsim serving sweep at a toy scale (internal/clitest).
serve-smoke:
	$(GO) test -run TestServeSmoke -v ./internal/clitest/

# Kernel + transmission benchmarks with allocation counts, recorded as
# JSON so runs are diffable (see BENCH_kernels.json for the committed
# reference numbers).
bench:
	$(GO) test -run '^$$' -bench 'MulVec|StepDelta|NewCSR|Fig6RelativeError|TransmissionScaling|ReliableSend|Schedule|EventLoop|GraphLoad|QueryTopK|SnapshotPublish' \
		-benchmem ./internal/vecmath/ ./internal/dprcore/ ./internal/simnet/ ./internal/webgraph/ ./internal/serve/ . | $(GO) run ./cmd/benchjson > BENCH_kernels.json
	@cat BENCH_kernels.json

# One decade of the paper-scale experiment (N=10⁴ rankers, bounded
# virtual-time horizon) end to end: calendar-queue scheduler, batched
# delivery, and the §4.4–4.5 model-vs-telemetry validation. Takes a
# minute or two; CI runs it as a non-blocking job. The full measured
# curve (10³–10⁵) is `go run ./cmd/dprsim -exp scale`.
scale-smoke:
	P2PRANK_SCALE=1 $(GO) test -run TestScaleSmoke -v -timeout 20m ./internal/experiments/

# Perf ratchet: re-run the gated kernels and compare against the
# committed baseline. The alloc gate always applies; set
# BENCHGATE_STRICT=1 to also fail >10% ns/op regressions.
bench-gate:
	$(GO) run ./cmd/benchgate

verify: build vet lint test race chaos obs-smoke serve-smoke bench-gate
	@echo "verify: all checks passed"
