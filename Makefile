# Developer entry points. `make verify` runs exactly what CI runs
# (.github/workflows/ci.yml), so a green local verify means a green PR.

GO ?= go

.PHONY: build vet lint test race verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The project's own determinism/concurrency analyzers (internal/lint):
# norand, nowallclock, floateq, senderr.
lint:
	$(GO) run ./cmd/p2plint ./...

test:
	$(GO) test ./...

# The layers with real goroutines: sockets (netpeer), the transport
# fabric, and the simulator's network counters.
race:
	$(GO) test -race ./internal/netpeer/... ./internal/transport/... ./internal/simnet/...

verify: build vet lint test race
	@echo "verify: all checks passed"
