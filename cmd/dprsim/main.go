// Command dprsim runs the paper's simulated experiments and prints
// their tables or CSV curves.
//
// Experiments:
//
//	dprsim -exp fig6                # relative error over time (K=1000)
//	dprsim -exp fig7                # monotone average rank (K=100)
//	dprsim -exp fig8                # iterations vs ranker count
//	dprsim -exp transmission        # direct vs indirect measured traffic
//	dprsim -exp traffic             # §4.4 per-iteration traffic from telemetry
//	dprsim -exp bandwidth           # convergence vs node uplink bandwidth
//	dprsim -exp cut                 # §4.1 partition comparison
//	dprsim -exp hops                # overlay hop counts vs N
//	dprsim -exp faults              # convergence under injected message faults
//	dprsim -exp churn               # convergence with rankers crashing mid-run
//	dprsim -exp scale               # DPR1/DPR2 at N = 10³/10⁴/10⁵ with model validation
//	dprsim -exp degrade             # degraded serving under partition/straggler faults
//
// Scale the workload with -pages / -sites; write curves as CSV with
// -csv FILE.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"p2prank/internal/cliflags"
	"p2prank/internal/core"
	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/experiments"
	"p2prank/internal/metrics"
	"p2prank/internal/search"
	"p2prank/internal/serve"
	"p2prank/internal/webgraph"
)

func main() {
	var (
		exp     = flag.String("exp", "fig6", "experiment: fig6|fig7|fig8|transmission|traffic|bandwidth|cut|hops|faults|churn|scale|serve|degrade")
		pages   = flag.Int("pages", 20000, "crawl size")
		sites   = flag.Int("sites", 100, "site count (the paper's dataset has 100)")
		seed    = cliflags.Seed(flag.CommandLine)
		k       = flag.Int("k", 0, "ranker count (0 = the figure's paper value)")
		ks      = flag.String("ks", "", "comma-separated ranker counts for sweeps (fig8/transmission/traffic/hops)")
		maxTime = flag.Float64("maxtime", 90, "virtual-time horizon for fig6/fig7")
		csvPath = flag.String("csv", "", "write curves as CSV to this file")
		graph   = flag.String("graph", "", "rank this crawl file instead of generating one (text, v1, or v2 mapped)")
		gstore  = flag.String("graphstore", "disk", "scale-experiment graph store: disk (generate to a temp file, mmap it) or mem")
		gengen  = flag.String("gengraph", "", "internal: write the -pages/-sites/-seed workload to this path in mapped format and exit")
		queries = flag.Int("queries", 5000, "serve-experiment query count per K")
		srvAddr = cliflags.ServeAddr(flag.CommandLine)
		qps     = cliflags.QPS(flag.CommandLine)
		topk    = cliflags.TopK(flag.CommandLine)
	)
	flag.Parse()

	if *gengen != "" {
		// Re-exec child mode for -graphstore disk: generation's transient
		// heap lands in this short-lived process, not the measured parent.
		w := experiments.Workload{Pages: *pages, Sites: *sites, Seed: *seed}
		if err := w.WriteToDisk(*gengen); err != nil {
			fatal(err)
		}
		return
	}

	w := experiments.Workload{Pages: *pages, Sites: *sites, Seed: *seed}
	if *graph != "" {
		src, closeSrc, err := core.OpenCrawl(*graph)
		if err != nil {
			fatal(err)
		}
		defer closeSrc()
		w.Source = src
	}
	switch *exp {
	case "fig6":
		kk := pick(*k, 1000)
		res, err := experiments.Fig6(w, kk, *maxTime)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Figure 6: DPR1 relative error (%%) over time, K=%d\n", kk)
		emitCurves(res, *csvPath)
	case "fig7":
		kk := pick(*k, 100)
		res, err := experiments.Fig7(w, kk, *maxTime)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Figure 7: DPR1 average rank over time (monotone), K=%d\n", kk)
		emitCurves(res, *csvPath)
	case "fig8":
		counts := parseKs(*ks, []int{2, 10, 100, 1000})
		rows, err := experiments.Fig8(w, counts)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 8: iterations to relative error 0.01% (p=1, T1=T2=15)")
		fmt.Print(experiments.RenderFig8(rows))
	case "transmission":
		counts := parseKs(*ks, []int{8, 16, 32, 64})
		rows, err := experiments.Transmission(w, counts, 30)
		if err != nil {
			fatal(err)
		}
		fmt.Println("§4.4: measured per-iteration traffic vs formulas 4.1–4.4")
		fmt.Print(experiments.RenderTransmission(rows))
	case "traffic":
		counts := parseKs(*ks, []int{8, 16, 32, 64})
		rows, err := experiments.Traffic(w, counts, 30)
		if err != nil {
			fatal(err)
		}
		fmt.Println("§4.4: per-iteration message/data counts from the telemetry seam")
		fmt.Print(experiments.RenderTraffic(rows))
	case "bandwidth":
		kk := pick(*k, 16)
		rows, err := experiments.ConvergenceVsBandwidth(w, kk,
			[]float64{0, 100000, 20000, 2000, 200}, *maxTime*10)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("§4.5 measured: convergence vs per-node uplink bandwidth, K=%d\n", kk)
		fmt.Print(experiments.RenderBandwidth(rows))
	case "faults":
		kk := pick(*k, 16)
		rows, err := experiments.Faults(w, kk, []float64{0, 0.1, 0.3, 0.5}, *maxTime*10)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Fault injection: DPR1 convergence under message drops, K=%d\n", kk)
		fmt.Print(experiments.RenderFaults(rows))
	case "churn":
		kk := pick(*k, 16)
		// Sweep none → half the rankers crashing (0, 2, 4, 8 at the
		// default K=16), scaled to whatever -k was given.
		crashes := []int{0}
		for c := kk / 8; c <= kk/2 && c > 0; c *= 2 {
			crashes = append(crashes, c)
		}
		rows, err := experiments.Churn(w, kk, crashes, *maxTime*10)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Churn: DPR1 convergence with crash/checkpoint-restart rankers, K=%d\n", kk)
		fmt.Print(experiments.RenderChurn(rows))
	case "scale":
		counts := parseKs(*ks, []int{1000, 10000, 100000})
		rows, err := runScale(counts, *seed, *gstore)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Paper scale: DPR under indirect transmission, 20 pages/ranker, batched delivery")
		fmt.Print(experiments.RenderScale(rows))
	case "serve":
		counts := parseKs(*ks, []int{1000, 10000})
		rows, err := runServe(counts, *seed, *queries, *qps, *topk, *srvAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Serving tier: distributed top-k over published rank snapshots, 20 pages/ranker")
		fmt.Print(experiments.RenderServe(rows))
	case "degrade":
		kk := pick(*k, 256)
		rows, err := runDegrade(kk, *seed, *queries, *qps, *topk)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Degraded serving: admission + hedged fan-out under partition/straggler faults")
		fmt.Print(experiments.RenderDegrade(rows))
	case "cut":
		kk := pick(*k, 32)
		rows, err := experiments.PartitionCut(w, kk)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("§4.1: partition cut at K=%d\n%s", kk, experiments.RenderCut(rows))
	case "hops":
		counts := parseKs(*ks, []int{100, 1000, 10000})
		for _, kind := range []engine.OverlayKind{engine.Pastry, engine.Chord} {
			rows, err := experiments.OverlayHops(kind, counts, 1000, *seed)
			if err != nil {
				fatal(err)
			}
			t := metrics.NewTable("overlay", "N", "measured hops", "paper model")
			for _, r := range rows {
				t.AddRow(kind, r.N, fmt.Sprintf("%.2f", r.Hops), fmt.Sprintf("%.2f", r.PaperH))
			}
			fmt.Print(t.String())
		}
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// runScale sweeps the scale experiment over ranker populations,
// measuring what the simulation-path packages are forbidden to touch
// (the nowallclock analyzer): wall-clock time per run, process peak RSS,
// and events per wall second. Runs go in ascending K so the monotone
// VmHWM high-water mark tracks each decade's own peak.
func runScale(counts []int, seed uint64, store string) ([]*experiments.ScaleRow, error) {
	if store != "disk" && store != "mem" {
		return nil, fmt.Errorf("unknown -graphstore %q (want disk or mem)", store)
	}
	var rows []*experiments.ScaleRow
	for _, kk := range counts {
		w := experiments.ScaleWorkload(kk, seed)
		cleanup := func() {}
		if store == "disk" {
			src, done, err := mappedWorkload(w)
			if err != nil {
				return nil, err
			}
			w.Source = src
			cleanup = done
		}
		for _, alg := range []dprcore.Algorithm{dprcore.DPR1, dprcore.DPR2} {
			fmt.Fprintf(os.Stderr, "dprsim: scale %v K=%d pages=%d store=%s...\n", alg, kk, w.Pages, store)
			start := time.Now()
			row, err := experiments.ScaleRun(w, kk, alg, experiments.ScaleMaxTime)
			if err != nil {
				cleanup()
				return nil, err
			}
			row.WallSeconds = time.Since(start).Seconds()
			row.PeakRSSMB = peakRSSMB()
			if row.WallSeconds > 0 {
				row.EventsPerSec = float64(row.Events) / row.WallSeconds
			}
			rows = append(rows, row)
		}
		cleanup()
	}
	return rows, nil
}

// runServe sweeps the serving benchmark over ranker populations. The
// deterministic half (crawl, ranks, shards, snapshot publishing, query
// plan) comes from experiments.ServeBench; this side owns the
// wall-clock query storm — latency samples, optional -qps pacing, and
// a mid-storm staleness exercise (ticks then a republish) so the
// reported max staleness reflects a live system, not a frozen store.
// With -serve set, the first K's frontend is then exposed over HTTP
// until the process is killed.
func runServe(counts []int, seed uint64, queries, qps, topk int, srvAddr string) ([]experiments.ServeRow, error) {
	var rows []experiments.ServeRow
	for _, kk := range counts {
		fmt.Fprintf(os.Stderr, "dprsim: serve K=%d queries=%d...\n", kk, queries)
		b, err := experiments.NewServeBench(experiments.ServeWorkload(kk, seed), kk, queries)
		if err != nil {
			return nil, err
		}
		q := b.Frontend().NewQuerier()
		var (
			resp      search.Response
			lat       = make([]float64, 0, queries)
			results   int64
			shards    int64
			hops      int64
			maxStale  int64
			plan      = b.Queries()
			tickEvery = queries / 8
		)
		var interval time.Duration
		if qps > 0 {
			interval = time.Duration(float64(time.Second) / float64(qps))
		}
		start := time.Now()
		next := start
		for i, req := range plan {
			if tickEvery > 0 && i > 0 && i%tickEvery == 0 {
				b.Tick() // rankers commit a round without publishing
				if i == 5*tickEvery {
					if err := b.Republish(); err != nil {
						return nil, err
					}
				}
			}
			if interval > 0 {
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
			req.K = topk
			t0 := time.Now()
			if err := q.Serve(req, &resp); err != nil {
				return nil, fmt.Errorf("serve K=%d query %v: %w", kk, req.Terms, err)
			}
			lat = append(lat, time.Since(t0).Seconds())
			results += int64(len(resp.Postings))
			shards += int64(resp.Cost.Responses)
			hops += int64(resp.Cost.LookupHops)
			if resp.Staleness > maxStale {
				maxStale = resp.Staleness
			}
		}
		wall := time.Since(start).Seconds()
		row := b.Finish(int64(len(plan)), results, shards, hops, maxStale)
		row.WallSeconds = wall
		if wall > 0 {
			row.AchievedQPS = float64(len(plan)) / wall
		}
		row.P50Micros, row.P99Micros = experiments.LatencyMicros(lat)
		rows = append(rows, row)

		if srvAddr != "" && kk == counts[0] {
			ln, err := net.Listen("tcp", srvAddr)
			if err != nil {
				return nil, err
			}
			h := serve.NewHandler(b.Frontend(), topk, nil)
			fmt.Printf("serving: http://%s/search?terms=0,1&k=%d\n", ln.Addr(), topk)
			if err := http.Serve(ln, h.Mux()); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// runDegrade sweeps the degraded-serving benchmark over the fault
// lattice: partition span × straggler fraction, with the deterministic
// outcomes (sheds, coverage, rank error, recovery) from
// experiments.DegradeBench and the wall-clock half — per-query latency
// under optional -qps pacing — measured here.
func runDegrade(kk int, seed uint64, queries, qps, topk int) ([]experiments.DegradeRow, error) {
	sweep := []struct{ part, strag float64 }{
		{0, 0},
		{0.1, 0},
		{0.1, 0.25},
		{0.3, 0},
		{0.3, 0.25},
	}
	var interval time.Duration
	if qps > 0 {
		interval = time.Duration(float64(time.Second) / float64(qps))
	}
	var rows []experiments.DegradeRow
	for _, c := range sweep {
		fmt.Fprintf(os.Stderr, "dprsim: degrade K=%d queries=%d partition=%.0f%% stragglers=%.0f%%...\n",
			kk, queries, 100*c.part, 100*c.strag)
		b, err := experiments.NewDegradeBench(experiments.ServeWorkload(kk, seed), kk, queries, c.part, c.strag)
		if err != nil {
			return nil, err
		}
		var (
			resp search.Response
			lat  = make([]float64, 0, queries)
		)
		start := time.Now()
		next := start
		for i, req := range b.Queries() {
			if err := b.Advance(i); err != nil {
				return nil, err
			}
			if interval > 0 {
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
			req.K = topk
			t0 := time.Now()
			serveErr := b.Serve(req, &resp)
			if serveErr == nil {
				lat = append(lat, time.Since(t0).Seconds())
			}
			if err := b.Record(i, req, &resp, serveErr); err != nil {
				return nil, fmt.Errorf("degrade K=%d query %v: %w", kk, req.Terms, err)
			}
		}
		row := b.Finish()
		row.WallSeconds = time.Since(start).Seconds()
		row.TargetQPS = qps
		if row.WallSeconds > 0 {
			row.AchievedQPS = float64(len(b.Queries())) / row.WallSeconds
		}
		row.P50Micros, row.P99Micros = experiments.LatencyMicros(lat)
		rows = append(rows, row)
	}
	return rows, nil
}

// mappedWorkload materializes w on disk in a child process (so the
// generator's transient allocations never inflate this process's VmHWM)
// and maps the file read-only. The returned func unmaps and removes it.
func mappedWorkload(w experiments.Workload) (webgraph.Store, func(), error) {
	f, err := os.CreateTemp("", "dprsim-graph-*.bin")
	if err != nil {
		return nil, nil, err
	}
	path := f.Name()
	f.Close()
	fail := func(err error) (webgraph.Store, func(), error) {
		os.Remove(path)
		return nil, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		return fail(err)
	}
	cmd := exec.Command(exe, "-gengraph", path,
		"-pages", strconv.Itoa(w.Pages),
		"-sites", strconv.Itoa(w.Sites),
		"-seed", strconv.FormatUint(w.Seed, 10))
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fail(fmt.Errorf("generating workload graph: %w", err))
	}
	m, err := webgraph.OpenMapped(path)
	if err != nil {
		return fail(err)
	}
	return m, func() {
		m.Close()
		os.Remove(path)
	}, nil
}

// peakRSSMB reads the process's resident-set high-water mark from
// /proc/self/status (VmHWM, in kB). 0 when unavailable (non-Linux).
func peakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

func pick(flagVal, paperVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	return paperVal
}

func parseKs(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad -ks entry %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func emitCurves(res *experiments.FigureResult, csvPath string) {
	fmt.Printf("workload: %s", res.GraphStats.String())
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			fatal(err)
		}
		if err := metrics.WriteCSV(f, res.Curves...); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("curves written to %s\n", csvPath)
		return
	}
	if err := metrics.WriteCSV(os.Stdout, res.Curves...); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dprsim:", err)
	os.Exit(1)
}
