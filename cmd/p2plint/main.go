// Command p2plint runs the project's determinism and concurrency
// analyzers (see internal/lint) over the tree:
//
//	go run ./cmd/p2plint ./...
//
// It prints one line per finding and exits non-zero if any survive,
// so CI can gate on it. Scope individual analyzers with -only:
//
//	go run ./cmd/p2plint -only norand,floateq ./internal/...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"p2prank/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: p2plint [-only names] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "p2plint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2plint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2plint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "p2plint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
