// Command genweb generates synthetic crawls with the paper-calibrated
// statistics, prints their structural stats, and measures partition
// quality (§4.1).
//
// Examples:
//
//	genweb -pages 100000 -out crawl.bin
//	genweb -pages 50000 -stats
//	genweb -pages 50000 -cut -k 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"p2prank/internal/core"
	"p2prank/internal/experiments"
	"p2prank/internal/webgraph"
)

func main() {
	var (
		pages   = flag.Int("pages", 20000, "number of pages to generate")
		sites   = flag.Int("sites", 0, "number of sites (0 = scale like the paper's dataset)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("out", "", "write the graph to this file")
		format  = flag.String("format", "auto", "output format: auto|bin|text (auto: .txt suffix = text, else binary)")
		stats   = flag.Bool("stats", false, "print structural statistics (with -out bin, also the on-disk section sizes)")
		cut     = flag.Bool("cut", false, "print the §4.1 partition-cut comparison")
		k       = flag.Int("k", 32, "number of rankers for -cut")
		degree  = flag.Float64("degree", 15, "mean total out-degree")
		extfrac = flag.Float64("extfrac", 8.0/15.0, "fraction of links leaving the crawl")
	)
	flag.Parse()

	cfg := webgraph.DefaultGenConfig(*pages)
	if *sites > 0 {
		cfg.Sites = *sites
	}
	cfg.Seed = *seed
	cfg.MeanOutDegree = *degree
	cfg.ExternalFrac = *extfrac
	g, err := webgraph.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	if *stats || (*out == "" && !*cut) {
		fmt.Print(webgraph.ComputeStats(g).String())
	}
	if *cut {
		rows, err := experiments.PartitionCut(experiments.Workload{
			Pages: *pages, Sites: cfg.Sites, Seed: *seed,
		}, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\npartition cut at K=%d rankers:\n%s", *k, experiments.RenderCut(rows))
	}
	if *out != "" {
		asText := false
		switch *format {
		case "text":
			asText = true
		case "bin":
		case "auto":
			asText = strings.HasSuffix(*out, ".txt")
		default:
			fatal(fmt.Errorf("unknown -format %q (want auto, bin, or text)", *format))
		}
		if asText {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			if err := webgraph.WriteText(f, g); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		} else {
			if err := core.SaveCrawl(*out, g); err != nil {
				fatal(err)
			}
			if *stats {
				infos, total := webgraph.MappedLayout(g)
				fmt.Println("on-disk sections:")
				for _, info := range infos {
					fmt.Printf("  %-12s %12d bytes  (%d entries)\n", info.Name, info.Bytes, info.Count)
				}
				fmt.Printf("  %-12s %12d bytes\n", "total", total)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d pages, %d internal links)\n",
			*out, g.NumPages(), g.NumInternalLinks())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genweb:", err)
	os.Exit(1)
}
