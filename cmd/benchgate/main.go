// Command benchgate is the perf ratchet: it re-runs the gated
// benchmark suite (the same pattern `make bench` records) and compares
// the fresh numbers against the committed baseline BENCH_kernels.json.
//
// The alloc gate is always on — an allocs/op increase on a gated
// kernel fails (exact below 1000 allocs/op, 0.1% slack above for
// amortized macro counts; see internal/benchgate). The time gate (default
// +10% ns/op) only fails the run in strict mode (-strict or
// BENCHGATE_STRICT=1); outside strict mode time regressions are
// printed as warnings, since shared-hardware timings jitter.
//
// Usage:
//
//	go run ./cmd/benchgate                  # run suite, alloc gate only
//	go run ./cmd/benchgate -strict          # also enforce the time gate
//	go run ./cmd/benchgate -input out.txt   # gate a pre-recorded run
//
// A benchmark present in the baseline but absent from the current run
// always fails: a silently vanished kernel is not a passing gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"p2prank/internal/benchfmt"
	"p2prank/internal/benchgate"
)

// benchPattern and benchPackages mirror the `make bench` invocation
// that produces the baseline; the gate must measure what was recorded.
const benchPattern = "MulVec|StepDelta|NewCSR|Fig6RelativeError|TransmissionScaling|ReliableSend|Schedule|EventLoop|GraphLoad|QueryTopK|SnapshotPublish"

var benchPackages = []string{"./internal/vecmath/", "./internal/dprcore/", "./internal/simnet/", "./internal/webgraph/", "./internal/serve/", "."}

func main() {
	baselinePath := flag.String("baseline", "BENCH_kernels.json", "committed baseline report")
	input := flag.String("input", "", "gate this `go test -bench` output file instead of running the suite ('-' for stdin)")
	strict := flag.Bool("strict", os.Getenv("BENCHGATE_STRICT") == "1", "enforce the time gate (default: BENCHGATE_STRICT=1)")
	threshold := flag.Float64("threshold", benchgate.DefaultThreshold, "fractional ns/op growth the time gate tolerates")
	flag.Parse()

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	current, err := currentReport(*input)
	if err != nil {
		fatal(err)
	}

	opts := benchgate.Options{Strict: *strict, Threshold: *threshold}
	violations := benchgate.Compare(baseline, current, opts)
	fatalViolations := benchgate.Fatal(violations, opts)
	for _, v := range violations {
		tag := "WARN"
		for _, f := range fatalViolations {
			if f == v {
				tag = "FAIL"
				break
			}
		}
		fmt.Fprintf(os.Stderr, "benchgate: %s: %s\n", tag, v)
	}
	if len(fatalViolations) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d violation(s) against %s\n", len(fatalViolations), *baselinePath)
		os.Exit(1)
	}
	mode := "alloc gate"
	if *strict {
		mode = fmt.Sprintf("alloc + time gate (%.0f%%)", *threshold*100)
	}
	fmt.Printf("benchgate: %d kernel(s) within baseline %s [%s]\n",
		len(baseline.Results), *baselinePath, mode)
}

func readBaseline(path string) (*benchfmt.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w (run `make bench` to record one)", err)
	}
	rep := &benchfmt.Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return rep, nil
}

// currentReport produces the fresh numbers: from a recorded file, from
// stdin, or by running the gated suite like `make bench` does.
func currentReport(input string) (*benchfmt.Report, error) {
	var sc *bufio.Scanner
	switch input {
	case "":
		args := append([]string{"test", "-run", "^$", "-bench", benchPattern, "-benchmem"}, benchPackages...)
		cmd := exec.Command("go", args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		fmt.Fprintln(os.Stderr, "benchgate: running gated benchmark suite...")
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("bench run: %v\n%s", err, stderr.String())
		}
		sc = bufio.NewScanner(&stdout)
	case "-":
		sc = bufio.NewScanner(os.Stdin)
	default:
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc = bufio.NewScanner(f)
	}
	rep, err := benchfmt.Parse(sc)
	if err != nil {
		return nil, err
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines in current run")
	}
	return rep, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}
