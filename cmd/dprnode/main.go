// Command dprnode runs page rankers as real TCP peers.
//
// Demo mode starts a whole cluster in one process and reports
// convergence against centralized PageRank:
//
//	dprnode -demo -pages 5000 -k 4
//
// Distributed mode runs one ranker per process; every process loads the
// same crawl and derives the same partition, so only addresses need
// coordinating:
//
//	dprnode -graph crawl.bin -k 3 -index 0 -listen :7000 \
//	        -peers 1=host1:7000,2=host2:7000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"p2prank/internal/core"
	"p2prank/internal/engine"
	"p2prank/internal/netpeer"
	"p2prank/internal/partition"
	"p2prank/internal/ranker"
)

func main() {
	var (
		demo      = flag.Bool("demo", false, "run a whole cluster in-process on localhost")
		pages     = flag.Int("pages", 5000, "crawl size for -demo")
		graphPath = flag.String("graph", "", "crawl file (required without -demo)")
		k         = flag.Int("k", 4, "number of rankers")
		index     = flag.Int("index", 0, "this ranker's index (0..k-1)")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		peersFlag = flag.String("peers", "", "peer addresses as idx=host:port, comma separated")
		alg       = flag.String("alg", "dpr1", "algorithm: dpr1|dpr2")
		target    = flag.Float64("target", 1e-6, "demo: stop at this relative error")
		seed      = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	algorithm := ranker.DPR1
	if strings.EqualFold(*alg, "dpr2") {
		algorithm = ranker.DPR2
	} else if !strings.EqualFold(*alg, "dpr1") {
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}

	if *demo {
		runDemo(*pages, *k, algorithm, *target, *seed)
		return
	}
	runPeer(*graphPath, *k, *index, *listen, *peersFlag, algorithm, *seed)
}

func runDemo(pages, k int, alg ranker.Algorithm, target float64, seed uint64) {
	g, err := core.GenerateCrawl(pages, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("demo: %d pages, %d rankers (%v), real TCP on localhost\n", pages, k, alg)
	cl, err := netpeer.StartCluster(g, netpeer.ClusterConfig{
		K: k, Alg: alg, MeanWait: 20 * time.Millisecond, Seed: seed,
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	for {
		re := cl.RelErr()
		fmt.Printf("t=%6.2fs relative error %.3e\n", time.Since(start).Seconds(), re)
		if re <= target {
			break
		}
		if time.Since(start) > 2*time.Minute {
			fatal(fmt.Errorf("did not reach %v within 2 minutes", target))
		}
		time.Sleep(300 * time.Millisecond)
	}
	ranks := cl.Assemble()
	fmt.Printf("converged to relative error ≤ %v in %.2fs\n", target, time.Since(start).Seconds())
	fmt.Println("top pages:")
	for _, p := range core.TopPages(ranks, 5) {
		fmt.Printf("  %-40s rank %.4f\n", g.URL(int32(p)), ranks[p])
	}
}

func runPeer(graphPath string, k, index int, listen, peersFlag string, alg ranker.Algorithm, seed uint64) {
	if graphPath == "" {
		fatal(fmt.Errorf("-graph is required (or use -demo)"))
	}
	if index < 0 || index >= k {
		fatal(fmt.Errorf("index %d out of range for k=%d", index, k))
	}
	g, err := core.LoadCrawl(graphPath)
	if err != nil {
		fatal(err)
	}
	// The same deterministic ranker IDs the engine uses, so independent
	// processes agree on the partition.
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, seed)
	if err != nil {
		fatal(err)
	}
	groups, err := ranker.BuildGroups(g, assign, 0.85)
	if err != nil {
		fatal(err)
	}
	peer, err := netpeer.Listen(listen, netpeer.Config{
		Group:    groups[index],
		Alg:      alg,
		MeanWait: 50 * time.Millisecond,
		Seed:     seed + uint64(index)*7919,
	})
	if err != nil {
		fatal(err)
	}
	defer peer.Close()
	if peersFlag != "" {
		for _, part := range strings.Split(peersFlag, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("bad -peers entry %q", part))
			}
			idx, err := strconv.Atoi(kv[0])
			if err != nil {
				fatal(fmt.Errorf("bad -peers index %q: %w", kv[0], err))
			}
			peer.SetPeer(int32(idx), kv[1])
		}
	}
	peer.Start()
	fmt.Printf("ranker %d/%d listening on %s (%d pages, %v)\n",
		index, k, peer.Addr(), groups[index].N(), alg)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("shutting down")
			return
		case <-tick.C:
			r := peer.Ranks()
			fmt.Printf("loops=%d chunks_sent=%d local_rank_sum=%.3f\n",
				peer.Loops(), peer.ChunksSent(), r.Sum())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dprnode:", err)
	os.Exit(1)
}
