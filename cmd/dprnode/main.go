// Command dprnode runs page rankers as real TCP peers.
//
// Demo mode starts a whole cluster in one process and reports
// convergence against centralized PageRank:
//
//	dprnode -demo -pages 5000 -k 4
//
// Distributed mode runs one ranker per process; every process loads the
// same crawl and derives the same partition, so only addresses need
// coordinating:
//
//	dprnode -graph crawl.bin -k 3 -index 0 -listen :7000 \
//	        -peers 1=host1:7000,2=host2:7000
//
// Both modes accept -indirect (route score frames hop-by-hop along the
// Pastry overlay, §4.4) and -codec (wire encoding: gob, plain, delta,
// or quantized-N for N mantissa bits).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"p2prank/internal/codec"
	"p2prank/internal/core"
	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/netpeer"
	"p2prank/internal/partition"
	"p2prank/internal/transport"
)

func main() {
	var (
		demo      = flag.Bool("demo", false, "run a whole cluster in-process on localhost")
		pages     = flag.Int("pages", 5000, "crawl size for -demo")
		graphPath = flag.String("graph", "", "crawl file (required without -demo)")
		k         = flag.Int("k", 4, "number of rankers")
		index     = flag.Int("index", 0, "this ranker's index (0..k-1)")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		peersFlag = flag.String("peers", "", "peer addresses as idx=host:port, comma separated")
		alg       = flag.String("alg", "dpr1", "algorithm: dpr1|dpr2")
		target    = flag.Float64("target", 1e-6, "demo: stop at this relative error")
		seed      = flag.Uint64("seed", 1, "seed")
		indirect  = flag.Bool("indirect", false, "route score frames hop-by-hop along the overlay (§4.4)")
		codecName = flag.String("codec", "gob", "wire encoding: gob|plain|delta|quantized-N")
	)
	flag.Parse()

	algorithm := dprcore.DPR1
	if strings.EqualFold(*alg, "dpr2") {
		algorithm = dprcore.DPR2
	} else if !strings.EqualFold(*alg, "dpr1") {
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}
	wire, err := parseCodec(*codecName)
	if err != nil {
		fatal(err)
	}

	if *demo {
		runDemo(*pages, *k, algorithm, *target, *seed, *indirect, wire)
		return
	}
	runPeer(*graphPath, *k, *index, *listen, *peersFlag, algorithm, *seed, *indirect, wire)
}

// parseCodec maps the -codec flag to a wire codec; nil means the
// default gob framing.
func parseCodec(name string) (transport.ChunkCodec, error) {
	switch {
	case name == "" || strings.EqualFold(name, "gob"):
		return nil, nil
	case strings.EqualFold(name, "plain"):
		return codec.Plain{}, nil
	case strings.EqualFold(name, "delta"):
		return codec.Delta{}, nil
	case strings.HasPrefix(strings.ToLower(name), "quantized"):
		rest := strings.TrimPrefix(strings.ToLower(name), "quantized")
		rest = strings.TrimLeft(rest, "-:")
		bits := 16
		if rest != "" {
			var err error
			bits, err = strconv.Atoi(rest)
			if err != nil || bits < 4 || bits > 52 {
				return nil, fmt.Errorf("bad -codec %q: quantized bits must be 4..52", name)
			}
		}
		return codec.NewQuantized(uint(bits)), nil
	}
	return nil, fmt.Errorf("unknown -codec %q (gob|plain|delta|quantized-N)", name)
}

func runDemo(pages, k int, alg dprcore.Algorithm, target float64, seed uint64, indirect bool, wire transport.ChunkCodec) {
	g, err := core.GenerateCrawl(pages, seed)
	if err != nil {
		fatal(err)
	}
	mode := "direct"
	if indirect {
		mode = "indirect"
	}
	fmt.Printf("demo: %d pages, %d rankers (%v, %s transmission), real TCP on localhost\n",
		pages, k, alg, mode)
	cl, err := netpeer.StartCluster(g, netpeer.ClusterConfig{
		K: k, Alg: alg, MeanWait: 20 * time.Millisecond, Seed: seed,
		Indirect: indirect, Codec: wire,
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	for {
		re := cl.RelErr()
		fmt.Printf("t=%6.2fs relative error %.3e\n", time.Since(start).Seconds(), re)
		if re <= target {
			break
		}
		if time.Since(start) > 2*time.Minute {
			fatal(fmt.Errorf("did not reach %v within 2 minutes", target))
		}
		time.Sleep(300 * time.Millisecond)
	}
	ranks := cl.Assemble()
	fmt.Printf("converged to relative error ≤ %v in %.2fs\n", target, time.Since(start).Seconds())
	fmt.Println("top pages:")
	for _, p := range core.TopPages(ranks, 5) {
		fmt.Printf("  %-40s rank %.4f\n", g.URL(int32(p)), ranks[p])
	}
}

func runPeer(graphPath string, k, index int, listen, peersFlag string, alg dprcore.Algorithm, seed uint64, indirect bool, wire transport.ChunkCodec) {
	if graphPath == "" {
		fatal(fmt.Errorf("-graph is required (or use -demo)"))
	}
	if index < 0 || index >= k {
		fatal(fmt.Errorf("index %d out of range for k=%d", index, k))
	}
	g, err := core.LoadCrawl(graphPath)
	if err != nil {
		fatal(err)
	}
	// The same deterministic ranker IDs the engine uses, so independent
	// processes agree on the partition.
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, seed)
	if err != nil {
		fatal(err)
	}
	groups, err := dprcore.BuildGroups(g, assign, 0.85)
	if err != nil {
		fatal(err)
	}
	pcfg := netpeer.Config{
		Group:    groups[index],
		Alg:      alg,
		MeanWait: 50 * time.Millisecond,
		Seed:     seed + uint64(index)*7919,
		Codec:    wire,
	}
	if indirect {
		// All processes build the same overlay from the same ranker IDs,
		// so routes agree without coordination.
		pcfg.Overlay = ov
	}
	peer, err := netpeer.Listen(listen, pcfg)
	if err != nil {
		fatal(err)
	}
	defer peer.Close()
	if peersFlag != "" {
		for _, part := range strings.Split(peersFlag, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("bad -peers entry %q", part))
			}
			idx, err := strconv.Atoi(kv[0])
			if err != nil {
				fatal(fmt.Errorf("bad -peers index %q: %w", kv[0], err))
			}
			peer.SetPeer(int32(idx), kv[1])
		}
	}
	peer.Start()
	fmt.Printf("ranker %d/%d listening on %s (%d pages, %v)\n",
		index, k, peer.Addr(), groups[index].N(), alg)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("shutting down")
			return
		case <-tick.C:
			r := peer.Ranks()
			fmt.Printf("loops=%d chunks_sent=%d local_rank_sum=%.3f\n",
				peer.Loops(), peer.ChunksSent(), r.Sum())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dprnode:", err)
	os.Exit(1)
}
