// Command dprnode runs page rankers as real TCP peers.
//
// Demo mode starts a whole cluster in one process and reports
// convergence against centralized PageRank:
//
//	dprnode -demo -pages 5000 -k 4
//
// Distributed mode runs one ranker per process; every process loads the
// same crawl and derives the same partition, so only addresses need
// coordinating:
//
//	dprnode -graph crawl.bin -k 3 -index 0 -listen :7000 \
//	        -peers 1=host1:7000,2=host2:7000
//
// Both modes accept -transport indirect (route score frames hop-by-hop
// along the Pastry overlay, §4.4), -codec (wire encoding: gob, plain,
// delta, or quantized-N for N mantissa bits), -fault (injected message
// faults), -reliable (ack/retry/backoff delivery — pair it with -fault
// to ride out real loss), and -obs addr:port, which serves live
// telemetry over HTTP:
// Prometheus text on /metrics, the JSONL event trace on /trace, and
// pprof under /debug/pprof/. SIGQUIT dumps the trace ring to stderr.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"p2prank/internal/cliflags"
	"p2prank/internal/core"
	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/netpeer"
	"p2prank/internal/partition"
	"p2prank/internal/search"
	"p2prank/internal/serve"
	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
	"p2prank/internal/webgraph"
)

func main() {
	var (
		demo      = flag.Bool("demo", false, "run a whole cluster in-process on localhost")
		pages     = flag.Int("pages", 5000, "crawl size for -demo")
		graphPath = flag.String("graph", "", "crawl file (required without -demo)")
		k         = flag.Int("k", 4, "number of rankers")
		index     = flag.Int("index", 0, "this ranker's index (0..k-1)")
		listen    = flag.String("listen", "127.0.0.1:0", "listen address")
		peersFlag = flag.String("peers", "", "peer addresses as idx=host:port, comma separated")
		target    = flag.Float64("target", 1e-6, "demo: stop at this relative error")
		obsAddr   = flag.String("obs", "", "serve telemetry over HTTP on this addr:port (empty = off)")

		algName   = cliflags.Algorithm(flag.CommandLine)
		codecName = cliflags.Codec(flag.CommandLine)
		faultSpec = cliflags.Fault(flag.CommandLine)
		relSpec   = cliflags.Reliable(flag.CommandLine)
		transName = cliflags.Transport(flag.CommandLine)
		seed      = cliflags.Seed(flag.CommandLine)
		srvAddr   = cliflags.ServeAddr(flag.CommandLine)
		qps       = cliflags.QPS(flag.CommandLine)
		topk      = cliflags.TopK(flag.CommandLine)
	)
	flag.Parse()

	if *srvAddr == "" && *qps > 0 {
		fatal(fmt.Errorf("-qps requires -serve"))
	}
	if *srvAddr != "" && !*demo {
		fatal(fmt.Errorf("-serve requires -demo (distributed serving needs every shard in one query tier)"))
	}

	algorithm, err := cliflags.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	wire, err := cliflags.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}
	fault, err := cliflags.ParseFault(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if fault.Enabled() && fault.MeanDelay > 0 && fault.MeanDelay < float64(time.Millisecond) {
		// The shared -fault spec is unit-agnostic; live peers run on
		// nanoseconds, where the spec's small virtual-unit delays round
		// to nothing. Interpret small meandelay values as milliseconds.
		fault.MeanDelay *= float64(time.Millisecond)
	}
	if fault.PartitionFrac > 0 && fault.PartitionTo < float64(time.Millisecond) {
		// Partition windows get the same bridge; the -pto default
		// (MaxFloat64, "never heals") is already past the threshold.
		fault.PartitionFrom *= float64(time.Millisecond)
		fault.PartitionTo *= float64(time.Millisecond)
	}
	if fault.StraggleFrac > 0 && fault.StraggleFactor > 0 && fault.StraggleFactor < float64(time.Millisecond) {
		fault.StraggleFactor *= float64(time.Millisecond)
	}
	reliable, err := cliflags.ParseReliable(*relSpec)
	if err != nil {
		fatal(err)
	}
	if reliable.Enabled() && reliable.Timeout < float64(time.Millisecond) {
		// Same unit bridge as -fault: the shared spec's small values are
		// meant as milliseconds on the nanosecond-clock live peers.
		reliable.Timeout *= float64(time.Millisecond)
		reliable.MaxTimeout *= float64(time.Millisecond)
		reliable.Cooldown *= float64(time.Millisecond)
	}
	indirect, err := cliflags.ParseTransport(*transName)
	if err != nil {
		fatal(err)
	}

	// -obs: one live collector shared by every ranker this process
	// hosts, served over HTTP and dumpable via SIGQUIT.
	var col *telemetry.LiveCollector
	if *obsAddr != "" {
		col = telemetry.NewLiveCollector(*k)
		srv, err := telemetry.Serve(*obsAddr, col)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability: %s (/metrics, /trace, /debug/pprof/)\n", srv.URL())
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				fmt.Fprintln(os.Stderr, "-- telemetry trace --")
				if err := col.DumpTrace(os.Stderr); err != nil {
					fmt.Fprintln(os.Stderr, "dprnode: trace dump:", err)
				}
			}
		}()
	}

	params := dprcore.Params{Alg: algorithm, Fault: fault, Reliable: reliable}
	if col != nil {
		params.Observer = col
	}
	// -serve: the peers' ComputeEnd hooks drive the staleness clock via
	// a Tracker wrapped around whatever observer is already installed.
	var store *serve.Store
	if *srvAddr != "" {
		var err error
		store, err = serve.NewStore(*k)
		if err != nil {
			fatal(err)
		}
		params.Observer = serve.NewTracker(store, params.Observer)
	}
	if *demo {
		runDemo(*pages, *k, params, *target, *seed, indirect, wire, col,
			store, *srvAddr, *qps, *topk)
		return
	}
	runPeer(*graphPath, *k, *index, *listen, *peersFlag, params, *seed, indirect, wire)
}

func runDemo(pages, k int, params dprcore.Params, target float64, seed uint64, indirect bool, wire transport.ChunkCodec, col *telemetry.LiveCollector, store *serve.Store, srvAddr string, qps, topk int) {
	g, err := core.GenerateCrawl(pages, seed)
	if err != nil {
		fatal(err)
	}
	mode := "direct"
	if indirect {
		mode = "indirect"
	}
	fmt.Printf("demo: %d pages, %d rankers (%v, %s transmission), real TCP on localhost\n",
		pages, k, params.Alg, mode)
	epoch := time.Now() // ≈ the peers' fault-injector epochs (set at construction)
	cl, err := netpeer.StartCluster(g, netpeer.ClusterConfig{
		Params: params,
		K:      k, MeanWait: 20 * time.Millisecond, Seed: seed,
		Indirect: indirect, Codec: wire,
	})
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	var served *int64
	if store != nil {
		stopServe, counter, err := startServing(cl, g, k, store, col, srvAddr, qps, topk, params.Fault, seed, epoch)
		if err != nil {
			fatal(err)
		}
		defer stopServe()
		served = counter
	}
	start := time.Now()
	for {
		re := cl.RelErr()
		fmt.Printf("t=%6.2fs relative error %.3e\n", time.Since(start).Seconds(), re)
		if col != nil {
			col.Milestone(telemetry.Milestone{
				Time: time.Since(start).Seconds(), RelErr: re, Converged: re <= target,
			})
		}
		if re <= target {
			break
		}
		if time.Since(start) > 2*time.Minute {
			fatal(fmt.Errorf("did not reach %v within 2 minutes", target))
		}
		time.Sleep(300 * time.Millisecond)
	}
	ranks := cl.Assemble()
	fmt.Printf("converged to relative error ≤ %v in %.2fs\n", target, time.Since(start).Seconds())
	fmt.Println("top pages:")
	for _, p := range core.TopPages(ranks, 5) {
		fmt.Printf("  %-40s rank %.4f\n", g.URL(int32(p)), ranks[p])
	}
	if store != nil {
		n := int64(0)
		if served != nil {
			n = atomic.LoadInt64(served)
		}
		fmt.Printf("served %d load-gen queries, max served staleness %d rounds\n",
			n, store.MaxStaleness())
	}
}

// startServing exposes the demo cluster's ranks as a query tier: a
// publisher goroutine polls each live peer's local rank vector into the
// snapshot store, the serve.Handler answers /search on srvAddr, and an
// optional internal load generator (-qps) drives the merged read path,
// reporting per-query latency and staleness to the live collector. When
// -fault injects partitions or stragglers, the frontend shares the
// peers' lattice so its fan-outs route around the cut. The returned
// func stops all of it; the int64 counts load-gen queries.
func startServing(cl *netpeer.Cluster, g webgraph.Store, k int, store *serve.Store, col *telemetry.LiveCollector, addr string, qps, topk int, fault dprcore.FaultConfig, seed uint64, epoch time.Time) (func(), *int64, error) {
	var tel serve.Telemetry
	if col != nil {
		tel = col
	}
	store.SetTelemetry(tel)
	// Same deterministic ranker IDs as StartCluster, so the overlay's
	// hop accounting matches the cluster the shards live on.
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		return nil, nil, err
	}
	cfg := serve.Config{}
	if fault.PartitionFrac > 0 || fault.StraggleFrac > 0 {
		// The same seed defaulting StartCluster applies per peer, so the
		// frontend sees the exact cut the injectors enforce.
		if fault.Seed == 0 {
			fault.Seed = seed
			if fault.Seed == 0 {
				fault.Seed = 1
			}
		}
		at := 0
		for at < k && fault.PartitionMinority(at) {
			at++
		}
		health, err := serve.NewLatticeHealth(fault, at, func() float64 {
			return float64(time.Since(epoch))
		})
		if err != nil {
			return nil, nil, err
		}
		cfg.Health = health
	}
	fe, err := serve.NewFrontend(g, ov, cl.Assignment, store, cfg)
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // snapshot publisher: one goroutine, so per-shard publishes stay serialized
		defer wg.Done()
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			for s := 0; s < k; s++ {
				p := cl.Peer(s)
				if p == nil || !p.Alive() {
					continue
				}
				if _, err := store.Publish(s, p.Loops(), p.Ranks()); err != nil {
					fmt.Fprintln(os.Stderr, "dprnode: publish:", err)
				}
			}
		}
	}()
	srv := &http.Server{Handler: serve.NewHandler(fe, topk, tel).Mux()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "dprnode: serve:", err)
		}
	}()
	fmt.Printf("serving: http://%s/search?terms=0,1&k=%d\n", ln.Addr(), topk)
	served := new(int64)
	if qps > 0 {
		wg.Add(1)
		go func() { // load generator
			defer wg.Done()
			q := fe.NewQuerier()
			var resp search.Response
			queries := [][]int32{{0}, {1, 2}, {0, 3}, {2, 4, 5}}
			interval := time.Duration(float64(time.Second) / float64(qps))
			next := time.Now()
			for i := 0; ; i++ {
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					select {
					case <-stop:
						return
					case <-time.After(d):
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				t0 := time.Now()
				err := q.Serve(search.Request{Terms: queries[i%len(queries)], K: topk}, &resp)
				if err != nil {
					continue // before the first publish the store is stale by definition
				}
				atomic.AddInt64(served, 1)
				if col != nil {
					col.QueryServed(time.Since(t0).Seconds(), resp.Staleness)
				}
			}
		}()
	}
	return func() {
		close(stop)
		srv.Close()
		wg.Wait()
	}, served, nil
}

func runPeer(graphPath string, k, index int, listen, peersFlag string, params dprcore.Params, seed uint64, indirect bool, wire transport.ChunkCodec) {
	if graphPath == "" {
		fatal(fmt.Errorf("-graph is required (or use -demo)"))
	}
	if index < 0 || index >= k {
		fatal(fmt.Errorf("index %d out of range for k=%d", index, k))
	}
	g, err := core.LoadCrawl(graphPath)
	if err != nil {
		fatal(err)
	}
	// The same deterministic ranker IDs the engine uses, so independent
	// processes agree on the partition.
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, seed)
	if err != nil {
		fatal(err)
	}
	groups, err := dprcore.BuildGroups(g, assign, 0.85)
	if err != nil {
		fatal(err)
	}
	pcfg := netpeer.Config{
		Params:   params,
		Group:    groups[index],
		MeanWait: 50 * time.Millisecond,
		Seed:     seed + uint64(index)*7919,
		Codec:    wire,
	}
	if indirect {
		// All processes build the same overlay from the same ranker IDs,
		// so routes agree without coordination.
		pcfg.Overlay = ov
	}
	peer, err := netpeer.Listen(listen, pcfg)
	if err != nil {
		fatal(err)
	}
	defer peer.Close()
	if peersFlag != "" {
		for _, part := range strings.Split(peersFlag, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("bad -peers entry %q", part))
			}
			idx, err := strconv.Atoi(kv[0])
			if err != nil {
				fatal(fmt.Errorf("bad -peers index %q: %w", kv[0], err))
			}
			peer.SetPeer(int32(idx), kv[1])
		}
	}
	peer.Start()
	fmt.Printf("ranker %d/%d listening on %s (%d pages, %v)\n",
		index, k, peer.Addr(), groups[index].N(), params.Alg)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("shutting down")
			return
		case <-tick.C:
			r := peer.Ranks()
			fmt.Printf("loops=%d chunks_sent=%d local_rank_sum=%.3f\n",
				peer.Loops(), peer.ChunksSent(), r.Sum())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dprnode:", err)
	os.Exit(1)
}
