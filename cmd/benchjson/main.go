// Command benchjson converts `go test -bench` output on stdin into
// stable, diffable JSON on stdout. `make bench` pipes the kernel and
// transmission benchmarks through it to produce BENCH_kernels.json, so
// perf changes are reviewed like any other diff.
//
// Usage:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Report is the full document: environment header plus results.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Pkgs    []string `json:"pkgs,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkgs = append(rep.Pkgs, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseBench(line)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, sc.Err()
}

// parseBench parses one result line, e.g.
//
//	BenchmarkMulVec-8  100  10123456 ns/op  42 B/op  3 allocs/op
func parseBench(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	r := Result{Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations in %q: %v", line, err)
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("ns/op in %q: %v", line, err)
			}
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("B/op in %q: %v", line, err)
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("allocs/op in %q: %v", line, err)
			}
		case "MB/s":
			if r.MBPerSec, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("MB/s in %q: %v", line, err)
			}
		}
	}
	return r, nil
}
