// Command benchjson converts `go test -bench` output on stdin into
// stable, diffable JSON on stdout. `make bench` pipes the kernel and
// transmission benchmarks through it to produce BENCH_kernels.json, so
// perf changes are reviewed like any other diff — and gated by
// cmd/benchgate, which re-runs the suite against that file.
//
// Results are emitted in sorted (name, procs) order so the document is
// byte-stable regardless of package test order, and the header records
// the Go version and GOMAXPROCS the numbers were measured under.
//
// Usage:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"p2prank/internal/benchfmt"
)

func main() {
	rep, err := benchfmt.Parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep.GoVersion = runtime.Version()
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Sort()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
