// Command bwtable prints the §4.5 analytic bandwidth model: Table 1
// (minimal iteration interval and per-node bottleneck bandwidth versus
// ranker population) plus the formula 4.1–4.4 cost comparison.
//
//	bwtable                     # the paper's Table 1
//	bwtable -n 1000,50000      # custom populations
//	bwtable -pages 1e10        # a bigger web
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"p2prank/internal/bwmodel"
	"p2prank/internal/metrics"
)

func main() {
	var (
		ns        = flag.String("n", "1000,10000,100000", "comma-separated ranker populations")
		pages     = flag.Float64("pages", 3e9, "web pages W (paper: 3 billion)")
		linkBytes = flag.Float64("l", 100, "bytes per link record l")
		lookup    = flag.Float64("r", 48, "bytes per lookup message r")
		neighbors = flag.Float64("g", 32, "avg neighbors per node g")
		bisection = flag.Float64("bisection", 100e6, "usable bisection bandwidth, bytes/s")
	)
	flag.Parse()

	base := bwmodel.Params{
		W: *pages, L: *linkBytes, R: *lookup, G: *neighbors, BisectionBps: *bisection,
	}
	var populations []float64
	for _, part := range strings.Split(*ns, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -n entry %q: %w", part, err))
		}
		populations = append(populations, v)
	}
	rows, err := bwmodel.Table1For(base, populations)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Table 1: minimal iteration interval and node bottleneck bandwidth")
	fmt.Printf("(W=%.3g pages, l=%.0fB, bisection budget %.0f MB/s)\n\n", *pages, *linkBytes, *bisection/1e6)
	fmt.Print(bwmodel.RenderTable1(rows))

	fmt.Println("\nFormulas 4.1–4.4: per-iteration cost of the two transmission schemes")
	t := metrics.NewTable("N", "h", "D_it (GB)", "D_dt (GB)", "S_it (msgs)", "S_dt (msgs)")
	for _, n := range populations {
		p := base
		p.N = n
		p.H = bwmodel.PastryHops(n)
		t.AddRow(
			fmt.Sprintf("%.0f", n),
			fmt.Sprintf("%.1f", p.H),
			fmt.Sprintf("%.1f", p.IndirectDataBytes()/1e9),
			fmt.Sprintf("%.1f", p.DirectDataBytes()/1e9),
			fmt.Sprintf("%.3g", p.IndirectMessages()),
			fmt.Sprintf("%.3g", p.DirectMessages()),
		)
	}
	fmt.Print(t.String())
	p := base
	p.N = populations[0]
	p.H = bwmodel.PastryHops(p.N)
	fmt.Printf("\nmessage-count crossover: indirect wins for N > %.1f\n", p.MessageCrossoverN())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bwtable:", err)
	os.Exit(1)
}
