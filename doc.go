// Package p2prank is a Go reproduction of "Distributed Page Ranking in
// Structured P2P Networks" (Shi, Yu, Yang, Wang — ICPP 2003): open-
// system PageRank, the asynchronous distributed algorithms DPR1/DPR2,
// site-hash page partitioning, direct vs indirect score transmission
// over Pastry/Chord overlays, and the §4.5 bandwidth feasibility model.
//
// Start at internal/core for the public façade, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-vs-measured
// results. bench_test.go in this directory regenerates every figure and
// table of the paper's evaluation:
//
//	go test -bench=. -benchmem .
package p2prank
