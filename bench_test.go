// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section, plus ablations over the design choices DESIGN.md
// calls out. Each benchmark runs the corresponding experiment preset
// and reports the paper's metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem .
//
// regenerates the entire evaluation. Workloads are scaled to finish in
// seconds (see the scale note in internal/experiments); the shapes —
// who wins, by what factor, where crossovers fall — are what is being
// reproduced.
package p2prank

import (
	"fmt"
	"testing"

	"p2prank/internal/bwmodel"
	"p2prank/internal/codec"
	"p2prank/internal/crawler"
	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/experiments"
	"p2prank/internal/hits"
	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/transport"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

func benchWorkload() experiments.Workload {
	return experiments.Workload{Pages: 10000, Sites: 100, Seed: 1}
}

// BenchmarkFig6RelativeError regenerates Figure 6: DPR1's relative
// error against centralized PageRank over time for the three (p, T1,
// T2) settings. Reported metrics are the final relative errors (%) of
// the lossless (A) and lossy (C) curves — A must sit below C.
func BenchmarkFig6RelativeError(b *testing.B) {
	var lastA, lastC float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchWorkload(), 100, 60)
		if err != nil {
			b.Fatal(err)
		}
		lastA, lastC = res.Curves[0].Last(), res.Curves[2].Last()
	}
	b.ReportMetric(lastA, "relerr%%_A_final")
	b.ReportMetric(lastC, "relerr%%_C_final")
}

// BenchmarkFig7Monotonic regenerates Figure 7: the monotone average-
// rank sequence. Reported metric is the converged average rank, which
// the paper observes at ≈0.3 because 8/15 of links leave the dataset.
func BenchmarkFig7Monotonic(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchWorkload(), 100, 60)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Curves {
			for j := 1; j < c.Len(); j++ {
				if c.Values[j] < c.Values[j-1]-1e-12 {
					b.Fatalf("monotonicity violated on %q", c.Name)
				}
			}
		}
		avg = res.Curves[0].Last()
	}
	b.ReportMetric(avg, "avg_rank_final")
}

// BenchmarkFig8Iterations regenerates Figure 8: iterations to reach
// relative error 0.01% for DPR1, DPR2, and centralized PageRank.
// Reported metrics are the K=100 values; the paper's ordering is
// DPR1 < CPR < DPR2.
func BenchmarkFig8Iterations(b *testing.B) {
	var row experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(benchWorkload(), []int{100})
		if err != nil {
			b.Fatal(err)
		}
		row = rows[0]
	}
	b.ReportMetric(row.DPR1, "iters_DPR1")
	b.ReportMetric(row.DPR2, "iters_DPR2")
	b.ReportMetric(row.CPR, "iters_CPR")
}

// BenchmarkTable1Model regenerates Table 1 from the §4.5 analytic
// model. Reported metrics are the N=1000 row: minimal iteration
// interval (paper: 7500 s) and bottleneck bandwidth (paper: 100 KB/s).
func BenchmarkTable1Model(b *testing.B) {
	var rows []bwmodel.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bwmodel.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].IterationSeconds, "T_N1000_seconds")
	b.ReportMetric(rows[0].BottleneckBps/1e3, "B_N1000_KBps")
}

// BenchmarkTransmissionScaling regenerates the §4.4 comparison
// (formulas 4.1–4.4): measured per-iteration messages of both
// transports at K=32. Indirect must use fewer.
func BenchmarkTransmissionScaling(b *testing.B) {
	var row experiments.TransmissionRow
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Transmission(benchWorkload(), []int{32}, 20)
		if err != nil {
			b.Fatal(err)
		}
		row = rows[0]
	}
	if row.IndirectMsgs >= row.DirectMsgs {
		b.Fatalf("indirect %.0f msgs/iter not below direct %.0f", row.IndirectMsgs, row.DirectMsgs)
	}
	b.ReportMetric(row.DirectMsgs, "direct_msgs/iter")
	b.ReportMetric(row.IndirectMsgs, "indirect_msgs/iter")
}

// BenchmarkPartitionCut regenerates the §4.1 partition comparison:
// fraction of internal links crossing ranker boundaries per strategy.
func BenchmarkPartitionCut(b *testing.B) {
	var rows []experiments.CutRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PartitionCut(benchWorkload(), 32)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Strategy {
		case partition.BySite:
			b.ReportMetric(r.CutFrac, "cut_by_site")
		case partition.ByPage:
			b.ReportMetric(r.CutFrac, "cut_by_page")
		case partition.Random:
			b.ReportMetric(r.CutFrac, "cut_random")
		}
	}
}

// BenchmarkOverlayHops measures Pastry lookup hop counts at N=1000,
// the h(N) input of Table 1 (paper: ≈2.5).
func BenchmarkOverlayHops(b *testing.B) {
	var h float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OverlayHops(engine.Pastry, []int{1000}, 500, 1)
		if err != nil {
			b.Fatal(err)
		}
		h = rows[0].Hops
	}
	b.ReportMetric(h, "hops_N1000")
}

// --- Ablations (DESIGN.md §5) ---

func ablationGraph(b *testing.B) *webgraph.Graph {
	b.Helper()
	cfg := webgraph.DefaultGenConfig(5000)
	cfg.Sites = 50
	g, err := webgraph.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAblationAlpha sweeps the rank-transmission fraction α: a
// larger α means slower contraction (more iterations) but ranks that
// depend more on link structure.
func BenchmarkAblationAlpha(b *testing.B) {
	g := ablationGraph(b)
	for _, alpha := range []float64{0.5, 0.85, 0.95} {
		b.Run(benchName("alpha", alpha), func(b *testing.B) {
			var loops float64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(engine.Config{
					Params: dprcore.Params{Alg: dprcore.DPR1, Alpha: alpha, T1: 15, T2: 15},
					Graph:  g, K: 16, MaxTime: 4000, SampleEvery: 5,
					TargetRelErr: 1e-4,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.ConvergedAt < 0 {
					b.Fatal("did not converge")
				}
				loops = res.LoopsAtConvergence
			}
			b.ReportMetric(loops, "iters")
		})
	}
}

// BenchmarkAblationInnerEpsilon sweeps DPR1's inner threshold: looser
// inner solves shift work from inner iterations to outer rounds.
func BenchmarkAblationInnerEpsilon(b *testing.B) {
	g := ablationGraph(b)
	for _, eps := range []float64{1e-4, 1e-8, 1e-12} {
		b.Run(benchName("inner_eps", eps), func(b *testing.B) {
			var loops float64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(engine.Config{
					Params: dprcore.Params{Alg: dprcore.DPR1, InnerEpsilon: eps, T1: 15, T2: 15},
					Graph:  g, K: 16, MaxTime: 4000, SampleEvery: 5,
					TargetRelErr: 1e-4,
				})
				if err != nil {
					b.Fatal(err)
				}
				loops = res.LoopsAtConvergence
			}
			b.ReportMetric(loops, "iters")
		})
	}
}

// BenchmarkAblationOverlay compares Pastry against Chord as the DPR
// substrate: convergence is overlay-independent, hop counts are not.
func BenchmarkAblationOverlay(b *testing.B) {
	g := ablationGraph(b)
	for _, kind := range []engine.OverlayKind{engine.Pastry, engine.Chord} {
		b.Run(kind.String(), func(b *testing.B) {
			var hops, msgs float64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(engine.Config{
					Params: dprcore.Params{Alg: dprcore.DPR1, T1: 3, T2: 3},
					Graph:  g, K: 64, Overlay: kind,
					MaxTime: 60, SampleEvery: 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				hops = res.AvgHops
				msgs = float64(res.NetStats.MessagesSent) / res.LoopsAtConvergence
			}
			b.ReportMetric(hops, "avg_hops")
			b.ReportMetric(msgs, "msgs/iter")
		})
	}
}

// BenchmarkAblationPartition compares bytes moved per iteration across
// partition strategies — the quantitative version of §4.1's argument.
func BenchmarkAblationPartition(b *testing.B) {
	g := ablationGraph(b)
	for _, strat := range []partition.Strategy{partition.BySite, partition.ByPage, partition.Random} {
		b.Run(strat.String(), func(b *testing.B) {
			var bytes float64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(engine.Config{
					Params: dprcore.Params{Alg: dprcore.DPR1, T1: 3, T2: 3},
					Graph:  g, K: 16, Strategy: strat,
					MaxTime: 40, SampleEvery: 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				bytes = float64(res.NetStats.BytesSent) / res.LoopsAtConvergence
			}
			b.ReportMetric(bytes/1e3, "KB/iter")
		})
	}
}

// BenchmarkCentralizedBaseline times the centralized solvers the
// distributed results are judged against.
func BenchmarkCentralizedBaseline(b *testing.B) {
	g := ablationGraph(b)
	b.Run("open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engine.CPRIterations(g, 0.85, 1e-4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPastryLookup times raw overlay routing, the primitive direct
// transmission pays per destination.
func BenchmarkPastryLookup(b *testing.B) {
	ov, err := engine.BuildOverlay(engine.Pastry, 1000)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := nodeid.ID{Hi: rng.Uint64(), Lo: rng.Uint64()}
		if _, err := overlay.Hops(ov, i%1000, key); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v float64) string {
	return fmt.Sprintf("%s=%g", prefix, v)
}

// BenchmarkAblationCodec sweeps the wire codecs (the paper's §4.5
// "compression" future work): bytes moved per iteration under the
// analytic 100 B/link model, the plain binary encoding, delta
// compression, and 16-bit-mantissa quantization.
func BenchmarkAblationCodec(b *testing.B) {
	g := ablationGraph(b)
	codecs := []struct {
		name string
		c    transport.ChunkCodec
	}{
		{"paper-model", nil},
		{"plain", codec.Plain{}},
		{"delta", codec.Delta{}},
		{"quantized-16", codec.NewQuantized(16)},
	}
	for _, cd := range codecs {
		cd := cd
		b.Run(cd.name, func(b *testing.B) {
			var kb float64
			var relerr float64
			for i := 0; i < b.N; i++ {
				res, err := engine.Run(engine.Config{
					Params: dprcore.Params{Alg: dprcore.DPR1, T1: 3, T2: 3},
					Graph:  g, K: 16, MaxTime: 60, SampleEvery: 10,
					Codec: cd.c,
				})
				if err != nil {
					b.Fatal(err)
				}
				kb = float64(res.NetStats.BytesSent) / res.LoopsAtConvergence / 1e3
				relerr = res.RelErr
			}
			b.ReportMetric(kb, "KB/iter")
			b.ReportMetric(relerr, "final_relerr")
		})
	}
}

// BenchmarkBandwidthSweep measures convergence against shrinking node
// uplinks — the empirical form of §4.5's constraint 4.7.
func BenchmarkBandwidthSweep(b *testing.B) {
	w := experiments.Workload{Pages: 4000, Sites: 30, Seed: 7}
	var rows []experiments.BandwidthRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ConvergenceVsBandwidth(w, 12, []float64{0, 2000, 200}, 400)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].FinalRelErr, "relerr_unlimited")
	b.ReportMetric(rows[1].FinalRelErr, "relerr_bw2000")
	b.ReportMetric(rows[2].FinalRelErr, "relerr_bw200")
}

// BenchmarkIncrementalWarmStart quantifies the §4.3 dynamic-graph
// extension: error at the first sample with and without carrying ranks
// across a recrawl.
func BenchmarkIncrementalWarmStart(b *testing.B) {
	w := ablationGraph(b)
	c, err := crawler.New(w, 5)
	if err != nil {
		b.Fatal(err)
	}
	var phases []engine.Phase
	var prevToWeb []int32
	for !c.Done() {
		c.Crawl(w.NumPages() / 4)
		g, toWeb, err := c.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		ph := engine.Phase{Graph: g}
		if prevToWeb != nil {
			ph.CarryOver = crawler.CarryOver(prevToWeb, toWeb)
		}
		phases = append(phases, ph)
		prevToWeb = toWeb
	}
	cfg := engine.Config{
		Params: dprcore.Params{Alg: dprcore.DPR1, T1: 5, T2: 5},
		K:      8, MaxTime: 400, SampleEvery: 1,
		TargetRelErr: 1e-8,
	}
	var warmFirst, coldFirst float64
	for i := 0; i < b.N; i++ {
		results, err := engine.RunIncremental(cfg, phases)
		if err != nil {
			b.Fatal(err)
		}
		coldCfg := cfg
		coldCfg.Graph = phases[len(phases)-1].Graph
		cold, err := engine.Run(coldCfg)
		if err != nil {
			b.Fatal(err)
		}
		warmFirst = results[len(results)-1].Samples[0].RelErr
		coldFirst = cold.Samples[0].RelErr
	}
	b.ReportMetric(warmFirst, "warm_first_relerr")
	b.ReportMetric(coldFirst, "cold_first_relerr")
}

// BenchmarkHITSBaseline times the HITS baseline the paper's
// introduction references, alongside centralized PageRank.
func BenchmarkHITSBaseline(b *testing.B) {
	g := ablationGraph(b)
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := hits.Compute(g, hits.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

// BenchmarkExtrapolation compares plain vs extrapolated centralized
// PageRank (the paper's reference [8]) at a slow-mixing α.
func BenchmarkExtrapolation(b *testing.B) {
	g := ablationGraph(b)
	opt := pagerank.Defaults()
	opt.Alpha = 0.95
	b.Run("plain", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			res, err := pagerank.Open(g, opt)
			if err != nil {
				b.Fatal(err)
			}
			iters = res.Iterations
		}
		b.ReportMetric(float64(iters), "iterations")
	})
	b.Run("extrapolated", func(b *testing.B) {
		var iters int
		for i := 0; i < b.N; i++ {
			res, err := pagerank.OpenAccelerated(g, opt, 5)
			if err != nil {
				b.Fatal(err)
			}
			iters = res.Iterations
		}
		b.ReportMetric(float64(iters), "iterations")
	})
}
