// Package benchgate compares a fresh benchmark run against the
// committed baseline (BENCH_kernels.json) and reports ratchet
// violations. The alloc gate is always on: for kernels under 1000
// allocs/op — the zero-alloc hot paths the ratchet exists to protect —
// any increase is a regression someone must either fix or re-baseline
// deliberately. Macro-benchmarks whose counts are amortized over b.N
// (hundreds of thousands of allocs/op) jitter by a few counts between
// runs, so they get 0.1% slack: enough to absorb the noise, three
// orders of magnitude below a real one-alloc-per-op leak. The time gate
// is relative (default +10%) and only enforced in strict mode, because
// wall-clock numbers on shared CI hardware jitter far beyond what the
// alloc counter ever does.
package benchgate

import (
	"fmt"
	"sort"

	"p2prank/internal/benchfmt"
)

// Options tunes one comparison.
type Options struct {
	// Strict enables the time gate (BENCHGATE_STRICT=1 in CI).
	Strict bool
	// Threshold is the fractional ns/op growth the time gate tolerates;
	// 0 means the DefaultThreshold.
	Threshold float64
}

// DefaultThreshold is the time-gate tolerance: a gated kernel may be up
// to 10% slower than the baseline before strict mode fails it.
const DefaultThreshold = 0.10

// Violation kinds.
const (
	KindAlloc   = "alloc"   // allocs/op increased (always fatal)
	KindTime    = "time"    // ns/op grew past the threshold (fatal in strict mode)
	KindMissing = "missing" // baseline kernel absent from the current run (always fatal)
)

// Violation is one gated kernel that moved the wrong way.
type Violation struct {
	Name     string
	Procs    int
	Kind     string
	Baseline float64
	Current  float64
}

func (v Violation) String() string {
	name := v.Name
	if v.Procs > 0 {
		name = fmt.Sprintf("%s-%d", v.Name, v.Procs)
	}
	switch v.Kind {
	case KindAlloc:
		return fmt.Sprintf("%s: allocs/op %d -> %d (alloc gate: any increase fails)",
			name, int64(v.Baseline), int64(v.Current))
	case KindTime:
		return fmt.Sprintf("%s: ns/op %.1f -> %.1f (%+.1f%%, time gate)",
			name, v.Baseline, v.Current, 100*(v.Current/v.Baseline-1))
	case KindMissing:
		return fmt.Sprintf("%s: present in baseline but missing from current run", name)
	}
	return fmt.Sprintf("%s: %s", name, v.Kind)
}

// Compare checks every baseline kernel against the current run and
// returns the violations in (name, procs) order. Kernels that exist
// only in the current run are new benchmarks, not violations — they
// enter the ratchet when the baseline is regenerated. Time regressions
// are reported regardless of mode but only counted as fatal by Fatal.
func Compare(baseline, current *benchfmt.Report, opts Options) []Violation {
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	cur := current.ByKey()
	var out []Violation
	for _, base := range baseline.Results {
		now, ok := cur[base.Key()]
		if !ok {
			out = append(out, Violation{Name: base.Name, Procs: base.Procs, Kind: KindMissing})
			continue
		}
		if now.AllocsPerOp > base.AllocsPerOp+allocSlack(base.AllocsPerOp) {
			out = append(out, Violation{
				Name: base.Name, Procs: base.Procs, Kind: KindAlloc,
				Baseline: float64(base.AllocsPerOp), Current: float64(now.AllocsPerOp),
			})
		}
		if base.NsPerOp > 0 && now.NsPerOp > base.NsPerOp*(1+threshold) {
			out = append(out, Violation{
				Name: base.Name, Procs: base.Procs, Kind: KindTime,
				Baseline: base.NsPerOp, Current: now.NsPerOp,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Procs != b.Procs {
			return a.Procs < b.Procs
		}
		return a.Kind < b.Kind
	})
	return out
}

// allocSlack is the per-kernel alloc tolerance: zero below 1000
// allocs/op (the gate is exact where zero-alloc discipline applies),
// 0.1% above (amortized macro counts wobble by a few between runs).
func allocSlack(base int64) int64 {
	return base / 1000
}

// Fatal filters violations down to the ones that fail the gate under
// opts: alloc and missing always, time only in strict mode.
func Fatal(violations []Violation, opts Options) []Violation {
	var out []Violation
	for _, v := range violations {
		if v.Kind == KindTime && !opts.Strict {
			continue
		}
		out = append(out, v)
	}
	return out
}
