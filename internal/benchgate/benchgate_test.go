package benchgate_test

import (
	"testing"

	"p2prank/internal/benchfmt"
	"p2prank/internal/benchgate"
)

func report(results ...benchfmt.Result) *benchfmt.Report {
	return &benchfmt.Report{Results: results}
}

func kernel(name string, ns float64, allocs int64) benchfmt.Result {
	return benchfmt.Result{Name: name, Procs: 8, Iterations: 100, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestIdenticalRunPasses(t *testing.T) {
	base := report(kernel("BenchmarkMulVec", 100, 2), kernel("BenchmarkSend", 50, 0))
	got := benchgate.Compare(base, base, benchgate.Options{})
	if len(got) != 0 {
		t.Fatalf("violations on identical run: %v", got)
	}
}

// TestInjectedAllocRegressionFails is the gate's own proof: a synthetic
// +1 allocs/op on a zero-alloc kernel must fail even without strict
// mode.
func TestInjectedAllocRegressionFails(t *testing.T) {
	base := report(kernel("BenchmarkReliableSend", 70, 0))
	cur := report(kernel("BenchmarkReliableSend", 70, 1))
	opts := benchgate.Options{}
	got := benchgate.Fatal(benchgate.Compare(base, cur, opts), opts)
	if len(got) != 1 {
		t.Fatalf("got %d fatal violations, want 1: %v", len(got), got)
	}
	if got[0].Kind != benchgate.KindAlloc || got[0].Name != "BenchmarkReliableSend" {
		t.Fatalf("wrong violation: %+v", got[0])
	}
}

func TestAllocSlackAbsorbsMacroJitter(t *testing.T) {
	base := report(kernel("BenchmarkTransmissionScaling", 1e8, 94785))
	// ±a few counts of amortized jitter passes…
	cur := report(kernel("BenchmarkTransmissionScaling", 1e8, 94786))
	if got := benchgate.Compare(base, cur, benchgate.Options{}); len(got) != 0 {
		t.Fatalf("jitter within slack flagged: %v", got)
	}
	// …a real leak (≥0.1%) does not.
	cur = report(kernel("BenchmarkTransmissionScaling", 1e8, 96000))
	got := benchgate.Compare(base, cur, benchgate.Options{})
	if len(got) != 1 || got[0].Kind != benchgate.KindAlloc {
		t.Fatalf("real alloc growth not flagged: %v", got)
	}
}

func TestTimeGateOnlyFatalInStrictMode(t *testing.T) {
	base := report(kernel("BenchmarkMulVec", 100, 2))
	cur := report(kernel("BenchmarkMulVec", 120, 2)) // +20%
	relaxed := benchgate.Options{}
	all := benchgate.Compare(base, cur, relaxed)
	if len(all) != 1 || all[0].Kind != benchgate.KindTime {
		t.Fatalf("time regression not reported: %v", all)
	}
	if got := benchgate.Fatal(all, relaxed); len(got) != 0 {
		t.Fatalf("time violation fatal without strict mode: %v", got)
	}
	strict := benchgate.Options{Strict: true}
	if got := benchgate.Fatal(benchgate.Compare(base, cur, strict), strict); len(got) != 1 {
		t.Fatalf("time violation not fatal in strict mode: %v", got)
	}
}

func TestTimeWithinThresholdPasses(t *testing.T) {
	base := report(kernel("BenchmarkMulVec", 100, 2))
	cur := report(kernel("BenchmarkMulVec", 109, 2)) // +9% < 10%
	if got := benchgate.Compare(base, cur, benchgate.Options{Strict: true}); len(got) != 0 {
		t.Fatalf("within-threshold time growth flagged: %v", got)
	}
}

func TestCustomThresholdRelaxesTimeGate(t *testing.T) {
	base := report(kernel("BenchmarkMulVec", 100, 2))
	cur := report(kernel("BenchmarkMulVec", 140, 2)) // +40%
	opts := benchgate.Options{Strict: true, Threshold: 0.5}
	if got := benchgate.Compare(base, cur, opts); len(got) != 0 {
		t.Fatalf("growth within custom threshold flagged: %v", got)
	}
}

func TestMissingKernelFails(t *testing.T) {
	base := report(kernel("BenchmarkMulVec", 100, 2), kernel("BenchmarkGone", 10, 0))
	cur := report(kernel("BenchmarkMulVec", 100, 2))
	opts := benchgate.Options{}
	got := benchgate.Fatal(benchgate.Compare(base, cur, opts), opts)
	if len(got) != 1 || got[0].Kind != benchgate.KindMissing || got[0].Name != "BenchmarkGone" {
		t.Fatalf("missing kernel not fatal: %v", got)
	}
}

func TestNewKernelIsNotAViolation(t *testing.T) {
	base := report(kernel("BenchmarkMulVec", 100, 2))
	cur := report(kernel("BenchmarkMulVec", 100, 2), kernel("BenchmarkNew", 5, 3))
	if got := benchgate.Compare(base, cur, benchgate.Options{}); len(got) != 0 {
		t.Fatalf("new benchmark flagged: %v", got)
	}
}

func TestProcsAreComparedSeparately(t *testing.T) {
	base := report(
		benchfmt.Result{Name: "BenchmarkStep", Procs: 1, NsPerOp: 100, AllocsPerOp: 0},
		benchfmt.Result{Name: "BenchmarkStep", Procs: 8, NsPerOp: 20, AllocsPerOp: 0},
	)
	cur := report(
		benchfmt.Result{Name: "BenchmarkStep", Procs: 1, NsPerOp: 100, AllocsPerOp: 0},
		benchfmt.Result{Name: "BenchmarkStep", Procs: 8, NsPerOp: 20, AllocsPerOp: 2},
	)
	got := benchgate.Compare(base, cur, benchgate.Options{})
	if len(got) != 1 || got[0].Procs != 8 || got[0].Kind != benchgate.KindAlloc {
		t.Fatalf("per-procs comparison wrong: %v", got)
	}
}

func TestViolationsSortedByName(t *testing.T) {
	base := report(kernel("BenchmarkZeta", 100, 0), kernel("BenchmarkAlpha", 100, 0))
	cur := report(kernel("BenchmarkZeta", 100, 1), kernel("BenchmarkAlpha", 100, 1))
	got := benchgate.Compare(base, cur, benchgate.Options{})
	if len(got) != 2 || got[0].Name != "BenchmarkAlpha" || got[1].Name != "BenchmarkZeta" {
		t.Fatalf("violations not sorted: %v", got)
	}
}
