package dprcore

import (
	"fmt"
	"testing"
)

// fakeSet is a scriptable Supervised: per-ranker liveness flags and a
// per-ranker error the next Restart returns.
type fakeSet struct {
	alive    []bool
	fail     []error
	restarts []int
}

func (s *fakeSet) NumRankers() int  { return len(s.alive) }
func (s *fakeSet) Alive(i int) bool { return s.alive[i] }
func (s *fakeSet) Restart(i int) error {
	s.restarts[i]++
	if s.fail[i] != nil {
		return s.fail[i]
	}
	s.alive[i] = true
	return nil
}

func newFakeSet(n int) *fakeSet {
	return &fakeSet{alive: make([]bool, n), fail: make([]error, n), restarts: make([]int, n)}
}

func TestNewSupervisorValidation(t *testing.T) {
	set := newFakeSet(1)
	clk := &fakeClock{}
	if _, err := NewSupervisor(nil, clk, constRNG{}, SupervisorConfig{ProbeEvery: 1}); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := NewSupervisor(set, clk, constRNG{}, SupervisorConfig{}); err == nil {
		t.Error("zero ProbeEvery accepted")
	}
	if _, err := NewSupervisor(set, clk, constRNG{}, SupervisorConfig{ProbeEvery: 1, BackoffFactor: 0.5}); err == nil {
		t.Error("BackoffFactor < 1 accepted")
	}
}

func TestSupervisorRestartsDeadRankers(t *testing.T) {
	set := newFakeSet(3)
	set.alive[0], set.alive[2] = true, true
	sup, err := NewSupervisor(set, &fakeClock{}, constRNG{f: 0.5}, SupervisorConfig{ProbeEvery: 10, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	sup.Probe()
	if set.restarts[0] != 0 || set.restarts[1] != 1 || set.restarts[2] != 0 {
		t.Fatalf("restarts = %v, want only ranker 1 restarted", set.restarts)
	}
	if !set.alive[1] || sup.Restarts() != 1 {
		t.Fatalf("ranker 1 alive=%v, Restarts()=%d, want true and 1", set.alive[1], sup.Restarts())
	}
	sup.Probe()
	if set.restarts[1] != 1 {
		t.Fatal("healthy ranker restarted again")
	}
}

func TestSupervisorBacksOffFailedRestarts(t *testing.T) {
	set := newFakeSet(1)
	set.fail[0] = fmt.Errorf("still dead")
	clk := &fakeClock{}
	sup, err := NewSupervisor(set, clk, constRNG{f: 0.5}, SupervisorConfig{
		ProbeEvery: 1, RestartBackoff: 10, BackoffFactor: 2, MaxBackoff: 40, Jitter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup.Probe() // t=0: fails, next try at 10
	clk.now = 5
	sup.Probe() // still backing off
	if set.restarts[0] != 1 {
		t.Fatalf("restarts = %d, probe ignored the backoff", set.restarts[0])
	}
	clk.now = 10
	sup.Probe() // fails again, backoff 20 → next try at 30
	clk.now = 25
	sup.Probe()
	if set.restarts[0] != 2 {
		t.Fatalf("restarts = %d, backoff did not grow", set.restarts[0])
	}
	clk.now = 30
	set.fail[0] = nil
	sup.Probe()
	if set.restarts[0] != 3 || !set.alive[0] || sup.Restarts() != 1 {
		t.Fatalf("restarts = %d, alive = %v, Restarts() = %d; want a successful third try",
			set.restarts[0], set.alive[0], sup.Restarts())
	}
}

func TestSupervisorGivesUpAfterMaxRestarts(t *testing.T) {
	set := newFakeSet(1)
	set.fail[0] = fmt.Errorf("still dead")
	clk := &fakeClock{}
	sup, err := NewSupervisor(set, clk, constRNG{f: 0.5}, SupervisorConfig{
		ProbeEvery: 1, RestartBackoff: 1, MaxRestarts: 2, Jitter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		clk.now = float64(i * 100) // far past any backoff
		sup.Probe()
	}
	if set.restarts[0] != 2 {
		t.Fatalf("restarts = %d, want exactly MaxRestarts", set.restarts[0])
	}
}

func TestSupervisorRunStopsWithWaiter(t *testing.T) {
	set := newFakeSet(1)
	set.alive[0] = true
	sup, err := NewSupervisor(set, &fakeClock{}, constRNG{f: 0.5}, SupervisorConfig{ProbeEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	sup.Run(countWaiter{n: &n, max: 3})
	if n != 3 {
		t.Fatalf("waited %d times, want 3", n)
	}
}

// countWaiter allows max waits then reports shutdown.
type countWaiter struct {
	n   *int
	max int
}

func (w countWaiter) Wait(d float64) bool {
	if *w.n >= w.max {
		return false
	}
	*w.n++
	return true
}
