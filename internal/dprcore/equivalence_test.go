package dprcore_test

import (
	"reflect"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/nodeid"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/ranker"
	"p2prank/internal/simnet"
	"p2prank/internal/transport"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// The cross-stack equivalence test: one dprcore.Loop driven two ways —
// by the simulator through the ranker driver, and by dprcore.Drive
// under a scripted clock — must emit a byte-identical chunk sequence
// for the same seed, config, and delivery schedule. This is the
// refactor's core claim stated as a test: drivers decide only when the
// phases run, never what they compute.

// op is one observed Sender call.
type op struct {
	Flush bool
	From  int
	Chunk transport.ScoreChunk
}

type opRecorder struct{ ops []op }

func (r *opRecorder) Send(from int, c transport.ScoreChunk) error {
	r.ops = append(r.ops, op{From: from, Chunk: c})
	return nil
}

func (r *opRecorder) Flush(from int) error {
	r.ops = append(r.ops, op{Flush: true, From: from})
	return nil
}

// delivery is one scripted incoming chunk.
type delivery struct {
	t float64
	c transport.ScoreChunk
}

// scriptWaiter replays the schedule the simulator would produce: wake
// d units after the previous iteration, delivering every scripted
// chunk that arrives before the wake instant, and stop past the
// horizon — exactly when the sim-side ranker's Stop fires.
type scriptWaiter struct {
	now     float64
	horizon float64
	pending []delivery
	loop    *dprcore.Loop
}

func (w *scriptWaiter) Wait(d float64) bool {
	next := w.now + d
	if next > w.horizon {
		return false
	}
	for len(w.pending) > 0 && w.pending[0].t < next {
		w.loop.Deliver(w.pending[0].c)
		w.pending = w.pending[1:]
	}
	w.now = next
	return true
}

func buildEquivGroups(t *testing.T) []*dprcore.Group {
	t.Helper()
	gcfg := webgraph.DefaultGenConfig(800)
	gcfg.Seed = 7
	g, err := webgraph.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]nodeid.ID, 3)
	for i := range ids {
		ids[i] = nodeid.Hash("equiv-ranker-" + string(rune('0'+i)))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := dprcore.BuildGroups(g, assign, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	return groups
}

func TestSimAndDriveEmitIdenticalChunkSequences(t *testing.T) {
	groups := buildEquivGroups(t)
	// By-site partitioning can leave groups empty; test the first group
	// that owns pages and has someone to talk to.
	var grp *dprcore.Group
	for _, g := range groups {
		if g.N() > 0 && len(g.EffDsts) > 0 {
			grp = g
			break
		}
	}
	if grp == nil {
		t.Fatal("no group has pages and efferent links; pick another seed")
	}
	p := dprcore.Params{
		Alg: dprcore.DPR1, Alpha: 0.85, InnerEpsilon: 1e-10,
		SendProb: 0.7, // < 1, so commit-phase coin flips are exercised
	}
	const meanWait = 5.0
	const horizon = 60.0
	const seed = 42
	// Scripted afferent traffic from another group, fresher each time;
	// integer arrival times cannot collide with Exp-drawn wakes.
	src := (grp.Index + 1) % len(groups)
	var deliveries []delivery
	for i := 0; i < 8; i++ {
		deliveries = append(deliveries, delivery{
			t: float64(3 + 7*i),
			c: transport.ScoreChunk{
				SrcGroup: int32(src), DstGroup: int32(grp.Index), Round: int64(i + 1),
				Entries: []transport.ScoreEntry{{DstLocal: 0, Value: 0.01 * float64(i+1)}},
			},
		})
	}

	// Stack 1: the simulator driving the loop through internal/ranker.
	sim := simnet.New(1)
	simRec := &opRecorder{}
	rk, err := ranker.New(grp, p, meanWait, sim, simRec, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rk.Start()
	for _, d := range deliveries {
		d := d
		sim.At(d.t, func() { rk.Deliver(d.c) })
	}
	sim.At(horizon, rk.Stop)
	sim.Run(0)

	// Stack 2: dprcore.Drive under the scripted waiter, same seed.
	drvRec := &opRecorder{}
	loop, err := dprcore.NewLoop(grp, p, meanWait, drvRec, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	w := &scriptWaiter{horizon: horizon, pending: deliveries, loop: loop}
	dprcore.Drive(loop, w)

	if rk.Loops() == 0 {
		t.Fatal("sim-side ranker never iterated")
	}
	if rk.Loops() != loop.Loops() {
		t.Fatalf("iteration counts diverge: sim %d, drive %d", rk.Loops(), loop.Loops())
	}
	if len(simRec.ops) == 0 {
		t.Fatal("no chunks emitted; test exercises nothing")
	}
	if !reflect.DeepEqual(simRec.ops, drvRec.ops) {
		for i := range simRec.ops {
			if i >= len(drvRec.ops) || !reflect.DeepEqual(simRec.ops[i], drvRec.ops[i]) {
				t.Fatalf("op %d diverges:\nsim:   %+v\ndrive: %+v", i, simRec.ops[i], drvRec.ops[i])
			}
		}
		t.Fatalf("drive emitted %d extra ops", len(drvRec.ops)-len(simRec.ops))
	}
	simRanks, drvRanks := rk.Ranks(), loop.Ranks()
	for i := range simRanks {
		if simRanks[i] != drvRanks[i] {
			t.Fatalf("rank %d diverges: sim %v, drive %v", i, simRanks[i], drvRanks[i])
		}
	}
}
