package dprcore

import (
	"bytes"
	"testing"
)

// snapLoop builds a loop with some efferent structure, feeds it chunks,
// and runs a few iterations so every snapshot table is non-trivial.
func snapLoop(t *testing.T, sender Sender) *Loop {
	t.Helper()
	eff := map[int32][]EffEntry{1: {{LocalSrc: 0, DstLocal: 0, Links: 1}}}
	l, err := NewLoop(testGroup(t, 0, eff), testParams(), testMeanWait, sender, constRNG{f: 0.5, e: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.Deliver(chunk(1, 0, 3, 0.25))
	l.Deliver(chunk(2, 0, 7, 0.5, 0.125))
	for i := 0; i < 3; i++ {
		l.ComputePhase()
		l.CommitPhase()
	}
	return l
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	l := snapLoop(t, &recordSender{})
	snap := l.Snapshot()

	restored, err := NewLoop(l.Group(), testParams(), testMeanWait, &recordSender{}, constRNG{f: 0.5, e: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Loops() != l.Loops() {
		t.Fatalf("loops = %d, want %d", restored.Loops(), l.Loops())
	}
	for i, v := range l.Ranks() {
		if restored.Ranks()[i] != v {
			t.Fatalf("r[%d] = %v, want %v", i, restored.Ranks()[i], v)
		}
	}
	// Byte equality of snapshots means state equality: the restored
	// loop must re-encode to the identical bytes.
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Fatal("restored loop snapshots differently")
	}
}

func TestSnapshotDeterministicEncoding(t *testing.T) {
	a := snapLoop(t, &recordSender{}).Snapshot()
	b := snapLoop(t, &recordSender{}).Snapshot()
	if !bytes.Equal(a, b) {
		t.Fatal("identical loops encode different snapshots")
	}
}

func TestEncodeRankSnapshotRoundtrip(t *testing.T) {
	ranks := []float64{0.5, 0.25, 0.125, 0.0625}
	enc := EncodeRankSnapshot(nil, 7, 42, ranks)
	group, round, got, err := DecodeSnapshotRanks(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if group != 7 || round != 42 {
		t.Fatalf("header = (%d, %d), want (7, 42)", group, round)
	}
	if len(got) != len(ranks) {
		t.Fatalf("decoded %d ranks, want %d", len(got), len(ranks))
	}
	for i, v := range ranks {
		if got[i] != v {
			t.Fatalf("r[%d] = %v, want %v", i, got[i], v)
		}
	}
	// A bare rank snapshot must decode through the same reader a real
	// loop snapshot does — scratch reuse appends into dst[:0].
	scratch := make([]float64, 2, 8)
	_, _, got2, err := DecodeSnapshotRanks(enc, scratch[:0])
	if err != nil || len(got2) != len(ranks) {
		t.Fatalf("scratch decode: len %d err %v", len(got2), err)
	}
}

func TestDecodeSnapshotRanksFromLoopSnapshot(t *testing.T) {
	l := snapLoop(t, &recordSender{})
	snap := l.Snapshot()
	group, round, r, err := DecodeSnapshotRanks(snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if group != l.Group().Index || round != l.Loops() {
		t.Fatalf("header = (%d, %d), want (%d, %d)", group, round, l.Group().Index, l.Loops())
	}
	for i, v := range l.Ranks() {
		if r[i] != v {
			t.Fatalf("r[%d] = %v, want %v", i, r[i], v)
		}
	}
}

func TestDecodeSnapshotRanksRejectsCorrupt(t *testing.T) {
	enc := EncodeRankSnapshot(nil, 0, 1, []float64{1, 2, 3})
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		enc[:len(enc)-20], // truncated rank vector
		append([]byte("DPRS\x02"), enc[5:]...), // bad version
	}
	for i, data := range cases {
		if _, _, _, err := DecodeSnapshotRanks(data, nil); err == nil {
			t.Fatalf("case %d: corrupt snapshot decoded without error", i)
		}
	}
}

func TestSnapshotIncludesPendingChunks(t *testing.T) {
	// A loop whose sender is a ReliableSender snapshots the unacked
	// outbox, and Restore re-sends it through the (new) sender chain.
	inner := &recordSender{}
	rel, err := NewReliableSender(inner, &fakeClock{}, constRNG{f: 0.5}, ReliableConfig{Timeout: 10, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	l := snapLoop(t, rel)
	if len(rel.PendingChunks(0, nil)) == 0 {
		t.Fatal("fixture produced no pending chunks")
	}
	snap := l.Snapshot()

	inner2 := &recordSender{}
	rel2, err := NewReliableSender(inner2, &fakeClock{}, constRNG{f: 0.5}, ReliableConfig{Timeout: 10, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}
	obs := &countObs{}
	p := testParams()
	p.Observer = obs
	restored, err := NewLoop(l.Group(), p, testMeanWait, rel2, constRNG{f: 0.5, e: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(inner2.sends) == 0 || inner2.flushes != 1 {
		t.Fatalf("pending chunks not re-sent on restore: %d sends, %d flushes", len(inner2.sends), inner2.flushes)
	}
	if got := rel2.PendingChunks(0, nil); len(got) != len(rel.PendingChunks(0, nil)) {
		t.Fatalf("reliable layer re-adopted %d pending chunks, want %d", len(got), len(rel.PendingChunks(0, nil)))
	}
	if obs.recovered != 1 {
		t.Fatalf("observer saw %d recoveries, want 1", obs.recovered)
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	l := snapLoop(t, &recordSender{})
	snap := l.Snapshot()
	fresh := func() *Loop {
		loop, err := NewLoop(l.Group(), testParams(), testMeanWait, &recordSender{}, constRNG{f: 0.5, e: 1})
		if err != nil {
			t.Fatal(err)
		}
		return loop
	}
	if err := fresh().Restore([]byte("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	if err := fresh().Restore(snap[:len(snap)-1]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	bad := append([]byte(nil), snap...)
	bad[4] = 99 // version byte
	if err := fresh().Restore(bad); err == nil {
		t.Error("unknown version accepted")
	}
	other, err := NewLoop(testGroup(t, 1, nil), testParams(), testMeanWait, &recordSender{}, constRNG{f: 0.5, e: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil {
		t.Error("snapshot for another group accepted")
	}
}

func TestCheckpointCadence(t *testing.T) {
	mem := NewMemCheckpointer()
	p := testParams()
	p.Checkpoint = CheckpointConfig{Every: 2, Sink: mem}
	l, err := NewLoop(testGroup(t, 0, nil), p, testMeanWait, &recordSender{}, constRNG{f: 0.5, e: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.ComputePhase()
	l.CommitPhase() // loop 1: no checkpoint
	if _, _, ok := mem.Load(0); ok {
		t.Fatal("checkpointed off cadence")
	}
	l.ComputePhase()
	l.CommitPhase() // loop 2: checkpoint
	data, round, ok := mem.Load(0)
	if !ok || round != 2 {
		t.Fatalf("checkpoint at round %d (ok=%v), want 2", round, ok)
	}
	restored, err := NewLoop(l.Group(), testParams(), testMeanWait, &recordSender{}, constRNG{f: 0.5, e: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(data); err != nil {
		t.Fatal(err)
	}
	if restored.Loops() != 2 {
		t.Fatalf("restored loops = %d, want 2", restored.Loops())
	}
}

func TestFileCheckpointerRoundtrip(t *testing.T) {
	dir := t.TempDir()
	fc, err := NewFileCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fc.Load(3); err != nil || ok {
		t.Fatalf("Load on empty dir = ok=%v err=%v, want miss", ok, err)
	}
	if err := fc.Save(3, 7, []byte("snap-a")); err != nil {
		t.Fatal(err)
	}
	if err := fc.Save(3, 9, []byte("snap-b")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := fc.Load(3)
	if err != nil || !ok || string(data) != "snap-b" {
		t.Fatalf("Load = %q ok=%v err=%v, want newest snapshot", data, ok, err)
	}
}
