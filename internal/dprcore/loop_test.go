package dprcore

import (
	"strings"
	"testing"

	"p2prank/internal/pagerank"
	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
)

// testGroup hand-builds a two-page group with one efferent edge per
// entry of eff (destination group → entries), bypassing BuildGroups so
// tests control the shapes exactly.
func testGroup(t *testing.T, idx int, eff map[int32][]EffEntry) *Group {
	t.Helper()
	sys, err := pagerank.NewGroupSystem(2, nil, []int32{1, 2}, nil, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	grp := &Group{
		Index: idx,
		Pages: []int32{int32(2 * idx), int32(2*idx + 1)},
		Deg:   []int32{1, 2},
		Sys:   sys,
		Eff:   eff,
	}
	for dst, entries := range eff {
		grp.EffDsts = append(grp.EffDsts, dst)
		for _, e := range entries {
			grp.EffLinks += int64(e.Links)
		}
	}
	return grp
}

func testParams() Params {
	return Params{Alg: DPR1, Alpha: 0.85, InnerEpsilon: 1e-12, SendProb: 1}
}

const testMeanWait = 10

// recordSender captures the emitted chunk/flush sequence.
type recordSender struct {
	sends   []transport.ScoreChunk
	flushes int
}

func (s *recordSender) Send(from int, c transport.ScoreChunk) error {
	s.sends = append(s.sends, c)
	return nil
}

func (s *recordSender) Flush(from int) error {
	s.flushes++
	return nil
}

// constRNG returns fixed draws: Float64() = f, Exp(mean) = e·mean.
type constRNG struct{ f, e float64 }

func (r constRNG) Float64() float64         { return r.f }
func (r constRNG) Exp(mean float64) float64 { return r.e * mean }

func chunk(src, dst int32, round int64, values ...float64) transport.ScoreChunk {
	c := transport.ScoreChunk{SrcGroup: src, DstGroup: dst, Round: round}
	for i, v := range values {
		c.Entries = append(c.Entries, transport.ScoreEntry{DstLocal: int32(i), Value: v})
	}
	return c
}

func TestStaleChunksIgnored(t *testing.T) {
	l, err := NewLoop(testGroup(t, 0, nil), testParams(), testMeanWait, &recordSender{}, constRNG{e: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.Deliver(chunk(1, 0, 5, 2.0))
	l.Deliver(chunk(1, 0, 3, 99.0)) // older round: must not replace
	l.Deliver(chunk(1, 0, 5, 77.0)) // same round: must not replace either
	l.refreshX()
	if l.x[0] != 2.0 {
		t.Fatalf("x[0] = %v, stale chunk overwrote fresh one", l.x[0])
	}
	l.Deliver(chunk(1, 0, 6, 4.0))
	l.refreshX()
	if l.x[0] != 4.0 {
		t.Fatalf("x[0] = %v, fresher chunk not applied", l.x[0])
	}
}

func TestRefreshXSumsSourcesInOrder(t *testing.T) {
	l, err := NewLoop(testGroup(t, 0, nil), testParams(), testMeanWait, &recordSender{}, constRNG{e: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.Deliver(chunk(3, 0, 1, 1.0, 10.0))
	l.Deliver(chunk(1, 0, 1, 2.0))
	l.refreshX()
	if l.x[0] != 3.0 || l.x[1] != 10.0 {
		t.Fatalf("x = %v, want [3 10]", l.x)
	}
}

func TestDeliverWrongGroupPanics(t *testing.T) {
	l, err := NewLoop(testGroup(t, 0, nil), testParams(), testMeanWait, &recordSender{}, constRNG{e: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("misrouted chunk did not panic")
		}
	}()
	l.Deliver(chunk(1, 2, 1, 1.0))
}

func TestSetInitialRanksAfterStepFails(t *testing.T) {
	l, err := NewLoop(testGroup(t, 0, nil), testParams(), testMeanWait, &recordSender{}, constRNG{e: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetInitialRanks(vecmath.Vec{0.5, 0.5, 0.5}); err == nil {
		t.Fatal("wrong-length initial ranks accepted")
	}
	l.ComputePhase()
	if err := l.SetInitialRanks(vecmath.Vec{0.5, 0.5}); err == nil {
		t.Fatal("SetInitialRanks accepted after first iteration")
	}
}

func TestPublishYMergesAndScales(t *testing.T) {
	// Two efferent entries toward group 1's page 0 (from both local
	// pages) and one toward page 1: publishY must merge the adjacent
	// DstLocal-0 contributions into one entry.
	eff := map[int32][]EffEntry{1: {
		{LocalSrc: 0, DstLocal: 0, Links: 1},
		{LocalSrc: 1, DstLocal: 0, Links: 2},
		{LocalSrc: 1, DstLocal: 1, Links: 1},
	}}
	s := &recordSender{}
	l, err := NewLoop(testGroup(t, 0, eff), testParams(), testMeanWait, s, constRNG{e: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetInitialRanks(vecmath.Vec{1, 2}); err != nil {
		t.Fatal(err)
	}
	l.loops++ // bypass ComputePhase: publish the hand-set ranks directly
	l.publishY()
	if len(s.sends) != 1 || s.flushes != 1 {
		t.Fatalf("got %d sends, %d flushes, want 1 and 1", len(s.sends), s.flushes)
	}
	c := s.sends[0]
	if c.SrcGroup != 0 || c.DstGroup != 1 || c.Round != 1 || c.Links != 4 {
		t.Fatalf("chunk header %+v wrong", c)
	}
	if len(c.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (merged)", len(c.Entries))
	}
	// 1·0.85·1/1 + 2·0.85·2/2 = 2.55 toward page 0; 1·0.85·2/2 = 0.85.
	if c.Entries[0].Value != 0.85*1+2*0.85*1 || c.Entries[1].Value != 0.85 {
		t.Fatalf("entry values %+v wrong", c.Entries)
	}
}

func TestSendProbZeroPublishesNothing(t *testing.T) {
	eff := map[int32][]EffEntry{1: {{LocalSrc: 0, DstLocal: 0, Links: 1}}}
	p := testParams()
	p.SendProb = 0
	s := &recordSender{}
	l, err := NewLoop(testGroup(t, 0, eff), p, testMeanWait, s, constRNG{e: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.Step()
	if len(s.sends) != 0 || s.flushes != 0 {
		t.Fatalf("p = 0 still sent %d chunks, flushed %d times", len(s.sends), s.flushes)
	}
}

func TestDriveStopsWhenWaiterDoes(t *testing.T) {
	l, err := NewLoop(testGroup(t, 0, nil), testParams(), testMeanWait, &recordSender{}, constRNG{e: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	Drive(l, waiterFunc(func(d float64) bool {
		if d != 10 { // Exp(MeanWait) with the e=1 stub
			t.Fatalf("Wait(%v), want the loop's drawn wait 10", d)
		}
		n++
		return n <= 3
	}))
	if l.Loops() != 3 {
		t.Fatalf("Drive ran %d iterations, want 3", l.Loops())
	}
}

type waiterFunc func(d float64) bool

func (f waiterFunc) Wait(d float64) bool { return f(d) }

func TestNewLoopValidation(t *testing.T) {
	grp := testGroup(t, 0, nil)
	ok := testParams()
	for name, tc := range map[string]struct {
		grp      *Group
		p        Params
		meanWait float64
		sender   Sender
		rng      RNG
		want     string
	}{
		"nil group":     {nil, ok, 10, &recordSender{}, constRNG{}, "nil"},
		"nil sender":    {grp, ok, 10, nil, constRNG{}, "nil"},
		"nil rng":       {grp, ok, 10, &recordSender{}, nil, "nil"},
		"bad alg":       {grp, Params{Alg: Algorithm(7), Alpha: 0.85}, 10, &recordSender{}, constRNG{}, "algorithm"},
		"alpha 0":       {grp, Params{Alg: DPR1}, 10, &recordSender{}, constRNG{}, "alpha"},
		"alpha 1.2":     {grp, Params{Alg: DPR1, Alpha: 1.2}, 10, &recordSender{}, constRNG{}, "alpha"},
		"neg epsilon":   {grp, Params{Alg: DPR1, Alpha: 0.85, InnerEpsilon: -1}, 10, &recordSender{}, constRNG{}, "InnerEpsilon"},
		"sendprob 1.5":  {grp, Params{Alg: DPR1, Alpha: 0.85, SendProb: 1.5}, 10, &recordSender{}, constRNG{}, "SendProb"},
		"neg mean wait": {grp, ok, -1, &recordSender{}, constRNG{}, "mean wait"},
	} {
		_, err := NewLoop(tc.grp, tc.p, tc.meanWait, tc.sender, tc.rng)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", name, err, tc.want)
		}
	}
}

func TestStepAllocationFreeWithNilAndNoopObserver(t *testing.T) {
	for name, obs := range map[string]telemetry.Observer{"nil": nil, "noop": telemetry.Noop{}} {
		for _, alg := range []Algorithm{DPR1, DPR2} {
			p := testParams()
			p.Alg = alg
			p.Observer = obs
			l, err := NewLoop(testGroup(t, 0, nil), p, testMeanWait, &recordSender{}, constRNG{e: 1})
			if err != nil {
				t.Fatal(err)
			}
			l.Deliver(chunk(1, 0, 1, 0.25, 0.5))
			l.Step() // warm the srcOrder cache
			if n := testing.AllocsPerRun(50, func() { l.Step() }); n != 0 {
				t.Errorf("%s/%v: steady-state Step allocates %.1f times, want 0", name, alg, n)
			}
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if DPR1.String() != "DPR1" || DPR2.String() != "DPR2" {
		t.Fatal("algorithm names wrong")
	}
	if s := Algorithm(9).String(); !strings.Contains(s, "9") {
		t.Fatalf("unknown algorithm prints %q", s)
	}
}
