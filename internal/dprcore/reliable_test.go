package dprcore

import (
	"testing"

	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
)

// nullSender discards everything — the zero-allocation baseline.
type nullSender struct{}

func (nullSender) Send(from int, c transport.ScoreChunk) error { return nil }
func (nullSender) Flush(from int) error                        { return nil }

// countObs records the reliability hooks it saw.
type countObs struct {
	telemetry.Noop
	retried, acked, recovered int
}

func (o *countObs) ChunkRetried(ranker, dst, attempt int) { o.retried++ }
func (o *countObs) AckReceived(ranker, dst int, r int64)  { o.acked++ }
func (o *countObs) Recovered(ranker int, r int64)         { o.recovered++ }

func TestReliableConfigValidate(t *testing.T) {
	for name, cfg := range map[string]ReliableConfig{
		"negative timeout": {Timeout: -1},
		"backoff < 1":      {Timeout: 1, Backoff: 0.5},
		"jitter >= 1":      {Timeout: 1, Jitter: 1},
		"negative max":     {Timeout: 1, MaxTimeout: -1},
		"negative cool":    {Timeout: 1, Cooldown: -1},
		"negative tries":   {Timeout: 1, MaxAttempts: -1},
	} {
		if cfg.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := (ReliableConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if (ReliableConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(ReliableConfig{Timeout: 1}).Enabled() {
		t.Error("timeout config reports disabled")
	}
}

func TestNewReliableSenderValidation(t *testing.T) {
	if _, err := NewReliableSender(nil, &fakeClock{}, constRNG{}, ReliableConfig{Timeout: 1}); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewReliableSender(nullSender{}, nil, constRNG{}, ReliableConfig{Timeout: 1}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewReliableSender(nullSender{}, &fakeClock{}, nil, ReliableConfig{Timeout: 1}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewReliableSender(nullSender{}, &fakeClock{}, constRNG{}, ReliableConfig{}); err == nil {
		t.Error("disabled config accepted")
	}
}

// relFixture builds a reliable sender over a recordSender on a
// hand-cranked clock, with jitter disabled so deadlines are exact.
func relFixture(t *testing.T, cfg ReliableConfig) (*ReliableSender, *recordSender, *fakeClock) {
	t.Helper()
	inner := &recordSender{}
	clk := &fakeClock{}
	cfg.Jitter = -1
	rel, err := NewReliableSender(inner, clk, constRNG{f: 0.5, e: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rel, inner, clk
}

func TestReliableSenderRetriesWithBackoffUntilAck(t *testing.T) {
	rel, inner, clk := relFixture(t, ReliableConfig{Timeout: 10, Backoff: 2, MaxTimeout: 100})
	obs := &countObs{}
	rel.Observe(obs)
	if err := rel.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 1 {
		t.Fatalf("got %d sends, want the original", len(inner.sends))
	}
	clk.advance(9.9)
	if len(inner.sends) != 1 {
		t.Fatal("retried before the timeout")
	}
	clk.advance(10) // first retry at 10
	if len(inner.sends) != 2 {
		t.Fatalf("got %d sends, want retry at t=10", len(inner.sends))
	}
	clk.advance(29.9) // next deadline is 10 + 20 (backed off)
	if len(inner.sends) != 2 {
		t.Fatal("retried before the backed-off timeout")
	}
	clk.advance(30)
	if len(inner.sends) != 3 {
		t.Fatalf("got %d sends, want retry at t=30", len(inner.sends))
	}
	rel.Ack(0, 1, 1)
	clk.advance(1000)
	if len(inner.sends) != 3 {
		t.Fatalf("got %d sends, retried after the ack", len(inner.sends))
	}
	st := rel.Stats()
	if st.Retries != 2 || st.Acks != 1 {
		t.Fatalf("stats = %+v, want 2 retries and 1 ack", st)
	}
	if obs.retried != 2 || obs.acked != 1 {
		t.Fatalf("observer saw %d retries, %d acks, want 2 and 1", obs.retried, obs.acked)
	}
}

func TestReliableNewerSendSupersedesPending(t *testing.T) {
	rel, inner, clk := relFixture(t, ReliableConfig{Timeout: 10})
	if err := rel.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if err := rel.Send(0, chunk(0, 1, 2, 2.0)); err != nil {
		t.Fatal(err)
	}
	rel.Ack(0, 1, 1) // stale ack: the pending chunk is round 2
	clk.advance(50)
	last := inner.sends[len(inner.sends)-1]
	if last.Round != 2 {
		t.Fatalf("retransmitted round %d, want the superseding round 2", last.Round)
	}
	rel.Ack(0, 1, 2)
	n := len(inner.sends)
	clk.advance(1000)
	if len(inner.sends) != n {
		t.Fatal("retried after the cumulative ack")
	}
}

func TestReliableBreakerTripsSuppressesAndRecovers(t *testing.T) {
	rel, inner, clk := relFixture(t, ReliableConfig{Timeout: 10, Backoff: 1.001, MaxAttempts: 2, Cooldown: 1000})
	if err := rel.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	clk.advance(10) // retry 1
	clk.advance(21) // retry 2
	clk.advance(32) // attempts exhausted: the breaker trips
	st := rel.Stats()
	if st.BreakerTrips != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 1 trip after 2 retries", st)
	}
	if !rel.Broken(1) {
		t.Fatal("Broken(1) = false with the circuit open")
	}
	n := len(inner.sends)
	if err := rel.Send(0, chunk(0, 1, 2, 2.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != n {
		t.Fatal("send reached the wire with the circuit open")
	}
	if rel.Stats().Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", rel.Stats().Suppressed)
	}
	// Clearing the breaker (the supervisor restarted the peer) re-arms
	// the suppressed chunk for immediate retransmission.
	rel.ClearBreaker(1)
	if rel.Broken(1) {
		t.Fatal("Broken(1) = true after ClearBreaker")
	}
	clk.advance(clk.now)
	if len(inner.sends) != n+1 || inner.sends[len(inner.sends)-1].Round != 2 {
		t.Fatalf("suppressed chunk not retransmitted after ClearBreaker (%d sends)", len(inner.sends))
	}
	rel.Ack(0, 1, 2)
	if rel.Broken(1) {
		t.Fatal("ack left the circuit open")
	}
}

func TestReliableForgetDropsPending(t *testing.T) {
	rel, inner, clk := relFixture(t, ReliableConfig{Timeout: 10})
	if err := rel.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	rel.Forget(0)
	n := len(inner.sends)
	clk.advance(1000)
	if len(inner.sends) != n {
		t.Fatal("forgotten chunk was retransmitted")
	}
	if got := rel.PendingChunks(0, nil); len(got) != 0 {
		t.Fatalf("PendingChunks = %v after Forget, want none", got)
	}
}

func TestReliablePendingChunksAscending(t *testing.T) {
	rel, _, _ := relFixture(t, ReliableConfig{Timeout: 10})
	if err := rel.Send(0, chunk(0, 3, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if err := rel.Send(0, chunk(0, 1, 1, 2.0)); err != nil {
		t.Fatal(err)
	}
	got := rel.PendingChunks(0, nil)
	if len(got) != 2 || got[0].DstGroup != 1 || got[1].DstGroup != 3 {
		t.Fatalf("PendingChunks = %v, want dst 1 then dst 3", got)
	}
	rel.Ack(0, 1, 1)
	if got := rel.PendingChunks(0, nil); len(got) != 1 || got[0].DstGroup != 3 {
		t.Fatalf("PendingChunks = %v after ack, want only dst 3", got)
	}
}

// TestReliableSenderZeroAllocs pins the zero-fault hot path: once a
// slot and its timer exist, a send/ack round trip allocates nothing.
func TestReliableSenderZeroAllocs(t *testing.T) {
	clk := &fakeClock{}
	rel, err := NewReliableSender(nullSender{}, clk, constRNG{f: 0.5}, ReliableConfig{Timeout: 10})
	if err != nil {
		t.Fatal(err)
	}
	c := chunk(0, 1, 0, 0.5)
	round := int64(0)
	round++
	c.Round = round
	if err := rel.Send(0, c); err != nil { // prewarm: slot + timer
		t.Fatal(err)
	}
	rel.Ack(0, 1, round)
	avg := testing.AllocsPerRun(1000, func() {
		round++
		c.Round = round
		if err := rel.Send(0, c); err != nil {
			t.Fatal(err)
		}
		rel.Ack(0, 1, round)
	})
	if avg != 0 {
		t.Fatalf("send/ack path allocates %v allocs/op, want 0", avg)
	}
}

// BenchmarkReliableSend measures the zero-fault send/ack round trip —
// the overhead the reliable layer adds when nothing goes wrong.
func BenchmarkReliableSend(b *testing.B) {
	clk := &fakeClock{}
	rel, err := NewReliableSender(nullSender{}, clk, constRNG{f: 0.5}, ReliableConfig{Timeout: 10})
	if err != nil {
		b.Fatal(err)
	}
	c := chunk(0, 1, 0, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Round = int64(i + 1)
		if err := rel.Send(0, c); err != nil {
			b.Fatal(err)
		}
		rel.Ack(0, 1, c.Round)
	}
}

// TestReliableBreakerPartitionOpenProbeCloseAcrossHeal walks the
// breaker's full state machine against the partition fault rather than
// a silent null sender: the reliable layer sits above a FaultSender
// whose partition blackholes the cut, so every state transition is
// driven by the same injected fault the degraded-serving stack models.
//
//	open:      blackholed chunk exhausts MaxAttempts, circuit trips
//	half-open: first send after Cooldown probes the peer; mid-partition
//	           the probe is blackholed too and the circuit re-trips
//	closed:    post-heal the probe lands, the ack closes the circuit
func TestReliableBreakerPartitionOpenProbeCloseAcrossHeal(t *testing.T) {
	fcfg := FaultConfig{PartitionFrac: 0.4, PartitionFrom: 0, PartitionTo: 200, Seed: 7}
	mi, ma := latticePair(t, fcfg)
	inner := &recordSender{}
	clk := &fakeClock{}
	faults, err := NewFaultSender(inner, clk, constRNG{}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := NewReliableSender(faults, clk, constRNG{f: 0.5, e: 1},
		ReliableConfig{Timeout: 10, Backoff: 1.001, MaxAttempts: 2, Cooldown: 100, Jitter: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Open: the chunk and both retries cross the cut and vanish.
	if err := rel.Send(ma, chunk(int32(ma), int32(mi), 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	clk.advance(10)
	clk.advance(21)
	clk.advance(32) // attempts exhausted at the third expiry
	if st := rel.Stats(); st.BreakerTrips != 1 || st.Retries != 2 {
		t.Fatalf("stats %+v, want 1 trip after 2 retries", st)
	}
	if !rel.Broken(mi) {
		t.Fatal("Broken(minority) = false with the partition swallowing every attempt")
	}
	if len(inner.sends) != 0 {
		t.Fatalf("%d chunks crossed an active partition", len(inner.sends))
	}

	// Still open: the next round's send is suppressed, not retried.
	if err := rel.Send(ma, chunk(int32(ma), int32(mi), 2, 2.0)); err != nil {
		t.Fatal(err)
	}
	if st := rel.Stats(); st.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", st.Suppressed)
	}

	// Half-open mid-partition: the cooldown (ends ~t=132) expires while
	// the cut is still up, so the probe is blackholed and the circuit
	// trips again.
	clk.advance(140)
	if rel.Broken(mi) {
		t.Fatal("circuit still reported open after the cooldown elapsed")
	}
	if err := rel.Send(ma, chunk(int32(ma), int32(mi), 3, 3.0)); err != nil {
		t.Fatal(err)
	}
	clk.advance(150)
	clk.advance(161)
	clk.advance(172)
	if st := rel.Stats(); st.BreakerTrips != 2 {
		t.Fatalf("stats %+v, want the mid-partition probe to re-trip", st)
	}
	if !rel.Broken(mi) || len(inner.sends) != 0 {
		t.Fatalf("mid-partition probe escaped: broken=%v sends=%d", rel.Broken(mi), len(inner.sends))
	}

	// Closed: past the heal (t=200) and the second cooldown (~t=272),
	// the probe lands on the wire and the ack closes the circuit.
	clk.advance(280)
	if err := rel.Send(ma, chunk(int32(ma), int32(mi), 4, 4.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 1 || inner.sends[0].Round != 4 {
		t.Fatalf("post-heal probe did not reach the wire: %d sends", len(inner.sends))
	}
	rel.Ack(ma, int32(mi), 4)
	if rel.Broken(mi) {
		t.Fatal("ack left the circuit open")
	}
	clk.advance(2000)
	if len(inner.sends) != 1 {
		t.Fatalf("retransmitted after the closing ack (%d sends)", len(inner.sends))
	}
	if st := rel.Stats(); st.Acks != 1 {
		t.Fatalf("stats %+v, want the closing ack counted", st)
	}
	if got := faults.Partitioned(); got < 6 {
		t.Fatalf("Partitioned() = %d, want every pre-heal attempt blackholed", got)
	}
}
