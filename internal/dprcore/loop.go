package dprcore

import (
	"fmt"
	"sort"

	"p2prank/internal/pagerank"
	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
)

// Loop is one page ranker's algorithmic state and update rule, shared
// verbatim by every runtime. A Loop is not goroutine-safe: the driver
// serializes Deliver, the phases, and NextWait (the simulator by
// running them on the simulation goroutine, netpeer with a mutex).
//
// One iteration of Algorithm 3/4 is ComputePhase followed by
// CommitPhase. The split mirrors the simulator's two-phase events:
// ComputePhase touches only this loop's private vectors, so a runtime
// may execute the compute phases of many loops concurrently at the
// same instant; CommitPhase draws randomness and emits through the
// Sender, so runtimes must run it serially in schedule order.
type Loop struct {
	grp      *Group
	p        Params
	meanWait float64
	sender   Sender
	rng      RNG
	// obs receives telemetry at the phase boundaries. It is nil-checked
	// before every hook: with no observer the hot path performs exactly
	// one pointer comparison per hook site and allocates nothing.
	obs telemetry.Observer

	r       vecmath.Vec // current rank vector R
	x       vecmath.Vec // assembled afferent vector X
	scratch vecmath.Vec // swap buffer for the in-place solves
	// mergedY caches, per destination group, how many entries Y = BR
	// merges to, so publishY can size each chunk's slice exactly.
	mergedY map[int32]int32
	// latest holds the most recent chunk received from each source
	// group; refreshX sums them. Stale (older-round) chunks are
	// ignored, since the paper's algorithms always use the newest
	// afferent scores available.
	latest map[int32]transport.ScoreChunk
	// srcOrder caches latest's keys in ascending order for
	// reproducible summation.
	srcOrder []int32

	loops   int64
	stepped bool

	// pending is the sender's unacked-chunk probe (set when the sender
	// is a ReliableSender), so snapshots capture the in-flight outbox.
	pending PendingSource
	// Reusable snapshot scratch: checkpointing on a cadence must not
	// grow the steady-state allocation profile.
	ckptBuf     []byte
	snapSrcs    []int32
	snapPending []transport.ScoreChunk
}

// NewLoop builds the loop for grp with the resolved per-loop mean wait
// (the runtime draws it from [p.T1, p.T2]; see Params). The rng must be
// a stream private to this loop. The loop consumes p's algorithm
// fields and Observer; Fault and the pacing bounds are runtime
// concerns (see FaultSender).
func NewLoop(grp *Group, p Params, meanWait float64, sender Sender, rng RNG) (*Loop, error) {
	if err := p.validateLoop(); err != nil {
		return nil, err
	}
	if meanWait < 0 {
		return nil, fmt.Errorf("dprcore: negative mean wait %v", meanWait)
	}
	if grp == nil || sender == nil || rng == nil {
		return nil, fmt.Errorf("dprcore: nil dependency")
	}
	mergedY := make(map[int32]int32, len(grp.Eff))
	for dst, entries := range grp.Eff {
		var n int32
		prev := int32(-1)
		for _, e := range entries { // sorted by DstLocal: count the runs
			if e.DstLocal != prev {
				n++
				prev = e.DstLocal
			}
		}
		mergedY[dst] = n
	}
	l := &Loop{
		grp:      grp,
		p:        p,
		meanWait: meanWait,
		sender:   sender,
		rng:      rng,
		obs:      p.Observer,
		r:        vecmath.NewVec(grp.N()), // R0 = 0, the Theorem 4.1/4.2 start
		x:        vecmath.NewVec(grp.N()),
		scratch:  vecmath.NewVec(grp.N()),
		mergedY:  mergedY,
		latest:   make(map[int32]transport.ScoreChunk),
	}
	if ps, ok := sender.(PendingSource); ok {
		l.pending = ps
	}
	return l, nil
}

// Group returns the loop's page group.
func (l *Loop) Group() *Group { return l.grp }

// SetInitialRanks warm-starts the loop from a previous run's ranks —
// how an incremental recrawl avoids ranking from scratch (§4.3's
// dynamic-graph setting). It must be called before the first
// ComputePhase. Note the Theorem 4.1/4.2 monotonicity guarantees are
// stated for R0 = 0; a warm start trades them for a head start, and
// the contraction still drives the ranks to the fixed point.
func (l *Loop) SetInitialRanks(r vecmath.Vec) error {
	if l.stepped {
		return fmt.Errorf("dprcore: ranker %d: SetInitialRanks after first iteration", l.grp.Index)
	}
	if len(r) != l.grp.N() {
		return fmt.Errorf("dprcore: ranker %d: initial ranks have length %d, want %d",
			l.grp.Index, len(r), l.grp.N())
	}
	copy(l.r, r)
	return nil
}

// Ranks returns the loop's current rank vector. The slice is live;
// callers must copy before mutating or crossing an iteration.
func (l *Loop) Ranks() vecmath.Vec { return l.r }

// Loops returns how many main-loop iterations have executed.
func (l *Loop) Loops() int64 { return l.loops }

// NextWait draws the exponentially distributed pause before the next
// iteration. It consumes randomness, so drivers must call it from
// commit (serial) context, in schedule order.
func (l *Loop) NextWait() float64 { return l.rng.Exp(l.meanWait) }

// Deliver records the chunk as the newest afferent contribution from
// its source group. A chunk addressed to another group is a routing
// bug in the driver and panics; drivers that can legitimately see
// foreign chunks (overlay relays) must filter before delivering.
func (l *Loop) Deliver(chunk transport.ScoreChunk) {
	if int(chunk.DstGroup) != l.grp.Index {
		panic(fmt.Sprintf("dprcore: ranker %d delivered chunk for group %d", l.grp.Index, chunk.DstGroup))
	}
	if prev, ok := l.latest[chunk.SrcGroup]; ok && prev.Round >= chunk.Round {
		return // out-of-order stale delivery
	}
	l.latest[chunk.SrcGroup] = chunk
}

// ComputePhase is the compute half of one main-loop body of Algorithm
// 3 or 4: refresh X and update R, touching only this loop's private
// vectors, so a runtime may run it concurrently with other loops'
// compute phases at the same instant. Observer hooks fire here from
// that concurrent context; collectors handle per-ranker concurrency.
func (l *Loop) ComputePhase() {
	l.stepped = true
	round := l.loops + 1
	if l.obs != nil {
		l.obs.ComputeStart(l.grp.Index, round)
	}
	srcs, xEntries := l.refreshX()
	var st telemetry.ComputeStats
	switch l.p.Alg {
	case DPR1:
		opt := pagerank.Options{
			Alpha:   l.p.Alpha,
			Epsilon: l.p.InnerEpsilon,
			MaxIter: l.p.InnerMaxIter,
		}
		res, err := l.grp.Sys.SolveInPlace(l.r, l.x, l.scratch, opt)
		if err != nil {
			// Inner non-convergence is a configuration error (‖A‖∞ < 1
			// guarantees convergence for any positive ε); surface loudly.
			panic(fmt.Sprintf("dprcore: ranker %d: inner solve: %v", l.grp.Index, err))
		}
		st.InnerIterations = res.Iterations
		st.Residual = res.FinalDelta
	case DPR2:
		l.grp.Sys.Step(l.scratch, l.r, l.x)
		l.r, l.scratch = l.scratch, l.r
		st.InnerIterations = 1
		if l.obs != nil {
			// ‖ΔR‖∞ of the single step; the old iterate sits in scratch
			// after the swap. Computed only for the observer — it feeds
			// nothing back into the algorithm.
			var d float64
			for i := range l.r {
				if diff := l.r[i] - l.scratch[i]; diff > d {
					d = diff
				} else if -diff > d {
					d = -diff
				}
			}
			st.Residual = d
		}
	}
	if l.obs != nil {
		st.XSources, st.XEntries = srcs, xEntries
		l.obs.ComputeEnd(l.grp.Index, round, st)
	}
}

// CommitPhase is the serial half of an iteration: everything that
// draws randomness or sends, plus the checkpoint cadence.
func (l *Loop) CommitPhase() {
	l.loops++
	l.publishY()
	if ck := l.p.Checkpoint; ck.Sink != nil && ck.Every > 0 && l.loops%ck.Every == 0 {
		l.ckptBuf = l.AppendSnapshot(l.ckptBuf[:0])
		if err := ck.Sink.Save(l.grp.Index, l.loops, l.ckptBuf); err != nil {
			// A checkpoint sink that cannot persist is an operational
			// error, not an algorithmic one, but running on silently
			// would fake the durability the config asked for.
			panic(fmt.Sprintf("dprcore: ranker %d: checkpoint: %v", l.grp.Index, err))
		}
	}
}

// Step runs one full iteration. Drivers that interleave many loops
// (the simulator) call the phases separately instead.
func (l *Loop) Step() {
	l.ComputePhase()
	l.CommitPhase()
}

// refreshX assembles X from the newest chunk of every source group,
// returning the source and entry counts for telemetry. Sources are
// summed in ascending group order so floating-point rounding is
// reproducible.
func (l *Loop) refreshX() (sources, entries int) {
	l.x.Zero()
	if len(l.srcOrder) != len(l.latest) {
		l.srcOrder = l.srcOrder[:0]
		for src := range l.latest {
			l.srcOrder = append(l.srcOrder, src)
		}
		sort.Slice(l.srcOrder, func(i, j int) bool { return l.srcOrder[i] < l.srcOrder[j] })
	}
	for _, src := range l.srcOrder {
		es := l.latest[src].Entries
		entries += len(es)
		for _, e := range es {
			l.x[e.DstLocal] += e.Value
		}
	}
	return len(l.srcOrder), entries
}

// publishY computes Y = BR per destination group and hands it to the
// Sender, subjecting each destination's send to the loss parameter p.
func (l *Loop) publishY() {
	sent := false
	for _, dstGroup := range l.grp.EffDsts {
		entries := l.grp.Eff[dstGroup]
		if l.p.SendProb < 1 && l.rng.Float64() >= l.p.SendProb {
			continue // this group's Y update is lost this round
		}
		chunk := transport.ScoreChunk{
			SrcGroup: int32(l.grp.Index),
			DstGroup: dstGroup,
			Round:    l.loops,
			// Sized exactly: one allocation, no append growth. The slice
			// cannot be pooled — it rides the in-flight message and the
			// receiver keeps it as its newest afferent contribution.
			Entries: make([]transport.ScoreEntry, 0, l.mergedY[dstGroup]),
		}
		// Entries are sorted by DstLocal; merge adjacent contributions
		// to the same destination page.
		for _, e := range entries {
			v := float64(e.Links) * l.p.Alpha * l.r[e.LocalSrc] / float64(l.grp.Deg[e.LocalSrc])
			chunk.Links += int64(e.Links)
			n := len(chunk.Entries)
			if n > 0 && chunk.Entries[n-1].DstLocal == e.DstLocal {
				chunk.Entries[n-1].Value += v
			} else {
				chunk.Entries = append(chunk.Entries, transport.ScoreEntry{DstLocal: e.DstLocal, Value: v})
			}
		}
		if err := l.sender.Send(l.grp.Index, chunk); err != nil {
			panic(fmt.Sprintf("dprcore: ranker %d: send: %v", l.grp.Index, err))
		}
		if l.obs != nil {
			l.obs.ChunkSent(l.grp.Index, telemetry.ChunkStats{
				Dst:     int(dstGroup),
				Round:   l.loops,
				Entries: len(chunk.Entries),
				Links:   chunk.Links,
			})
		}
		sent = true
	}
	if sent {
		if err := l.sender.Flush(l.grp.Index); err != nil {
			panic(fmt.Sprintf("dprcore: ranker %d: flush: %v", l.grp.Index, err))
		}
	}
}

// Drive runs the loop to completion under w: wait, compute, commit,
// repeat, until Wait reports the runtime is done. It is the whole main
// loop of Algorithm 3/4 for runtimes that block between iterations;
// event-driven runtimes schedule the phases themselves, and runtimes
// with concurrent delivery must also serialize against Deliver (which
// is why netpeer's driver inlines this loop under its state lock).
func Drive(l *Loop, w Waiter) {
	for w.Wait(l.NextWait()) {
		l.ComputePhase()
		l.CommitPhase()
	}
}
