package dprcore

import (
	"fmt"
	"sync"

	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
)

// ReliableConfig parameterizes a ReliableSender. A positive Timeout
// enables the layer; the zero value disables it.
type ReliableConfig struct {
	// Timeout is the base retransmission timeout in the runtime's time
	// units (virtual units in-sim, nanoseconds live): an unacked chunk
	// is re-sent after roughly this long. Positive enables the layer.
	Timeout float64
	// Backoff multiplies the timeout after every expiry (default 2).
	Backoff float64
	// MaxTimeout caps the backed-off timeout (default 16 × Timeout).
	MaxTimeout float64
	// Jitter spreads deadlines: each one is stretched by a uniform
	// factor in [1, 1+Jitter) drawn from the layer's private RNG stream
	// (default 0.1). Negative disables jitter explicitly.
	Jitter float64
	// MaxAttempts bounds retransmissions of one chunk; a destination
	// that outlives them trips the dead-peer circuit breaker
	// (default 6).
	MaxAttempts int
	// Cooldown is how long an open circuit suppresses traffic to a
	// presumed-dead peer before the next send probes it again
	// (default 10 × Timeout).
	Cooldown float64
}

// Enabled reports whether the config turns the reliable layer on.
func (c ReliableConfig) Enabled() bool { return c.Timeout > 0 }

// Validate checks the knobs. The zero value is valid (disabled).
func (c ReliableConfig) Validate() error {
	if c.Timeout < 0 {
		return fmt.Errorf("dprcore: reliable Timeout %v negative", c.Timeout)
	}
	if c.Backoff != 0 && c.Backoff < 1 {
		return fmt.Errorf("dprcore: reliable Backoff %v < 1", c.Backoff)
	}
	if c.MaxTimeout < 0 || c.Cooldown < 0 {
		return fmt.Errorf("dprcore: reliable MaxTimeout/Cooldown negative")
	}
	if c.Jitter >= 1 {
		return fmt.Errorf("dprcore: reliable Jitter %v must be < 1", c.Jitter)
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("dprcore: reliable MaxAttempts %d negative", c.MaxAttempts)
	}
	return nil
}

// withDefaults returns the config with zero fields resolved.
func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.Backoff == 0 {
		c.Backoff = 2
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 16 * c.Timeout
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	} else if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 6
	}
	if c.Cooldown == 0 {
		c.Cooldown = 10 * c.Timeout
	}
	return c
}

// ReliableStats aggregates a ReliableSender's counters.
type ReliableStats struct {
	// Retries is the number of retransmitted chunks.
	Retries int64
	// Acks is the number of acks that cleared a pending chunk.
	Acks int64
	// BreakerTrips counts circuits opened on presumed-dead peers.
	BreakerTrips int64
	// Suppressed counts sends swallowed while a circuit was open.
	Suppressed int64
}

// relSlot tracks the newest unacknowledged chunk from one ranker to one
// destination group. The loop's stale-round suppression makes chunk
// rounds the sequence numbers: a newer chunk to the same destination
// supersedes the pending one (the receiver would discard the old round
// anyway), so each slot holds at most one chunk.
type relSlot struct {
	from int
	dst  int

	chunk    transport.ScoreChunk
	round    int64
	active   bool    // an unacked chunk is pending
	attempts int     // retransmissions of the pending chunk
	timeout  float64 // current backed-off timeout
	nextAt   float64 // deadline of the next retransmission
	armed    bool    // a timer callback is in flight
	// brokenUntil, when in the future, means the circuit to dst is open:
	// the peer blew through MaxAttempts without acking and sends are
	// suppressed until the cooldown passes.
	brokenUntil float64

	// check is the timer callback, built once per slot so re-arming a
	// retransmission timer allocates nothing.
	check func()
}

// ReliableSender wraps a Sender with acknowledged delivery: every chunk
// is tracked until the destination acks its round, retransmitted on
// timeout with exponential backoff and RNG-drawn jitter, and abandoned
// behind a circuit breaker once the peer looks dead. Both stacks use it
// unchanged — in-sim the Clock is the simulator (timers are serial
// virtual-time events, runs stay bit-reproducible), live it is the wall
// clock (timers fire on goroutines, the internal mutex serializes
// them). Compose it *above* a FaultSender so retransmissions are
// themselves subject to injected loss:
//
//	loop → ReliableSender → FaultSender → fabric/outbox
//
// Sequence numbers are the chunks' Round fields: rounds increase
// per (src, dst) stream and receivers already discard stale rounds, so
// a newer chunk supersedes the pending one and an ack for round r
// cumulatively covers everything at or before r.
type ReliableSender struct {
	inner Sender
	clock Clock
	rng   RNG
	cfg   ReliableConfig
	obs   telemetry.Observer

	mu    sync.Mutex
	slots [][]*relSlot // [from][dst], grown lazily, never shrunk
	stats ReliableStats

	// sendMu serializes every call into the wrapped sender. On the live
	// stack retransmission timers fire on their own goroutines, and the
	// inner sender may not be goroutine-safe (a FaultSender draws from a
	// single-stream RNG); in-sim timers are serial events and the lock
	// is uncontended. Kept separate from mu so a blocked downstream send
	// never stalls ack processing.
	sendMu sync.Mutex
}

// NewReliableSender wraps inner. The rng must be a stream private to
// this wrapper — jitter draws from it, never from the loop's stream, so
// enabling reliability does not perturb the algorithm's randomness.
func NewReliableSender(inner Sender, clock Clock, rng RNG, cfg ReliableConfig) (*ReliableSender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("dprcore: reliable sender needs positive Timeout")
	}
	if inner == nil || clock == nil || rng == nil {
		return nil, fmt.Errorf("dprcore: nil dependency")
	}
	return &ReliableSender{inner: inner, clock: clock, rng: rng, cfg: cfg.withDefaults()}, nil
}

// Observe installs o as the retry/ack observer (nil uninstalls). Call
// it before the first Send.
func (s *ReliableSender) Observe(o telemetry.Observer) { s.obs = o }

// slot returns the (from, dst) slot, growing the table on first use.
// Callers hold mu.
func (s *ReliableSender) slot(from, dst int) *relSlot {
	for len(s.slots) <= from {
		s.slots = append(s.slots, nil)
	}
	row := s.slots[from]
	for len(row) <= dst {
		row = append(row, nil)
	}
	s.slots[from] = row
	sl := row[dst]
	if sl == nil {
		//p2plint:allow hotalloc -- slot memo warm-up, once per (from, dst) pair
		sl = &relSlot{from: from, dst: dst}
		//p2plint:allow hotalloc -- one timer closure per slot, reused by every re-arm
		sl.check = func() { s.expire(sl) }
		row[dst] = sl
	}
	return sl
}

// deadline sets the slot's next retransmission deadline d units out,
// stretched by the jitter draw. Callers hold mu.
func (s *ReliableSender) deadline(sl *relSlot, now, d float64) {
	if s.cfg.Jitter > 0 {
		d *= 1 + s.cfg.Jitter*s.rng.Float64()
	}
	sl.nextAt = now + d
}

// arm schedules the slot's timer callback for its deadline unless one
// is already in flight — at most one timer per slot exists at any time,
// so a send per round re-arms nothing and allocates nothing. Callers
// hold mu.
func (s *ReliableSender) arm(sl *relSlot, now float64) {
	if sl.armed {
		return
	}
	sl.armed = true
	d := sl.nextAt - now
	if d < 0 {
		d = 0
	}
	s.clock.After(d, sl.check)
}

// Send tracks the chunk as pending toward its destination and forwards
// it. Like the Sender it wraps, Send is called from commit context; the
// internal mutex additionally admits the timer and ack contexts.
//
//p2plint:hotpath -- wraps every chunk send when reliable delivery is on
func (s *ReliableSender) Send(from int, chunk transport.ScoreChunk) error {
	s.mu.Lock()
	sl := s.slot(from, int(chunk.DstGroup))
	now := s.clock.Now()
	if sl.brokenUntil > now {
		// Circuit open: the peer is presumed dead. Track the newest
		// chunk so state is current when the circuit closes, but keep
		// it off the wire until the cooldown passes.
		sl.chunk = chunk
		sl.round = chunk.Round
		sl.active = true
		sl.attempts = 0
		sl.timeout = s.cfg.Timeout
		s.stats.Suppressed++
		s.mu.Unlock()
		return nil
	}
	sl.brokenUntil = 0
	sl.chunk = chunk
	sl.round = chunk.Round
	sl.active = true
	sl.attempts = 0
	sl.timeout = s.cfg.Timeout
	s.deadline(sl, now, sl.timeout)
	s.arm(sl, now)
	s.mu.Unlock()
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	return s.inner.Send(from, chunk)
}

// Flush forwards to the wrapped sender.
func (s *ReliableSender) Flush(from int) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	return s.inner.Flush(from)
}

// expire is the timer callback: retransmit the pending chunk if its
// deadline truly passed, or trip the breaker once attempts run out.
func (s *ReliableSender) expire(sl *relSlot) {
	s.mu.Lock()
	sl.armed = false
	if !sl.active || sl.brokenUntil > 0 {
		s.mu.Unlock()
		return
	}
	now := s.clock.Now()
	if now < sl.nextAt {
		// A newer send pushed the deadline out while this timer was in
		// flight; sleep the remainder.
		s.arm(sl, now)
		s.mu.Unlock()
		return
	}
	sl.attempts++
	if sl.attempts > s.cfg.MaxAttempts {
		// Dead-peer circuit breaker: stop burning the network on a peer
		// that has stopped acking. The first send after Cooldown probes
		// it again; any ack closes the circuit immediately.
		sl.brokenUntil = now + s.cfg.Cooldown
		sl.active = false
		s.stats.BreakerTrips++
		s.mu.Unlock()
		return
	}
	s.stats.Retries++
	sl.timeout *= s.cfg.Backoff
	if sl.timeout > s.cfg.MaxTimeout {
		sl.timeout = s.cfg.MaxTimeout
	}
	s.deadline(sl, now, sl.timeout)
	s.arm(sl, now)
	from, chunk, attempt, obs := sl.from, sl.chunk, sl.attempts, s.obs
	s.mu.Unlock()
	if obs != nil {
		obs.ChunkRetried(from, sl.dst, attempt)
	}
	// Retransmit outside the state lock (a blocked downstream must not
	// stall acks), serialized with commit-context sends by sendMu. A
	// failed retransmission is just another loss; the next expiry
	// retries again.
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if err := s.inner.Send(from, chunk); err != nil {
		return
	}
	_ = s.inner.Flush(from)
}

// Ack records a cumulative acknowledgement from destination dst
// covering from's chunks up to and including round. An ack also closes
// the destination's circuit: a peer that acks is alive.
func (s *ReliableSender) Ack(from int, dst int32, round int64) {
	s.mu.Lock()
	if from >= len(s.slots) || int(dst) >= len(s.slots[from]) {
		s.mu.Unlock()
		return
	}
	sl := s.slots[from][int(dst)]
	if sl == nil {
		s.mu.Unlock()
		return
	}
	sl.brokenUntil = 0
	if !sl.active || sl.round > round {
		s.mu.Unlock()
		return // nothing pending, or the pending chunk is newer
	}
	sl.active = false
	sl.attempts = 0
	s.stats.Acks++
	obs := s.obs
	s.mu.Unlock()
	if obs != nil {
		obs.AckReceived(from, int(dst), round)
	}
}

// Forget discards all of from's pending chunks and timers — the sender
// crashed, and its post-restart state (checkpointed pending chunks
// included) re-enters through Send.
func (s *ReliableSender) Forget(from int) {
	s.mu.Lock()
	if from < len(s.slots) {
		for _, sl := range s.slots[from] {
			if sl != nil {
				sl.active = false
				sl.attempts = 0
				sl.brokenUntil = 0
			}
		}
	}
	s.mu.Unlock()
}

// ClearBreaker closes every sender's circuit toward destination group
// dst — a supervisor calls it right after restarting the peer, so
// traffic resumes immediately instead of waiting out the cooldown. A
// chunk that was suppressed while the circuit was open is re-armed for
// immediate retransmission.
func (s *ReliableSender) ClearBreaker(dst int) {
	s.mu.Lock()
	now := s.clock.Now()
	for _, row := range s.slots {
		if dst >= len(row) || row[dst] == nil {
			continue
		}
		sl := row[dst]
		if sl.brokenUntil == 0 {
			continue
		}
		sl.brokenUntil = 0
		if sl.active {
			sl.timeout = s.cfg.Timeout
			sl.nextAt = now
			s.arm(sl, now)
		}
	}
	s.mu.Unlock()
}

// Broken reports whether any sender's circuit to destination group dst
// is currently open — the reliable layer's "this peer stopped acking"
// signal, which supervisors combine with connection-level liveness.
func (s *ReliableSender) Broken(dst int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	for _, row := range s.slots {
		if dst < len(row) && row[dst] != nil && row[dst].brokenUntil > now {
			return true
		}
	}
	return false
}

// PendingChunks appends from's unacknowledged chunks to dst in
// ascending destination order — the deterministic "pending outbox" a
// checkpoint captures. It implements PendingSource.
func (s *ReliableSender) PendingChunks(from int, dst []transport.ScoreChunk) []transport.ScoreChunk {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < len(s.slots) {
		for _, sl := range s.slots[from] {
			if sl != nil && sl.active {
				dst = append(dst, sl.chunk)
			}
		}
	}
	return dst
}

// Stats returns the layer's counters.
func (s *ReliableSender) Stats() ReliableStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
