package dprcore

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"p2prank/internal/transport"
)

// snapMagic identifies an encoded loop snapshot; snapVersion gates the
// layout so future fields can evolve it.
const (
	snapMagic   = "DPRS"
	snapVersion = 1
)

// Checkpointer persists encoded loop snapshots. Save is called from the
// loop's commit context with a buffer the loop reuses on the next
// cadence, so implementations must copy data if they retain it.
type Checkpointer interface {
	Save(ranker int, round int64, data []byte) error
}

// CheckpointConfig schedules periodic snapshots of a loop's recoverable
// state through Params. The zero value checkpoints nothing.
type CheckpointConfig struct {
	// Every is the round cadence: a snapshot is taken after every Every
	// committed loops (0 disables).
	Every int64
	// Sink receives the snapshots. Runtimes may install it themselves
	// (the engine defaults to an in-memory sink when churn restarts
	// from checkpoints; netpeer clusters use a FileCheckpointer).
	Sink Checkpointer
}

// Enabled reports whether loops will actually checkpoint.
func (c CheckpointConfig) Enabled() bool { return c.Every > 0 && c.Sink != nil }

// Validate checks the cadence. A positive Every with a nil Sink is
// legal at validation time — runtimes install their sink during build.
func (c CheckpointConfig) Validate() error {
	if c.Every < 0 {
		return fmt.Errorf("dprcore: checkpoint cadence %d negative", c.Every)
	}
	return nil
}

// PendingSource is implemented by senders that track unacknowledged
// chunks (ReliableSender). A loop whose sender implements it includes
// the pending outbox in its snapshots, so a restart retransmits what
// the crash left in flight.
type PendingSource interface {
	PendingChunks(from int, dst []transport.ScoreChunk) []transport.ScoreChunk
}

// Snapshot returns the loop's recoverable state — R, the newest
// afferent chunk per source (the X table), the loop counter, and any
// pending unacked chunks — encoded deterministically: fixed-width
// little-endian fields, chunk tables in ascending group order. Byte
// equality of two snapshots therefore means state equality.
func (l *Loop) Snapshot() []byte { return l.AppendSnapshot(nil) }

// AppendSnapshot appends the loop's encoded snapshot to buf and returns
// the extended slice. Call from commit (serial) context.
func (l *Loop) AppendSnapshot(buf []byte) []byte {
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.grp.Index))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.loops))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.r)))
	for _, v := range l.r {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	l.snapSrcs = l.snapSrcs[:0]
	for src := range l.latest {
		l.snapSrcs = append(l.snapSrcs, src)
	}
	sort.Slice(l.snapSrcs, func(i, j int) bool { return l.snapSrcs[i] < l.snapSrcs[j] })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.snapSrcs)))
	for _, src := range l.snapSrcs {
		buf = appendChunk(buf, l.latest[src])
	}
	l.snapPending = l.snapPending[:0]
	if l.pending != nil {
		l.snapPending = l.pending.PendingChunks(l.grp.Index, l.snapPending)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.snapPending)))
	for _, c := range l.snapPending {
		buf = appendChunk(buf, c)
	}
	return buf
}

func appendChunk(buf []byte, c transport.ScoreChunk) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.SrcGroup))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.DstGroup))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Round))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Links))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Entries)))
	for _, e := range c.Entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.DstLocal))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Value))
	}
	return buf
}

// EncodeRankSnapshot appends a bare rank vector encoded in the loop
// snapshot format (empty X table, no pending chunks) and returns the
// extended slice. The serving tier's publish seam (internal/serve)
// accepts it interchangeably with real loop snapshots, so ranks that
// never went through a Loop — centralized references, experiment
// fixtures — can flow through the same Checkpointer plumbing.
func EncodeRankSnapshot(buf []byte, group int, round int64, r []float64) []byte {
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(group))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(round))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
	for _, v := range r {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, 0) // latest-chunk table
	buf = binary.LittleEndian.AppendUint32(buf, 0) // pending-chunk table
	return buf
}

// DecodeSnapshotRanks decodes the header and rank vector of an encoded
// loop snapshot without touching the chunk tables — the read side of
// the publish seam. The ranks are appended to dst (pass dst[:0] to
// reuse a scratch buffer).
func DecodeSnapshotRanks(data []byte, dst []float64) (group int, round int64, r []float64, err error) {
	rd := &snapReader{data: data}
	magic := rd.take(len(snapMagic))
	if rd.err != nil || string(magic) != snapMagic {
		return 0, 0, nil, fmt.Errorf("dprcore: not a snapshot")
	}
	ver := rd.take(1)
	if rd.err != nil || ver[0] != snapVersion {
		return 0, 0, nil, fmt.Errorf("dprcore: unsupported snapshot version")
	}
	group = int(rd.u32())
	round = int64(rd.u64())
	n := int(rd.u32())
	if rd.err == nil && n > len(rd.data)/8 {
		rd.err = fmt.Errorf("dprcore: snapshot rank length %d exceeds data", n)
	}
	if rd.err != nil {
		return 0, 0, nil, rd.err
	}
	r = dst
	for i := 0; i < n; i++ {
		r = append(r, math.Float64frombits(rd.u64()))
	}
	if rd.err != nil {
		return 0, 0, nil, rd.err
	}
	return group, round, r, nil
}

// snapReader walks an encoded snapshot, remembering the first decode
// failure so call sites check once.
type snapReader struct {
	data []byte
	err  error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data) < n {
		r.err = fmt.Errorf("dprcore: snapshot truncated")
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *snapReader) chunk() transport.ScoreChunk {
	c := transport.ScoreChunk{
		SrcGroup: int32(r.u32()),
		DstGroup: int32(r.u32()),
		Round:    int64(r.u64()),
		Links:    int64(r.u64()),
	}
	n := int(r.u32())
	if r.err != nil || n > len(r.data)/12 {
		if r.err == nil {
			r.err = fmt.Errorf("dprcore: snapshot chunk entry count %d exceeds data", n)
		}
		return c
	}
	c.Entries = make([]transport.ScoreEntry, 0, n)
	for i := 0; i < n; i++ {
		c.Entries = append(c.Entries, transport.ScoreEntry{
			DstLocal: int32(r.u32()),
			Value:    math.Float64frombits(r.u64()),
		})
	}
	return c
}

// Restore rebuilds the loop's state from an encoded snapshot — the
// crash-recovery path. It restores R, the X table, and the loop
// counter, then re-sends the snapshot's pending chunks through the
// Sender so the reliable layer re-adopts them (receivers that already
// saw those rounds discard them as stale — re-delivery is idempotent).
// Everything else (srcOrder, X itself) is reconstructed lazily from the
// restored tables and from Y-chunks that keep arriving.
//
// Call it on a freshly built Loop for the same Group, from serial
// context, before the next ComputePhase.
func (l *Loop) Restore(data []byte) error {
	r := &snapReader{data: data}
	magic := r.take(len(snapMagic))
	if r.err != nil || string(magic) != snapMagic {
		return fmt.Errorf("dprcore: ranker %d: not a snapshot", l.grp.Index)
	}
	ver := r.take(1)
	if r.err != nil || ver[0] != snapVersion {
		return fmt.Errorf("dprcore: ranker %d: unsupported snapshot version", l.grp.Index)
	}
	if idx := int(r.u32()); r.err == nil && idx != l.grp.Index {
		return fmt.Errorf("dprcore: ranker %d: snapshot belongs to group %d", l.grp.Index, idx)
	}
	loops := int64(r.u64())
	if n := int(r.u32()); r.err == nil && n != len(l.r) {
		return fmt.Errorf("dprcore: ranker %d: snapshot rank length %d, want %d", l.grp.Index, n, len(l.r))
	}
	for i := range l.r {
		l.r[i] = math.Float64frombits(r.u64())
	}
	nLatest := int(r.u32())
	clear(l.latest)
	for i := 0; i < nLatest && r.err == nil; i++ {
		c := r.chunk()
		l.latest[c.SrcGroup] = c
	}
	nPending := int(r.u32())
	pending := l.snapPending[:0]
	for i := 0; i < nPending && r.err == nil; i++ {
		pending = append(pending, r.chunk())
	}
	l.snapPending = pending
	if r.err != nil {
		return r.err
	}
	l.loops = loops
	l.stepped = true
	l.srcOrder = l.srcOrder[:0]
	for _, c := range pending {
		if err := l.sender.Send(l.grp.Index, c); err != nil {
			return fmt.Errorf("dprcore: ranker %d: resend pending: %w", l.grp.Index, err)
		}
	}
	if len(pending) > 0 {
		if err := l.sender.Flush(l.grp.Index); err != nil {
			return fmt.Errorf("dprcore: ranker %d: flush pending: %w", l.grp.Index, err)
		}
	}
	if l.obs != nil {
		l.obs.Recovered(l.grp.Index, l.loops)
	}
	return nil
}

// MemCheckpointer keeps the newest snapshot per ranker in memory — the
// engine's sink for in-sim churn (copy-on-save, so the loop's reused
// buffer never aliases a stored snapshot).
type MemCheckpointer struct {
	mu    sync.Mutex
	snaps map[int]memSnap
}

type memSnap struct {
	round int64
	data  []byte
}

// NewMemCheckpointer builds an empty in-memory checkpoint store.
func NewMemCheckpointer() *MemCheckpointer {
	return &MemCheckpointer{snaps: make(map[int]memSnap)}
}

// Save implements Checkpointer.
func (m *MemCheckpointer) Save(ranker int, round int64, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.snaps[ranker] = memSnap{round: round, data: cp}
	m.mu.Unlock()
	return nil
}

// Load returns the ranker's newest snapshot and its round, or ok=false
// if none was saved. The returned slice is the stored copy; callers
// must not mutate it.
func (m *MemCheckpointer) Load(ranker int) (data []byte, round int64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[ranker]
	return s.data, s.round, ok
}

// FileCheckpointer persists one snapshot file per ranker
// (ranker-NNN.ckpt) in a directory, written atomically via a temp file
// and rename so a crash mid-write never corrupts the last good
// checkpoint — the netpeer supervisor's restart source.
type FileCheckpointer struct {
	dir string
	mu  sync.Mutex
}

// NewFileCheckpointer creates the directory if needed.
func NewFileCheckpointer(dir string) (*FileCheckpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dprcore: checkpoint dir: %w", err)
	}
	return &FileCheckpointer{dir: dir}, nil
}

func (f *FileCheckpointer) path(ranker int) string {
	return filepath.Join(f.dir, fmt.Sprintf("ranker-%03d.ckpt", ranker))
}

// Save implements Checkpointer.
func (f *FileCheckpointer) Save(ranker int, round int64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	tmp := f.path(ranker) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dprcore: checkpoint write: %w", err)
	}
	if err := os.Rename(tmp, f.path(ranker)); err != nil {
		return fmt.Errorf("dprcore: checkpoint rename: %w", err)
	}
	return nil
}

// Load returns the ranker's last checkpoint, or ok=false if none
// exists.
func (f *FileCheckpointer) Load(ranker int) (data []byte, ok bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, err = os.ReadFile(f.path(ranker))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("dprcore: checkpoint read: %w", err)
	}
	return data, true, nil
}
