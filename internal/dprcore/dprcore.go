// Package dprcore is the runtime-agnostic core of the paper's
// distributed page-ranking algorithms: one Loop type owns a page
// group's state (R, X, scratch, newest afferent chunks) and executes
// the DPR1/DPR2 main-loop body of §4.2, split into a ComputePhase
// (refresh X, update R — private state only) and a CommitPhase
// (publish Y, draw randomness) exactly as the simulator's two-phase
// event model requires.
//
// The paper's Theorems 4.1/4.2 analyze one update rule and prove it
// converges whether rankers run synchronously, asynchronously, or over
// a lossy network. That guarantee only holds if the *executed* rule is
// the analyzed one, so the rule lives here once and every runtime —
// the deterministic discrete-event simulator (internal/ranker over
// internal/simnet) and the live TCP peers (internal/netpeer) — is a
// thin driver that decides only *when* the phases run and *where* the
// emitted chunks go. Runtimes plug in through four small interfaces:
// Clock (now/after), Sender (chunk emission), Waiter (inter-loop
// pause), and RNG (seeded randomness). Fault injection composes at the
// Sender boundary (see FaultSender), so robustness scenarios run
// identically in-sim and live.
//
// Determinism: nothing in this package reads the wall clock or global
// randomness; both enter only through the interfaces, which the
// simulator backs with virtual time and seeded streams (enforced by
// the p2plint norand/nowallclock analyzers).
package dprcore

import (
	"fmt"

	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
)

// Algorithm selects the distributed iteration style of §4.2.
type Algorithm int

const (
	// DPR1 runs GroupPageRank to convergence inside every loop before
	// publishing Y (Algorithm 3).
	DPR1 Algorithm = iota
	// DPR2 performs a single Jacobi step per loop and publishes Y
	// eagerly (Algorithm 4).
	DPR2
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case DPR1:
		return "DPR1"
	case DPR2:
		return "DPR2"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Clock abstracts a runtime's notion of time: the simulator supplies
// virtual time (*simnet.Simulator satisfies Clock directly), a live
// peer supplies the wall clock. Units are whatever the runtime's
// durations are expressed in (virtual units or nanoseconds); the core
// never mixes clocks, it only passes durations back to the runtime
// that drew them.
type Clock interface {
	// Now returns the current time.
	Now() float64
	// After schedules fn d time units from now.
	After(d float64, fn func())
}

// Sender is the emission surface a loop publishes Y through.
// *transport.Fabric implements it on the simulator side; netpeer backs
// it with a TCP outbox. Fault wrappers (FaultSender) compose here.
type Sender interface {
	// Send emits one score chunk from the given ranker index.
	Send(from int, chunk transport.ScoreChunk) error
	// Flush ships anything Send buffered for the given ranker.
	Flush(from int) error
}

// Waiter pauses a blocking loop driver between iterations. Wait blocks
// for d time units and reports whether the loop should keep running
// (false means the runtime is shutting the ranker down). Event-driven
// runtimes (the simulator) schedule the phases directly instead.
type Waiter interface {
	Wait(d float64) bool
}

// RNG is the randomness a loop draws: send-loss coin flips and
// exponential inter-loop waits. *xrand.Rand satisfies it; every loop
// must own a private stream.
type RNG interface {
	// Float64 returns a uniform value in [0, 1).
	Float64() float64
	// Exp returns an exponentially distributed value with the given mean.
	Exp(mean float64) float64
}

// Params is the one shared configuration surface of the DPR loop
// layer. Every runtime config embeds it — engine.Config (simulator) and
// netpeer.Config/ClusterConfig (TCP) — so the algorithm knobs are
// spelled identically everywhere and validated once, here. Runtime
// specifics (graph, overlay, wire codec, network model) stay in the
// embedding configs; see DESIGN.md §9 for the full mapping.
type Params struct {
	// Alg selects DPR1 or DPR2.
	Alg Algorithm
	// Alpha is the real-link rank fraction (must match the Group's;
	// runtimes default it to 0.85).
	Alpha float64
	// InnerEpsilon is DPR1's GroupPageRank termination threshold
	// (runtimes default it to 1e-10).
	InnerEpsilon float64
	// InnerMaxIter bounds DPR1's inner loop (0 = 10000).
	InnerMaxIter int
	// SendProb is the probability that the Y vector for a destination
	// group is successfully sent in a loop (the paper's parameter p;
	// p = 1 means lossless; runtimes default it to 1).
	SendProb float64
	// T1 and T2 bound the per-loop mean waiting time, in the driving
	// runtime's time units (virtual units in-sim, nanoseconds live).
	// Each loop's mean is drawn uniformly from [T1, T2] by its runtime;
	// T1 = T2 pins every loop to the same mean. Runtime defaults differ
	// (engine: 15/15, the Figure 8 setting; netpeer: Config.MeanWait).
	T1, T2 float64
	// Fault injects deterministic message faults (drop/delay/duplicate)
	// at the Sender seam, below the algorithm's own SendProb loss — the
	// FaultSender both runtimes share. The zero value injects nothing.
	Fault FaultConfig
	// Reliable layers acknowledged delivery — retransmission with
	// exponential backoff and a dead-peer circuit breaker — above the
	// fault seam (see ReliableSender), so retries are exercised under
	// injected loss. The zero value disables it; enabling it draws
	// jitter from a private RNG stream and never perturbs the loop's.
	Reliable ReliableConfig
	// Checkpoint snapshots each loop's recoverable state on a round
	// cadence (see CheckpointConfig), enabling restart-from-checkpoint
	// after a crash. The zero value checkpoints nothing.
	Checkpoint CheckpointConfig
	// Observer receives telemetry at the loop's seams (compute phases,
	// chunk emissions, injected faults, milestones). Nil installs
	// nothing and keeps the hot path free of allocations and clock
	// reads; telemetry.Noop{} is behaviorally identical.
	Observer telemetry.Observer
}

// Defaults fills zero-valued algorithm fields with the shared defaults
// and the pacing bounds with the runtime's (t1, t2). Embedding configs
// call it from their own validation.
func (p *Params) Defaults(t1, t2 float64) {
	if p.Alpha == 0 {
		p.Alpha = 0.85
	}
	if p.InnerEpsilon == 0 {
		p.InnerEpsilon = 1e-10
	}
	if p.InnerMaxIter == 0 {
		p.InnerMaxIter = 10000
	}
	if p.SendProb == 0 {
		p.SendProb = 1
	}
	if p.T1 == 0 && p.T2 == 0 {
		p.T1, p.T2 = t1, t2
	}
}

// validateLoop checks the fields a single Loop consumes.
func (p *Params) validateLoop() error {
	if p.Alg != DPR1 && p.Alg != DPR2 {
		return fmt.Errorf("dprcore: unknown algorithm %d", int(p.Alg))
	}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("dprcore: alpha = %v, must be in (0,1)", p.Alpha)
	}
	if p.InnerEpsilon < 0 {
		return fmt.Errorf("dprcore: negative InnerEpsilon %v", p.InnerEpsilon)
	}
	if p.InnerMaxIter == 0 {
		p.InnerMaxIter = 10000
	}
	if p.SendProb < 0 || p.SendProb > 1 {
		return fmt.Errorf("dprcore: SendProb %v outside [0,1]", p.SendProb)
	}
	return nil
}

// Validate checks the whole parameter set (loop fields, pacing range,
// fault spec). Runtimes call it after Defaults.
func (p *Params) Validate() error {
	if err := p.validateLoop(); err != nil {
		return err
	}
	if p.T1 < 0 || p.T2 < p.T1 {
		return fmt.Errorf("dprcore: wait range [%v, %v] invalid", p.T1, p.T2)
	}
	if err := p.Fault.Validate(); err != nil {
		return err
	}
	if err := p.Reliable.Validate(); err != nil {
		return err
	}
	return p.Checkpoint.Validate()
}
