// Package dprcore is the runtime-agnostic core of the paper's
// distributed page-ranking algorithms: one Loop type owns a page
// group's state (R, X, scratch, newest afferent chunks) and executes
// the DPR1/DPR2 main-loop body of §4.2, split into a ComputePhase
// (refresh X, update R — private state only) and a CommitPhase
// (publish Y, draw randomness) exactly as the simulator's two-phase
// event model requires.
//
// The paper's Theorems 4.1/4.2 analyze one update rule and prove it
// converges whether rankers run synchronously, asynchronously, or over
// a lossy network. That guarantee only holds if the *executed* rule is
// the analyzed one, so the rule lives here once and every runtime —
// the deterministic discrete-event simulator (internal/ranker over
// internal/simnet) and the live TCP peers (internal/netpeer) — is a
// thin driver that decides only *when* the phases run and *where* the
// emitted chunks go. Runtimes plug in through four small interfaces:
// Clock (now/after), Sender (chunk emission), Waiter (inter-loop
// pause), and RNG (seeded randomness). Fault injection composes at the
// Sender boundary (see FaultSender), so robustness scenarios run
// identically in-sim and live.
//
// Determinism: nothing in this package reads the wall clock or global
// randomness; both enter only through the interfaces, which the
// simulator backs with virtual time and seeded streams (enforced by
// the p2plint norand/nowallclock analyzers).
package dprcore

import (
	"fmt"

	"p2prank/internal/transport"
)

// Algorithm selects the distributed iteration style of §4.2.
type Algorithm int

const (
	// DPR1 runs GroupPageRank to convergence inside every loop before
	// publishing Y (Algorithm 3).
	DPR1 Algorithm = iota
	// DPR2 performs a single Jacobi step per loop and publishes Y
	// eagerly (Algorithm 4).
	DPR2
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case DPR1:
		return "DPR1"
	case DPR2:
		return "DPR2"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Clock abstracts a runtime's notion of time: the simulator supplies
// virtual time (*simnet.Simulator satisfies Clock directly), a live
// peer supplies the wall clock. Units are whatever the runtime's
// durations are expressed in (virtual units or nanoseconds); the core
// never mixes clocks, it only passes durations back to the runtime
// that drew them.
type Clock interface {
	// Now returns the current time.
	Now() float64
	// After schedules fn d time units from now.
	After(d float64, fn func())
}

// Sender is the emission surface a loop publishes Y through.
// *transport.Fabric implements it on the simulator side; netpeer backs
// it with a TCP outbox. Fault wrappers (FaultSender) compose here.
type Sender interface {
	// Send emits one score chunk from the given ranker index.
	Send(from int, chunk transport.ScoreChunk) error
	// Flush ships anything Send buffered for the given ranker.
	Flush(from int) error
}

// Waiter pauses a blocking loop driver between iterations. Wait blocks
// for d time units and reports whether the loop should keep running
// (false means the runtime is shutting the ranker down). Event-driven
// runtimes (the simulator) schedule the phases directly instead.
type Waiter interface {
	Wait(d float64) bool
}

// RNG is the randomness a loop draws: send-loss coin flips and
// exponential inter-loop waits. *xrand.Rand satisfies it; every loop
// must own a private stream.
type RNG interface {
	// Float64 returns a uniform value in [0, 1).
	Float64() float64
	// Exp returns an exponentially distributed value with the given mean.
	Exp(mean float64) float64
}

// Config parameterizes one loop.
type Config struct {
	// Alg selects DPR1 or DPR2.
	Alg Algorithm
	// Alpha is the real-link rank fraction (must match the Group's).
	Alpha float64
	// InnerEpsilon is DPR1's GroupPageRank termination threshold.
	InnerEpsilon float64
	// InnerMaxIter bounds DPR1's inner loop (0 = 10000).
	InnerMaxIter int
	// SendProb is the probability that the Y vector for a destination
	// group is successfully sent in a loop (the paper's parameter p;
	// p = 1 means lossless).
	SendProb float64
	// MeanWait is the mean of this loop's exponentially distributed
	// waiting time Tw between iterations, in the driving runtime's time
	// units (virtual units in-sim, nanoseconds for live peers).
	MeanWait float64
}

func (c *Config) validate() error {
	if c.Alg != DPR1 && c.Alg != DPR2 {
		return fmt.Errorf("dprcore: unknown algorithm %d", int(c.Alg))
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("dprcore: alpha = %v, must be in (0,1)", c.Alpha)
	}
	if c.InnerEpsilon < 0 {
		return fmt.Errorf("dprcore: negative InnerEpsilon %v", c.InnerEpsilon)
	}
	if c.InnerMaxIter == 0 {
		c.InnerMaxIter = 10000
	}
	if c.SendProb < 0 || c.SendProb > 1 {
		return fmt.Errorf("dprcore: SendProb %v outside [0,1]", c.SendProb)
	}
	if c.MeanWait < 0 {
		return fmt.Errorf("dprcore: negative MeanWait %v", c.MeanWait)
	}
	return nil
}
