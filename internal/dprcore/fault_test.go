package dprcore

import (
	"testing"

	"p2prank/internal/transport"
)

// fakeClock is a hand-cranked Clock: After enqueues, advance fires
// everything due.
type fakeClock struct {
	now float64
	q   []timer
}

type timer struct {
	at float64
	fn func()
}

func (c *fakeClock) Now() float64 { return c.now }

func (c *fakeClock) After(d float64, fn func()) {
	c.q = append(c.q, timer{at: c.now + d, fn: fn})
}

// advance fires every timer due by to, in deadline order, including
// timers the callbacks arm along the way (a retransmission timer
// re-arms itself from its own expiry).
func (c *fakeClock) advance(to float64) {
	c.now = to
	for {
		best := -1
		for i, tm := range c.q {
			if tm.at <= to && (best < 0 || tm.at < c.q[best].at) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		tm := c.q[best]
		c.q = append(c.q[:best], c.q[best+1:]...)
		tm.fn()
	}
}

func TestFaultConfigValidate(t *testing.T) {
	for name, cfg := range map[string]FaultConfig{
		"drop > 1":       {DropProb: 1.1},
		"negative drop":  {DropProb: -0.1},
		"dup > 1":        {DupProb: 2},
		"delay no mean":  {DelayProb: 0.5},
		"negative delay": {DelayProb: 0.5, MeanDelay: -3},
	} {
		if cfg.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := (FaultConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if (FaultConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(FaultConfig{DropProb: 0.1}).Enabled() {
		t.Error("drop config reports disabled")
	}
}

func TestNewFaultSenderValidation(t *testing.T) {
	if _, err := NewFaultSender(nil, nil, constRNG{}, FaultConfig{}); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewFaultSender(&recordSender{}, nil, nil, FaultConfig{}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewFaultSender(&recordSender{}, nil, constRNG{}, FaultConfig{DelayProb: 0.5, MeanDelay: 1}); err == nil {
		t.Error("delay config without clock accepted")
	}
	if _, err := NewFaultSender(&recordSender{}, nil, constRNG{}, FaultConfig{DropProb: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFaultSenderDrops(t *testing.T) {
	inner := &recordSender{}
	fs, err := NewFaultSender(inner, nil, constRNG{f: 0.1}, FaultConfig{DropProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 0 || fs.Dropped() != 1 {
		t.Fatalf("chunk not dropped: %d sends, %d dropped", len(inner.sends), fs.Dropped())
	}
	// Flush still reaches the inner sender — drops are per chunk.
	if err := fs.Flush(0); err != nil {
		t.Fatal(err)
	}
	if inner.flushes != 1 {
		t.Fatal("flush not forwarded")
	}
}

func TestFaultSenderDuplicates(t *testing.T) {
	inner := &recordSender{}
	fs, err := NewFaultSender(inner, nil, constRNG{f: 0.1}, FaultConfig{DupProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 2 || fs.Duplicated() != 1 {
		t.Fatalf("got %d sends, %d duplicated, want 2 and 1", len(inner.sends), fs.Duplicated())
	}
}

func TestFaultSenderDelaysOnClock(t *testing.T) {
	inner := &recordSender{}
	clk := &fakeClock{}
	fs, err := NewFaultSender(inner, clk, constRNG{f: 0.1, e: 1}, FaultConfig{DelayProb: 0.5, MeanDelay: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 0 || fs.Delayed() != 1 {
		t.Fatalf("chunk not held back: %d sends, %d delayed", len(inner.sends), fs.Delayed())
	}
	clk.advance(6.9) // Exp draw is e·mean = 7
	if len(inner.sends) != 0 {
		t.Fatal("chunk re-injected before its delay elapsed")
	}
	clk.advance(7)
	if len(inner.sends) != 1 || inner.flushes != 1 {
		t.Fatalf("delayed chunk not re-injected: %d sends, %d flushes", len(inner.sends), inner.flushes)
	}
}

func TestFaultSenderPassesThroughWhenLucky(t *testing.T) {
	inner := &recordSender{}
	// Draws of 0.9 miss every 0.5 probability: the chunk goes straight
	// through, once.
	fs, err := NewFaultSender(inner, &fakeClock{}, constRNG{f: 0.9, e: 1},
		FaultConfig{DropProb: 0.5, DelayProb: 0.5, MeanDelay: 1, DupProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 1 {
		t.Fatalf("got %d sends, want 1", len(inner.sends))
	}
	if fs.Dropped()+fs.Delayed()+fs.Duplicated() != 0 {
		t.Fatal("fault counters moved on a clean pass")
	}
}

// errSender fails every send, checking FaultSender propagates inner
// errors on the direct path.
type errSender struct{ recordSender }

func (s *errSender) Send(from int, c transport.ScoreChunk) error {
	return errFault
}

var errFault = &faultErr{}

type faultErr struct{}

func (*faultErr) Error() string { return "boom" }

func TestFaultSenderPropagatesInnerError(t *testing.T) {
	fs, err := NewFaultSender(&errSender{}, nil, constRNG{f: 0.9}, FaultConfig{DropProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != errFault {
		t.Fatalf("err = %v, want inner error", err)
	}
}

// countRNG counts draws so the lattice paths can be proven RNG-free.
type countRNG struct {
	constRNG
	draws int
}

func (r *countRNG) Float64() float64 { r.draws++; return r.constRNG.Float64() }

func TestFaultConfigValidateLattice(t *testing.T) {
	for name, cfg := range map[string]FaultConfig{
		"partition no window":       {PartitionFrac: 0.3},
		"partition inverted window": {PartitionFrac: 0.3, PartitionFrom: 5, PartitionTo: 5},
		"partition negative from":   {PartitionFrac: 0.3, PartitionFrom: -1, PartitionTo: 5},
		"partition frac > 1":        {PartitionFrac: 1.5, PartitionTo: 5},
		"straggle no factor":        {StraggleFrac: 0.2},
		"straggle negative factor":  {StraggleFrac: 0.2, StraggleFactor: -1},
		"straggle frac > 1":         {StraggleFrac: 2, StraggleFactor: 1},
	} {
		if cfg.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := FaultConfig{PartitionFrac: 0.3, PartitionTo: 10, StraggleFrac: 0.2, StraggleFactor: 3}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid lattice config rejected: %v", err)
	}
	if !ok.Enabled() {
		t.Error("lattice-only config reports disabled")
	}
	if _, err := NewFaultSender(&recordSender{}, nil, constRNG{}, ok); err == nil {
		t.Error("lattice config without clock accepted")
	}
}

// latticePair finds one minority and one majority node for a config.
func latticePair(t *testing.T, cfg FaultConfig) (minority, majority int) {
	t.Helper()
	minority, majority = -1, -1
	for n := 0; n < 256 && (minority < 0 || majority < 0); n++ {
		if cfg.PartitionMinority(n) {
			if minority < 0 {
				minority = n
			}
		} else if majority < 0 {
			majority = n
		}
	}
	if minority < 0 || majority < 0 {
		t.Fatalf("no cut found in 256 nodes for frac %v", cfg.PartitionFrac)
	}
	return minority, majority
}

func TestFaultSenderPartitionBlackholesAndHeals(t *testing.T) {
	cfg := FaultConfig{PartitionFrac: 0.4, PartitionFrom: 2, PartitionTo: 10, Seed: 7}
	mi, ma := latticePair(t, cfg)
	inner := &recordSender{}
	clk := &fakeClock{}
	rng := &countRNG{}
	fs, err := NewFaultSender(inner, clk, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cross := chunk(int32(mi), int32(ma), 1, 1.0)
	// Before the window opens: crossing traffic flows.
	if err := fs.Send(mi, cross); err != nil || len(inner.sends) != 1 {
		t.Fatalf("pre-window send blocked: err=%v sends=%d", err, len(inner.sends))
	}
	// Window open: crossing traffic blackholed, both directions.
	clk.advance(5)
	if err := fs.Send(mi, cross); err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(ma, chunk(int32(ma), int32(mi), 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 1 || fs.Partitioned() != 2 {
		t.Fatalf("partition leaked: %d sends, %d partitioned", len(inner.sends), fs.Partitioned())
	}
	// Same-side traffic is untouched during the partition.
	mi2 := mi
	for n := mi + 1; n < mi+512; n++ {
		if cfg.PartitionMinority(n) {
			mi2 = n
			break
		}
	}
	if mi2 != mi {
		if err := fs.Send(mi, chunk(int32(mi), int32(mi2), 1, 1.0)); err != nil || len(inner.sends) != 2 {
			t.Fatalf("same-side send blocked: err=%v sends=%d", err, len(inner.sends))
		}
	}
	// Healed: crossing traffic flows again.
	clk.advance(10)
	before := len(inner.sends)
	if err := fs.Send(mi, cross); err != nil || len(inner.sends) != before+1 {
		t.Fatalf("post-heal send blocked: err=%v sends=%d", err, len(inner.sends))
	}
	if rng.draws != 0 {
		t.Fatalf("partition checks consumed %d RNG draws, want 0", rng.draws)
	}
}

func TestFaultSenderPartitionEpochRelative(t *testing.T) {
	cfg := FaultConfig{PartitionFrac: 0.4, PartitionFrom: 0, PartitionTo: 10, Seed: 7}
	mi, ma := latticePair(t, cfg)
	inner := &recordSender{}
	clk := &fakeClock{now: 1e6} // injector built late: window is relative, not absolute
	fs, err := NewFaultSender(inner, clk, constRNG{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(mi, chunk(int32(mi), int32(ma), 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if fs.Partitioned() != 1 {
		t.Fatalf("window not epoch-relative: partitioned=%d", fs.Partitioned())
	}
	clk.advance(1e6 + 10)
	if err := fs.Send(mi, chunk(int32(mi), int32(ma), 2, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 1 {
		t.Fatal("partition did not heal 10 units after the epoch")
	}
}

func TestFaultSenderStragglerHoldsBack(t *testing.T) {
	cfg := FaultConfig{StraggleFrac: 0.3, StraggleFactor: 8, Seed: 3}
	slow, fast := -1, -1
	for n := 0; n < 256 && (slow < 0 || fast < 0); n++ {
		if cfg.Straggler(n) {
			if slow < 0 {
				slow = n
			}
		} else if fast < 0 {
			fast = n
		}
	}
	if slow < 0 || fast < 0 {
		t.Fatal("no straggler split found")
	}
	inner := &recordSender{}
	clk := &fakeClock{}
	rng := &countRNG{}
	fs, err := NewFaultSender(inner, clk, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The straggler's chunk is held for exactly StraggleFactor units.
	if err := fs.Send(slow, chunk(int32(slow), int32(fast), 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 0 || fs.Straggled() != 1 {
		t.Fatalf("straggler chunk not held: %d sends, %d straggled", len(inner.sends), fs.Straggled())
	}
	clk.advance(7.9)
	if len(inner.sends) != 0 {
		t.Fatal("straggler chunk released early")
	}
	clk.advance(8)
	if len(inner.sends) != 1 || inner.flushes != 1 {
		t.Fatalf("straggler chunk not released: %d sends, %d flushes", len(inner.sends), inner.flushes)
	}
	// A healthy node's chunk goes straight through.
	if err := fs.Send(fast, chunk(int32(fast), int32(slow), 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 2 || fs.Straggled() != 1 {
		t.Fatalf("healthy node straggled: %d sends, %d straggled", len(inner.sends), fs.Straggled())
	}
	if rng.draws != 0 {
		t.Fatalf("straggle checks consumed %d RNG draws, want 0", rng.draws)
	}
}

func TestLatticeMembershipPureAndProportional(t *testing.T) {
	cfg := FaultConfig{PartitionFrac: 0.3, PartitionTo: 10, StraggleFrac: 0.2, StraggleFactor: 1, Seed: 42}
	// Pure: a config differing only in non-lattice fields cuts the same.
	other := cfg
	other.DropProb = 0.5
	other.MeanDelay = 9
	minority, stragglers := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		if cfg.PartitionMinority(i) != other.PartitionMinority(i) || cfg.Straggler(i) != other.Straggler(i) {
			t.Fatalf("membership depends on non-lattice fields at node %d", i)
		}
		if cfg.PartitionMinority(i) {
			minority++
		}
		if cfg.Straggler(i) {
			stragglers++
		}
	}
	if frac := float64(minority) / n; frac < 0.25 || frac > 0.35 {
		t.Errorf("minority fraction %v, want ≈0.3", frac)
	}
	if frac := float64(stragglers) / n; frac < 0.15 || frac > 0.25 {
		t.Errorf("straggler fraction %v, want ≈0.2", frac)
	}
	// A different seed cuts differently somewhere.
	reseeded := cfg
	reseeded.Seed = 43
	same := true
	for i := 0; i < 256 && same; i++ {
		if cfg.PartitionMinority(i) != reseeded.PartitionMinority(i) {
			same = false
		}
	}
	if same {
		t.Error("reseeding did not move the cut")
	}
	// Zero-frac configs have no members and no active window.
	var zero FaultConfig
	if zero.PartitionMinority(1) || zero.Straggler(1) || zero.PartitionActiveAt(3) {
		t.Error("zero config has lattice members")
	}
}
