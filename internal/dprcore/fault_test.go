package dprcore

import (
	"testing"

	"p2prank/internal/transport"
)

// fakeClock is a hand-cranked Clock: After enqueues, advance fires
// everything due.
type fakeClock struct {
	now float64
	q   []timer
}

type timer struct {
	at float64
	fn func()
}

func (c *fakeClock) Now() float64 { return c.now }

func (c *fakeClock) After(d float64, fn func()) {
	c.q = append(c.q, timer{at: c.now + d, fn: fn})
}

// advance fires every timer due by to, in deadline order, including
// timers the callbacks arm along the way (a retransmission timer
// re-arms itself from its own expiry).
func (c *fakeClock) advance(to float64) {
	c.now = to
	for {
		best := -1
		for i, tm := range c.q {
			if tm.at <= to && (best < 0 || tm.at < c.q[best].at) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		tm := c.q[best]
		c.q = append(c.q[:best], c.q[best+1:]...)
		tm.fn()
	}
}

func TestFaultConfigValidate(t *testing.T) {
	for name, cfg := range map[string]FaultConfig{
		"drop > 1":       {DropProb: 1.1},
		"negative drop":  {DropProb: -0.1},
		"dup > 1":        {DupProb: 2},
		"delay no mean":  {DelayProb: 0.5},
		"negative delay": {DelayProb: 0.5, MeanDelay: -3},
	} {
		if cfg.Validate() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := (FaultConfig{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if (FaultConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(FaultConfig{DropProb: 0.1}).Enabled() {
		t.Error("drop config reports disabled")
	}
}

func TestNewFaultSenderValidation(t *testing.T) {
	if _, err := NewFaultSender(nil, nil, constRNG{}, FaultConfig{}); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewFaultSender(&recordSender{}, nil, nil, FaultConfig{}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := NewFaultSender(&recordSender{}, nil, constRNG{}, FaultConfig{DelayProb: 0.5, MeanDelay: 1}); err == nil {
		t.Error("delay config without clock accepted")
	}
	if _, err := NewFaultSender(&recordSender{}, nil, constRNG{}, FaultConfig{DropProb: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFaultSenderDrops(t *testing.T) {
	inner := &recordSender{}
	fs, err := NewFaultSender(inner, nil, constRNG{f: 0.1}, FaultConfig{DropProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 0 || fs.Dropped() != 1 {
		t.Fatalf("chunk not dropped: %d sends, %d dropped", len(inner.sends), fs.Dropped())
	}
	// Flush still reaches the inner sender — drops are per chunk.
	if err := fs.Flush(0); err != nil {
		t.Fatal(err)
	}
	if inner.flushes != 1 {
		t.Fatal("flush not forwarded")
	}
}

func TestFaultSenderDuplicates(t *testing.T) {
	inner := &recordSender{}
	fs, err := NewFaultSender(inner, nil, constRNG{f: 0.1}, FaultConfig{DupProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 2 || fs.Duplicated() != 1 {
		t.Fatalf("got %d sends, %d duplicated, want 2 and 1", len(inner.sends), fs.Duplicated())
	}
}

func TestFaultSenderDelaysOnClock(t *testing.T) {
	inner := &recordSender{}
	clk := &fakeClock{}
	fs, err := NewFaultSender(inner, clk, constRNG{f: 0.1, e: 1}, FaultConfig{DelayProb: 0.5, MeanDelay: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 0 || fs.Delayed() != 1 {
		t.Fatalf("chunk not held back: %d sends, %d delayed", len(inner.sends), fs.Delayed())
	}
	clk.advance(6.9) // Exp draw is e·mean = 7
	if len(inner.sends) != 0 {
		t.Fatal("chunk re-injected before its delay elapsed")
	}
	clk.advance(7)
	if len(inner.sends) != 1 || inner.flushes != 1 {
		t.Fatalf("delayed chunk not re-injected: %d sends, %d flushes", len(inner.sends), inner.flushes)
	}
}

func TestFaultSenderPassesThroughWhenLucky(t *testing.T) {
	inner := &recordSender{}
	// Draws of 0.9 miss every 0.5 probability: the chunk goes straight
	// through, once.
	fs, err := NewFaultSender(inner, &fakeClock{}, constRNG{f: 0.9, e: 1},
		FaultConfig{DropProb: 0.5, DelayProb: 0.5, MeanDelay: 1, DupProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if len(inner.sends) != 1 {
		t.Fatalf("got %d sends, want 1", len(inner.sends))
	}
	if fs.Dropped()+fs.Delayed()+fs.Duplicated() != 0 {
		t.Fatal("fault counters moved on a clean pass")
	}
}

// errSender fails every send, checking FaultSender propagates inner
// errors on the direct path.
type errSender struct{ recordSender }

func (s *errSender) Send(from int, c transport.ScoreChunk) error {
	return errFault
}

var errFault = &faultErr{}

type faultErr struct{}

func (*faultErr) Error() string { return "boom" }

func TestFaultSenderPropagatesInnerError(t *testing.T) {
	fs, err := NewFaultSender(&errSender{}, nil, constRNG{f: 0.9}, FaultConfig{DropProb: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Send(0, chunk(0, 1, 1, 1.0)); err != errFault {
		t.Fatalf("err = %v, want inner error", err)
	}
}
