package dprcore

import (
	"fmt"
	"sort"

	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/webgraph"
)

// EffEntry is an aggregated efferent edge: local page LocalSrc has Links
// parallel links to the page DstLocal of another group. At send time it
// contributes Links·α·R(LocalSrc)/d(LocalSrc) to that page's afferent
// rank.
type EffEntry struct {
	LocalSrc int32
	DstLocal int32
	Links    int32
}

// Group is one ranker's slice of the web graph: its pages, the
// intra-group link system, and its efferent links grouped by
// destination ranker.
type Group struct {
	// Index is the ranker this group belongs to.
	Index int
	// Pages holds the group's global page IDs in ascending order;
	// local index i refers to Pages[i].
	Pages []int32
	// Deg is the total out-degree d(u) per local page.
	Deg []int32
	// Sys is the open-system solver over the group's inner links.
	Sys *pagerank.GroupSystem
	// Eff maps destination ranker index to the aggregated efferent
	// entries toward it, sorted by (DstLocal, LocalSrc).
	Eff map[int32][]EffEntry
	// EffDsts lists Eff's keys in ascending order. Loops iterate it
	// instead of the map so runs are bit-for-bit reproducible.
	EffDsts []int32
	// EffLinks is the total number of efferent link records, the
	// quantity the paper's l-bytes-per-link cost model charges.
	EffLinks int64
}

// N returns the number of pages in the group.
func (g *Group) N() int { return len(g.Pages) }

// BuildGroups slices the graph into one Group per ranker according to
// the assignment. alpha is the real-link rank fraction of §3.
func BuildGroups(g webgraph.Store, a *partition.Assignment, alpha float64) ([]*Group, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("dprcore: alpha = %v, must be in (0,1)", alpha)
	}
	groups := make([]*Group, a.K)
	type effKey struct {
		dstGroup           int32
		localSrc, dstLocal int32
	}
	inner := make([][][2]int32, a.K)
	effCount := make([]map[effKey]int32, a.K)
	for i := 0; i < a.K; i++ {
		effCount[i] = make(map[effKey]int32)
	}
	for p := 0; p < g.NumPages(); p++ {
		u := int32(p)
		gu := a.GroupOf[u]
		for _, v := range g.InternalOut(u) {
			gv := a.GroupOf[v]
			if gu == gv {
				inner[gu] = append(inner[gu], [2]int32{a.LocalIdx[u], a.LocalIdx[v]})
			} else {
				effCount[gu][effKey{gv, a.LocalIdx[u], a.LocalIdx[v]}]++
			}
		}
	}
	for i := 0; i < a.K; i++ {
		pages := a.Pages[i]
		deg := make([]int32, len(pages))
		for li, p := range pages {
			deg[li] = int32(g.OutDegree(p))
		}
		sys, err := pagerank.NewGroupSystem(len(pages), inner[i], deg, nil, alpha)
		if err != nil {
			return nil, fmt.Errorf("dprcore: group %d: %w", i, err)
		}
		grp := &Group{
			Index: i,
			Pages: pages,
			Deg:   deg,
			Sys:   sys,
			Eff:   make(map[int32][]EffEntry),
		}
		for key, links := range effCount[i] {
			grp.Eff[key.dstGroup] = append(grp.Eff[key.dstGroup], EffEntry{
				LocalSrc: key.localSrc,
				DstLocal: key.dstLocal,
				Links:    links,
			})
			grp.EffLinks += int64(links)
		}
		for dst, entries := range grp.Eff {
			grp.EffDsts = append(grp.EffDsts, dst)
			sort.Slice(entries, func(x, y int) bool {
				if entries[x].DstLocal != entries[y].DstLocal {
					return entries[x].DstLocal < entries[y].DstLocal
				}
				return entries[x].LocalSrc < entries[y].LocalSrc
			})
		}
		sort.Slice(grp.EffDsts, func(x, y int) bool { return grp.EffDsts[x] < grp.EffDsts[y] })
		groups[i] = grp
	}
	return groups, nil
}
