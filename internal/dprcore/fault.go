package dprcore

import (
	"fmt"
	"sync/atomic"

	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
)

// FaultConfig parameterizes a FaultSender. Each emitted chunk is
// independently dropped, delayed, or duplicated; the zero value
// injects nothing.
type FaultConfig struct {
	// DropProb drops the chunk outright — the wire analogue of the
	// paper's send-failure parameter p, applied below the algorithm so
	// the loop does not even know the send was lost.
	DropProb float64
	// DelayProb holds the chunk back and re-injects it later instead of
	// sending it now; the delay is exponentially distributed with mean
	// MeanDelay, scheduled on the runtime's Clock.
	DelayProb float64
	// MeanDelay is the mean re-injection delay, in the runtime's time
	// units (virtual units in-sim, nanoseconds live). Required when
	// DelayProb > 0.
	MeanDelay float64
	// DupProb sends the chunk twice — the receiver's staleness handling
	// must make the duplicate harmless.
	DupProb float64
}

// Enabled reports whether the config injects any fault.
func (c FaultConfig) Enabled() bool {
	return c.DropProb > 0 || c.DelayProb > 0 || c.DupProb > 0
}

// Validate checks the probabilities and delay.
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropProb", c.DropProb}, {"DelayProb", c.DelayProb}, {"DupProb", c.DupProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("dprcore: fault %s %v outside [0,1]", p.name, p.v)
		}
	}
	if c.DelayProb > 0 && c.MeanDelay <= 0 {
		return fmt.Errorf("dprcore: DelayProb %v needs positive MeanDelay, got %v", c.DelayProb, c.MeanDelay)
	}
	return nil
}

// FaultSender wraps a Sender with deterministic message faults. Both
// stacks use it unchanged: in-sim the Clock is the simulator (virtual
// delays, seeded rng, bit-reproducible runs), live it is the wall
// clock. Faults draw from their own RNG stream so enabling them never
// perturbs the loop's randomness.
//
// Send must be called from commit (serial) context, like the Sender it
// wraps; delayed re-injections fire on the Clock's callback context,
// so the inner Sender must accept sends from there (the simulator's
// event goroutine; a timer goroutine for netpeer's self-locking
// outbox).
type FaultSender struct {
	inner Sender
	clock Clock
	rng   RNG
	cfg   FaultConfig
	// obs, when set, is notified of every injected fault. Nil-checked
	// like the loop's observer: no observer, no extra work.
	obs telemetry.Observer
	// rec, when the wrapped sender exposes it, is told about every drop
	// so transport stats keep injected loss separate from send-time
	// drops (see transport.Stats.FaultDrops).
	rec dropRecorder

	dropped    atomic.Int64
	delayed    atomic.Int64
	duplicated atomic.Int64
}

// dropRecorder is the probe a wrapped sender may implement to account
// for chunks the fault injector discarded above it. *transport.Fabric
// implements it.
type dropRecorder interface {
	RecordFaultDrop(from int)
}

// NewFaultSender wraps inner. clock may be nil when DelayProb is zero;
// rng must be a stream private to this wrapper.
func NewFaultSender(inner Sender, clock Clock, rng RNG, cfg FaultConfig) (*FaultSender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil || rng == nil {
		return nil, fmt.Errorf("dprcore: nil dependency")
	}
	if cfg.DelayProb > 0 && clock == nil {
		return nil, fmt.Errorf("dprcore: DelayProb %v needs a Clock", cfg.DelayProb)
	}
	f := &FaultSender{inner: inner, clock: clock, rng: rng, cfg: cfg}
	if r, ok := inner.(dropRecorder); ok {
		f.rec = r
	}
	return f, nil
}

// Observe installs o as the fault-event observer (nil uninstalls).
// Call it before the first Send.
func (f *FaultSender) Observe(o telemetry.Observer) { f.obs = o }

// Send applies the configured faults to one chunk.
func (f *FaultSender) Send(from int, chunk transport.ScoreChunk) error {
	if f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb {
		f.dropped.Add(1)
		if f.rec != nil {
			f.rec.RecordFaultDrop(from)
		}
		if f.obs != nil {
			f.obs.FaultInjected(from, telemetry.FaultDrop)
		}
		return nil
	}
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		f.delayed.Add(1)
		if f.obs != nil {
			f.obs.FaultInjected(from, telemetry.FaultDelay)
		}
		d := f.rng.Exp(f.cfg.MeanDelay)
		f.clock.After(d, func() {
			// A delayed chunk that fails to send is simply lost — the
			// algorithms tolerate loss and fresher scores follow.
			if err := f.inner.Send(from, chunk); err != nil {
				return
			}
			_ = f.inner.Flush(from) // best-effort: loss is tolerated
		})
		return nil
	}
	if err := f.inner.Send(from, chunk); err != nil {
		return err
	}
	if f.cfg.DupProb > 0 && f.rng.Float64() < f.cfg.DupProb {
		f.duplicated.Add(1)
		if f.obs != nil {
			f.obs.FaultInjected(from, telemetry.FaultDup)
		}
		return f.inner.Send(from, chunk)
	}
	return nil
}

// Flush forwards to the wrapped sender.
func (f *FaultSender) Flush(from int) error { return f.inner.Flush(from) }

// Dropped returns how many chunks were dropped.
func (f *FaultSender) Dropped() int64 { return f.dropped.Load() }

// Delayed returns how many chunks were delayed.
func (f *FaultSender) Delayed() int64 { return f.delayed.Load() }

// Duplicated returns how many chunks were duplicated.
func (f *FaultSender) Duplicated() int64 { return f.duplicated.Load() }
