package dprcore

import (
	"fmt"
	"sync/atomic"

	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
)

// FaultConfig parameterizes a FaultSender. Each emitted chunk is
// independently dropped, delayed, or duplicated; the zero value
// injects nothing.
type FaultConfig struct {
	// DropProb drops the chunk outright — the wire analogue of the
	// paper's send-failure parameter p, applied below the algorithm so
	// the loop does not even know the send was lost.
	DropProb float64
	// DelayProb holds the chunk back and re-injects it later instead of
	// sending it now; the delay is exponentially distributed with mean
	// MeanDelay, scheduled on the runtime's Clock.
	DelayProb float64
	// MeanDelay is the mean re-injection delay, in the runtime's time
	// units (virtual units in-sim, nanoseconds live). Required when
	// DelayProb > 0.
	MeanDelay float64
	// DupProb sends the chunk twice — the receiver's staleness handling
	// must make the duplicate harmless.
	DupProb float64

	// PartitionFrac places that fraction of nodes on the minority side
	// of a seeded network partition. While the partition is active,
	// chunks crossing between the two sides are blackholed in both
	// directions; traffic within a side is untouched. Membership is a
	// pure hash of (Seed, node), so every FaultSender in a run — the
	// simulator's single injector or netpeer's per-peer ones — agrees on
	// the cut without sharing state, and so the serving tier can derive
	// shard reachability from the same function (the fault lattice).
	PartitionFrac float64
	// PartitionFrom / PartitionTo bound the partition window, in the
	// runtime's time units measured from the injector's construction
	// (virtual units in-sim, nanoseconds live). The partition heals at
	// PartitionTo. Required when PartitionFrac > 0: To > From ≥ 0.
	PartitionFrom float64
	PartitionTo   float64

	// StraggleFrac marks that fraction of nodes as stragglers: the same
	// seeded nodes stay slow for the whole run (a persistent slowdown,
	// unlike DelayProb's independent per-chunk lottery).
	StraggleFrac float64
	// StraggleFactor is the fixed hold-back applied to every chunk a
	// straggler emits, in the runtime's time units. Required positive
	// when StraggleFrac > 0.
	StraggleFactor float64

	// Seed keys partition and straggler membership. Runs that differ
	// only in Seed cut the network differently; the drivers default it
	// from their run seed when left zero.
	Seed uint64
}

// Enabled reports whether the config injects any fault.
func (c FaultConfig) Enabled() bool {
	return c.DropProb > 0 || c.DelayProb > 0 || c.DupProb > 0 ||
		c.PartitionFrac > 0 || c.StraggleFrac > 0
}

// Validate checks the probabilities, delay, and fault-lattice windows.
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropProb", c.DropProb}, {"DelayProb", c.DelayProb}, {"DupProb", c.DupProb},
		{"PartitionFrac", c.PartitionFrac}, {"StraggleFrac", c.StraggleFrac}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("dprcore: fault %s %v outside [0,1]", p.name, p.v)
		}
	}
	if c.DelayProb > 0 && c.MeanDelay <= 0 {
		return fmt.Errorf("dprcore: DelayProb %v needs positive MeanDelay, got %v", c.DelayProb, c.MeanDelay)
	}
	if c.PartitionFrac > 0 {
		if c.PartitionFrom < 0 || c.PartitionTo <= c.PartitionFrom {
			return fmt.Errorf("dprcore: partition window [%v,%v) invalid, need 0 <= From < To",
				c.PartitionFrom, c.PartitionTo)
		}
	}
	if c.StraggleFrac > 0 && c.StraggleFactor <= 0 {
		return fmt.Errorf("dprcore: StraggleFrac %v needs positive StraggleFactor, got %v",
			c.StraggleFrac, c.StraggleFactor)
	}
	return nil
}

// latticeHash01 maps (seed, node, salt) to [0,1) with a splitmix64
// finalizer. It is the whole shared state of the fault lattice: pure,
// so independent injectors and the serving tier agree on membership,
// and RNG-free, so partition/straggler checks never perturb the
// drop/delay/dup streams.
func latticeHash01(seed uint64, node int, salt uint64) float64 {
	x := seed ^ salt ^ uint64(node)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

const (
	saltPartition = 0x70617274 // "part"
	saltStraggle  = 0x736c6f77 // "slow"
)

// PartitionMinority reports whether node sits on the minority side of
// the configured partition. False whenever PartitionFrac is zero.
func (c FaultConfig) PartitionMinority(node int) bool {
	return c.PartitionFrac > 0 && latticeHash01(c.Seed, node, saltPartition) < c.PartitionFrac
}

// Straggler reports whether node is one of the seeded stragglers.
// False whenever StraggleFrac is zero.
func (c FaultConfig) Straggler(node int) bool {
	return c.StraggleFrac > 0 && latticeHash01(c.Seed, node, saltStraggle) < c.StraggleFrac
}

// PartitionActiveAt reports whether the partition is up at a time
// measured from the injector's construction epoch.
func (c FaultConfig) PartitionActiveAt(sinceEpoch float64) bool {
	return c.PartitionFrac > 0 && sinceEpoch >= c.PartitionFrom && sinceEpoch < c.PartitionTo
}

// FaultSender wraps a Sender with deterministic message faults. Both
// stacks use it unchanged: in-sim the Clock is the simulator (virtual
// delays, seeded rng, bit-reproducible runs), live it is the wall
// clock. Faults draw from their own RNG stream so enabling them never
// perturbs the loop's randomness.
//
// Send must be called from commit (serial) context, like the Sender it
// wraps; delayed re-injections fire on the Clock's callback context,
// so the inner Sender must accept sends from there (the simulator's
// event goroutine; a timer goroutine for netpeer's self-locking
// outbox).
type FaultSender struct {
	inner Sender
	clock Clock
	rng   RNG
	cfg   FaultConfig
	// obs, when set, is notified of every injected fault. Nil-checked
	// like the loop's observer: no observer, no extra work.
	obs telemetry.Observer
	// rec, when the wrapped sender exposes it, is told about every drop
	// so transport stats keep injected loss separate from send-time
	// drops (see transport.Stats.FaultDrops).
	rec dropRecorder

	// epoch is the clock reading at construction; partition windows are
	// measured from here so the same config means the same thing on the
	// simulator's virtual axis (built at t=0) and netpeer's wall clock.
	epoch float64

	dropped     atomic.Int64
	delayed     atomic.Int64
	duplicated  atomic.Int64
	partitioned atomic.Int64
	straggled   atomic.Int64
}

// dropRecorder is the probe a wrapped sender may implement to account
// for chunks the fault injector discarded above it. *transport.Fabric
// implements it.
type dropRecorder interface {
	RecordFaultDrop(from int)
}

// NewFaultSender wraps inner. clock may be nil when DelayProb is zero;
// rng must be a stream private to this wrapper.
func NewFaultSender(inner Sender, clock Clock, rng RNG, cfg FaultConfig) (*FaultSender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil || rng == nil {
		return nil, fmt.Errorf("dprcore: nil dependency")
	}
	if (cfg.DelayProb > 0 || cfg.PartitionFrac > 0 || cfg.StraggleFrac > 0) && clock == nil {
		return nil, fmt.Errorf("dprcore: fault config %+v needs a Clock", cfg)
	}
	f := &FaultSender{inner: inner, clock: clock, rng: rng, cfg: cfg}
	if clock != nil {
		f.epoch = clock.Now()
	}
	if r, ok := inner.(dropRecorder); ok {
		f.rec = r
	}
	return f, nil
}

// Observe installs o as the fault-event observer (nil uninstalls).
// Call it before the first Send.
func (f *FaultSender) Observe(o telemetry.Observer) { f.obs = o }

// Send applies the configured faults to one chunk. Partition and
// straggler checks run first and are RNG-free (pure lattice hashes), so
// turning them on never shifts the drop/delay/dup draws of the streams
// below them.
func (f *FaultSender) Send(from int, chunk transport.ScoreChunk) error {
	if f.cfg.PartitionFrac > 0 && f.cfg.PartitionActiveAt(f.clock.Now()-f.epoch) &&
		f.cfg.PartitionMinority(from) != f.cfg.PartitionMinority(int(chunk.DstGroup)) {
		f.partitioned.Add(1)
		if f.rec != nil {
			f.rec.RecordFaultDrop(from)
		}
		if f.obs != nil {
			f.obs.FaultInjected(from, telemetry.FaultPartition)
		}
		return nil
	}
	if f.cfg.StraggleFrac > 0 && f.cfg.Straggler(from) {
		f.straggled.Add(1)
		if f.obs != nil {
			f.obs.FaultInjected(from, telemetry.FaultStraggle)
		}
		f.clock.After(f.cfg.StraggleFactor, func() {
			// Same contract as the delay path: a held-back chunk that
			// fails to send is simply lost.
			if err := f.inner.Send(from, chunk); err != nil {
				return
			}
			_ = f.inner.Flush(from) // best-effort: loss is tolerated
		})
		return nil
	}
	if f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb {
		f.dropped.Add(1)
		if f.rec != nil {
			f.rec.RecordFaultDrop(from)
		}
		if f.obs != nil {
			f.obs.FaultInjected(from, telemetry.FaultDrop)
		}
		return nil
	}
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		f.delayed.Add(1)
		if f.obs != nil {
			f.obs.FaultInjected(from, telemetry.FaultDelay)
		}
		d := f.rng.Exp(f.cfg.MeanDelay)
		f.clock.After(d, func() {
			// A delayed chunk that fails to send is simply lost — the
			// algorithms tolerate loss and fresher scores follow.
			if err := f.inner.Send(from, chunk); err != nil {
				return
			}
			_ = f.inner.Flush(from) // best-effort: loss is tolerated
		})
		return nil
	}
	if err := f.inner.Send(from, chunk); err != nil {
		return err
	}
	if f.cfg.DupProb > 0 && f.rng.Float64() < f.cfg.DupProb {
		f.duplicated.Add(1)
		if f.obs != nil {
			f.obs.FaultInjected(from, telemetry.FaultDup)
		}
		return f.inner.Send(from, chunk)
	}
	return nil
}

// Flush forwards to the wrapped sender.
func (f *FaultSender) Flush(from int) error { return f.inner.Flush(from) }

// Dropped returns how many chunks were dropped.
func (f *FaultSender) Dropped() int64 { return f.dropped.Load() }

// Delayed returns how many chunks were delayed.
func (f *FaultSender) Delayed() int64 { return f.delayed.Load() }

// Duplicated returns how many chunks were duplicated.
func (f *FaultSender) Duplicated() int64 { return f.duplicated.Load() }

// Partitioned returns how many chunks the partition blackholed.
func (f *FaultSender) Partitioned() int64 { return f.partitioned.Load() }

// Straggled returns how many chunks straggler nodes held back.
func (f *FaultSender) Straggled() int64 { return f.straggled.Load() }
