package dprcore

import (
	"fmt"
	"sync/atomic"
)

// SupervisorConfig parameterizes a Supervisor. Times are in the driving
// runtime's units (nanoseconds for netpeer's wall clock).
type SupervisorConfig struct {
	// ProbeEvery is the liveness probe cadence (required, > 0).
	ProbeEvery float64
	// RestartBackoff is the wait before retrying a failed restart of
	// the same ranker (default ProbeEvery).
	RestartBackoff float64
	// BackoffFactor multiplies the per-ranker backoff after every
	// failed restart (default 2).
	BackoffFactor float64
	// MaxBackoff caps the grown backoff (default 16 × RestartBackoff).
	MaxBackoff float64
	// Jitter stretches every probe wait and backoff by a uniform factor
	// in [1, 1+Jitter) from the supervisor's private RNG stream
	// (default 0.1; negative disables).
	Jitter float64
	// MaxRestarts bounds restart attempts per ranker (0 = unlimited).
	MaxRestarts int
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.RestartBackoff == 0 {
		c.RestartBackoff = c.ProbeEvery
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = 2
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 16 * c.RestartBackoff
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	} else if c.Jitter < 0 {
		c.Jitter = 0
	}
	return c
}

// Supervised is the set a Supervisor watches. The netpeer cluster
// implements it: Alive combines socket liveness with the reliable
// layer's missed-ack breaker, Restart rebuilds the peer from its last
// checkpoint file and re-dials the mesh.
type Supervised interface {
	// NumRankers is the fixed size of the supervised set.
	NumRankers() int
	// Alive reports whether ranker i currently looks healthy.
	Alive(i int) bool
	// Restart brings a dead ranker back. It is called from the
	// supervisor's driving context and may block (dial, file IO).
	Restart(i int) error
}

// Supervisor probes a Supervised set on a jittered cadence and restarts
// rankers that look dead, backing off per ranker when restarts fail.
// Like the loop core it is runtime-agnostic and deterministic: time
// comes only from the injected Clock and Waiter, jitter only from the
// injected RNG (no wall clock, no global randomness — same p2plint
// scope as the rest of this package).
type Supervisor struct {
	set   Supervised
	clock Clock
	rng   RNG
	cfg   SupervisorConfig

	// Per-ranker restart state, touched only from Run's context.
	failures []int
	nextTry  []float64

	restarts atomic.Int64
	giveUps  atomic.Int64
}

// NewSupervisor builds a supervisor over set. The rng must be a private
// stream.
func NewSupervisor(set Supervised, clock Clock, rng RNG, cfg SupervisorConfig) (*Supervisor, error) {
	if set == nil || clock == nil || rng == nil {
		return nil, fmt.Errorf("dprcore: nil dependency")
	}
	if cfg.ProbeEvery <= 0 {
		return nil, fmt.Errorf("dprcore: supervisor ProbeEvery %v must be positive", cfg.ProbeEvery)
	}
	if cfg.BackoffFactor != 0 && cfg.BackoffFactor < 1 {
		return nil, fmt.Errorf("dprcore: supervisor BackoffFactor %v < 1", cfg.BackoffFactor)
	}
	if cfg.MaxRestarts < 0 {
		return nil, fmt.Errorf("dprcore: supervisor MaxRestarts %d negative", cfg.MaxRestarts)
	}
	n := set.NumRankers()
	return &Supervisor{
		set:      set,
		clock:    clock,
		rng:      rng,
		cfg:      cfg.withDefaults(),
		failures: make([]int, n),
		nextTry:  make([]float64, n),
	}, nil
}

// jittered stretches d by the configured jitter fraction.
func (s *Supervisor) jittered(d float64) float64 {
	if s.cfg.Jitter > 0 {
		d *= 1 + s.cfg.Jitter*s.rng.Float64()
	}
	return d
}

// Run probes until w.Wait reports shutdown. It owns the restart state,
// so run it from exactly one goroutine.
func (s *Supervisor) Run(w Waiter) {
	for w.Wait(s.jittered(s.cfg.ProbeEvery)) {
		s.Probe()
	}
}

// Probe scans the set once, restarting dead rankers whose backoff has
// passed. Exposed for event-driven drivers and tests; Run calls it on
// the cadence.
func (s *Supervisor) Probe() {
	now := s.clock.Now()
	for i := 0; i < s.set.NumRankers(); i++ {
		if s.set.Alive(i) {
			s.failures[i] = 0
			s.nextTry[i] = 0
			continue
		}
		if now < s.nextTry[i] {
			continue // still backing off from a failed restart
		}
		if s.cfg.MaxRestarts > 0 && s.failures[i] >= s.cfg.MaxRestarts {
			continue // given up on this ranker
		}
		if err := s.set.Restart(i); err != nil {
			s.failures[i]++
			if s.cfg.MaxRestarts > 0 && s.failures[i] >= s.cfg.MaxRestarts {
				s.giveUps.Add(1)
			}
			b := s.cfg.RestartBackoff
			for f := 1; f < s.failures[i] && b < s.cfg.MaxBackoff; f++ {
				b *= s.cfg.BackoffFactor
			}
			if b > s.cfg.MaxBackoff {
				b = s.cfg.MaxBackoff
			}
			s.nextTry[i] = now + s.jittered(b)
			continue
		}
		s.failures[i] = 0
		s.nextTry[i] = 0
		s.restarts.Add(1)
	}
}

// Restarts returns how many successful restarts the supervisor
// performed. Safe to read while Run is going.
func (s *Supervisor) Restarts() int64 { return s.restarts.Load() }
