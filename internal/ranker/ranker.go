// Package ranker drives the runtime-agnostic DPR loop
// (internal/dprcore) on the deterministic discrete-event simulator:
// each Ranker owns one dprcore.Loop and decides only *when* its phases
// run — exponential waits on virtual time, two-phase scheduling so the
// simulator can batch same-instant compute phases onto the parallel
// pool, and the suspend/resume lifecycle of the paper's §4.2 asynchrony
// model. The algorithmic state and the DPR1/DPR2 update rule live in
// dprcore, shared verbatim with the live TCP driver (internal/netpeer).
package ranker

import (
	"fmt"

	"p2prank/internal/dprcore"
	"p2prank/internal/simnet"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/xrand"
)

// Ranker is one asynchronous page-ranking node. It is driven entirely
// by simulator events; all methods must be called from the simulation
// goroutine.
type Ranker struct {
	loop *dprcore.Loop
	sim  *simnet.Simulator
	// timer is the ranker's one recurring wait event (simnet.Timer): the
	// wakeup chain re-arms a single pinned event struct instead of
	// scheduling a fresh one per iteration.
	timer *simnet.Timer

	// Construction inputs, retained so Restart can rebuild the loop
	// after a crash with the same dependencies (and, crucially, the
	// same rng stream — pacing continues deterministically).
	grp      *dprcore.Group
	params   dprcore.Params
	meanWait float64
	sender   dprcore.Sender
	rng      *xrand.Rand

	stopped   bool
	started   bool
	suspended bool
	crashed   bool
	// wakeupPending tracks whether a scheduled step event is in the
	// queue, so Resume/Restart never start a second wakeup chain while
	// the old one is still in flight (a pending wakeup survives a short
	// suspension or outage and simply continues the chain).
	wakeupPending bool
}

// New builds a ranker for grp with the resolved per-loop mean wait in
// virtual time units (the engine draws it from [T1, T2]). The rng must
// be private to this ranker.
func New(grp *dprcore.Group, p dprcore.Params, meanWait float64, sim *simnet.Simulator, sender dprcore.Sender, rng *xrand.Rand) (*Ranker, error) {
	if sim == nil {
		return nil, fmt.Errorf("ranker: nil simulator")
	}
	loop, err := dprcore.NewLoop(grp, p, meanWait, sender, rng)
	if err != nil {
		return nil, err
	}
	rk := &Ranker{
		loop: loop, sim: sim,
		grp: grp, params: p, meanWait: meanWait, sender: sender, rng: rng,
	}
	rk.timer = sim.NewComputeTimer(rk.step)
	return rk, nil
}

// Group returns the ranker's page group.
func (rk *Ranker) Group() *dprcore.Group { return rk.loop.Group() }

// SetInitialRanks warm-starts the ranker from a previous run's ranks —
// how an incremental recrawl avoids ranking from scratch (§4.3's
// dynamic-graph setting). It must be called before Start.
func (rk *Ranker) SetInitialRanks(r vecmath.Vec) error {
	if rk.started {
		return fmt.Errorf("ranker %d: SetInitialRanks after Start", rk.Group().Index)
	}
	return rk.loop.SetInitialRanks(r)
}

// Ranks returns the ranker's current rank vector. The slice is live;
// callers must copy before mutating or crossing a simulation step.
func (rk *Ranker) Ranks() vecmath.Vec { return rk.loop.Ranks() }

// Loops returns how many main-loop iterations the ranker has executed.
func (rk *Ranker) Loops() int64 { return rk.loop.Loops() }

// Start schedules the ranker's first loop after its random initial
// wait. Rankers start at independent random times, per the paper's
// asynchrony model.
func (rk *Ranker) Start() {
	if rk.started {
		return
	}
	rk.started = true
	rk.scheduleNext()
}

// Stop prevents any further loops from being scheduled. In-flight
// events still drain.
func (rk *Ranker) Stop() { rk.stopped = true }

// Suspend pauses the ranker's loop — the paper's §4.2 allows a ranker
// to "sleep for some time, suspend itself as its wish, or even
// shutdown". State (R, X, received chunks) is retained in the loop.
func (rk *Ranker) Suspend() { rk.suspended = true }

// Resume restarts a suspended ranker's loop.
func (rk *Ranker) Resume() {
	if !rk.suspended {
		return
	}
	rk.suspended = false
	if rk.started && !rk.stopped && !rk.wakeupPending {
		rk.scheduleNext()
	}
}

// Crash kills the ranker abruptly: unlike Suspend it destroys the
// loop's in-memory state (the failure model's whole point — a crashed
// node's R, X table, and pending sends are gone). The engine pairs it
// with taking the host down so in-flight traffic is lost too.
func (rk *Ranker) Crash() { rk.crashed = true }

// Restart brings a crashed ranker back with a fresh loop, warm-started
// from snapshot when non-nil (a dprcore checkpoint) and cold (R0 = 0)
// otherwise. The rebuilt loop reuses the ranker's original rng stream,
// so a seeded schedule stays deterministic across crash/restart cycles.
func (rk *Ranker) Restart(snapshot []byte) error {
	if !rk.crashed {
		return fmt.Errorf("ranker %d: Restart without Crash", rk.Group().Index)
	}
	loop, err := dprcore.NewLoop(rk.grp, rk.params, rk.meanWait, rk.sender, rk.rng)
	if err != nil {
		return err
	}
	if snapshot != nil {
		if err := loop.Restore(snapshot); err != nil {
			return err
		}
	}
	rk.loop = loop
	rk.crashed = false
	if rk.started && !rk.stopped && !rk.suspended && !rk.wakeupPending {
		rk.scheduleNext()
	}
	return nil
}

// Deliver is the transport callback: it records the chunk as the newest
// afferent contribution from its source group. A crashed ranker ignores
// deliveries (its host is down; anything already in flight is lost).
func (rk *Ranker) Deliver(chunk transport.ScoreChunk) {
	if rk.crashed {
		return
	}
	rk.loop.Deliver(chunk)
}

func (rk *Ranker) scheduleNext() {
	rk.wakeupPending = true
	rk.timer.Schedule(rk.loop.NextWait())
}

// step is the compute half of one iteration: it runs the loop's
// ComputePhase — private vectors only, so the simulator may run it
// concurrently with other rankers' compute phases at the same virtual
// instant — and returns the commit half, which the simulator runs
// serially in event order.
func (rk *Ranker) step() func() {
	rk.wakeupPending = false
	if rk.stopped || rk.suspended || rk.crashed {
		// A suspended or crashed ranker's pending wakeup dies here;
		// Resume/Restart schedules a fresh one.
		return nil
	}
	rk.loop.ComputePhase()
	return rk.commit
}

// commit is the serial half: publish Y (randomness, sends) and
// reschedule.
func (rk *Ranker) commit() {
	rk.loop.CommitPhase()
	rk.scheduleNext()
}
