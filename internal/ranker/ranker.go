package ranker

import (
	"fmt"
	"sort"

	"p2prank/internal/pagerank"
	"p2prank/internal/simnet"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/xrand"
)

// Algorithm selects the distributed iteration style of §4.2.
type Algorithm int

const (
	// DPR1 runs GroupPageRank to convergence inside every loop before
	// publishing Y (Algorithm 3).
	DPR1 Algorithm = iota
	// DPR2 performs a single Jacobi step per loop and publishes Y
	// eagerly (Algorithm 4).
	DPR2
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case DPR1:
		return "DPR1"
	case DPR2:
		return "DPR2"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Sender is the transport surface a ranker needs; *transport.Fabric
// implements it.
type Sender interface {
	Send(from int, chunk transport.ScoreChunk) error
	Flush(from int) error
}

// Config parameterizes one ranker's loop.
type Config struct {
	// Alg selects DPR1 or DPR2.
	Alg Algorithm
	// Alpha is the real-link rank fraction (must match the Group's).
	Alpha float64
	// InnerEpsilon is DPR1's GroupPageRank termination threshold.
	InnerEpsilon float64
	// InnerMaxIter bounds DPR1's inner loop (0 = 10000).
	InnerMaxIter int
	// SendProb is the probability that the Y vector for a destination
	// group is successfully sent in a loop (the paper's parameter p;
	// p = 1 means lossless).
	SendProb float64
	// MeanWait is the mean of this ranker's exponentially distributed
	// waiting time Tw between loops. The experiment harness draws it
	// uniformly from [T1, T2] per ranker.
	MeanWait float64
}

func (c *Config) validate() error {
	if c.Alg != DPR1 && c.Alg != DPR2 {
		return fmt.Errorf("ranker: unknown algorithm %d", int(c.Alg))
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("ranker: alpha = %v, must be in (0,1)", c.Alpha)
	}
	if c.InnerEpsilon < 0 {
		return fmt.Errorf("ranker: negative InnerEpsilon %v", c.InnerEpsilon)
	}
	if c.InnerMaxIter == 0 {
		c.InnerMaxIter = 10000
	}
	if c.SendProb < 0 || c.SendProb > 1 {
		return fmt.Errorf("ranker: SendProb %v outside [0,1]", c.SendProb)
	}
	if c.MeanWait < 0 {
		return fmt.Errorf("ranker: negative MeanWait %v", c.MeanWait)
	}
	return nil
}

// Ranker is one asynchronous page-ranking node. It is driven entirely
// by simulator events; all methods must be called from the simulation
// goroutine.
type Ranker struct {
	grp    *Group
	cfg    Config
	sim    *simnet.Simulator
	sender Sender
	rng    *xrand.Rand

	r       vecmath.Vec // current rank vector R
	x       vecmath.Vec // assembled afferent vector X
	scratch vecmath.Vec // swap buffer for the in-place solves
	// mergedY caches, per destination group, how many entries Y = BR
	// merges to, so publishY can size each chunk's slice exactly.
	mergedY map[int32]int32
	// latest holds the most recent chunk received from each source
	// group; Refresh X sums them. Stale (older-round) chunks are
	// ignored, since the paper's algorithms always use the newest
	// afferent scores available.
	latest map[int32]transport.ScoreChunk
	// srcOrder caches latest's keys in ascending order for
	// reproducible summation.
	srcOrder []int32

	loops     int64
	stopped   bool
	started   bool
	suspended bool
}

// New builds a ranker for grp. The rng must be private to this ranker.
func New(grp *Group, cfg Config, sim *simnet.Simulator, sender Sender, rng *xrand.Rand) (*Ranker, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if grp == nil || sim == nil || sender == nil || rng == nil {
		return nil, fmt.Errorf("ranker: nil dependency")
	}
	mergedY := make(map[int32]int32, len(grp.Eff))
	for dst, entries := range grp.Eff {
		var n int32
		prev := int32(-1)
		for _, e := range entries { // sorted by DstLocal: count the runs
			if e.DstLocal != prev {
				n++
				prev = e.DstLocal
			}
		}
		mergedY[dst] = n
	}
	return &Ranker{
		grp:     grp,
		cfg:     cfg,
		sim:     sim,
		sender:  sender,
		rng:     rng,
		r:       vecmath.NewVec(grp.N()), // R0 = 0, the Theorem 4.1/4.2 start
		x:       vecmath.NewVec(grp.N()),
		scratch: vecmath.NewVec(grp.N()),
		mergedY: mergedY,
		latest:  make(map[int32]transport.ScoreChunk),
	}, nil
}

// Group returns the ranker's page group.
func (rk *Ranker) Group() *Group { return rk.grp }

// SetInitialRanks warm-starts the ranker from a previous run's ranks —
// how an incremental recrawl avoids ranking from scratch (§4.3's
// dynamic-graph setting). It must be called before Start. Note the
// Theorem 4.1/4.2 monotonicity guarantees are stated for R0 = 0; a warm
// start trades them for a head start, and the contraction still drives
// the ranks to the fixed point.
func (rk *Ranker) SetInitialRanks(r vecmath.Vec) error {
	if rk.started {
		return fmt.Errorf("ranker %d: SetInitialRanks after Start", rk.grp.Index)
	}
	if len(r) != rk.grp.N() {
		return fmt.Errorf("ranker %d: initial ranks have length %d, want %d",
			rk.grp.Index, len(r), rk.grp.N())
	}
	copy(rk.r, r)
	return nil
}

// Ranks returns the ranker's current rank vector. The slice is live;
// callers must copy before mutating or crossing a simulation step.
func (rk *Ranker) Ranks() vecmath.Vec { return rk.r }

// Loops returns how many main-loop iterations the ranker has executed.
func (rk *Ranker) Loops() int64 { return rk.loops }

// Start schedules the ranker's first loop after its random initial
// wait. Rankers start at independent random times, per the paper's
// asynchrony model.
func (rk *Ranker) Start() {
	if rk.started {
		return
	}
	rk.started = true
	rk.scheduleNext()
}

// Stop prevents any further loops from being scheduled. In-flight
// events still drain.
func (rk *Ranker) Stop() { rk.stopped = true }

// Suspend pauses the ranker's loop — the paper's §4.2 allows a ranker
// to "sleep for some time, suspend itself as its wish, or even
// shutdown". State (R, X, received chunks) is retained.
func (rk *Ranker) Suspend() { rk.suspended = true }

// Resume restarts a suspended ranker's loop.
func (rk *Ranker) Resume() {
	if !rk.suspended {
		return
	}
	rk.suspended = false
	if rk.started && !rk.stopped {
		rk.scheduleNext()
	}
}

// Deliver is the transport callback: it records the chunk as the newest
// afferent contribution from its source group.
func (rk *Ranker) Deliver(chunk transport.ScoreChunk) {
	if int(chunk.DstGroup) != rk.grp.Index {
		panic(fmt.Sprintf("ranker %d delivered chunk for group %d", rk.grp.Index, chunk.DstGroup))
	}
	if prev, ok := rk.latest[chunk.SrcGroup]; ok && prev.Round >= chunk.Round {
		return // out-of-order stale delivery
	}
	rk.latest[chunk.SrcGroup] = chunk
}

func (rk *Ranker) scheduleNext() {
	rk.sim.AfterCompute(rk.rng.Exp(rk.cfg.MeanWait), rk.loop)
}

// loop is the compute half of one main-loop body of Algorithm 3 or 4:
// refresh X and update R, touching only this ranker's private vectors,
// so the simulator may run it concurrently with other rankers' loops at
// the same virtual instant. It returns the commit half — publish Y,
// reschedule — which the simulator runs serially in event order.
func (rk *Ranker) loop() func() {
	if rk.stopped || rk.suspended {
		// A suspended ranker's pending wakeup dies here; Resume
		// schedules a fresh one.
		return nil
	}
	rk.refreshX()
	switch rk.cfg.Alg {
	case DPR1:
		opt := pagerank.Options{
			Alpha:   rk.cfg.Alpha,
			Epsilon: rk.cfg.InnerEpsilon,
			MaxIter: rk.cfg.InnerMaxIter,
		}
		if _, err := rk.grp.Sys.SolveInPlace(rk.r, rk.x, rk.scratch, opt); err != nil {
			// Inner non-convergence is a configuration error (‖A‖∞ < 1
			// guarantees convergence for any positive ε); surface loudly.
			panic(fmt.Sprintf("ranker %d: inner solve: %v", rk.grp.Index, err))
		}
	case DPR2:
		rk.grp.Sys.Step(rk.scratch, rk.r, rk.x)
		rk.r, rk.scratch = rk.scratch, rk.r
	}
	return rk.commitLoop
}

// commitLoop is the serial half of a loop iteration: everything that
// draws randomness, sends, or schedules.
func (rk *Ranker) commitLoop() {
	rk.loops++
	rk.publishY()
	rk.scheduleNext()
}

// refreshX assembles X from the newest chunk of every source group.
// Sources are summed in ascending group order so floating-point
// rounding is reproducible.
func (rk *Ranker) refreshX() {
	rk.x.Zero()
	if len(rk.srcOrder) != len(rk.latest) {
		rk.srcOrder = rk.srcOrder[:0]
		for src := range rk.latest {
			rk.srcOrder = append(rk.srcOrder, src)
		}
		sort.Slice(rk.srcOrder, func(i, j int) bool { return rk.srcOrder[i] < rk.srcOrder[j] })
	}
	for _, src := range rk.srcOrder {
		for _, e := range rk.latest[src].Entries {
			rk.x[e.DstLocal] += e.Value
		}
	}
}

// publishY computes Y = BR per destination group and hands it to the
// transport, subjecting each destination's send to the loss parameter p.
func (rk *Ranker) publishY() {
	sent := false
	for _, dstGroup := range rk.grp.EffDsts {
		entries := rk.grp.Eff[dstGroup]
		if rk.cfg.SendProb < 1 && rk.rng.Float64() >= rk.cfg.SendProb {
			continue // this group's Y update is lost this round
		}
		chunk := transport.ScoreChunk{
			SrcGroup: int32(rk.grp.Index),
			DstGroup: dstGroup,
			Round:    rk.loops,
			// Sized exactly: one allocation, no append growth. The slice
			// cannot be pooled — it rides the in-flight message and the
			// receiver keeps it as its newest afferent contribution.
			Entries: make([]transport.ScoreEntry, 0, rk.mergedY[dstGroup]),
		}
		// Entries are sorted by DstLocal; merge adjacent contributions
		// to the same destination page.
		for _, e := range entries {
			v := float64(e.Links) * rk.cfg.Alpha * rk.r[e.LocalSrc] / float64(rk.grp.Deg[e.LocalSrc])
			chunk.Links += int64(e.Links)
			n := len(chunk.Entries)
			if n > 0 && chunk.Entries[n-1].DstLocal == e.DstLocal {
				chunk.Entries[n-1].Value += v
			} else {
				chunk.Entries = append(chunk.Entries, transport.ScoreEntry{DstLocal: e.DstLocal, Value: v})
			}
		}
		if err := rk.sender.Send(rk.grp.Index, chunk); err != nil {
			panic(fmt.Sprintf("ranker %d: send: %v", rk.grp.Index, err))
		}
		sent = true
	}
	if sent {
		if err := rk.sender.Flush(rk.grp.Index); err != nil {
			panic(fmt.Sprintf("ranker %d: flush: %v", rk.grp.Index, err))
		}
	}
}
