package ranker

import (
	"testing"

	"p2prank/internal/dprcore"
)

func TestSuspendResume(t *testing.T) {
	g := genGraph(t, 800, 51)
	sim, rankers, _ := cluster(t, g, 4, baseParams(dprcore.DPR1), 51)
	for _, rk := range rankers {
		rk.Start()
	}
	sim.RunUntil(30)
	rk := rankers[0]
	before := rk.Loops()
	if before == 0 {
		t.Fatal("no loops before suspension")
	}
	rk.Suspend()
	sim.RunUntil(90)
	if rk.Loops() != before {
		t.Fatalf("suspended ranker looped: %d -> %d", before, rk.Loops())
	}
	// Other rankers keep going.
	if rankers[1].Loops() <= before {
		t.Fatal("peers stalled during suspension")
	}
	rk.Resume()
	sim.RunUntil(150)
	if rk.Loops() <= before {
		t.Fatal("resumed ranker never looped again")
	}
	for _, r := range rankers {
		r.Stop()
	}
}

func TestResumeWithoutSuspendIsNoop(t *testing.T) {
	g := genGraph(t, 400, 53)
	sim, rankers, _ := cluster(t, g, 4, baseParams(dprcore.DPR2), 53)
	rk := rankers[0]
	rk.Start()
	rk.Resume() // not suspended: must not double-schedule
	sim.RunUntil(30)
	// MeanWait=3 over 30 units → ~10 loops; double-scheduling would
	// give ~20. Allow generous slack for Exp variance.
	if l := rk.Loops(); l > 22 {
		t.Fatalf("suspicious loop count %d after spurious Resume", l)
	}
	rk.Stop()
}

func TestSuspendBeforeStart(t *testing.T) {
	g := genGraph(t, 400, 55)
	sim, rankers, _ := cluster(t, g, 4, baseParams(dprcore.DPR1), 55)
	rk := rankers[0]
	rk.Suspend()
	rk.Start()
	sim.RunUntil(40)
	if rk.Loops() != 0 {
		t.Fatalf("ranker suspended before Start still looped %d times", rk.Loops())
	}
	rk.Resume()
	sim.RunUntil(80)
	if rk.Loops() == 0 {
		t.Fatal("ranker never recovered")
	}
	rk.Stop()
}

func TestSetInitialRanksValidation(t *testing.T) {
	g := genGraph(t, 400, 57)
	sim, rankers, _ := cluster(t, g, 2, baseParams(dprcore.DPR1), 57)
	rk := rankers[0]
	if err := rk.SetInitialRanks(make([]float64, 3)); err == nil {
		t.Error("wrong-length initial ranks accepted")
	}
	warm := make([]float64, rk.Group().N())
	for i := range warm {
		warm[i] = 0.5
	}
	if err := rk.SetInitialRanks(warm); err != nil {
		t.Fatal(err)
	}
	if rk.Ranks()[0] != 0.5 {
		t.Fatal("initial ranks not applied")
	}
	rk.Start()
	if err := rk.SetInitialRanks(warm); err == nil {
		t.Error("SetInitialRanks after Start accepted")
	}
	sim.RunUntil(5)
	rk.Stop()
}
