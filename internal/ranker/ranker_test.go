package ranker

import (
	"fmt"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/nodeid"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/simnet"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

func genGraph(t testing.TB, pages int, seed uint64) *webgraph.Graph {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = seed
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func makeAssignment(t testing.TB, g *webgraph.Graph, k int, strat partition.Strategy) *partition.Assignment {
	t.Helper()
	ids := make([]nodeid.ID, k)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := partition.Assign(g, ov, strat, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildGroupsCoverage(t *testing.T) {
	g := genGraph(t, 4000, 3)
	a := makeAssignment(t, g, 8, partition.BySite)
	groups, err := dprcore.BuildGroups(g, a, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 8 {
		t.Fatalf("%d groups", len(groups))
	}
	totalPages := 0
	var innerLinks, effLinks int64
	for i, grp := range groups {
		if grp.Index != i {
			t.Fatalf("group %d has index %d", i, grp.Index)
		}
		totalPages += grp.N()
		innerLinks += int64(grp.Sys.A.NNZ()) // aggregated, lower bound
		effLinks += grp.EffLinks
		if len(grp.EffDsts) != len(grp.Eff) {
			t.Fatalf("group %d EffDsts/Eff mismatch", i)
		}
		for k := 1; k < len(grp.EffDsts); k++ {
			if grp.EffDsts[k-1] >= grp.EffDsts[k] {
				t.Fatalf("group %d EffDsts unsorted: %v", i, grp.EffDsts)
			}
		}
		for dst, entries := range grp.Eff {
			if int(dst) == i {
				t.Fatalf("group %d has efferent links to itself", i)
			}
			for _, e := range entries {
				if e.Links <= 0 {
					t.Fatalf("non-positive link count %+v", e)
				}
				if int(e.LocalSrc) >= grp.N() {
					t.Fatalf("bad local src %+v", e)
				}
				if int(e.DstLocal) >= groups[dst].N() {
					t.Fatalf("bad dst local %+v", e)
				}
			}
		}
	}
	if totalPages != g.NumPages() {
		t.Fatalf("groups cover %d of %d pages", totalPages, g.NumPages())
	}
	cut := partition.Cut(g, a)
	if effLinks != cut.InterGroupLinks {
		t.Fatalf("efferent links %d != inter-group links %d", effLinks, cut.InterGroupLinks)
	}
}

func TestBuildGroupsBadAlpha(t *testing.T) {
	g := genGraph(t, 200, 1)
	a := makeAssignment(t, g, 4, partition.BySite)
	for _, alpha := range []float64{0, 1, -1, 2} {
		if _, err := dprcore.BuildGroups(g, a, alpha); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
}

// instantSender delivers chunks synchronously to the target ranker —
// a zero-latency lossless fabric for unit tests.
type instantSender struct {
	rankers []*Ranker
	sent    int
}

func (s *instantSender) Send(from int, c transport.ScoreChunk) error {
	s.sent++
	s.rankers[c.DstGroup].Deliver(c)
	return nil
}
func (s *instantSender) Flush(from int) error { return nil }

// clusterMeanWait is the per-loop mean wait every test ranker uses, in
// virtual time units.
const clusterMeanWait = 3

// cluster builds K rankers over an instant sender, ready to Start.
func cluster(t *testing.T, g *webgraph.Graph, k int, p dprcore.Params, seed uint64) (*simnet.Simulator, []*Ranker, *instantSender) {
	t.Helper()
	a := makeAssignment(t, g, k, partition.BySite)
	groups, err := dprcore.BuildGroups(g, a, p.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.New(seed)
	sender := &instantSender{}
	root := xrand.New(seed)
	rankers := make([]*Ranker, k)
	for i := 0; i < k; i++ {
		rk, err := New(groups[i], p, clusterMeanWait, sim, sender, root.Fork())
		if err != nil {
			t.Fatal(err)
		}
		rankers[i] = rk
	}
	sender.rankers = rankers
	return sim, rankers, sender
}

func assemble(g *webgraph.Graph, a *partition.Assignment, rankers []*Ranker) vecmath.Vec {
	out := vecmath.NewVec(g.NumPages())
	for _, rk := range rankers {
		r := rk.Ranks()
		for li, p := range rk.Group().Pages {
			out[p] = r[li]
		}
	}
	return out
}

func baseParams(alg dprcore.Algorithm) dprcore.Params {
	return dprcore.Params{
		Alg:          alg,
		Alpha:        0.85,
		InnerEpsilon: 1e-10,
		SendProb:     1,
	}
}

func TestDPR1ConvergesToCentralized(t *testing.T) {
	g := genGraph(t, 3000, 7)
	a := makeAssignment(t, g, 6, partition.BySite)
	star, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sim, rankers, _ := cluster(t, g, 6, baseParams(dprcore.DPR1), 11)
	for _, rk := range rankers {
		rk.Start()
	}
	sim.RunUntil(400)
	got := assemble(g, a, rankers)
	if re := vecmath.RelErr1(got, star.Ranks); re > 1e-6 {
		t.Fatalf("DPR1 relative error %v after 400 time units", re)
	}
	for _, rk := range rankers {
		rk.Stop()
	}
}

func TestDPR2ConvergesToCentralized(t *testing.T) {
	g := genGraph(t, 3000, 7)
	a := makeAssignment(t, g, 6, partition.BySite)
	star, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sim, rankers, _ := cluster(t, g, 6, baseParams(dprcore.DPR2), 13)
	for _, rk := range rankers {
		rk.Start()
	}
	sim.RunUntil(1500)
	got := assemble(g, a, rankers)
	if re := vecmath.RelErr1(got, star.Ranks); re > 1e-5 {
		t.Fatalf("DPR2 relative error %v after 1500 time units", re)
	}
	for _, rk := range rankers {
		rk.Stop()
	}
}

// Theorem 4.1: with R0 = 0 and a static graph, every ranker's rank
// vector is monotone non-decreasing across loops, even under loss.
func TestDPR1Monotone(t *testing.T) {
	g := genGraph(t, 2000, 9)
	cfg := baseParams(dprcore.DPR1)
	cfg.SendProb = 0.7
	sim, rankers, _ := cluster(t, g, 5, cfg, 17)
	for _, rk := range rankers {
		rk.Start()
	}
	prev := make([]vecmath.Vec, len(rankers))
	for i, rk := range rankers {
		prev[i] = rk.Ranks().Clone()
	}
	for step := 0; step < 40; step++ {
		sim.RunUntil(float64(step+1) * 5)
		for i, rk := range rankers {
			cur := rk.Ranks()
			if !vecmath.Dominates(cur, prev[i], 1e-12) {
				t.Fatalf("ranker %d rank decreased at t=%v", i, sim.Now())
			}
			prev[i] = cur.Clone()
		}
	}
	for _, rk := range rankers {
		rk.Stop()
	}
}

// Theorem 4.2: the DPR1 sequence is bounded above by the centralized
// fixed point.
func TestDPR1BoundedByCentralized(t *testing.T) {
	g := genGraph(t, 2000, 9)
	a := makeAssignment(t, g, 5, partition.BySite)
	star, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseParams(dprcore.DPR1)
	cfg.SendProb = 0.6
	sim, rankers, _ := cluster(t, g, 5, cfg, 19)
	for _, rk := range rankers {
		rk.Start()
	}
	for step := 0; step < 30; step++ {
		sim.RunUntil(float64(step+1) * 7)
		got := assemble(g, a, rankers)
		if !vecmath.Dominates(star.Ranks, got, 1e-9) {
			t.Fatalf("distributed ranks exceeded centralized fixed point at t=%v", sim.Now())
		}
	}
	for _, rk := range rankers {
		rk.Stop()
	}
}

func TestLossSlowsButDoesNotPreventConvergence(t *testing.T) {
	g := genGraph(t, 2000, 21)
	a := makeAssignment(t, g, 5, partition.BySite)
	star, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(sendProb float64, seed uint64) float64 {
		cfg := baseParams(dprcore.DPR1)
		cfg.SendProb = sendProb
		sim, rankers, _ := cluster(t, g, 5, cfg, seed)
		for _, rk := range rankers {
			rk.Start()
		}
		sim.RunUntil(60)
		got := assemble(g, a, rankers)
		for _, rk := range rankers {
			rk.Stop()
		}
		return vecmath.RelErr1(got, star.Ranks)
	}
	lossless := errAt(1, 23)
	lossy := errAt(0.3, 23)
	if lossy <= lossless {
		t.Fatalf("loss did not slow convergence: lossless %v, lossy %v", lossless, lossy)
	}
	// And the lossy run still converges eventually.
	cfg := baseParams(dprcore.DPR1)
	cfg.SendProb = 0.3
	sim, rankers, _ := cluster(t, g, 5, cfg, 23)
	for _, rk := range rankers {
		rk.Start()
	}
	sim.RunUntil(2500)
	got := assemble(g, a, rankers)
	if re := vecmath.RelErr1(got, star.Ranks); re > 1e-5 {
		t.Fatalf("lossy run stuck at relative error %v", re)
	}
	for _, rk := range rankers {
		rk.Stop()
	}
}

// Staleness handling (newest-chunk-wins) is unit-tested where the
// logic lives: see internal/dprcore's TestStaleChunksIgnored.

func TestDeliverWrongGroupPanics(t *testing.T) {
	g := genGraph(t, 500, 25)
	_, rankers, _ := cluster(t, g, 4, baseParams(dprcore.DPR1), 29)
	defer func() {
		if recover() == nil {
			t.Fatal("misrouted chunk accepted")
		}
	}()
	rankers[0].Deliver(transport.ScoreChunk{SrcGroup: 1, DstGroup: 2})
}

func TestStopHaltsLoops(t *testing.T) {
	g := genGraph(t, 500, 31)
	sim, rankers, _ := cluster(t, g, 4, baseParams(dprcore.DPR1), 31)
	for _, rk := range rankers {
		rk.Start()
	}
	sim.RunUntil(50)
	loops := rankers[0].Loops()
	if loops == 0 {
		t.Fatal("no loops ran")
	}
	for _, rk := range rankers {
		rk.Stop()
	}
	sim.Run(0) // drain
	if rankers[0].Loops() > loops+1 {
		t.Fatalf("loops kept running after Stop: %d -> %d", loops, rankers[0].Loops())
	}
}

func TestStartIdempotent(t *testing.T) {
	g := genGraph(t, 300, 33)
	sim, rankers, _ := cluster(t, g, 4, baseParams(dprcore.DPR2), 33)
	rankers[0].Start()
	rankers[0].Start() // must not double-schedule
	sim.RunUntil(20)
	// With MeanWait=3 over 20 units, a double-scheduled ranker would
	// run ~13 loops instead of ~6. Allow slack for Exp variance.
	if l := rankers[0].Loops(); l > 14 {
		t.Fatalf("suspicious loop count %d after double Start", l)
	}
	rankers[0].Stop()
}

func TestConfigValidation(t *testing.T) {
	g := genGraph(t, 300, 35)
	a := makeAssignment(t, g, 2, partition.BySite)
	groups, err := dprcore.BuildGroups(g, a, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	sim := simnet.New(1)
	sender := &instantSender{}
	rng := xrand.New(1)
	bad := []struct {
		p        dprcore.Params
		meanWait float64
	}{
		{dprcore.Params{Alg: dprcore.Algorithm(9), Alpha: 0.85, SendProb: 1}, 1},
		{dprcore.Params{Alg: dprcore.DPR1, Alpha: 0, SendProb: 1}, 1},
		{dprcore.Params{Alg: dprcore.DPR1, Alpha: 0.85, SendProb: -0.1}, 1},
		{dprcore.Params{Alg: dprcore.DPR1, Alpha: 0.85, SendProb: 2}, 1},
		{dprcore.Params{Alg: dprcore.DPR1, Alpha: 0.85, SendProb: 1}, -1},
		{dprcore.Params{Alg: dprcore.DPR1, Alpha: 0.85, InnerEpsilon: -1, SendProb: 1}, 1},
	}
	for i, tc := range bad {
		if _, err := New(groups[0], tc.p, tc.meanWait, sim, sender, rng); err == nil {
			t.Errorf("params %d accepted: %+v", i, tc)
		}
	}
	if _, err := New(nil, baseParams(dprcore.DPR1), 1, sim, sender, rng); err == nil {
		t.Error("nil group accepted")
	}
	if _, err := New(groups[0], baseParams(dprcore.DPR1), 1, nil, sender, rng); err == nil {
		t.Error("nil simulator accepted")
	}
}

func TestRankerDeterminism(t *testing.T) {
	g := genGraph(t, 1000, 37)
	run := func() vecmath.Vec {
		a := makeAssignment(t, g, 4, partition.BySite)
		sim, rankers, _ := cluster(t, g, 4, baseParams(dprcore.DPR1), 41)
		for _, rk := range rankers {
			rk.Start()
		}
		sim.RunUntil(80)
		v := assemble(g, a, rankers)
		for _, rk := range rankers {
			rk.Stop()
		}
		return v
	}
	v1, v2 := run(), run()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("nondeterministic rank at page %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

func BenchmarkDPR1Loop(b *testing.B) {
	cfg := webgraph.DefaultGenConfig(5000)
	g, err := webgraph.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]nodeid.ID, 8)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	a, err := partition.Assign(g, ov, partition.BySite, 1)
	if err != nil {
		b.Fatal(err)
	}
	groups, err := dprcore.BuildGroups(g, a, 0.85)
	if err != nil {
		b.Fatal(err)
	}
	sim := simnet.New(1)
	sender := &instantSender{}
	rankers := make([]*Ranker, 8)
	rp := dprcore.Params{Alg: dprcore.DPR1, Alpha: 0.85, InnerEpsilon: 1e-10, SendProb: 1}
	root := xrand.New(1)
	for i := range rankers {
		rk, err := New(groups[i], rp, 1, sim, sender, root.Fork())
		if err != nil {
			b.Fatal(err)
		}
		rankers[i] = rk
	}
	sender.rankers = rankers
	for _, rk := range rankers {
		rk.Start()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunUntil(sim.Now() + 10)
	}
}
