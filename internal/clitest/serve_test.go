package clitest

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var serveURLRx = regexp.MustCompile(`serving: (http://[^/\s]+)`)

// TestServeSmokeDprnode is half of `make serve-smoke`: boot a demo
// cluster with the query tier and internal load generator on, hit
// /search over HTTP while it ranks, and check the query metrics land
// on the same /metrics endpoint obs-smoke scrapes.
func TestServeSmokeDprnode(t *testing.T) {
	cmd := exec.Command(filepath.Join(builtDir, "dprnode"),
		"-demo", "-pages", "2500", "-k", "3", "-target", "1e-9",
		"-serve", "127.0.0.1:0", "-qps", "50", "-topk", "5",
		"-obs", "127.0.0.1:0")
	sb := &syncBuf{}
	cmd.Stdout = sb
	cmd.Stderr = sb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()

	// Both servers announce their URLs before ranking starts.
	var serveBase, obsBase string
	deadline := time.Now().Add(15 * time.Second)
	for serveBase == "" || obsBase == "" {
		out := sb.String()
		if m := serveURLRx.FindStringSubmatch(out); m != nil {
			serveBase = m[1]
		}
		if m := obsURLRx.FindStringSubmatch(out); m != nil {
			obsBase = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("servers never announced:\n%s", out)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Query until the first snapshots are published (503 until then).
	var body struct {
		Version   int64 `json:"version"`
		Staleness int64 `json:"staleness"`
		Postings  []struct {
			Page  int32   `json:"page"`
			Score float64 `json:"score"`
		} `json:"postings"`
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		raw, status := get(t, serveBase+"/search?terms=0&k=3")
		if status == 200 {
			if err := json.Unmarshal([]byte(raw), &body); err != nil {
				t.Fatalf("bad /search JSON: %v\n%s", err, raw)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/search never turned 200 (last status %d)", status)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if body.Version < 1 || len(body.Postings) == 0 {
		t.Fatalf("served version %d with %d postings", body.Version, len(body.Postings))
	}
	for i := 1; i < len(body.Postings); i++ {
		if body.Postings[i].Score > body.Postings[i-1].Score {
			t.Fatalf("postings out of rank order: %+v", body.Postings)
		}
	}
	if _, status := get(t, serveBase+"/search?terms=0&minv=99999999"); status != 503 {
		t.Fatalf("unreachable MinVersion got status %d, want 503", status)
	}
	if _, status := get(t, serveBase+"/search?terms=bogus"); status != 400 {
		t.Fatalf("malformed terms got status %d, want 400", status)
	}

	// The collector sees the queries: ours plus the -qps load gen.
	deadline = time.Now().Add(15 * time.Second)
	for {
		metrics := obsScrape(t, obsBase, "/metrics")
		if strings.Contains(metrics, "# TYPE p2prank_query_latency_seconds histogram") &&
			strings.Contains(metrics, "p2prank_snapshot_publishes_total") &&
			!strings.Contains(metrics, "p2prank_queries_total 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query metrics never landed:\n%.600s", metrics)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// get fetches a URL, tolerating non-200 statuses (unlike obsScrape).
func get(t *testing.T, url string) (body string, status int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), resp.StatusCode
}

// TestServeSmokeDprsim is the other half of `make serve-smoke`: the
// deterministic serving sweep at a toy scale must report the QPS,
// latency percentile, and staleness columns.
func TestServeSmokeDprsim(t *testing.T) {
	out := run(t, "dprsim", "-exp", "serve", "-ks", "32", "-queries", "400", "-topk", "5")
	for _, want := range []string{"Serving tier", "hit rate", "max stale", "QPS", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !regexp.MustCompile(`\n32\s+640\s+400\s+`).MatchString(out) {
		t.Fatalf("row for K=32/pages=640/queries=400 missing:\n%s", out)
	}
}
