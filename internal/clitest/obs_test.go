package clitest

import (
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var obsURLRx = regexp.MustCompile(`observability: (http://\S+)`)

// obsScrape fetches path from the node's observability server.
func obsScrape(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// obsRounds sums the per-ranker p2prank_rounds_total series of a
// /metrics scrape.
func obsRounds(t *testing.T, body string) int64 {
	t.Helper()
	var sum int64
	seen := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "p2prank_rounds_total{") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad sample %q: %v", line, err)
		}
		sum += v
		seen = true
	}
	if !seen {
		t.Fatalf("p2prank_rounds_total absent:\n%s", body)
	}
	return sum
}

// TestDprnodeObsSmoke is `make obs-smoke`: boot a 3-ranker dprnode
// cluster with the observability server on an ephemeral port, scrape
// /metrics while it runs, and check the round counters advance between
// scrapes. It also probes the pprof index the -obs endpoint promises.
func TestDprnodeObsSmoke(t *testing.T) {
	cmd := exec.Command(filepath.Join(builtDir, "dprnode"),
		"-demo", "-pages", "2500", "-k", "3", "-target", "1e-9",
		"-obs", "127.0.0.1:0")
	sb := &syncBuf{}
	cmd.Stdout = sb
	cmd.Stderr = sb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()

	// The node announces its observability URL before ranking starts.
	var base string
	deadline := time.Now().Add(15 * time.Second)
	for base == "" {
		if m := obsURLRx.FindStringSubmatch(sb.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no observability URL announced:\n%s", sb.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// First scrape once any ranker has completed a round.
	var first int64
	deadline = time.Now().Add(15 * time.Second)
	for {
		body := obsScrape(t, base, "/metrics")
		if !strings.Contains(body, "# TYPE p2prank_rounds_total counter") {
			t.Fatalf("scrape is not Prometheus text:\n%.300s", body)
		}
		if first = obsRounds(t, body); first > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("round counters never left zero")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Counters advance while the demo keeps iterating.
	grew := false
	for i := 0; i < 200 && !grew; i++ {
		time.Sleep(50 * time.Millisecond)
		grew = obsRounds(t, obsScrape(t, base, "/metrics")) > first
	}
	if !grew {
		t.Fatalf("rounds_total stuck at %d across scrapes", first)
	}

	if idx := obsScrape(t, base, "/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index malformed:\n%.300s", idx)
	}
}
