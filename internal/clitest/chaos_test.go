package clitest

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestServeChaosPartitionDprnode is the serve-under-partition half of
// `make chaos`: boot a demo cluster with the query tier on and a 40%
// network partition injected for the first 8 seconds, and require the
// frontend to keep answering 200s through the cut — degraded, with the
// lost shard reported as coverage < 1 — then to recover full coverage
// once the partition heals.
func TestServeChaosPartitionDprnode(t *testing.T) {
	cmd := exec.Command(filepath.Join(builtDir, "dprnode"),
		"-demo", "-pages", "2500", "-k", "4", "-target", "1e-18",
		"-serve", "127.0.0.1:0", "-topk", "5",
		"-fault", "partition=0.4,pfrom=0,pto=8000")
	sb := &syncBuf{}
	cmd.Stdout = sb
	cmd.Stderr = sb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
	}()

	var serveBase string
	deadline := time.Now().Add(15 * time.Second)
	for serveBase == "" {
		if m := serveURLRx.FindStringSubmatch(sb.String()); m != nil {
			serveBase = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("query tier never announced:\n%s", sb.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	var body struct {
		Version  int64   `json:"version"`
		Coverage float64 `json:"coverage"`
		Degraded bool    `json:"degraded"`
		Postings []struct {
			Page int32 `json:"page"`
		} `json:"postings"`
	}
	// Phase 1, partition up: a popular term plans every shard, so the
	// cut-off one must surface as a degraded 200, never an error.
	deadline = time.Now().Add(7 * time.Second)
	sawDegraded := false
	for !sawDegraded {
		raw, status := get(t, serveBase+"/search?terms=0&k=5")
		switch status {
		case 200:
			if err := json.Unmarshal([]byte(raw), &body); err != nil {
				t.Fatalf("bad /search JSON: %v\n%s", err, raw)
			}
			if body.Degraded {
				if body.Coverage <= 0 || body.Coverage >= 1 {
					t.Fatalf("degraded answer with coverage %v, want a real fraction:\n%s", body.Coverage, raw)
				}
				if len(body.Postings) == 0 {
					t.Fatalf("degraded answer carried no postings:\n%s", raw)
				}
				sawDegraded = true
			}
		case 503:
			// Before the first publish the store is stale by definition.
		default:
			t.Fatalf("mid-partition /search status %d:\n%s", status, raw)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no degraded answer before the heal; last: %d\n%s", status, raw)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Phase 2, healed: the same query must climb back to full coverage.
	deadline = time.Now().Add(15 * time.Second)
	for {
		raw, status := get(t, serveBase+"/search?terms=0&k=5")
		if status == 200 {
			if err := json.Unmarshal([]byte(raw), &body); err != nil {
				t.Fatalf("bad /search JSON: %v\n%s", err, raw)
			}
			if !body.Degraded && body.Coverage == 1 && len(body.Postings) > 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coverage never recovered after the heal; last: %d\n%s", status, raw)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
