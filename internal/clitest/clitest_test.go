// Package clitest smoke-tests the command-line tools end to end: it
// builds each binary with the local toolchain and exercises its main
// paths against tiny workloads.
package clitest

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe output collector for child processes.
type syncBuf struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// buildCmds compiles every cmd into a temp dir once per test binary.
var builtDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "p2prank-cli")
	if err != nil {
		panic(err)
	}
	builtDir = dir
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"p2prank/cmd/genweb", "p2prank/cmd/dprsim", "p2prank/cmd/bwtable", "p2prank/cmd/dprnode")
	cmd.Dir = repoRoot()
	if out, err := cmd.CombinedOutput(); err != nil {
		panic("building cmds: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot() string {
	// This package lives at <root>/internal/clitest.
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(builtDir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestGenwebStats(t *testing.T) {
	out := run(t, "genweb", "-pages", "3000", "-stats")
	for _, want := range []string{"pages=3000", "intra-site"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGenwebWriteAndDprnodeLoad(t *testing.T) {
	graph := filepath.Join(t.TempDir(), "crawl.bin")
	run(t, "genweb", "-pages", "2000", "-out", graph)
	if _, err := os.Stat(graph); err != nil {
		t.Fatalf("graph not written: %v", err)
	}
	// Text format too.
	textGraph := filepath.Join(t.TempDir(), "crawl.txt")
	run(t, "genweb", "-pages", "500", "-out", textGraph)
}

func TestGenwebCut(t *testing.T) {
	out := run(t, "genweb", "-pages", "4000", "-cut", "-k", "8")
	if !strings.Contains(out, "by-site") || !strings.Contains(out, "random") {
		t.Fatalf("cut table missing:\n%s", out)
	}
}

func TestBwtableReproducesTable1(t *testing.T) {
	out := run(t, "bwtable")
	for _, want := range []string{"7500s", "10500s", "12000s", "100KB/s", "10KB/s", "1KB/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 value %q missing:\n%s", want, out)
		}
	}
}

func TestDprsimFig7(t *testing.T) {
	out := run(t, "dprsim", "-exp", "fig7", "-pages", "2500", "-sites", "15", "-k", "6", "-maxtime", "30")
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "time,A") {
		t.Fatalf("fig7 output malformed:\n%s", out)
	}
}

func TestDprsimCSVOutput(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "curves.csv")
	run(t, "dprsim", "-exp", "fig6", "-pages", "2000", "-sites", "10", "-k", "4", "-maxtime", "20", "-csv", csv)
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,") {
		t.Fatalf("CSV header wrong: %q", string(data[:40]))
	}
}

func TestDprsimCut(t *testing.T) {
	out := run(t, "dprsim", "-exp", "cut", "-pages", "3000", "-sites", "20", "-k", "8")
	if !strings.Contains(out, "cut fraction") {
		t.Fatalf("cut output malformed:\n%s", out)
	}
}

func TestDprsimUnknownExperiment(t *testing.T) {
	cmd := exec.Command(filepath.Join(builtDir, "dprsim"), "-exp", "nonsense")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown experiment exited 0")
	}
}

func TestDprnodeDemo(t *testing.T) {
	out := run(t, "dprnode", "-demo", "-pages", "1500", "-k", "3", "-target", "1e-4")
	if !strings.Contains(out, "converged to relative error") {
		t.Fatalf("demo did not converge:\n%s", out)
	}
	if !strings.Contains(out, "top pages") {
		t.Fatalf("demo missing top pages:\n%s", out)
	}
}

// TestDprnodeMultiProcess runs three dprnode processes against a shared
// crawl file — the real deployment shape — and verifies each makes
// ranking progress and exchanges chunks before being stopped.
func TestDprnodeMultiProcess(t *testing.T) {
	dir := t.TempDir()
	graph := filepath.Join(dir, "crawl.bin")
	run(t, "genweb", "-pages", "3000", "-out", graph)

	// Fixed localhost ports; chosen high to dodge collisions.
	ports := []string{"38471", "38472", "38473"}
	addr := func(i int) string { return "127.0.0.1:" + ports[i] }
	outputs := make([]*syncBuf, 3)
	for i := 0; i < 3; i++ {
		var peers []string
		for j := 0; j < 3; j++ {
			if j != i {
				peers = append(peers, fmt.Sprintf("%d=%s", j, addr(j)))
			}
		}
		cmd := exec.Command(filepath.Join(builtDir, "dprnode"),
			"-graph", graph, "-k", "3", "-index", fmt.Sprint(i),
			"-listen", addr(i), "-peers", strings.Join(peers, ","))
		sb := &syncBuf{}
		cmd.Stdout = sb
		cmd.Stderr = sb
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		outputs[i] = sb
		defer func() {
			cmd.Process.Signal(os.Interrupt)
			cmd.Wait()
		}()
	}
	// Each node reports status every 5 s; wait for the first reports.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ready := 0
		for i := range outputs {
			out := outputs[i].String()
			if strings.Contains(out, "loops=") && !strings.Contains(out, "loops=0 ") {
				ready++
			}
		}
		if ready == 3 {
			break
		}
		if time.Now().After(deadline) {
			for i := range outputs {
				t.Logf("node %d output:\n%s", i, outputs[i].String())
			}
			t.Fatal("nodes did not report progress in time")
		}
		time.Sleep(200 * time.Millisecond)
	}
	for i := range outputs {
		out := outputs[i].String()
		if !strings.Contains(out, "listening on") {
			t.Fatalf("node %d never listened:\n%s", i, out)
		}
	}
}
