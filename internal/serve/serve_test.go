package serve_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/search"
	"p2prank/internal/serve"
	"p2prank/internal/telemetry"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

type fixture struct {
	g      *webgraph.Graph
	ranks  vecmath.Vec
	ov     overlay.Network
	assign *partition.Assignment
	store  *serve.Store
	fe     *serve.Frontend
	text   search.Config
}

// newFixture ranks a deterministic crawl, shards it over k rankers,
// publishes every shard's rank slice as a version-1-per-shard
// snapshot, and builds the query frontend on top.
func newFixture(t testing.TB, pages, k, cacheEntries int) *fixture {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = 3
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]nodeid.ID, k)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, 1)
	if err != nil {
		t.Fatal(err)
	}
	store, err := serve.NewStore(k)
	if err != nil {
		t.Fatal(err)
	}
	publishAll(t, store, assign, res.Ranks, 1)
	text := search.DefaultConfig()
	text.Vocabulary = 500
	text.TermsPerPage = 8
	fe, err := serve.NewFrontend(g, ov, assign, store, serve.Config{Text: text, CacheEntries: cacheEntries})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, ranks: res.Ranks, ov: ov, assign: assign, store: store, fe: fe, text: text}
}

// publishAll pushes each shard's local slice of the global rank vector
// into the store at the given round.
func publishAll(t testing.TB, store *serve.Store, assign *partition.Assignment, ranks vecmath.Vec, round int64) {
	t.Helper()
	for s := 0; s < assign.K; s++ {
		local := make([]float64, len(assign.Pages[s]))
		for i, p := range assign.Pages[s] {
			local[i] = ranks[p]
		}
		if _, err := store.Publish(s, round, local); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFrontendMatchesStaticIndex is the distributed-top-k correctness
// anchor: with every shard publishing the same rank vector the static
// index was built from, the merged per-shard partials must equal the
// static index's global answer, ties included.
func TestFrontendMatchesStaticIndex(t *testing.T) {
	f := newFixture(t, 1500, 8, -1)
	ix, err := search.Build(f.g, f.ranks, f.ov, f.assign, f.text)
	if err != nil {
		t.Fatal(err)
	}
	q := f.fe.NewQuerier()
	var got, want search.Response
	queries := [][]int32{{0}, {1, 2}, {0, 1, 2}, {5, 17}, {480, 481, 482}, {3}}
	for _, terms := range queries {
		req := search.Request{Terms: terms, K: 10, From: 0}
		if err := q.Serve(req, &got); err != nil {
			t.Fatalf("query %v: %v", terms, err)
		}
		if err := ix.Serve(req, &want); err != nil {
			t.Fatalf("static query %v: %v", terms, err)
		}
		if len(got.Postings) != len(want.Postings) {
			t.Fatalf("query %v: %d results, static index %d", terms, len(got.Postings), len(want.Postings))
		}
		for i := range got.Postings {
			if got.Postings[i] != want.Postings[i] {
				t.Fatalf("query %v result %d: %+v, static %+v", terms, i, got.Postings[i], want.Postings[i])
			}
		}
	}
}

func TestServeVersionAndStaleness(t *testing.T) {
	f := newFixture(t, 800, 8, -1)
	q := f.fe.NewQuerier()
	var resp search.Response
	req := search.Request{Terms: []int32{0}, K: 5}
	if err := q.Serve(req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version < 1 || resp.Version > int64(f.store.NumShards()) {
		t.Fatalf("initial version %d outside first publish wave", resp.Version)
	}
	if resp.Staleness != 0 {
		t.Fatalf("fresh snapshots served with staleness %d", resp.Staleness)
	}
	// Three committed-but-unpublished rounds on every shard: any
	// consulted shard now reports 3 rounds behind.
	for s := 0; s < f.store.NumShards(); s++ {
		for i := 0; i < 3; i++ {
			f.store.Advance(s)
		}
	}
	if err := q.Serve(req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Staleness != 3 {
		t.Fatalf("staleness = %d after 3 unpublished rounds, want 3", resp.Staleness)
	}
	// Republishing resets staleness and advances every version.
	before := resp.Version
	publishAll(t, f.store, f.assign, f.ranks, 4)
	if err := q.Serve(req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Staleness != 0 {
		t.Fatalf("staleness = %d after republish, want 0", resp.Staleness)
	}
	if resp.Version <= before {
		t.Fatalf("version %d did not advance past %d after republish", resp.Version, before)
	}
	// MinVersion beyond the store is a typed staleness error;
	// MinVersion at the served version succeeds.
	req.MinVersion = f.store.Version() + 1
	if err := q.Serve(req, &resp); !errors.Is(err, search.ErrStaleIndex) {
		t.Fatalf("future MinVersion: err = %v, want ErrStaleIndex", err)
	}
	req.MinVersion = resp.Version
	if err := q.Serve(req, &resp); err != nil {
		t.Fatalf("satisfiable MinVersion rejected: %v", err)
	}
}

func TestServeUnpublishedStoreIsStale(t *testing.T) {
	f := newFixture(t, 500, 4, -1)
	empty, err := serve.NewStore(4)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := serve.NewFrontend(f.g, f.ov, f.assign, empty, serve.Config{Text: f.text, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	var resp search.Response
	err = fe.NewQuerier().Serve(search.Request{Terms: []int32{0}, K: 3}, &resp)
	if !errors.Is(err, search.ErrStaleIndex) {
		t.Fatalf("query before any publish: err = %v, want ErrStaleIndex", err)
	}
}

func TestServeValidation(t *testing.T) {
	f := newFixture(t, 300, 4, -1)
	q := f.fe.NewQuerier()
	var resp search.Response
	if err := q.Serve(search.Request{K: 3}, &resp); err == nil {
		t.Error("empty query accepted")
	}
	if err := q.Serve(search.Request{Terms: []int32{0}}, &resp); err == nil {
		t.Error("k=0 accepted")
	}
	if err := q.Serve(search.Request{Terms: []int32{9999}, K: 3}, &resp); !errors.Is(err, search.ErrUnknownTerm) {
		t.Errorf("out-of-vocabulary term: err = %v, want ErrUnknownTerm", err)
	}
}

func TestCacheHitsAndInvalidation(t *testing.T) {
	f := newFixture(t, 800, 8, 64)
	q := f.fe.NewQuerier()
	var first, second search.Response
	req := search.Request{Terms: []int32{0, 1}, K: 10}
	if err := q.Serve(req, &first); err != nil {
		t.Fatal(err)
	}
	if err := q.Serve(req, &second); err != nil {
		t.Fatal(err)
	}
	hits, misses := f.fe.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if len(first.Postings) != len(second.Postings) {
		t.Fatalf("cached response differs: %d vs %d postings", len(first.Postings), len(second.Postings))
	}
	for i := range first.Postings {
		if first.Postings[i] != second.Postings[i] {
			t.Fatalf("cached posting %d: %+v vs %+v", i, first.Postings[i], second.Postings[i])
		}
	}
	if first.Version != second.Version || first.Staleness != second.Staleness || first.Cost != second.Cost {
		t.Fatal("cached response metadata differs from computed one")
	}
	// A publish mints a new store version, so the same query recomputes.
	publishAll(t, f.store, f.assign, f.ranks, 2)
	if err := q.Serve(req, &second); err != nil {
		t.Fatal(err)
	}
	if _, misses2 := f.fe.CacheStats(); misses2 != 2 {
		t.Fatalf("misses = %d after version bump, want 2 (cache must invalidate)", misses2)
	}
	if second.Version <= first.Version {
		t.Fatalf("post-publish version %d not newer than %d", second.Version, first.Version)
	}
}

func TestCacheDisabled(t *testing.T) {
	f := newFixture(t, 300, 4, -1)
	q := f.fe.NewQuerier()
	var resp search.Response
	req := search.Request{Terms: []int32{0}, K: 5}
	for i := 0; i < 3; i++ {
		if err := q.Serve(req, &resp); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := f.fe.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded %d hits / %d misses", hits, misses)
	}
}

// TestPublisherSeam drives the dprcore Checkpointer path: DPRS bytes
// in, published snapshot out, original bytes teed to the next sink.
func TestPublisherSeam(t *testing.T) {
	store, err := serve.NewStore(4)
	if err != nil {
		t.Fatal(err)
	}
	mem := dprcore.NewMemCheckpointer()
	pub := serve.NewPublisher(store, mem)
	scores := []float64{0.5, 0.25, 0.125}
	data := dprcore.EncodeRankSnapshot(nil, 2, 7, scores)
	if err := pub.Save(2, 7, data); err != nil {
		t.Fatal(err)
	}
	snap := store.Snapshot(2)
	if snap == nil || snap.Round != 7 || snap.Version != 1 {
		t.Fatalf("published snapshot = %+v", snap)
	}
	for i, v := range scores {
		if snap.Scores[i] != v {
			t.Fatalf("score[%d] = %v, want %v", i, snap.Scores[i], v)
		}
	}
	if _, round, ok := mem.Load(2); !ok || round != 7 {
		t.Fatalf("tee sink: ok=%v round=%d", ok, round)
	}
	// A snapshot belonging to a different group must be refused.
	if err := pub.Save(1, 7, data); err == nil {
		t.Fatal("group-mismatched snapshot accepted")
	}
	if err := pub.Save(3, 1, []byte("garbage")); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestTrackerStalenessAccounting(t *testing.T) {
	store, err := serve.NewStore(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish(0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	tr := serve.NewTracker(store, nil)
	for round := int64(1); round <= 3; round++ {
		tr.ComputeEnd(0, round, telemetry.ComputeStats{})
	}
	if st := store.Staleness(0); st != 3 {
		t.Fatalf("staleness = %d after 3 rounds, want 3", st)
	}
	if tr.MaxObservedStaleness() != 3 {
		t.Fatalf("max observed = %d, want 3", tr.MaxObservedStaleness())
	}
	if _, err := store.Publish(0, 3, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if st := store.Staleness(0); st != 0 {
		t.Fatalf("staleness = %d after publish, want 0", st)
	}
	if tr.MaxObservedStaleness() != 3 {
		t.Fatal("max observed staleness must be monotone")
	}
	// Rankers beyond the serving tier are ignored, not a panic.
	tr.ComputeEnd(99, 1, telemetry.ComputeStats{})
}

func TestHTTPHandler(t *testing.T) {
	f := newFixture(t, 500, 4, 0)
	srv := httptest.NewServer(serve.NewHandler(f.fe, 5, nil).Mux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/search?terms=0,1&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Version   int64 `json:"version"`
		Staleness int64 `json:"staleness"`
		Postings  []struct {
			Page  int32   `json:"page"`
			Score float64 `json:"score"`
		} `json:"postings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Version < 1 {
		t.Fatalf("served version %d", body.Version)
	}
	if len(body.Postings) == 0 || len(body.Postings) > 3 {
		t.Fatalf("got %d postings for k=3", len(body.Postings))
	}

	if resp, err = http.Get(srv.URL + "/search?terms=abc"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed terms: status = %d, want 400", resp.StatusCode)
	}

	if resp, err = http.Get(srv.URL + "/search?terms=0&minv=999999"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsatisfiable minv: status = %d, want 503", resp.StatusCode)
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := serve.NewStore(0); err == nil {
		t.Error("zero-shard store accepted")
	}
	store, err := serve.NewStore(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish(5, 1, nil); err == nil {
		t.Error("out-of-range publish accepted")
	}
	if v := store.Version(); v != 0 {
		t.Errorf("fresh store at version %d", v)
	}
}
