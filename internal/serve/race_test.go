package serve_test

import (
	"fmt"
	"sync"
	"testing"

	"p2prank/internal/nodeid"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/search"
	"p2prank/internal/serve"
	"p2prank/internal/webgraph"
)

// TestConcurrentPublishQueryNoTornVersion is the snapshot-swap safety
// test (run under -race in make race): a publisher goroutine storms new
// versions into a single-shard store while queriers read. Every publish
// fills the whole score vector with float64(version), so a torn read —
// a query observing half of one snapshot and half of another — would
// surface as a response whose scores disagree with each other or with
// its Version. Versions must also be monotone per querier.
func TestConcurrentPublishQueryNoTornVersion(t *testing.T) {
	const (
		pages     = 400
		publishes = 300
		queriers  = 4
	)
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = 9
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One shard: every page local, every query consults exactly the
	// snapshot under concurrent replacement.
	ov, err := pastry.New([]nodeid.ID{nodeid.Hash("ranker-0")}, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, 1)
	if err != nil {
		t.Fatal(err)
	}
	store, err := serve.NewStore(1)
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, len(assign.Pages[0]))
	publish := func(v int64) {
		for i := range scores {
			scores[i] = float64(v)
		}
		minted, err := store.Publish(0, v, scores)
		if err != nil {
			t.Error(err)
		} else if minted != v {
			t.Errorf("publish minted version %d, want %d", minted, v)
		}
	}
	publish(1)
	text := search.DefaultConfig()
	text.Vocabulary = 200
	text.TermsPerPage = 8
	fe, err := serve.NewFrontend(g, ov, assign, store, serve.Config{Text: text, CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for v := int64(2); v <= publishes; v++ {
			store.Advance(0)
			publish(v)
		}
	}()
	errs := make(chan error, queriers)
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := fe.NewQuerier()
			var resp search.Response
			queries := [][]int32{{0}, {1, 2}, {0, 3}}
			lastVersion := int64(0)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				req := search.Request{Terms: queries[i%len(queries)], K: 8}
				if err := q.Serve(req, &resp); err != nil {
					errs <- fmt.Errorf("querier %d: %v", w, err)
					return
				}
				if resp.Version < lastVersion {
					errs <- fmt.Errorf("querier %d: version went backwards %d -> %d", w, lastVersion, resp.Version)
					return
				}
				lastVersion = resp.Version
				for _, p := range resp.Postings {
					if p.Score != float64(resp.Version) {
						errs <- fmt.Errorf("querier %d: torn read — posting score %v inside version %d", w, p.Score, resp.Version)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := store.Version(); v != publishes {
		t.Fatalf("store ended at version %d, want %d", v, publishes)
	}
}
