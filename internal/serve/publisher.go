package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"p2prank/internal/dprcore"
	"p2prank/internal/telemetry"
)

// Publisher adapts a Store to the dprcore checkpoint seam: install it
// as Params.Checkpoint.Sink and every snapshot a ranker checkpoints is
// also published for serving — the checkpoint cadence becomes the
// serving staleness bound. The DPRS bytes are decoded (header + rank
// vector; the chunk tables don't matter to serving) and republished as
// an immutable ShardSnapshot.
//
// Save copies what it keeps, per the Checkpointer contract, and may be
// called concurrently by different rankers (live peers checkpoint from
// parallel goroutines).
type Publisher struct {
	store *Store
	next  dprcore.Checkpointer

	mu      sync.Mutex
	scratch []float64
}

// NewPublisher wraps store as a Checkpointer. next, when non-nil,
// receives every snapshot afterwards — tee a MemCheckpointer or
// FileCheckpointer through so crash recovery keeps working alongside
// serving.
func NewPublisher(store *Store, next dprcore.Checkpointer) *Publisher {
	return &Publisher{store: store, next: next}
}

// Save implements dprcore.Checkpointer.
func (p *Publisher) Save(ranker int, round int64, data []byte) error {
	p.mu.Lock()
	group, _, ranks, err := dprcore.DecodeSnapshotRanks(data, p.scratch[:0])
	if err != nil {
		p.mu.Unlock()
		return fmt.Errorf("serve: publish ranker %d: %w", ranker, err)
	}
	p.scratch = ranks
	if group != ranker {
		p.mu.Unlock()
		return fmt.Errorf("serve: ranker %d checkpointed a snapshot of group %d", ranker, group)
	}
	_, err = p.store.Publish(ranker, round, ranks)
	p.mu.Unlock()
	if err != nil {
		return err
	}
	if p.next != nil {
		return p.next.Save(ranker, round, data)
	}
	return nil
}

// Tracker drives the Store's staleness accounting from the telemetry
// seam: install it as Params.Observer and every committed round ticks
// the ranker's shard one round staler, until the next publish resets
// it. All hooks forward to Next, so a collector can ride along.
type Tracker struct {
	store *Store
	next  telemetry.Observer

	maxStale atomic.Int64
}

// NewTracker wraps store as an Observer, forwarding every hook to next
// (nil for none).
func NewTracker(store *Store, next telemetry.Observer) *Tracker {
	return &Tracker{store: store, next: next}
}

// MaxObservedStaleness returns the largest staleness any shard reached
// at any point during the run — the monotone bound the churn tests
// assert against the checkpoint cadence.
func (t *Tracker) MaxObservedStaleness() int64 { return t.maxStale.Load() }

// SetClock forwards the runtime clock to the wrapped collector.
func (t *Tracker) SetClock(c telemetry.Clock) {
	if cs, ok := t.next.(telemetry.ClockSetter); ok {
		cs.SetClock(c)
	}
}

// SetHops forwards the hop-attribution function to the wrapped
// collector.
func (t *Tracker) SetHops(h func(src, dst int) int) {
	if hs, ok := t.next.(telemetry.HopsSetter); ok {
		hs.SetHops(h)
	}
}

// ComputeStart implements telemetry.Observer.
func (t *Tracker) ComputeStart(ranker int, round int64) {
	if t.next != nil {
		t.next.ComputeStart(ranker, round)
	}
}

// ComputeEnd implements telemetry.Observer: the commit that follows
// this compute phase makes the snapshot one round staler.
func (t *Tracker) ComputeEnd(ranker int, round int64, s telemetry.ComputeStats) {
	ticks := t.store.Advance(ranker)
	for {
		old := t.maxStale.Load()
		if ticks <= old || t.maxStale.CompareAndSwap(old, ticks) {
			break
		}
	}
	if t.next != nil {
		t.next.ComputeEnd(ranker, round, s)
	}
}

// ChunkSent implements telemetry.Observer.
func (t *Tracker) ChunkSent(ranker int, c telemetry.ChunkStats) {
	if t.next != nil {
		t.next.ChunkSent(ranker, c)
	}
}

// FaultInjected implements telemetry.Observer.
func (t *Tracker) FaultInjected(ranker int, kind telemetry.FaultKind) {
	if t.next != nil {
		t.next.FaultInjected(ranker, kind)
	}
}

// ChunkRetried implements telemetry.Observer.
func (t *Tracker) ChunkRetried(ranker int, dst int, attempt int) {
	if t.next != nil {
		t.next.ChunkRetried(ranker, dst, attempt)
	}
}

// AckReceived implements telemetry.Observer.
func (t *Tracker) AckReceived(ranker int, dst int, round int64) {
	if t.next != nil {
		t.next.AckReceived(ranker, dst, round)
	}
}

// Recovered implements telemetry.Observer.
func (t *Tracker) Recovered(ranker int, round int64) {
	if t.next != nil {
		t.next.Recovered(ranker, round)
	}
}

// Milestone implements telemetry.Observer.
func (t *Tracker) Milestone(m telemetry.Milestone) {
	if t.next != nil {
		t.next.Milestone(m)
	}
}
