package serve_test

import (
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/partition"
	"p2prank/internal/search"
	"p2prank/internal/serve"
	"p2prank/internal/webgraph"
)

// TestChurnStalenessMonotoneBounded runs the PR 5 churn machinery with
// a Publisher as the checkpoint sink and a Tracker as the observer:
// two rankers crash mid-run and cold-restart, and the served staleness
// must stay within the checkpoint-cadence bound the whole time.
//
// The bound: in steady state a shard is at most Every rounds behind
// (it republishes on every checkpoint). Across a crash/restart the
// rounds committed since the last pre-crash publish carry over, so the
// worst case is (Every-1) leftover + Every fresh = 2*Every - 1.
func TestChurnStalenessMonotoneBounded(t *testing.T) {
	const (
		k     = 8
		every = 3
	)
	gcfg := webgraph.DefaultGenConfig(2500)
	gcfg.Sites = 40
	gcfg.Seed = 5
	g, err := webgraph.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := serve.NewStore(k)
	if err != nil {
		t.Fatal(err)
	}
	pub := serve.NewPublisher(store, nil)
	tracker := serve.NewTracker(store, nil)
	cfg := engine.Config{
		Params: dprcore.Params{
			Alg: dprcore.DPR1, T1: 0.5, T2: 3,
			Checkpoint: dprcore.CheckpointConfig{Every: every, Sink: pub},
			Observer:   tracker,
		},
		Graph: g, K: k, Seed: 11, SampleEvery: 5, MaxTime: 300, TargetRelErr: 1e-4,
		Churn: []engine.ChurnEvent{
			{Ranker: 2, CrashAt: 20, RestartAt: 35},
			{Ranker: 5, CrashAt: 30, RestartAt: 50},
		},
	}
	res, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("churned run did not converge; rel err %v", res.RelErr)
	}
	bound := int64(2*every - 1)
	if ms := tracker.MaxObservedStaleness(); ms == 0 || ms > bound {
		t.Fatalf("max observed staleness %d outside (0, %d]: staleness not monotone-bounded across crash/restart", ms, bound)
	}
	if ms := store.MaxStaleness(); ms > bound {
		t.Fatalf("final staleness %d exceeds bound %d", ms, bound)
	}
	for s := 0; s < k; s++ {
		if store.Snapshot(s) == nil {
			t.Fatalf("shard %d never published", s)
		}
	}
	if store.Version() < int64(k) {
		t.Fatalf("store version %d after a full run of %d shards", store.Version(), k)
	}

	// The published snapshots are servable end-to-end: rebuild the
	// same deterministic overlay/partition the engine used and query.
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	text := search.DefaultConfig()
	text.Vocabulary = 500
	text.TermsPerPage = 8
	fe, err := serve.NewFrontend(g, ov, assign, store, serve.Config{Text: text})
	if err != nil {
		t.Fatal(err)
	}
	var resp search.Response
	if err := fe.NewQuerier().Serve(search.Request{Terms: []int32{0}, K: 10, MinVersion: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Postings) == 0 {
		t.Fatal("no results served from churned-run snapshots")
	}
	if resp.Staleness > bound {
		t.Fatalf("served staleness %d exceeds bound %d", resp.Staleness, bound)
	}
	for i := 1; i < len(resp.Postings); i++ {
		a, b := resp.Postings[i-1], resp.Postings[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Page > b.Page) {
			t.Fatalf("results out of order at %d: %+v then %+v", i, a, b)
		}
	}
}
