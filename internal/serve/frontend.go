package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"p2prank/internal/overlay"
	"p2prank/internal/partition"
	"p2prank/internal/search"
	"p2prank/internal/webgraph"
)

// DefaultCacheEntries bounds the (terms, version) response cache when
// Config.CacheEntries is zero.
const DefaultCacheEntries = 1024

// Config parameterizes the query front end.
type Config struct {
	// Text is the synthetic text model the shard indexes are built
	// from — the same model the static search.Index uses.
	Text search.Config
	// CacheEntries bounds the merged-response cache: 0 means
	// DefaultCacheEntries, negative disables caching.
	CacheEntries int
	// Health, when set, reports per-shard reachability: unreachable
	// shards are skipped (partial merge, coverage reported), slow
	// shards are hedged to the replica snapshot. Nil assumes every
	// shard healthy.
	Health Health
	// Admission bounds accepted load; the zero value admits everything.
	Admission Admission
}

// shardIndex is one shard's inverted index: the terms present on the
// shard's pages, CSR-packed posting lists of ascending local page
// indices, and the local→global page mapping. Scores are NOT stored
// here — they come from the Store's current snapshot at query time,
// which is what makes serving versioned.
type shardIndex struct {
	// pages maps local index → global page id (the group's Pages
	// order, which is also the order snapshot Scores are indexed in).
	pages []int32
	// terms present on this shard, ascending.
	terms []int32
	// off[i]:off[i+1] brackets terms[i]'s locals; len = len(terms)+1.
	off []int32
	// locals are ascending local page indices per term.
	locals []int32
}

// postingsOf returns the shard-local posting range of term t, or an
// empty slice if the shard has no pages containing t.
//
//p2plint:hotpath
func (sh *shardIndex) postingsOf(t int32) []int32 {
	lo, hi := 0, len(sh.terms)
	for lo < hi {
		mid := (lo + hi) / 2
		if sh.terms[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(sh.terms) || sh.terms[lo] != t {
		return nil
	}
	return sh.locals[sh.off[lo]:sh.off[lo+1]]
}

// Frontend is the distributed-top-k query tier: it knows which shards
// hold which terms, fans a query out to the shards that can match it,
// scores each shard's local intersection against that shard's current
// snapshot, and merges the partials with a bounded heap. Build it
// once; serve queries through per-goroutine Queriers.
type Frontend struct {
	text  search.Config
	ov    overlay.Network
	store *Store

	shards []shardIndex
	// termShards[t] lists the shards holding at least one page with
	// term t, ascending — the query planner's fan-out map.
	termShards [][]int32

	cache *queryCache

	health Health
	adm    Admission
	// overloadErr is the prebuilt shed error, so refusing a query under
	// overload allocates nothing either.
	overloadErr error

	inflight atomic.Int64
	shed     atomic.Int64
	hedged   atomic.Int64
	degraded atomic.Int64

	// routeMu serializes lazy overlay route lookups: queriers memoize
	// hop counts per (origin, shard) and only route on cold entries.
	routeMu sync.Mutex
}

// NewFrontend builds the shard indexes from the crawl, the page
// partition, and the text model. The store provides scores at query
// time; assign must cover the graph and match the store's shard count.
func NewFrontend(g webgraph.Store, ov overlay.Network, assign *partition.Assignment, store *Store, cfg Config) (*Frontend, error) {
	text, err := cfg.Text.WithDefaults()
	if err != nil {
		return nil, err
	}
	if assign == nil {
		return nil, fmt.Errorf("serve: frontend needs a page assignment")
	}
	if len(assign.GroupOf) != g.NumPages() {
		return nil, fmt.Errorf("serve: assignment covers %d pages, want %d", len(assign.GroupOf), g.NumPages())
	}
	if assign.K != store.NumShards() {
		return nil, fmt.Errorf("serve: assignment has %d shards, store %d", assign.K, store.NumShards())
	}
	f := &Frontend{
		text:       text,
		ov:         ov,
		store:      store,
		shards:     make([]shardIndex, assign.K),
		termShards: make([][]int32, text.Vocabulary),
	}
	for s := range f.shards {
		f.shards[s].pages = assign.Pages[s]
	}
	// Gather (term, local) pairs per shard, then sort and CSR-pack.
	type pair struct{ term, local int32 }
	perShard := make([][]pair, assign.K)
	for p := 0; p < g.NumPages(); p++ {
		terms, err := search.TermsOf(g, int32(p), text)
		if err != nil {
			return nil, err
		}
		s := assign.GroupOf[p]
		for _, t := range terms {
			perShard[s] = append(perShard[s], pair{term: t, local: assign.LocalIdx[p]})
		}
	}
	for s := range perShard {
		ps := perShard[s]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].term != ps[j].term {
				return ps[i].term < ps[j].term
			}
			return ps[i].local < ps[j].local
		})
		sh := &f.shards[s]
		sh.locals = make([]int32, len(ps))
		for i, pr := range ps {
			sh.locals[i] = pr.local
			if i == 0 || pr.term != ps[i-1].term {
				sh.terms = append(sh.terms, pr.term)
				sh.off = append(sh.off, int32(i))
			}
		}
		sh.off = append(sh.off, int32(len(ps)))
		for _, t := range sh.terms {
			f.termShards[t] = append(f.termShards[t], int32(s))
		}
	}
	if cfg.CacheEntries >= 0 {
		n := cfg.CacheEntries
		if n == 0 {
			n = DefaultCacheEntries
		}
		f.cache = newQueryCache(n)
	}
	if err := cfg.Admission.validate(); err != nil {
		return nil, err
	}
	f.health = cfg.Health
	f.adm = cfg.Admission
	if f.adm.RetryAfterSeconds == 0 {
		f.adm.RetryAfterSeconds = 1
	}
	f.overloadErr = &search.OverloadError{RetryAfter: f.adm.RetryAfterSeconds}
	return f, nil
}

// Store returns the snapshot store queries score against.
func (f *Frontend) Store() *Store { return f.store }

// CacheStats returns cumulative cache hits and misses (zero when
// caching is disabled).
func (f *Frontend) CacheStats() (hits, misses int64) {
	if f.cache == nil {
		return 0, 0
	}
	return f.cache.stats()
}

// DegradeStats are the frontend's cumulative robustness counters.
type DegradeStats struct {
	// Shed is how many queries admission control refused.
	Shed int64
	// Hedged is how many shard reads fell back to the replica snapshot.
	Hedged int64
	// Degraded is how many queries were answered with partial coverage.
	Degraded int64
}

// DegradeStats returns the robustness counters.
func (f *Frontend) DegradeStats() DegradeStats {
	return DegradeStats{
		Shed:     f.shed.Load(),
		Hedged:   f.hedged.Load(),
		Degraded: f.degraded.Load(),
	}
}

// reachableStaleness is the admission controller's staleness signal:
// the worst rounds-behind over the shards the fan-out can still reach.
// Unreachable shards are excluded — their gap is lost coverage, not a
// reason to refuse the queries the healthy side can answer.
//
//p2plint:hotpath
func (f *Frontend) reachableStaleness() int64 {
	var max int64
	for i := range f.shards {
		if f.health != nil && f.health.ShardState(i) == ShardUnreachable {
			continue
		}
		if t := f.store.Staleness(i); t > max {
			max = t
		}
	}
	return max
}

// Querier is a per-goroutine handle on the Frontend: it owns the
// scratch buffers (candidate sets, intersection buffers, the merge
// heap, hop memos) that make the steady-state read path allocation
// free. A Querier must not be shared between goroutines; the Frontend
// and Store it reads are safe for any number of concurrent Queriers.
type Querier struct {
	f    *Frontend
	heap topK
	cand []int32
	candB []int32
	inter []int32
	interB []int32
	// hopRows memoizes overlay hop counts per query origin: one dense
	// per-shard row per distinct Request.From, -1 = not routed yet.
	hopRows map[int][]int32
}

// NewQuerier creates an independent query handle.
func (f *Frontend) NewQuerier() *Querier {
	return &Querier{f: f, hopRows: make(map[int][]int32)}
}

// Serve implements search.Server: distributed conjunctive top-k over
// the current snapshots. The response's Version is the oldest snapshot
// version consulted, its Staleness the worst rounds-behind over the
// consulted shards, and its Cost the overlay lookup hops from
// req.From to each consulted shard plus one response message each.
// Results go into resp.Postings[:0]; with a warm Querier and a reused
// Response the steady-state path performs zero allocations.
//
// Degraded mode (Config.Health set): unreachable shards are skipped
// and the lost coverage reported in resp.Coverage/Degraded instead of
// failing the query; slow shards are hedged to the replica snapshot
// with the extra rounds-behind folded into resp.Staleness. Admission
// (Config.Admission) sheds with ErrOverloaded before any per-query
// work. Both paths stay allocation free.
//
//p2plint:hotpath
func (q *Querier) Serve(req search.Request, resp *search.Response) error {
	f := q.f
	resp.Postings = resp.Postings[:0]
	resp.Version = 0
	resp.Staleness = 0
	resp.Cost = search.Cost{}
	resp.Coverage = 1
	resp.Degraded = false
	resp.Hedged = 0
	if err := req.Validate(f.text.Vocabulary); err != nil {
		return err
	}
	if f.adm.enabled() {
		if f.adm.MaxInflight > 0 {
			if n := f.inflight.Add(1); n > f.adm.MaxInflight {
				f.inflight.Add(-1)
				f.shed.Add(1)
				return f.overloadErr
			}
			defer f.inflight.Add(-1)
		}
		if f.adm.StalenessBound > 0 && f.reachableStaleness() > f.adm.StalenessBound {
			f.shed.Add(1)
			return f.overloadErr
		}
	}
	storeV := f.store.Version()
	if req.MinVersion > storeV {
		return fmt.Errorf("%w: store at version %d, want >= %d", search.ErrStaleIndex, storeV, req.MinVersion)
	}
	if f.cache != nil && f.cache.get(req.Terms, req.K, req.From, req.MinVersion, storeV, resp) {
		return nil
	}

	cand := q.planShards(req.Terms)
	q.heap.reset(req.K)
	minVersion := int64(0)
	maxStale := int64(0)
	planned, missed := 0, 0
	for _, s := range cand {
		planned++
		state := ShardHealthy
		if f.health != nil {
			state = f.health.ShardState(int(s))
		}
		if state == ShardUnreachable {
			missed++
			continue
		}
		snap := f.store.Snapshot(int(s))
		if snap == nil {
			if f.health != nil {
				// Degraded mode treats a never-published shard like an
				// unreachable one: lost coverage, not a failed query.
				missed++
				continue
			}
			return fmt.Errorf("%w: shard %d has published no snapshot", search.ErrStaleIndex, s)
		}
		stale := f.store.Staleness(int(s))
		if state == ShardSlow {
			// The primary read would miss its deadline: hedge to the
			// replica snapshot. One publish older — the gap between the
			// two snapshots' rounds is real staleness and is accounted.
			if prev := f.store.Replica(int(s)); prev != nil {
				stale += snap.Round - prev.Round
				snap = prev
			}
			resp.Hedged++
		}
		if snap.Version < req.MinVersion {
			return fmt.Errorf("%w: shard %d at version %d, want >= %d", search.ErrStaleIndex, s, snap.Version, req.MinVersion)
		}
		if minVersion == 0 || snap.Version < minVersion {
			minVersion = snap.Version
		}
		if stale > maxStale {
			maxStale = stale
		}
		q.scanShard(s, snap, req.Terms)
		h, err := q.hops(req.From, s)
		if err != nil {
			return err
		}
		resp.Cost.LookupHops += h
		resp.Cost.Responses++
	}
	if missed > 0 {
		if missed == planned {
			// Nothing answered — there is no partial result to serve.
			return fmt.Errorf("%w: all %d planned shards unreachable or unpublished", search.ErrStaleIndex, planned)
		}
		resp.Coverage = float64(planned-missed) / float64(planned)
		resp.Degraded = true
		f.degraded.Add(1)
	}
	if resp.Hedged > 0 {
		f.hedged.Add(int64(resp.Hedged))
	}
	if minVersion == 0 {
		// No shard can match the conjunction: the answer is empty at
		// the store's current version.
		minVersion = storeV
	}
	resp.Version = minVersion
	resp.Staleness = maxStale
	resp.Postings = q.heap.drain(resp.Postings)
	if f.cache != nil && !resp.Degraded && resp.Hedged == 0 {
		// Degraded and hedged answers are never cached: the cache key is
		// (query, store version), and under faults the same version no
		// longer implies the same response.
		f.cache.put(req.Terms, req.K, req.From, storeV, resp)
	}
	return nil
}

// planShards intersects the per-term shard lists (smallest first) into
// the set of shards that hold at least one page with EVERY query term
// — only those can contribute to a conjunctive match.
//
//p2plint:hotpath
func (q *Querier) planShards(terms []int32) []int32 {
	f := q.f
	// Start from the rarest term's shard list.
	best := 0
	for i := 1; i < len(terms); i++ {
		if len(f.termShards[terms[i]]) < len(f.termShards[terms[best]]) {
			best = i
		}
	}
	cur := f.termShards[terms[best]]
	if len(terms) == 1 {
		return cur
	}
	// Double-buffered progressive intersection: cur always lives in
	// the buffer we are NOT about to write.
	a, b := q.cand, q.candB
	for i, t := range terms {
		if i == best {
			continue
		}
		a = intersect32(a[:0], cur, f.termShards[t])
		cur = a
		a, b = b, a
		if len(cur) == 0 {
			break
		}
	}
	q.cand, q.candB = a, b
	return cur
}

// intersect32 merges two ascending lists into dst (append semantics).
//
//p2plint:hotpath
func intersect32(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// scanShard intersects the query terms' posting lists within one shard
// and offers every surviving page, scored from the shard's snapshot,
// to the merge heap.
//
//p2plint:hotpath
func (q *Querier) scanShard(s int32, snap *ShardSnapshot, terms []int32) {
	sh := &q.f.shards[s]
	cur := sh.postingsOf(terms[0])
	for i := 1; i < len(terms) && len(cur) > 0; i++ {
		next := sh.postingsOf(terms[i])
		dst := q.inter[:0]
		dst = intersect32(dst, cur, next)
		q.inter, q.interB = q.interB, dst
		cur = dst
	}
	for _, local := range cur {
		q.heap.consider(search.Posting{Page: sh.pages[local], Score: snap.Scores[local]})
	}
}

// hops returns the memoized overlay hop count from the query origin to
// a shard, routing on first use.
//
//p2plint:hotpath
func (q *Querier) hops(from int, shard int32) (int, error) {
	row := q.hopRows[from]
	if row == nil {
		//p2plint:allow hotalloc -- one hop row per query origin, reused across all queries
		row = make([]int32, len(q.f.shards))
		for i := range row {
			row[i] = -1
		}
		q.hopRows[from] = row
	}
	if h := row[shard]; h >= 0 {
		return int(h), nil
	}
	q.f.routeMu.Lock()
	h, err := overlay.Hops(q.f.ov, from, q.f.ov.NodeID(int(shard)))
	q.f.routeMu.Unlock()
	if err != nil {
		return 0, err
	}
	row[shard] = int32(h)
	return h, nil
}
