package serve

import "p2prank/internal/search"

// topK is the bounded merge heap of the distributed read path: shards
// offer their partial results and the heap keeps the k best, evicting
// the current worst in O(log k). It is a min-heap on result quality —
// items[0] is the worst kept posting — ordered by (score descending,
// page ascending) like every posting list in the system, so merged
// results tie-break identically to the static index.
type topK struct {
	items []search.Posting
	k     int
}

// worse reports whether a ranks strictly below b.
//
//p2plint:hotpath
func worse(a, b search.Posting) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Page > b.Page
}

// reset prepares the heap for a query keeping at most k results.
//
//p2plint:hotpath
func (h *topK) reset(k int) {
	h.k = k
	if cap(h.items) < k {
		//p2plint:allow hotalloc -- heap grows to the querier's k high-water mark, then reuses
		h.items = make([]search.Posting, 0, k)
	}
	h.items = h.items[:0]
}

// consider offers one posting, keeping it only if it beats the current
// worst of a full heap.
//
//p2plint:hotpath
func (h *topK) consider(p search.Posting) {
	if len(h.items) < h.k {
		h.items = append(h.items, p)
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(h.items[i], h.items[parent]) {
				break
			}
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
		}
		return
	}
	if !worse(h.items[0], p) {
		return
	}
	h.items[0] = p
	h.siftDown(0, len(h.items))
}

//p2plint:hotpath
func (h *topK) siftDown(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && worse(h.items[l], h.items[min]) {
			min = l
		}
		if r < n && worse(h.items[r], h.items[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}

// drain empties the heap into dst best-first (append semantics) and
// returns the extended slice. The heap is left empty.
//
//p2plint:hotpath
func (h *topK) drain(dst []search.Posting) []search.Posting {
	start := len(dst)
	n := len(h.items)
	for n > 0 {
		dst = append(dst, h.items[0])
		n--
		h.items[0] = h.items[n]
		h.items = h.items[:n]
		h.siftDown(0, n)
	}
	// Pops come worst-first; reverse the appended run to best-first.
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}
