package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"p2prank/internal/search"
)

// Handler serves the query API over HTTP:
//
//	GET /search?terms=3,17&k=10&from=0&minv=0
//
// Responses are JSON. Staleness violations map to 503 (retry once the
// rankers publish), malformed queries to 400. A sync.Pool of Queriers
// keeps concurrent requests off each other's scratch buffers.
type Handler struct {
	fe       *Frontend
	defaultK int
	tel      Telemetry
	pool     sync.Pool
}

type querierState struct {
	q    *Querier
	resp search.Response
}

// NewHandler builds the HTTP front end. defaultK bounds results when
// the request omits k; tel (optional) receives per-query latency and
// staleness.
func NewHandler(fe *Frontend, defaultK int, tel Telemetry) *Handler {
	if defaultK <= 0 {
		defaultK = 10
	}
	h := &Handler{fe: fe, defaultK: defaultK, tel: tel}
	h.pool.New = func() any { return &querierState{q: fe.NewQuerier()} }
	return h
}

// Mux returns a mux with the handler mounted at /search.
func (h *Handler) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/search", h)
	return mux
}

type httpPosting struct {
	Page  int32   `json:"page"`
	Score float64 `json:"score"`
}

type httpResponse struct {
	Version   int64         `json:"version"`
	Staleness int64         `json:"staleness"`
	Cost      search.Cost   `json:"cost"`
	Coverage  float64       `json:"coverage"`
	Degraded  bool          `json:"degraded"`
	Hedged    int           `json:"hedged,omitempty"`
	Postings  []httpPosting `json:"postings"`
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	req, err := parseQuery(r, h.defaultK)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st := h.pool.Get().(*querierState)
	defer h.pool.Put(st)
	start := time.Now()
	serveErr := st.q.Serve(req, &st.resp)
	if h.tel != nil && serveErr == nil {
		h.tel.QueryServed(time.Since(start).Seconds(), st.resp.Staleness)
	}
	if serveErr != nil {
		switch {
		case errors.Is(serveErr, search.ErrOverloaded):
			// Shed, not failed: tell the client when to come back. The
			// header is whole seconds per RFC 9110, minimum 1.
			var oe *search.OverloadError
			retry := 1.0
			if errors.As(serveErr, &oe) && oe.RetryAfter > retry {
				retry = oe.RetryAfter
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry))))
			http.Error(w, serveErr.Error(), http.StatusTooManyRequests)
		case errors.Is(serveErr, search.ErrStaleIndex):
			http.Error(w, serveErr.Error(), http.StatusServiceUnavailable)
		case errors.Is(serveErr, search.ErrUnknownTerm):
			http.Error(w, serveErr.Error(), http.StatusBadRequest)
		default:
			http.Error(w, serveErr.Error(), http.StatusBadRequest)
		}
		return
	}
	out := httpResponse{
		Version:   st.resp.Version,
		Staleness: st.resp.Staleness,
		Cost:      st.resp.Cost,
		Coverage:  st.resp.Coverage,
		Degraded:  st.resp.Degraded,
		Hedged:    st.resp.Hedged,
		Postings:  make([]httpPosting, len(st.resp.Postings)),
	}
	for i, p := range st.resp.Postings {
		out.Postings[i] = httpPosting{Page: p.Page, Score: p.Score}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return // client went away; nothing to salvage
	}
}

func parseQuery(r *http.Request, defaultK int) (search.Request, error) {
	q := r.URL.Query()
	rawTerms := q.Get("terms")
	if rawTerms == "" {
		return search.Request{}, fmt.Errorf("serve: missing terms parameter")
	}
	var req search.Request
	for _, s := range strings.Split(rawTerms, ",") {
		t, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
		if err != nil {
			return search.Request{}, fmt.Errorf("serve: bad term %q: %w", s, err)
		}
		req.Terms = append(req.Terms, int32(t))
	}
	req.K = defaultK
	if raw := q.Get("k"); raw != "" {
		k, err := strconv.Atoi(raw)
		if err != nil {
			return search.Request{}, fmt.Errorf("serve: bad k %q: %w", raw, err)
		}
		req.K = k
	}
	if raw := q.Get("from"); raw != "" {
		from, err := strconv.Atoi(raw)
		if err != nil {
			return search.Request{}, fmt.Errorf("serve: bad from %q: %w", raw, err)
		}
		req.From = from
	}
	if raw := q.Get("minv"); raw != "" {
		mv, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return search.Request{}, fmt.Errorf("serve: bad minv %q: %w", raw, err)
		}
		req.MinVersion = mv
	}
	return req, nil
}
