package serve_test

import (
	"errors"
	"sync"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/search"
	"p2prank/internal/serve"
)

// fakeHealth is a hand-set Health: shards default healthy.
type fakeHealth struct {
	mu    sync.Mutex
	state map[int]serve.ShardState
}

func (h *fakeHealth) set(shard int, s serve.ShardState) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == nil {
		h.state = make(map[int]serve.ShardState)
	}
	h.state[shard] = s
}

func (h *fakeHealth) ShardState(shard int) serve.ShardState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state[shard]
}

// degradedFrontend builds a second frontend over an existing fixture's
// store with degraded-serving knobs on.
func degradedFrontend(t *testing.T, f *fixture, cacheEntries int, h serve.Health, adm serve.Admission) *serve.Frontend {
	t.Helper()
	fe, err := serve.NewFrontend(f.g, f.ov, f.assign, f.store, serve.Config{
		Text: f.text, CacheEntries: cacheEntries, Health: h, Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fe
}

// wideQuery returns a single-term request that fans out to at least two
// shards, plus the shards it plans.
func wideQuery(t *testing.T, f *fixture, fe *serve.Frontend) (search.Request, []int) {
	t.Helper()
	q := fe.NewQuerier()
	var resp search.Response
	// K is uncapped relative to any term's match count, so dropping a
	// shard strictly shrinks the result.
	for term := int32(0); term < 100; term++ {
		req := search.Request{Terms: []int32{term}, K: 2000}
		if err := q.Serve(req, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Cost.Responses >= 3 {
			shards := make(map[int32]bool)
			for _, p := range resp.Postings {
				shards[f.assign.GroupOf[p.Page]] = true
			}
			var list []int
			for s := range shards {
				list = append(list, int(s))
			}
			if len(list) >= 2 {
				return req, list
			}
		}
	}
	t.Fatal("no term fans out to 2+ shards")
	return search.Request{}, nil
}

func TestDegradedPartialCoverage(t *testing.T) {
	f := newFixture(t, 1500, 8, -1)
	h := &fakeHealth{}
	fe := degradedFrontend(t, f, -1, h, serve.Admission{})
	req, shards := wideQuery(t, f, fe)

	q := fe.NewQuerier()
	var full search.Response
	if err := q.Serve(req, &full); err != nil {
		t.Fatal(err)
	}
	if full.Coverage != 1 || full.Degraded {
		t.Fatalf("healthy fan-out reported coverage %v degraded %v", full.Coverage, full.Degraded)
	}

	// Partition one contributing shard away: the query must still
	// answer, minus that shard's postings, and say so.
	lost := shards[0]
	h.set(lost, serve.ShardUnreachable)
	var part search.Response
	if err := q.Serve(req, &part); err != nil {
		t.Fatalf("partial fan-out errored: %v", err)
	}
	if !part.Degraded || part.Coverage >= 1 || part.Coverage <= 0 {
		t.Fatalf("degraded answer reported coverage %v degraded %v", part.Coverage, part.Degraded)
	}
	if len(part.Postings) >= len(full.Postings) {
		t.Fatalf("lost shard %d but postings grew: %d -> %d", lost, len(full.Postings), len(part.Postings))
	}
	for _, p := range part.Postings {
		if int(f.assign.GroupOf[p.Page]) == lost {
			t.Fatalf("page %d served from unreachable shard %d", p.Page, lost)
		}
	}
	if st := fe.DegradeStats(); st.Degraded != 1 {
		t.Fatalf("degraded counter = %d, want 1", st.Degraded)
	}

	// Heal: full coverage returns.
	h.set(lost, serve.ShardHealthy)
	var healed search.Response
	if err := q.Serve(req, &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Coverage != 1 || healed.Degraded || len(healed.Postings) != len(full.Postings) {
		t.Fatalf("post-heal answer still degraded: coverage %v, %d postings", healed.Coverage, len(healed.Postings))
	}
}

func TestDegradedAllShardsUnreachable(t *testing.T) {
	f := newFixture(t, 800, 4, -1)
	h := &fakeHealth{}
	for s := 0; s < 4; s++ {
		h.set(s, serve.ShardUnreachable)
	}
	fe := degradedFrontend(t, f, -1, h, serve.Admission{})
	q := fe.NewQuerier()
	var resp search.Response
	err := q.Serve(search.Request{Terms: []int32{0}, K: 5}, &resp)
	if !errors.Is(err, search.ErrStaleIndex) {
		t.Fatalf("zero-coverage query returned %v, want ErrStaleIndex", err)
	}
}

func TestHedgedReadServesReplica(t *testing.T) {
	f := newFixture(t, 1500, 8, -1)
	h := &fakeHealth{}
	fe := degradedFrontend(t, f, -1, h, serve.Admission{})
	req, shards := wideQuery(t, f, fe)

	// Second publish at a later round: the fixture's round-1 snapshots
	// become the replicas.
	publishAll(t, f.store, f.assign, f.ranks, 5)
	slow := shards[0]
	if f.store.Replica(slow) == nil {
		t.Fatal("no replica after second publish")
	}
	h.set(slow, serve.ShardSlow)

	q := fe.NewQuerier()
	var resp search.Response
	if err := q.Serve(req, &resp); err != nil {
		t.Fatalf("hedged query errored: %v", err)
	}
	if resp.Hedged != 1 {
		t.Fatalf("hedged = %d, want 1", resp.Hedged)
	}
	if resp.Degraded || resp.Coverage != 1 {
		t.Fatalf("hedged shard counted as lost coverage: %v/%v", resp.Coverage, resp.Degraded)
	}
	// The replica is 4 rounds (5−1) behind its primary; that gap must
	// surface in the staleness the caller sees.
	if resp.Staleness < 4 {
		t.Fatalf("staleness %d hides the replica's round gap", resp.Staleness)
	}
	// And the served version is the replica's (first-publish era), not
	// the second publish's.
	if resp.Version > int64(f.assign.K) {
		t.Fatalf("version %d not from the replica era (first %d publishes)", resp.Version, f.assign.K)
	}
	if st := fe.DegradeStats(); st.Hedged != 1 {
		t.Fatalf("hedged counter = %d, want 1", st.Hedged)
	}
}

// blockGate lets one query park inside the shard loop so a second,
// concurrent query can be observed against the in-flight limit.
type blockGate struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *blockGate) ShardState(int) serve.ShardState {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return serve.ShardHealthy
}

func TestAdmissionShedsOverInflightLimit(t *testing.T) {
	f := newFixture(t, 800, 4, -1)
	gate := &blockGate{entered: make(chan struct{}), release: make(chan struct{})}
	fe := degradedFrontend(t, f, -1, gate, serve.Admission{MaxInflight: 1, RetryAfterSeconds: 2.5})

	req := search.Request{Terms: []int32{0}, K: 5}
	done := make(chan error, 1)
	go func() {
		var resp search.Response
		done <- fe.NewQuerier().Serve(req, &resp)
	}()
	<-gate.entered // first query is now in flight, parked mid-fan-out

	var resp search.Response
	err := fe.NewQuerier().Serve(req, &resp)
	if !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("second query got %v, want ErrOverloaded", err)
	}
	var oe *search.OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter != 2.5 {
		t.Fatalf("shed error carries retry-after %+v, want 2.5s", oe)
	}
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("first query errored: %v", err)
	}
	if st := fe.DegradeStats(); st.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", st.Shed)
	}
	// With the first query drained, admission admits again.
	if err := fe.NewQuerier().Serve(req, &resp); err != nil {
		t.Fatalf("post-drain query shed: %v", err)
	}
}

func TestAdmissionShedsOnStalenessBound(t *testing.T) {
	f := newFixture(t, 800, 4, -1)
	h := &fakeHealth{}
	// Checkpoint cadence Every=2 ⇒ the serving bound is 2·2−1 = 3.
	fe := degradedFrontend(t, f, -1, h, serve.Admission{StalenessBound: 3})
	q := fe.NewQuerier()
	req := search.Request{Terms: []int32{0}, K: 5}
	var resp search.Response

	// At the bound: still admitted.
	for i := 0; i < 3; i++ {
		f.store.Advance(2)
	}
	if err := q.Serve(req, &resp); err != nil {
		t.Fatalf("query at the bound shed: %v", err)
	}
	// Past the bound: shed.
	f.store.Advance(2)
	if err := q.Serve(req, &resp); !errors.Is(err, search.ErrOverloaded) {
		t.Fatalf("query past the bound got %v, want ErrOverloaded", err)
	}
	// The laggard is partitioned away: its staleness is lost coverage,
	// not a reason to refuse queries the healthy side can answer.
	h.set(2, serve.ShardUnreachable)
	if err := q.Serve(req, &resp); err != nil && !errors.Is(err, search.ErrStaleIndex) {
		t.Fatalf("unreachable laggard still sheds: %v", err)
	}
	h.set(2, serve.ShardHealthy)
	// A publish catches the shard up and admission reopens.
	publishAll(t, f.store, f.assign, f.ranks, 9)
	if err := q.Serve(req, &resp); err != nil {
		t.Fatalf("query after catch-up shed: %v", err)
	}
}

// TestCacheHonorsMinVersion is the regression test for the cache bound
// bug: a cached entry whose served version is older than the request's
// MinVersion must not be returned as a hit — the bound is checked
// before the copy-out, and the compute path then reports staleness.
func TestCacheHonorsMinVersion(t *testing.T) {
	f := newFixture(t, 1500, 8, 64)
	q := f.fe.NewQuerier()
	var resp search.Response
	req := search.Request{Terms: []int32{0}, K: 10}
	if err := q.Serve(req, &resp); err != nil {
		t.Fatal(err)
	}
	cachedV := resp.Version
	storeV := f.store.Version()
	if cachedV >= storeV {
		t.Skipf("term 0's oldest consulted version %d not below store version %d", cachedV, storeV)
	}
	hits0, _ := f.fe.CacheStats()

	// Same query, fresher floor: the cached entry violates the bound.
	req.MinVersion = cachedV + 1
	err := q.Serve(req, &resp)
	if !errors.Is(err, search.ErrStaleIndex) {
		t.Fatalf("bound-violating request got %v, want ErrStaleIndex", err)
	}
	if hits, _ := f.fe.CacheStats(); hits != hits0 {
		t.Fatalf("cache served a hit (%d -> %d) for a MinVersion newer than the entry", hits0, hits)
	}

	// The unconstrained query still hits.
	req.MinVersion = 0
	if err := q.Serve(req, &resp); err != nil {
		t.Fatal(err)
	}
	if hits, _ := f.fe.CacheStats(); hits != hits0+1 {
		t.Fatalf("cache lost the entry: hits %d, want %d", hits, hits0+1)
	}
}

func TestDegradedResponsesNotCached(t *testing.T) {
	f := newFixture(t, 1500, 8, 64)
	h := &fakeHealth{}
	fe := degradedFrontend(t, f, 64, h, serve.Admission{})
	// Discover the query on the fixture's own frontend so fe's cache
	// stays cold for the degraded pass.
	req, shards := wideQuery(t, f, f.fe)
	q := fe.NewQuerier()

	h.set(shards[0], serve.ShardUnreachable)
	var resp search.Response
	for i := 0; i < 2; i++ {
		if err := q.Serve(req, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Degraded {
			t.Fatal("expected a degraded answer")
		}
	}
	if hits, _ := fe.CacheStats(); hits != 0 {
		t.Fatalf("degraded answers were cached: %d hits", hits)
	}

	// After the heal the full answer is computed fresh — not replayed
	// from a poisoned entry — and only then becomes cacheable.
	h.set(shards[0], serve.ShardHealthy)
	if err := q.Serve(req, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.Coverage != 1 {
		t.Fatal("post-heal answer replayed degraded state")
	}
	if err := q.Serve(req, &resp); err != nil {
		t.Fatal(err)
	}
	if hits, _ := fe.CacheStats(); hits != 1 {
		t.Fatalf("post-heal full answer not cached: %d hits", hits)
	}
}

func TestLatticeHealthMirrorsFaultConfig(t *testing.T) {
	cfg := dprcore.FaultConfig{
		PartitionFrac: 0.3, PartitionFrom: 2, PartitionTo: 10,
		StraggleFrac: 0.2, StraggleFactor: 4, Seed: 11,
	}
	now := 0.0
	h, err := serve.NewLatticeHealth(cfg, 0, func() float64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	at := 0 // the frontend's node; cfg.PartitionMinority(0) is its side
	var far, straggler int
	for n := 1; n < 256; n++ {
		if far == 0 && cfg.PartitionMinority(n) != cfg.PartitionMinority(at) {
			far = n
		}
		if straggler == 0 && cfg.Straggler(n) && !(cfg.PartitionMinority(n) != cfg.PartitionMinority(at)) {
			straggler = n
		}
	}
	if far == 0 || straggler == 0 {
		t.Fatal("lattice has no far-side or same-side-straggler node in 256")
	}
	if h.ShardState(far) != serve.ShardHealthy {
		t.Fatal("shard unreachable before the window opened")
	}
	now = 5
	if h.ShardState(far) != serve.ShardUnreachable {
		t.Fatal("far-side shard reachable during the partition")
	}
	if got := h.ShardState(straggler); got != serve.ShardSlow {
		t.Fatalf("straggler state %v, want slow", got)
	}
	now = 10
	if h.ShardState(far) != serve.ShardHealthy {
		t.Fatal("shard still unreachable after the heal")
	}

	if _, err := serve.NewLatticeHealth(cfg, 0, nil); err == nil {
		t.Error("nil time source accepted")
	}
	if _, err := serve.NewLatticeHealth(dprcore.FaultConfig{PartitionFrac: 2}, 0, func() float64 { return 0 }); err == nil {
		t.Error("invalid fault config accepted")
	}
}

func TestStoreReplica(t *testing.T) {
	store, err := serve.NewStore(2)
	if err != nil {
		t.Fatal(err)
	}
	if store.Replica(0) != nil {
		t.Fatal("replica before any publish")
	}
	if _, err := store.Publish(0, 1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if store.Replica(0) != nil {
		t.Fatal("replica after a single publish")
	}
	if _, err := store.Publish(0, 3, []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	prev := store.Replica(0)
	if prev == nil || prev.Round != 1 || prev.Version != 1 {
		t.Fatalf("replica = %+v, want the displaced round-1 snapshot", prev)
	}
	if cur := store.Snapshot(0); cur.Round != 3 || cur.Version != 2 {
		t.Fatalf("primary = %+v", cur)
	}
}
