package serve_test

import (
	"fmt"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/nodeid"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/search"
	"p2prank/internal/serve"
	"p2prank/internal/webgraph"
)

func benchFrontend(b *testing.B, shards int) (*serve.Frontend, *serve.Store) {
	b.Helper()
	cfg := webgraph.DefaultGenConfig(shards * 100)
	cfg.Sites = shards * 2
	cfg.Seed = 21
	g, err := webgraph.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]nodeid.ID, shards)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, 1)
	if err != nil {
		b.Fatal(err)
	}
	store, err := serve.NewStore(shards)
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		scores := make([]float64, len(assign.Pages[s]))
		for i, p := range assign.Pages[s] {
			scores[i] = 1.0 / float64(p+1)
		}
		if _, err := store.Publish(s, 1, scores); err != nil {
			b.Fatal(err)
		}
	}
	text := search.DefaultConfig()
	text.Vocabulary = 1000
	text.TermsPerPage = 10
	// Cache disabled: the benchmark measures the full merge path, not
	// cache hits.
	fe, err := serve.NewFrontend(g, ov, assign, store, serve.Config{Text: text, CacheEntries: -1})
	if err != nil {
		b.Fatal(err)
	}
	return fe, store
}

// BenchmarkQueryTopK is the ratchet kernel for the merged read path:
// distributed top-k over 64 shards, cache off, reused Querier and
// Response. Gated at 0 allocs/op.
func BenchmarkQueryTopK(b *testing.B) {
	fe, _ := benchFrontend(b, 64)
	q := fe.NewQuerier()
	queries := []search.Request{
		{Terms: []int32{0}, K: 10},
		{Terms: []int32{1, 2}, K: 10},
		{Terms: []int32{3, 4, 5}, K: 10},
		{Terms: []int32{7, 11}, K: 100},
	}
	var resp search.Response
	for _, req := range queries { // warm scratch to high-water mark
		if err := q.Serve(req, &resp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.Serve(queries[i%len(queries)], &resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotPublish is the ratchet kernel for the write path:
// decode a DPRS checkpoint and swap it into the store.
func BenchmarkSnapshotPublish(b *testing.B) {
	const n = 1000
	store, err := serve.NewStore(1)
	if err != nil {
		b.Fatal(err)
	}
	pub := serve.NewPublisher(store, nil)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = 1.0 / float64(i+1)
	}
	data := dprcore.EncodeRankSnapshot(nil, 0, 1, scores)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Save(0, int64(i+1), data); err != nil {
			b.Fatal(err)
		}
	}
}
