package serve

import (
	"sync"

	"p2prank/internal/search"
)

// queryCache caches merged responses keyed by (terms, k, from, store
// version). Because every publish mints a fresh global version, a hit
// is always as current as recomputing — the version in the key IS the
// invalidation. Entries are bounded: when the map reaches capacity it
// is cleared wholesale (deterministic, no clock-driven LRU), which
// also lazily evicts entries stranded on old versions.
type queryCache struct {
	mu   sync.Mutex
	cap  int
	m    map[uint64]*cacheEntry
	hits, misses int64
}

type cacheEntry struct {
	next *cacheEntry // hash-collision chain

	terms  []int32
	k      int
	from   int
	storeV int64

	postings  []search.Posting
	version   int64
	staleness int64
	cost      search.Cost
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{cap: capacity, m: make(map[uint64]*cacheEntry, capacity)}
}

// cacheKey hashes the full lookup tuple, FNV-1a style.
//
//p2plint:hotpath
func cacheKey(terms []int32, k, from int, storeV int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, t := range terms {
		h ^= uint64(uint32(t))
		h *= prime64
	}
	h ^= uint64(uint32(k))
	h *= prime64
	h ^= uint64(uint32(from))
	h *= prime64
	h ^= uint64(storeV)
	h *= prime64
	return h
}

//p2plint:hotpath
func eqTerms(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get copies a cached response into resp. A hit allocates nothing once
// resp.Postings has capacity. minVersion is the caller's freshness
// floor: an entry whose served version is below it is NOT a hit — the
// bound is checked here, before anything is copied out, so a caller
// demanding fresher ranks than the cached answer falls through to the
// compute path instead of being handed data it explicitly refused.
//
//p2plint:hotpath
func (c *queryCache) get(terms []int32, k, from int, minVersion, storeV int64, resp *search.Response) bool {
	key := cacheKey(terms, k, from, storeV)
	c.mu.Lock()
	for e := c.m[key]; e != nil; e = e.next {
		if e.storeV == storeV && e.k == k && e.from == from && eqTerms(e.terms, terms) {
			if e.version < minVersion {
				break // cached answer too old for this caller
			}
			resp.Postings = append(resp.Postings[:0], e.postings...)
			resp.Version = e.version
			resp.Staleness = e.staleness
			resp.Cost = e.cost
			c.hits++
			c.mu.Unlock()
			return true
		}
	}
	c.misses++
	c.mu.Unlock()
	return false
}

// put stores a computed response. The miss-then-fill allocations are
// amortized across the hits they enable.
//
//p2plint:hotpath
func (c *queryCache) put(terms []int32, k, from int, storeV int64, resp *search.Response) {
	key := cacheKey(terms, k, from, storeV)
	//p2plint:allow hotalloc -- cache fill on miss, amortized across hits
	e := &cacheEntry{
		k:         k,
		from:      from,
		storeV:    storeV,
		version:   resp.Version,
		staleness: resp.Staleness,
		cost:      resp.Cost,
	}
	//p2plint:allow hotalloc -- cache fill on miss, amortized across hits
	e.terms = append([]int32(nil), terms...)
	//p2plint:allow hotalloc -- cache fill on miss, amortized across hits
	e.postings = append([]search.Posting(nil), resp.Postings...)
	c.mu.Lock()
	if len(c.m) >= c.cap {
		clear(c.m)
	}
	e.next = c.m[key]
	c.m[key] = e
	c.mu.Unlock()
}

func (c *queryCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
