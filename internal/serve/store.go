// Package serve is the query-serving tier: rankers publish versioned,
// immutable rank snapshots into a Store, and a query front end answers
// conjunctive top-k searches by merging per-shard partial results over
// the overlay — the read path the ROADMAP's "millions of users" north
// star needs, with served-rank staleness as a first-class quantity.
//
// The serving contract is snapshot-based, not live-vector reads: a
// ranker's in-progress R changes every round, so queries read the last
// published snapshot instead. Publication rides the PR 5 checkpoint
// seam — a Publisher decodes the same DPRS-encoded snapshots the
// Checkpointer interface carries — so the checkpoint cadence IS the
// staleness bound: a shard is never more than Checkpoint.Every
// committed rounds behind what queries see.
package serve

import (
	"fmt"
	"sync/atomic"
)

// Telemetry receives serving-side events. The live collector
// (telemetry.LiveCollector) implements it; nil disables reporting.
type Telemetry interface {
	// QueryServed records one answered query: its latency in seconds
	// and the staleness (rounds behind live) of the served ranks.
	QueryServed(latencySeconds float64, staleness int64)
	// SnapshotPublished records a shard publishing a new snapshot.
	SnapshotPublished(shard int, version, round int64)
}

// ShardSnapshot is one shard's published rank state. Immutable after
// publication: readers hold the pointer, never the slot, so a
// concurrent publish can never tear a version out from under a query.
type ShardSnapshot struct {
	// Shard is the owning ranker/group index.
	Shard int
	// Version is the store-global publish sequence number — strictly
	// monotone across all publishes, so it orders snapshots even when
	// a cold restart resets a ranker's round counter.
	Version int64
	// Round is the committed loop round the scores were taken at.
	Round int64
	// Scores are the shard's local-page-indexed ranks (the group's
	// Pages order). Readers must not modify them.
	Scores []float64
}

type shardSlot struct {
	snap atomic.Pointer[ShardSnapshot]
	// prev is the replica: the snapshot the last publish displaced.
	// Hedged reads fall back to it when the primary misses its
	// deadline — one publish older, but immediately available.
	prev atomic.Pointer[ShardSnapshot]
	// ticks counts committed rounds since the last publish — the
	// shard's current staleness in rounds.
	ticks atomic.Int64
}

// Store holds the newest published snapshot per shard behind atomic
// pointers. Queries on any goroutine read consistent per-shard state
// without locks; publishes to the same shard must be serialized (they
// come from one ranker's commit context), publishes to different
// shards may run concurrently.
type Store struct {
	version atomic.Int64
	shards  []shardSlot
	tel     Telemetry
}

// NewStore builds a store for the given shard count with nothing
// published yet.
func NewStore(shards int) (*Store, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("serve: store needs a positive shard count, got %d", shards)
	}
	return &Store{shards: make([]shardSlot, shards)}, nil
}

// SetTelemetry installs the event sink. Call before concurrent use.
func (s *Store) SetTelemetry(t Telemetry) { s.tel = t }

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Version returns the global publish counter: the version the next
// publish will mint minus nothing — 0 means nothing published yet.
func (s *Store) Version() int64 { return s.version.Load() }

// Publish installs a new snapshot for shard: scores are copied (the
// caller's buffer is typically reused), a fresh global version is
// minted, and the shard's staleness ticks reset to zero. Returns the
// minted version.
func (s *Store) Publish(shard int, round int64, scores []float64) (int64, error) {
	if shard < 0 || shard >= len(s.shards) {
		return 0, fmt.Errorf("serve: publish to shard %d of %d", shard, len(s.shards))
	}
	cp := make([]float64, len(scores))
	copy(cp, scores)
	v := s.version.Add(1)
	slot := &s.shards[shard]
	if old := slot.snap.Load(); old != nil {
		slot.prev.Store(old)
	}
	slot.snap.Store(&ShardSnapshot{Shard: shard, Version: v, Round: round, Scores: cp})
	slot.ticks.Store(0)
	if s.tel != nil {
		s.tel.SnapshotPublished(shard, v, round)
	}
	return v, nil
}

// Snapshot returns shard's newest published snapshot, or nil if the
// shard has never published.
//
//p2plint:hotpath
func (s *Store) Snapshot(shard int) *ShardSnapshot {
	return s.shards[shard].snap.Load()
}

// Replica returns shard's previous published snapshot — the hedged
// read's fallback — or nil before the second publish.
//
//p2plint:hotpath
func (s *Store) Replica(shard int) *ShardSnapshot {
	return s.shards[shard].prev.Load()
}

// Advance records one committed-but-unpublished round for shard and
// returns the shard's new staleness in rounds. Out-of-range shards
// (rankers beyond the serving tier) are ignored.
func (s *Store) Advance(shard int) int64 {
	if shard < 0 || shard >= len(s.shards) {
		return 0
	}
	return s.shards[shard].ticks.Add(1)
}

// Staleness returns how many committed rounds behind the live
// computation shard's published snapshot is.
//
//p2plint:hotpath
func (s *Store) Staleness(shard int) int64 {
	return s.shards[shard].ticks.Load()
}

// MaxStaleness returns the worst per-shard staleness right now.
func (s *Store) MaxStaleness() int64 {
	var max int64
	for i := range s.shards {
		if t := s.shards[i].ticks.Load(); t > max {
			max = t
		}
	}
	return max
}
