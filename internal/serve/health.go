package serve

import (
	"fmt"

	"p2prank/internal/dprcore"
)

// ShardState is a shard's reachability as the query fan-out sees it.
type ShardState uint8

const (
	// ShardHealthy answers from its primary snapshot within deadline.
	ShardHealthy ShardState = iota
	// ShardSlow misses the per-shard deadline on the primary read; the
	// querier hedges to the replica snapshot instead of waiting.
	ShardSlow
	// ShardUnreachable cannot answer at all (e.g. the far side of a
	// network partition); the querier skips it and reports the lost
	// coverage instead of failing the query.
	ShardUnreachable
)

// String returns the state label used in logs and tables.
func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardSlow:
		return "slow"
	case ShardUnreachable:
		return "unreachable"
	}
	return "unknown"
}

// Health reports per-shard reachability to the query fan-out. The
// frontend consults it on every shard read, so implementations must be
// cheap and safe for concurrent use; nil Health means every shard is
// assumed healthy (the pre-degraded-serving behavior). Implementations
// must not call back into the frontend or store.
type Health interface {
	ShardState(shard int) ShardState
}

// LatticeHealth derives shard health from the same seeded fault
// lattice the dprcore.FaultSender injects from: a shard on the far
// side of the active partition (relative to the node the frontend runs
// at) is unreachable, a straggler shard is slow. Compute faults and
// serving degradation therefore agree on which nodes are in trouble
// without any health-check protocol — membership is a pure hash both
// layers evaluate.
type LatticeHealth struct {
	cfg dprcore.FaultConfig
	at  int
	now func() float64
}

// NewLatticeHealth builds a health source for a frontend located at
// node `at`. now must return the time since the fault injectors'
// construction epoch, in the runtime's units — the same axis the
// config's partition window is expressed on.
func NewLatticeHealth(cfg dprcore.FaultConfig, at int, now func() float64) (*LatticeHealth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if now == nil {
		return nil, fmt.Errorf("serve: LatticeHealth needs a time source")
	}
	return &LatticeHealth{cfg: cfg, at: at, now: now}, nil
}

// ShardState implements Health.
func (h *LatticeHealth) ShardState(shard int) ShardState {
	if h.cfg.PartitionActiveAt(h.now()) &&
		h.cfg.PartitionMinority(shard) != h.cfg.PartitionMinority(h.at) {
		return ShardUnreachable
	}
	if h.cfg.Straggler(shard) {
		return ShardSlow
	}
	return ShardHealthy
}

// Admission bounds the load the frontend accepts. Zero values disable
// each check, so the zero Admission admits everything.
type Admission struct {
	// MaxInflight caps concurrently served queries; the query past the
	// cap is shed with ErrOverloaded instead of queued behind work the
	// server cannot keep up with.
	MaxInflight int64
	// StalenessBound sheds queries while the worst staleness over the
	// REACHABLE shards exceeds it, in rounds. Set it to the checkpoint
	// cadence's 2·Every−1 guarantee: beyond that the tier is serving
	// ranks it can no longer bound, and refusing load is what lets the
	// publishers catch up. Partitioned shards are excluded — their
	// staleness is reported as lost coverage, not used to refuse the
	// queries the reachable side can still answer.
	StalenessBound int64
	// RetryAfterSeconds is the hint carried by the shed error
	// (default 1s).
	RetryAfterSeconds float64
}

// validate checks the admission knobs.
func (a Admission) validate() error {
	if a.MaxInflight < 0 {
		return fmt.Errorf("serve: Admission.MaxInflight %d negative", a.MaxInflight)
	}
	if a.StalenessBound < 0 {
		return fmt.Errorf("serve: Admission.StalenessBound %d negative", a.StalenessBound)
	}
	if a.RetryAfterSeconds < 0 {
		return fmt.Errorf("serve: Admission.RetryAfterSeconds %v negative", a.RetryAfterSeconds)
	}
	return nil
}

// enabled reports whether any admission check is active.
func (a Admission) enabled() bool {
	return a.MaxInflight > 0 || a.StalenessBound > 0
}
