// Package codec implements wire encodings for score chunks — the
// "compression" the paper's §4.5 leaves as future work ("Some
// techniques can be adopted to reduce convergence time, i.e.
// compression"). Three codecs ladder from the paper's accounting model
// to an aggressive delta-quantized format:
//
//   - Plain: the naive record encoding, one (page, score) pair as a
//     4-byte index + 8-byte float. Already far below the paper's
//     100-byte URL-pair records, because DHT placement lets peers agree
//     on dense local page indices instead of shipping URLs.
//   - Delta: destination indices are sorted, so gaps are small —
//     delta + varint encoding shrinks the index stream.
//   - Quantized: scores additionally quantized to a fixed number of
//     mantissa bits; lossy, with a relative error bounded by 2^-bits,
//     which the open-system iteration tolerates (it contracts any
//     perturbation by α per step).
//
// Encoded sizes plug into transport.SizeModel so the bandwidth
// experiments can quantify what compression buys against Table 1.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"p2prank/internal/transport"
)

// Codec encodes score chunks for the wire.
type Codec interface {
	// Name identifies the codec in experiment output.
	Name() string
	// Encode appends the chunk's wire form to dst and returns it.
	Encode(dst []byte, c transport.ScoreChunk) []byte
	// Decode parses one chunk. It returns an error on corrupt input.
	Decode(src []byte) (transport.ScoreChunk, error)
}

// header layout shared by all codecs:
// varint srcGroup | varint dstGroup | varint round | varint links |
// varint numEntries | entry stream (codec-specific).
func encodeHeader(dst []byte, c transport.ScoreChunk) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.SrcGroup))
	dst = binary.AppendUvarint(dst, uint64(c.DstGroup))
	dst = binary.AppendUvarint(dst, uint64(c.Round))
	dst = binary.AppendUvarint(dst, uint64(c.Links))
	dst = binary.AppendUvarint(dst, uint64(len(c.Entries)))
	return dst
}

func decodeHeader(src []byte) (c transport.ScoreChunk, n int, entries int, err error) {
	fields := [5]uint64{}
	pos := 0
	for i := range fields {
		v, adv := binary.Uvarint(src[pos:])
		if adv <= 0 {
			return c, 0, 0, fmt.Errorf("codec: truncated header field %d", i)
		}
		fields[i] = v
		pos += adv
	}
	const maxReasonable = 1 << 31
	if fields[0] > maxReasonable || fields[1] > maxReasonable || fields[4] > maxReasonable {
		return c, 0, 0, fmt.Errorf("codec: implausible header %v", fields)
	}
	c.SrcGroup = int32(fields[0])
	c.DstGroup = int32(fields[1])
	c.Round = int64(fields[2])
	c.Links = int64(fields[3])
	return c, pos, int(fields[4]), nil
}

// Plain stores each entry as a 4-byte little-endian index and an
// 8-byte IEEE-754 score.
type Plain struct{}

// Name implements Codec.
func (Plain) Name() string { return "plain" }

// Encode implements Codec.
func (Plain) Encode(dst []byte, c transport.ScoreChunk) []byte {
	dst = encodeHeader(dst, c)
	for _, e := range c.Entries {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.DstLocal))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Value))
	}
	return dst
}

// Decode implements Codec.
func (Plain) Decode(src []byte) (transport.ScoreChunk, error) {
	c, pos, n, err := decodeHeader(src)
	if err != nil {
		return c, err
	}
	if len(src)-pos != n*12 {
		return c, fmt.Errorf("codec: plain body has %d bytes, want %d", len(src)-pos, n*12)
	}
	c.Entries = make([]transport.ScoreEntry, n)
	for i := 0; i < n; i++ {
		c.Entries[i] = transport.ScoreEntry{
			DstLocal: int32(binary.LittleEndian.Uint32(src[pos:])),
			Value:    math.Float64frombits(binary.LittleEndian.Uint64(src[pos+4:])),
		}
		pos += 12
	}
	return c, nil
}

// Delta encodes sorted destination indices as varint gaps and scores as
// raw float64 — lossless, typically 2–3× smaller than Plain on the
// index stream.
type Delta struct{}

// Name implements Codec.
func (Delta) Name() string { return "delta" }

// Encode implements Codec. Entries must be sorted by DstLocal (the
// ranker emits them that way); Encode panics otherwise since silently
// producing an undecodable gap stream would corrupt ranks downstream.
func (Delta) Encode(dst []byte, c transport.ScoreChunk) []byte {
	dst = encodeHeader(dst, c)
	prev := int32(0)
	for i, e := range c.Entries {
		if e.DstLocal < prev {
			panic(fmt.Sprintf("codec: Delta requires sorted entries (%d after %d)", e.DstLocal, prev))
		}
		gap := uint64(e.DstLocal - prev)
		if i == 0 {
			gap = uint64(e.DstLocal)
		}
		dst = binary.AppendUvarint(dst, gap)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Value))
		prev = e.DstLocal
	}
	return dst
}

// Decode implements Codec.
func (Delta) Decode(src []byte) (transport.ScoreChunk, error) {
	c, pos, n, err := decodeHeader(src)
	if err != nil {
		return c, err
	}
	c.Entries = make([]transport.ScoreEntry, 0, n)
	prev := int32(0)
	for i := 0; i < n; i++ {
		gap, adv := binary.Uvarint(src[pos:])
		if adv <= 0 {
			return c, fmt.Errorf("codec: truncated delta gap %d", i)
		}
		pos += adv
		if pos+8 > len(src) {
			return c, fmt.Errorf("codec: truncated delta score %d", i)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(src[pos:]))
		pos += 8
		idx := prev + int32(gap)
		c.Entries = append(c.Entries, transport.ScoreEntry{DstLocal: idx, Value: v})
		prev = idx
	}
	if pos != len(src) {
		return c, fmt.Errorf("codec: %d trailing bytes", len(src)-pos)
	}
	return c, nil
}

// Quantized is Delta with scores rounded to MantissaBits mantissa bits
// and packed as varint(exponent-biased)<<bits|mantissa. Relative error
// per score is below 2^-MantissaBits.
type Quantized struct {
	// MantissaBits is the retained mantissa width, in [4, 52].
	MantissaBits uint
}

// NewQuantized returns a Quantized codec, clamping bits into [4, 52].
func NewQuantized(bits uint) Quantized {
	if bits < 4 {
		bits = 4
	}
	if bits > 52 {
		bits = 52
	}
	return Quantized{MantissaBits: bits}
}

// Name implements Codec.
func (q Quantized) Name() string { return fmt.Sprintf("quantized-%d", q.MantissaBits) }

// quantize rounds v to the codec's mantissa width. Zero, negatives (not
// produced by the ranker, but tolerated), infinities, and NaN pass
// through a raw-bits fallback.
func (q Quantized) quantize(v float64) uint64 {
	bits := math.Float64bits(v)
	drop := 52 - q.MantissaBits
	// Round to nearest by adding half a ULP of the retained width.
	// Overflow into the exponent is fine: it rounds up to the next
	// power of two, still a valid float.
	if !math.IsInf(v, 0) && !math.IsNaN(v) {
		bits += 1 << (drop - 1)
	}
	return bits >> drop
}

func (q Quantized) dequantize(u uint64) float64 {
	return math.Float64frombits(u << (52 - q.MantissaBits))
}

// Encode implements Codec. Entries must be sorted by DstLocal, as for
// Delta.
func (q Quantized) Encode(dst []byte, c transport.ScoreChunk) []byte {
	dst = encodeHeader(dst, c)
	prev := int32(0)
	for i, e := range c.Entries {
		if e.DstLocal < prev {
			panic(fmt.Sprintf("codec: Quantized requires sorted entries (%d after %d)", e.DstLocal, prev))
		}
		gap := uint64(e.DstLocal - prev)
		if i == 0 {
			gap = uint64(e.DstLocal)
		}
		dst = binary.AppendUvarint(dst, gap)
		dst = binary.AppendUvarint(dst, q.quantize(e.Value))
		prev = e.DstLocal
	}
	return dst
}

// Decode implements Codec.
func (q Quantized) Decode(src []byte) (transport.ScoreChunk, error) {
	c, pos, n, err := decodeHeader(src)
	if err != nil {
		return c, err
	}
	c.Entries = make([]transport.ScoreEntry, 0, n)
	prev := int32(0)
	for i := 0; i < n; i++ {
		gap, adv := binary.Uvarint(src[pos:])
		if adv <= 0 {
			return c, fmt.Errorf("codec: truncated quantized gap %d", i)
		}
		pos += adv
		u, adv := binary.Uvarint(src[pos:])
		if adv <= 0 {
			return c, fmt.Errorf("codec: truncated quantized score %d", i)
		}
		pos += adv
		idx := prev + int32(gap)
		c.Entries = append(c.Entries, transport.ScoreEntry{DstLocal: idx, Value: q.dequantize(u)})
		prev = idx
	}
	if pos != len(src) {
		return c, fmt.Errorf("codec: %d trailing bytes", len(src)-pos)
	}
	return c, nil
}

// EncodedSize returns the wire size of c under codec without retaining
// the buffer.
func EncodedSize(codec Codec, c transport.ScoreChunk) int64 {
	return int64(len(codec.Encode(nil, c)))
}
