package codec

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"p2prank/internal/transport"
	"p2prank/internal/xrand"
)

func allCodecs() []Codec {
	return []Codec{Plain{}, Delta{}, NewQuantized(20), NewQuantized(52)}
}

func randomChunk(r *xrand.Rand) transport.ScoreChunk {
	n := r.Intn(60)
	c := transport.ScoreChunk{
		SrcGroup: int32(r.Intn(1000)),
		DstGroup: int32(r.Intn(1000)),
		Round:    int64(r.Intn(100000)),
		Links:    int64(r.Intn(5000)),
	}
	idx := make(map[int32]bool)
	for len(idx) < n {
		idx[int32(r.Intn(100000))] = true
	}
	for i := range idx {
		c.Entries = append(c.Entries, transport.ScoreEntry{
			DstLocal: i,
			Value:    r.Float64() * 10,
		})
	}
	sort.Slice(c.Entries, func(a, b int) bool { return c.Entries[a].DstLocal < c.Entries[b].DstLocal })
	return c
}

func TestLosslessRoundTrip(t *testing.T) {
	for _, cd := range []Codec{Plain{}, Delta{}} {
		cd := cd
		t.Run(cd.Name(), func(t *testing.T) {
			f := func(seed uint64) bool {
				r := xrand.New(seed)
				in := randomChunk(r)
				out, err := cd.Decode(cd.Encode(nil, in))
				if err != nil {
					return false
				}
				if out.SrcGroup != in.SrcGroup || out.DstGroup != in.DstGroup ||
					out.Round != in.Round || out.Links != in.Links ||
					len(out.Entries) != len(in.Entries) {
					return false
				}
				for i := range in.Entries {
					if out.Entries[i] != in.Entries[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQuantizedRoundTripBoundedError(t *testing.T) {
	for _, bits := range []uint{8, 16, 24, 40} {
		q := NewQuantized(bits)
		maxRel := math.Pow(2, -float64(bits))
		f := func(seed uint64) bool {
			r := xrand.New(seed)
			in := randomChunk(r)
			out, err := q.Decode(q.Encode(nil, in))
			if err != nil {
				return false
			}
			if len(out.Entries) != len(in.Entries) {
				return false
			}
			for i := range in.Entries {
				if out.Entries[i].DstLocal != in.Entries[i].DstLocal {
					return false
				}
				v, w := in.Entries[i].Value, out.Entries[i].Value
				if v == 0 {
					if w != 0 {
						return false
					}
					continue
				}
				if math.Abs(w-v)/math.Abs(v) > maxRel {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("bits=%d: %v", bits, err)
		}
	}
}

func TestSizesLadder(t *testing.T) {
	r := xrand.New(7)
	// Dense chunk: consecutive indices maximize Delta's advantage.
	c := transport.ScoreChunk{SrcGroup: 1, DstGroup: 2, Round: 10, Links: 500}
	for i := 0; i < 500; i++ {
		c.Entries = append(c.Entries, transport.ScoreEntry{
			DstLocal: int32(i * 3),
			Value:    0.1 + r.Float64(),
		})
	}
	plain := EncodedSize(Plain{}, c)
	delta := EncodedSize(Delta{}, c)
	quant := EncodedSize(NewQuantized(16), c)
	if delta >= plain {
		t.Fatalf("delta (%d B) not below plain (%d B)", delta, plain)
	}
	if quant >= delta {
		t.Fatalf("quantized (%d B) not below delta (%d B)", quant, delta)
	}
	// And everything far below the paper's 100 B/link URL records.
	if plain >= int64(len(c.Entries))*100 {
		t.Fatalf("plain (%d B) not below the 100 B/link model (%d B)", plain, len(c.Entries)*100)
	}
}

func TestDecodeErrors(t *testing.T) {
	c := randomChunk(xrand.New(1))
	for _, cd := range allCodecs() {
		enc := cd.Encode(nil, c)
		// Truncations at every prefix must error, never panic.
		for cut := 0; cut < len(enc); cut++ {
			if _, err := cd.Decode(enc[:cut]); err == nil {
				// A prefix that happens to parse as a smaller valid
				// chunk is acceptable only if entry counts match the
				// header; header says len(c.Entries), so any true
				// prefix must fail.
				t.Fatalf("%s: truncation at %d accepted", cd.Name(), cut)
			}
		}
		// Trailing garbage must error for the delta codecs.
		if cd.Name() != "plain" {
			if _, err := cd.Decode(append(append([]byte{}, enc...), 0xFF)); err == nil {
				t.Errorf("%s: trailing garbage accepted", cd.Name())
			}
		}
	}
	if _, err := (Plain{}).Decode(nil); err == nil {
		t.Error("nil input accepted")
	}
}

func TestUnsortedPanics(t *testing.T) {
	c := transport.ScoreChunk{Entries: []transport.ScoreEntry{
		{DstLocal: 5, Value: 1}, {DstLocal: 2, Value: 1},
	}}
	for _, cd := range []Codec{Delta{}, NewQuantized(16)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: unsorted entries accepted", cd.Name())
				}
			}()
			cd.Encode(nil, c)
		}()
	}
}

func TestQuantizedClamps(t *testing.T) {
	if NewQuantized(0).MantissaBits != 4 {
		t.Error("low clamp failed")
	}
	if NewQuantized(99).MantissaBits != 52 {
		t.Error("high clamp failed")
	}
}

func TestEmptyChunk(t *testing.T) {
	c := transport.ScoreChunk{SrcGroup: 3, DstGroup: 4, Round: 1, Links: 0}
	for _, cd := range allCodecs() {
		out, err := cd.Decode(cd.Encode(nil, c))
		if err != nil {
			t.Fatalf("%s: %v", cd.Name(), err)
		}
		if len(out.Entries) != 0 || out.SrcGroup != 3 {
			t.Fatalf("%s: empty chunk mangled: %+v", cd.Name(), out)
		}
	}
}

func TestNames(t *testing.T) {
	if (Plain{}).Name() != "plain" || (Delta{}).Name() != "delta" {
		t.Fatal("codec names wrong")
	}
	if NewQuantized(16).Name() != "quantized-16" {
		t.Fatal("quantized name wrong")
	}
}

func BenchmarkEncodeDelta(b *testing.B) {
	c := randomChunk(xrand.New(1))
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = (Delta{}).Encode(buf[:0], c)
	}
}

func BenchmarkDecodeDelta(b *testing.B) {
	c := randomChunk(xrand.New(1))
	enc := (Delta{}).Encode(nil, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Delta{}).Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
