package nodeid

import (
	"testing"
	"testing/quick"

	"p2prank/internal/xrand"
)

func randID(r *xrand.Rand) ID {
	return ID{Hi: r.Uint64(), Lo: r.Uint64()}
}

func TestHashDeterministicDistinct(t *testing.T) {
	a := Hash("node-1")
	b := Hash("node-1")
	c := Hash("node-2")
	if a != b {
		t.Fatal("same name hashed differently")
	}
	if a == c {
		t.Fatal("different names collided")
	}
}

func TestStringLength(t *testing.T) {
	s := Hash("x").String()
	if len(s) != 32 {
		t.Fatalf("String() = %q (%d chars), want 32", s, len(s))
	}
}

func TestCmp(t *testing.T) {
	a := ID{Hi: 1, Lo: 0}
	b := ID{Hi: 0, Lo: ^uint64(0)}
	if a.Cmp(b) != 1 || b.Cmp(a) != -1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp ordering wrong across word boundary")
	}
	c := ID{Hi: 0, Lo: 5}
	d := ID{Hi: 0, Lo: 9}
	if c.Cmp(d) != -1 {
		t.Fatal("Cmp low-word ordering wrong")
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(h1, l1, h2, l2 uint64) bool {
		x := ID{Hi: h1, Lo: l1}
		y := ID{Hi: h2, Lo: l2}
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCarry(t *testing.T) {
	x := ID{Hi: 0, Lo: ^uint64(0)}
	got := x.Add(ID{Lo: 1})
	if got != (ID{Hi: 1, Lo: 0}) {
		t.Fatalf("carry failed: %v", got)
	}
	// Wraparound at the top of the ring.
	top := ID{Hi: ^uint64(0), Lo: ^uint64(0)}
	if top.Add(ID{Lo: 1}) != (ID{}) {
		t.Fatal("ring wraparound failed")
	}
}

func TestAddPow2(t *testing.T) {
	if got := (ID{}).AddPow2(0); got != (ID{Lo: 1}) {
		t.Fatalf("2^0: %v", got)
	}
	if got := (ID{}).AddPow2(64); got != (ID{Hi: 1}) {
		t.Fatalf("2^64: %v", got)
	}
	if got := (ID{}).AddPow2(127); got != (ID{Hi: 1 << 63}) {
		t.Fatalf("2^127: %v", got)
	}
	for _, k := range []int{-1, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddPow2(%d) did not panic", k)
				}
			}()
			(ID{}).AddPow2(k)
		}()
	}
}

func TestAbsDistSymmetric(t *testing.T) {
	r := xrand.New(1)
	for i := 0; i < 200; i++ {
		x, y := randID(r), randID(r)
		if AbsDist(x, y) != AbsDist(y, x) {
			t.Fatalf("AbsDist asymmetric for %v, %v", x, y)
		}
	}
}

func TestAbsDistPicksShorterArc(t *testing.T) {
	a := ID{Lo: 10}
	b := ID{Lo: 20}
	if AbsDist(a, b) != (ID{Lo: 10}) {
		t.Fatalf("AbsDist = %v", AbsDist(a, b))
	}
	// Across zero: 2 and 2^128-3 are 5 apart the short way.
	c := ID{Lo: 2}
	d := ID{Hi: ^uint64(0), Lo: ^uint64(0) - 2}
	if AbsDist(c, d) != (ID{Lo: 5}) {
		t.Fatalf("AbsDist across zero = %v", AbsDist(c, d))
	}
}

func TestBetween(t *testing.T) {
	a, b := ID{Lo: 10}, ID{Lo: 20}
	if !Between(ID{Lo: 15}, a, b) {
		t.Error("15 should be in (10,20)")
	}
	if Between(ID{Lo: 10}, a, b) || Between(ID{Lo: 20}, a, b) {
		t.Error("endpoints must be excluded")
	}
	// Wrapping interval (20, 10): 25 and 5 are inside, 15 is not.
	if !Between(ID{Lo: 25}, b, a) || !Between(ID{Lo: 5}, b, a) {
		t.Error("wrapping interval membership failed")
	}
	if Between(ID{Lo: 15}, b, a) {
		t.Error("15 should not be in wrapped (20,10)")
	}
	// Degenerate interval covers everything except the endpoint.
	if !Between(ID{Lo: 5}, a, a) || Between(a, a, a) {
		t.Error("degenerate interval semantics wrong")
	}
}

func TestBetweenIncl(t *testing.T) {
	a, b := ID{Lo: 10}, ID{Lo: 20}
	if !BetweenIncl(b, a, b) {
		t.Error("upper endpoint must be included")
	}
	if BetweenIncl(a, a, b) {
		t.Error("lower endpoint must be excluded")
	}
	if !BetweenIncl(ID{Lo: 3}, b, a) {
		t.Error("wrapped (20,10] must contain 3")
	}
	if !BetweenIncl(ID{Lo: 7}, a, a) {
		t.Error("(a,a] covers the whole ring")
	}
}

func TestDigitRoundTrip(t *testing.T) {
	// With b=4 there are 32 hex digits; Digit(i,4) must equal the i-th
	// hex character of String().
	r := xrand.New(7)
	const hex = "0123456789abcdef"
	for i := 0; i < 50; i++ {
		x := randID(r)
		s := x.String()
		for d := 0; d < 32; d++ {
			want := int([]byte(s)[d])
			got := x.Digit(d, 4)
			if hex[got] != byte(want) {
				t.Fatalf("id %s digit %d = %d, want hex %c", s, d, got, want)
			}
		}
	}
}

func TestDigitWordBoundary(t *testing.T) {
	// b=1: digit 63 is the lowest bit of Hi, digit 64 the highest of Lo.
	x := ID{Hi: 1, Lo: 1 << 63}
	if x.Digit(63, 1) != 1 || x.Digit(64, 1) != 1 {
		t.Fatal("bit digits around the word boundary wrong")
	}
	if x.Digit(0, 1) != 0 || x.Digit(127, 1) != 0 {
		t.Fatal("outer bits wrong")
	}
}

func TestDigitPanics(t *testing.T) {
	x := ID{}
	for _, c := range []struct{ i, b int }{{0, 3}, {0, 0}, {-1, 4}, {32, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Digit(%d,%d) did not panic", c.i, c.b)
				}
			}()
			x.Digit(c.i, c.b)
		}()
	}
}

func TestCommonPrefixLen(t *testing.T) {
	x := ID{Hi: 0xabcd_0000_0000_0000}
	y := ID{Hi: 0xabce_0000_0000_0000}
	if got := CommonPrefixLen(x, y, 4); got != 3 {
		t.Fatalf("prefix len = %d, want 3", got)
	}
	if got := CommonPrefixLen(x, x, 4); got != 32 {
		t.Fatalf("self prefix len = %d, want 32", got)
	}
}

func TestFromBytesBigEndian(t *testing.T) {
	b := make([]byte, 16)
	b[0] = 0x12
	b[15] = 0x34
	x := FromBytes(b)
	if x.Hi != 0x1200000000000000 || x.Lo != 0x34 {
		t.Fatalf("FromBytes = %+v", x)
	}
}

// Property: Between(m,a,b) partitions the ring: for m ∉ {a,b}, m is in
// exactly one of (a,b) and (b,a).
func TestBetweenPartitionProperty(t *testing.T) {
	f := func(s uint64) bool {
		r := xrand.New(s)
		m, a, b := randID(r), randID(r), randID(r)
		if m == a || m == b || a == b {
			return true
		}
		return Between(m, a, b) != Between(m, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
