// Package nodeid implements the 128-bit circular identifier space shared
// by the Pastry and Chord overlays: hashing of node names and page keys,
// digit extraction for prefix routing (Pastry), ring arithmetic and
// interval tests (Chord), and distance comparisons.
package nodeid

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bits is the width of an ID in bits.
const Bits = 128

// ID is a 128-bit identifier on the ring, stored as two big-endian
// words: Hi holds bits 127..64 and Lo bits 63..0. IDs are comparable
// with == and usable as map keys.
type ID struct {
	Hi, Lo uint64
}

// FromBytes builds an ID from the first 16 bytes of b, big-endian. It
// panics if b is shorter than 16 bytes.
func FromBytes(b []byte) ID {
	return ID{
		Hi: binary.BigEndian.Uint64(b[0:8]),
		Lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

// Hash derives an ID from an arbitrary name (node address, page URL,
// site hostname) with SHA-1, as Pastry and Chord both prescribe.
func Hash(name string) ID {
	sum := sha1.Sum([]byte(name))
	return FromBytes(sum[:])
}

// String renders the ID as 32 hex digits.
func (x ID) String() string {
	return fmt.Sprintf("%016x%016x", x.Hi, x.Lo)
}

// Cmp returns -1, 0, or +1 as x is below, equal to, or above y in plain
// (non-circular) integer order.
func (x ID) Cmp(y ID) int {
	switch {
	case x.Hi < y.Hi:
		return -1
	case x.Hi > y.Hi:
		return 1
	case x.Lo < y.Lo:
		return -1
	case x.Lo > y.Lo:
		return 1
	}
	return 0
}

// Add returns x + y mod 2^128.
func (x ID) Add(y ID) ID {
	lo, carry := bits.Add64(x.Lo, y.Lo, 0)
	hi, _ := bits.Add64(x.Hi, y.Hi, carry)
	return ID{Hi: hi, Lo: lo}
}

// Sub returns x − y mod 2^128 (the clockwise distance from y to x).
func (x ID) Sub(y ID) ID {
	lo, borrow := bits.Sub64(x.Lo, y.Lo, 0)
	hi, _ := bits.Sub64(x.Hi, y.Hi, borrow)
	return ID{Hi: hi, Lo: lo}
}

// AddPow2 returns x + 2^k mod 2^128. It panics unless 0 ≤ k < Bits.
// Chord uses it to compute finger targets.
func (x ID) AddPow2(k int) ID {
	if k < 0 || k >= Bits {
		panic(fmt.Sprintf("nodeid: AddPow2 exponent %d out of range", k))
	}
	var p ID
	if k < 64 {
		p.Lo = 1 << uint(k)
	} else {
		p.Hi = 1 << uint(k-64)
	}
	return x.Add(p)
}

// Distance returns the clockwise ring distance from x to y: the amount
// to add to x to reach y.
func Distance(x, y ID) ID { return y.Sub(x) }

// AbsDist returns min(clockwise, counter-clockwise) distance between x
// and y — the metric Pastry's leaf set uses to pick the numerically
// closest node.
func AbsDist(x, y ID) ID {
	d1 := y.Sub(x)
	d2 := x.Sub(y)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// Between reports whether m lies in the open ring interval (a, b),
// walking clockwise from a to b. When a == b the interval covers the
// whole ring minus {a}.
func Between(m, a, b ID) bool {
	if a == b {
		return m != a
	}
	return m.Sub(a).Cmp(b.Sub(a)) < 0 && m != a
}

// BetweenIncl reports whether m lies in the half-open interval (a, b]
// clockwise. Chord's successor test.
func BetweenIncl(m, a, b ID) bool {
	if a == b {
		return true
	}
	d := m.Sub(a)
	return d.Cmp(b.Sub(a)) <= 0 && d.Cmp(ID{}) > 0
}

// Digit returns the i-th base-2^b digit of x counting from the most
// significant end, as Pastry's prefix routing reads IDs. It panics if b
// does not divide 128 evenly into digit positions or i is out of range.
func (x ID) Digit(i, b int) int {
	nDigits := Bits / b
	if b <= 0 || Bits%b != 0 {
		panic(fmt.Sprintf("nodeid: digit width %d does not divide %d", b, Bits))
	}
	if i < 0 || i >= nDigits {
		panic(fmt.Sprintf("nodeid: digit index %d out of range (%d digits)", i, nDigits))
	}
	shift := Bits - (i+1)*b
	var word uint64
	if shift >= 64 {
		word = x.Hi >> uint(shift-64)
	} else if shift+b <= 64 {
		word = x.Lo >> uint(shift)
	} else {
		// Digit straddles the word boundary.
		word = x.Hi<<uint(64-shift) | x.Lo>>uint(shift)
	}
	return int(word & ((1 << uint(b)) - 1))
}

// CommonPrefixLen returns the number of leading base-2^b digits shared
// by x and y.
func CommonPrefixLen(x, y ID, b int) int {
	nDigits := Bits / b
	for i := 0; i < nDigits; i++ {
		if x.Digit(i, b) != y.Digit(i, b) {
			return i
		}
	}
	return nDigits
}
