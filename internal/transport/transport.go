// Package transport moves updated page scores between page rankers over
// the simulated network, implementing both communication patterns of
// §4.4:
//
//   - Direct transmission (Figure 3): the sender first resolves the
//     destination's address with a DHT lookup (h hops of small lookup
//     messages), then ships the payload in one direct message. Per
//     iteration this costs ≈(h+1)·N² messages and lW + hrN² bytes.
//   - Indirect transmission (Figures 4–5): payloads ride the overlay's
//     neighbor links. Each node packs everything bound for the same next
//     hop into one package; each relay unpacks, recombines by
//     destination, and forwards. Per iteration this costs ≈g·N messages
//     and h·l·W bytes.
//
// Wire sizes follow the paper's model (§4.5): one transmitted link
// record <url_from, url_to, score> costs l = 100 bytes, a lookup message
// r bytes, plus a fixed per-message header.
package transport

import (
	"fmt"

	"p2prank/internal/overlay"
	"p2prank/internal/simnet"
)

// Kind selects the communication pattern.
type Kind int

const (
	// Direct is lookup-then-send one-to-one transmission.
	Direct Kind = iota
	// Indirect routes scores hop-by-hop with per-hop packing.
	Indirect
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Indirect:
		return "indirect"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ScoreEntry is one page's afferent rank contribution: the destination
// page (local index within the destination group) and the rank value
// α·R(u)/d(u) summed over the sender's efferent links to it.
type ScoreEntry struct {
	DstLocal int32
	Value    float64
}

// ScoreChunk carries one source group's contributions to one
// destination group. Links counts the efferent link records the chunk
// represents (the paper charges l bytes per link record, even when
// several records aggregate into one entry).
type ScoreChunk struct {
	SrcGroup int32
	DstGroup int32
	Round    int64 // sender's loop counter, for staleness handling
	Links    int64
	Entries  []ScoreEntry
}

// SizeModel converts chunks into wire bytes per §4.5.
type SizeModel struct {
	// BytesPerLink is l, the size of one <url_from, url_to, score>
	// record. The paper derives 100 bytes from 40-byte average URLs.
	BytesPerLink int64
	// LookupBytes is r, the size of one lookup message.
	LookupBytes int64
	// HeaderBytes is the fixed per-message framing cost.
	HeaderBytes int64
}

// DefaultSizeModel returns the paper's constants.
func DefaultSizeModel() SizeModel {
	return SizeModel{BytesPerLink: 100, LookupBytes: 48, HeaderBytes: 32}
}

func (m SizeModel) validate() error {
	if m.BytesPerLink <= 0 || m.LookupBytes <= 0 || m.HeaderBytes < 0 {
		return fmt.Errorf("transport: invalid size model %+v", m)
	}
	return nil
}

// chunkBytes is the payload cost of a chunk: one link record per
// represented efferent link.
func (m SizeModel) chunkBytes(c ScoreChunk) int64 {
	return c.Links * m.BytesPerLink
}

// Stats are transport-level counters, split by message role so the
// formula 4.1–4.4 comparison can separate lookup overhead from payload.
type Stats struct {
	DataMessages   int64
	DataBytes      int64
	LookupMessages int64
	LookupBytes    int64
	// RelayedChunks counts chunk forwardings performed by intermediate
	// nodes (indirect transmission only).
	RelayedChunks int64
	// AckMessages and AckBytes count reliable-delivery acknowledgements
	// (zero unless a ReliableSender is layered above the fabric).
	AckMessages int64
	AckBytes    int64
	// DroppedMessages counts messages the simulated network refused at
	// send time (endpoint down or modeled loss). The byte counters
	// above still include them — a real sender burns upstream bandwidth
	// on a message that never arrives.
	DroppedMessages int64
	// FaultDrops counts chunks the fault injector discarded above the
	// fabric (dprcore.FaultSender reports them via RecordFaultDrop).
	// They never reach the wire, so they are deliberately excluded from
	// DroppedMessages and the byte counters — churn-experiment loss
	// accounting needs injected loss and send-time loss kept apart.
	FaultDrops int64
}

// Deliver is the callback a ranker registers to receive score chunks
// addressed to its group.
type Deliver func(ScoreChunk)

// ChunkCodec is an optional wire encoding for score chunks (see
// internal/codec). When a fabric has one, chunks are actually encoded
// onto the simulated wire and decoded at each hop — so message sizes
// reflect the real encoding and lossy codecs genuinely perturb the
// scores the rankers see. The paper's §4.5 leaves compression as future
// work; this is where it plugs in.
type ChunkCodec interface {
	Name() string
	Encode(dst []byte, c ScoreChunk) []byte
	Decode(src []byte) (ScoreChunk, error)
}

// Fabric wires every ranker to the simulated network with the selected
// transmission pattern. Create with NewFabric, then Register each
// ranker before any Send.
type Fabric struct {
	kind  Kind
	size  SizeModel
	net   *simnet.Network
	ov    overlay.Network
	addrs []simnet.NodeAddr
	del   []Deliver
	// ackDel holds per-ranker ack callbacks (reliable delivery only;
	// see RegisterAck). Nil entries ignore incoming acks.
	ackDel []func(src int32, round int64)
	// outbox[i] holds the chunks queued at node i, one entry per
	// occupied next-hop ranker (indirect transmission only). A node's
	// occupied hops are a handful of overlay neighbors, so enqueue's
	// linear scan beats both a map and the dense K-slot rows this used
	// to be — which cost K² slots across the fabric and capped runs at
	// thousands of nodes.
	outbox [][]hopBox
	codec  ChunkCodec
	stats  Stats

	// nextHops and routes memoize overlay routing per (node, dstGroup):
	// NextHop is asked once per chunk per hop and Route once per direct
	// send, against an overlay that is static for the fabric's
	// lifetime. Call InvalidateRoutes after changing membership. The
	// memos are dense K-wide rows, so past memoMaxNodes they are skipped
	// (K² memory) and routing recomputes from the overlay's tables.
	nextHops [][]int32
	routes   [][][]int
	// Freelists for the per-message carriers. The []ScoreChunk slices
	// and the codec path's buffers die once handle has processed a
	// message (receivers copy what they keep: Deliver stores the chunk
	// struct, codec.Decode allocates fresh entries), so they cycle
	// through here instead of the garbage collector. The entry slices
	// inside chunks are NOT pooled — an in-flight or delivered chunk
	// aliases them.
	chunkSlices [][]ScoreChunk
	encSlices   [][][]byte
	encBufs     [][]byte
	// msgs pools the dataMsg headers themselves: they travel as
	// pointers so handing one to the network does not box a struct
	// into an interface per message.
	msgs []*dataMsg
}

// hopBox is one node's queued chunks toward one next-hop neighbor.
type hopBox struct {
	hop    int
	chunks []ScoreChunk
}

// memoMaxNodes bounds the dense routing memos: beyond this many rankers
// the K-wide rows would dominate memory (K² across the fabric), and the
// overlay's own routing arithmetic is cheap enough to recompute.
const memoMaxNodes = 4096

// message payloads exchanged over simnet.
type dataMsg struct {
	chunks []ScoreChunk
	// encoded holds the wire form when the fabric has a codec; chunks
	// is then nil and the receiver decodes.
	encoded [][]byte
}
type lookupMsg struct{}

// ackMsg carries a cumulative delivery acknowledgement back to a
// chunk's source group (see Fabric.SendAck).
type ackMsg struct {
	src   int32 // the acking ranker (the chunk's receiver)
	round int64 // newest acknowledged round
}

// ackPayloadBytes models an ack's body: two ranker ids and a round.
const ackPayloadBytes = 16

// NewFabric builds a transport fabric for the K rankers of the overlay.
func NewFabric(net *simnet.Network, ov overlay.Network, kind Kind, size SizeModel) (*Fabric, error) {
	if err := size.validate(); err != nil {
		return nil, err
	}
	if kind != Direct && kind != Indirect {
		return nil, fmt.Errorf("transport: unknown kind %d", int(kind))
	}
	k := ov.NumNodes()
	f := &Fabric{
		kind:     kind,
		size:     size,
		net:      net,
		ov:       ov,
		addrs:    make([]simnet.NodeAddr, k),
		del:      make([]Deliver, k),
		ackDel:   make([]func(src int32, round int64), k),
		outbox:   make([][]hopBox, k),
		nextHops: make([][]int32, k),
		routes:   make([][][]int, k),
	}
	for i := range f.addrs {
		f.addrs[i] = simnet.NodeAddr(-1)
	}
	return f, nil
}

// Register attaches ranker i's delivery callback and creates its
// network presence. It must be called exactly once per ranker.
func (f *Fabric) Register(i int, d Deliver) error {
	if i < 0 || i >= len(f.del) {
		return fmt.Errorf("transport: ranker index %d out of range", i)
	}
	if f.del[i] != nil {
		return fmt.Errorf("transport: ranker %d registered twice", i)
	}
	if d == nil {
		return fmt.Errorf("transport: nil deliver callback")
	}
	f.del[i] = d
	f.addrs[i] = f.net.AddNode(func(m simnet.Message) { f.handle(i, m) })
	return nil
}

// RegisterAck installs ranker i's callback for incoming delivery
// acknowledgements (reliable delivery). Call after Register; without
// one, acks addressed to i are counted and discarded.
func (f *Fabric) RegisterAck(i int, fn func(src int32, round int64)) error {
	if i < 0 || i >= len(f.ackDel) {
		return fmt.Errorf("transport: ranker index %d out of range", i)
	}
	f.ackDel[i] = fn
	return nil
}

// SendAck ships a cumulative ack from ranker `from` to source group
// `to`, covering to's chunks up to round. Acks are end-to-end control
// traffic: one hop, no overlay routing, no lookup — the receiver
// learned the sender's address from the chunk it is acknowledging.
func (f *Fabric) SendAck(from int, to int32, round int64) {
	size := f.size.HeaderBytes + ackPayloadBytes
	f.stats.AckMessages++
	f.stats.AckBytes += size
	if !f.net.Send(f.addrs[from], f.addrs[to], ackMsg{src: int32(from), round: round}, size) {
		f.stats.DroppedMessages++
	}
}

// RecordFaultDrop counts one chunk the fault injector discarded before
// it reached the fabric (see Stats.FaultDrops). dprcore.FaultSender
// probes for this method and calls it from commit context.
func (f *Fabric) RecordFaultDrop(from int) { f.stats.FaultDrops++ }

// Kind returns the fabric's transmission pattern.
func (f *Fabric) Kind() Kind { return f.kind }

// Addr returns the simulated-network address of ranker i's host. The
// experiment harness uses it to inject host-level failures.
func (f *Fabric) Addr(i int) simnet.NodeAddr { return f.addrs[i] }

// SetCodec installs a wire codec. It must be called before any Send;
// installing one after traffic has flowed is a programming error.
func (f *Fabric) SetCodec(c ChunkCodec) error {
	if f.stats != (Stats{}) {
		return fmt.Errorf("transport: SetCodec after traffic")
	}
	f.codec = c
	return nil
}

// Codec returns the installed wire codec, or nil.
func (f *Fabric) Codec() ChunkCodec { return f.codec }

// InvalidateRoutes drops the memoized next-hop and lookup-route tables.
// It must be called if the overlay's membership changes (Fail/Recover/
// Join) while the fabric is live; routing then re-derives from the
// overlay on demand.
func (f *Fabric) InvalidateRoutes() {
	for i := range f.nextHops {
		f.nextHops[i] = nil
		f.routes[i] = nil
	}
}

// nextHop is overlay.NextHop through the per-fabric memo table (or
// straight from the overlay past memoMaxNodes).
func (f *Fabric) nextHop(i, dst int) int {
	if len(f.del) > memoMaxNodes {
		return f.ov.NextHop(i, f.ov.NodeID(dst))
	}
	row := f.nextHops[i]
	if row == nil {
		//p2plint:allow hotalloc -- memo warm-up, once per node per route invalidation
		row = make([]int32, len(f.del))
		for j := range row {
			row[j] = -1
		}
		f.nextHops[i] = row
	}
	if v := row[dst]; v >= 0 {
		return int(v)
	}
	n := f.ov.NextHop(i, f.ov.NodeID(dst))
	row[dst] = int32(n)
	return n
}

// route is overlay.Route through the per-fabric memo table (or
// recomputed per send past memoMaxNodes).
func (f *Fabric) route(from, dst int) ([]int, error) {
	if len(f.del) > memoMaxNodes {
		return overlay.Route(f.ov, from, f.ov.NodeID(dst))
	}
	row := f.routes[from]
	if row == nil {
		//p2plint:allow hotalloc -- memo warm-up, once per node per route invalidation
		row = make([][]int, len(f.del))
		f.routes[from] = row
	}
	if p := row[dst]; p != nil {
		return p, nil
	}
	p, err := overlay.Route(f.ov, from, f.ov.NodeID(dst))
	if err != nil {
		return nil, err
	}
	row[dst] = p
	return p, nil
}

// Stats returns transport-level counters. Network-level byte totals live
// on the simnet.Network.
func (f *Fabric) Stats() Stats { return f.stats }

// ResetStats zeroes the transport counters.
func (f *Fabric) ResetStats() { f.stats = Stats{} }

// Send queues a chunk from ranker `from` toward chunk.DstGroup. With
// direct transmission the lookup and data messages go out immediately;
// with indirect transmission the chunk sits in the outbox until Flush.
// Sending to yourself is a programming error.
//
//p2plint:hotpath -- per-chunk send path, every exchanged score crosses it
func (f *Fabric) Send(from int, chunk ScoreChunk) error {
	if f.del[from] == nil {
		return fmt.Errorf("transport: ranker %d not registered", from)
	}
	dst := int(chunk.DstGroup)
	if dst < 0 || dst >= len(f.del) {
		return fmt.Errorf("transport: destination group %d out of range", dst)
	}
	if dst == from {
		return fmt.Errorf("transport: ranker %d sending to itself", from)
	}
	switch f.kind {
	case Direct:
		return f.sendDirect(from, chunk)
	case Indirect:
		f.enqueue(from, chunk)
		return nil
	}
	return fmt.Errorf("transport: unknown kind %d", int(f.kind))
}

// Flush pushes ranker i's queued outbox packages onto the network (one
// message per next-hop neighbor). It is a no-op for direct transmission
// and for empty outboxes.
//
//p2plint:hotpath -- per-round outbox drain, one call per ranker per iteration
func (f *Fabric) Flush(from int) error {
	if f.del[from] == nil {
		return fmt.Errorf("transport: ranker %d not registered", from)
	}
	if f.kind != Indirect {
		return nil
	}
	box := f.outbox[from]
	if len(box) == 0 {
		return nil
	}
	// Deterministic flush order: ascending next-hop index. Detach the
	// node's box while draining so a re-entrant enqueue (impossible
	// today, but cheap to be safe against) cannot clobber it.
	f.outbox[from] = nil
	sortHopBoxes(box)
	for i := range box {
		chunks := box[i].chunks
		box[i] = hopBox{hop: box[i].hop}
		msg, payload := f.pack(chunks)
		if f.codec != nil {
			// The codec path copies chunks onto the wire; the slice
			// itself is free again.
			f.recycleChunks(chunks)
		}
		f.stats.DataMessages++
		f.stats.DataBytes += payload
		if !f.net.Send(f.addrs[from], f.addrs[box[i].hop], msg, payload) {
			f.stats.DroppedMessages++
			f.recycle(msg) // refused at send time: nothing will deliver it
		}
	}
	f.outbox[from] = box[:0]
	return nil
}

// pack turns chunks into one wire message and its size: the analytic
// l-bytes-per-link model without a codec, the real encoded size with
// one.
func (f *Fabric) pack(chunks []ScoreChunk) (*dataMsg, int64) {
	m := f.getMsg()
	payload := f.size.HeaderBytes
	if f.codec == nil {
		for _, c := range chunks {
			payload += f.size.chunkBytes(c)
		}
		m.chunks = chunks
		return m, payload
	}
	encoded := f.getEncSlice()
	for _, c := range chunks {
		buf := f.codec.Encode(f.getEncBuf(), c)
		payload += int64(len(buf))
		encoded = append(encoded, buf)
	}
	m.encoded = encoded
	return m, payload
}

// getMsg pops an empty dataMsg header from the freelist.
func (f *Fabric) getMsg() *dataMsg {
	if n := len(f.msgs); n > 0 {
		m := f.msgs[n-1]
		f.msgs[n-1] = nil
		f.msgs = f.msgs[:n-1]
		return m
	}
	//p2plint:allow hotalloc -- freelist refill; steady state recycles delivered messages
	return &dataMsg{}
}

// getChunkSlice pops an empty []ScoreChunk from the freelist.
func (f *Fabric) getChunkSlice() []ScoreChunk {
	if n := len(f.chunkSlices); n > 0 {
		s := f.chunkSlices[n-1]
		f.chunkSlices[n-1] = nil
		f.chunkSlices = f.chunkSlices[:n-1]
		return s
	}
	return nil
}

// getEncSlice pops an empty [][]byte from the freelist.
func (f *Fabric) getEncSlice() [][]byte {
	if n := len(f.encSlices); n > 0 {
		s := f.encSlices[n-1]
		f.encSlices[n-1] = nil
		f.encSlices = f.encSlices[:n-1]
		return s
	}
	return nil
}

// getEncBuf pops an empty []byte encode buffer from the freelist.
func (f *Fabric) getEncBuf() []byte {
	if n := len(f.encBufs); n > 0 {
		b := f.encBufs[n-1]
		f.encBufs[n-1] = nil
		f.encBufs = f.encBufs[:n-1]
		return b
	}
	return nil
}

// recycleChunks clears a chunk slice (so it does not pin its receivers'
// entry slices) and returns it to the freelist.
func (f *Fabric) recycleChunks(s []ScoreChunk) {
	if s == nil {
		return
	}
	clear(s)
	f.chunkSlices = append(f.chunkSlices, s[:0])
}

// recycle returns a message's carriers to the freelists once nothing can
// reference them again — after handle has processed it, or when the
// network refused it at send time.
func (f *Fabric) recycle(m *dataMsg) {
	f.recycleChunks(m.chunks)
	if m.encoded != nil {
		for i, b := range m.encoded {
			f.encBufs = append(f.encBufs, b[:0])
			m.encoded[i] = nil
		}
		f.encSlices = append(f.encSlices, m.encoded[:0])
	}
	*m = dataMsg{}
	f.msgs = append(f.msgs, m)
}

// unpack recovers the chunks of a message. The returned slice is only
// valid until the caller recycles it.
func (f *Fabric) unpack(m *dataMsg) []ScoreChunk {
	if m.chunks != nil {
		return m.chunks
	}
	chunks := f.getChunkSlice()
	for _, enc := range m.encoded {
		c, err := f.codec.Decode(enc)
		if err != nil {
			// The simulated wire cannot corrupt data; a decode failure
			// is a codec bug and must not be silently dropped.
			panic(fmt.Sprintf("transport: codec %s: %v", f.codec.Name(), err))
		}
		chunks = append(chunks, c)
	}
	return chunks
}

// sendDirect performs lookup-then-send: h small messages along the
// overlay route (the address resolution of Figure 3B), then one data
// message straight to the destination.
func (f *Fabric) sendDirect(from int, chunk ScoreChunk) error {
	dst := int(chunk.DstGroup)
	path, err := f.route(from, dst)
	if err != nil {
		return fmt.Errorf("transport: lookup route failed: %w", err)
	}
	// Lookup messages hop along the path.
	lsize := f.size.LookupBytes + f.size.HeaderBytes
	for i := 0; i+1 < len(path); i++ {
		f.stats.LookupMessages++
		f.stats.LookupBytes += lsize
		if !f.net.Send(f.addrs[path[i]], f.addrs[path[i+1]], lookupMsg{}, lsize) {
			f.stats.DroppedMessages++
		}
	}
	cs := append(f.getChunkSlice(), chunk)
	msg, payload := f.pack(cs)
	if f.codec != nil {
		// The codec path copied the chunk onto the wire; the carrier
		// slice is free again.
		f.recycleChunks(cs)
	}
	f.stats.DataMessages++
	f.stats.DataBytes += payload
	if !f.net.Send(f.addrs[from], f.addrs[dst], msg, payload) {
		f.stats.DroppedMessages++
		f.recycle(msg) // refused at send time: nothing will deliver it
	}
	return nil
}

// enqueue places a chunk in node i's outbox under its next overlay hop.
func (f *Fabric) enqueue(i int, chunk ScoreChunk) {
	next := f.nextHop(i, int(chunk.DstGroup))
	if next == i {
		// We are the owner-side endpoint; the overlay says the chunk
		// has arrived (can happen after a membership change).
		f.del[i](chunk)
		return
	}
	box := f.outbox[i]
	for j := range box {
		if box[j].hop == next {
			box[j].chunks = append(box[j].chunks, chunk)
			return
		}
	}
	//p2plint:allow hotalloc -- per-node box grows to its neighbor-count high-water mark, then reuses
	f.outbox[i] = append(box, hopBox{hop: next, chunks: append(f.getChunkSlice(), chunk)})
}

// handle processes a message arriving at ranker i: lookups are pure
// overhead; data chunks are delivered locally or repacked toward their
// next hop and flushed immediately (the unpack/recombine of Figure 4).
//
//p2plint:hotpath -- per-message receive path of the fabric
func (f *Fabric) handle(i int, m simnet.Message) {
	switch payload := m.Payload.(type) {
	case lookupMsg:
		// Address-resolution traffic carries no scores.
	case ackMsg:
		if cb := f.ackDel[i]; cb != nil {
			cb(payload.src, payload.round)
		}
	case *dataMsg:
		forwarded := false
		cs := f.unpack(payload)
		for _, c := range cs {
			if int(c.DstGroup) == i {
				f.del[i](c)
				continue
			}
			f.stats.RelayedChunks++
			f.enqueue(i, c)
			forwarded = true
		}
		// Delivered chunks were copied out by value and forwarded ones
		// re-queued; the carriers are free for the next message.
		if f.codec != nil {
			f.recycleChunks(cs)
		}
		f.recycle(payload)
		if forwarded {
			// Relay promptly so indirect latency stays at h network
			// hops; chunks arriving in one package toward one next hop
			// still share one message.
			if err := f.Flush(i); err != nil {
				panic(fmt.Sprintf("transport: relay flush: %v", err))
			}
		}
	default:
		panic(fmt.Sprintf("transport: unknown payload %T", m.Payload))
	}
}

// sortHopBoxes is a tiny insertion sort by next-hop index; outboxes
// hold a handful of neighbors, far below sort.Slice's overhead
// crossover.
func sortHopBoxes(xs []hopBox) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].hop < xs[j-1].hop; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
