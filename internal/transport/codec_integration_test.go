package transport_test

// Integration of wire codecs with the transport fabric and the engine.
// Lives in an external test package because internal/codec imports
// internal/transport.

import (
	"testing"

	"p2prank/internal/codec"
	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/nodeid"
	"p2prank/internal/pastry"
	"p2prank/internal/rankcmp"
	"p2prank/internal/simnet"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

func codecGraph(t testing.TB) *webgraph.Graph {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(2500)
	cfg.Seed = 5
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runWithCodec(t *testing.T, g *webgraph.Graph, c transport.ChunkCodec, kind transport.Kind) *engine.Result {
	t.Helper()
	res, err := engine.Run(engine.Config{
		Params: dprcore.Params{Alg: dprcore.DPR1, T1: 0.5, T2: 3},
		Graph:  g, K: 8, MaxTime: 300, SampleEvery: 5,
		Transport: kind,
		Codec:     c,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLosslessCodecsPreserveRanks(t *testing.T) {
	g := codecGraph(t)
	base := runWithCodec(t, g, nil, transport.Indirect)
	for _, c := range []transport.ChunkCodec{codec.Plain{}, codec.Delta{}} {
		res := runWithCodec(t, g, c, transport.Indirect)
		if d := vecmath.Diff1(res.Final, base.Final); d != 0 {
			t.Errorf("%s: ranks differ from codec-less run by %v", c.Name(), d)
		}
	}
}

func TestCodecBytesLadder(t *testing.T) {
	g := codecGraph(t)
	bytesOf := func(c transport.ChunkCodec) int64 {
		return runWithCodec(t, g, c, transport.Indirect).NetStats.BytesSent
	}
	model := bytesOf(nil)
	plain := bytesOf(codec.Plain{})
	delta := bytesOf(codec.Delta{})
	quant := bytesOf(codec.NewQuantized(16))
	if plain >= model {
		t.Errorf("plain encoding (%d B) not below the 100 B/link model (%d B)", plain, model)
	}
	if delta >= plain {
		t.Errorf("delta (%d B) not below plain (%d B)", delta, plain)
	}
	if quant >= delta {
		t.Errorf("quantized (%d B) not below delta (%d B)", quant, delta)
	}
}

// A lossy codec still converges: quantization error is injected every
// exchange, but the α-contraction damps it to a floor set by the
// mantissa width.
func TestQuantizedCodecConvergesToFloor(t *testing.T) {
	g := codecGraph(t)
	res := runWithCodec(t, g, codec.NewQuantized(20), transport.Indirect)
	if res.RelErr > 1e-4 {
		t.Fatalf("quantized-20 run stuck at relative error %v", res.RelErr)
	}
	coarse := runWithCodec(t, g, codec.NewQuantized(6), transport.Indirect)
	if coarse.RelErr > 5e-2 {
		t.Fatalf("quantized-6 run error %v beyond its expected floor", coarse.RelErr)
	}
	if coarse.RelErr < res.RelErr {
		t.Fatalf("coarser quantization gave a lower floor (%v < %v)", coarse.RelErr, res.RelErr)
	}
	// What a search engine cares about survives even 6-bit scores: the
	// ordering stays almost perfectly correlated with the exact ranks.
	tau, err := rankcmp.KendallTau(coarse.Final, coarse.Reference)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.95 {
		t.Fatalf("quantized-6 ordering degraded: Kendall tau %v", tau)
	}
	top, err := rankcmp.TopKOverlap(coarse.Final, coarse.Reference, 100)
	if err != nil {
		t.Fatal(err)
	}
	if top < 0.9 {
		t.Fatalf("quantized-6 top-100 overlap %v", top)
	}
}

func TestCodecWithDirectTransport(t *testing.T) {
	g := codecGraph(t)
	res := runWithCodec(t, g, codec.Delta{}, transport.Direct)
	if res.RelErr > 1e-6 {
		t.Fatalf("direct+delta run error %v", res.RelErr)
	}
}

func TestSetCodecOrdering(t *testing.T) {
	sim := simnet.New(1)
	net, err := simnet.NewNetwork(sim, simnet.DefaultNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids := []nodeid.ID{nodeid.Hash("a"), nodeid.Hash("b")}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fab, err := transport.NewFabric(net, ov, transport.Direct, transport.DefaultSizeModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.SetCodec(codec.Delta{}); err != nil {
		t.Fatalf("pre-traffic SetCodec failed: %v", err)
	}
	if fab.Codec() == nil {
		t.Fatal("codec not installed")
	}
	for i := 0; i < 2; i++ {
		i := i
		if err := fab.Register(i, func(transport.ScoreChunk) { _ = i }); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Send(0, transport.ScoreChunk{SrcGroup: 0, DstGroup: 1, Links: 1,
		Entries: []transport.ScoreEntry{{DstLocal: 0, Value: 1}}}); err != nil {
		t.Fatal(err)
	}
	sim.Run(0)
	if err := fab.SetCodec(codec.Plain{}); err == nil {
		t.Fatal("SetCodec after traffic accepted")
	}
}
