package transport

import (
	"fmt"
	"testing"

	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/pastry"
	"p2prank/internal/simnet"
)

type harness struct {
	sim *simnet.Simulator
	net *simnet.Network
	ov  *pastry.Overlay
	fab *Fabric
	got [][]ScoreChunk
}

func newHarness(t testing.TB, k int, kind Kind) *harness {
	t.Helper()
	sim := simnet.New(123)
	net, err := simnet.NewNetwork(sim, simnet.DefaultNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]nodeid.ID, k)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fab, err := NewFabric(net, ov, kind, DefaultSizeModel())
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{sim: sim, net: net, ov: ov, fab: fab, got: make([][]ScoreChunk, k)}
	for i := 0; i < k; i++ {
		i := i
		if err := fab.Register(i, func(c ScoreChunk) { h.got[i] = append(h.got[i], c) }); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func chunk(src, dst, links int) ScoreChunk {
	return ScoreChunk{
		SrcGroup: int32(src),
		DstGroup: int32(dst),
		Links:    int64(links),
		Entries:  []ScoreEntry{{DstLocal: 0, Value: 0.5}},
	}
}

func TestDirectDelivery(t *testing.T) {
	h := newHarness(t, 8, Direct)
	if err := h.fab.Send(0, chunk(0, 5, 3)); err != nil {
		t.Fatal(err)
	}
	h.sim.Run(0)
	if len(h.got[5]) != 1 {
		t.Fatalf("destination got %d chunks", len(h.got[5]))
	}
	c := h.got[5][0]
	if c.SrcGroup != 0 || c.Links != 3 {
		t.Fatalf("chunk = %+v", c)
	}
	for i, gs := range h.got {
		if i != 5 && len(gs) != 0 {
			t.Fatalf("ranker %d received stray chunks", i)
		}
	}
}

func TestDirectLookupAccounting(t *testing.T) {
	h := newHarness(t, 32, Direct)
	hops, err := overlay.Hops(h.ov, 1, h.ov.NodeID(20))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.fab.Send(1, chunk(1, 20, 2)); err != nil {
		t.Fatal(err)
	}
	h.sim.Run(0)
	st := h.fab.Stats()
	if st.LookupMessages != int64(hops) {
		t.Fatalf("lookup messages = %d, route hops = %d", st.LookupMessages, hops)
	}
	if st.DataMessages != 1 {
		t.Fatalf("data messages = %d", st.DataMessages)
	}
	sm := DefaultSizeModel()
	if want := sm.HeaderBytes + 2*sm.BytesPerLink; st.DataBytes != want {
		t.Fatalf("data bytes = %d, want %d", st.DataBytes, want)
	}
	if want := int64(hops) * (sm.LookupBytes + sm.HeaderBytes); st.LookupBytes != want {
		t.Fatalf("lookup bytes = %d, want %d", st.LookupBytes, want)
	}
}

func TestIndirectDelivery(t *testing.T) {
	h := newHarness(t, 32, Indirect)
	if err := h.fab.Send(3, chunk(3, 27, 4)); err != nil {
		t.Fatal(err)
	}
	// Nothing moves before Flush.
	h.sim.Run(0)
	if len(h.got[27]) != 0 {
		t.Fatal("chunk moved before Flush")
	}
	if err := h.fab.Flush(3); err != nil {
		t.Fatal(err)
	}
	h.sim.Run(0)
	if len(h.got[27]) != 1 {
		t.Fatalf("destination got %d chunks", len(h.got[27]))
	}
	if h.fab.Stats().LookupMessages != 0 {
		t.Fatal("indirect transmission performed lookups")
	}
}

func TestIndirectAllPairs(t *testing.T) {
	const k = 24
	h := newHarness(t, k, Indirect)
	for src := 0; src < k; src++ {
		for dst := 0; dst < k; dst++ {
			if src == dst {
				continue
			}
			if err := h.fab.Send(src, chunk(src, dst, 1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.fab.Flush(src); err != nil {
			t.Fatal(err)
		}
	}
	h.sim.Run(0)
	for dst := 0; dst < k; dst++ {
		if len(h.got[dst]) != k-1 {
			t.Fatalf("ranker %d received %d chunks, want %d", dst, len(h.got[dst]), k-1)
		}
		seen := map[int32]bool{}
		for _, c := range h.got[dst] {
			if int(c.DstGroup) != dst {
				t.Fatalf("misrouted chunk %+v at %d", c, dst)
			}
			if seen[c.SrcGroup] {
				t.Fatalf("duplicate chunk from %d at %d", c.SrcGroup, dst)
			}
			seen[c.SrcGroup] = true
		}
	}
}

func TestDirectAllPairs(t *testing.T) {
	const k = 16
	h := newHarness(t, k, Direct)
	for src := 0; src < k; src++ {
		for dst := 0; dst < k; dst++ {
			if src != dst {
				if err := h.fab.Send(src, chunk(src, dst, 1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	h.sim.Run(0)
	for dst := 0; dst < k; dst++ {
		if len(h.got[dst]) != k-1 {
			t.Fatalf("ranker %d received %d chunks", dst, len(h.got[dst]))
		}
	}
}

// The §4.4 scalability claim: for all-pairs traffic, indirect
// transmission needs far fewer messages than direct once N is past the
// crossover (direct pays (h+1)·N², indirect g·N plus relays).
func TestIndirectFewerMessagesThanDirect(t *testing.T) {
	const k = 64
	count := func(kind Kind) int64 {
		h := newHarness(t, k, kind)
		for src := 0; src < k; src++ {
			for dst := 0; dst < k; dst++ {
				if src != dst {
					if err := h.fab.Send(src, chunk(src, dst, 1)); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := h.fab.Flush(src); err != nil {
				t.Fatal(err)
			}
		}
		h.sim.Run(0)
		// Every chunk must arrive under both schemes.
		for dst := 0; dst < k; dst++ {
			if len(h.got[dst]) != k-1 {
				t.Fatalf("%v: ranker %d received %d chunks", kind, dst, len(h.got[dst]))
			}
		}
		return h.net.TotalStats().MessagesSent
	}
	direct := count(Direct)
	indirect := count(Indirect)
	if indirect >= direct {
		t.Fatalf("indirect used %d messages, direct %d", indirect, direct)
	}
}

func TestIndirectBatchesSharedNextHop(t *testing.T) {
	const k = 48
	h := newHarness(t, k, Indirect)
	// Node 0 sends to every other group but flushes once: the number
	// of outgoing messages equals the number of distinct next hops,
	// which is at most its neighbor count, well below k-1.
	for dst := 1; dst < k; dst++ {
		if err := h.fab.Send(0, chunk(0, dst, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.fab.Flush(0); err != nil {
		t.Fatal(err)
	}
	firstWave := h.net.NodeSent(simnet.NodeAddr(0)).MessagesSent
	maxNext := int64(len(h.ov.Neighbors(0)))
	if firstWave > maxNext {
		t.Fatalf("node 0 sent %d packages, has %d neighbors", firstWave, maxNext)
	}
	if firstWave >= int64(k-1) {
		t.Fatalf("no batching: %d packages for %d destinations", firstWave, k-1)
	}
	h.sim.Run(0)
	total := 0
	for dst := 1; dst < k; dst++ {
		total += len(h.got[dst])
	}
	if total != k-1 {
		t.Fatalf("delivered %d of %d chunks", total, k-1)
	}
}

func TestSendErrors(t *testing.T) {
	h := newHarness(t, 4, Direct)
	if err := h.fab.Send(1, chunk(1, 1, 1)); err == nil {
		t.Error("self-send accepted")
	}
	if err := h.fab.Send(1, chunk(1, 9, 1)); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestRegisterErrors(t *testing.T) {
	sim := simnet.New(1)
	net, err := simnet.NewNetwork(sim, simnet.DefaultNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	ids := []nodeid.ID{nodeid.Hash("a"), nodeid.Hash("b")}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fab, err := NewFabric(net, ov, Indirect, DefaultSizeModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Register(5, func(ScoreChunk) {}); err == nil {
		t.Error("out-of-range register accepted")
	}
	if err := fab.Register(0, nil); err == nil {
		t.Error("nil deliver accepted")
	}
	if err := fab.Register(0, func(ScoreChunk) {}); err != nil {
		t.Fatal(err)
	}
	if err := fab.Register(0, func(ScoreChunk) {}); err == nil {
		t.Error("double register accepted")
	}
	if err := fab.Send(1, chunk(1, 0, 1)); err == nil {
		t.Error("send from unregistered ranker accepted")
	}
	if err := fab.Flush(1); err == nil {
		t.Error("flush from unregistered ranker accepted")
	}
}

func TestNewFabricValidation(t *testing.T) {
	sim := simnet.New(1)
	net, _ := simnet.NewNetwork(sim, simnet.DefaultNetConfig())
	ids := []nodeid.ID{nodeid.Hash("a")}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFabric(net, ov, Kind(9), DefaultSizeModel()); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := NewFabric(net, ov, Direct, SizeModel{}); err == nil {
		t.Error("zero size model accepted")
	}
}

func TestKindString(t *testing.T) {
	if Direct.String() != "direct" || Indirect.String() != "indirect" {
		t.Fatal("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestResetStats(t *testing.T) {
	h := newHarness(t, 8, Direct)
	if err := h.fab.Send(0, chunk(0, 3, 1)); err != nil {
		t.Fatal(err)
	}
	h.sim.Run(0)
	if h.fab.Stats() == (Stats{}) {
		t.Fatal("stats empty after traffic")
	}
	h.fab.ResetStats()
	if h.fab.Stats() != (Stats{}) {
		t.Fatal("ResetStats left residue")
	}
}

func BenchmarkIndirectAllPairs64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := newHarness(b, 64, Indirect)
		for src := 0; src < 64; src++ {
			for dst := 0; dst < 64; dst++ {
				if src != dst {
					if err := h.fab.Send(src, chunk(src, dst, 1)); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := h.fab.Flush(src); err != nil {
				b.Fatal(err)
			}
		}
		h.sim.Run(0)
	}
}
