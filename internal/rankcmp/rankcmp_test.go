package rankcmp

import (
	"math"
	"testing"
	"testing/quick"

	"p2prank/internal/vecmath"
	"p2prank/internal/xrand"
)

func randVec(r *xrand.Rand, n int) vecmath.Vec {
	v := vecmath.NewVec(n)
	for i := range v {
		v[i] = r.Float64()
	}
	return v
}

func TestKendallIdentical(t *testing.T) {
	a := vecmath.Vec{3, 1, 2, 5}
	tau, err := KendallTau(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if tau != 1 {
		t.Fatalf("tau = %v, want 1", tau)
	}
}

func TestKendallReversed(t *testing.T) {
	a := vecmath.Vec{1, 2, 3, 4, 5}
	b := vecmath.Vec{5, 4, 3, 2, 1}
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tau != -1 {
		t.Fatalf("tau = %v, want -1", tau)
	}
}

func TestKendallSingleSwap(t *testing.T) {
	// Orders 0123 vs 0132: one discordant pair of 6 → τ = 1 − 2/6·2 = 2/3.
	a := vecmath.Vec{4, 3, 2, 1}
	b := vecmath.Vec{4, 3, 1, 2}
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-2.0/3.0) > 1e-12 {
		t.Fatalf("tau = %v, want 2/3", tau)
	}
}

func TestKendallRandomNearZero(t *testing.T) {
	r := xrand.New(5)
	a := randVec(r, 3000)
	b := randVec(r, 3000)
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau) > 0.05 {
		t.Fatalf("independent rankings gave tau = %v", tau)
	}
}

func TestKendallSymmetricProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(100)
		a, b := randVec(r, n), randVec(r, n)
		t1, err1 := KendallTau(a, b)
		t2, err2 := KendallTau(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(t1-t2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKendallBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(60)
		tau, err := KendallTau(randVec(r, n), randVec(r, n))
		return err == nil && tau >= -1-1e-12 && tau <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanKnownValues(t *testing.T) {
	a := vecmath.Vec{1, 2, 3, 4}
	rho, err := Spearman(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rho != 1 {
		t.Fatalf("rho = %v, want 1", rho)
	}
	b := vecmath.Vec{4, 3, 2, 1}
	rho, err = Spearman(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rho != -1 {
		t.Fatalf("rho = %v, want -1", rho)
	}
}

func TestSpearmanDominatesKendallMagnitude(t *testing.T) {
	// For mildly perturbed rankings both are near 1.
	r := xrand.New(9)
	a := randVec(r, 500)
	b := a.Clone()
	for i := range b {
		b[i] += r.Float64() * 0.01
	}
	tau, err := KendallTau(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := Spearman(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.9 || rho < 0.9 {
		t.Fatalf("small perturbation dropped correlations: tau=%v rho=%v", tau, rho)
	}
}

func TestTopKOverlap(t *testing.T) {
	a := vecmath.Vec{10, 9, 8, 1, 2}
	b := vecmath.Vec{10, 9, 1, 8, 2}
	ov, err := TopKOverlap(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	// top3(a) = {0,1,2}; top3(b) = {0,1,3} → overlap 2/3.
	if math.Abs(ov-2.0/3.0) > 1e-12 {
		t.Fatalf("overlap = %v, want 2/3", ov)
	}
	// k beyond length clamps and overlaps fully.
	ov, err = TopKOverlap(a, a.Clone(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if ov != 1 {
		t.Fatalf("clamped overlap = %v", ov)
	}
}

func TestValidation(t *testing.T) {
	a := vecmath.Vec{1, 2}
	short := vecmath.Vec{1}
	if _, err := KendallTau(a, short); err == nil {
		t.Error("length mismatch accepted by KendallTau")
	}
	if _, err := Spearman(a, short); err == nil {
		t.Error("length mismatch accepted by Spearman")
	}
	if _, err := TopKOverlap(a, short, 1); err == nil {
		t.Error("length mismatch accepted by TopKOverlap")
	}
	if _, err := KendallTau(short, short); err == nil {
		t.Error("single-element vector accepted")
	}
	if _, err := TopKOverlap(a, a, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCountInversionsAgainstBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := r.Intn(50)
		seq := make([]int32, n)
		for i := range seq {
			seq[i] = int32(r.Intn(20))
		}
		var brute int64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if seq[i] > seq[j] {
					brute++
				}
			}
		}
		cp := make([]int32, n)
		copy(cp, seq)
		return countInversions(cp) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKendallTau10k(b *testing.B) {
	r := xrand.New(1)
	x := randVec(r, 10000)
	y := randVec(r, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KendallTau(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
