// Package rankcmp compares two rankings of the same page set. The
// paper's metric is the L1 relative error against centralized
// PageRank, but a search engine ultimately cares about ordering: these
// metrics quantify how much of the *ranking* survives approximations
// such as lossy score compression (internal/codec) or early
// termination.
package rankcmp

import (
	"fmt"
	"sort"

	"p2prank/internal/vecmath"
)

// order returns page indices sorted by descending score, ties broken by
// ascending index so every score vector induces a strict total order.
func order(x vecmath.Vec) []int32 {
	idx := make([]int32, len(x))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		//p2plint:allow floateq -- sort tie-break: any strict total order works, exact inequality is deliberate
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] > x[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// KendallTau returns the Kendall τ-a correlation of the orderings
// induced by a and b: 1 for identical orderings, −1 for exactly
// reversed, ≈0 for unrelated. Ties are broken by page index in both
// orderings (consistently, so tied blocks do not register as
// discordance). Runs in O(n log n) by counting inversions with a merge
// sort. Vectors must have equal, non-trivial length.
func KendallTau(a, b vecmath.Vec) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("rankcmp: length mismatch %d != %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("rankcmp: need at least 2 pages, got %d", n)
	}
	// Position of each page in b's ordering.
	posB := make([]int32, n)
	for rank, p := range order(b) {
		posB[p] = int32(rank)
	}
	// Walk a's ordering and collect b-positions; discordant pairs are
	// exactly the inversions of this sequence.
	seq := make([]int32, n)
	for rank, p := range order(a) {
		seq[rank] = posB[p]
	}
	inv := countInversions(seq)
	pairs := int64(n) * int64(n-1) / 2
	return 1 - 4*float64(inv)/(2*float64(pairs)), nil
}

// countInversions counts pairs i<j with seq[i] > seq[j] via merge sort.
func countInversions(seq []int32) int64 {
	buf := make([]int32, len(seq))
	return mergeCount(seq, buf)
}

func mergeCount(s, buf []int32) int64 {
	n := len(s)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(s[:mid], buf[:mid]) + mergeCount(s[mid:], buf[mid:])
	// Merge while counting cross inversions.
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if s[i] <= s[j] {
			buf[k] = s[i]
			i++
		} else {
			buf[k] = s[j]
			j++
			inv += int64(mid - i)
		}
		k++
	}
	copy(buf[k:], s[i:mid])
	copy(buf[k+mid-i:], s[j:])
	copy(s, buf[:n])
	return inv
}

// Spearman returns the Spearman rank correlation: the Pearson
// correlation of the two position vectors (index tie-break, as for
// KendallTau).
func Spearman(a, b vecmath.Vec) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("rankcmp: length mismatch %d != %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("rankcmp: need at least 2 pages, got %d", n)
	}
	posA := make([]float64, n)
	posB := make([]float64, n)
	for rank, p := range order(a) {
		posA[p] = float64(rank)
	}
	for rank, p := range order(b) {
		posB[p] = float64(rank)
	}
	// ρ = 1 − 6Σd²/(n(n²−1)) for distinct ranks.
	var sumD2 float64
	for i := 0; i < n; i++ {
		d := posA[i] - posB[i]
		sumD2 += d * d
	}
	nn := float64(n)
	return 1 - 6*sumD2/(nn*(nn*nn-1)), nil
}

// TopKOverlap returns |top-k(a) ∩ top-k(b)| / k: the fraction of a's
// k highest-ranked pages that also rank in b's top k. k is clamped to
// the vector length.
func TopKOverlap(a, b vecmath.Vec, k int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("rankcmp: length mismatch %d != %d", len(a), len(b))
	}
	if k <= 0 {
		return 0, fmt.Errorf("rankcmp: k = %d, must be positive", k)
	}
	if k > len(a) {
		k = len(a)
	}
	if k == 0 {
		return 0, fmt.Errorf("rankcmp: empty vectors")
	}
	inB := make(map[int32]bool, k)
	for _, p := range order(b)[:k] {
		inB[p] = true
	}
	hit := 0
	for _, p := range order(a)[:k] {
		if inB[p] {
			hit++
		}
	}
	return float64(hit) / float64(k), nil
}
