// Package cliflags gives the p2prank binaries one spelling and one
// parser per shared knob. dprsim and dprnode historically registered
// the common flags independently and drifted (different names, help
// text, and accepted values for the same concept); every shared flag
// now registers through this package, so the two command lines stay
// interchangeable. Old spellings stay accepted for one release through
// Deprecations, which warns when a renamed flag is actually used.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"p2prank/internal/codec"
	"p2prank/internal/dprcore"
	"p2prank/internal/transport"
)

// Algorithm registers the shared -alg flag.
func Algorithm(fs *flag.FlagSet) *string {
	return fs.String("alg", "dpr1", "algorithm: dpr1|dpr2")
}

// ParseAlgorithm maps an -alg value (case-insensitive; empty = DPR1).
func ParseAlgorithm(name string) (dprcore.Algorithm, error) {
	switch strings.ToLower(name) {
	case "", "dpr1":
		return dprcore.DPR1, nil
	case "dpr2":
		return dprcore.DPR2, nil
	}
	return 0, fmt.Errorf("unknown -alg %q (dpr1|dpr2)", name)
}

// Codec registers the shared -codec flag.
func Codec(fs *flag.FlagSet) *string {
	return fs.String("codec", "gob", "wire encoding: gob|plain|delta|quantized-N")
}

// ParseCodec maps a -codec value to a wire codec; nil means the
// default gob framing.
func ParseCodec(name string) (transport.ChunkCodec, error) {
	switch {
	case name == "" || strings.EqualFold(name, "gob"):
		return nil, nil
	case strings.EqualFold(name, "plain"):
		return codec.Plain{}, nil
	case strings.EqualFold(name, "delta"):
		return codec.Delta{}, nil
	case strings.HasPrefix(strings.ToLower(name), "quantized"):
		rest := strings.TrimPrefix(strings.ToLower(name), "quantized")
		rest = strings.TrimLeft(rest, "-:")
		bits := 16
		if rest != "" {
			var err error
			bits, err = strconv.Atoi(rest)
			if err != nil || bits < 4 || bits > 52 {
				return nil, fmt.Errorf("bad -codec %q: quantized bits must be 4..52", name)
			}
		}
		return codec.NewQuantized(uint(bits)), nil
	}
	return nil, fmt.Errorf("unknown -codec %q (gob|plain|delta|quantized-N)", name)
}

// Fault registers the shared -fault flag.
func Fault(fs *flag.FlagSet) *string {
	return fs.String("fault", "",
		"message faults: drop=P[,delay=P][,meandelay=D][,dup=P]"+
			"[,partition=F,pfrom=T,pto=T][,straggle=F,sfactor=D][,fseed=N] (empty = none)")
}

// ParseFault maps a -fault spec — comma-separated key=value pairs with
// keys drop, delay, meandelay, dup, partition, pfrom, pto, straggle,
// sfactor, fseed — onto a dprcore.FaultConfig. The delay mean defaults
// to 5 time units when delays are enabled without an explicit
// meandelay, and the straggler hold-back likewise defaults to 5 units;
// a partition without an explicit pto never heals. Times are in the
// runtime's units (virtual units in-sim; the live CLI bridges small
// values to milliseconds, see dprnode).
func ParseFault(spec string) (dprcore.FaultConfig, error) {
	var fc dprcore.FaultConfig
	if spec == "" {
		return fc, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return fc, fmt.Errorf("bad -fault entry %q (want key=value)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return fc, fmt.Errorf("bad -fault value %q: %w", part, err)
		}
		switch strings.ToLower(kv[0]) {
		case "drop":
			fc.DropProb = v
		case "delay":
			fc.DelayProb = v
		case "meandelay", "mean-delay":
			fc.MeanDelay = v
		case "dup":
			fc.DupProb = v
		case "partition":
			fc.PartitionFrac = v
		case "pfrom", "partition-from":
			fc.PartitionFrom = v
		case "pto", "partition-to":
			fc.PartitionTo = v
		case "straggle":
			fc.StraggleFrac = v
		case "sfactor", "straggle-factor":
			fc.StraggleFactor = v
		case "fseed", "fault-seed":
			fc.Seed = uint64(v)
		default:
			return fc, fmt.Errorf("unknown -fault key %q (drop|delay|meandelay|dup|partition|pfrom|pto|straggle|sfactor|fseed)", kv[0])
		}
	}
	if fc.DelayProb > 0 && fc.MeanDelay == 0 {
		fc.MeanDelay = 5
	}
	if fc.PartitionFrac > 0 && fc.PartitionTo == 0 {
		fc.PartitionTo = math.MaxFloat64
	}
	if fc.StraggleFrac > 0 && fc.StraggleFactor == 0 {
		fc.StraggleFactor = 5
	}
	if err := fc.Validate(); err != nil {
		return fc, fmt.Errorf("bad -fault %q: %w", spec, err)
	}
	return fc, nil
}

// Reliable registers the shared -reliable flag.
func Reliable(fs *flag.FlagSet) *string {
	return fs.String("reliable", "",
		"reliable delivery: timeout=D[,backoff=F][,maxtimeout=D][,jitter=F][,attempts=N][,cooldown=D] (empty = off)")
}

// ParseReliable maps a -reliable spec — comma-separated key=value pairs
// with keys timeout, backoff, maxtimeout, jitter, attempts, cooldown —
// onto a dprcore.ReliableConfig. A bare number is shorthand for
// timeout=N. Durations are in the runtime's time units (virtual units
// in-sim, nanoseconds live).
func ParseReliable(spec string) (dprcore.ReliableConfig, error) {
	var rc dprcore.ReliableConfig
	if spec == "" {
		return rc, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		kv := strings.SplitN(part, "=", 2)
		if len(kv) == 1 {
			v, err := strconv.ParseFloat(kv[0], 64)
			if err != nil {
				return rc, fmt.Errorf("bad -reliable entry %q (want key=value or a bare timeout)", part)
			}
			rc.Timeout = v
			continue
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return rc, fmt.Errorf("bad -reliable value %q: %w", part, err)
		}
		switch strings.ToLower(kv[0]) {
		case "timeout":
			rc.Timeout = v
		case "backoff":
			rc.Backoff = v
		case "maxtimeout", "max-timeout":
			rc.MaxTimeout = v
		case "jitter":
			rc.Jitter = v
		case "attempts", "maxattempts":
			rc.MaxAttempts = int(v)
		case "cooldown":
			rc.Cooldown = v
		default:
			return rc, fmt.Errorf("unknown -reliable key %q (timeout|backoff|maxtimeout|jitter|attempts|cooldown)", kv[0])
		}
	}
	if err := rc.Validate(); err != nil {
		return rc, fmt.Errorf("bad -reliable %q: %w", spec, err)
	}
	return rc, nil
}

// Transport registers the shared -transport flag.
func Transport(fs *flag.FlagSet) *string {
	return fs.String("transport", "direct", "score transmission: direct|indirect (§4.4)")
}

// ParseTransport maps a -transport value (empty = direct) and reports
// whether indirect transmission was selected.
func ParseTransport(name string) (indirect bool, err error) {
	switch strings.ToLower(name) {
	case "", "direct":
		return false, nil
	case "indirect":
		return true, nil
	}
	return false, fmt.Errorf("unknown -transport %q (direct|indirect)", name)
}

// Seed registers the shared -seed flag.
func Seed(fs *flag.FlagSet) *uint64 {
	return fs.Uint64("seed", 1, "deterministic seed")
}

// ServeAddr registers the shared -serve flag: the query tier's HTTP
// listen address (empty = serving off).
func ServeAddr(fs *flag.FlagSet) *string {
	return fs.String("serve", "", "serve the query API on addr:port (empty = off)")
}

// QPS registers the shared -qps flag: the load generator's target
// query rate (0 = unthrottled).
func QPS(fs *flag.FlagSet) *int {
	return fs.Int("qps", 0, "target queries per second for the load generator (0 = unthrottled)")
}

// TopK registers the shared -topk flag: results returned per query.
func TopK(fs *flag.FlagSet) *int {
	return fs.Int("topk", 10, "results per query")
}

// Deprecations keeps renamed flags alive for one release: old
// spellings register through it, and Warn prints a pointer at the new
// spelling for each one the command line actually set.
type Deprecations struct {
	fs   *flag.FlagSet
	repl map[string]string
}

// NewDeprecations builds a deprecation registry for fs.
func NewDeprecations(fs *flag.FlagSet) *Deprecations {
	return &Deprecations{fs: fs, repl: make(map[string]string)}
}

// Bool registers a deprecated boolean spelling whose replacement is
// named by repl (e.g. "-transport indirect").
func (d *Deprecations) Bool(name, usage, repl string) *bool {
	d.repl[name] = repl
	return d.fs.Bool(name, false, usage+" (deprecated: use "+repl+")")
}

// Warn writes one warning per deprecated flag the parsed command line
// set. Call it after flag parsing.
func (d *Deprecations) Warn(w io.Writer) {
	d.fs.Visit(func(f *flag.Flag) {
		if repl, ok := d.repl[f.Name]; ok {
			fmt.Fprintf(w, "warning: -%s is deprecated and will be removed; use %s\n", f.Name, repl)
		}
	})
}
