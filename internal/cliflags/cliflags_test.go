package cliflags

import (
	"flag"
	"io"
	"strings"
	"testing"

	"p2prank/internal/codec"
	"p2prank/internal/dprcore"
)

func TestParseAlgorithm(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want dprcore.Algorithm
	}{
		{"", dprcore.DPR1},
		{"dpr1", dprcore.DPR1},
		{"DPR1", dprcore.DPR1},
		{"dpr2", dprcore.DPR2},
		{"Dpr2", dprcore.DPR2},
	} {
		got, err := ParseAlgorithm(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseAlgorithm("dpr3"); err == nil {
		t.Error("dpr3 accepted")
	}
}

func TestParseCodec(t *testing.T) {
	if c, err := ParseCodec(""); err != nil || c != nil {
		t.Errorf("empty codec = %v, %v; want nil default", c, err)
	}
	if c, err := ParseCodec("GOB"); err != nil || c != nil {
		t.Errorf("gob codec = %v, %v; want nil default", c, err)
	}
	if c, err := ParseCodec("plain"); err != nil {
		t.Errorf("plain: %v", err)
	} else if _, ok := c.(codec.Plain); !ok {
		t.Errorf("plain parsed as %T", c)
	}
	if c, err := ParseCodec("delta"); err != nil {
		t.Errorf("delta: %v", err)
	} else if _, ok := c.(codec.Delta); !ok {
		t.Errorf("delta parsed as %T", c)
	}
	for _, in := range []string{"quantized", "quantized-16", "quantized:8", "Quantized-4"} {
		if c, err := ParseCodec(in); err != nil || c == nil {
			t.Errorf("ParseCodec(%q) = %v, %v; want quantized codec", in, c, err)
		}
	}
	for _, in := range []string{"quantized-3", "quantized-53", "quantized-x", "zstd"} {
		if _, err := ParseCodec(in); err == nil {
			t.Errorf("ParseCodec(%q) accepted", in)
		}
	}
}

func TestParseFault(t *testing.T) {
	fc, err := ParseFault("")
	if err != nil || fc.Enabled() {
		t.Fatalf("empty spec = %+v, %v; want disabled", fc, err)
	}
	fc, err = ParseFault("drop=0.1,delay=0.2,meandelay=3,dup=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if fc.DropProb != 0.1 || fc.DelayProb != 0.2 || fc.MeanDelay != 3 || fc.DupProb != 0.05 {
		t.Fatalf("parsed %+v", fc)
	}
	// Delays without an explicit mean get the documented default.
	fc, err = ParseFault("delay=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if fc.MeanDelay != 5 {
		t.Fatalf("MeanDelay = %v; want default 5", fc.MeanDelay)
	}
	for _, bad := range []string{"drop", "drop=x", "jitter=1", "drop=2"} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted", bad)
		}
	}
}

func TestParseReliable(t *testing.T) {
	rc, err := ParseReliable("")
	if err != nil || rc.Enabled() {
		t.Fatalf("empty spec = %+v, %v; want disabled", rc, err)
	}
	rc, err = ParseReliable("timeout=10,backoff=2,maxtimeout=80,jitter=0.2,attempts=4,cooldown=100")
	if err != nil {
		t.Fatal(err)
	}
	if rc.Timeout != 10 || rc.Backoff != 2 || rc.MaxTimeout != 80 ||
		rc.Jitter != 0.2 || rc.MaxAttempts != 4 || rc.Cooldown != 100 {
		t.Fatalf("parsed %+v", rc)
	}
	// A bare number is shorthand for timeout=N.
	rc, err = ParseReliable("25")
	if err != nil || rc.Timeout != 25 {
		t.Fatalf("bare timeout = %+v, %v; want Timeout 25", rc, err)
	}
	for _, bad := range []string{"timeout=x", "speed=1", "timeout=-1", "timeout=1,backoff=0.5"} {
		if _, err := ParseReliable(bad); err == nil {
			t.Errorf("ParseReliable(%q) accepted", bad)
		}
	}
}

func TestParseTransport(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want bool
	}{{"", false}, {"direct", false}, {"Direct", false}, {"indirect", true}, {"INDIRECT", true}} {
		got, err := ParseTransport(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseTransport(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Error("bad transport accepted")
	}
}

// TestSharedSpellings pins the contract of the package: both binaries
// register the same flag names with the same defaults.
func TestSharedSpellings(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	Algorithm(fs)
	Codec(fs)
	Fault(fs)
	Reliable(fs)
	Transport(fs)
	Seed(fs)
	ServeAddr(fs)
	QPS(fs)
	TopK(fs)
	for name, def := range map[string]string{
		"alg": "dpr1", "codec": "gob", "fault": "", "reliable": "", "transport": "direct", "seed": "1",
		"serve": "", "qps": "0", "topk": "10",
	} {
		f := fs.Lookup(name)
		if f == nil {
			t.Errorf("flag -%s not registered", name)
			continue
		}
		if f.DefValue != def {
			t.Errorf("-%s default = %q; want %q", name, f.DefValue, def)
		}
	}
}

// The -indirect grace window granted in PR 4 is over and no binary
// registers a deprecated spelling anymore; this pins the generic
// warning path of the Deprecations helper for the next rename.
func TestDeprecationsWarnOnlyWhenSet(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	d := NewDeprecations(fs)
	old := d.Bool("oldflag", "use the old behavior", "-newflag value")

	var sb strings.Builder
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	d.Warn(&sb)
	if sb.Len() != 0 {
		t.Fatalf("warned without the flag set: %q", sb.String())
	}

	fs2 := flag.NewFlagSet("x", flag.ContinueOnError)
	fs2.SetOutput(io.Discard)
	d2 := NewDeprecations(fs2)
	old2 := d2.Bool("oldflag", "use the old behavior", "-newflag value")
	if err := fs2.Parse([]string{"-oldflag"}); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	d2.Warn(&sb)
	if !strings.Contains(sb.String(), "-oldflag is deprecated") ||
		!strings.Contains(sb.String(), "-newflag value") {
		t.Fatalf("warning missing or wrong: %q", sb.String())
	}
	if !*old2 || *old {
		t.Fatalf("deprecated flag values: set=%v unset=%v", *old2, *old)
	}
	if !strings.Contains(fs2.Lookup("oldflag").Usage, "(deprecated: use -newflag value)") {
		t.Fatalf("usage missing deprecation note: %q", fs2.Lookup("oldflag").Usage)
	}
}
