package simnet

import (
	"fmt"

	"p2prank/internal/xrand"
)

// NodeAddr is a dense index identifying a simulated host.
type NodeAddr int32

// Message is what a handler receives: the payload plus the wire size
// that was charged to the byte counters.
type Message struct {
	From, To NodeAddr
	Payload  any
	Size     int64
}

// Handler consumes messages delivered to a node.
type Handler func(Message)

// NetConfig parameterizes the network layer.
type NetConfig struct {
	// MinLatency and MaxLatency bound the uniform per-message delivery
	// latency, in virtual time units.
	MinLatency, MaxLatency float64
	// DropProb is the probability that any message is silently lost in
	// transit, independent of the application-level loss the rankers
	// inject.
	DropProb float64
	// NodeBandwidth is each node's upstream bottleneck in bytes per
	// virtual time unit (the paper's §4.5 constraint 4.7). Messages
	// serialize through the sender's uplink: each occupies it for
	// size/NodeBandwidth time units and queues behind earlier sends.
	// 0 means unlimited.
	NodeBandwidth float64
	// BatchDelivery coalesces consecutive same-instant deliveries to one
	// destination into a single pooled event instead of one event per
	// message — the difference between O(messages) and O(instants)
	// events at 10⁵ nodes with fixed latency. Per-destination FIFO order
	// is preserved exactly; what changes is the interleaving of
	// same-instant deliveries to *different* destinations (a batch
	// drains contiguously at its first message's queue position). Runs
	// stay deterministic, but event order — and therefore determinism
	// fingerprints — differs from the unbatched schedule, so this is
	// opt-in: off (the default) is byte-identical to the classic
	// one-event-per-message path. The scale experiments switch it on.
	BatchDelivery bool
}

// DefaultNetConfig returns a mildly jittered, lossless network.
func DefaultNetConfig() NetConfig {
	return NetConfig{MinLatency: 0.05, MaxLatency: 0.15}
}

func (c NetConfig) validate() error {
	switch {
	case c.MinLatency < 0:
		return fmt.Errorf("simnet: negative MinLatency %v", c.MinLatency)
	case c.MaxLatency < c.MinLatency:
		return fmt.Errorf("simnet: MaxLatency %v below MinLatency %v", c.MaxLatency, c.MinLatency)
	case c.DropProb < 0 || c.DropProb > 1:
		return fmt.Errorf("simnet: DropProb %v outside [0,1]", c.DropProb)
	case c.NodeBandwidth < 0:
		return fmt.Errorf("simnet: negative NodeBandwidth %v", c.NodeBandwidth)
	}
	return nil
}

// Stats counts traffic. All fields are cumulative.
type Stats struct {
	MessagesSent      int64
	MessagesDelivered int64
	MessagesDropped   int64
	BytesSent         int64
	BytesDelivered    int64
}

type node struct {
	handler Handler
	down    bool
	in, out Stats
	// uplinkFree is the virtual time the node's uplink finishes its
	// queued transmissions (bandwidth-limited networks only).
	uplinkFree float64
	// open is the node's most recent still-pending delivery batch
	// (BatchDelivery mode): a send whose delivery instant matches joins
	// it instead of scheduling a new event.
	open *deliveryBatch
}

// delivery is an in-flight message plus its destination, pooled so the
// send path allocates nothing per message.
type delivery struct {
	m   Message
	dst *node
}

// deliveryBatch is a pooled batch of same-instant messages to one
// destination (BatchDelivery mode). It rides a single scheduled event;
// messages append in send order, so per-destination FIFO holds.
type deliveryBatch struct {
	at   float64
	dst  *node
	msgs []Message
}

// Network delivers messages between registered nodes with configurable
// latency and loss, charging every send to byte and message counters.
type Network struct {
	sim   *Simulator
	cfg   NetConfig
	rng   *xrand.Rand
	nodes []*node
	total Stats

	// deliverFn is the one function value every in-flight message
	// shares (see AtArg); free recycles delivery structs. In
	// BatchDelivery mode batchFn/batchFree play the same roles for
	// deliveryBatch.
	deliverFn func(any)
	free      []*delivery
	batchFn   func(any)
	batchFree []*deliveryBatch
}

// NewNetwork builds a Network on sim. The network forks its own random
// stream from the simulator's.
func NewNetwork(sim *Simulator, cfg NetConfig) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{sim: sim, cfg: cfg, rng: sim.Rand().Fork()}
	n.deliverFn = n.deliver
	n.batchFn = n.deliverBatch
	return n, nil
}

// Sim returns the simulator the network runs on.
func (n *Network) Sim() *Simulator { return n.sim }

// AddNode registers a host with the given message handler and returns
// its address.
func (n *Network) AddNode(h Handler) NodeAddr {
	if h == nil {
		panic("simnet: AddNode with nil handler")
	}
	n.nodes = append(n.nodes, &node{handler: h})
	return NodeAddr(len(n.nodes) - 1)
}

// NumNodes returns the number of registered hosts.
func (n *Network) NumNodes() int { return len(n.nodes) }

// SetDown marks a node as failed (true) or recovered (false). Messages
// to or from a failed node are dropped.
func (n *Network) SetDown(a NodeAddr, down bool) {
	n.node(a).down = down
}

// IsDown reports whether a node is failed.
func (n *Network) IsDown(a NodeAddr) bool { return n.node(a).down }

func (n *Network) node(a NodeAddr) *node {
	if a < 0 || int(a) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: invalid node address %d", a))
	}
	return n.nodes[a]
}

// Send queues a message of the given wire size from one node to
// another. It returns false if the message was dropped at send time
// (source or destination down, or random loss); delivery itself is
// asynchronous. Sending charges the byte counters whether or not the
// message survives, mirroring a real sender's upstream usage.
func (n *Network) Send(from, to NodeAddr, payload any, size int64) bool {
	if size < 0 {
		panic(fmt.Sprintf("simnet: negative message size %d", size))
	}
	src, dst := n.node(from), n.node(to)
	src.out.MessagesSent++
	src.out.BytesSent += size
	n.total.MessagesSent++
	n.total.BytesSent += size
	if src.down || dst.down || (n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb) {
		src.out.MessagesDropped++
		n.total.MessagesDropped++
		return false
	}
	lat := n.cfg.MinLatency
	if n.cfg.MaxLatency > n.cfg.MinLatency {
		lat += n.rng.Float64() * (n.cfg.MaxLatency - n.cfg.MinLatency)
	}
	if n.cfg.NodeBandwidth > 0 {
		// Serialize through the sender's uplink: wait for queued
		// transmissions, then occupy the link for size/bandwidth.
		now := n.sim.Now()
		if src.uplinkFree < now {
			src.uplinkFree = now
		}
		src.uplinkFree += float64(size) / n.cfg.NodeBandwidth
		lat += src.uplinkFree - now
	}
	if n.cfg.BatchDelivery {
		n.enqueueBatched(from, to, payload, size, dst, lat)
		return true
	}
	var d *delivery
	if k := len(n.free); k > 0 {
		d = n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
	} else {
		d = &delivery{}
	}
	d.m = Message{From: from, To: to, Payload: payload, Size: size}
	d.dst = dst
	n.sim.AfterArg(lat, n.deliverFn, d)
	return true
}

// enqueueBatched joins the destination's open batch when the delivery
// instant matches, and otherwise opens a new batch on a fresh event.
// A batch fires at the queue position of its first message; later
// same-instant joiners ride along instead of scheduling.
//
//p2plint:hotpath -- per-message scheduling path in BatchDelivery mode
func (n *Network) enqueueBatched(from, to NodeAddr, payload any, size int64, dst *node, lat float64) {
	at := n.sim.Now() + lat
	m := Message{From: from, To: to, Payload: payload, Size: size}
	if b := dst.open; b != nil && b.at == at {
		b.msgs = append(b.msgs, m)
		return
	}
	var b *deliveryBatch
	if k := len(n.batchFree); k > 0 {
		b = n.batchFree[k-1]
		n.batchFree[k-1] = nil
		n.batchFree = n.batchFree[:k-1]
	} else {
		//p2plint:allow hotalloc -- batch-pool refill; steady state recycles fired batches
		b = &deliveryBatch{}
	}
	b.at, b.dst = at, dst
	b.msgs = append(b.msgs[:0], m)
	dst.open = b
	n.sim.AtArg(at, n.batchFn, b)
}

// deliverBatch completes a batch of same-instant messages to one
// destination and recycles the batch.
func (n *Network) deliverBatch(a any) {
	b := a.(*deliveryBatch)
	dst := b.dst
	if dst.open == b {
		dst.open = nil
	}
	for i := range b.msgs {
		m := b.msgs[i]
		b.msgs[i] = Message{}
		// Re-check liveness at delivery time, exactly like deliver.
		if dst.down {
			n.total.MessagesDropped++
			continue
		}
		dst.in.MessagesDelivered++
		dst.in.BytesDelivered += m.Size
		n.total.MessagesDelivered++
		n.total.BytesDelivered += m.Size
		dst.handler(m)
	}
	b.msgs = b.msgs[:0]
	b.dst = nil
	n.batchFree = append(n.batchFree, b)
}

// deliver completes an in-flight message (the AtArg callback) and
// recycles its delivery struct.
func (n *Network) deliver(a any) {
	d := a.(*delivery)
	m, dst := d.m, d.dst
	*d = delivery{}
	n.free = append(n.free, d)
	// Re-check liveness at delivery time: the destination may have
	// failed while the message was in flight.
	if dst.down {
		n.total.MessagesDropped++
		return
	}
	dst.in.MessagesDelivered++
	dst.in.BytesDelivered += m.Size
	n.total.MessagesDelivered++
	n.total.BytesDelivered += m.Size
	dst.handler(m)
}

// TotalStats returns network-wide counters.
func (n *Network) TotalStats() Stats { return n.total }

// NodeSent returns the send-side counters of node a.
func (n *Network) NodeSent(a NodeAddr) Stats { return n.node(a).out }

// NodeReceived returns the delivery-side counters of node a.
func (n *Network) NodeReceived(a NodeAddr) Stats { return n.node(a).in }

// ResetStats zeroes every counter, keeping topology and liveness. The
// experiment harness uses it to measure a steady-state window.
func (n *Network) ResetStats() {
	n.total = Stats{}
	for _, nd := range n.nodes {
		nd.in, nd.out = Stats{}, Stats{}
	}
}
