package simnet

import (
	"fmt"

	"p2prank/internal/xrand"
)

// NodeAddr is a dense index identifying a simulated host.
type NodeAddr int32

// Message is what a handler receives: the payload plus the wire size
// that was charged to the byte counters.
type Message struct {
	From, To NodeAddr
	Payload  any
	Size     int64
}

// Handler consumes messages delivered to a node.
type Handler func(Message)

// NetConfig parameterizes the network layer.
type NetConfig struct {
	// MinLatency and MaxLatency bound the uniform per-message delivery
	// latency, in virtual time units.
	MinLatency, MaxLatency float64
	// DropProb is the probability that any message is silently lost in
	// transit, independent of the application-level loss the rankers
	// inject.
	DropProb float64
	// NodeBandwidth is each node's upstream bottleneck in bytes per
	// virtual time unit (the paper's §4.5 constraint 4.7). Messages
	// serialize through the sender's uplink: each occupies it for
	// size/NodeBandwidth time units and queues behind earlier sends.
	// 0 means unlimited.
	NodeBandwidth float64
}

// DefaultNetConfig returns a mildly jittered, lossless network.
func DefaultNetConfig() NetConfig {
	return NetConfig{MinLatency: 0.05, MaxLatency: 0.15}
}

func (c NetConfig) validate() error {
	switch {
	case c.MinLatency < 0:
		return fmt.Errorf("simnet: negative MinLatency %v", c.MinLatency)
	case c.MaxLatency < c.MinLatency:
		return fmt.Errorf("simnet: MaxLatency %v below MinLatency %v", c.MaxLatency, c.MinLatency)
	case c.DropProb < 0 || c.DropProb > 1:
		return fmt.Errorf("simnet: DropProb %v outside [0,1]", c.DropProb)
	case c.NodeBandwidth < 0:
		return fmt.Errorf("simnet: negative NodeBandwidth %v", c.NodeBandwidth)
	}
	return nil
}

// Stats counts traffic. All fields are cumulative.
type Stats struct {
	MessagesSent      int64
	MessagesDelivered int64
	MessagesDropped   int64
	BytesSent         int64
	BytesDelivered    int64
}

type node struct {
	handler Handler
	down    bool
	in, out Stats
	// uplinkFree is the virtual time the node's uplink finishes its
	// queued transmissions (bandwidth-limited networks only).
	uplinkFree float64
}

// delivery is an in-flight message plus its destination, pooled so the
// send path allocates nothing per message.
type delivery struct {
	m   Message
	dst *node
}

// Network delivers messages between registered nodes with configurable
// latency and loss, charging every send to byte and message counters.
type Network struct {
	sim   *Simulator
	cfg   NetConfig
	rng   *xrand.Rand
	nodes []*node
	total Stats

	// deliverFn is the one function value every in-flight message
	// shares (see AtArg); free recycles delivery structs.
	deliverFn func(any)
	free      []*delivery
}

// NewNetwork builds a Network on sim. The network forks its own random
// stream from the simulator's.
func NewNetwork(sim *Simulator, cfg NetConfig) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{sim: sim, cfg: cfg, rng: sim.Rand().Fork()}
	n.deliverFn = n.deliver
	return n, nil
}

// Sim returns the simulator the network runs on.
func (n *Network) Sim() *Simulator { return n.sim }

// AddNode registers a host with the given message handler and returns
// its address.
func (n *Network) AddNode(h Handler) NodeAddr {
	if h == nil {
		panic("simnet: AddNode with nil handler")
	}
	n.nodes = append(n.nodes, &node{handler: h})
	return NodeAddr(len(n.nodes) - 1)
}

// NumNodes returns the number of registered hosts.
func (n *Network) NumNodes() int { return len(n.nodes) }

// SetDown marks a node as failed (true) or recovered (false). Messages
// to or from a failed node are dropped.
func (n *Network) SetDown(a NodeAddr, down bool) {
	n.node(a).down = down
}

// IsDown reports whether a node is failed.
func (n *Network) IsDown(a NodeAddr) bool { return n.node(a).down }

func (n *Network) node(a NodeAddr) *node {
	if a < 0 || int(a) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: invalid node address %d", a))
	}
	return n.nodes[a]
}

// Send queues a message of the given wire size from one node to
// another. It returns false if the message was dropped at send time
// (source or destination down, or random loss); delivery itself is
// asynchronous. Sending charges the byte counters whether or not the
// message survives, mirroring a real sender's upstream usage.
func (n *Network) Send(from, to NodeAddr, payload any, size int64) bool {
	if size < 0 {
		panic(fmt.Sprintf("simnet: negative message size %d", size))
	}
	src, dst := n.node(from), n.node(to)
	src.out.MessagesSent++
	src.out.BytesSent += size
	n.total.MessagesSent++
	n.total.BytesSent += size
	if src.down || dst.down || (n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb) {
		src.out.MessagesDropped++
		n.total.MessagesDropped++
		return false
	}
	lat := n.cfg.MinLatency
	if n.cfg.MaxLatency > n.cfg.MinLatency {
		lat += n.rng.Float64() * (n.cfg.MaxLatency - n.cfg.MinLatency)
	}
	if n.cfg.NodeBandwidth > 0 {
		// Serialize through the sender's uplink: wait for queued
		// transmissions, then occupy the link for size/bandwidth.
		now := n.sim.Now()
		if src.uplinkFree < now {
			src.uplinkFree = now
		}
		src.uplinkFree += float64(size) / n.cfg.NodeBandwidth
		lat += src.uplinkFree - now
	}
	var d *delivery
	if k := len(n.free); k > 0 {
		d = n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
	} else {
		d = &delivery{}
	}
	d.m = Message{From: from, To: to, Payload: payload, Size: size}
	d.dst = dst
	n.sim.AfterArg(lat, n.deliverFn, d)
	return true
}

// deliver completes an in-flight message (the AtArg callback) and
// recycles its delivery struct.
func (n *Network) deliver(a any) {
	d := a.(*delivery)
	m, dst := d.m, d.dst
	*d = delivery{}
	n.free = append(n.free, d)
	// Re-check liveness at delivery time: the destination may have
	// failed while the message was in flight.
	if dst.down {
		n.total.MessagesDropped++
		return
	}
	dst.in.MessagesDelivered++
	dst.in.BytesDelivered += m.Size
	n.total.MessagesDelivered++
	n.total.BytesDelivered += m.Size
	dst.handler(m)
}

// TotalStats returns network-wide counters.
func (n *Network) TotalStats() Stats { return n.total }

// NodeSent returns the send-side counters of node a.
func (n *Network) NodeSent(a NodeAddr) Stats { return n.node(a).out }

// NodeReceived returns the delivery-side counters of node a.
func (n *Network) NodeReceived(a NodeAddr) Stats { return n.node(a).in }

// ResetStats zeroes every counter, keeping topology and liveness. The
// experiment harness uses it to measure a steady-state window.
func (n *Network) ResetStats() {
	n.total = Stats{}
	for _, nd := range n.nodes {
		nd.in, nd.out = Stats{}, Stats{}
	}
}
