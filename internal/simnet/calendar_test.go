package simnet

import (
	"testing"

	"p2prank/internal/xrand"
)

// refQueue is the pre-calendar-queue scheduler — one global binary heap —
// kept as the reference implementation. The (at, seq) pair is a strict
// total order, so the calendar queue must pop in exactly this order no
// matter how its window, width, or bucket count evolve.
type refQueue struct{ h eventHeap }

func (r *refQueue) push(e *event) { r.h.push(e) }
func (r *refQueue) pop() *event {
	if len(r.h) == 0 {
		return nil
	}
	return r.h.pop()
}

// TestCalendarMatchesHeapOrder drives the calendar queue and the old
// global heap through the same seeded random workload — time ties,
// far-future overflow events, interleaved pushes and pops that force
// migrate, grow-rebuild, and shrink-rebuild — and requires identical pop
// order throughout.
func TestCalendarMatchesHeapOrder(t *testing.T) {
	rng := xrand.New(7)
	var cq calendarQueue
	var ref refQueue
	var seq uint64
	now, lastAt := 0.0, 0.0
	mk := func(at float64) (*event, *event) {
		seq++
		return &event{at: at, seq: seq}, &event{at: at, seq: seq}
	}
	push := func(at float64) {
		if at < now {
			at = now // the Simulator forbids scheduling in the past
		}
		a, b := mk(at)
		cq.push(a)
		ref.push(b)
		lastAt = at
	}
	popBoth := func() bool {
		a, b := cq.pop(), ref.pop()
		if (a == nil) != (b == nil) {
			t.Fatalf("queue emptiness diverged: calendar=%v heap=%v", a, b)
		}
		if a == nil {
			return false
		}
		if a.at != b.at || a.seq != b.seq {
			t.Fatalf("pop diverged: calendar (at=%v seq=%d) vs heap (at=%v seq=%d)",
				a.at, a.seq, b.at, b.seq)
		}
		if a.at < now {
			t.Fatalf("time went backwards: %v after %v", a.at, now)
		}
		now = a.at
		return true
	}

	for round := 0; round < 200; round++ {
		// A burst of pushes: mostly near-future, some exact ties with the
		// previous event, some far-future (overflow), occasionally enough
		// volume to trigger a grow-rebuild.
		burst := 1 + rng.Intn(200)
		if round%17 == 0 {
			burst += 8000 // outgrow 4×wheelMinBuckets: grow path
		}
		for i := 0; i < burst; i++ {
			switch rng.Intn(10) {
			case 0:
				push(lastAt) // exact tie: seq must break it
			case 1:
				push(now + 1e4 + rng.Float64()*1e4) // beyond the window
			default:
				push(now + rng.Float64()*2)
			}
		}
		// Drain a random fraction; draining far enough forces migrate
		// (wheel empty, overflow populated) and shrink-rebuild.
		drain := rng.Intn(cq.n + 1)
		for i := 0; i < drain; i++ {
			if !popBoth() {
				break
			}
		}
		if cq.n != len(ref.h) {
			t.Fatalf("pending count diverged: calendar=%d heap=%d", cq.n, len(ref.h))
		}
	}
	for popBoth() {
	}
	if cq.n != 0 {
		t.Fatalf("calendar queue reports %d pending after drain", cq.n)
	}
}

// TestCalendarWindowEdge pins the migrate clamp: an overflow event whose
// time lands exactly on (or rounds to) the re-anchored window's edge must
// come back into the wheel, not loop in overflow forever.
func TestCalendarWindowEdge(t *testing.T) {
	var cq calendarQueue
	var seq uint64
	push := func(at float64) {
		seq++
		cq.push(&event{at: at, seq: seq})
	}
	// Anchor at 0, then events spread so far that after draining the
	// wheel, migrate re-anchors with the remaining events straddling the
	// new window edge.
	push(0)
	for i := 0; i < 100; i++ {
		push(1e6 + float64(i)*1e-9) // tight cluster far beyond the window
	}
	var prev float64 = -1
	for i := 0; i < 101; i++ {
		e := cq.pop()
		if e == nil {
			t.Fatalf("queue drained after %d pops, want 101", i)
		}
		if e.at < prev {
			t.Fatalf("pop %d went backwards: %v after %v", i, e.at, prev)
		}
		prev = e.at
	}
	if cq.pop() != nil {
		t.Fatal("queue not empty after draining all events")
	}
}

// TestComputeTimer exercises the recurring-timer path: one pinned event
// re-armed across iterations, never entering the freelist, with the same
// (at, seq) semantics as scheduling fresh AfterCompute events.
func TestComputeTimer(t *testing.T) {
	s := New(1)
	var fired []float64
	var tm *Timer
	n := 0
	tm = s.NewComputeTimer(func() func() {
		return func() {
			fired = append(fired, s.Now())
			if n++; n < 3 {
				tm.Schedule(2)
			}
		}
	})
	tm.Schedule(1)
	s.Run(0)
	want := []float64{1, 3, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if len(s.free) != 0 {
		t.Fatalf("pinned timer event leaked into the freelist (len %d)", len(s.free))
	}
}

// TestTimerInterleavesWithEvents checks a timer obeys the global (at,
// seq) order against ordinary events at the same instant.
func TestTimerInterleavesWithEvents(t *testing.T) {
	s := New(1)
	var order []string
	s.At(5, func() { order = append(order, "a") })
	tm := s.NewComputeTimer(func() func() {
		return func() { order = append(order, "timer") }
	})
	tm.Schedule(5) // armed after "a" was scheduled: fires second
	s.At(5, func() { order = append(order, "b") })
	s.Run(0)
	if len(order) != 3 || order[0] != "a" || order[1] != "timer" || order[2] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestTimerReArmWhilePendingPanics(t *testing.T) {
	s := New(1)
	tm := s.NewComputeTimer(func() func() { return nil })
	tm.Schedule(1)
	defer func() {
		if recover() == nil {
			t.Fatal("re-arming a pending timer did not panic")
		}
	}()
	tm.Schedule(2)
}

func TestTimerNegativeDelayPanics(t *testing.T) {
	s := New(1)
	tm := s.NewComputeTimer(func() func() { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("negative timer delay did not panic")
		}
	}()
	tm.Schedule(-1)
}

// TestFreeListCapped verifies a scheduling spike does not pin its
// high-water mark of event structs: the freelist stops growing at
// eventFreeListCap and later frees fall through to the collector.
func TestFreeListCapped(t *testing.T) {
	s := New(1)
	n := eventFreeListCap + 500
	for i := 0; i < n; i++ {
		s.At(1, func() {})
	}
	s.Run(0)
	if len(s.free) > eventFreeListCap {
		t.Fatalf("freelist grew to %d, cap is %d", len(s.free), eventFreeListCap)
	}
}
