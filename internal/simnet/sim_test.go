package simnet

import (
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events reordered: %v", order)
		}
	}
}

func TestAfterNests(t *testing.T) {
	s := New(1)
	var times []float64
	s.After(1, func() {
		times = append(times, s.Now())
		s.After(2, func() {
			times = append(times, s.Now())
		})
	})
	s.Run(0)
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.At(5, func() {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestRunMaxEvents(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		s.At(float64(i), func() { count++ })
	}
	if n := s.Run(4); n != 4 || count != 4 {
		t.Fatalf("Run(4) executed %d events, count=%d", n, count)
	}
	if s.Pending() != 6 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run(0)
	if count != 10 || s.Processed() != 10 {
		t.Fatalf("count=%d processed=%d", count, s.Processed())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(5)
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("now = %v, want 5", s.Now())
	}
	s.Run(0)
	if len(fired) != 4 {
		t.Fatalf("remaining event never fired: %v", fired)
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	s := New(1)
	s.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil into the past did not panic")
		}
	}()
	s.RunUntil(5)
}

func TestSimulatorDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		var times []float64
		var tick func()
		tick = func() {
			times = append(times, s.Now())
			if len(times) < 20 {
				s.After(s.Rand().Float64()*3, tick)
			}
		}
		s.After(0, tick)
		s.Run(0)
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}
