// Package simnet is a deterministic discrete-event simulator with a
// message-passing network layer on top. The distributed-PageRank
// experiments run on it: virtual time stands in for the paper's waiting
// time units (T1, T2), message loss models the paper's send-failure
// probability p, and byte/message counters feed the transmission-cost
// comparison of §4.4.
//
// Determinism: events at equal times fire in scheduling order, and all
// randomness flows from one seed, so an experiment is a pure function of
// its configuration.
package simnet

import (
	"container/heap"
	"fmt"
	"math"

	"p2prank/internal/xrand"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-break so equal-time events fire FIFO
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the event queue. Create one with
// New; it is not safe for concurrent use (the simulation is logically
// single-threaded, which is what makes it reproducible).
type Simulator struct {
	now    float64
	events eventHeap
	seq    uint64
	rng    *xrand.Rand
	ran    uint64
}

// New returns a Simulator whose randomness derives from seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: xrand.New(seed)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Rand returns the simulator's root random stream. Entities that need
// private streams should Fork it at setup time.
func (s *Simulator) Rand() *xrand.Rand { return s.rng }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.ran }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics — it would silently reorder causality.
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simnet: scheduling at non-finite time %v", t))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d time units from now. Negative d panics.
func (s *Simulator) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// step executes the earliest event. It reports false when the queue is
// empty.
func (s *Simulator) step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	s.ran++
	e.fn()
	return true
}

// Run executes events until the queue drains or maxEvents fire
// (0 = unlimited). It returns the number of events executed.
func (s *Simulator) Run(maxEvents uint64) uint64 {
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		if !s.step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps ≤ t, then advances the clock
// to exactly t. Events scheduled later stay queued.
func (s *Simulator) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: RunUntil(%v) before now %v", t, s.now))
	}
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	s.now = t
}
