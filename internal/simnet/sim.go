// Package simnet is a deterministic discrete-event simulator with a
// message-passing network layer on top. The distributed-PageRank
// experiments run on it: virtual time stands in for the paper's waiting
// time units (T1, T2), message loss models the paper's send-failure
// probability p, and byte/message counters feed the transmission-cost
// comparison of §4.4.
//
// Determinism: events at equal times fire in scheduling order, and all
// randomness flows from one seed, so an experiment is a pure function of
// its configuration. Two-phase events (AtCompute) may run their compute
// halves concurrently, but their commit halves — the only halves allowed
// to mutate shared state, draw randomness, or schedule — still fire
// serially in scheduling order, so the executed history is identical to
// the single-threaded one.
package simnet

import (
	"fmt"
	"math"

	"p2prank/internal/par"
	"p2prank/internal/xrand"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-break so equal-time events fire FIFO
	fn  func()
	// argFn/arg are the closure-free form (AtArg): argFn(arg) fires
	// instead of fn. Hot schedulers reuse one function value and a
	// pooled argument rather than allocating a closure per event.
	argFn func(any)
	arg   any
	// compute marks a two-phase event (AtCompute): the compute half may
	// run concurrently with other compute halves at the same instant and
	// returns the commit half to run serially. nil for plain events.
	compute func() func()
}

// eventLess orders events by time, then FIFO by sequence number. The
// (at, seq) pair is a strict total order, so any valid heap pops events
// in exactly this order — the executed history does not depend on the
// heap's internal layout.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled binary min-heap. container/heap would work,
// but its interface indirection (Less/Swap calls, any boxing in
// Push/Pop) is measurable on the simulator's hottest path.
type eventHeap []*event

func (h *eventHeap) push(e *event) {
	q := append(*h, e)
	*h = q
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !eventLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventLess(q[r], q[c]) {
			c = r
		}
		if !eventLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return e
}

// Simulator owns the virtual clock and the event queue. Create one with
// New; its methods must be called from one goroutine (the simulation is
// logically single-threaded, which is what makes it reproducible — the
// compute halves of two-phase events are the sole exception, and they
// are barred from touching the simulator).
type Simulator struct {
	now    float64
	events eventHeap
	seq    uint64
	rng    *xrand.Rand
	ran    uint64

	// batch and commits are scratch for step's compute-phase batching,
	// and free recycles executed event structs; together they make
	// steady-state stepping allocation-free.
	batch   []*event
	commits []func()
	free    []*event
}

// newEvent pops a recycled event or allocates one.
func (s *Simulator) newEvent() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	//p2plint:allow hotalloc -- freelist refill; steady state recycles executed events
	return &event{}
}

// freeEvent returns an executed event to the freelist.
func (s *Simulator) freeEvent(e *event) {
	*e = event{}
	s.free = append(s.free, e)
}

// New returns a Simulator whose randomness derives from seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: xrand.New(seed)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Rand returns the simulator's root random stream. Entities that need
// private streams should Fork it at setup time.
func (s *Simulator) Rand() *xrand.Rand { return s.rng }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.ran }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics — it would silently reorder causality.
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simnet: scheduling at non-finite time %v", t))
	}
	s.seq++
	e := s.newEvent()
	e.at, e.seq, e.fn = t, s.seq, fn
	s.events.push(e)
}

// After schedules fn d time units from now. Negative d panics.
func (s *Simulator) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) at absolute virtual time t. It is the
// allocation-free sibling of At for hot schedulers (the network's
// delivery path): the caller keeps one long-lived fn and pools its arg
// values, so nothing escapes per event.
//
//p2plint:hotpath -- per-message scheduling path of the simulated network
func (s *Simulator) AtArg(t float64, fn func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simnet: scheduling at non-finite time %v", t))
	}
	s.seq++
	e := s.newEvent()
	e.at, e.seq, e.argFn, e.arg = t, s.seq, fn, arg
	s.events.push(e)
}

// AfterArg schedules fn(arg) d time units from now; see AtArg. Negative
// d panics.
func (s *Simulator) AfterArg(d float64, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", d))
	}
	s.AtArg(s.now+d, fn, arg)
}

// AtCompute schedules a two-phase event at absolute virtual time t.
// When it fires, compute runs first — possibly concurrently with the
// compute halves of other two-phase events scheduled at the same
// instant — and returns the commit half (nil for none), which runs on
// the simulation goroutine in scheduling order.
//
// The contract that keeps this deterministic: compute must only read
// state no concurrent compute writes and write state private to its
// entity. Everything else — sends, shared mutation, randomness,
// scheduling, reading the clock — belongs in the commit. Because new
// events always receive later sequence numbers than the batch being
// executed, no commit can inject work between two batched computes.
func (s *Simulator) AtCompute(t float64, compute func() func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simnet: scheduling at non-finite time %v", t))
	}
	s.seq++
	e := s.newEvent()
	e.at, e.seq, e.compute = t, s.seq, compute
	s.events.push(e)
}

// AfterCompute schedules a two-phase event d time units from now; see
// AtCompute. Negative d panics.
func (s *Simulator) AfterCompute(d float64, compute func() func()) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", d))
	}
	s.AtCompute(s.now+d, compute)
}

// step executes the earliest event, batching a contiguous same-instant
// run of two-phase events into one parallel compute phase. It returns
// the number of events executed (0 when the queue is empty); budget > 0
// caps the batch size.
//
//p2plint:hotpath -- event dispatch loop; every simulated message passes through here
func (s *Simulator) step(budget int) int {
	if len(s.events) == 0 {
		return 0
	}
	e := s.events.pop()
	s.now = e.at
	if e.compute == nil {
		s.ran++
		fn, argFn, arg := e.fn, e.argFn, e.arg
		s.freeEvent(e)
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		return 1
	}
	// Gather the run of two-phase events at this exact instant. A plain
	// event in between (earlier seq) ends the batch, preserving FIFO.
	// Detach the scratch while in use so a commit that re-enters the
	// event loop (e.g. via RunUntil) cannot clobber this batch.
	batch, commits := append(s.batch[:0], e), s.commits
	s.batch, s.commits = nil, nil
	for (budget <= 0 || len(batch) < budget) && len(s.events) > 0 &&
		s.events[0].at == e.at && s.events[0].compute != nil {
		batch = append(batch, s.events.pop())
	}
	if cap(commits) < len(batch) {
		//p2plint:allow hotalloc -- scratch growth to high-water mark; steady state reuses s.commits
		commits = make([]func(), len(batch))
	} else {
		commits = commits[:len(batch)]
	}
	if len(batch) == 1 {
		commits[0] = batch[0].compute()
	} else {
		//p2plint:allow hotalloc -- par fan-out closure, one per multi-event batch
		par.Default().Run(len(batch), func(i int) { commits[i] = batch[i].compute() })
	}
	for i, c := range commits {
		commits[i] = nil
		s.freeEvent(batch[i])
		batch[i] = nil
		s.ran++
		if c != nil {
			c()
		}
	}
	n := len(batch)
	s.batch = batch[:0]
	s.commits = commits[:0]
	return n
}

// Run executes events until the queue drains or maxEvents fire
// (0 = unlimited). It returns the number of events executed.
func (s *Simulator) Run(maxEvents uint64) uint64 {
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		budget := 0
		if maxEvents > 0 {
			budget = int(maxEvents - n)
		}
		k := s.step(budget)
		if k == 0 {
			break
		}
		n += uint64(k)
	}
	return n
}

// RunUntil executes events with timestamps ≤ t, then advances the clock
// to exactly t. Events scheduled later stay queued.
func (s *Simulator) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: RunUntil(%v) before now %v", t, s.now))
	}
	for len(s.events) > 0 && s.events[0].at <= t {
		s.step(0)
	}
	s.now = t
}
