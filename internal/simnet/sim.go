// Package simnet is a deterministic discrete-event simulator with a
// message-passing network layer on top. The distributed-PageRank
// experiments run on it: virtual time stands in for the paper's waiting
// time units (T1, T2), message loss models the paper's send-failure
// probability p, and byte/message counters feed the transmission-cost
// comparison of §4.4.
//
// Determinism: events at equal times fire in scheduling order, and all
// randomness flows from one seed, so an experiment is a pure function of
// its configuration. Two-phase events (AtCompute) may run their compute
// halves concurrently, but their commit halves — the only halves allowed
// to mutate shared state, draw randomness, or schedule — still fire
// serially in scheduling order, so the executed history is identical to
// the single-threaded one.
package simnet

import (
	"fmt"
	"math"
	"math/bits"

	"p2prank/internal/par"
	"p2prank/internal/xrand"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-break so equal-time events fire FIFO
	fn  func()
	// argFn/arg are the closure-free form (AtArg): argFn(arg) fires
	// instead of fn. Hot schedulers reuse one function value and a
	// pooled argument rather than allocating a closure per event.
	argFn func(any)
	arg   any
	// compute marks a two-phase event (AtCompute): the compute half may
	// run concurrently with other compute halves at the same instant and
	// returns the commit half to run serially. nil for plain events.
	compute func() func()
	// pinned marks an event owned by a Timer: it is re-armed in place
	// and must never enter the freelist.
	pinned bool
}

// eventLess orders events by time, then FIFO by sequence number. The
// (at, seq) pair is a strict total order, so any correct scheduler pops
// events in exactly this order — the executed history does not depend
// on the queue's internal layout.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled binary min-heap. container/heap would work,
// but its interface indirection (Less/Swap calls, any boxing in
// Push/Pop) is measurable on the simulator's hottest path. It used to be
// the whole scheduler; today it is the building block of calendarQueue —
// each wheel bucket and the overflow level are one of these, so a bucket
// holding k events costs O(log k) per op instead of O(log n) over the
// entire pending set.
type eventHeap []*event

func (h *eventHeap) push(e *event) {
	q := append(*h, e)
	*h = q
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !eventLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *eventHeap) pop() *event {
	q := *h
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventLess(q[r], q[c]) {
			c = r
		}
		if !eventLess(q[c], q[i]) {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return e
}

// Calendar-queue sizing. The wheel starts at wheelMinBuckets and grows
// by rebuild (power of two) toward wheelMaxBuckets as the pending set
// grows, keeping the average bucket occupancy O(1); see DESIGN.md §14.
const (
	wheelMinBuckets = 1 << 10
	wheelMaxBuckets = 1 << 20
	// minBucketWidth guards the adaptive width against degenerate
	// (zero/denormal) spans; virtual times in this codebase are O(1).
	minBucketWidth = 1e-12
)

// calendarQueue is the event scheduler: a timer wheel of width-`width`
// buckets covering the window [start, start+len(buckets)*width), each
// bucket a small eventHeap, plus a sorted overflow heap for events
// beyond the window. Schedule and pop are O(1) amortized: an insert
// indexes straight into its bucket, and pop scans the occupancy bitmap
// from cur for the first non-empty bucket.
//
// Correctness never depends on the layout parameters (start, width,
// cur, bucket count): the bucket index floor((at-start)/width) is
// monotone non-decreasing in `at` (IEEE subtraction and division by a
// positive constant are monotone), so every event in bucket b has a
// strictly earlier time than every event in bucket b' > b, events that
// share a time always share a bucket (seq ties break inside the bucket
// heap), and the overflow split is consistent with the same monotone
// map. Pop order is therefore exactly the (at, seq) total order the old
// global heap produced — which is what keeps every determinism
// fingerprint unchanged.
type calendarQueue struct {
	buckets  []eventHeap // power-of-two count
	occ      []uint64    // occupancy bitmap: bit b set ⇔ buckets[b] non-empty
	start    float64     // left edge of buckets[0]
	width    float64     // bucket width in virtual time units
	cur      int         // first possibly-occupied bucket; all below are empty
	overflow eventHeap   // events at or beyond the wheel window
	n        int         // total pending (wheel + overflow)
	nWheel   int         // pending in wheel buckets
	anchored bool        // false until the first push (re)anchors the wheel
	scratch  []*event    // rebuild scratch, reused across rebuilds
}

// push inserts e, anchoring the wheel on first use and growing it when
// the pending set outruns the bucket count.
//
//p2plint:hotpath -- every scheduled event enters the queue here
func (q *calendarQueue) push(e *event) {
	q.n++
	if !q.anchored {
		q.anchor(e.at)
	}
	if q.n > 4*len(q.buckets) && len(q.buckets) < wheelMaxBuckets {
		q.rebuild(e)
		return
	}
	q.insert(e)
}

// anchor (re)positions the wheel window at `at`, keeping the adaptive
// width from the previous epoch (the first epoch starts with a width
// matched to the network-latency timescale; rebuild re-fits it to the
// observed span as soon as the pending set grows).
func (q *calendarQueue) anchor(at float64) {
	if q.buckets == nil {
		//p2plint:allow hotalloc -- one-time wheel allocation, reused for the simulator's lifetime
		q.buckets = make([]eventHeap, wheelMinBuckets)
		//p2plint:allow hotalloc -- one-time occupancy bitmap, reused for the simulator's lifetime
		q.occ = make([]uint64, wheelMinBuckets/64)
		q.width = 1.0 / wheelMinBuckets
	}
	q.start = at
	q.cur = 0
	q.anchored = true
}

// insert places e into its bucket, or the overflow heap when it lies
// beyond the wheel window. Indices below cur (possible only through
// floating-point slack or an event scheduled before the anchor) clamp
// up to cur: the bucket heap orders by (at, seq) regardless, and every
// later bucket holds strictly later events, so a clamp is harmless.
func (q *calendarQueue) insert(e *event) {
	f := (e.at - q.start) / q.width
	if f >= float64(len(q.buckets)) {
		q.overflow.push(e)
		return
	}
	i := int(f)
	if i < q.cur {
		i = q.cur
	}
	q.buckets[i].push(e)
	q.occ[i>>6] |= 1 << (uint(i) & 63)
	q.nWheel++
}

// insertClamped is insert for migrate: an event whose time sits exactly
// on the window edge can round its index to len(buckets); clamping into
// the last bucket keeps it ahead of everything left in overflow (all of
// which is strictly later) instead of looping back there.
func (q *calendarQueue) insertClamped(e *event) {
	f := (e.at - q.start) / q.width
	i := len(q.buckets) - 1
	if f < float64(i) {
		i = int(f)
		if i < q.cur {
			i = q.cur
		}
	}
	q.buckets[i].push(e)
	q.occ[i>>6] |= 1 << (uint(i) & 63)
	q.nWheel++
}

// migrate re-anchors a drained wheel at the earliest overflow event and
// pulls every event inside the new window back into buckets. Called
// from peek when nWheel == 0 and overflow is not empty.
func (q *calendarQueue) migrate() {
	q.anchor(q.overflow[0].at)
	limit := q.start + float64(len(q.buckets))*q.width
	for len(q.overflow) > 0 && q.overflow[0].at < limit {
		q.insertClamped(q.overflow.pop())
	}
}

// rebuild resizes the wheel to fit the pending set (optionally folding
// in one extra event from push) and re-fits width so the observed span
// lands ~2 events per bucket. O(n), amortized O(1) against the inserts
// that grew the set.
func (q *calendarQueue) rebuild(extra *event) {
	s := q.scratch[:0]
	if extra != nil {
		s = append(s, extra)
	}
	for b := q.cur; b < len(q.buckets); b++ {
		s = append(s, q.buckets[b]...)
		q.buckets[b] = q.buckets[b][:0]
	}
	s = append(s, q.overflow...)
	q.overflow = q.overflow[:0]
	q.scratch = s[:0]

	nb := len(q.buckets)
	for nb < wheelMaxBuckets && len(s) > 2*nb {
		nb *= 2
	}
	if nb != len(q.buckets) {
		//p2plint:allow hotalloc -- wheel resize to the pending-set high-water mark; rare and amortized
		q.buckets = make([]eventHeap, nb)
		//p2plint:allow hotalloc -- occupancy bitmap resize, paired with the wheel resize
		q.occ = make([]uint64, nb/64)
	} else {
		for i := range q.occ {
			q.occ[i] = 0
		}
	}

	minAt, maxAt := math.Inf(1), math.Inf(-1)
	for _, e := range s {
		if e.at < minAt {
			minAt = e.at
		}
		if e.at > maxAt {
			maxAt = e.at
		}
	}
	if span := maxAt - minAt; span > 0 {
		w := 2 * span / float64(len(s))
		if w < minBucketWidth {
			w = minBucketWidth
		}
		q.width = w
	}
	q.start = minAt
	q.cur = 0
	q.nWheel = 0
	for i, e := range s {
		q.insert(e)
		s[i] = nil
	}
}

// peek returns the earliest pending event without removing it (nil when
// empty), advancing cur to its bucket as a side effect.
func (q *calendarQueue) peek() *event {
	if q.n == 0 {
		return nil
	}
	if q.nWheel == 0 {
		q.migrate()
	}
	w := q.cur >> 6
	mask := ^uint64(0) << (uint(q.cur) & 63)
	for {
		if b := q.occ[w] & mask; b != 0 {
			q.cur = w<<6 + bits.TrailingZeros64(b)
			return q.buckets[q.cur][0]
		}
		w++
		mask = ^uint64(0)
	}
}

// pop removes and returns the earliest pending event (nil when empty).
//
//p2plint:hotpath -- every executed event leaves the queue here
func (q *calendarQueue) pop() *event {
	if q.peek() == nil {
		return nil
	}
	h := &q.buckets[q.cur]
	e := h.pop()
	if len(*h) == 0 {
		q.occ[q.cur>>6] &^= 1 << (uint(q.cur) & 63)
	}
	q.nWheel--
	q.n--
	if q.n == 0 {
		// Re-anchor on the next push: the window may be far behind by
		// the time the queue refills.
		q.anchored = false
	} else if len(q.buckets) > wheelMinBuckets && q.n < len(q.buckets)/16 {
		q.rebuild(nil)
	}
	return e
}

// eventFreeListCap bounds the executed-event freelist. A scheduling
// spike (a 10⁵-node run tearing down, say) would otherwise pin its
// high-water mark of event structs for the rest of the run; beyond the
// cap, executed events are left for the garbage collector.
const eventFreeListCap = 1 << 16

// Simulator owns the virtual clock and the event queue. Create one with
// New; its methods must be called from one goroutine (the simulation is
// logically single-threaded, which is what makes it reproducible — the
// compute halves of two-phase events are the sole exception, and they
// are barred from touching the simulator).
type Simulator struct {
	now    float64
	events calendarQueue
	seq    uint64
	rng    *xrand.Rand
	ran    uint64

	// batch and commits are scratch for step's compute-phase batching,
	// and free recycles executed event structs; together they make
	// steady-state stepping allocation-free.
	batch   []*event
	commits []func()
	free    []*event
}

// newEvent pops a recycled event or allocates one.
func (s *Simulator) newEvent() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	//p2plint:allow hotalloc -- freelist refill; steady state recycles executed events
	return &event{}
}

// freeEvent returns an executed event to the freelist. Timer-owned
// (pinned) events are skipped — their owner re-arms them in place — and
// the freelist is capped so spikes don't pin memory (eventFreeListCap).
func (s *Simulator) freeEvent(e *event) {
	if e.pinned {
		return
	}
	*e = event{}
	if len(s.free) < eventFreeListCap {
		s.free = append(s.free, e)
	}
}

// New returns a Simulator whose randomness derives from seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: xrand.New(seed)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Rand returns the simulator's root random stream. Entities that need
// private streams should Fork it at setup time.
func (s *Simulator) Rand() *xrand.Rand { return s.rng }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.events.n }

// Processed returns the number of events executed so far.
func (s *Simulator) Processed() uint64 { return s.ran }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics — it would silently reorder causality.
func (s *Simulator) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simnet: scheduling at non-finite time %v", t))
	}
	s.seq++
	e := s.newEvent()
	e.at, e.seq, e.fn = t, s.seq, fn
	s.events.push(e)
}

// After schedules fn d time units from now. Negative d panics.
func (s *Simulator) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) at absolute virtual time t. It is the
// allocation-free sibling of At for hot schedulers (the network's
// delivery path): the caller keeps one long-lived fn and pools its arg
// values, so nothing escapes per event.
//
//p2plint:hotpath -- per-message scheduling path of the simulated network
func (s *Simulator) AtArg(t float64, fn func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simnet: scheduling at non-finite time %v", t))
	}
	s.seq++
	e := s.newEvent()
	e.at, e.seq, e.argFn, e.arg = t, s.seq, fn, arg
	s.events.push(e)
}

// AfterArg schedules fn(arg) d time units from now; see AtArg. Negative
// d panics.
func (s *Simulator) AfterArg(d float64, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", d))
	}
	s.AtArg(s.now+d, fn, arg)
}

// AtCompute schedules a two-phase event at absolute virtual time t.
// When it fires, compute runs first — possibly concurrently with the
// compute halves of other two-phase events scheduled at the same
// instant — and returns the commit half (nil for none), which runs on
// the simulation goroutine in scheduling order.
//
// The contract that keeps this deterministic: compute must only read
// state no concurrent compute writes and write state private to its
// entity. Everything else — sends, shared mutation, randomness,
// scheduling, reading the clock — belongs in the commit. Because new
// events always receive later sequence numbers than the batch being
// executed, no commit can inject work between two batched computes.
func (s *Simulator) AtCompute(t float64, compute func() func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("simnet: scheduling at non-finite time %v", t))
	}
	s.seq++
	e := s.newEvent()
	e.at, e.seq, e.compute = t, s.seq, compute
	s.events.push(e)
}

// AfterCompute schedules a two-phase event d time units from now; see
// AtCompute. Negative d panics.
func (s *Simulator) AfterCompute(d float64, compute func() func()) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", d))
	}
	s.AtCompute(s.now+d, compute)
}

// Timer is a pre-allocated, re-armable two-phase event for entities
// that reschedule themselves for the lifetime of a run — the rankers'
// wait timers. Re-arming reuses one pinned event struct that never
// enters the freelist, so an entity's entire lifetime of waits costs a
// single allocation regardless of run length. Semantics are identical
// to AfterCompute: every arm draws a fresh sequence number, so event
// ordering — and with it every determinism fingerprint — is unchanged.
type Timer struct {
	s       *Simulator
	e       *event
	compute func() func()
	armed   bool
}

// NewComputeTimer returns a Timer that runs compute as a two-phase
// event (see AtCompute) each time it is scheduled.
func (s *Simulator) NewComputeTimer(compute func() func()) *Timer {
	t := &Timer{s: s, compute: compute}
	t.e = &event{pinned: true}
	t.e.compute = t.fire
	return t
}

// fire is the pinned event's compute half: it disarms the timer (so the
// commit half may re-arm it) and delegates to the user's compute. It
// runs in the parallel compute phase, but only ever touches its own
// timer, and the serial scheduler is quiescent while compute halves
// run, so there is no race with arming.
func (t *Timer) fire() func() {
	t.armed = false
	return t.compute()
}

// Schedule arms the timer d time units from now. Negative d panics, as
// does re-arming a timer that is already pending — that would corrupt
// the queue (one event struct in two places).
//
//p2plint:hotpath -- the rankers' per-iteration wait path; re-arms in place, no allocation
func (t *Timer) Schedule(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", d))
	}
	if t.armed {
		panic("simnet: Timer re-armed while pending")
	}
	s := t.s
	at := s.now + d
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("simnet: scheduling at non-finite time %v", at))
	}
	s.seq++
	t.e.at, t.e.seq = at, s.seq
	t.armed = true
	s.events.push(t.e)
}

// step executes the earliest event, batching a contiguous same-instant
// run of two-phase events into one parallel compute phase. It returns
// the number of events executed (0 when the queue is empty); budget > 0
// caps the batch size.
//
//p2plint:hotpath -- event dispatch loop; every simulated message passes through here
func (s *Simulator) step(budget int) int {
	if s.events.n == 0 {
		return 0
	}
	e := s.events.pop()
	s.now = e.at
	if e.compute == nil {
		s.ran++
		fn, argFn, arg := e.fn, e.argFn, e.arg
		s.freeEvent(e)
		if argFn != nil {
			argFn(arg)
		} else {
			fn()
		}
		return 1
	}
	// Gather the run of two-phase events at this exact instant. A plain
	// event in between (earlier seq) ends the batch, preserving FIFO.
	// Detach the scratch while in use so a commit that re-enters the
	// event loop (e.g. via RunUntil) cannot clobber this batch.
	batch, commits := append(s.batch[:0], e), s.commits
	s.batch, s.commits = nil, nil
	for budget <= 0 || len(batch) < budget {
		nx := s.events.peek()
		if nx == nil || nx.at != e.at || nx.compute == nil {
			break
		}
		batch = append(batch, s.events.pop())
	}
	if cap(commits) < len(batch) {
		//p2plint:allow hotalloc -- scratch growth to high-water mark; steady state reuses s.commits
		commits = make([]func(), len(batch))
	} else {
		commits = commits[:len(batch)]
	}
	if len(batch) == 1 {
		commits[0] = batch[0].compute()
	} else {
		//p2plint:allow hotalloc -- par fan-out closure, one per multi-event batch
		par.Default().Run(len(batch), func(i int) { commits[i] = batch[i].compute() })
	}
	for i, c := range commits {
		commits[i] = nil
		s.freeEvent(batch[i])
		batch[i] = nil
		s.ran++
		if c != nil {
			c()
		}
	}
	n := len(batch)
	s.batch = batch[:0]
	s.commits = commits[:0]
	return n
}

// Run executes events until the queue drains or maxEvents fire
// (0 = unlimited). It returns the number of events executed.
func (s *Simulator) Run(maxEvents uint64) uint64 {
	var n uint64
	for maxEvents == 0 || n < maxEvents {
		budget := 0
		if maxEvents > 0 {
			budget = int(maxEvents - n)
		}
		k := s.step(budget)
		if k == 0 {
			break
		}
		n += uint64(k)
	}
	return n
}

// RunUntil executes events with timestamps ≤ t, then advances the clock
// to exactly t. Events scheduled later stay queued.
func (s *Simulator) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: RunUntil(%v) before now %v", t, s.now))
	}
	for {
		nx := s.events.peek()
		if nx == nil || nx.at > t {
			break
		}
		s.step(0)
	}
	s.now = t
}
