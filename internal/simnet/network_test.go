package simnet

import (
	"math"
	"testing"
)

func newTestNet(t *testing.T, cfg NetConfig) (*Simulator, *Network) {
	t.Helper()
	s := New(7)
	n, err := NewNetwork(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, n
}

func TestSendDeliver(t *testing.T) {
	s, n := newTestNet(t, DefaultNetConfig())
	var got []Message
	a := n.AddNode(func(m Message) { got = append(got, m) })
	b := n.AddNode(func(m Message) { got = append(got, m) })
	if !n.Send(a, b, "hello", 10) {
		t.Fatal("send reported drop on lossless network")
	}
	s.Run(0)
	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	m := got[0]
	if m.From != a || m.To != b || m.Payload.(string) != "hello" || m.Size != 10 {
		t.Fatalf("message = %+v", m)
	}
}

func TestLatencyWithinBounds(t *testing.T) {
	s, n := newTestNet(t, NetConfig{MinLatency: 1, MaxLatency: 2})
	var deliveredAt float64
	a := n.AddNode(func(Message) {})
	b := n.AddNode(func(Message) { deliveredAt = s.Now() })
	n.Send(a, b, nil, 1)
	s.Run(0)
	if deliveredAt < 1 || deliveredAt > 2 {
		t.Fatalf("delivered at %v, want in [1,2]", deliveredAt)
	}
}

func TestCounters(t *testing.T) {
	s, n := newTestNet(t, NetConfig{})
	a := n.AddNode(func(Message) {})
	b := n.AddNode(func(Message) {})
	n.Send(a, b, nil, 100)
	n.Send(a, b, nil, 50)
	s.Run(0)
	tot := n.TotalStats()
	if tot.MessagesSent != 2 || tot.BytesSent != 150 {
		t.Fatalf("total sent = %+v", tot)
	}
	if tot.MessagesDelivered != 2 || tot.BytesDelivered != 150 {
		t.Fatalf("total delivered = %+v", tot)
	}
	out := n.NodeSent(a)
	if out.MessagesSent != 2 || out.BytesSent != 150 {
		t.Fatalf("a sent = %+v", out)
	}
	in := n.NodeReceived(b)
	if in.MessagesDelivered != 2 || in.BytesDelivered != 150 {
		t.Fatalf("b received = %+v", in)
	}
	n.ResetStats()
	if n.TotalStats() != (Stats{}) || n.NodeSent(a) != (Stats{}) {
		t.Fatal("ResetStats left residue")
	}
}

func TestDownNodesDropTraffic(t *testing.T) {
	s, n := newTestNet(t, NetConfig{})
	delivered := 0
	a := n.AddNode(func(Message) {})
	b := n.AddNode(func(Message) { delivered++ })
	n.SetDown(b, true)
	if n.Send(a, b, nil, 1) {
		t.Fatal("send to down node reported success")
	}
	n.SetDown(b, false)
	n.SetDown(a, true)
	if n.Send(a, b, nil, 1) {
		t.Fatal("send from down node reported success")
	}
	n.SetDown(a, false)
	if !n.Send(a, b, nil, 1) {
		t.Fatal("send between live nodes failed")
	}
	s.Run(0)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if d := n.TotalStats().MessagesDropped; d != 2 {
		t.Fatalf("dropped = %d, want 2", d)
	}
}

func TestFailureDuringFlight(t *testing.T) {
	s, n := newTestNet(t, NetConfig{MinLatency: 5, MaxLatency: 5})
	delivered := 0
	a := n.AddNode(func(Message) {})
	b := n.AddNode(func(Message) { delivered++ })
	n.Send(a, b, nil, 1)
	// Fail b while the message is in flight.
	s.At(1, func() { n.SetDown(b, true) })
	s.Run(0)
	if delivered != 0 {
		t.Fatal("message delivered to node that failed in flight")
	}
}

func TestDropProbability(t *testing.T) {
	s, n := newTestNet(t, NetConfig{DropProb: 0.3})
	delivered := 0
	a := n.AddNode(func(Message) {})
	b := n.AddNode(func(Message) { delivered++ })
	const total = 20000
	for i := 0; i < total; i++ {
		n.Send(a, b, nil, 1)
	}
	s.Run(0)
	rate := 1 - float64(delivered)/total
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("observed drop rate %v, want ~0.3", rate)
	}
	if got := n.TotalStats().MessagesDropped; got != int64(total-delivered) {
		t.Fatalf("dropped counter %d != %d", got, total-delivered)
	}
}

func TestInvalidConfigs(t *testing.T) {
	s := New(1)
	for _, cfg := range []NetConfig{
		{MinLatency: -1},
		{MinLatency: 2, MaxLatency: 1},
		{DropProb: -0.1},
		{DropProb: 1.1},
	} {
		if _, err := NewNetwork(s, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestInvalidAddressPanics(t *testing.T) {
	_, n := newTestNet(t, NetConfig{})
	a := n.AddNode(func(Message) {})
	for _, f := range []func(){
		func() { n.Send(a, 99, nil, 1) },
		func() { n.Send(-1, a, nil, 1) },
		func() { n.SetDown(42, true) },
		func() { n.Send(a, a, nil, -5) },
		func() { n.AddNode(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		s := New(99)
		n, err := NewNetwork(s, NetConfig{MinLatency: 0.1, MaxLatency: 1, DropProb: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		var last float64
		var a, b NodeAddr
		a = n.AddNode(func(m Message) { last = s.Now() })
		b = n.AddNode(func(m Message) {
			last = s.Now()
			if s.Now() < 100 {
				n.Send(b, a, nil, 8)
			}
		})
		for i := 0; i < 50; i++ {
			n.Send(a, b, nil, 16)
		}
		s.Run(0)
		return n.TotalStats().MessagesDelivered, last
	}
	d1, t1 := run()
	d2, t2 := run()
	if d1 != d2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", d1, t1, d2, t2)
	}
}

func TestNodeBandwidthSerializes(t *testing.T) {
	s := New(3)
	n, err := NewNetwork(s, NetConfig{NodeBandwidth: 10}) // 10 B per time unit
	if err != nil {
		t.Fatal(err)
	}
	var deliveredAt []float64
	a := n.AddNode(func(Message) {})
	b := n.AddNode(func(Message) { deliveredAt = append(deliveredAt, s.Now()) })
	// Three 100-byte messages: each takes 10 time units of uplink, so
	// deliveries land at ~10, ~20, ~30.
	for i := 0; i < 3; i++ {
		n.Send(a, b, nil, 100)
	}
	s.Run(0)
	if len(deliveredAt) != 3 {
		t.Fatalf("delivered %d", len(deliveredAt))
	}
	want := []float64{10, 20, 30}
	for i, at := range deliveredAt {
		if math.Abs(at-want[i]) > 1e-9 {
			t.Fatalf("delivery %d at t=%v, want %v (got %v)", i, at, want[i], deliveredAt)
		}
	}
}

func TestNodeBandwidthIndependentUplinks(t *testing.T) {
	s := New(3)
	n, err := NewNetwork(s, NetConfig{NodeBandwidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	sink := n.AddNode(func(Message) { times = append(times, s.Now()) })
	a := n.AddNode(func(Message) {})
	b := n.AddNode(func(Message) {})
	// Two different senders do not share an uplink: both deliveries at ~10.
	n.Send(a, sink, nil, 100)
	n.Send(b, sink, nil, 100)
	s.Run(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	for _, at := range times {
		if math.Abs(at-10) > 1e-9 {
			t.Fatalf("delivery at %v, want 10", at)
		}
	}
}

func TestNodeBandwidthUnlimitedByDefault(t *testing.T) {
	s := New(3)
	n, err := NewNetwork(s, NetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var at float64 = -1
	a := n.AddNode(func(Message) {})
	b := n.AddNode(func(Message) { at = s.Now() })
	n.Send(a, b, nil, 1<<40)
	s.Run(0)
	if at != 0 {
		t.Fatalf("unlimited network delayed delivery to %v", at)
	}
}

func TestNegativeBandwidthRejected(t *testing.T) {
	s := New(1)
	if _, err := NewNetwork(s, NetConfig{NodeBandwidth: -1}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}
