package simnet

import (
	"testing"

	"p2prank/internal/xrand"
)

// BenchmarkSchedule measures the raw scheduler: one push + one pop per
// iteration against a steady 4096-event pending set — the calendar
// queue's O(1) claim, and the alloc gate's proof that steady-state
// scheduling recycles every event struct.
func BenchmarkSchedule(b *testing.B) {
	var q calendarQueue
	rng := xrand.New(1)
	const pending = 4096
	var seq uint64
	for i := 0; i < pending; i++ {
		seq++
		q.push(&event{at: rng.Float64() * 2, seq: seq})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		seq++
		e.at, e.seq = e.at+rng.Float64()*2, seq
		q.push(e)
	}
}

// benchEntity is a self-rescheduling simulation entity: a Timer-driven
// loop like a ranker's wait chain, with its commit closure built once so
// steady-state iterations allocate nothing.
type benchEntity struct {
	tm     *Timer
	rng    *xrand.Rand
	commit func()
}

func (e *benchEntity) step() func() { return e.commit }

// BenchmarkEventLoop measures the full dispatch path — calendar queue,
// two-phase batching, timer re-arm — with 1024 entities rescheduling
// themselves at random intervals, the shape of a ranker population
// between message bursts.
func BenchmarkEventLoop(b *testing.B) {
	s := New(1)
	const entities = 1024
	for i := 0; i < entities; i++ {
		e := &benchEntity{rng: s.Rand().Fork()}
		e.commit = func() { e.tm.Schedule(e.rng.Float64() * 2) }
		e.tm = s.NewComputeTimer(e.step)
		e.tm.Schedule(e.rng.Float64() * 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(uint64(b.N))
}
