package simnet

import (
	"testing"
)

func batchedNet(t *testing.T, seed uint64, cfg NetConfig) (*Simulator, *Network) {
	t.Helper()
	s := New(seed)
	n, err := NewNetwork(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, n
}

// TestBatchDeliveryFIFO checks the batching contract's invariant:
// same-instant messages to one destination arrive in send order.
func TestBatchDeliveryFIFO(t *testing.T) {
	s, n := batchedNet(t, 1, NetConfig{MinLatency: 0.1, MaxLatency: 0.1, BatchDelivery: true})
	var got []int
	dst := n.AddNode(func(m Message) { got = append(got, m.Payload.(int)) })
	src := n.AddNode(func(Message) {})
	for i := 0; i < 50; i++ {
		n.Send(src, dst, i, 10)
	}
	s.Run(0)
	if len(got) != 50 {
		t.Fatalf("delivered %d messages, want 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("per-destination FIFO broken: got[%d] = %d", i, v)
		}
	}
}

// TestBatchDeliveryCoalescesEvents is the point of the mode: B
// same-instant messages to one destination ride one event, so the
// simulator executes O(instants), not O(messages), delivery events.
func TestBatchDeliveryCoalescesEvents(t *testing.T) {
	s, n := batchedNet(t, 1, NetConfig{MinLatency: 0.1, MaxLatency: 0.1, BatchDelivery: true})
	dst := n.AddNode(func(Message) {})
	src := n.AddNode(func(Message) {})
	const B = 100
	for i := 0; i < B; i++ {
		n.Send(src, dst, i, 10)
	}
	if p := s.Pending(); p != 1 {
		t.Fatalf("%d same-instant sends scheduled %d events, want 1", B, p)
	}
	s.Run(0)
	if st := n.TotalStats(); st.MessagesDelivered != B {
		t.Fatalf("delivered %d, want %d", st.MessagesDelivered, B)
	}
}

// TestBatchDeliveryMatchesUnbatchedStats runs the same fixed-latency
// workload with batching on and off: every counter must agree — only
// the event count may differ.
func TestBatchDeliveryMatchesUnbatchedStats(t *testing.T) {
	run := func(batch bool) (Stats, []int) {
		s, n := batchedNet(t, 9, NetConfig{MinLatency: 0.2, MaxLatency: 0.2, BatchDelivery: batch})
		var got []int
		var addrs []NodeAddr
		for i := 0; i < 4; i++ {
			addrs = append(addrs, n.AddNode(func(m Message) { got = append(got, m.Payload.(int)) }))
		}
		for round := 0; round < 5; round++ {
			round := round
			s.At(float64(round), func() {
				for i := 0; i < 4; i++ {
					for j := 0; j < 4; j++ {
						if i != j {
							n.Send(addrs[i], addrs[j], round*100+i*10+j, 25)
						}
					}
				}
			})
		}
		s.Run(0)
		return n.TotalStats(), got
	}
	sa, ga := run(false)
	sb, gb := run(true)
	if sa != sb {
		t.Fatalf("stats diverged:\nunbatched %+v\nbatched   %+v", sa, sb)
	}
	if len(ga) != len(gb) {
		t.Fatalf("delivery count diverged: %d vs %d", len(ga), len(gb))
	}
	// With a single sender order would match exactly; across senders the
	// batch drains contiguously, so only the multiset is guaranteed.
	seen := map[int]int{}
	for _, v := range ga {
		seen[v]++
	}
	for _, v := range gb {
		seen[v]--
	}
	for v, c := range seen {
		if c != 0 {
			t.Fatalf("payload %d delivered %+d times more in one mode", v, c)
		}
	}
}

// TestBatchDeliveryDownNodeDrops re-checks liveness at delivery time:
// a destination that fails while a batch is in flight drops the whole
// batch, exactly like the per-message path.
func TestBatchDeliveryDownNodeDrops(t *testing.T) {
	s, n := batchedNet(t, 1, NetConfig{MinLatency: 1, MaxLatency: 1, BatchDelivery: true})
	delivered := 0
	dst := n.AddNode(func(Message) { delivered++ })
	src := n.AddNode(func(Message) {})
	for i := 0; i < 10; i++ {
		n.Send(src, dst, i, 10)
	}
	s.At(0.5, func() { n.SetDown(dst, true) })
	s.Run(0)
	if delivered != 0 {
		t.Fatalf("delivered %d messages to a down node", delivered)
	}
	if st := n.TotalStats(); st.MessagesDropped != 10 {
		t.Fatalf("dropped = %d, want 10", st.MessagesDropped)
	}
}

// TestBatchDeliveryRecycles checks fired batches return to the pool and
// get reused — steady state allocates no batches.
func TestBatchDeliveryRecycles(t *testing.T) {
	s, n := batchedNet(t, 1, NetConfig{MinLatency: 0.1, MaxLatency: 0.1, BatchDelivery: true})
	dst := n.AddNode(func(Message) {})
	src := n.AddNode(func(Message) {})
	for round := 0; round < 20; round++ {
		round := round
		s.At(float64(round), func() { n.Send(src, dst, round, 10) })
	}
	s.Run(0)
	if len(n.batchFree) != 1 {
		t.Fatalf("batch pool holds %d batches after 20 sequential rounds, want 1 recycled",
			len(n.batchFree))
	}
}

// TestBatchDeliveryDeterminism: batched runs are still a pure function
// of the seed.
func TestBatchDeliveryDeterminism(t *testing.T) {
	run := func() []int {
		s, n := batchedNet(t, 77, NetConfig{MinLatency: 0.05, MaxLatency: 0.25, BatchDelivery: true})
		var got []int
		var addrs []NodeAddr
		for i := 0; i < 3; i++ {
			addrs = append(addrs, n.AddNode(func(m Message) { got = append(got, m.Payload.(int)) }))
		}
		for i := 0; i < 60; i++ {
			i := i
			s.At(float64(i%7)*0.3, func() { n.Send(addrs[i%3], addrs[(i+1)%3], i, 10) })
		}
		s.Run(0)
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
