// Package benchfmt parses `go test -bench` output into a stable JSON
// document. It is the shared substrate of cmd/benchjson (which records
// BENCH_kernels.json, the committed perf reference) and cmd/benchgate
// (which re-runs the suite and refuses regressions against it): both
// sides of the ratchet must agree byte-for-byte on what a benchmark
// result is.
package benchfmt

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// Key identifies a result within a report: benchmarks are compared
// name-to-name at equal GOMAXPROCS, never across proc counts.
func (r Result) Key() string {
	return r.Name + "-" + strconv.Itoa(r.Procs)
}

// Report is the full document: environment header plus results. The
// GoVersion and GoMaxProcs fields pin the toolchain and parallelism the
// numbers were measured under — an alloc count is portable, a time is
// only comparable within the same environment.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	Pkgs       []string `json:"pkgs,omitempty"`
	Results    []Result `json:"results"`
}

// Sort orders results by (name, procs) so the JSON is stable across
// runs regardless of package test order.
func (rep *Report) Sort() {
	sort.Slice(rep.Results, func(i, j int) bool {
		a, b := rep.Results[i], rep.Results[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Procs < b.Procs
	})
}

// ByKey indexes the results by Result.Key. Duplicate keys keep the
// first occurrence (go test emits one line per benchmark per package).
func (rep *Report) ByKey() map[string]Result {
	out := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		if _, ok := out[r.Key()]; !ok {
			out[r.Key()] = r
		}
	}
	return out
}

// Parse consumes `go test -bench` output and returns the report with
// results in input order (call Sort for the canonical order).
func Parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkgs = append(rep.Pkgs, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := ParseBench(line)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, sc.Err()
}

// ParseBench parses one result line, e.g.
//
//	BenchmarkMulVec-8  100  10123456 ns/op  42 B/op  3 allocs/op
func ParseBench(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, fmt.Errorf("short benchmark line %q", line)
	}
	r := Result{Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations in %q: %v", line, err)
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("ns/op in %q: %v", line, err)
			}
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("B/op in %q: %v", line, err)
			}
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, fmt.Errorf("allocs/op in %q: %v", line, err)
			}
		case "MB/s":
			if r.MBPerSec, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, fmt.Errorf("MB/s in %q: %v", line, err)
			}
		}
	}
	return r, nil
}
