package benchfmt_test

import (
	"bufio"
	"strings"
	"testing"

	"p2prank/internal/benchfmt"
)

const sample = `goos: linux
goarch: amd64
pkg: p2prank/internal/vecmath
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMulVec-8   	    2730	    402439 ns/op	     112 B/op	       2 allocs/op
BenchmarkCSRMulVec-8	    7650	    165958 ns/op	     112 B/op	       2 allocs/op
PASS
ok  	p2prank/internal/vecmath	3.1s
pkg: p2prank/internal/dprcore
BenchmarkReliableSend-8 	16568035	        69.42 ns/op	       0 B/op	       0 allocs/op
`

func parseSample(t *testing.T) *benchfmt.Report {
	t.Helper()
	rep, err := benchfmt.Parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseHeaderAndResults(t *testing.T) {
	rep := parseSample(t)
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header = %q/%q", rep.Goos, rep.Goarch)
	}
	if len(rep.Pkgs) != 2 {
		t.Fatalf("pkgs = %v", rep.Pkgs)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkMulVec" || r.Procs != 8 || r.Iterations != 2730 ||
		r.NsPerOp != 402439 || r.BytesPerOp != 112 || r.AllocsPerOp != 2 {
		t.Fatalf("first result = %+v", r)
	}
	if z := rep.Results[2]; z.AllocsPerOp != 0 || z.NsPerOp != 69.42 {
		t.Fatalf("zero-alloc result = %+v", z)
	}
}

func TestSortOrdersByNameThenProcs(t *testing.T) {
	rep := &benchfmt.Report{Results: []benchfmt.Result{
		{Name: "BenchmarkB", Procs: 8},
		{Name: "BenchmarkA", Procs: 8},
		{Name: "BenchmarkB", Procs: 1},
	}}
	rep.Sort()
	want := []string{"BenchmarkA-8", "BenchmarkB-1", "BenchmarkB-8"}
	for i, r := range rep.Results {
		if r.Key() != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, r.Key(), want[i])
		}
	}
}

func TestByKeyIndexesResults(t *testing.T) {
	rep := parseSample(t)
	byKey := rep.ByKey()
	if r, ok := byKey["BenchmarkReliableSend-8"]; !ok || r.NsPerOp != 69.42 {
		t.Fatalf("ByKey lookup = %+v, %v", r, ok)
	}
}

func TestParseBenchRejectsShortLines(t *testing.T) {
	if _, err := benchfmt.ParseBench("BenchmarkX 12"); err == nil {
		t.Fatal("short line accepted")
	}
}
