// Package metrics holds the small result-recording utilities the
// experiment harness shares: named time series (the curves of Figures
// 6–8) and fixed-width tables (Table 1), with CSV and plain-text
// rendering.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve: parallel time and value slices.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one point.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Percentile returns the p-th percentile (0–100) of samples by
// nearest-rank on a sorted copy; the input is not modified. Zero
// samples yield 0.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Last returns the final value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// WriteCSV renders series sharing a time axis as CSV: a time column
// followed by one column per series. Series may have different lengths;
// missing cells are left empty. The time column comes from the longest
// series.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("metrics: no series")
	}
	longest := series[0]
	for _, s := range series[1:] {
		if s.Len() > longest.Len() {
			longest = s
		}
	}
	header := make([]string, 0, len(series)+1)
	header = append(header, "time")
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := 0; i < longest.Len(); i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, formatFloat(longest.Times[i]))
		for _, s := range series {
			if i < s.Len() {
				row = append(row, formatFloat(s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are stringified with %v. Rows shorter or
// longer than the header are padded or truncated at render time.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	width := make([]int, cols)
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i := 0; i < cols && i < len(row); i++ {
			if len(row[i]) > width[i] {
				width[i] = len(row[i])
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
