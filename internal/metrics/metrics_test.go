package metrics

import (
	"strings"
	"testing"
)

func TestSeriesAddLenLast(t *testing.T) {
	s := NewSeries("err")
	if s.Len() != 0 || s.Last() != 0 {
		t.Fatal("empty series not zero")
	}
	s.Add(1, 0.5)
	s.Add(2, 0.25)
	if s.Len() != 2 || s.Last() != 0.25 {
		t.Fatalf("len=%d last=%v", s.Len(), s.Last())
	}
	if s.Times[0] != 1 || s.Values[1] != 0.25 {
		t.Fatal("points stored wrong")
	}
}

func TestWriteCSV(t *testing.T) {
	a := NewSeries("a")
	a.Add(1, 0.5)
	a.Add(2, 0.125)
	b := NewSeries("b")
	b.Add(1, 3)
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "time,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,0.5,3" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	// Shorter series b leaves an empty cell.
	if lines[2] != "2,0.125," {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteCSVNoSeries(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb); err == nil {
		t.Fatal("empty series list accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("N", "Time", "Bandwidth")
	tb.AddRow(1000, "7500s", "100KB/s")
	tb.AddRow(100000, "12000s", "1KB/s")
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Bandwidth") || !strings.Contains(lines[3], "100000") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	// Columns align: all lines equal length once trailing padding is
	// stripped consistently.
	for i := 1; i < len(lines); i++ {
		if len(strings.TrimRight(lines[i], " ")) > len(lines[0]) {
			t.Fatalf("misaligned line %d:\n%s", i, out)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatalf("short row missing:\n%s", out)
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {50, 3}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(samples, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if samples[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v", got)
	}
}
