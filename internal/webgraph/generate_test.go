package webgraph

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(2000)
	g1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumPages() != g2.NumPages() || g1.NumInternalLinks() != g2.NumInternalLinks() {
		t.Fatalf("same seed, different graphs: %d/%d pages, %d/%d links",
			g1.NumPages(), g2.NumPages(), g1.NumInternalLinks(), g2.NumInternalLinks())
	}
	for i := range g1.outDst {
		if g1.outDst[i] != g2.outDst[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestGenerateSeedMatters(t *testing.T) {
	cfg := DefaultGenConfig(2000)
	g1, _ := Generate(cfg)
	cfg.Seed = 99
	g2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumInternalLinks() == g2.NumInternalLinks() {
		// Same count is possible but edge content should differ.
		same := true
		for i := range g1.outDst {
			if g1.outDst[i] != g2.outDst[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateValid(t *testing.T) {
	g, err := Generate(DefaultGenConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
}

// The generator must hit the paper's calibration targets: ~90% of
// internal links intra-site, ~8/15 of all links external, mean total
// out-degree ~15.
func TestGenerateCalibration(t *testing.T) {
	cfg := DefaultGenConfig(20000)
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if math.Abs(s.IntraSiteFrac()-cfg.IntraSiteFrac) > 0.03 {
		t.Errorf("intra-site fraction = %.3f, want ~%.2f", s.IntraSiteFrac(), cfg.IntraSiteFrac)
	}
	if math.Abs(s.ExternalFrac()-cfg.ExternalFrac) > 0.03 {
		t.Errorf("external fraction = %.3f, want ~%.3f", s.ExternalFrac(), cfg.ExternalFrac)
	}
	if math.Abs(s.MeanOutDegree-cfg.MeanOutDegree)/cfg.MeanOutDegree > 0.15 {
		t.Errorf("mean out-degree = %.2f, want ~%.1f", s.MeanOutDegree, cfg.MeanOutDegree)
	}
}

func TestGenerateSiteSkew(t *testing.T) {
	cfg := DefaultGenConfig(30000)
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, g.NumSites())
	for _, s := range g.siteOf {
		counts[s]++
	}
	// Every site must be non-empty and site 0 (rank-1 in the Zipf) must
	// be clearly larger than a mid-rank site.
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("site %d is empty", i)
		}
	}
	mid := g.NumSites() / 2
	if counts[0] <= counts[mid] {
		t.Errorf("no site-size skew: site0=%d site%d=%d", counts[0], mid, counts[mid])
	}
}

func TestGenerateNoSelfLinks(t *testing.T) {
	g, err := Generate(DefaultGenConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.NumPages(); p++ {
		for _, v := range g.InternalOut(int32(p)) {
			if v == int32(p) {
				t.Fatalf("self-link on page %d", p)
			}
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bad := []GenConfig{
		{Pages: 0, Sites: 1},
		{Pages: 10, Sites: 0},
		{Pages: 10, Sites: 20},
		{Pages: 10, Sites: 2, MeanOutDegree: -1},
		{Pages: 10, Sites: 2, ExternalFrac: 1.5},
		{Pages: 10, Sites: 2, IntraSiteFrac: -0.1},
		{Pages: 10, Sites: 2, SiteSkew: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateSingleSite(t *testing.T) {
	cfg := DefaultGenConfig(200)
	cfg.Sites = 1
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSites() != 1 {
		t.Fatalf("sites = %d", g.NumSites())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultGenConfigScaling(t *testing.T) {
	if c := DefaultGenConfig(100); c.Sites != 4 {
		t.Errorf("tiny graph sites = %d, want 4", c.Sites)
	}
	if c := DefaultGenConfig(1000000); c.Sites != 100 {
		t.Errorf("1M-page graph sites = %d, want 100 (paper's dataset)", c.Sites)
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	cfg := DefaultGenConfig(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDegreeSamplerZeroMean(t *testing.T) {
	cfg := DefaultGenConfig(100)
	cfg.MeanOutDegree = 0
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInternalLinks() != 0 || g.NumExternalLinks() != 0 {
		t.Fatalf("zero-degree graph has links: %d/%d",
			g.NumInternalLinks(), g.NumExternalLinks())
	}
}
