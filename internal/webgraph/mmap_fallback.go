//go:build !unix

package webgraph

import "os"

// mmapFile on platforms without syscall.Mmap reads the whole file into
// memory: the Mapped store still works, it just loses the O(1) open
// and demand paging.
func mmapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
