//go:build unix

package webgraph

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps path read-only and returns the bytes plus a release
// function. Loading is O(1) in the file size: pages fault in as the
// arrays are touched, and the OS may drop clean pages under memory
// pressure, which is the whole point of the mapped store.
func mmapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("webgraph: %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("webgraph: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
