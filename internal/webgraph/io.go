package webgraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text format
//
// A human-editable line format so small real edge lists can be fed in:
//
//	# comment
//	site <id> <hostname>
//	page <pageID> <siteID>
//	link <src> <dst>
//	ext <pageID> <count>
//
// Page and site IDs must be dense and ascending (page 0,1,2,...), which
// keeps the reader a single pass.

// WriteText writes g in the text format.
func WriteText(w io.Writer, g Store) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# p2prank webgraph: %d sites, %d pages, %d internal links\n",
		g.NumSites(), g.NumPages(), g.NumInternalLinks())
	for i := 0; i < g.NumSites(); i++ {
		fmt.Fprintf(bw, "site %d %s\n", i, g.SiteHost(int32(i)))
	}
	for p := 0; p < g.NumPages(); p++ {
		fmt.Fprintf(bw, "page %d %d\n", p, g.SiteOf(int32(p)))
	}
	for p := 0; p < g.NumPages(); p++ {
		for _, d := range g.InternalOut(int32(p)) {
			fmt.Fprintf(bw, "link %d %d\n", p, d)
		}
		if ext := g.ExtOut(int32(p)); ext > 0 {
			fmt.Fprintf(bw, "ext %d %d\n", p, ext)
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*Graph, error) {
	var b Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("webgraph: line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "site":
			if len(fields) != 3 {
				return nil, fail("site needs 2 args")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad site id")
			}
			if got := b.AddSite(fields[2]); int(got) != id {
				return nil, fail(fmt.Sprintf("site ids must be dense ascending (got %d)", got))
			}
		case "page":
			if len(fields) != 3 {
				return nil, fail("page needs 2 args")
			}
			id, err1 := strconv.Atoi(fields[1])
			site, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad page/site id")
			}
			if site < 0 || site >= len(b.sites) {
				return nil, fail("unknown site")
			}
			if got := b.AddPage(int32(site)); int(got) != id {
				return nil, fail(fmt.Sprintf("page ids must be dense ascending (got %d)", got))
			}
		case "link":
			if len(fields) != 3 {
				return nil, fail("link needs 2 args")
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad link endpoints")
			}
			if err := b.AddLink(int32(u), int32(v)); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case "ext":
			if len(fields) != 3 {
				return nil, fail("ext needs 2 args")
			}
			u, err1 := strconv.Atoi(fields[1])
			k, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad ext fields")
			}
			if err := b.AddExternalLinks(int32(u), k); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("webgraph: reading text graph: %w", err)
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Binary format, version 1 (streamed)
//
// magic "P2PRGRPH" | u64 version | u64 sites | u64 pages | u64 links |
// site table (u16 len + bytes each) | SiteOf | LocalID | ExtOut |
// OutPtr | OutDst, all little-endian fixed width. Reading is
// O(pages + links); the version-2 layout in mapped.go shares the magic
// and opens in O(1) via mmap.

const (
	binaryMagic   = "P2PRGRPH"
	binaryVersion = 1
)

// WriteBinary writes g in the version-1 streamed binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []uint64{binaryVersion, uint64(g.NumSites()), uint64(g.NumPages()), uint64(len(g.outDst))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, host := range g.sites {
		if len(host) > 1<<16-1 {
			return fmt.Errorf("webgraph: hostname too long (%d bytes)", len(host))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(host))); err != nil {
			return err
		}
		if _, err := bw.WriteString(host); err != nil {
			return err
		}
	}
	for _, arr := range [][]int32{g.siteOf, g.localID, g.extOut} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outDst); err != nil {
		return err
	}
	return bw.Flush()
}

// readChunkCap bounds how much a single binary.Read allocates up
// front, so a corrupt header claiming 2³¹ pages fails with a short
// read instead of a multi-GB allocation.
const readChunkCap = 1 << 20

func readI32s(br io.Reader, count uint64, what string) ([]int32, error) {
	out := make([]int32, 0, min64(count, readChunkCap))
	for count > 0 {
		n := min64(count, readChunkCap)
		chunk := make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("webgraph: reading %s: %w", what, err)
		}
		out = append(out, chunk...)
		count -= n
	}
	return out, nil
}

func readI64s(br io.Reader, count uint64, what string) ([]int64, error) {
	out := make([]int64, 0, min64(count, readChunkCap))
	for count > 0 {
		n := min64(count, readChunkCap)
		chunk := make([]int64, n)
		if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("webgraph: reading %s: %w", what, err)
		}
		out = append(out, chunk...)
		count -= n
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ReadBinary parses the version-1 binary format and validates the
// result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("webgraph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("webgraph: bad magic %q", magic)
	}
	var version, sites, pages, links uint64
	for _, p := range []*uint64{&version, &sites, &pages, &links} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("webgraph: reading header: %w", err)
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("webgraph: unsupported version %d", version)
	}
	const maxDim = 1 << 31
	if sites > maxDim || pages > maxDim || links > 1<<40 {
		return nil, fmt.Errorf("webgraph: implausible header (sites=%d pages=%d links=%d)", sites, pages, links)
	}
	// Grow the site table as entries actually arrive (each costs ≥2
	// stream bytes) rather than trusting the header count up front —
	// same reasoning as readChunkCap below.
	g := &Graph{sites: make([]string, 0, min64(sites, readChunkCap))}
	for i := uint64(0); i < sites; i++ {
		var n uint16
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("webgraph: reading site table: %w", err)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("webgraph: reading site name: %w", err)
		}
		g.sites = append(g.sites, string(buf))
	}
	var err error
	if g.siteOf, err = readI32s(br, pages, "page arrays"); err != nil {
		return nil, err
	}
	if g.localID, err = readI32s(br, pages, "page arrays"); err != nil {
		return nil, err
	}
	if g.extOut, err = readI32s(br, pages, "page arrays"); err != nil {
		return nil, err
	}
	if g.outPtr, err = readI64s(br, pages+1, "OutPtr"); err != nil {
		return nil, err
	}
	if g.outDst, err = readI32s(br, links, "OutDst"); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g.seal(), nil
}
