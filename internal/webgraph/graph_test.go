package webgraph

import (
	"strings"
	"testing"
)

// tinyGraph builds the 4-page group of the paper's Figure 2:
// P1 -> P2, P1 -> P4, P2 -> P3, P3 -> P4, plus one external link on P4.
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	var b Builder
	s := b.AddSite("example.edu")
	p1 := b.AddPage(s)
	p2 := b.AddPage(s)
	p3 := b.AddPage(s)
	p4 := b.AddPage(s)
	for _, l := range [][2]int32{{p1, p2}, {p1, p4}, {p2, p3}, {p3, p4}} {
		if err := b.AddLink(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddExternalLinks(p4, 1); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestBuilderCounts(t *testing.T) {
	g := tinyGraph(t)
	if g.NumPages() != 4 || g.NumSites() != 1 {
		t.Fatalf("pages=%d sites=%d", g.NumPages(), g.NumSites())
	}
	if g.NumInternalLinks() != 4 {
		t.Fatalf("internal links = %d", g.NumInternalLinks())
	}
	if g.NumExternalLinks() != 1 {
		t.Fatalf("external links = %d", g.NumExternalLinks())
	}
}

func TestOutDegreeCountsExternal(t *testing.T) {
	g := tinyGraph(t)
	// P1 has 2 internal links; P4 has 0 internal + 1 external.
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("d(P1) = %d, want 2", d)
	}
	if d := g.OutDegree(3); d != 1 {
		t.Errorf("d(P4) = %d, want 1", d)
	}
}

func TestInternalOut(t *testing.T) {
	g := tinyGraph(t)
	out := g.InternalOut(0)
	if len(out) != 2 {
		t.Fatalf("P1 internal out = %v", out)
	}
	seen := map[int32]bool{}
	for _, v := range out {
		seen[v] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("P1 links = %v, want {1,3}", out)
	}
}

func TestAddSiteIdempotent(t *testing.T) {
	var b Builder
	a := b.AddSite("x.edu")
	c := b.AddSite("x.edu")
	if a != c {
		t.Fatalf("duplicate site got different ids %d, %d", a, c)
	}
	if d := b.AddSite("y.edu"); d == a {
		t.Fatalf("distinct site got same id")
	}
}

func TestURLStableAndDistinct(t *testing.T) {
	g := tinyGraph(t)
	urls := map[string]bool{}
	for p := 0; p < g.NumPages(); p++ {
		u := g.URL(int32(p))
		if !strings.HasPrefix(u, "http://example.edu/") {
			t.Fatalf("URL %q missing site prefix", u)
		}
		if urls[u] {
			t.Fatalf("duplicate URL %q", u)
		}
		urls[u] = true
	}
}

func TestPagesOfSite(t *testing.T) {
	var b Builder
	s0 := b.AddSite("a.edu")
	s1 := b.AddSite("b.edu")
	b.AddPage(s0)
	b.AddPage(s1)
	b.AddPage(s0)
	g := b.Build()
	ps := PagesOfSite(g, s0)
	if len(ps) != 2 || ps[0] != 0 || ps[1] != 2 {
		t.Fatalf("PagesOfSite(a.edu) = %v", ps)
	}
	if n := g.SiteName(1); n != "b.edu" {
		t.Fatalf("SiteName = %q", n)
	}
}

func TestBuilderErrors(t *testing.T) {
	var b Builder
	s := b.AddSite("a.edu")
	b.AddPage(s)
	if err := b.AddLink(0, 5); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := b.AddLink(-1, 0); err == nil {
		t.Error("negative src accepted")
	}
	if err := b.AddExternalLinks(7, 1); err == nil {
		t.Error("external links on missing page accepted")
	}
	if err := b.AddExternalLinks(0, -2); err == nil {
		t.Error("negative external count accepted")
	}
}

func TestAddPagePanicsOnBadSite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddPage(99) did not panic")
		}
	}()
	var b Builder
	b.AddPage(99)
}

func TestBuildTwicePanics(t *testing.T) {
	var b Builder
	b.AddSite("a.edu")
	b.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("second Build did not panic")
		}
	}()
	b.Build()
}

func TestValidateAcceptsBuilt(t *testing.T) {
	if err := tinyGraph(t).Validate(); err != nil {
		t.Fatalf("built graph invalid: %v", err)
	}
}

func TestValidateRejectsCorrupt(t *testing.T) {
	base := func() *Graph {
		g := tinyGraph(t)
		return g
	}
	g := base()
	g.outDst[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("edge to missing page accepted")
	}
	g = base()
	g.siteOf[0] = 7
	if err := g.Validate(); err == nil {
		t.Error("invalid site accepted")
	}
	g = base()
	g.outPtr[1], g.outPtr[2] = g.outPtr[2], g.outPtr[1]
	if err := g.Validate(); err == nil {
		t.Error("non-monotone OutPtr accepted")
	}
	g = base()
	g.extOut = g.extOut[:2]
	if err := g.Validate(); err == nil {
		t.Error("short ExtOut accepted")
	}
}

func TestInDegrees(t *testing.T) {
	g := tinyGraph(t)
	in := InDegrees(g)
	want := []int32{0, 1, 1, 2}
	for i, w := range want {
		if in[i] != w {
			t.Fatalf("in-degrees = %v, want %v", in, want)
		}
	}
}

func TestBuilderNumPages(t *testing.T) {
	var b Builder
	s := b.AddSite("a.edu")
	if b.NumPages() != 0 {
		t.Fatal("fresh builder has pages")
	}
	b.AddPage(s)
	b.AddPage(s)
	if b.NumPages() != 2 {
		t.Fatalf("NumPages = %d", b.NumPages())
	}
}
