package webgraph

import (
	"fmt"

	"p2prank/internal/xrand"
)

// GenConfig parameterizes the synthetic crawl generator. The defaults
// (see DefaultGenConfig) are calibrated to the statistics of the Google
// programming-contest dataset the paper evaluated on: ~1M pages over 100
// .edu sites with 15M links of which only 7M stay inside the dataset,
// and ~90% of internal links staying within their site.
type GenConfig struct {
	// Pages is the total number of pages to generate.
	Pages int
	// Sites is the number of sites; pages are spread over sites with a
	// Zipf distribution of exponent SiteSkew.
	Sites int
	// SiteSkew is the Zipf exponent for site sizes (0 = uniform).
	SiteSkew float64
	// MeanOutDegree is the mean total out-degree d(u), counting both
	// internal and external links. Degrees are Zipf-skewed so a few
	// hub pages link heavily, as in real crawls.
	MeanOutDegree float64
	// ExternalFrac is the fraction of links that point outside the
	// crawl (8/15 in the paper's dataset).
	ExternalFrac float64
	// ExternalSpread makes external-link probability heterogeneous
	// across sites: half the sites use ExternalFrac − Spread, half
	// ExternalFrac + Spread (clamped to [0,1], mean roughly
	// preserved). Real crawls have internal-heavy sites; because their
	// pages cite each other (90% of internal links are intra-site)
	// they form slowly-decaying cores that dominate centralized
	// PageRank's iteration count — and under by-site partitioning they
	// are exactly what DPR1's inner loop solves in one shot, the
	// effect behind Figure 8. 0 yields homogeneous sites.
	ExternalSpread float64
	// IntraSiteFrac is the fraction of internal links that stay within
	// the source page's site (≈0.9 per Cho & Garcia-Molina, which the
	// paper's §4.1 partitioning argument relies on).
	IntraSiteFrac float64
	// PageSkew is the Zipf exponent for choosing link destinations
	// within a site: popular pages attract more links.
	PageSkew float64
	// Seed makes generation reproducible.
	Seed uint64
}

// DefaultGenConfig returns the paper-calibrated configuration scaled to
// the requested number of pages. Sites scale as pages/10000 (the paper's
// dataset has 1M pages over 100 sites) but never fewer than 4.
func DefaultGenConfig(pages int) GenConfig {
	sites := pages / 10000
	if sites < 4 {
		sites = 4
	}
	return GenConfig{
		Pages:          pages,
		Sites:          sites,
		SiteSkew:       0.8,
		MeanOutDegree:  15,
		ExternalFrac:   8.0 / 15.0,
		ExternalSpread: 0.4,
		IntraSiteFrac:  0.9,
		PageSkew:       0.7,
		Seed:           1,
	}
}

func (c GenConfig) validate() error {
	switch {
	case c.Pages <= 0:
		return fmt.Errorf("webgraph: Pages = %d, must be positive", c.Pages)
	case c.Sites <= 0:
		return fmt.Errorf("webgraph: Sites = %d, must be positive", c.Sites)
	case c.Sites > c.Pages:
		return fmt.Errorf("webgraph: more sites (%d) than pages (%d)", c.Sites, c.Pages)
	case c.MeanOutDegree < 0:
		return fmt.Errorf("webgraph: negative MeanOutDegree %v", c.MeanOutDegree)
	case c.ExternalFrac < 0 || c.ExternalFrac > 1:
		return fmt.Errorf("webgraph: ExternalFrac %v outside [0,1]", c.ExternalFrac)
	case c.ExternalSpread < 0 || c.ExternalSpread > 1:
		return fmt.Errorf("webgraph: ExternalSpread %v outside [0,1]", c.ExternalSpread)
	case c.IntraSiteFrac < 0 || c.IntraSiteFrac > 1:
		return fmt.Errorf("webgraph: IntraSiteFrac %v outside [0,1]", c.IntraSiteFrac)
	case c.SiteSkew < 0 || c.PageSkew < 0:
		return fmt.Errorf("webgraph: negative skew exponent")
	}
	return nil
}

// Generate builds a synthetic crawl per cfg. Generation is deterministic
// in cfg.Seed.
func Generate(cfg GenConfig) (*Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)

	// 1. Spread pages over sites: every site gets at least one page,
	// the rest are assigned Zipf-skewed so site sizes are heavy-tailed.
	siteOfPage := make([]int32, cfg.Pages)
	sitePages := make([][]int32, cfg.Sites) // site -> page indices
	for s := 0; s < cfg.Sites; s++ {
		siteOfPage[s] = int32(s)
	}
	siteZipf := xrand.NewZipf(rng, cfg.Sites, cfg.SiteSkew)
	for p := cfg.Sites; p < cfg.Pages; p++ {
		siteOfPage[p] = int32(siteZipf.Sample())
	}
	var b Builder
	for s := 0; s < cfg.Sites; s++ {
		b.AddSite(fmt.Sprintf("site%03d.edu", s))
	}
	for p := 0; p < cfg.Pages; p++ {
		b.AddPage(siteOfPage[p])
	}
	for p := 0; p < cfg.Pages; p++ {
		s := siteOfPage[p]
		sitePages[s] = append(sitePages[s], int32(p))
	}

	// Per-site destination samplers, built lazily: sites can be large
	// and most are touched by every one of their pages anyway.
	siteSampler := make([]*xrand.Zipf, cfg.Sites)
	pickInSite := func(s int32) int32 {
		ps := sitePages[s]
		if len(ps) == 1 {
			return ps[0]
		}
		if siteSampler[s] == nil {
			siteSampler[s] = xrand.NewZipf(rng, len(ps), cfg.PageSkew)
		}
		return ps[siteSampler[s].Sample()]
	}

	// 2. Emit links. Out-degree per page is 1 + Zipf-ish tail with the
	// requested mean; destination is external with prob ExternalFrac,
	// otherwise intra-site with prob IntraSiteFrac, otherwise a page of
	// a random other site.
	// Per-site external-link probability: a two-point mixture around
	// ExternalFrac, assigned by alternating size rank and then shifted
	// so the page-weighted mean matches ExternalFrac (site sizes are
	// Zipf-skewed, so an uncorrected mixture would drift).
	siteExtProb := make([]float64, cfg.Sites)
	clamp01 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	for s := range siteExtProb {
		q := cfg.ExternalFrac
		if s%2 == 0 {
			q -= cfg.ExternalSpread
		} else {
			q += cfg.ExternalSpread
		}
		siteExtProb[s] = clamp01(q)
	}
	if cfg.ExternalSpread > 0 {
		weighted := 0.0
		for p := 0; p < cfg.Pages; p++ {
			weighted += siteExtProb[siteOfPage[p]]
		}
		shift := cfg.ExternalFrac - weighted/float64(cfg.Pages)
		for s := range siteExtProb {
			siteExtProb[s] = clamp01(siteExtProb[s] + shift)
		}
	}
	degSampler := newDegreeSampler(rng, cfg.MeanOutDegree)
	for p := 0; p < cfg.Pages; p++ {
		deg := degSampler.sample()
		src := int32(p)
		extProb := siteExtProb[siteOfPage[p]]
		for k := 0; k < deg; k++ {
			if rng.Float64() < extProb {
				if err := b.AddExternalLinks(src, 1); err != nil {
					return nil, err
				}
				continue
			}
			var dst int32
			if rng.Float64() < cfg.IntraSiteFrac || cfg.Sites == 1 {
				dst = pickInSite(siteOfPage[p])
			} else {
				// Choose a different site, Zipf-skewed.
				s := int32(siteZipf.Sample())
				if s == siteOfPage[p] {
					s = int32((int(s) + 1 + rng.Intn(cfg.Sites-1)) % cfg.Sites)
				}
				dst = pickInSite(s)
			}
			if dst == src {
				// Self-links carry no information in PageRank; count
				// them as external leakage instead of dropping the
				// degree.
				if err := b.AddExternalLinks(src, 1); err != nil {
					return nil, err
				}
				continue
			}
			if err := b.AddLink(src, dst); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}

// degreeSampler draws total out-degrees with a heavy-ish tail around a
// target mean: degree = 1 + Geometric-like tail. Using a mixture of a
// base degree and an exponential tail gives hubs without unbounded
// degrees.
type degreeSampler struct {
	rng  *xrand.Rand
	mean float64
}

func newDegreeSampler(rng *xrand.Rand, mean float64) *degreeSampler {
	return &degreeSampler{rng: rng, mean: mean}
}

func (d *degreeSampler) sample() int {
	if d.mean <= 0 {
		return 0
	}
	// 1 + Exp(mean-1) rounded: mean works out to ~mean, min degree 1.
	v := 1 + int(d.rng.Exp(d.mean-1)+0.5)
	const maxDeg = 10000
	if v > maxDeg {
		v = maxDeg
	}
	return v
}
