package webgraph

import (
	"fmt"
	"strings"
)

// Stats summarizes the structural statistics that drive the paper's
// arguments: link locality (§4.1 partitioning), external leakage
// (Figure 7's ≈0.3 average rank), and degree shape.
type Stats struct {
	Pages         int
	Sites         int
	InternalLinks int64
	ExternalLinks int64
	// IntraSiteLinks counts internal links whose endpoints share a site.
	IntraSiteLinks int64
	// Dangling counts pages with no out-links at all (d(u) == 0).
	Dangling      int
	MaxOutDegree  int
	MeanOutDegree float64
}

// IntraSiteFrac returns the fraction of internal links that stay within
// one site, or 0 when there are no internal links.
func (s Stats) IntraSiteFrac() float64 {
	if s.InternalLinks == 0 {
		return 0
	}
	return float64(s.IntraSiteLinks) / float64(s.InternalLinks)
}

// ExternalFrac returns the fraction of all links that leave the crawl,
// or 0 when there are no links.
func (s Stats) ExternalFrac() float64 {
	total := s.InternalLinks + s.ExternalLinks
	if total == 0 {
		return 0
	}
	return float64(s.ExternalLinks) / float64(total)
}

// String renders the stats as a small human-readable report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pages=%d sites=%d\n", s.Pages, s.Sites)
	fmt.Fprintf(&b, "links: internal=%d external=%d (external frac %.3f)\n",
		s.InternalLinks, s.ExternalLinks, s.ExternalFrac())
	fmt.Fprintf(&b, "intra-site internal links: %d (%.3f of internal)\n",
		s.IntraSiteLinks, s.IntraSiteFrac())
	fmt.Fprintf(&b, "out-degree: mean=%.2f max=%d dangling=%d\n",
		s.MeanOutDegree, s.MaxOutDegree, s.Dangling)
	return b.String()
}

// ComputeStats scans the graph once and returns its Stats. It
// streams over InternalOut windows, so it works unchanged on a Mapped
// store without materializing anything.
func ComputeStats(g Store) Stats {
	s := Stats{
		Pages:         g.NumPages(),
		Sites:         g.NumSites(),
		InternalLinks: g.NumInternalLinks(),
		ExternalLinks: g.NumExternalLinks(),
	}
	var degSum int64
	for p := 0; p < g.NumPages(); p++ {
		u := int32(p)
		d := g.OutDegree(u)
		degSum += int64(d)
		if d == 0 {
			s.Dangling++
		}
		if d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		su := g.SiteOf(u)
		for _, v := range g.InternalOut(u) {
			if g.SiteOf(v) == su {
				s.IntraSiteLinks++
			}
		}
	}
	if s.Pages > 0 {
		s.MeanOutDegree = float64(degSum) / float64(s.Pages)
	}
	return s
}

// InDegrees returns the internal in-degree of every page.
func InDegrees(g Store) []int32 {
	in := make([]int32, g.NumPages())
	for p := 0; p < g.NumPages(); p++ {
		for _, v := range g.InternalOut(int32(p)) {
			in[v]++
		}
	}
	return in
}
