// Package webgraph models a crawled web link graph: pages grouped into
// sites, with internal links (both endpoints inside the crawl) stored in
// compressed sparse row form and external links (pointing at pages the
// crawler never fetched) counted per page.
//
// The external-link count matters for reproducing the paper: in the
// Google programming-contest dataset only 7M of 15M links point at pages
// inside the dataset, and because PageRank mass sent along an external
// link leaves the system, the converged average rank in Figure 7 is ≈0.3
// rather than 1. A page's out-degree d(u) therefore always counts both
// internal and external links.
package webgraph

import (
	"fmt"
)

// Graph is an immutable crawled link graph. Build one with a Builder,
// the Generate function, or one of the Read functions.
type Graph struct {
	// Sites holds the hostname of every site, indexed by site ID.
	Sites []string
	// SiteOf maps a page index to its site ID.
	SiteOf []int32
	// LocalID maps a page index to its ordinal within its site; it is
	// used to derive stable page URLs.
	LocalID []int32
	// OutPtr/OutDst is the CSR adjacency of internal links: page u's
	// internal out-neighbours are OutDst[OutPtr[u]:OutPtr[u+1]].
	OutPtr []int64
	OutDst []int32
	// ExtOut counts the external out-links of each page (links whose
	// destination is outside the crawl).
	ExtOut []int32
}

// NumPages returns the number of pages in the graph.
func (g *Graph) NumPages() int { return len(g.SiteOf) }

// NumSites returns the number of sites in the graph.
func (g *Graph) NumSites() int { return len(g.Sites) }

// NumInternalLinks returns the number of links with both endpoints in
// the crawl.
func (g *Graph) NumInternalLinks() int64 { return int64(len(g.OutDst)) }

// NumExternalLinks returns the number of links whose destination is
// outside the crawl.
func (g *Graph) NumExternalLinks() int64 {
	var n int64
	for _, c := range g.ExtOut {
		n += int64(c)
	}
	return n
}

// OutDegree returns d(u): the total out-degree of page u, counting both
// internal and external links. This is the denominator used when page u
// distributes its rank.
func (g *Graph) OutDegree(u int32) int {
	return int(g.OutPtr[u+1]-g.OutPtr[u]) + int(g.ExtOut[u])
}

// InternalOut returns the internal out-neighbours of page u. The
// returned slice aliases graph storage and must not be modified.
func (g *Graph) InternalOut(u int32) []int32 {
	return g.OutDst[g.OutPtr[u]:g.OutPtr[u+1]]
}

// URL returns the canonical URL of page p, derived from its site name
// and local ordinal. URLs are synthesized rather than stored so that a
// million-page graph does not hold a million strings.
func (g *Graph) URL(p int32) string {
	return fmt.Sprintf("http://%s/p%d.html", g.Sites[g.SiteOf[p]], g.LocalID[p])
}

// SiteName returns the hostname of page p's site.
func (g *Graph) SiteName(p int32) string { return g.Sites[g.SiteOf[p]] }

// PagesOfSite returns the page indices belonging to site s, in
// increasing order.
func (g *Graph) PagesOfSite(s int32) []int32 {
	var out []int32
	for p, ps := range g.SiteOf {
		if ps == s {
			out = append(out, int32(p))
		}
	}
	return out
}

// Validate checks structural invariants: monotone CSR pointers, in-range
// destinations and site IDs, and matching slice lengths. A Graph built
// by this package always validates; the check exists for graphs read
// from external files.
func (g *Graph) Validate() error {
	n := g.NumPages()
	if len(g.LocalID) != n || len(g.ExtOut) != n {
		return fmt.Errorf("webgraph: per-page slice lengths disagree (%d pages, %d local ids, %d ext counts)",
			n, len(g.LocalID), len(g.ExtOut))
	}
	if len(g.OutPtr) != n+1 {
		return fmt.Errorf("webgraph: OutPtr has length %d, want %d", len(g.OutPtr), n+1)
	}
	if n > 0 && (g.OutPtr[0] != 0 || g.OutPtr[n] != int64(len(g.OutDst))) {
		return fmt.Errorf("webgraph: OutPtr endpoints [%d,%d] disagree with %d edges",
			g.OutPtr[0], g.OutPtr[n], len(g.OutDst))
	}
	for i := 0; i < n; i++ {
		if g.OutPtr[i] > g.OutPtr[i+1] {
			return fmt.Errorf("webgraph: OutPtr not monotone at page %d", i)
		}
		if s := g.SiteOf[i]; s < 0 || int(s) >= len(g.Sites) {
			return fmt.Errorf("webgraph: page %d has invalid site %d", i, s)
		}
		if g.ExtOut[i] < 0 {
			return fmt.Errorf("webgraph: page %d has negative external count", i)
		}
	}
	for k, d := range g.OutDst {
		if d < 0 || int(d) >= n {
			return fmt.Errorf("webgraph: edge %d targets invalid page %d", k, d)
		}
	}
	return nil
}

// Builder accumulates sites, pages, and links, then produces an
// immutable Graph. The zero value is ready to use.
type Builder struct {
	sites    []string
	siteIdx  map[string]int32
	siteOf   []int32
	localID  []int32
	perSite  []int32 // next local ordinal per site
	extOut   []int32
	links    [][2]int32 // internal links as (src, dst)
	finished bool
}

// AddSite registers a site by hostname and returns its ID. Adding the
// same hostname twice returns the existing ID.
func (b *Builder) AddSite(host string) int32 {
	if b.siteIdx == nil {
		b.siteIdx = make(map[string]int32)
	}
	if id, ok := b.siteIdx[host]; ok {
		return id
	}
	id := int32(len(b.sites))
	b.sites = append(b.sites, host)
	b.siteIdx[host] = id
	b.perSite = append(b.perSite, 0)
	return id
}

// AddPage adds a page to site s and returns its page index. It panics
// if s is not a valid site ID.
func (b *Builder) AddPage(s int32) int32 {
	if s < 0 || int(s) >= len(b.sites) {
		panic(fmt.Sprintf("webgraph: AddPage with invalid site %d", s))
	}
	p := int32(len(b.siteOf))
	b.siteOf = append(b.siteOf, s)
	b.localID = append(b.localID, b.perSite[s])
	b.perSite[s]++
	b.extOut = append(b.extOut, 0)
	return p
}

// AddLink records an internal link from page u to page v. Both must be
// valid page indices.
func (b *Builder) AddLink(u, v int32) error {
	n := int32(len(b.siteOf))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("webgraph: link (%d,%d) out of range for %d pages", u, v, n)
	}
	b.links = append(b.links, [2]int32{u, v})
	return nil
}

// AddExternalLinks records that page u has k out-links pointing outside
// the crawl.
func (b *Builder) AddExternalLinks(u int32, k int) error {
	if u < 0 || int(u) >= len(b.siteOf) {
		return fmt.Errorf("webgraph: external links for invalid page %d", u)
	}
	if k < 0 {
		return fmt.Errorf("webgraph: negative external link count %d", k)
	}
	b.extOut[u] += int32(k)
	return nil
}

// NumPages returns the number of pages added so far.
func (b *Builder) NumPages() int { return len(b.siteOf) }

// Build assembles the immutable Graph. The Builder must not be used
// afterwards.
func (b *Builder) Build() *Graph {
	if b.finished {
		panic("webgraph: Build called twice")
	}
	b.finished = true
	n := len(b.siteOf)
	g := &Graph{
		Sites:   b.sites,
		SiteOf:  b.siteOf,
		LocalID: b.localID,
		OutPtr:  make([]int64, n+1),
		OutDst:  make([]int32, len(b.links)),
		ExtOut:  b.extOut,
	}
	// Counting sort links by source for CSR assembly.
	for _, l := range b.links {
		g.OutPtr[l[0]+1]++
	}
	for i := 0; i < n; i++ {
		g.OutPtr[i+1] += g.OutPtr[i]
	}
	next := make([]int64, n)
	copy(next, g.OutPtr[:n])
	for _, l := range b.links {
		g.OutDst[next[l[0]]] = l[1]
		next[l[0]]++
	}
	return g
}
