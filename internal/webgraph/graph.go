// Package webgraph models a crawled web link graph: pages grouped into
// sites, with internal links (both endpoints inside the crawl) stored in
// compressed sparse row form and external links (pointing at pages the
// crawler never fetched) counted per page.
//
// The external-link count matters for reproducing the paper: in the
// Google programming-contest dataset only 7M of 15M links point at pages
// inside the dataset, and because PageRank mass sent along an external
// link leaves the system, the converged average rank in Figure 7 is ≈0.3
// rather than 1. A page's out-degree d(u) therefore always counts both
// internal and external links.
//
// Graph access goes through the Store interface (see store.go), which
// has two implementations: Graph, the in-memory arrays built here, and
// Mapped, a read-only view over the on-disk binary format whose arrays
// are memory-mapped so multi-million-page crawls load in O(1)
// (see mapped.go and DESIGN.md §15).
package webgraph

import (
	"fmt"
)

// Graph is an immutable crawled link graph held fully in memory. Build
// one with a Builder, the Generate function, or one of the Read
// functions. It implements Store.
type Graph struct {
	// sites holds the hostname of every site, indexed by site ID.
	sites []string
	// siteOf maps a page index to its site ID.
	siteOf []int32
	// localID maps a page index to its ordinal within its site; it is
	// used to derive stable page URLs.
	localID []int32
	// outPtr/outDst is the CSR adjacency of internal links: page u's
	// internal out-neighbours are outDst[outPtr[u]:outPtr[u+1]].
	outPtr []int64
	outDst []int32
	// extOut counts the external out-links of each page (links whose
	// destination is outside the crawl).
	extOut []int32

	// extLinks caches sum(extOut) and fp the canonical fingerprint;
	// both are computed once by seal() so NumExternalLinks and
	// Fingerprint are O(1) on a shared graph (no lazy writes — a Graph
	// is read concurrently by parallel experiment curves).
	extLinks int64
	fp       uint64
}

// seal freezes the derived values. Every constructor in this package
// (Builder.Build, ReadText, ReadBinary, Materialize) calls it exactly
// once, after which the graph must not be mutated.
func (g *Graph) seal() *Graph {
	g.extLinks = 0
	for _, c := range g.extOut {
		g.extLinks += int64(c)
	}
	g.fp = fingerprintArrays(g.sites, g.siteOf, g.localID, g.extOut, g.outPtr, g.outDst)
	return g
}

// NumPages returns the number of pages in the graph.
func (g *Graph) NumPages() int { return len(g.siteOf) }

// NumSites returns the number of sites in the graph.
func (g *Graph) NumSites() int { return len(g.sites) }

// NumInternalLinks returns the number of links with both endpoints in
// the crawl.
func (g *Graph) NumInternalLinks() int64 { return int64(len(g.outDst)) }

// NumExternalLinks returns the number of links whose destination is
// outside the crawl. The sum is cached at build/read time.
func (g *Graph) NumExternalLinks() int64 { return g.extLinks }

// OutDegree returns d(u): the total out-degree of page u, counting both
// internal and external links. This is the denominator used when page u
// distributes its rank.
//
//p2plint:hotpath
func (g *Graph) OutDegree(u int32) int {
	return int(g.outPtr[u+1]-g.outPtr[u]) + int(g.extOut[u])
}

// InternalOut returns the internal out-neighbours of page u. The
// returned slice borrows graph storage and must not be modified or
// retained past the life of the store.
//
//p2plint:hotpath
func (g *Graph) InternalOut(u int32) []int32 {
	return g.outDst[g.outPtr[u]:g.outPtr[u+1]]
}

// ExtOut returns the number of external out-links of page u.
//
//p2plint:hotpath
func (g *Graph) ExtOut(u int32) int32 { return g.extOut[u] }

// SiteOf returns the site ID of page p.
func (g *Graph) SiteOf(p int32) int32 { return g.siteOf[p] }

// LocalID returns page p's ordinal within its site.
func (g *Graph) LocalID(p int32) int32 { return g.localID[p] }

// SiteHost returns the hostname of site s.
func (g *Graph) SiteHost(s int32) string { return g.sites[s] }

// URL returns the canonical URL of page p, derived from its site name
// and local ordinal. URLs are synthesized rather than stored so that a
// million-page graph does not hold a million strings.
func (g *Graph) URL(p int32) string {
	return fmt.Sprintf("http://%s/p%d.html", g.sites[g.siteOf[p]], g.localID[p])
}

// SiteName returns the hostname of page p's site.
func (g *Graph) SiteName(p int32) string { return g.sites[g.siteOf[p]] }

// Fingerprint returns the canonical structure fingerprint (see
// Fingerprint in store.go), computed once at build/read time.
func (g *Graph) Fingerprint() uint64 { return g.fp }

// Validate checks structural invariants: monotone CSR pointers, in-range
// destinations and site IDs, and matching slice lengths. A Graph built
// by this package always validates; the check exists for graphs read
// from external files.
func (g *Graph) Validate() error {
	n := g.NumPages()
	if len(g.localID) != n || len(g.extOut) != n {
		return fmt.Errorf("webgraph: per-page slice lengths disagree (%d pages, %d local ids, %d ext counts)",
			n, len(g.localID), len(g.extOut))
	}
	if len(g.outPtr) != n+1 {
		return fmt.Errorf("webgraph: OutPtr has length %d, want %d", len(g.outPtr), n+1)
	}
	if n > 0 && (g.outPtr[0] != 0 || g.outPtr[n] != int64(len(g.outDst))) {
		return fmt.Errorf("webgraph: OutPtr endpoints [%d,%d] disagree with %d edges",
			g.outPtr[0], g.outPtr[n], len(g.outDst))
	}
	for i := 0; i < n; i++ {
		if g.outPtr[i] > g.outPtr[i+1] {
			return fmt.Errorf("webgraph: OutPtr not monotone at page %d", i)
		}
		if s := g.siteOf[i]; s < 0 || int(s) >= len(g.sites) {
			return fmt.Errorf("webgraph: page %d has invalid site %d", i, s)
		}
		if g.extOut[i] < 0 {
			return fmt.Errorf("webgraph: page %d has negative external count", i)
		}
	}
	for k, d := range g.outDst {
		if d < 0 || int(d) >= n {
			return fmt.Errorf("webgraph: edge %d targets invalid page %d", k, d)
		}
	}
	return nil
}

// Builder accumulates sites, pages, and links, then produces an
// immutable Graph. The zero value is ready to use.
type Builder struct {
	sites    []string
	siteIdx  map[string]int32
	siteOf   []int32
	localID  []int32
	perSite  []int32 // next local ordinal per site
	extOut   []int32
	links    [][2]int32 // internal links as (src, dst)
	finished bool
}

// AddSite registers a site by hostname and returns its ID. Adding the
// same hostname twice returns the existing ID.
func (b *Builder) AddSite(host string) int32 {
	if b.siteIdx == nil {
		b.siteIdx = make(map[string]int32)
	}
	if id, ok := b.siteIdx[host]; ok {
		return id
	}
	id := int32(len(b.sites))
	b.sites = append(b.sites, host)
	b.siteIdx[host] = id
	b.perSite = append(b.perSite, 0)
	return id
}

// AddPage adds a page to site s and returns its page index. It panics
// if s is not a valid site ID.
func (b *Builder) AddPage(s int32) int32 {
	if s < 0 || int(s) >= len(b.sites) {
		panic(fmt.Sprintf("webgraph: AddPage with invalid site %d", s))
	}
	p := int32(len(b.siteOf))
	b.siteOf = append(b.siteOf, s)
	b.localID = append(b.localID, b.perSite[s])
	b.perSite[s]++
	b.extOut = append(b.extOut, 0)
	return p
}

// SetLocalID overrides page p's local ordinal. Crawl snapshots use it
// to preserve true-web ordinals (and hence stable URLs) regardless of
// discovery order; p must be a page previously returned by AddPage.
func (b *Builder) SetLocalID(p, id int32) error {
	if p < 0 || int(p) >= len(b.siteOf) {
		return fmt.Errorf("webgraph: SetLocalID for invalid page %d", p)
	}
	b.localID[p] = id
	return nil
}

// AddLink records an internal link from page u to page v. Both must be
// valid page indices.
func (b *Builder) AddLink(u, v int32) error {
	n := int32(len(b.siteOf))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("webgraph: link (%d,%d) out of range for %d pages", u, v, n)
	}
	b.links = append(b.links, [2]int32{u, v})
	return nil
}

// AddExternalLinks records that page u has k out-links pointing outside
// the crawl.
func (b *Builder) AddExternalLinks(u int32, k int) error {
	if u < 0 || int(u) >= len(b.siteOf) {
		return fmt.Errorf("webgraph: external links for invalid page %d", u)
	}
	if k < 0 {
		return fmt.Errorf("webgraph: negative external link count %d", k)
	}
	b.extOut[u] += int32(k)
	return nil
}

// NumPages returns the number of pages added so far.
func (b *Builder) NumPages() int { return len(b.siteOf) }

// Build assembles the immutable Graph. The Builder must not be used
// afterwards.
func (b *Builder) Build() *Graph {
	if b.finished {
		panic("webgraph: Build called twice")
	}
	b.finished = true
	n := len(b.siteOf)
	g := &Graph{
		sites:   b.sites,
		siteOf:  b.siteOf,
		localID: b.localID,
		outPtr:  make([]int64, n+1),
		outDst:  make([]int32, len(b.links)),
		extOut:  b.extOut,
	}
	// Counting sort links by source for CSR assembly.
	for _, l := range b.links {
		g.outPtr[l[0]+1]++
	}
	for i := 0; i < n; i++ {
		g.outPtr[i+1] += g.outPtr[i]
	}
	next := make([]int64, n)
	copy(next, g.outPtr[:n])
	for _, l := range b.links {
		g.outDst[next[l[0]]] = l[1]
		next[l[0]]++
	}
	return g.seal()
}
