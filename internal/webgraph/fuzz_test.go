package webgraph

import (
	"bytes"
	"testing"
)

// FuzzReadBinary throws arbitrary bytes at both binary readers. The
// contract under fuzzing: return an error or a graph that passes
// Validate — never panic, never allocate proportionally to a lying
// header (readI32s chunks for exactly that reason).
func FuzzReadBinary(f *testing.F) {
	g := func() *Graph {
		var b Builder
		s := b.AddSite("seed.example")
		p0 := b.AddPage(s)
		p1 := b.AddPage(s)
		b.AddLink(p0, p1)
		b.AddLink(p1, p0)
		b.AddExternalLinks(p1, 2)
		return b.Build()
	}()
	var v1, v2 bytes.Buffer
	if err := WriteBinary(&v1, g); err != nil {
		f.Fatal(err)
	}
	if err := WriteMapped(&v2, g); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:20])
	f.Add(v2.Bytes()[:80])
	f.Add([]byte("P2PRGRPH"))
	f.Add([]byte("not a graph at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if rg, err := ReadBinary(bytes.NewReader(data)); err == nil {
			// ReadBinary validates internally; a second pass must agree.
			if err := rg.Validate(); err != nil {
				t.Fatalf("ReadBinary returned invalid graph: %v", err)
			}
		}
		m, err := MappedFromBytes(data)
		if err != nil {
			return
		}
		// Open succeeded: structural accessors must be safe for
		// anything Validate accepts.
		if err := m.Validate(); err == nil {
			for p := 0; p < m.NumPages(); p++ {
				u := int32(p)
				_ = m.OutDegree(u)
				_ = m.InternalOut(u)
				_ = m.URL(u)
			}
		}
		m.Close()
	})
}
