package webgraph

import "hash/fnv"

// Store is read-only access to a crawled link graph. It is the seam
// between graph storage and every consumer (partitioning, group
// assembly, the centralized reference solver, experiments): callers
// never see the backing arrays, so a graph may live fully in memory
// (Graph) or stay on disk behind an mmap (Mapped) without the consumer
// changing.
//
// Slices returned by InternalOut borrow the store's backing memory:
// they must not be modified, and for a Mapped store they become invalid
// once Close unmaps the file. Copy before retaining.
//
// All implementations are immutable after construction and safe for
// concurrent readers.
type Store interface {
	// NumPages returns the number of pages in the graph.
	NumPages() int
	// NumSites returns the number of sites in the graph.
	NumSites() int
	// NumInternalLinks returns the number of links with both endpoints
	// inside the crawl.
	NumInternalLinks() int64
	// NumExternalLinks returns the number of links whose destination is
	// outside the crawl. O(1): both stores cache the sum.
	NumExternalLinks() int64
	// OutDegree returns d(u), counting internal and external links.
	OutDegree(u int32) int
	// InternalOut returns page u's internal out-neighbours as a
	// borrowed slice (see the interface comment).
	InternalOut(u int32) []int32
	// ExtOut returns the number of external out-links of page u.
	ExtOut(u int32) int32
	// SiteOf returns the site ID of page p.
	SiteOf(p int32) int32
	// LocalID returns page p's ordinal within its site.
	LocalID(p int32) int32
	// SiteHost returns the hostname of site s.
	SiteHost(s int32) string
	// URL returns the canonical URL of page p.
	URL(p int32) string
	// SiteName returns the hostname of page p's site.
	SiteName(p int32) string
	// Fingerprint returns a stable FNV-64a digest of the graph
	// structure: equal fingerprints mean byte-identical sites, page
	// tables, and adjacency, independent of how the graph is stored.
	Fingerprint() uint64
	// Validate checks structural invariants (monotone CSR pointers,
	// in-range IDs). O(pages + links).
	Validate() error
}

// fingerprintArrays is the one canonical digest both stores agree on:
// FNV-64a over the three counts, the length-prefixed site hostnames,
// and the raw little-endian page/adjacency arrays, in that order. The
// on-disk format embeds the result in its header so a Mapped store
// answers Fingerprint without touching the arrays.
func fingerprintArrays(sites []string, siteOf, localID, extOut []int32, outPtr []int64, outDst []int32) uint64 {
	h := fnv.New64a()
	var buf [4096]byte
	n := 0
	flush := func() {
		h.Write(buf[:n])
		n = 0
	}
	w64 := func(v uint64) {
		if n+8 > len(buf) {
			flush()
		}
		for i := 0; i < 8; i++ {
			buf[n+i] = byte(v >> (8 * i))
		}
		n += 8
	}
	w32 := func(v uint32) {
		if n+4 > len(buf) {
			flush()
		}
		buf[n] = byte(v)
		buf[n+1] = byte(v >> 8)
		buf[n+2] = byte(v >> 16)
		buf[n+3] = byte(v >> 24)
		n += 4
	}
	w64(uint64(len(sites)))
	w64(uint64(len(siteOf)))
	w64(uint64(len(outDst)))
	for _, host := range sites {
		w64(uint64(len(host)))
		flush()
		h.Write([]byte(host))
	}
	for _, arr := range [][]int32{siteOf, localID, extOut, outDst} {
		for _, v := range arr {
			w32(uint32(v))
		}
	}
	for _, v := range outPtr {
		w64(uint64(v))
	}
	flush()
	return h.Sum64()
}

// FingerprintOf recomputes a store's canonical fingerprint from its
// contents (as opposed to Fingerprint, which both stores answer from a
// cached or on-disk value). Mapped.Validate uses it to detect payload
// corruption; tests use it to pin cross-store equality.
func FingerprintOf(s Store) uint64 {
	nPages := s.NumPages()
	nSites := s.NumSites()
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:8])
	}
	w32 := func(v uint32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:4])
	}
	w64(uint64(nSites))
	w64(uint64(nPages))
	w64(uint64(s.NumInternalLinks()))
	for i := 0; i < nSites; i++ {
		host := s.SiteHost(int32(i))
		w64(uint64(len(host)))
		h.Write([]byte(host))
	}
	for p := 0; p < nPages; p++ {
		w32(uint32(s.SiteOf(int32(p))))
	}
	for p := 0; p < nPages; p++ {
		w32(uint32(s.LocalID(int32(p))))
	}
	for p := 0; p < nPages; p++ {
		w32(uint32(s.ExtOut(int32(p))))
	}
	for p := 0; p < nPages; p++ {
		for _, v := range s.InternalOut(int32(p)) {
			w32(uint32(v))
		}
	}
	// OutPtr is hashed after OutDst; rebuild it from the window widths
	// (outPtr[0] = 0, outPtr[p+1] = outPtr[p] + len(window)).
	var off int64
	w64(0)
	for p := 0; p < nPages; p++ {
		off += int64(len(s.InternalOut(int32(p))))
		w64(uint64(off))
	}
	return h.Sum64()
}

// Materialize returns an in-memory Graph with the same contents as s.
// If s is already a *Graph it is returned unchanged (stores are
// immutable); otherwise every array is copied, so the result outlives
// the source store's Close.
func Materialize(s Store) *Graph {
	if g, ok := s.(*Graph); ok {
		return g
	}
	nPages := s.NumPages()
	nSites := s.NumSites()
	g := &Graph{
		sites:   make([]string, nSites),
		siteOf:  make([]int32, nPages),
		localID: make([]int32, nPages),
		extOut:  make([]int32, nPages),
		outPtr:  make([]int64, nPages+1),
		outDst:  make([]int32, s.NumInternalLinks()),
	}
	for i := range g.sites {
		g.sites[i] = s.SiteHost(int32(i))
	}
	var off int64
	for p := 0; p < nPages; p++ {
		u := int32(p)
		g.siteOf[p] = s.SiteOf(u)
		g.localID[p] = s.LocalID(u)
		g.extOut[p] = s.ExtOut(u)
		g.outPtr[p] = off
		off += int64(copy(g.outDst[off:], s.InternalOut(u)))
	}
	g.outPtr[nPages] = off
	return g.seal()
}

// PagesOfSite returns the page indices belonging to site s, in
// increasing order.
func PagesOfSite(g Store, s int32) []int32 {
	var out []int32
	for p := 0; p < g.NumPages(); p++ {
		if g.SiteOf(int32(p)) == s {
			out = append(out, int32(p))
		}
	}
	return out
}
