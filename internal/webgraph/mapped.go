package webgraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// On-disk binary format, version 2 ("mapped" format)
//
// Version 1 (io.go) streams the arrays through binary.Read, so opening
// a crawl costs O(pages + links) time and RAM. Version 2 lays the same
// arrays out so a reader can point at them in place:
//
//	offset  size  field
//	0       8     magic "P2PRGRPH"
//	8       8     u64 version = 2
//	16      8     u64 sites
//	24      8     u64 pages
//	32      8     u64 internal links
//	40      8     u64 external links (cached sum of ExtOut)
//	48      8     u64 fingerprint (see Store.Fingerprint)
//	56      8     u64 section count = 7
//	64      7×24  section table: {u32 kind, u32 elemSize, u64 off, u64 count}
//	232     ...   section payloads, each 8-byte aligned, zero-padded
//
// Sections appear in fixed kind order: site-name offsets
// (u32 × sites+1, cumulative into the blob), site-name blob (bytes),
// SiteOf / LocalID / ExtOut (i32 × pages each), OutPtr (i64 × pages+1),
// OutDst (i32 × links). Everything is little-endian fixed width, so on
// a little-endian host every array section can be aliased directly over
// the mapped bytes; big-endian or misaligned inputs fall back to a
// decode copy. The writer is a single pass: the layout (and the
// fingerprint, cached on every Store) is known up front, so sections
// stream out in order with no backpatching.
const (
	mappedVersion  = 2
	mappedSections = 7
	// mappedHeaderLen covers the fixed header plus the section table.
	mappedHeaderLen = 64 + mappedSections*24
)

// Section kinds, in required file order.
const (
	secSiteOff uint32 = iota + 1
	secSiteBlob
	secSiteOf
	secLocalID
	secExtOut
	secOutPtr
	secOutDst
)

var sectionNames = [...]string{
	secSiteOff:  "site-offsets",
	secSiteBlob: "site-names",
	secSiteOf:   "site-of",
	secLocalID:  "local-id",
	secExtOut:   "ext-out",
	secOutPtr:   "out-ptr",
	secOutDst:   "out-dst",
}

// SectionInfo describes one section of the version-2 layout for a
// given graph, before padding. genweb -stats prints these.
type SectionInfo struct {
	Name  string
	Count int64 // elements (bytes for the name blob)
	Bytes int64 // payload bytes, excluding alignment padding
}

type sectionDesc struct {
	kind     uint32
	elemSize uint32
	off      uint64
	count    uint64
}

func (d sectionDesc) bytes() uint64 { return d.count * uint64(d.elemSize) }

func align8(x uint64) uint64 { return (x + 7) &^ 7 }

// mappedLayout computes the section table for s and the total file
// size in bytes.
func mappedLayout(s Store) ([mappedSections]sectionDesc, uint64) {
	sites := uint64(s.NumSites())
	pages := uint64(s.NumPages())
	links := uint64(s.NumInternalLinks())
	var blob uint64
	for i := 0; i < int(sites); i++ {
		blob += uint64(len(s.SiteHost(int32(i))))
	}
	descs := [mappedSections]sectionDesc{
		{kind: secSiteOff, elemSize: 4, count: sites + 1},
		{kind: secSiteBlob, elemSize: 1, count: blob},
		{kind: secSiteOf, elemSize: 4, count: pages},
		{kind: secLocalID, elemSize: 4, count: pages},
		{kind: secExtOut, elemSize: 4, count: pages},
		{kind: secOutPtr, elemSize: 8, count: pages + 1},
		{kind: secOutDst, elemSize: 4, count: links},
	}
	off := uint64(mappedHeaderLen)
	for i := range descs {
		off = align8(off)
		descs[i].off = off
		off += descs[i].bytes()
	}
	return descs, align8(off)
}

// MappedLayout reports the version-2 section sizes the graph would
// occupy on disk and the total file size including header and padding.
func MappedLayout(s Store) ([]SectionInfo, int64) {
	descs, total := mappedLayout(s)
	infos := make([]SectionInfo, len(descs))
	for i, d := range descs {
		infos[i] = SectionInfo{
			Name:  sectionNames[d.kind],
			Count: int64(d.count),
			Bytes: int64(d.bytes()),
		}
	}
	return infos, int64(total)
}

// WriteMapped writes s in the version-2 binary format in a single
// pass. The result opens in O(1) via OpenMapped.
func WriteMapped(w io.Writer, s Store) error {
	descs, _ := mappedLayout(s)
	bw := bufio.NewWriterSize(w, 1<<16)
	var scratch [4096]byte
	pos := uint64(0)
	emit := func(b []byte) error {
		_, err := bw.Write(b)
		pos += uint64(len(b))
		return err
	}
	w64 := func(v uint64) error {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		return emit(b[:])
	}
	padTo := func(off uint64) error {
		if pos > off {
			return fmt.Errorf("webgraph: mapped writer overran section layout (%d > %d)", pos, off)
		}
		for pos < off {
			n := off - pos
			if n > uint64(len(scratch)) {
				n = uint64(len(scratch))
			}
			for i := uint64(0); i < n; i++ {
				scratch[i] = 0
			}
			if err := emit(scratch[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	// i32s/i64s stream count little-endian values produced by at(i).
	i32s := func(count uint64, at func(i int) int32) error {
		n := 0
		for i := uint64(0); i < count; i++ {
			if n+4 > len(scratch) {
				if err := emit(scratch[:n]); err != nil {
					return err
				}
				n = 0
			}
			v := uint32(at(int(i)))
			scratch[n] = byte(v)
			scratch[n+1] = byte(v >> 8)
			scratch[n+2] = byte(v >> 16)
			scratch[n+3] = byte(v >> 24)
			n += 4
		}
		return emit(scratch[:n])
	}

	if err := emit([]byte(binaryMagic)); err != nil {
		return err
	}
	hdr := []uint64{
		mappedVersion,
		uint64(s.NumSites()),
		uint64(s.NumPages()),
		uint64(s.NumInternalLinks()),
		uint64(s.NumExternalLinks()),
		s.Fingerprint(),
		mappedSections,
	}
	for _, v := range hdr {
		if err := w64(v); err != nil {
			return err
		}
	}
	for _, d := range descs {
		var b [8]byte
		for i := 0; i < 4; i++ {
			b[i] = byte(d.kind >> (8 * i))
			b[4+i] = byte(d.elemSize >> (8 * i))
		}
		if err := emit(b[:]); err != nil {
			return err
		}
		if err := w64(d.off); err != nil {
			return err
		}
		if err := w64(d.count); err != nil {
			return err
		}
	}

	nSites := s.NumSites()
	nPages := s.NumPages()
	for _, d := range descs {
		if err := padTo(d.off); err != nil {
			return err
		}
		var err error
		switch d.kind {
		case secSiteOff:
			var cum uint32
			err = i32s(d.count, func(i int) int32 {
				if i > 0 {
					cum += uint32(len(s.SiteHost(int32(i - 1))))
				}
				return int32(cum)
			})
		case secSiteBlob:
			for i := 0; i < nSites && err == nil; i++ {
				err = emit([]byte(s.SiteHost(int32(i))))
			}
		case secSiteOf:
			err = i32s(d.count, func(i int) int32 { return s.SiteOf(int32(i)) })
		case secLocalID:
			err = i32s(d.count, func(i int) int32 { return s.LocalID(int32(i)) })
		case secExtOut:
			err = i32s(d.count, func(i int) int32 { return s.ExtOut(int32(i)) })
		case secOutPtr:
			var off int64
			for i := uint64(0); i < d.count && err == nil; i++ {
				err = w64(uint64(off))
				if i < d.count-1 {
					off += int64(len(s.InternalOut(int32(i))))
				}
			}
		case secOutDst:
			for p := 0; p < nPages && err == nil; p++ {
				out := s.InternalOut(int32(p))
				err = i32s(uint64(len(out)), func(i int) int32 { return out[i] })
			}
		}
		if err != nil {
			return err
		}
	}
	_, total := mappedLayout(s)
	if err := padTo(total); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteMappedFile writes s at path in the version-2 format.
func WriteMappedFile(path string, s Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteMapped(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Mapped is a read-only Store over a version-2 binary graph whose
// arrays alias the underlying (usually memory-mapped) bytes: opening
// is O(1) in the graph size and pages fault in on demand. Slices
// returned by InternalOut borrow the mapping and die with Close.
type Mapped struct {
	data  []byte
	unmap func() error

	sites   []string // decoded eagerly: O(sites), sites ≪ pages
	siteOf  []int32
	localID []int32
	extOut  []int32
	outPtr  []int64
	outDst  []int32

	extLinks int64
	fp       uint64
}

// OpenMapped memory-maps the version-2 graph at path. Only the header,
// section table, and site-name table are touched, so opening a
// multi-million-page graph costs O(sites), not O(pages + links); run
// Validate for a full structural check. Callers must Close the result
// when done with it and with every slice borrowed from it.
func OpenMapped(path string) (*Mapped, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	m, err := parseMapped(data, unmap)
	if err != nil {
		unmap()
		return nil, err
	}
	return m, nil
}

// MappedFromBytes parses a version-2 graph already held in memory
// (tests, fuzzing). The store aliases data where alignment allows;
// data must not be mutated while the store is in use.
func MappedFromBytes(data []byte) (*Mapped, error) {
	return parseMapped(data, nil)
}

var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aliasI32 views count little-endian int32s at data[off:] — zero-copy
// on an aligned little-endian host, decode-copy otherwise. Bounds were
// checked by the caller.
func aliasI32(data []byte, off, count uint64) []int32 {
	if count == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[off]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&data[off])), count)
	}
	out := make([]int32, count)
	for i := range out {
		b := data[off+uint64(i)*4:]
		out[i] = int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	}
	return out
}

func aliasI64(data []byte, off, count uint64) []int64 {
	if count == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[off]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&data[off])), count)
	}
	out := make([]int64, count)
	for i := range out {
		b := data[off+uint64(i)*8:]
		out[i] = int64(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
	}
	return out
}

func readU64(data []byte, off int) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(data[off+i]) << (8 * i)
	}
	return v
}

func readU32(data []byte, off int) uint32 {
	return uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
}

// parseMapped checks the header and section table (O(1)) plus the site
// table (O(sites)), then aliases the arrays. It never reads the page
// or link sections, so corrupt payloads surface in Validate, not here.
func parseMapped(data []byte, unmap func() error) (*Mapped, error) {
	if len(data) < mappedHeaderLen {
		return nil, fmt.Errorf("webgraph: mapped: truncated header (%d bytes, need %d)", len(data), mappedHeaderLen)
	}
	if string(data[:8]) != binaryMagic {
		return nil, fmt.Errorf("webgraph: mapped: bad magic %q", data[:8])
	}
	version := readU64(data, 8)
	if version != mappedVersion {
		return nil, fmt.Errorf("webgraph: mapped: unsupported version %d (want %d; version-1 files go through ReadBinary)", version, mappedVersion)
	}
	sites := readU64(data, 16)
	pages := readU64(data, 24)
	links := readU64(data, 32)
	extLinks := readU64(data, 40)
	fp := readU64(data, 48)
	nsec := readU64(data, 56)
	const maxDim = 1 << 31
	if sites > maxDim || pages > maxDim || links > 1<<40 {
		return nil, fmt.Errorf("webgraph: mapped: implausible header (sites=%d pages=%d links=%d)", sites, pages, links)
	}
	if nsec != mappedSections {
		return nil, fmt.Errorf("webgraph: mapped: section count %d, want %d", nsec, mappedSections)
	}

	wantCount := map[uint32]uint64{
		secSiteOf:  pages,
		secLocalID: pages,
		secExtOut:  pages,
		secOutPtr:  pages + 1,
		secOutDst:  links,
		secSiteOff: sites + 1,
		// secSiteBlob count is free-form; validated against the offset
		// table below.
	}
	wantElem := map[uint32]uint32{
		secSiteOff: 4, secSiteBlob: 1, secSiteOf: 4, secLocalID: 4,
		secExtOut: 4, secOutPtr: 8, secOutDst: 4,
	}
	var descs [mappedSections]sectionDesc
	for i := 0; i < mappedSections; i++ {
		base := 64 + i*24
		d := sectionDesc{
			kind:     readU32(data, base),
			elemSize: readU32(data, base+4),
			off:      readU64(data, base+8),
			count:    readU64(data, base+16),
		}
		if d.kind != uint32(i)+1 {
			return nil, fmt.Errorf("webgraph: mapped: section %d has kind %d, want %d", i, d.kind, i+1)
		}
		if d.elemSize != wantElem[d.kind] {
			return nil, fmt.Errorf("webgraph: mapped: section %s has element size %d, want %d",
				sectionNames[d.kind], d.elemSize, wantElem[d.kind])
		}
		if want, ok := wantCount[d.kind]; ok && d.count != want {
			return nil, fmt.Errorf("webgraph: mapped: section %s has %d elements, header implies %d",
				sectionNames[d.kind], d.count, want)
		}
		if d.off%8 != 0 {
			return nil, fmt.Errorf("webgraph: mapped: section %s offset %d not 8-byte aligned", sectionNames[d.kind], d.off)
		}
		if d.off < mappedHeaderLen || d.bytes() > uint64(len(data)) || d.off > uint64(len(data))-d.bytes() {
			return nil, fmt.Errorf("webgraph: mapped: section %s [%d,+%d) outside file of %d bytes",
				sectionNames[d.kind], d.off, d.bytes(), len(data))
		}
		descs[i] = d
	}

	// Decode the site-name table eagerly.
	siteOff := aliasI32(data, descs[0].off, descs[0].count)
	blob := descs[1]
	names := make([]string, sites)
	prev := int32(0)
	for i := range names {
		lo, hi := siteOff[i], siteOff[i+1]
		if lo != prev || hi < lo || uint64(hi) > blob.count {
			return nil, fmt.Errorf("webgraph: mapped: site-name offsets corrupt at site %d", i)
		}
		names[i] = string(data[blob.off+uint64(lo) : blob.off+uint64(hi)])
		prev = hi
	}
	if uint64(prev) != blob.count {
		return nil, fmt.Errorf("webgraph: mapped: site-name blob has %d bytes, offsets cover %d", blob.count, prev)
	}

	m := &Mapped{
		data:     data,
		unmap:    unmap,
		sites:    names,
		siteOf:   aliasI32(data, descs[2].off, descs[2].count),
		localID:  aliasI32(data, descs[3].off, descs[3].count),
		extOut:   aliasI32(data, descs[4].off, descs[4].count),
		outPtr:   aliasI64(data, descs[5].off, descs[5].count),
		outDst:   aliasI32(data, descs[6].off, descs[6].count),
		extLinks: int64(extLinks),
		fp:       fp,
	}
	// O(1) endpoint sanity so OutDegree/InternalOut can trust the CSR
	// bounds. Full monotonicity is Validate's job.
	if pages > 0 && (m.outPtr[0] != 0 || m.outPtr[pages] != int64(links)) {
		return nil, fmt.Errorf("webgraph: mapped: OutPtr endpoints [%d,%d] disagree with %d links",
			m.outPtr[0], m.outPtr[pages], links)
	}
	return m, nil
}

// Close releases the mapping. Every slice borrowed from the store
// (InternalOut results, most of all) is invalid afterwards.
func (m *Mapped) Close() error {
	m.siteOf, m.localID, m.extOut, m.outPtr, m.outDst = nil, nil, nil, nil, nil
	m.data = nil
	if m.unmap == nil {
		return nil
	}
	u := m.unmap
	m.unmap = nil
	return u()
}

// NumPages returns the number of pages in the graph.
func (m *Mapped) NumPages() int { return len(m.siteOf) }

// NumSites returns the number of sites in the graph.
func (m *Mapped) NumSites() int { return len(m.sites) }

// NumInternalLinks returns the number of links inside the crawl.
func (m *Mapped) NumInternalLinks() int64 { return int64(len(m.outDst)) }

// NumExternalLinks returns the header's cached external-link sum.
func (m *Mapped) NumExternalLinks() int64 { return m.extLinks }

// OutDegree returns d(u), counting internal and external links.
//
//p2plint:hotpath
func (m *Mapped) OutDegree(u int32) int {
	return int(m.outPtr[u+1]-m.outPtr[u]) + int(m.extOut[u])
}

// InternalOut returns page u's internal out-neighbours as a slice
// borrowing the mapping; it must not be modified and dies with Close.
//
//p2plint:hotpath
func (m *Mapped) InternalOut(u int32) []int32 {
	return m.outDst[m.outPtr[u]:m.outPtr[u+1]]
}

// ExtOut returns the number of external out-links of page u.
//
//p2plint:hotpath
func (m *Mapped) ExtOut(u int32) int32 { return m.extOut[u] }

// SiteOf returns the site ID of page p.
func (m *Mapped) SiteOf(p int32) int32 { return m.siteOf[p] }

// LocalID returns page p's ordinal within its site.
func (m *Mapped) LocalID(p int32) int32 { return m.localID[p] }

// SiteHost returns the hostname of site s.
func (m *Mapped) SiteHost(s int32) string { return m.sites[s] }

// URL returns the canonical URL of page p.
func (m *Mapped) URL(p int32) string {
	return fmt.Sprintf("http://%s/p%d.html", m.sites[m.siteOf[p]], m.localID[p])
}

// SiteName returns the hostname of page p's site.
func (m *Mapped) SiteName(p int32) string { return m.sites[m.siteOf[p]] }

// Fingerprint returns the fingerprint recorded in the file header.
// Validate recomputes it from the payload.
func (m *Mapped) Fingerprint() uint64 { return m.fp }

// Validate walks the whole file: structural invariants (monotone CSR
// pointers, in-range IDs), the cached external-link sum, and the
// header fingerprint against a recomputation from the payload.
// O(pages + links) — the price OpenMapped deliberately skips.
func (m *Mapped) Validate() error {
	n := m.NumPages()
	for i := 0; i < n; i++ {
		if m.outPtr[i] > m.outPtr[i+1] {
			return fmt.Errorf("webgraph: mapped: OutPtr not monotone at page %d", i)
		}
		if s := m.siteOf[i]; s < 0 || int(s) >= len(m.sites) {
			return fmt.Errorf("webgraph: mapped: page %d has invalid site %d", i, s)
		}
		if m.extOut[i] < 0 {
			return fmt.Errorf("webgraph: mapped: page %d has negative external count", i)
		}
	}
	for k, d := range m.outDst {
		if d < 0 || int(d) >= n {
			return fmt.Errorf("webgraph: mapped: edge %d targets invalid page %d", k, d)
		}
	}
	var ext int64
	for _, c := range m.extOut {
		ext += int64(c)
	}
	if ext != m.extLinks {
		return fmt.Errorf("webgraph: mapped: header external-link count %d, payload sums to %d", m.extLinks, ext)
	}
	if got := FingerprintOf(m); got != m.fp {
		return fmt.Errorf("webgraph: mapped: header fingerprint %#x, payload hashes to %#x", m.fp, got)
	}
	return nil
}
