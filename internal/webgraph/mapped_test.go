package webgraph

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"testing"
)

// mappedBytes serializes g in the version-2 format.
func mappedBytes(t testing.TB, g Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMapped(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMappedRoundTripHandWritten(t *testing.T) {
	g := tinyGraph(t)
	m, err := MappedFromBytes(mappedBytes(t, g))
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, m)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMappedRoundTripGenerated(t *testing.T) {
	g, err := Generate(DefaultGenConfig(3000))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := WriteMappedFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	graphsEqual(t, g, m)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := FingerprintOf(m); got != g.Fingerprint() {
		t.Fatalf("recomputed fingerprint %#x, in-memory store says %#x", got, g.Fingerprint())
	}
}

func TestMappedEmptyGraph(t *testing.T) {
	var b Builder
	g := b.Build()
	m, err := MappedFromBytes(mappedBytes(t, g))
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, m)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// All three serializations of one graph — text, version-1 binary, and
// version-2 mapped — must decode to stores with identical structure
// and fingerprints.
func TestFormatsAgree(t *testing.T) {
	for _, pages := range []int{37, 1500} {
		g, err := Generate(DefaultGenConfig(pages))
		if err != nil {
			t.Fatal(err)
		}
		var tb, bb bytes.Buffer
		if err := WriteText(&tb, g); err != nil {
			t.Fatal(err)
		}
		if err := WriteBinary(&bb, g); err != nil {
			t.Fatal(err)
		}
		fromText, err := ReadText(&tb)
		if err != nil {
			t.Fatal(err)
		}
		fromV1, err := ReadBinary(&bb)
		if err != nil {
			t.Fatal(err)
		}
		fromV2, err := MappedFromBytes(mappedBytes(t, g))
		if err != nil {
			t.Fatal(err)
		}
		graphsEqual(t, g, fromText)
		graphsEqual(t, g, fromV1)
		graphsEqual(t, g, fromV2)
	}
}

func TestMaterializeCopiesMapped(t *testing.T) {
	g, err := Generate(DefaultGenConfig(800))
	if err != nil {
		t.Fatal(err)
	}
	m, err := MappedFromBytes(mappedBytes(t, g))
	if err != nil {
		t.Fatal(err)
	}
	cp := Materialize(m)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The copy must survive the source store's Close.
	graphsEqual(t, g, cp)
	if Materialize(g) != g {
		t.Fatal("Materialize of an in-memory graph should be identity")
	}
}

// TestMappedCorruptInputs table-tests the parser's error paths: every
// mutation of a valid file must produce an error at open (header and
// table damage) or at Validate (payload damage), never a panic or a
// silently wrong graph.
func TestMappedCorruptInputs(t *testing.T) {
	g := tinyGraph(t)
	valid := mappedBytes(t, g)
	descs, _ := mappedLayout(g)
	outPtrOff := int(descs[5].off)
	outDstOff := int(descs[6].off)
	siteOffOff := int(descs[0].off)

	openFails := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated header", func(b []byte) []byte { return b[:40] }},
		{"truncated mid-table", func(b []byte) []byte { return b[:100] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"version 1", func(b []byte) []byte { b[8] = 1; return b }},
		{"version 99", func(b []byte) []byte { b[8] = 99; return b }},
		{"implausible pages", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], 1<<40)
			return b
		}},
		{"wrong section count", func(b []byte) []byte { b[56] = 3; return b }},
		{"section kind out of order", func(b []byte) []byte { b[64] = 5; return b }},
		{"wrong element size", func(b []byte) []byte { b[64+4] = 2; return b }},
		{"section offset unaligned", func(b []byte) []byte { b[64+8]++; return b }},
		{"section count disagrees with header", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[64+16:], 99)
			return b
		}},
		{"section beyond file", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[64+6*24+8:], 1<<30)
			return b
		}},
		{"site offsets corrupt", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[siteOffOff+4:], 1<<20)
			return b
		}},
		{"outptr endpoint mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[outPtrOff+4*8:], 99) // last OutPtr entry
			return b
		}},
	}
	for _, tc := range openFails {
		data := tc.mutate(append([]byte(nil), valid...))
		if m, err := MappedFromBytes(data); err == nil {
			m.Close()
			t.Errorf("%s: accepted at open", tc.name)
		}
	}

	// Payload damage parses (open is O(1) and never reads it) but must
	// fail Validate.
	validateFails := []struct {
		name   string
		mutate func([]byte)
	}{
		{"edge out of range", func(b []byte) { binary.LittleEndian.PutUint32(b[outDstOff:], 1<<20) }},
		{"edge rewired", func(b []byte) { b[outDstOff] ^= 1 }}, // still in range: fingerprint catches it
		{"external count tampered", func(b []byte) {
			binary.LittleEndian.PutUint32(b[int(descs[4].off)+3*4:], 7)
		}},
	}
	for _, tc := range validateFails {
		data := append([]byte(nil), valid...)
		tc.mutate(data)
		m, err := MappedFromBytes(data)
		if err != nil {
			continue // even better: caught at open
		}
		if err := m.Validate(); err == nil {
			t.Errorf("%s: passed Validate", tc.name)
		}
		m.Close()
	}
}

func TestMappedLayoutSizes(t *testing.T) {
	g := tinyGraph(t) // 1 site ("example.edu" = 11 bytes), 4 pages, 4 links
	infos, total := MappedLayout(g)
	want := map[string]int64{
		"site-offsets": 8,  // u32 × 2
		"site-names":   11, // len("example.edu")
		"site-of":      16, // i32 × 4
		"local-id":     16,
		"ext-out":      16,
		"out-ptr":      40, // i64 × 5
		"out-dst":      16,
	}
	for _, info := range infos {
		if info.Bytes != want[info.Name] {
			t.Errorf("section %s = %d bytes, want %d", info.Name, info.Bytes, want[info.Name])
		}
	}
	if int64(len(mappedBytes(t, g))) != total {
		t.Errorf("MappedLayout total %d, written file is %d bytes", total, len(mappedBytes(t, g)))
	}
}

// BenchmarkGraphLoadMapped vs BenchmarkGraphLoadText is the storage
// tentpole's measured claim: opening the version-2 format is O(1) in
// the graph size (map, parse the 232-byte header and section table,
// decode site names), while the text format pays a full parse. Both
// load the same 10⁴-page graph.
func BenchmarkGraphLoadMapped(b *testing.B) {
	g, err := Generate(DefaultGenConfig(10000))
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "g.bin")
	if err := WriteMappedFile(path, g); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		if m.NumPages() != g.NumPages() {
			b.Fatal("wrong page count")
		}
		m.Close()
	}
}

func BenchmarkGraphLoadText(b *testing.B) {
	g, err := Generate(DefaultGenConfig(10000))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg, err := ReadText(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if rg.NumPages() != g.NumPages() {
			b.Fatal("wrong page count")
		}
	}
}

func TestMappedHeaderCaches(t *testing.T) {
	g, err := Generate(DefaultGenConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	m, err := MappedFromBytes(mappedBytes(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.NumExternalLinks() != g.NumExternalLinks() {
		t.Errorf("cached external links %d, want %d", m.NumExternalLinks(), g.NumExternalLinks())
	}
	if m.Fingerprint() != g.Fingerprint() {
		t.Errorf("cached fingerprint %#x, want %#x", m.Fingerprint(), g.Fingerprint())
	}
}
