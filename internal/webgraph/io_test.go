package webgraph

import (
	"bytes"
	"strings"
	"testing"
)

func graphsEqual(t *testing.T, a, b Store) {
	t.Helper()
	if a.NumPages() != b.NumPages() || a.NumSites() != b.NumSites() ||
		a.NumInternalLinks() != b.NumInternalLinks() ||
		a.NumExternalLinks() != b.NumExternalLinks() {
		t.Fatalf("shape mismatch: %d/%d pages, %d/%d sites, %d/%d links",
			a.NumPages(), b.NumPages(), a.NumSites(), b.NumSites(),
			a.NumInternalLinks(), b.NumInternalLinks())
	}
	for i := 0; i < a.NumSites(); i++ {
		if a.SiteHost(int32(i)) != b.SiteHost(int32(i)) {
			t.Fatalf("site %d: %q != %q", i, a.SiteHost(int32(i)), b.SiteHost(int32(i)))
		}
	}
	for p := 0; p < a.NumPages(); p++ {
		u := int32(p)
		if a.SiteOf(u) != b.SiteOf(u) || a.LocalID(u) != b.LocalID(u) || a.ExtOut(u) != b.ExtOut(u) {
			t.Fatalf("page %d metadata mismatch", p)
		}
		ao, bo := a.InternalOut(u), b.InternalOut(u)
		if len(ao) != len(bo) {
			t.Fatalf("page %d out-degree mismatch: %d != %d", p, len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("page %d edge %d mismatch", p, i)
			}
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical graphs, different fingerprints: %#x != %#x", a.Fingerprint(), b.Fingerprint())
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := tinyGraph(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestTextRoundTripGenerated(t *testing.T) {
	g, err := Generate(DefaultGenConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g, err := Generate(DefaultGenConfig(3000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	graphsEqual(t, g, g2)
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":  "frobnicate 1 2\n",
		"sparse site ids":    "site 5 a.edu\n",
		"bad page site":      "site 0 a.edu\npage 0 9\n",
		"link out of range":  "site 0 a.edu\npage 0 0\nlink 0 9\n",
		"negative ext":       "site 0 a.edu\npage 0 0\next 0 -1\n",
		"short site line":    "site 0\n",
		"non-numeric fields": "site 0 a.edu\npage x 0\n",
	}
	for name, input := range cases {
		if _, err := ReadText(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	input := "# a comment\n\nsite 0 a.edu\npage 0 0\n  \nlink 0 0\n"
	g, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPages() != 1 || g.NumInternalLinks() != 1 {
		t.Fatalf("parsed %d pages %d links", g.NumPages(), g.NumInternalLinks())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTMAGIC"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated header.
	if _, err := ReadBinary(bytes.NewReader([]byte("P2PRGRPH\x01"))); err == nil {
		t.Error("truncated header accepted")
	}
	// Corrupt version.
	g := tinyGraph(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 99 // version byte
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated body.
	buf.Reset()
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	g, err := Generate(DefaultGenConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, g); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Fatalf("binary (%d B) not smaller than text (%d B)", bb.Len(), tb.Len())
	}
}

func TestStatsString(t *testing.T) {
	s := ComputeStats(tinyGraph(t))
	out := s.String()
	for _, want := range []string{"pages=4", "internal=4", "external=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats %q missing %q", out, want)
		}
	}
}

func TestStatsEmptyGraph(t *testing.T) {
	var b Builder
	g := b.Build()
	s := ComputeStats(g)
	if s.IntraSiteFrac() != 0 || s.ExternalFrac() != 0 || s.MeanOutDegree != 0 {
		t.Fatalf("empty graph stats: %+v", s)
	}
}

func BenchmarkBinaryRoundTrip(b *testing.B) {
	g, err := Generate(DefaultGenConfig(10000))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteBinary(&buf, g); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWriteBinaryRejectsHugeHostname(t *testing.T) {
	var b Builder
	b.AddSite(strings.Repeat("x", 1<<16))
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err == nil {
		t.Fatal("oversized hostname accepted")
	}
}
