// Package lint is a self-contained static-analysis framework plus the
// project's analyzers. It mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer owns a Run function that
// inspects one type-checked package through a Pass — but is built
// entirely on the standard library (go/ast, go/types, go list) so the
// module stays dependency-free.
//
// The analyzers enforce the invariants that make the paper's
// experiments reproducible:
//
//   - norand: all randomness flows through the seeded internal/xrand
//     streams; direct math/rand imports are forbidden outside xrand.
//   - nowallclock: simulation-path packages (simnet, engine, ranker,
//     dprcore, experiments, par, telemetry) never read the wall clock;
//     sim time comes from the simnet virtual clock.
//   - floateq: rank values are never compared with ==/!= in the
//     floating-point packages (pagerank, vecmath, ranker, rankcmp);
//     comparisons must be epsilon-based or explicitly annotated.
//   - senderr: results of Send/Flush emit paths are never silently
//     discarded; failures must be propagated, logged, or counted.
//   - maporder: range-over-map in determinism-critical packages may not
//     have order-dependent effects (sends, ordered appends, FP
//     accumulation, telemetry); iterate a sorted key slice instead.
//   - hotalloc: //p2plint:hotpath functions and their same-package
//     callees contain no allocation sites (make/new, literals,
//     closures, undisciplined append, interface boxing).
//   - lockscope: no blocking call (send, net I/O, channel op, Wait)
//     while a mutex is held in the socket-facing packages.
//   - gorolife: every `go` statement in netpeer is tied to a shutdown
//     path (WaitGroup, done channel, or context).
//
// An intentional exception is annotated at the offending line (or the
// line above) with
//
//	//p2plint:allow <analyzer> -- <reason>
//
// which suppresses that analyzer's diagnostics for that line.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one analysis: a name, a doc string, and a Run
// function applied to every package under analysis.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an analyzer, exactly
// like analysis.Pass: syntax, type information, and a Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Report records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the project's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{NoRand, NoWallClock, FloatEq, SendErr, MapOrder, HotAlloc, LockScope, GoroLife}
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Diagnostics on lines carrying (or
// directly below) a matching //p2plint:allow directive are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &diags,
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			diags = filterAllowed(diags, before, allowed)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowKey identifies one suppressed (file, line, analyzer) site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowDirectives collects //p2plint:allow directives: each one
// suppresses the named analyzers on its own line and the line below
// (so it can sit above the statement it excuses).
func allowDirectives(pkg *Package) map[allowKey]bool {
	allowed := make(map[allowKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "p2plint:allow") {
					continue
				}
				text = strings.TrimPrefix(text, "p2plint:allow")
				// Drop an optional "-- reason" trailer.
				if i := strings.Index(text, "--"); i >= 0 {
					text = text[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Fields(text) {
					allowed[allowKey{pos.Filename, pos.Line, name}] = true
					allowed[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return allowed
}

// filterAllowed drops diagnostics appended since index `from` whose
// (file, line, analyzer) matches a directive.
func filterAllowed(diags []Diagnostic, from int, allowed map[allowKey]bool) []Diagnostic {
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:from]
	for _, d := range diags[from:] {
		if allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// exprString renders an expression in canonical Go syntax — the key the
// flow analyzers use to match the same receiver or slice across
// statements.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// pathHasSuffix reports whether import path `path` is exactly `suffix`
// or ends with "/"+suffix — the way analyzers scope rules to packages
// without caring about the module prefix (which differs between the
// real tree and test fixtures).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
