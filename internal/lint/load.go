package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// goList runs `go list -json args...` in dir and decodes the stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", args, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// chainImporter resolves module-local packages from the loader's own
// type-checked set and delegates everything else (the standard
// library) to the source importer.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.local[path]; ok {
		return pkg, nil
	}
	return c.std.Import(path)
}

// Load type-checks the packages matched by the go-list patterns (plus
// their module-local dependencies) and returns the matched ones. Only
// non-test Go files are loaded: the invariants guard production and
// simulation code, and test files routinely (and legitimately) use
// wall-clock sleeps and exact comparisons.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// The universe: every module-local package reachable from the
	// patterns, so dependencies can be type-checked first.
	deps, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(targets))
	for _, t := range targets {
		wanted[t.ImportPath] = true
	}

	local := make(map[string]*listedPackage)
	for _, p := range deps {
		if !p.Standard {
			local[p.ImportPath] = p
		}
	}
	order, err := topoSort(local)
	if err != nil {
		return nil, err
	}

	// The source importer type-checks the standard library from GOROOT
	// source; cgo is disabled so packages like net use their pure-Go
	// variants.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	imp := &chainImporter{
		local: make(map[string]*types.Package),
		std:   importer.ForCompiler(fset, "source", nil),
	}

	var out []*Package
	for _, path := range order {
		lp := local[path]
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		imp.local[path] = pkg.Types
		if wanted[path] {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the .go files of one directory under a caller-
// chosen import path. The lint tests use it to load analysistest
// fixtures whose directory layout encodes the import path they
// impersonate. Fixtures may import the standard library only.
func LoadDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []string
	for _, m := range matches {
		files = append(files, filepath.Base(m))
	}
	sort.Strings(files)
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	imp := &chainImporter{
		local: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil),
	}
	return typeCheck(fset, imp, importPath, dir, files)
}

// typeCheck parses and checks one package.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// topoSort orders module-local packages so dependencies precede
// dependents (imports outside the map — the standard library — are
// ignored).
func topoSort(pkgs map[string]*listedPackage) ([]string, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		p := pkgs[path]
		for _, dep := range p.Imports {
			if _, ok := pkgs[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	// Deterministic traversal order.
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}
