package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockScope forbids holding a mutex across a blocking call in the
// socket-facing packages. The deadlock this prevents is concrete (see
// netpeer.Peer.mu's doc): a peer blocked on a TCP write while its state
// mutex is held stalls its own readLoop, and under backpressure a cycle
// of peers wedges permanently. The house discipline is PR 3's
// self-locking outbox — emit under the lock into a buffer, drain and
// send after unlocking.
//
// The analysis is a linear flow approximation per function: Lock/RLock
// adds the receiver to the held set, Unlock/RUnlock removes it, a
// deferred Unlock holds to function end, and any blocking operation —
// channel send/receive, select, or a call whose name is in the blocking
// set (Send, Flush, Wait, Dial*, Accept, Sleep, readFrame, writeFrame,
// …) — while the set is nonempty is a diagnostic. Branches that unlock
// early are credited linearly, so the check can under-report across
// exotic control flow but does not false-positive on the straight-line
// lock/unlock pairs the packages actually use. Nested function literals
// are separate scopes: they run on other goroutines or after return.
//
// A mutex whose purpose is to serialize the blocking call itself (a
// per-connection write lock) is the one legitimate exception; annotate
// it with //p2plint:allow lockscope -- <reason>.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "forbid blocking calls (send, net I/O, channel ops, Wait) while a mutex is held in netpeer/transport",
	Run:  runLockScope,
}

// lockScopePackages are the packages with real concurrency and real
// sockets, where a lock held across a blocking call can deadlock.
var lockScopePackages = []string{
	"internal/netpeer",
	"internal/transport",
}

// blockingCallNames are callee names that can block indefinitely on the
// network, a channel, or another goroutine.
var blockingCallNames = map[string]bool{
	"Send": true, "SendAck": true, "Flush": true,
	"Wait": true, "Sleep": true,
	"Dial": true, "DialTimeout": true, "DialTCP": true, "Accept": true,
	"readFrame": true, "writeFrame": true,
	"Read": true, "ReadFull": true, "Decode": true,
}

func runLockScope(pass *Pass) error {
	scoped := false
	for _, suffix := range lockScopePackages {
		if pathHasSuffix(pass.Pkg.Path(), suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanLockScope(pass, n.Body)
				}
				return true
			case *ast.FuncLit:
				scanLockScope(pass, n.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// lockState tracks which mutexes are held, keyed by the canonical
// spelling of the receiver expression.
type lockState struct {
	pass *Pass
	held map[string]bool
}

// scanLockScope runs the linear approximation over one function body.
// Nested FuncLits are skipped here (they are scanned as their own
// scopes by the caller's Inspect).
func scanLockScope(pass *Pass, body *ast.BlockStmt) {
	st := &lockState{pass: pass, held: make(map[string]bool)}
	st.stmts(body.List)
}

func (st *lockState) stmts(list []ast.Stmt) {
	for _, s := range list {
		st.stmt(s)
	}
}

func (st *lockState) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, op, ok := mutexOp(st.pass, s.X); ok {
			switch op {
			case "Lock", "RLock":
				st.held[recv] = true
			case "Unlock", "RUnlock":
				delete(st.held, recv)
			}
			return
		}
		st.check(s.X)
	case *ast.DeferStmt:
		if _, op, ok := mutexOp(st.pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return // held to function end; subsequent statements stay covered
		}
		// Other defers run at return, outside this linear window.
	case *ast.SendStmt:
		if len(st.held) > 0 {
			st.report(s.Pos(), "channel send")
		}
	case *ast.SelectStmt:
		if len(st.held) > 0 {
			st.report(s.Pos(), "select")
			return
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				st.stmts(cc.Body)
			}
		}
	case *ast.BlockStmt:
		st.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		st.check(s.Cond)
		st.stmt(s.Body)
		if s.Else != nil {
			st.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		if s.Cond != nil {
			st.check(s.Cond)
		}
		st.stmt(s.Body)
	case *ast.RangeStmt:
		st.check(s.X)
		st.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.stmts(cc.Body)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st.check(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st.check(e)
		}
	case *ast.GoStmt:
		// Runs on another goroutine; its body is its own scope.
	case *ast.LabeledStmt:
		st.stmt(s.Stmt)
	}
}

// check inspects an expression for blocking operations while any mutex
// is held, without descending into nested function literals.
func (st *lockState) check(e ast.Expr) {
	if len(st.held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				st.report(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if name := calleeName(n); blockingCallNames[name] {
				st.report(n.Pos(), "call to "+name)
			}
		}
		return true
	})
}

func (st *lockState) report(pos token.Pos, what string) {
	st.pass.Reportf(pos, "%s while mutex %s is held: emit into a buffer and drain after unlocking",
		what, strings.Join(sortedKeys(st.held), ", "))
}

// sortedKeys returns a set's keys in sorted order for stable messages.
func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mutexOp recognizes recv.Lock/Unlock/RLock/RUnlock where recv's type
// is sync.Mutex or sync.RWMutex (possibly behind a pointer), returning
// the receiver's canonical spelling and the operation.
func mutexOp(pass *Pass, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}
