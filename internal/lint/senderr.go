package lint

import (
	"go/ast"
	"go/types"
)

// SendErr forbids discarding the result of Send/Flush emit paths.
// ranker.Sender.Send/Flush and transport.Fabric report failures as
// errors, and simnet.Network.Send reports message loss as a bool; a
// statement that drops the result silently loses scores (or mis-counts
// modeled loss). Propagate the error, log it, or count the drop —
// an intentional discard must be written as an explicit `_ =`
// assignment or annotated with //p2plint:allow senderr.
var SendErr = &Analyzer{
	Name: "senderr",
	Doc:  "forbid discarding the result of Send/Flush emit calls",
	Run:  runSendErr,
}

// emitNames are the callee names senderr polices.
var emitNames = map[string]bool{
	"Send":  true,
	"Flush": true,
}

func runSendErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !emitNames[name] {
				return true
			}
			if !hasCheckableResult(pass.TypesInfo.TypeOf(call)) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s discarded: propagate, log, or count the failure (an intentional drop must be an explicit `_ =`)",
				name)
			return true
		})
	}
	return nil
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// hasCheckableResult reports whether a call's result type carries a
// failure signal worth checking: an error anywhere in the results, or
// a single bool (simnet's delivered/lost flag).
func hasCheckableResult(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t) || isBool(t)
}

func isErrorType(t types.Type) bool {
	return types.AssignableTo(t, types.Universe.Lookup("error").Type())
}

func isBool(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsBoolean != 0
}
