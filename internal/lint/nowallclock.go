package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-time functions that read or wait on
// the wall clock. Pure types and constructors (time.Duration,
// time.Millisecond, time.Date arithmetic on explicit values) stay
// legal: configs may be *expressed* in time.Duration even when the
// schedule runs on virtual time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// simPathPackages are the packages whose results feed the paper's
// figures; they must be pure functions of seed and configuration, so
// time has to come from the simnet virtual clock (Simulator.Now /
// Simulator.After), never the host's. netpeer and cmd/ are deliberately
// exempt: real sockets run on real time.
var simPathPackages = []string{
	"internal/simnet",
	"internal/engine",
	"internal/ranker",
	// The runtime-agnostic DPR loop core: time and randomness may enter
	// only through its Clock/RNG interfaces, never directly — the wall
	// clock lives solely in the netpeer driver's Clock implementation.
	"internal/dprcore",
	"internal/experiments",
	// The worker pool under the parallel kernels and the compute-phase
	// executor: it must block on channels, never sleep or poll the
	// host clock, or virtual time would leak scheduling jitter.
	"internal/par",
	// The observability layer: collectors timestamp events with the
	// Clock injected by their runtime (the simnet virtual clock in-sim,
	// wall time only in the netpeer driver), so the in-sim traffic
	// tables stay pure functions of seed and configuration.
	"internal/telemetry",
	// Graph storage: generation, (de)serialization, and the mapped
	// store are seed-addressed and replayed inside experiments; a
	// wall-clock read here (say, a timestamp in the file header) would
	// make the same seed produce different bytes and break the
	// fingerprint goldens.
	"internal/webgraph",
}

// NoWallClock forbids wall-clock reads and waits in simulation-path
// packages.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Sleep/After (and friends) in simulation-path packages; use the simnet clock",
	Run:  runNoWallClock,
}

func runNoWallClock(pass *Pass) error {
	scoped := false
	for _, suffix := range simPathPackages {
		if pathHasSuffix(pass.Pkg.Path(), suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in simulation-path package %s: schedule on the simnet virtual clock instead",
					sel.Sel.Name, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
