package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// callGraph is a static, same-package call graph over one loaded
// package: who calls whom, resolved through types.Info. It deliberately
// resolves only what the type checker can prove — direct calls to
// package functions and methods with declarations in this package.
// Calls through interfaces, function values, or other packages have no
// edge; the flow-aware analyzers (hotalloc, gorolife) treat them as
// analysis boundaries rather than guessing.
type callGraph struct {
	// decls maps each function object to its declaration.
	decls map[*types.Func]*ast.FuncDecl
	// callees lists, per function, the same-package functions its body
	// calls (deduplicated, in source order).
	callees map[*types.Func][]*types.Func
}

// buildCallGraph indexes pkg's function declarations and their
// same-package call edges.
func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{
		decls:   make(map[*types.Func]*ast.FuncDecl),
		callees: make(map[*types.Func][]*types.Func),
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
	for fn, fd := range g.decls {
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg.Info, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, local := g.decls[callee]; local {
				seen[callee] = true
				g.callees[fn] = append(g.callees[fn], callee)
			}
			return true
		})
	}
	return g
}

// calleeFunc resolves a call's target to a *types.Func, or nil for
// calls through function values, builtins, or conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// reachable walks the graph from the root set and returns every
// function reachable through same-package edges, each attributed to the
// (lexically first) root that reaches it.
func (g *callGraph) reachable(roots []*types.Func) map[*types.Func]*types.Func {
	out := make(map[*types.Func]*types.Func)
	var visit func(fn, root *types.Func)
	visit = func(fn, root *types.Func) {
		if _, ok := out[fn]; ok {
			return
		}
		out[fn] = root
		for _, c := range g.callees[fn] {
			visit(c, root)
		}
	}
	for _, r := range roots {
		visit(r, r)
	}
	return out
}

// sortedFuncs orders a function set by source position for
// deterministic reporting.
func sortedFuncs(fns map[*types.Func]*types.Func) []*types.Func {
	out := make([]*types.Func, 0, len(fns))
	for fn := range fns {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// funcDirectives scans a file set for //p2plint:<name> function
// directives and returns the set of declarations carrying one in their
// doc comment. The directive must appear in the doc block attached to
// the declaration:
//
//	//p2plint:hotpath -- per-iteration kernel, must not allocate
//	func (m *CSR) MulVec(dst, x Vec) { ... }
func funcDirectives(pkg *Package, name string) map[*ast.FuncDecl]bool {
	marked := make(map[*ast.FuncDecl]bool)
	want := "p2plint:" + name
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == want || strings.HasPrefix(text, want+" ") || strings.HasPrefix(text, want+"\t") {
					marked[fd] = true
				}
			}
		}
	}
	return marked
}
