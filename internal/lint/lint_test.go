package lint_test

import (
	"testing"

	"p2prank/internal/lint"
	"p2prank/internal/lint/linttest"
)

// Each analyzer runs over a violating fixture (want comments) and an
// exempt one (no diagnostics expected), proving both the rule and its
// scoping.

func TestNoRandFlagsDirectImports(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRand, "p2prank/internal/engine")
}

func TestNoRandExemptsXrand(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoRand, "p2prank/internal/xrand")
}

func TestNoWallClockFlagsSimPackages(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock, "p2prank/internal/simnet")
}

func TestNoWallClockFlagsDprcore(t *testing.T) {
	// The loop core is sim-path: time enters only through its Clock
	// interface, randomness only through its RNG interface. The fixture
	// covers the plain loop shortcuts (clock.go), the recovery layer's
	// — retry deadlines, backoff jitter, supervisor probes (retry.go) —
	// and the fault lattice's — wall-clock partition windows, global-
	// rand straggler draws (fault.go) — so both analyzers run over the
	// package together.
	linttest.RunAll(t, "testdata",
		[]*lint.Analyzer{lint.NoWallClock, lint.NoRand},
		"p2prank/internal/dprcore")
}

func TestNoWallClockExemptsNetpeer(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock, "p2prank/internal/netpeer")
}

func TestNoWallClockFlagsPar(t *testing.T) {
	linttest.Run(t, "testdata", lint.NoWallClock, "p2prank/internal/par")
}

func TestTelemetryScopedForNoWallClockAndNoRand(t *testing.T) {
	// The observability layer sits on the simulation path: collectors
	// timestamp events through the injected Clock and must not sample
	// with math/rand. One fixture exercises both rules.
	linttest.RunAll(t, "testdata",
		[]*lint.Analyzer{lint.NoWallClock, lint.NoRand},
		"p2prank/internal/telemetry")
}

func TestFloatEqFlagsRankMath(t *testing.T) {
	linttest.Run(t, "testdata", lint.FloatEq, "p2prank/internal/pagerank")
}

func TestWebgraphScopedForWallClockNotFloatEq(t *testing.T) {
	// Storage is seed-addressed: the same seed must serialize to the
	// same bytes, so nowallclock covers webgraph (wallclock.go), while
	// floateq still exempts it — generator-internal float comparisons
	// are not rank math (offscope.go). One package, both scopes.
	linttest.RunAll(t, "testdata",
		[]*lint.Analyzer{lint.NoWallClock, lint.FloatEq},
		"p2prank/internal/webgraph")
}

func TestSendErrFlagsDiscardedEmits(t *testing.T) {
	linttest.Run(t, "testdata", lint.SendErr, "p2prank/internal/transport")
}

// The v2 flow-aware analyzers use fixtures under testdata/src/fix/…:
// the path suffix still triggers package scoping (pathHasSuffix), while
// the fix/<analyzer> prefix keeps their want comments out of the
// original fixtures' directories.

func TestMapOrderFlagsUnsortedEffects(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrder, "fix/maporder/internal/experiments")
}

func TestMapOrderExemptsOffScopePackages(t *testing.T) {
	// Same source as the violating fixture semantically, but under a
	// netpeer path: delivery order there is wall-clock nondeterministic
	// anyway, so maporder must stay silent.
	linttest.Run(t, "testdata", lint.MapOrder, "fix/maporder/internal/netpeer")
}

func TestHotAllocFlagsAllocationSites(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotAlloc, "fix/hotalloc/internal/vecmath")
}

func TestHotAllocFlagsStorageAccessors(t *testing.T) {
	// The mapped store's per-page accessors are annotated hot: they run
	// millions of times per simulated round, so they must return
	// borrowed views of the mapped arrays, never copies.
	linttest.Run(t, "testdata", lint.HotAlloc, "fix/hotalloc/internal/webgraph")
}

func TestLockScopeFlagsBlockingUnderMutex(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockScope, "fix/lockscope/internal/netpeer")
}

func TestGoroLifeFlagsUntiedGoroutines(t *testing.T) {
	linttest.Run(t, "testdata", lint.GoroLife, "fix/gorolife/internal/netpeer")
}

// TestLoadRealPackage exercises the go-list loader against the actual
// module: the returned package must carry type information.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := lint.Load("../..", "./internal/xrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "p2prank/internal/xrand" {
		t.Fatalf("path = %q", p.Path)
	}
	if p.Types == nil || p.Types.Scope().Lookup("Rand") == nil {
		t.Fatal("package not type-checked: xrand.Rand not found")
	}
	if len(p.Files) == 0 || p.Info == nil {
		t.Fatal("missing syntax or type info")
	}
}

// TestSuiteCleanOnOwnTree is the self-test CI relies on: the shipped
// analyzers must report nothing on the module itself (annotated
// exceptions aside). It type-checks the entire module, so it is the
// slowest test in the package.
func TestSuiteCleanOnOwnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern ./... should match the whole module", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("tree not clean: %s", d)
	}
}
