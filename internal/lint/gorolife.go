package lint

import (
	"go/ast"
	"go/types"
)

// GoroLife requires every goroutine spawned in netpeer to be tied to a
// shutdown path. The churn machinery kills and rebuilds peers all run
// long; an untracked goroutine per restart is a leak that only shows up
// as fd exhaustion hours into a soak. A `go` statement passes if the
// spawned body — the function literal, or the same-package declaration
// it calls — references any of:
//
//   - a sync.WaitGroup method (Done/Wait/Add), the house pattern:
//     wg.Add(1) in the spawning scope, defer wg.Done() in the body;
//   - a channel operation (send, receive, close, select, or range over
//     a channel), i.e. a done/stop channel the body observes;
//   - a context.Context (ctx.Done() et al.).
//
// A goroutine whose target cannot be resolved statically (a function
// value or cross-package call) is flagged too: ownership must be
// provable where the goroutine is spawned. Intentional fire-and-forget
// goroutines must say so with //p2plint:allow gorolife -- <reason>.
var GoroLife = &Analyzer{
	Name: "gorolife",
	Doc:  "require every `go` statement in netpeer to be tied to a WaitGroup, done channel, or context",
	Run:  runGoroLife,
}

// goroLifePackages are the packages whose goroutines must be
// shutdown-tied: the live peer runtime with its supervisor and churn
// restarts.
var goroLifePackages = []string{
	"internal/netpeer",
}

func runGoroLife(pass *Pass) error {
	scoped := false
	for _, suffix := range goroLifePackages {
		if pathHasSuffix(pass.Pkg.Path(), suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	graph := buildCallGraph(&Package{Files: pass.Files, Info: pass.TypesInfo})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, graph, g.Call)
			if body == nil {
				pass.Reportf(g.Pos(),
					"goroutine target is not statically resolvable: spawn a named same-package function tied to a WaitGroup, done channel, or context")
				return true
			}
			if !shutdownTied(pass, body) {
				pass.Reportf(g.Pos(),
					"goroutine is not tied to a shutdown path: reference a WaitGroup, done channel, or context in its body")
			}
			return true
		})
	}
	return nil
}

// spawnedBody resolves the body a `go` statement will run: the literal
// itself, or the declaration of a same-package function/method.
func spawnedBody(pass *Pass, graph *callGraph, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
		if fd, ok := graph.decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

// shutdownTied reports whether a goroutine body references a shutdown
// signal.
func shutdownTied(pass *Pass, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			tied = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				tied = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					tied = true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if isWaitGroupMethod(pass, sel) {
					tied = true
				}
			}
		case *ast.Ident:
			if t := pass.TypesInfo.TypeOf(n); t != nil && isContextType(t) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

// isWaitGroupMethod recognizes recv.Done/Wait/Add on sync.WaitGroup.
func isWaitGroupMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Done", "Wait", "Add":
	default:
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
