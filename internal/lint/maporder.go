package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map in the determinism-critical
// packages when the loop body has order-dependent effects. Go
// randomizes map iteration order per run, so a map range that sends,
// writes to an ordered output, accumulates floating point, or emits
// telemetry produces a different history every execution — exactly the
// nondeterminism that would break the byte-identical fingerprints the
// experiments are checked against (fig6 0xb51aa41cefefc9c4 and
// friends).
//
// The accepted normalization is the collect-then-sort idiom: a body
// that only appends keys (or rows) to a slice which the same function
// passes to sort.* / slices.Sort* is not flagged, and neither is pure
// map-to-map accumulation (writes keyed by the iteration variable,
// integer counters), whose result is order-independent. Everything else
// needs restructuring onto a sorted key slice — see Group.EffDsts and
// Loop.srcOrder for the house pattern — or an explicit
// //p2plint:allow maporder annotation.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid order-dependent effects inside range-over-map in determinism-critical packages",
	Run:  runMapOrder,
}

// mapOrderPackages are the packages whose outputs must be pure
// functions of seed and configuration. netpeer and cmd/ are exempt:
// the live stack's delivery order is wall-clock nondeterministic
// anyway.
var mapOrderPackages = []string{
	"internal/dprcore",
	"internal/engine",
	"internal/simnet",
	"internal/transport",
	"internal/telemetry",
	"internal/experiments",
}

// emitEffectNames are callee names that write to an ordered sink:
// senders, io/fmt writers, hashes, encoders, and diagnostic sinks.
var emitEffectNames = map[string]bool{
	"Send": true, "SendAck": true, "Flush": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Encode": true, "Sum": true, "Reportf": true,
}

// sortFuncNames are the sort entry points recognized as key
// normalization (package sort and slices).
var sortFuncNames = map[string]bool{
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"Ints": true, "Strings": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

func runMapOrder(pass *Pass) error {
	scoped := false
	for _, suffix := range mapOrderPackages {
		if pathHasSuffix(pass.Pkg.Path(), suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedExprs(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
					return true
				}
				if pos, what := mapRangeEffect(pass, rng.Body, sorted); what != "" {
					pass.Reportf(pos,
						"range over map %s has order-dependent effect (%s): iterate a sorted key slice instead",
						exprString(rng.X), what)
				}
				return true
			})
		}
	}
	return nil
}

// sortedExprs collects the canonical spellings of every expression the
// function passes to a recognized sort call — the slices that count as
// normalized append targets.
func sortedExprs(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !sortFuncNames[sel.Sel.Name] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok ||
			(pkg.Imported().Path() != "sort" && pkg.Imported().Path() != "slices") {
			return true
		}
		out[exprString(call.Args[0])] = true
		return true
	})
	return out
}

// mapRangeEffect scans a map-range body and returns the position and
// description of the first order-dependent effect, or ("", NoPos) for a
// body whose observable result is iteration-order independent.
func mapRangeEffect(pass *Pass, body *ast.BlockStmt, sorted map[string]bool) (token.Pos, string) {
	var pos token.Pos
	var what string
	found := func(p token.Pos, w string) {
		if what == "" {
			pos, what = p, w
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found(n.Pos(), "channel send")
		case *ast.AssignStmt:
			checkFloatAccum(pass, n, found)
			checkAppendEffect(pass, n, sorted, found)
		case *ast.CallExpr:
			checkCallEffect(pass, n, found)
		}
		return true
	})
	return pos, what
}

// checkCallEffect flags calls into ordered sinks: the emit-name set and
// any method of a telemetry-style Observer interface.
func checkCallEffect(pass *Pass, call *ast.CallExpr, found func(token.Pos, string)) {
	name := calleeName(call)
	if name == "" {
		return
	}
	if emitEffectNames[name] {
		found(call.Pos(), "call to "+name)
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s := pass.TypesInfo.Selections[sel]; s != nil {
		if named, ok := s.Recv().(*types.Named); ok &&
			types.IsInterface(named) && named.Obj().Name() == "Observer" {
			found(call.Pos(), "telemetry event "+name)
		}
	}
}

// checkFloatAccum flags floating-point compound accumulation (sum += v)
// on a target shared across iterations: addition order perturbs the low
// bits. Accumulating into the map being ranged (m[k] += v) touches each
// key independently and stays order-independent.
func checkFloatAccum(pass *Pass, as *ast.AssignStmt, found func(token.Pos, string)) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); isMap {
				continue
			}
		}
		if t := pass.TypesInfo.TypeOf(lhs); t != nil {
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
				found(as.Pos(), "floating-point accumulation into "+exprString(lhs))
			}
		}
	}
}

// checkAppendEffect flags appends that build an ordered output from map
// iteration. Appending into a map slot (m[k] = append(m[k], …)) is
// keyed accumulation, and appending to a slice the function sorts is
// the collect-then-sort idiom; both pass.
func checkAppendEffect(pass *Pass, as *ast.AssignStmt, sorted map[string]bool, found func(token.Pos, string)) {
	for _, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			continue
		} else if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		base := ast.Unparen(call.Args[0])
		if ix, ok := base.(*ast.IndexExpr); ok {
			if _, isMap := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); isMap {
				continue
			}
		}
		if sorted[exprString(base)] {
			continue
		}
		found(call.Pos(), "append to "+exprString(base)+" that is never sorted")
	}
}
