package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// floatPackages are the packages whose float64 values are rank scores
// or their building blocks. Iteration order, codec quantization, and
// FP non-associativity all perturb low bits, so exact ==/!= between
// two computed scores is almost always a bug; comparisons must go
// through an epsilon (vecmath.RelErr1, math.Abs < eps) or carry a
// //p2plint:allow floateq annotation explaining why exactness is
// intended (e.g. a sort tie-break that only needs *some* strict total
// order).
var floatPackages = []string{
	"internal/pagerank",
	"internal/vecmath",
	"internal/ranker",
	"internal/rankcmp",
}

// FloatEq forbids ==/!= between floating-point operands in the rank
// math packages.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= between floating-point rank values; compare with an epsilon",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) error {
	scoped := false
	for _, suffix := range floatPackages {
		if pathHasSuffix(pass.Pkg.Path(), suffix) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo.TypeOf(bin.X)) && isFloat(pass.TypesInfo.TypeOf(bin.Y)) {
				pass.Reportf(bin.OpPos,
					"%s between floating-point values: use an epsilon comparison (or annotate with //p2plint:allow floateq)",
					bin.Op)
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a floating-point
// (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
