// Package linttest runs lint analyzers over golden fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest. A fixture is a
// directory under testdata/src whose path spells the import path it
// impersonates (so package-scoped analyzers see the path they scope
// on), and whose source carries expectations as comments:
//
//	r := rand.Int() // want `forbidden outside internal/xrand`
//
// Each backquoted string after "want" is a regexp that must match one
// diagnostic reported on that line; diagnostics without a matching
// expectation (and expectations without a matching diagnostic) fail
// the test. Fixtures may import the standard library only.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"p2prank/internal/lint"
)

// wantRx extracts the expectation comment of a line: everything after
// "// want", as one or more backquoted regexps.
var wantRx = regexp.MustCompile("// want((?: +`[^`]*`)+)")

var quotedRx = regexp.MustCompile("`[^`]*`")

// expectation is one unmatched "want" regexp.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
}

// Run loads the fixture testdata/src/<importPath> relative to dir,
// applies the analyzer, and compares diagnostics against the want
// comments.
func Run(t *testing.T, dir string, a *lint.Analyzer, importPath string) {
	t.Helper()
	RunAll(t, dir, []*lint.Analyzer{a}, importPath)
}

// RunAll is Run for several analyzers at once over one fixture: their
// pooled diagnostics must jointly satisfy the fixture's want comments.
// Use it when a fixture exercises rules from more than one analyzer
// (e.g. a package scoped for both nowallclock and norand).
func RunAll(t *testing.T, dir string, as []*lint.Analyzer, importPath string) {
	t.Helper()
	fixdir := filepath.Join(dir, "src", filepath.FromSlash(importPath))
	pkg, err := lint.LoadDir(fixdir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixdir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, as)
	if err != nil {
		t.Fatalf("running on %s: %v", importPath, err)
	}
	wants, err := parseWants(fixdir)
	if err != nil {
		t.Fatal(err)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", d.Analyzer, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				w.file, w.line, w.rx)
		}
	}
}

// parseWants scans every fixture file for want comments.
func parseWants(fixdir string) ([]expectation, error) {
	files, err := filepath.Glob(filepath.Join(fixdir, "*.go"))
	if err != nil {
		return nil, err
	}
	var wants []expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRx.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, q := range quotedRx.FindAllString(m[1], -1) {
				rx, err := regexp.Compile(q[1 : len(q)-1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", file, i+1, err)
				}
				wants = append(wants, expectation{
					file: filepath.Base(file),
					line: i + 1,
					rx:   rx,
				})
			}
		}
	}
	return wants, nil
}
