package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc enforces the zero-allocation discipline on hot paths. A
// function whose doc comment carries
//
//	//p2plint:hotpath -- <why this path is hot>
//
// is a hot root; the rule covers it and every same-package function
// reachable from it through the static call graph. Inside that set,
// allocation sites are diagnostics:
//
//   - make and new
//   - &T{…} and slice/map composite literals
//   - closures (func literals)
//   - append whose base is nil or a fresh literal (no capacity
//     discipline — appends that grow a reused buffer or a pooled slice
//     in place are accepted)
//   - interface boxing at call sites: a concrete non-pointer-shaped,
//     non-zero-size argument passed to a non-variadic interface
//     parameter (variadic …any sinks are fmt-style cold paths, and
//     panic arguments never matter)
//
// Cold-start and pooled sites inside a hot set — freelist refills,
// once-per-peer memo warm-ups, par fan-out above a size threshold —
// must carry a reason:
//
//	//p2plint:allow hotalloc -- freelist refill, amortized to zero
//
// which is the "pooled-site" escape hatch: the annotation documents why
// the allocation cannot recur in steady state.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation sites in //p2plint:hotpath functions and their same-package callees",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	marked := funcDirectives(&Package{Files: pass.Files, Info: pass.TypesInfo}, "hotpath")
	if len(marked) == 0 {
		return nil
	}
	graph := buildCallGraph(&Package{Files: pass.Files, Info: pass.TypesInfo})
	var roots []*types.Func
	for fd := range marked {
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			roots = append(roots, fn)
		}
	}
	hot := graph.reachable(roots)
	for _, fn := range sortedFuncs(hot) {
		fd := graph.decls[fn]
		root := hot[fn]
		via := ""
		if root != fn {
			via = " (reached from hotpath " + root.Name() + ")"
		}
		checkAllocSites(pass, fd, via)
	}
	return nil
}

// checkAllocSites reports every allocation site in one hot function.
func checkAllocSites(pass *Pass, fd *ast.FuncDecl, via string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in hot path %s%s: hoist it or annotate the pooled site", fd.Name.Name, via)
			return true // its body still runs on the hot path
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				pass.Reportf(n.Pos(), "&composite literal allocates in hot path %s%s", fd.Name.Name, via)
				return false
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal allocates in hot path %s%s",
					typeKindName(pass.TypesInfo.TypeOf(n)), fd.Name.Name, via)
			}
		case *ast.CallExpr:
			checkAllocCall(pass, n, fd.Name.Name, via)
		}
		return true
	})
}

// checkAllocCall handles the call-shaped sites: make/new, undisciplined
// append, and interface boxing of arguments.
func checkAllocCall(pass *Pass, call *ast.CallExpr, fname, via string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in hot path %s%s", id.Name, fname, via)
			case "append":
				if len(call.Args) > 0 {
					base := ast.Unparen(call.Args[0])
					_, lit := base.(*ast.CompositeLit)
					if lit || pass.TypesInfo.Types[base].IsNil() {
						pass.Reportf(call.Pos(), "append without capacity discipline in hot path %s%s: base is a fresh literal", fname, via)
					}
				}
			case "panic":
				return // a panicking hot path is already dead
			}
			return
		}
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		if sig.Variadic() && i == params.Len()-1 {
			break // fmt-style …any sinks are cold paths
		}
		pt := params.At(i).Type()
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || boxingFree(at) {
			continue
		}
		if tv := pass.TypesInfo.Types[ast.Unparen(arg)]; tv.IsNil() || tv.Value != nil {
			continue // nil and constants get static boxes
		}
		pass.Reportf(arg.Pos(), "interface boxing of %s at call site in hot path %s%s", at.String(), fname, via)
	}
}

// boxingFree reports whether storing a value of type t into an
// interface cannot allocate: interfaces re-wrap, pointer-shaped values
// (pointers, channels, maps, funcs, unsafe pointers) fit the data word,
// and zero-size values share the runtime's zero base.
func boxingFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Struct:
		return u.NumFields() == 0
	case *types.Array:
		return u.Len() == 0
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// typeKindName names a composite literal's allocation class.
func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
