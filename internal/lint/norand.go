package lint

import "strconv"

// NoRand forbids importing math/rand (and math/rand/v2) anywhere but
// internal/xrand. Every stochastic choice in the system — ranker wait
// times, send-loss draws, synthetic-graph generation, partitions — must
// flow through xrand's explicitly seeded streams, or a single stray
// rand call silently breaks run-to-run reproducibility (math/rand's
// global source is shared mutable state and its algorithm is not stable
// across Go releases).
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand imports outside internal/xrand; use the seeded xrand streams",
	Run:  runNoRand,
}

func runNoRand(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/xrand") {
		return nil // the one place allowed to wrap a rand algorithm
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %q is forbidden outside internal/xrand: draw from a seeded *xrand.Rand stream instead", path)
			}
		}
	}
	return nil
}
