// Fixture for the gorolife analyzer: goroutines must be tied to a
// WaitGroup, done channel, or context; fire-and-forget spawns are
// flagged unless annotated.
package netpeer

import (
	"context"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

func work() {}

// tiedWaitGroup is the house pattern: Add in the spawning scope, defer
// Done in the body.
func (s *server) tiedWaitGroup() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// tiedDoneChannel observes the stop channel.
func (s *server) tiedDoneChannel() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			}
		}
	}()
}

// tiedContext spawns a named function whose body watches a context.
func (s *server) tiedContext(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) {
	<-ctx.Done()
}

// untied leaks: nothing in work's body observes shutdown.
func (s *server) untied() {
	go work() // want `goroutine is not tied to a shutdown path`
}

// unresolvable spawns a function value; ownership cannot be proven at
// the spawn site.
func (s *server) unresolvable(f func()) {
	go f() // want `goroutine target is not statically resolvable`
}

// allowed documents an intentional fire-and-forget.
func (s *server) allowed() {
	//p2plint:allow gorolife -- fixture: process-lifetime helper
	go work()
}
