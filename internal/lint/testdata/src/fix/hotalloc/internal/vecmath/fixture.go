// Fixture for the hotalloc analyzer: allocation sites inside
// //p2plint:hotpath functions and their same-package callees are
// flagged; cold functions and annotated pooled sites pass.
package vecmath

type point struct{ x, y float64 }

//p2plint:hotpath -- fixture kernel
func Kernel(dst []float64) {
	buf := make([]float64, 8) // want `make allocates in hot path Kernel`
	copy(dst, buf)
	helper(dst)
}

// helper is not annotated but is reachable from Kernel, so it is hot.
func helper(dst []float64) {
	p := &point{x: 1} // want `&composite literal allocates in hot path helper \(reached from hotpath Kernel\)`
	dst[0] = p.x
}

//p2plint:hotpath -- fixture
func Closure(dst []float64) {
	f := func() { dst[0] = 1 } // want `closure allocates in hot path Closure`
	f()
}

//p2plint:hotpath -- fixture
func FreshAppend() []int {
	return append([]int{}, 1) // want `append without capacity discipline in hot path FreshAppend` `slice literal allocates in hot path FreshAppend`
}

//p2plint:hotpath -- fixture
func Box(x float64) {
	consume(x) // want `interface boxing of float64 at call site in hot path Box`
}

func consume(v any) { _ = v }

//p2plint:hotpath -- fixture
func Pooled() *point {
	//p2plint:allow hotalloc -- freelist refill, amortized to zero
	return &point{}
}

// GrowInPlace appends to a caller-owned buffer: capacity discipline is
// the caller's job, the append itself is accepted.
//
//p2plint:hotpath -- fixture
func GrowInPlace(dst []float64, v float64) []float64 {
	return append(dst, v)
}

// cold is unreachable from any hot root; it may allocate freely.
func cold() []float64 {
	return make([]float64, 4)
}
