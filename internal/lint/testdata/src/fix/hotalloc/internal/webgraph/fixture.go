// Fixture for hotalloc over storage code: the per-page accessors run
// inside the ranking inner loops (millions of calls per simulated
// round), so they must return borrowed views of the mapped arrays, not
// fresh allocations. Cold open/parse paths may allocate freely.
package webgraph

type mapped struct {
	outPtr []int64
	outDst []int32
}

//p2plint:hotpath -- per-page accessor on the ranking inner loop
func (m *mapped) InternalOut(u int32) []int32 {
	return m.outDst[m.outPtr[u]:m.outPtr[u+1]]
}

//p2plint:hotpath -- fixture: an accessor that copies instead of borrowing
func (m *mapped) InternalOutCopy(u int32) []int32 {
	out := make([]int32, m.outPtr[u+1]-m.outPtr[u]) // want `make allocates in hot path InternalOutCopy`
	copy(out, m.outDst[m.outPtr[u]:])
	return out
}

//p2plint:hotpath -- fixture
func (m *mapped) OutDegree(u int32) int {
	return degreeVia(m, u)
}

// degreeVia is unannotated but reachable from OutDegree, so it is hot.
func degreeVia(m *mapped, u int32) int {
	window := append([]int32{}, m.InternalOut(u)...) // want `append without capacity discipline in hot path degreeVia \(reached from hotpath OutDegree\)` `slice literal allocates in hot path degreeVia \(reached from hotpath OutDegree\)`
	return len(window)
}

// open is the cold path: parsing a header may allocate.
func open(data []byte) *mapped {
	return &mapped{
		outPtr: make([]int64, 1),
		outDst: make([]int32, 0, len(data)/4),
	}
}
