// Fixture for the lockscope analyzer: blocking calls and channel ops
// while a mutex is held are flagged; the buffer-then-drain pattern and
// annotated write locks pass.
package netpeer

import "sync"

type conn struct{}

func (c *conn) Send(b []byte) error { return nil }

type peer struct {
	mu  sync.Mutex
	rmu sync.RWMutex
	c   *conn
}

func (p *peer) sendUnderLock(b []byte) {
	p.mu.Lock()
	p.c.Send(b) // want `call to Send while mutex p.mu is held`
	p.mu.Unlock()
}

func (p *peer) sendUnderDeferredLock(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.c.Send(b) // want `call to Send while mutex p.mu is held`
}

func (p *peer) recvUnderRLock(ch chan int) int {
	p.rmu.RLock()
	v := <-ch // want `channel receive while mutex p.rmu is held`
	p.rmu.RUnlock()
	return v
}

func (p *peer) waitUnderLock(wg *sync.WaitGroup) {
	p.mu.Lock()
	defer p.mu.Unlock()
	wg.Wait() // want `call to Wait while mutex p.mu is held`
}

// bufferThenDrain is the house pattern: copy under the lock, block
// after releasing it.
func (p *peer) bufferThenDrain(b []byte) error {
	p.mu.Lock()
	buf := append([]byte(nil), b...)
	p.mu.Unlock()
	return p.c.Send(buf)
}

// goroutineIsSeparateScope: a func literal runs on another goroutine,
// outside this function's lock window.
func (p *peer) goroutineIsSeparateScope(b []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() { _ = p.c.Send(b) }()
}

// writeLock serializes the send itself; the annotation documents it.
func (p *peer) writeLock(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	//p2plint:allow lockscope -- this mutex exists to serialize the send
	return p.c.Send(b)
}
