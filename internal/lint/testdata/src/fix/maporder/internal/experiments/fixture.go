// Fixture for the maporder analyzer: order-dependent effects inside
// range-over-map are flagged; keyed accumulation, collect-then-sort,
// and annotated sites pass.
package experiments

import (
	"fmt"
	"sort"
)

// emitUnsorted prints straight out of map iteration: a different line
// order every run.
func emitUnsorted(scores map[int]float64) {
	for id, s := range scores {
		fmt.Println(id, s) // want `range over map scores has order-dependent effect \(call to Println\)`
	}
}

// sendUnsorted pushes keys into a channel in iteration order.
func sendUnsorted(scores map[int]float64, ch chan int) {
	for id := range scores {
		ch <- id // want `range over map scores has order-dependent effect \(channel send\)`
	}
}

// sumUnsorted accumulates floating point in iteration order: the low
// bits of total depend on the random key order.
func sumUnsorted(scores map[int]float64) float64 {
	total := 0.0
	for _, s := range scores {
		total += s // want `range over map scores has order-dependent effect \(floating-point accumulation into total\)`
	}
	return total
}

// collectUnsorted builds an ordered slice that is never normalized.
func collectUnsorted(scores map[int]float64) []int {
	var ids []int
	for id := range scores {
		ids = append(ids, id) // want `range over map scores has order-dependent effect \(append to ids that is never sorted\)`
	}
	return ids
}

// collectThenSort is the house pattern: append then sort, so the
// result is a pure function of the key set.
func collectThenSort(scores map[int]float64) []int {
	var ids []int
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// keyedAccumulation writes only map slots keyed by the iteration
// variable; the result is order-independent.
func keyedAccumulation(scores map[int]float64) map[int]float64 {
	out := make(map[int]float64)
	for id, s := range scores {
		out[id] = s * 0.5
		out[id] += 1.0
	}
	return out
}

// annotated documents an intentional exception.
func annotated(scores map[int]float64) float64 {
	total := 0.0
	for _, s := range scores {
		//p2plint:allow maporder -- fixture: commutative within test tolerance
		total += s
	}
	return total
}
