// Off-scope fixture for maporder: netpeer is exempt (live delivery
// order is wall-clock nondeterministic anyway), so the same effect
// shapes that fail under internal/experiments are silent here.
package netpeer

import "fmt"

func emitUnsorted(scores map[int]float64) {
	for id, s := range scores {
		fmt.Println(id, s)
	}
}

func sumUnsorted(scores map[int]float64) float64 {
	total := 0.0
	for _, s := range scores {
		total += s
	}
	return total
}
