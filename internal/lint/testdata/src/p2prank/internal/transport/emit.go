// Fixture: senderr must flag statement-level calls to Send/Flush that
// drop an error (or simnet's delivered bool), while accepting checked
// calls, explicit `_ =` discards, annotated lines, and emit methods
// with nothing to check.
package transport

// Sender mirrors ranker.Sender.
type Sender struct{}

func (Sender) Send(chunk int) error { return nil }
func (Sender) Flush() error         { return nil }

// Network mirrors simnet.Network's delivered-bool Send.
type Network struct{}

func (Network) Send(payload any) bool { return true }

// Fire mirrors a fire-and-forget emit with no failure signal.
type Fire struct{}

func (Fire) Send() {}

func emitAll(s Sender, n Network, f Fire) error {
	s.Send(1)   // want `result of Send discarded`
	s.Flush()   // want `result of Flush discarded`
	n.Send(nil) // want `result of Send discarded`

	f.Send() // nothing to check: no error or bool result

	if err := s.Send(2); err != nil { // checked: fine
		return err
	}
	_ = s.Flush() // explicit discard: fine

	//p2plint:allow senderr -- fixture exemption: loss is the model here
	n.Send(42)

	return s.Flush()
}
