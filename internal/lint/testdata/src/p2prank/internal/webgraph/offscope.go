// Fixture: webgraph is outside floateq's rank-math scope, so even a
// raw float comparison passes. No diagnostics.
package webgraph

// SameWeight is allowed here (generator-internal bookkeeping).
func SameWeight(a, b float64) bool {
	return a == b
}
