// Fixture: webgraph is in nowallclock's simulation-path scope — the
// same seed must serialize to the same bytes, so storage code may
// never consult the host clock. floateq stays off-scope here (see
// offscope.go); both analyzers run over this package together.
package webgraph

import "time"

// StampHeader is the canonical storage mistake: a written-at timestamp
// in the file header makes identical graphs produce different bytes.
func StampHeader() int64 {
	return time.Now().Unix() // want `time.Now reads the wall clock in simulation-path package webgraph`
}

// WaitForFlush polls the filesystem on host time.
func WaitForFlush(d time.Duration) {
	time.Sleep(d) // want `time.Sleep reads the wall clock`
}

// MapTimeout expresses a deadline by arming a real timer.
func MapTimeout(d time.Duration) {
	t := time.NewTimer(d) // want `time.NewTimer reads the wall clock`
	t.Stop()
}

// SectionBudget is the legal shape: configuration expressed in
// time.Duration without reading the clock.
func SectionBudget(ms int) time.Duration {
	return time.Duration(ms) * time.Millisecond
}
