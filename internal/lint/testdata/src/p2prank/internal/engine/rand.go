// Fixture: norand must flag math/rand imports (v1 and v2) in any
// non-xrand package, whatever the import form.
package engine

import (
	"math/rand" // want `import of "math/rand" is forbidden outside internal/xrand`

	mrand "math/rand/v2" // want `import of "math/rand/v2" is forbidden outside internal/xrand`
)

// Draw uses both forbidden sources so the imports are live.
func Draw() int {
	return rand.Intn(10) + mrand.IntN(10)
}
