// Fixture: the worker pool behind the deterministic parallel layer is
// simulation-path code — it may block on channels and sync primitives,
// never on the wall clock.
package par

import "time"

// Drain shows the legal idiom: waiting means blocking on a channel.
func Drain(done chan struct{}) {
	<-done
}

// SpinWait is the forbidden shape: pacing workers off the host clock.
func SpinWait(jobs chan func()) {
	for {
		select {
		case fn := <-jobs:
			fn()
		default:
			time.Sleep(time.Microsecond) // want `time.Sleep reads the wall clock`
		}
	}
}

// Deadline is just as illegal: a pool that times out by wall time makes
// shard completion order depend on host load.
func Deadline(jobs chan func()) bool {
	start := time.Now() // want `time.Now reads the wall clock`
	select {
	case fn := <-jobs:
		fn()
		return true
	case <-time.After(time.Millisecond): // want `time.After reads the wall clock`
		_ = start
		return false
	}
}
