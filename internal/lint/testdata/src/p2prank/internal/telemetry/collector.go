// Fixture: the observability layer is a simulation-path package — the
// in-sim collector's timestamps must come from the Clock its runtime
// injects (virtual time in the simulator), and any sampling decision
// from a seeded xrand stream, or the §4.4 traffic tables stop being
// pure functions of seed and configuration.
package telemetry

import (
	"math/rand" // want `import of "math/rand" is forbidden outside internal/xrand`
	"time"
)

// Event is one trace record as a collector would stamp it.
type Event struct {
	Time float64
	Kind int
}

// Stamp is the shortcut a live-only collector would take: reading host
// time for an event the simulator replays on virtual time.
func Stamp(kind int) Event {
	return Event{Time: float64(time.Now().UnixNano()), Kind: kind} // want `time.Now reads the wall clock`
}

// Sample downsamples the trace with the global rand source and paces
// flushes on host time — the import above and both calls below are
// what the analyzers must catch.
func Sample(kind int) (Event, bool) {
	if rand.Float64() < 0.5 {
		return Event{}, false
	}
	e := Stamp(kind)
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return e, true
}

// Elapsed shows the legal use: durations as configuration values,
// converted without consulting the host clock.
func Elapsed(d time.Duration) float64 { return float64(d) }
