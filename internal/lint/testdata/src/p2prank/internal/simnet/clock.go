// Fixture: nowallclock must flag every wall-clock read or wait in a
// simulation-path package, including through an import alias, while
// leaving pure time.Duration plumbing alone.
package simnet

import (
	"time"

	wall "time"
)

// Tick does everything wrong at once.
func Tick(d time.Duration) time.Time { // Duration/Time types alone are fine
	time.Sleep(d)           // want `time.Sleep reads the wall clock`
	<-time.After(d)         // want `time.After reads the wall clock`
	t := wall.Now()         // want `time.Now reads the wall clock`
	_ = time.Since(t)       // want `time.Since reads the wall clock`
	tk := time.NewTicker(d) // want `time.NewTicker reads the wall clock`
	tk.Stop()
	return t
}

// Configured shows the legal uses: expressing configuration in
// time.Duration without ever consulting the host clock.
func Configured(ms int) time.Duration {
	return time.Duration(ms) * time.Millisecond
}
