// Fixture: internal/xrand is the one package allowed to touch
// math/rand — it is where seeded wrappers live. No diagnostics.
package xrand

import "math/rand"

// Wrap adapts a stdlib source; legal only here.
func Wrap(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
