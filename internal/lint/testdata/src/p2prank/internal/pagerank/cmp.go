// Fixture: floateq must flag exact ==/!= between floats of any width
// in a rank-math package, skip integer comparisons, and honor the
// //p2plint:allow escape hatch.
package pagerank

// Converged compares computed scores the wrong way.
func Converged(a, b float64, x, y float32) bool {
	if a == b { // want `== between floating-point values`
		return true
	}
	if x != y { // want `!= between floating-point values`
		return false
	}
	return a != 0 // want `!= between floating-point values`
}

// Counts compares integers; not a float comparison.
func Counts(n, m int) bool {
	return n == m
}

// ZeroGuard is annotated: an intentional exact-zero check.
func ZeroGuard(norm float64) bool {
	//p2plint:allow floateq -- exact-zero divide guard, fixture exemption
	return norm == 0
}
