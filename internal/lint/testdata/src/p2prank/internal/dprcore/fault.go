// Fixture: the fault lattice — partition windows, straggler
// membership, injected hold-backs — must be a pure function of the
// seed plus the injected Clock, or fingerprints stop being
// reproducible. This is the shortcut version a hurried injector would
// write: epochs from the host clock, membership from global rand.
package dprcore

import (
	"math/rand" // want `import of "math/rand" is forbidden outside internal/xrand`
	"time"
)

// PartitionActive is the forbidden window check: the partition's
// position in the run read off the wall clock instead of the layer's
// Clock, so two identical runs disagree about who was cut off when.
func PartitionActive(epoch time.Time, from, to float64) bool {
	since := float64(time.Since(epoch)) // want `time.Since reads the wall clock`
	return since >= from && since < to
}

// PickStragglers is the forbidden membership draw: global randomness
// instead of a seeded hash, so the straggler set changes every run and
// with every unrelated consumer of the global stream.
func PickStragglers(n int, frac float64) []bool {
	slow := make([]bool, n)
	for i := range slow {
		slow[i] = rand.Float64() < frac
	}
	return slow
}

// LatticeMember shows the legal shape: membership as pure integer
// mixing of the seed and the node id, no clock or rand consulted —
// the same node lands on the same side of the cut in every run.
func LatticeMember(seed, node uint64, frac float64) bool {
	x := seed ^ node*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float64(x>>11)/float64(1<<53) < frac
}
