// Fixture: the recovery layer — retransmission timers, backoff jitter,
// supervisor probes — must draw time from the injected Clock and
// randomness from the injected *xrand.Rand. This is the shortcut
// version a hurried port would write, and every host-time or
// global-rand touch in it must be flagged.
package dprcore

import (
	"math/rand" // want `import of "math/rand" is forbidden outside internal/xrand`
	"time"
)

// RetryAfter is the forbidden retransmission deadline: host timers and
// global jitter instead of the layer's Clock and RNG streams.
func RetryAfter(timeout float64, retransmit func()) float64 {
	jitter := 1 + rand.Float64()
	deadline := time.Now()                                    // want `time.Now reads the wall clock`
	time.AfterFunc(time.Duration(timeout*jitter), retransmit) // want `time.AfterFunc reads the wall clock`
	return float64(deadline.UnixNano())
}

// ProbeLoop is the forbidden supervisor cadence: polling liveness on a
// host ticker instead of the runtime's Waiter.
func ProbeLoop(every time.Duration, probe func()) {
	for range time.Tick(every) { // want `time.Tick reads the wall clock`
		probe()
	}
}

// Backoff shows the legal shape: pure arithmetic on configured
// durations, with no clock or randomness consulted.
func Backoff(timeout, factor, cap float64) float64 {
	next := timeout * factor
	if next > cap {
		next = cap
	}
	return next
}
