// Fixture: the runtime-agnostic loop core is a simulation-path
// package — wall-clock access must come through its Clock interface
// (implemented by the simulator or by netpeer), never from the time
// package directly.
package dprcore

import "time"

// Wait is what a hurried driver shortcut would look like: blocking the
// core on host time instead of the runtime's Waiter.
func Wait(d time.Duration) float64 {
	time.Sleep(d)                                // want `time.Sleep reads the wall clock`
	deadline := time.Now().Add(d)                // want `time.Now reads the wall clock`
	timer := time.NewTimer(time.Until(deadline)) // want `time.NewTimer reads the wall clock` `time.Until reads the wall clock`
	<-timer.C
	return float64(d)
}

// MeanWait shows the legal use: durations as configuration values,
// converted without consulting the host clock.
func MeanWait(d time.Duration) float64 { return float64(d) }
