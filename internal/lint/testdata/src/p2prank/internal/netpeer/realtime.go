// Fixture: netpeer runs on real sockets and real time; it is exempt
// from nowallclock. No diagnostics.
package netpeer

import "time"

// Wait is legal here: real peers genuinely sleep.
func Wait(d time.Duration) time.Time {
	time.Sleep(d)
	return time.Now()
}
