package search

import (
	"errors"
	"fmt"
	"testing"

	"p2prank/internal/nodeid"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

type fixture struct {
	g      *webgraph.Graph
	ranks  vecmath.Vec
	ov     *pastry.Overlay
	assign *partition.Assignment
	ix     *Index
}

func newFixture(t testing.TB, pages, k int) *fixture {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = 3
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]nodeid.ID, k)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	assign, err := partition.Assign(g, ov, partition.BySite, 1)
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultConfig()
	scfg.Vocabulary = 500
	scfg.TermsPerPage = 8
	ix, err := Build(g, res.Ranks, ov, assign, scfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, ranks: res.Ranks, ov: ov, assign: assign, ix: ix}
}

func TestTermsOfDeterministicAndSorted(t *testing.T) {
	f := newFixture(t, 1000, 8)
	cfg := DefaultConfig()
	for p := int32(0); p < 50; p++ {
		t1, err := TermsOf(f.g, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := TermsOf(f.g, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(t1) != cfg.TermsPerPage {
			t.Fatalf("page %d has %d terms", p, len(t1))
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Fatalf("page %d terms not deterministic", p)
			}
			if i > 0 && t1[i-1] >= t1[i] {
				t.Fatalf("page %d terms unsorted or duplicated: %v", p, t1)
			}
		}
	}
}

func TestTermPopularityskewed(t *testing.T) {
	f := newFixture(t, 3000, 8)
	// Term 0 (Zipf rank 1) must have a far longer posting list than a
	// mid-vocabulary term.
	p0, err := f.ix.PostingList(0)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := f.ix.PostingList(250)
	if err != nil {
		t.Fatal(err)
	}
	if len(p0) <= len(pm)*3 {
		t.Fatalf("no popularity skew: |term0|=%d |term250|=%d", len(p0), len(pm))
	}
}

func TestPostingsComplete(t *testing.T) {
	f := newFixture(t, 800, 8)
	cfg := DefaultConfig()
	cfg.Vocabulary = 500
	cfg.TermsPerPage = 8
	// Every page must appear in exactly its terms' posting lists.
	var totalPostings int64
	for tm := int32(0); int(tm) < 500; tm++ {
		ps, err := f.ix.PostingList(tm)
		if err != nil {
			t.Fatal(err)
		}
		totalPostings += int64(len(ps))
		for _, e := range ps {
			terms, err := TermsOf(f.g, e.Page, cfg)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, pt := range terms {
				if pt == tm {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("page %d in posting list of term %d it does not contain", e.Page, tm)
			}
			if e.Score != f.ranks[e.Page] {
				t.Fatalf("posting score %v != rank %v", e.Score, f.ranks[e.Page])
			}
		}
	}
	if totalPostings != int64(800*8) {
		t.Fatalf("total postings %d, want %d", totalPostings, 800*8)
	}
	if f.ix.PostingsTotal != totalPostings {
		t.Fatalf("PostingsTotal %d != %d", f.ix.PostingsTotal, totalPostings)
	}
}

func TestPostingListsRankOrdered(t *testing.T) {
	f := newFixture(t, 1500, 8)
	for tm := int32(0); tm < 100; tm++ {
		ps, err := f.ix.PostingList(tm)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].Score > ps[i-1].Score {
				t.Fatalf("term %d postings out of order", tm)
			}
		}
	}
}

func TestQueryMatchesBruteForce(t *testing.T) {
	f := newFixture(t, 1500, 8)
	cfg := DefaultConfig()
	cfg.Vocabulary = 500
	cfg.TermsPerPage = 8
	queries := [][]int32{{0}, {1, 2}, {0, 1, 2}, {5, 17}}
	var resp Response
	for _, q := range queries {
		if err := f.ix.Serve(Request{Terms: q, K: 10}, &resp); err != nil {
			t.Fatal(err)
		}
		got := resp.Postings
		// Brute force: pages containing all query terms, by rank.
		var want []Posting
		for p := 0; p < f.g.NumPages(); p++ {
			terms, err := TermsOf(f.g, int32(p), cfg)
			if err != nil {
				t.Fatal(err)
			}
			have := map[int32]bool{}
			for _, tm := range terms {
				have[tm] = true
			}
			all := true
			for _, tm := range q {
				if !have[tm] {
					all = false
					break
				}
			}
			if all {
				want = append(want, Posting{Page: int32(p), Score: f.ranks[p]})
			}
		}
		sortPostings(want)
		if len(want) > 10 {
			want = want[:10]
		}
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d results, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %v result %d: got %+v, want %+v", q, i, got[i], want[i])
			}
		}
	}
}

func sortPostings(ps []Posting) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0; j-- {
			better := ps[j].Score > ps[j-1].Score ||
				(ps[j].Score == ps[j-1].Score && ps[j].Page < ps[j-1].Page)
			if !better {
				break
			}
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func TestQueryEmptyIntersection(t *testing.T) {
	f := newFixture(t, 500, 8)
	// A long conjunction of rare terms is almost surely empty.
	var resp Response
	if err := f.ix.Serve(Request{Terms: []int32{480, 481, 482, 483, 484}, K: 5}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Postings) != 0 {
		// Not impossible, but then every result must contain all terms
		// — covered by TestQueryMatchesBruteForce. Accept.
		t.Logf("rare conjunction nonempty: %d results", len(resp.Postings))
	}
}

func TestQueryValidation(t *testing.T) {
	f := newFixture(t, 300, 4)
	var resp Response
	if err := f.ix.Serve(Request{K: 5}, &resp); err == nil {
		t.Error("empty query accepted")
	}
	if err := f.ix.Serve(Request{Terms: []int32{0}}, &resp); err == nil {
		t.Error("k=0 accepted")
	}
	if err := f.ix.Serve(Request{Terms: []int32{9999}, K: 5}, &resp); !errors.Is(err, ErrUnknownTerm) {
		t.Errorf("out-of-vocabulary term: err = %v, want ErrUnknownTerm", err)
	}
	if _, err := f.ix.PostingList(-1); !errors.Is(err, ErrUnknownTerm) {
		t.Errorf("negative term: err = %v, want ErrUnknownTerm", err)
	}
	if _, err := f.ix.TermOwner(9999); !errors.Is(err, ErrUnknownTerm) {
		t.Errorf("out-of-range TermOwner: err = %v, want ErrUnknownTerm", err)
	}
}

func TestServeVersionContract(t *testing.T) {
	f := newFixture(t, 300, 4)
	var resp Response
	if err := f.ix.Serve(Request{Terms: []int32{0}, K: 3}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != StaticVersion || resp.Staleness != 0 {
		t.Fatalf("static index served version %d staleness %d", resp.Version, resp.Staleness)
	}
	if resp.Cost.Responses != 1 || resp.Cost.LookupHops < 0 {
		t.Fatalf("single-term cost = %+v", resp.Cost)
	}
	// A static index has exactly one version; demanding a newer one
	// must fail with the typed sentinel.
	err := f.ix.Serve(Request{Terms: []int32{0}, K: 3, MinVersion: StaticVersion + 1}, &resp)
	if !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("MinVersion beyond static: err = %v, want ErrStaleIndex", err)
	}
	if err := f.ix.Serve(Request{Terms: []int32{0}, K: 3, MinVersion: StaticVersion}, &resp); err != nil {
		t.Fatalf("MinVersion == StaticVersion rejected: %v", err)
	}
}

func TestResponseReuseNoGrowth(t *testing.T) {
	f := newFixture(t, 500, 4)
	var resp Response
	if err := f.ix.Serve(Request{Terms: []int32{0}, K: 10}, &resp); err != nil {
		t.Fatal(err)
	}
	first := resp.Postings
	if err := f.ix.Serve(Request{Terms: []int32{1}, K: 10}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Postings) > 0 && len(first) > 0 && &resp.Postings[0] != &first[0] {
		t.Fatal("reused Response reallocated Postings despite sufficient capacity")
	}
}

// TestStaticServeFullCoverage pins the static index's degraded-serving
// contract: a frozen rank vector always answers with full coverage.
func TestStaticServeFullCoverage(t *testing.T) {
	f := newFixture(t, 500, 8)
	resp := Response{Coverage: 0.25, Degraded: true, Hedged: 3} // stale garbage a reused Response might carry
	if err := f.ix.Serve(Request{Terms: []int32{0, 1}, K: 5}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Coverage != 1 || resp.Degraded || resp.Hedged != 0 {
		t.Fatalf("static serve reported coverage %v degraded %v hedged %d",
			resp.Coverage, resp.Degraded, resp.Hedged)
	}
}

func TestBuildValidation(t *testing.T) {
	f := newFixture(t, 300, 4)
	if _, err := Build(f.g, vecmath.Const(5, 1), f.ov, f.assign, DefaultConfig()); err == nil {
		t.Error("wrong-length ranks accepted")
	}
	bad := DefaultConfig()
	bad.TermsPerPage = 99999
	if _, err := Build(f.g, f.ranks, f.ov, f.assign, bad); err == nil {
		t.Error("terms-per-page > vocabulary accepted")
	}
	if _, err := TermsOf(f.g, 0, Config{Vocabulary: -1}); err == nil {
		t.Error("negative vocabulary accepted")
	}
}

func TestTermPlacementDeterministicAndSpread(t *testing.T) {
	f := newFixture(t, 1000, 16)
	counts := map[int32]int{}
	for tm := int32(0); tm < 500; tm++ {
		o1, err := f.ix.TermOwner(tm)
		if err != nil {
			t.Fatal(err)
		}
		counts[o1]++
	}
	if len(counts) < 8 {
		t.Fatalf("terms spread over only %d of 16 rankers", len(counts))
	}
}

func TestPostingsMovedAccounting(t *testing.T) {
	f := newFixture(t, 1500, 8)
	if f.ix.PostingsMoved <= 0 || f.ix.PostingsMoved > f.ix.PostingsTotal {
		t.Fatalf("PostingsMoved = %d of %d", f.ix.PostingsMoved, f.ix.PostingsTotal)
	}
	// Term placement ignores page placement, so most postings cross
	// ranker boundaries (≈ (K−1)/K of them).
	frac := float64(f.ix.PostingsMoved) / float64(f.ix.PostingsTotal)
	if frac < 0.5 {
		t.Fatalf("implausibly low cross-ranker posting fraction %v", frac)
	}
}

func TestQueryCost(t *testing.T) {
	f := newFixture(t, 1000, 16)
	var resp Response
	if err := f.ix.Serve(Request{Terms: []int32{0, 1, 2}, K: 1, From: 0}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cost.Responses < 1 || resp.Cost.Responses > 3 {
		t.Fatalf("responses = %d", resp.Cost.Responses)
	}
	if resp.Cost.LookupHops < 0 {
		t.Fatalf("hops = %d", resp.Cost.LookupHops)
	}
	if err := f.ix.Serve(Request{Terms: []int32{99999}, K: 1, From: 0}, &resp); !errors.Is(err, ErrUnknownTerm) {
		t.Errorf("bad term: err = %v, want ErrUnknownTerm", err)
	}
}

func TestTermName(t *testing.T) {
	cases := []struct {
		t    int32
		want string
	}{
		{0, "term00000"},
		{7, "term00007"},
		{42, "term00042"},
		{999, "term00999"},
		{12345, "term12345"},
		{123456, "term123456"}, // beyond 5 digits: all digits kept, like %05d
	}
	for _, c := range cases {
		if got := TermName(c.t); got != c.want {
			t.Errorf("TermName(%d) = %q, want %q", c.t, got, c.want)
		}
		if got := string(AppendTermName(nil, c.t)); got != c.want {
			t.Errorf("AppendTermName(%d) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestAppendTermNameNoAlloc(t *testing.T) {
	buf := make([]byte, 0, 32)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendTermName(buf[:0], 12345)
	})
	if allocs != 0 {
		t.Fatalf("AppendTermName allocates %v per call", allocs)
	}
}

func BenchmarkQuery(b *testing.B) {
	f := newFixture(b, 5000, 16)
	var resp Response
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.ix.Serve(Request{Terms: []int32{0, 1}, K: 10}, &resp); err != nil {
			b.Fatal(err)
		}
	}
}
