// Package search implements the application the paper's introduction
// motivates: a distributed search engine over the DHT, where page
// ranking "is not only needed as in its centralized counterpart for
// improving query results, but should be performed distributedly".
//
// It follows the P2P web-search architecture of the paper's reference
// [17] (Li et al., "On the Feasibility of Peer-to-Peer Web Indexing and
// Search"): the inverted index is partitioned by term — the overlay
// owner of hash(term) stores that term's posting list — while pages
// (and their ranks) live on the rankers chosen by the §4.1 page
// partition. Queries resolve each term to its owner, intersect posting
// lists, and order results by the distributed PageRank scores.
//
// Page text is synthesized: each page deterministically draws terms
// from a Zipf-skewed vocabulary, seeded by its stable URL, so the index
// is reproducible and recrawl-stable without storing documents.
package search

import (
	"fmt"
	"sort"
	"strconv"

	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/partition"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// Config parameterizes the synthetic text model and index.
type Config struct {
	// Vocabulary is the number of distinct terms (default 5000).
	Vocabulary int
	// TermsPerPage is how many distinct terms each page contains
	// (default 12).
	TermsPerPage int
	// Skew is the Zipf exponent of term popularity (default 1.0 —
	// natural-language-like).
	Skew float64
}

// DefaultConfig returns the standard text model.
func DefaultConfig() Config {
	return Config{Vocabulary: 5000, TermsPerPage: 12, Skew: 1.0}
}

// WithDefaults returns the config with zero fields filled in, or an
// error for out-of-range values — the exported spelling of the
// validation Build applies, for packages (internal/serve) that build
// their own structures from the same text model.
func (c Config) WithDefaults() (Config, error) {
	err := c.validate()
	return c, err
}

func (c *Config) validate() error {
	if c.Vocabulary == 0 {
		c.Vocabulary = 5000
	}
	if c.TermsPerPage == 0 {
		c.TermsPerPage = 12
	}
	if c.Skew == 0 {
		c.Skew = 1.0
	}
	if c.Vocabulary < 1 || c.TermsPerPage < 1 {
		return fmt.Errorf("search: vocabulary %d / terms-per-page %d must be positive",
			c.Vocabulary, c.TermsPerPage)
	}
	if c.TermsPerPage > c.Vocabulary {
		return fmt.Errorf("search: TermsPerPage %d exceeds vocabulary %d",
			c.TermsPerPage, c.Vocabulary)
	}
	if c.Skew < 0 {
		return fmt.Errorf("search: negative skew %v", c.Skew)
	}
	return nil
}

// AppendTermName appends term t's canonical name ("term%05d") to dst
// and returns the extended slice — the allocation-free spelling for
// the query path. Negative terms (never produced by the text model)
// render without zero padding.
//
//p2plint:hotpath
func AppendTermName(dst []byte, t int32) []byte {
	dst = append(dst, "term"...)
	if t < 0 {
		return strconv.AppendInt(dst, int64(t), 10)
	}
	for pow := int32(10000); pow >= 10; pow /= 10 {
		if t < pow {
			dst = append(dst, '0')
		}
	}
	return strconv.AppendInt(dst, int64(t), 10)
}

// TermName renders term t as its canonical string.
func TermName(t int32) string {
	var buf [16]byte
	return string(AppendTermName(buf[:0], t))
}

// TermsOf returns page p's distinct terms, ascending. The draw is a
// pure function of the page's URL (stable across recrawls) and cfg.
func TermsOf(g webgraph.Store, p int32, cfg Config) ([]int32, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	id := nodeid.Hash(g.URL(p))
	rng := xrand.New(id.Lo ^ id.Hi)
	z := xrand.NewZipf(rng, cfg.Vocabulary, cfg.Skew)
	seen := make(map[int32]bool, cfg.TermsPerPage)
	out := make([]int32, 0, cfg.TermsPerPage)
	for len(out) < cfg.TermsPerPage {
		t := int32(z.Sample())
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Posting is one entry of a term's posting list: a page and its rank.
type Posting struct {
	Page  int32
	Score float64
}

// Index is the term-partitioned inverted index plus the rank vector.
type Index struct {
	cfg    Config
	ov     overlay.Network
	ranks  vecmath.Vec
	g      webgraph.Store
	assign *partition.Assignment
	// termOwner[t] is the ranker storing term t's posting list.
	termOwner []int32
	// postings[t] is sorted by Score descending (ties: page index).
	postings [][]Posting
	// PostingsMoved counts postings whose page lives on a different
	// ranker than the term owner — the index-construction traffic the
	// feasibility analysis of [17] is about.
	PostingsMoved int64
	// PostingsTotal counts all postings.
	PostingsTotal int64
}

// Build constructs the index from a ranked crawl. ranks must be the
// page-indexed rank vector (distributed or centralized); assign is the
// page partition; ov places terms on rankers.
func Build(g webgraph.Store, ranks vecmath.Vec, ov overlay.Network, assign *partition.Assignment, cfg Config) (*Index, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ranks) != g.NumPages() {
		return nil, fmt.Errorf("search: ranks have length %d, want %d", len(ranks), g.NumPages())
	}
	if assign != nil && len(assign.GroupOf) != g.NumPages() {
		return nil, fmt.Errorf("search: assignment covers %d pages, want %d",
			len(assign.GroupOf), g.NumPages())
	}
	ix := &Index{
		cfg:       cfg,
		ov:        ov,
		ranks:     ranks,
		g:         g,
		assign:    assign,
		termOwner: make([]int32, cfg.Vocabulary),
		postings:  make([][]Posting, cfg.Vocabulary),
	}
	for t := 0; t < cfg.Vocabulary; t++ {
		ix.termOwner[t] = int32(ov.Owner(nodeid.Hash(TermName(int32(t)))))
	}
	for p := 0; p < g.NumPages(); p++ {
		terms, err := TermsOf(g, int32(p), cfg)
		if err != nil {
			return nil, err
		}
		for _, t := range terms {
			ix.postings[t] = append(ix.postings[t], Posting{Page: int32(p), Score: ranks[p]})
			ix.PostingsTotal++
			if assign != nil && assign.GroupOf[p] != ix.termOwner[t] {
				ix.PostingsMoved++
			}
		}
	}
	for t := range ix.postings {
		ps := ix.postings[t]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Score != ps[j].Score {
				return ps[i].Score > ps[j].Score
			}
			return ps[i].Page < ps[j].Page
		})
	}
	return ix, nil
}

// TermOwner returns the ranker storing term t's posting list.
func (ix *Index) TermOwner(t int32) (int32, error) {
	if t < 0 || int(t) >= ix.cfg.Vocabulary {
		return 0, fmt.Errorf("%w: term %d, vocabulary %d", ErrUnknownTerm, t, ix.cfg.Vocabulary)
	}
	return ix.termOwner[t], nil
}

// PostingList returns term t's postings, best first. The slice aliases
// index storage and must not be modified.
func (ix *Index) PostingList(t int32) ([]Posting, error) {
	if t < 0 || int(t) >= ix.cfg.Vocabulary {
		return nil, fmt.Errorf("%w: term %d, vocabulary %d", ErrUnknownTerm, t, ix.cfg.Vocabulary)
	}
	return ix.postings[t], nil
}
