// The query-serving API: the Request/Response contract shared by the
// static Index and the snapshot-backed serving tier (internal/serve).
//
// Build keeps its shape, but querying is a single entry point —
// Serve(Request, *Response) — so callers written against the static
// index migrate unchanged onto versioned snapshot serving: the same
// request either hits a frozen rank vector (here) or whatever snapshot
// versions the rankers have published (serve.Querier).
package search

import (
	"errors"
	"fmt"
	"sort"

	"p2prank/internal/overlay"
)

// Typed sentinel errors of the query API. Wrap-aware: match with
// errors.Is.
var (
	// ErrUnknownTerm reports a query term outside the vocabulary.
	ErrUnknownTerm = errors.New("search: term outside vocabulary")
	// ErrStaleIndex reports that the server cannot satisfy the
	// request's MinVersion — the served ranks are older than the
	// caller demands (or no snapshot has been published yet).
	ErrStaleIndex = errors.New("search: served ranks older than requested MinVersion")
	// ErrOverloaded reports that admission control shed the query: the
	// server is over its in-flight limit or its served ranks have
	// drifted past the staleness bound. Retry after the hint carried by
	// the wrapping OverloadError.
	ErrOverloaded = errors.New("search: overloaded, query shed by admission control")
)

// OverloadError is the typed shed error: it matches ErrOverloaded under
// errors.Is and carries the server's retry hint.
type OverloadError struct {
	// RetryAfter is the suggested wait before retrying, in seconds.
	RetryAfter float64
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v (retry after %.3gs)", ErrOverloaded, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// StaticVersion is the version a freshly built static Index serves:
// its rank vector is frozen at build time, so there is exactly one.
const StaticVersion = 1

// Request is a conjunctive top-k query.
type Request struct {
	// Terms the result pages must ALL contain.
	Terms []int32
	// K bounds the result size.
	K int
	// From is the ranker the query originates at — the origin of the
	// overlay hop accounting in Response.Cost.
	From int
	// MinVersion, when positive, demands ranks at least this fresh:
	// serving any snapshot older than MinVersion fails with
	// ErrStaleIndex instead of silently answering from stale data.
	MinVersion int64
}

// Validate checks the request shape against a vocabulary size.
func (r Request) Validate(vocabulary int) error {
	if len(r.Terms) == 0 {
		return fmt.Errorf("search: empty query")
	}
	if r.K <= 0 {
		return fmt.Errorf("search: k = %d, must be positive", r.K)
	}
	for _, t := range r.Terms {
		if t < 0 || int(t) >= vocabulary {
			return fmt.Errorf("%w: term %d, vocabulary %d", ErrUnknownTerm, t, vocabulary)
		}
	}
	return nil
}

// Cost is the overlay traffic of resolving one query: the lookup hops
// from the requesting ranker to each consulted shard/owner, plus one
// response message per consultation.
type Cost struct {
	LookupHops int
	Responses  int
}

// Response is a served query result. Postings is filled by appending
// into Postings[:0], so callers that reuse a Response across queries
// pay no allocation once its capacity has grown.
type Response struct {
	// Postings are the top-k matches, best first (score descending,
	// page ascending on ties).
	Postings []Posting
	// Version identifies the rank data that produced the scores: the
	// oldest snapshot version consulted (StaticVersion for a static
	// Index). Monotone across publishes.
	Version int64
	// Staleness is how many committed rounds behind the live
	// computation the served ranks are, maximized over consulted
	// shards (0 for a static Index).
	Staleness int64
	// Cost is the overlay traffic this query accounted for.
	Cost Cost
	// Coverage is the fraction of the shards the query planner wanted
	// that actually contributed partial results: 1 on a healthy fan-out,
	// lower when partitions or deadlines forced a partial merge. A
	// static Index always serves full coverage.
	Coverage float64
	// Degraded reports a partial answer: at least one planned shard was
	// skipped, so Postings may miss matches that shard held. Paired
	// with Coverage it lets callers decide whether a degraded answer is
	// good enough instead of the server deciding for them with an error.
	Degraded bool
	// Hedged counts shard reads that missed their deadline on the
	// primary snapshot and were answered from the replica (previous
	// published) snapshot instead. Hedged shards still count as covered;
	// their extra rounds-behind show up in Staleness.
	Hedged int
}

// Server answers search requests — implemented by the static Index and
// by the snapshot-backed query tier (internal/serve.Querier).
type Server interface {
	Serve(req Request, resp *Response) error
}

// Serve answers a conjunctive top-k query from the frozen build-time
// rank vector. It intersects posting lists smallest-first (the
// standard conjunctive plan) and accounts hop costs to each distinct
// term owner, QueryCost-style.
func (ix *Index) Serve(req Request, resp *Response) error {
	resp.Postings = resp.Postings[:0]
	resp.Version = StaticVersion
	resp.Staleness = 0
	resp.Cost = Cost{}
	resp.Coverage = 1
	resp.Degraded = false
	resp.Hedged = 0
	if err := req.Validate(ix.cfg.Vocabulary); err != nil {
		return err
	}
	if req.MinVersion > StaticVersion {
		return fmt.Errorf("%w: static index serves version %d, want >= %d",
			ErrStaleIndex, StaticVersion, req.MinVersion)
	}
	cost, err := ix.queryCost(req.From, req.Terms)
	if err != nil {
		return err
	}
	resp.Cost = cost

	lists := make([][]Posting, len(req.Terms))
	for i, t := range req.Terms {
		lists[i] = ix.postings[t]
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	if len(lists[0]) == 0 {
		return nil
	}
	// Membership sets for all but the smallest list.
	member := make([]map[int32]bool, len(lists)-1)
	for i, ps := range lists[1:] {
		m := make(map[int32]bool, len(ps))
		for _, e := range ps {
			m[e.Page] = true
		}
		member[i] = m
	}
	for _, e := range lists[0] { // already best-first
		inAll := true
		for _, m := range member {
			if !m[e.Page] {
				inAll = false
				break
			}
		}
		if inAll {
			resp.Postings = append(resp.Postings, e)
			if len(resp.Postings) == req.K {
				break
			}
		}
	}
	return nil
}

// queryCost sums the lookup hops from the requesting ranker to each
// distinct term owner plus one response per owner.
func (ix *Index) queryCost(from int, terms []int32) (Cost, error) {
	var c Cost
	owners := make(map[int32]bool)
	for _, t := range terms {
		owners[ix.termOwner[t]] = true
	}
	for o := range owners {
		h, err := overlay.Hops(ix.ov, from, ix.ov.NodeID(int(o)))
		if err != nil {
			return Cost{}, err
		}
		c.LookupHops += h
		c.Responses++
	}
	return c, nil
}
