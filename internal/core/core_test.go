package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndRankCentralized(t *testing.T) {
	g, err := GenerateCrawl(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := RankCentralized(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != g.NumPages() {
		t.Fatalf("rank vector length %d", len(ranks))
	}
	if ranks.Min() <= 0 {
		t.Fatal("non-positive rank")
	}
}

func TestRankDistributedEndToEnd(t *testing.T) {
	g, err := GenerateCrawl(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RankDistributed(Config{
		Params: Params{Alg: DPR1, T1: 0.5, T2: 3},
		Graph:  g, K: 6, MaxTime: 400, TargetRelErr: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge (rel err %v)", res.RelErr)
	}
	if re := RelativeError(res.Final, res.Reference); re > 1e-6 {
		t.Fatalf("relative error %v", re)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g, err := GenerateCrawl(800, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.bin")
	if err := SaveCrawl(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadCrawl(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumPages() != g.NumPages() || g2.NumInternalLinks() != g.NumInternalLinks() {
		t.Fatal("round trip changed the graph")
	}
}

func TestLoadCrawlTextFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.txt")
	content := "site 0 a.edu\npage 0 0\npage 1 0\nlink 0 1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadCrawl(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPages() != 2 || g.NumInternalLinks() != 1 {
		t.Fatalf("parsed %d pages %d links", g.NumPages(), g.NumInternalLinks())
	}
}

func TestLoadCrawlErrors(t *testing.T) {
	if _, err := LoadCrawl("/nonexistent/file"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCrawl(empty); err == nil {
		t.Error("empty file accepted")
	}
}

func TestTopPages(t *testing.T) {
	ranks := []float64{0.1, 0.9, 0.5, 0.9}
	top := TopPages(ranks, 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("top = %v, want [1 3 2] (ties toward smaller index)", top)
	}
	if got := TopPages(ranks, 99); len(got) != 4 {
		t.Fatalf("oversized n returned %d entries", len(got))
	}
	if got := TopPages(nil, 3); len(got) != 0 {
		t.Fatalf("empty ranks returned %v", got)
	}
}

func TestSaveCrawlErrors(t *testing.T) {
	g, err := GenerateCrawl(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCrawl("/nonexistent-dir/x.bin", g); err == nil {
		t.Error("save into missing directory accepted")
	}
}
