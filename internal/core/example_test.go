package core_test

import (
	"fmt"
	"log"

	"p2prank/internal/core"
)

// ExampleRankDistributed ranks a small synthetic crawl with eight
// asynchronous page rankers and verifies the result against
// centralized PageRank.
func ExampleRankDistributed() {
	graph, err := core.GenerateCrawl(3000, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RankDistributed(core.Config{
		Params:       core.Params{Alg: core.DPR1, T1: 0, T2: 6},
		Graph:        graph,
		K:            8,
		MaxTime:      500,
		TargetRelErr: 1e-8,
	})
	if err != nil {
		log.Fatal(err)
	}
	star, err := core.RankCentralized(graph)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %v\n", res.ConvergedAt >= 0)
	fmt.Printf("agrees with centralized: %v\n", core.RelativeError(res.Final, star) < 1e-7)
	// Output:
	// converged: true
	// agrees with centralized: true
}

// ExampleTopPages lists the best-ranked pages of a crawl.
func ExampleTopPages() {
	graph, err := core.GenerateCrawl(2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	ranks, err := core.RankCentralized(graph)
	if err != nil {
		log.Fatal(err)
	}
	top := core.TopPages(ranks, 3)
	for i, p := range top {
		fmt.Printf("%d. %s\n", i+1, graph.URL(int32(p)))
	}
	// Output:
	// 1. http://site000.edu/p0.html
	// 2. http://site000.edu/p106.html
	// 3. http://site002.edu/p0.html
}
