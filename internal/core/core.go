// Package core is the public façade of p2prank: one import that ties
// the substrates together for the common workflows — generate or load a
// crawl, rank it centrally, rank it distributedly over a structured P2P
// overlay, and compare.
//
// The heavy lifting lives in the focused packages (webgraph, pagerank,
// pastry/chord, partition, transport, dprcore, engine); core re-exports
// the configuration surface and adds convenience constructors so the
// examples and tools stay short.
package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// Re-exported configuration types, so callers need only this package
// for the common paths.
type (
	// Config configures a distributed ranking run (see engine.Config).
	Config = engine.Config
	// Params are the shared DPR loop parameters every runtime config
	// embeds (see dprcore.Params).
	Params = dprcore.Params
	// Result is a distributed ranking outcome (see engine.Result).
	Result = engine.Result
	// Sample is one time-series point of a run.
	Sample = engine.Sample
	// GenConfig configures the synthetic crawl generator.
	GenConfig = webgraph.GenConfig
	// Graph is a crawled link graph held in memory.
	Graph = webgraph.Graph
	// Store is the read interface every graph-consuming API accepts —
	// satisfied by *Graph and by the mmap-backed webgraph.Mapped.
	Store = webgraph.Store
)

// Re-exported enumerations.
const (
	// DPR1 solves each group to convergence per loop (Algorithm 3).
	DPR1 = dprcore.DPR1
	// DPR2 takes one Jacobi step per loop (Algorithm 4).
	DPR2 = dprcore.DPR2
	// BySite partitions pages by site hash (recommended, §4.1).
	BySite = partition.BySite
	// ByPage partitions pages by URL hash.
	ByPage = partition.ByPage
	// RandomPartition assigns pages uniformly at random.
	RandomPartition = partition.Random
	// Direct is lookup-then-send transmission (Figure 3).
	Direct = transport.Direct
	// Indirect is hop-by-hop packed transmission (Figures 4–5).
	Indirect = transport.Indirect
	// Pastry selects the Pastry overlay (the paper's substrate).
	Pastry = engine.Pastry
	// Chord selects the Chord overlay.
	Chord = engine.Chord
)

// GenerateCrawl builds a synthetic crawl with the paper-calibrated
// statistics (≈90% intra-site links, 8/15 of links external, mean
// out-degree 15) at the requested size.
func GenerateCrawl(pages int, seed uint64) (*Graph, error) {
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = seed
	return webgraph.Generate(cfg)
}

// sniffFormat reads the 16-byte prefix of a graph file and classifies
// it: 0 = text, otherwise the binary version number.
func sniffFormat(f *os.File, path string) (uint64, error) {
	hdr := make([]byte, 16)
	n, err := io.ReadFull(f, hdr)
	if err != nil && n == 0 {
		return 0, fmt.Errorf("core: empty graph file %s", path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	if n < 16 || string(hdr[:8]) != "P2PRGRPH" {
		return 0, nil
	}
	return binary.LittleEndian.Uint64(hdr[8:]), nil
}

// LoadCrawl reads a crawl from a file into memory, auto-detecting the
// format by its magic bytes: version-2 mapped, version-1 streamed, or
// text. For large version-2 files prefer OpenCrawl, which maps the file
// instead of copying it onto the heap.
func LoadCrawl(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, err := sniffFormat(f, path)
	if err != nil {
		return nil, err
	}
	switch version {
	case 2:
		m, err := webgraph.OpenMapped(path)
		if err != nil {
			return nil, err
		}
		g := webgraph.Materialize(m)
		if err := m.Close(); err != nil {
			return nil, err
		}
		return g, nil
	case 0:
		return webgraph.ReadText(f)
	default:
		return webgraph.ReadBinary(f)
	}
}

// OpenCrawl opens a crawl for reading with the cheapest store for its
// format: version-2 files are mmapped in O(1); anything else is parsed
// into memory. The returned closer must be called when the store is no
// longer needed (it is a no-op for in-memory graphs).
func OpenCrawl(path string) (Store, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	version, err := sniffFormat(f, path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	f.Close()
	if version == 2 {
		m, err := webgraph.OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		return m, m.Close, nil
	}
	g, err := LoadCrawl(path)
	if err != nil {
		return nil, nil, err
	}
	return g, func() error { return nil }, nil
}

// SaveCrawl writes a crawl in the version-2 mapped binary format, the
// compact on-disk layout OpenCrawl reads back without parsing.
func SaveCrawl(path string, g Store) error {
	return webgraph.WriteMappedFile(path, g)
}

// RankCentralized computes the open-system centralized PageRank fixed
// point R* (the reference the distributed algorithms converge to).
func RankCentralized(g Store) (vecmath.Vec, error) {
	res, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		return nil, err
	}
	return res.Ranks, nil
}

// RankDistributed runs a distributed page-ranking experiment. Zero
// fields in cfg take the documented defaults; Graph, K, and MaxTime are
// required.
func RankDistributed(cfg Config) (*Result, error) {
	return engine.Run(cfg)
}

// RelativeError returns ‖a−b‖₁/‖b‖₁, the paper's comparison metric.
func RelativeError(a, b vecmath.Vec) float64 {
	return vecmath.RelErr1(a, b)
}

// TopPages returns the indices of the n highest-ranked pages, ties
// broken toward the smaller index.
func TopPages(ranks vecmath.Vec, n int) []int {
	if n > len(ranks) {
		n = len(ranks)
	}
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: n is typically tiny (top-10 listings).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if ranks[idx[j]] > ranks[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}
