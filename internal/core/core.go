// Package core is the public façade of p2prank: one import that ties
// the substrates together for the common workflows — generate or load a
// crawl, rank it centrally, rank it distributedly over a structured P2P
// overlay, and compare.
//
// The heavy lifting lives in the focused packages (webgraph, pagerank,
// pastry/chord, partition, transport, dprcore, engine); core re-exports
// the configuration surface and adds convenience constructors so the
// examples and tools stay short.
package core

import (
	"fmt"
	"io"
	"os"

	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// Re-exported configuration types, so callers need only this package
// for the common paths.
type (
	// Config configures a distributed ranking run (see engine.Config).
	Config = engine.Config
	// Params are the shared DPR loop parameters every runtime config
	// embeds (see dprcore.Params).
	Params = dprcore.Params
	// Result is a distributed ranking outcome (see engine.Result).
	Result = engine.Result
	// Sample is one time-series point of a run.
	Sample = engine.Sample
	// GenConfig configures the synthetic crawl generator.
	GenConfig = webgraph.GenConfig
	// Graph is a crawled link graph.
	Graph = webgraph.Graph
)

// Re-exported enumerations.
const (
	// DPR1 solves each group to convergence per loop (Algorithm 3).
	DPR1 = dprcore.DPR1
	// DPR2 takes one Jacobi step per loop (Algorithm 4).
	DPR2 = dprcore.DPR2
	// BySite partitions pages by site hash (recommended, §4.1).
	BySite = partition.BySite
	// ByPage partitions pages by URL hash.
	ByPage = partition.ByPage
	// RandomPartition assigns pages uniformly at random.
	RandomPartition = partition.Random
	// Direct is lookup-then-send transmission (Figure 3).
	Direct = transport.Direct
	// Indirect is hop-by-hop packed transmission (Figures 4–5).
	Indirect = transport.Indirect
	// Pastry selects the Pastry overlay (the paper's substrate).
	Pastry = engine.Pastry
	// Chord selects the Chord overlay.
	Chord = engine.Chord
)

// GenerateCrawl builds a synthetic crawl with the paper-calibrated
// statistics (≈90% intra-site links, 8/15 of links external, mean
// out-degree 15) at the requested size.
func GenerateCrawl(pages int, seed uint64) (*Graph, error) {
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = seed
	return webgraph.Generate(cfg)
}

// LoadCrawl reads a crawl from a file, auto-detecting the binary format
// by its magic bytes and falling back to the text format.
func LoadCrawl(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, 8)
	n, err := io.ReadFull(f, magic)
	if err != nil && n == 0 {
		return nil, fmt.Errorf("core: empty graph file %s", path)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if string(magic[:n]) == "P2PRGRPH" {
		return webgraph.ReadBinary(f)
	}
	return webgraph.ReadText(f)
}

// SaveCrawl writes a crawl in the compact binary format.
func SaveCrawl(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := webgraph.WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RankCentralized computes the open-system centralized PageRank fixed
// point R* (the reference the distributed algorithms converge to).
func RankCentralized(g *Graph) (vecmath.Vec, error) {
	res, err := pagerank.Open(g, pagerank.Defaults())
	if err != nil {
		return nil, err
	}
	return res.Ranks, nil
}

// RankDistributed runs a distributed page-ranking experiment. Zero
// fields in cfg take the documented defaults; Graph, K, and MaxTime are
// required.
func RankDistributed(cfg Config) (*Result, error) {
	return engine.Run(cfg)
}

// RelativeError returns ‖a−b‖₁/‖b‖₁, the paper's comparison metric.
func RelativeError(a, b vecmath.Vec) float64 {
	return vecmath.RelErr1(a, b)
}

// TopPages returns the indices of the n highest-ranked pages, ties
// broken toward the smaller index.
func TopPages(ranks vecmath.Vec, n int) []int {
	if n > len(ranks) {
		n = len(ranks)
	}
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: n is typically tiny (top-10 listings).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if ranks[idx[j]] > ranks[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:n]
}
