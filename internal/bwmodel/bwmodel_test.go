package bwmodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// The headline reproduction: Table 1's exact numbers.
func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		n, seconds, bps float64
	}{
		{1e3, 7500, 100e3},
		{1e4, 10500, 10e3},
		{1e5, 12000, 1e3},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, w := range want {
		r := rows[i]
		if r.N != w.n {
			t.Errorf("row %d N = %v", i, r.N)
		}
		if math.Abs(r.IterationSeconds-w.seconds) > 1e-6 {
			t.Errorf("N=%v: T = %v s, paper says %v s", w.n, r.IterationSeconds, w.seconds)
		}
		if math.Abs(r.BottleneckBps-w.bps)/w.bps > 1e-9 {
			t.Errorf("N=%v: B = %v B/s, paper says %v B/s", w.n, r.BottleneckBps, w.bps)
		}
	}
}

func TestPastryHopsQuotedPoints(t *testing.T) {
	for n, want := range map[float64]float64{1e3: 2.5, 1e4: 3.5, 1e5: 4.0} {
		if got := PastryHops(n); got != want {
			t.Errorf("PastryHops(%v) = %v, want %v", n, got, want)
		}
	}
	// Off-grid populations follow log₁₆.
	if got := PastryHops(256); math.Abs(got-2) > 1e-12 {
		t.Errorf("PastryHops(256) = %v, want 2", got)
	}
	if PastryHops(1) != 0 || PastryHops(0.5) != 0 {
		t.Error("degenerate populations should cost 0 hops")
	}
}

func TestFormulas(t *testing.T) {
	p := Params{W: 3e9, N: 1000, H: 2.5, L: 100, R: 48, G: 32, BisectionBps: 100e6}
	if got := p.IndirectDataBytes(); got != 2.5*100*3e9 {
		t.Errorf("D_it = %v", got)
	}
	if got := p.DirectDataBytes(); got != 100*3e9+2.5*48*1e6 {
		t.Errorf("D_dt = %v", got)
	}
	if got := p.IndirectMessages(); got != 32*1000 {
		t.Errorf("S_it = %v", got)
	}
	if got := p.DirectMessages(); got != 3.5*1e6 {
		t.Errorf("S_dt = %v", got)
	}
}

// The §4.4 conclusion: direct wins only for small N.
func TestDirectBetterOnlyForSmallN(t *testing.T) {
	base := DefaultParams()
	base.H = 2.5
	cross := base.MessageCrossoverN()
	if cross <= 1 || cross >= 100 {
		t.Fatalf("message crossover at N = %v, want ≈g/(h+1) ≈ 9", cross)
	}
	small := base
	small.N = 4
	if small.IndirectMessages() <= small.DirectMessages() {
		t.Error("direct should win on messages at N=4")
	}
	big := base
	big.N = 1000
	if big.IndirectMessages() >= big.DirectMessages() {
		t.Error("indirect should win on messages at N=1000")
	}
	if big.IndirectDataBytes() >= big.DirectDataBytes() {
		// At N=1000 with the default parameters hrN² ≈ 1.2e10 ≪ lW,
		// so direct moves fewer bytes; the byte advantage flips only
		// at much larger N.
		hugeD := base
		hugeD.N = 1e6
		if hugeD.IndirectDataBytes() >= hugeD.DirectDataBytes() {
			t.Error("indirect bytes never win even at N=10⁶")
		}
	}
}

func TestMinIterationIntervalErrors(t *testing.T) {
	p := DefaultParams()
	p.N, p.H = 1000, 2.5
	p.BisectionBps = 0
	if _, err := p.MinIterationInterval(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	p = Params{}
	if _, err := p.MinIterationInterval(); err == nil {
		t.Error("zero params accepted")
	}
	q := DefaultParams()
	q.N, q.H = 1000, 2.5
	if _, err := q.MinBottleneckBandwidth(0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := q.MinBottleneckBandwidth(-5); err == nil {
		t.Error("negative interval accepted")
	}
}

// Property: the two constraints are consistent — at T = D_it/bisection,
// per-node bandwidth times N times T reproduces D_it.
func TestConstraintConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		// Derive varied but valid params from the seed.
		n := float64(10 + seed%100000)
		p := DefaultParams()
		p.N = n
		p.H = PastryHops(n)
		if p.H <= 0 {
			return true
		}
		tMin, err := p.MinIterationInterval()
		if err != nil {
			return false
		}
		b, err := p.MinBottleneckBandwidth(tMin)
		if err != nil {
			return false
		}
		return math.Abs(b*p.N*tMin-p.IndirectDataBytes()) < 1e-3*p.IndirectDataBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRenderTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1(rows)
	for _, want := range []string{"1000", "7500s", "100KB/s", "10KB/s", "1KB/s", "12000s"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatBps(t *testing.T) {
	if formatBps(100e6) != "100MB/s" || formatBps(10e3) != "10KB/s" || formatBps(500) != "500B/s" {
		t.Fatal("bandwidth formatting wrong")
	}
}

func TestTable1ForCustomN(t *testing.T) {
	rows, err := Table1For(DefaultParams(), []float64{256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || math.Abs(rows[0].Hops-2) > 1e-12 {
		t.Fatalf("rows = %+v", rows)
	}
}
