// Package bwmodel implements the analytic communication-cost model of
// §4.4–4.5: the per-iteration data volumes and message counts of direct
// and indirect transmission (formulas 4.1–4.4), the bisection- and
// bottleneck-bandwidth constraints (formulas 4.6–4.7), and the Table 1
// generator relating ranker population to the minimal iteration
// interval.
package bwmodel

import (
	"fmt"
	"math"

	"p2prank/internal/metrics"
)

// Params are the model inputs, in the paper's notation.
type Params struct {
	// W is the number of web pages being ranked.
	W float64
	// N is the number of page rankers.
	N float64
	// H is the average overlay lookup hop count.
	H float64
	// L is l: bytes per transmitted link record (<url_from, url_to,
	// score> ≈ 100 B given 40-byte URLs).
	L float64
	// R is r: bytes per lookup message.
	R float64
	// G is g: average overlay neighbors per node.
	G float64
	// BisectionBps is the usable Internet bisection bandwidth in
	// bytes/second (the paper budgets 1% of 100 Gb/s ⇒ 100 MB/s).
	BisectionBps float64
}

// DefaultParams returns the §4.5 worked example: 3 billion pages,
// l = 100 B, r = 48 B, g = 32, and a 100 MB/s bisection budget. H and N
// must still be set (use PastryHops).
func DefaultParams() Params {
	return Params{
		W:            3e9,
		L:            100,
		R:            48,
		G:            32,
		BisectionBps: 100e6,
	}
}

// Validate checks the parameters a computation needs are positive.
func (p Params) Validate() error {
	if p.W <= 0 || p.N <= 0 || p.H <= 0 || p.L <= 0 {
		return fmt.Errorf("bwmodel: W, N, H, L must be positive: %+v", p)
	}
	if p.R < 0 || p.G < 0 || p.BisectionBps < 0 {
		return fmt.Errorf("bwmodel: negative R, G, or bandwidth: %+v", p)
	}
	return nil
}

// IndirectDataBytes is formula 4.1: D_it = h·l·W. Every link record
// crosses h overlay hops.
func (p Params) IndirectDataBytes() float64 { return p.H * p.L * p.W }

// DirectDataBytes is formula 4.2: D_dt = l·W + h·r·N². Payload moves
// once, but every ranker pair pays an h-hop lookup first.
func (p Params) DirectDataBytes() float64 { return p.L*p.W + p.H*p.R*p.N*p.N }

// IndirectMessages is formula 4.3: S_it = g·N. Each node talks only to
// its neighbors.
func (p Params) IndirectMessages() float64 { return p.G * p.N }

// DirectMessages is formula 4.4: S_dt = (h+1)·N². Each pair pays h
// lookup messages plus the data message.
func (p Params) DirectMessages() float64 { return (p.H + 1) * p.N * p.N }

// MinIterationInterval is constraint 4.6 solved for T: the smallest
// iteration period keeping indirect transmission inside the bisection
// budget, T > D_it / budget.
func (p Params) MinIterationInterval() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.BisectionBps == 0 {
		return 0, fmt.Errorf("bwmodel: zero bisection bandwidth")
	}
	return p.IndirectDataBytes() / p.BisectionBps, nil
}

// MinBottleneckBandwidth is constraint 4.7 solved for B: the per-node
// access bandwidth needed to sustain iteration interval t, B ≥ D_it/(N·t).
func (p Params) MinBottleneckBandwidth(t float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if t <= 0 {
		return 0, fmt.Errorf("bwmodel: non-positive interval %v", t)
	}
	return p.IndirectDataBytes() / (p.N * t), nil
}

// MessageCrossoverN returns the ranker population above which indirect
// transmission sends fewer messages than direct: gN < (h+1)N² ⇔
// N > g/(h+1).
func (p Params) MessageCrossoverN() float64 {
	if p.H+1 == 0 {
		return math.Inf(1)
	}
	return p.G / (p.H + 1)
}

// PastryHops returns the average Pastry (b=4) lookup hop count for n
// nodes. The paper quotes measured values 2.5/3.5/4.0 at 10³/10⁴/10⁵;
// those exact points are returned verbatim and other populations use
// the log₁₆ model that generates them.
func PastryHops(n float64) float64 {
	switch n {
	case 1e3:
		return 2.5
	case 1e4:
		return 3.5
	case 1e5:
		return 4.0
	}
	if n <= 1 {
		return 0
	}
	return math.Log(n) / math.Log(16)
}

// ValidationRow pairs one model quantity with its measured value — the
// empirical check of §4.4–4.5 that the paper itself never ran. Rows are
// produced per ranker population by ValidateIndirect and rendered with
// RenderValidation.
type ValidationRow struct {
	// Quantity names the model quantity (with its formula).
	Quantity string
	// Predicted is the analytic value.
	Predicted float64
	// Measured is the telemetry-side observation.
	Measured float64
}

// Ratio is Measured/Predicted (NaN when the prediction is zero).
func (r ValidationRow) Ratio() float64 {
	if r.Predicted == 0 {
		return math.NaN()
	}
	return r.Measured / r.Predicted
}

// IndirectObserved holds the telemetry measurements of one indirect-
// transmission run that the model's formulas predict.
type IndirectObserved struct {
	// Hops is the measured mean overlay route length per chunk.
	Hops float64
	// MsgsPerIter is the on-wire data-message count per iteration
	// (hop-by-hop packages, including relays).
	MsgsPerIter float64
	// SeamBytesPerIter is the payload volume emitted per iteration at
	// the dprcore sender seam — the l·W of formula 4.1, counted once
	// per chunk before it starts hopping.
	SeamBytesPerIter float64
	// WireBytesPerIter is the on-wire payload volume per iteration,
	// counting every hop a chunk crosses.
	WireBytesPerIter float64
	// IterInterval is the measured mean virtual time between loop
	// iterations (the paper's T).
	IterInterval float64
	// NodeSendRate is the measured mean per-node upstream usage in
	// bytes per virtual time unit.
	NodeSendRate float64
}

// ValidateIndirect compares the indirect-transmission formulas against
// one run's measurements. p supplies the analytic inputs: N and G as
// configured/measured, H as the model's hop prediction (PastryHops).
// Four checks come back:
//
//   - h: the predicted lookup hop count vs the measured route length.
//   - S_it = g·N (4.3): the neighbor-link message budget vs messages
//     actually sent. Measured counts hop-by-hop packages, so relayed
//     chunks can push it above the budget by up to a factor of h; it
//     lands below when not every neighbor link carries traffic in an
//     iteration.
//   - D_it = h·l·W (4.1): the claim that shipping l·W payload bytes
//     over an h-hop overlay costs h·(l·W) on the wire, with the
//     measured h and seam volume plugged in.
//   - B = D_it/(N·T) (4.7): the bottleneck per-node bandwidth the
//     measured traffic implies vs measured per-node upstream usage.
func ValidateIndirect(p Params, o IndirectObserved) []ValidationRow {
	return []ValidationRow{
		{Quantity: "h (lookup hops)", Predicted: p.H, Measured: o.Hops},
		{Quantity: "S_it = g·N (msgs/iter)", Predicted: p.IndirectMessages(), Measured: o.MsgsPerIter},
		{Quantity: "D_it = h·l·W (bytes/iter)", Predicted: o.Hops * o.SeamBytesPerIter, Measured: o.WireBytesPerIter},
		{Quantity: "B = D_it/(N·T) (B/node/unit)", Predicted: o.Hops * o.SeamBytesPerIter / (p.N * o.IterInterval), Measured: o.NodeSendRate},
	}
}

// RenderValidation formats one population's validation rows.
func RenderValidation(rows []ValidationRow) string {
	t := metrics.NewTable("quantity", "predicted", "measured", "measured/predicted")
	for _, r := range rows {
		t.AddRow(r.Quantity,
			fmt.Sprintf("%.4g", r.Predicted),
			fmt.Sprintf("%.4g", r.Measured),
			fmt.Sprintf("%.2f", r.Ratio()))
	}
	return t.String()
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	N                float64
	Hops             float64
	IterationSeconds float64
	BottleneckBps    float64
}

// Table1 evaluates the model at the paper's three ranker populations
// (10³, 10⁴, 10⁵) with its default parameters: the minimal time between
// iterations and the per-node bottleneck bandwidth that implies.
func Table1() ([]Table1Row, error) {
	return Table1For(DefaultParams(), []float64{1e3, 1e4, 1e5})
}

// Table1For evaluates the model at arbitrary ranker populations.
func Table1For(base Params, ns []float64) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(ns))
	for _, n := range ns {
		p := base
		p.N = n
		p.H = PastryHops(n)
		t, err := p.MinIterationInterval()
		if err != nil {
			return nil, err
		}
		b, err := p.MinBottleneckBandwidth(t)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{N: n, Hops: p.H, IterationSeconds: t, BottleneckBps: b})
	}
	return rows, nil
}

// RenderTable1 formats rows like the paper's Table 1.
func RenderTable1(rows []Table1Row) string {
	t := metrics.NewTable("# of Page Rankers", "Avg Hops", "Time per Iteration", "Bottleneck Bandwidth Needed")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.0f", r.N),
			fmt.Sprintf("%.1f", r.Hops),
			fmt.Sprintf("%.0fs", r.IterationSeconds),
			formatBps(r.BottleneckBps),
		)
	}
	return t.String()
}

func formatBps(b float64) string {
	switch {
	case b >= 1e6:
		return fmt.Sprintf("%.0fMB/s", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.0fKB/s", b/1e3)
	}
	return fmt.Sprintf("%.0fB/s", b)
}
