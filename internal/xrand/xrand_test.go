package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("streams diverged at step %d: %x != %x", i, av, bv)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical SplitMix64 implementation
	// (Steele, Lea, Flood) with seed 1234567.
	s := NewSplitMix64(1234567)
	want := []uint64{
		// 6457827717110365317, 3203168211198807973, 9817491932198370423
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Fork()
	// The fork must be deterministic: rebuilding the same tree gives the
	// same child stream.
	parent2 := New(99)
	child2 := parent2.Fork()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatalf("forked streams not reproducible at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n < 100; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	const mean = 7.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.05 {
		t.Fatalf("exponential mean = %v, want ~%v", got, mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	r := New(1)
	if v := r.Exp(0); v != 0 {
		t.Fatalf("Exp(0) = %v, want 0", v)
	}
	if v := r.Exp(-3); v != 0 {
		t.Fatalf("Exp(-3) = %v, want 0", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(19)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: sum %d != %d", got, sum)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Sample()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// P(0) for s=1, n=100 is 1/H(100) ~ 0.1928.
	p0 := float64(counts[0]) / draws
	if math.Abs(p0-0.1928) > 0.01 {
		t.Fatalf("Zipf P(0) = %v, want ~0.1928", p0)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Sample()]++
	}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("s=0 Zipf bucket %d has p=%v, want ~0.1", i, got)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := New(1)
	for _, f := range []func(){
		func() { NewZipf(r, 0, 1) },
		func() { NewZipf(r, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZipfN(t *testing.T) {
	z := NewZipf(New(1), 42, 1)
	if z.N() != 42 {
		t.Fatalf("N = %d, want 42", z.N())
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfSample(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1<<16, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample()
	}
}
