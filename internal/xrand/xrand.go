// Package xrand provides small, fast, deterministic random number
// generators for reproducible experiments.
//
// The simulator, the synthetic web-graph generator, and the experiment
// harness all need independent random streams whose output is identical
// across runs and platforms. math/rand's global source is shared mutable
// state and its algorithm has changed across Go releases; xrand instead
// implements SplitMix64 and xoshiro256** directly so a seed fully
// determines every experiment.
package xrand

import "math"

// SplitMix64 is a tiny 64-bit generator used both directly and to seed
// larger generators. The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; create one stream per goroutine or per simulated entity.
type Rand struct {
	s [4]uint64
}

// New returns a Rand whose state is expanded from seed with SplitMix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// A theoretically possible all-zero state would make the generator
	// emit only zeros; nudge it.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Fork returns a new independent stream derived from this one. Forked
// streams are deterministic functions of the parent's current state, so a
// tree of entities can each get a private stream from one root seed.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's rejection
// method (unbiased). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
// A non-positive mean yields 0, which models "no waiting".
func (r *Rand) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the CDF, so sampling is O(log n).
type Zipf struct {
	cdf []float64
	rng *Rand
}

// NewZipf builds a Zipf sampler over n items with exponent s using the
// stream rng. It panics if n <= 0 or s < 0.
func NewZipf(rng *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, rng: rng}
}

// Sample draws one index.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of items the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }
