// Package pastry implements the Pastry structured overlay (Rowstron &
// Druschel, Middleware 2001) at the fidelity the paper's experiments
// need: per-node routing tables over base-2^b digits, leaf sets, prefix
// routing with the leaf-set shortcut, and the ~log_{2^b}(N) lookup hop
// counts that drive Table 1 (h ≈ 2.5 at N=1000, 3.5 at 10⁴, 4.0 at 10⁵
// for b=4).
//
// Membership changes (Join, Fail, Recover) repair routing state with an
// oracle rebuild: the overlay recomputes every table from the live
// membership, producing exactly the state Pastry's join/repair protocol
// converges to. The paper's experiments do not exercise churn during
// ranking, so the message cost of the maintenance protocol itself is out
// of scope (it is not part of any measured figure).
package pastry

import (
	"fmt"
	"sort"

	"p2prank/internal/nodeid"
)

// Config parameterizes the overlay.
type Config struct {
	// B is the number of bits per routing digit (the Pastry parameter
	// b); 2^B is the routing-table fan-out. Must divide 128. Default 4.
	B int
	// LeafSize is the total leaf-set size (split evenly between the
	// clockwise and counter-clockwise sides). Default 16.
	LeafSize int
}

// DefaultConfig returns Pastry's standard parameters: b=4, |L|=16.
func DefaultConfig() Config { return Config{B: 4, LeafSize: 16} }

func (c *Config) validate() error {
	if c.B == 0 {
		c.B = 4
	}
	if c.LeafSize == 0 {
		c.LeafSize = 16
	}
	if c.B <= 0 || nodeid.Bits%c.B != 0 {
		return fmt.Errorf("pastry: digit width %d must divide %d", c.B, nodeid.Bits)
	}
	if c.LeafSize < 2 || c.LeafSize%2 != 0 {
		return fmt.Errorf("pastry: LeafSize %d must be a positive even number", c.LeafSize)
	}
	return nil
}

// state is one node's routing state.
type state struct {
	// leaves holds the leaf set: the LeafSize/2 nearest live nodes on
	// each side of the ring, by node index.
	leaves []int
	// table[row*fanout+col] is a node index or -1.
	table []int
}

// Overlay is a Pastry network over a fixed set of member nodes.
type Overlay struct {
	cfg    Config
	fanout int
	rows   int
	ids    []nodeid.ID
	alive  []bool
	nodes  []state
	// sorted holds live node indices ordered by ID.
	sorted []int
	nLive  int
}

// New builds a Pastry overlay over the given node IDs, all live.
// Duplicate IDs are rejected: the ring needs distinct points.
func New(ids []nodeid.ID, cfg Config) (*Overlay, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("pastry: no nodes")
	}
	seen := make(map[nodeid.ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("pastry: duplicate node ID %s", id)
		}
		seen[id] = true
	}
	o := &Overlay{
		cfg:    cfg,
		fanout: 1 << uint(cfg.B),
		rows:   nodeid.Bits / cfg.B,
		ids:    append([]nodeid.ID(nil), ids...),
		alive:  make([]bool, len(ids)),
	}
	for i := range o.alive {
		o.alive[i] = true
	}
	o.rebuild()
	return o, nil
}

// NumNodes returns the total membership, live or dead.
func (o *Overlay) NumNodes() int { return len(o.ids) }

// NumLive returns the number of live nodes.
func (o *Overlay) NumLive() int { return o.nLive }

// NodeID returns node i's ring identifier.
func (o *Overlay) NodeID(i int) nodeid.ID { return o.ids[i] }

// Alive reports whether node i is live.
func (o *Overlay) Alive(i int) bool { return o.alive[i] }

// Fail marks node i dead and repairs all routing state. Failing the
// last live node is an error.
func (o *Overlay) Fail(i int) error {
	if !o.alive[i] {
		return nil
	}
	if o.nLive == 1 {
		return fmt.Errorf("pastry: cannot fail the last live node")
	}
	o.alive[i] = false
	o.rebuild()
	return nil
}

// Recover marks node i live again and repairs routing state.
func (o *Overlay) Recover(i int) {
	if o.alive[i] {
		return
	}
	o.alive[i] = true
	o.rebuild()
}

// Join adds a new node with the given ID and returns its index.
func (o *Overlay) Join(id nodeid.ID) (int, error) {
	for _, existing := range o.ids {
		if existing == id {
			return 0, fmt.Errorf("pastry: duplicate node ID %s", id)
		}
	}
	o.ids = append(o.ids, id)
	o.alive = append(o.alive, true)
	o.rebuild()
	return len(o.ids) - 1, nil
}

// rebuild recomputes the sorted ring, every leaf set, and every routing
// table from the live membership.
func (o *Overlay) rebuild() {
	o.sorted = o.sorted[:0]
	for i, a := range o.alive {
		if a {
			o.sorted = append(o.sorted, i)
		}
	}
	o.nLive = len(o.sorted)
	sort.Slice(o.sorted, func(a, b int) bool {
		return o.ids[o.sorted[a]].Cmp(o.ids[o.sorted[b]]) < 0
	})
	if cap(o.nodes) < len(o.ids) {
		o.nodes = make([]state, len(o.ids))
	}
	o.nodes = o.nodes[:len(o.ids)]
	for i := range o.nodes {
		o.nodes[i] = state{}
	}
	o.buildLeafSets()
	o.buildTables(0, o.nLive, 0)
}

// buildLeafSets assigns each live node its LeafSize/2 ring neighbors on
// each side.
func (o *Overlay) buildLeafSets() {
	n := o.nLive
	half := o.cfg.LeafSize / 2
	if half > n-1 {
		half = n - 1
	}
	for pos, idx := range o.sorted {
		st := &o.nodes[idx]
		st.leaves = make([]int, 0, 2*half)
		for k := 1; k <= half; k++ {
			st.leaves = append(st.leaves, o.sorted[(pos+k)%n])
			st.leaves = append(st.leaves, o.sorted[(pos-k+2*n)%n])
		}
	}
}

// buildTables recursively partitions the sorted live nodes by digit.
// All nodes in sorted[lo:hi] share the first `depth` digits; each gets
// row `depth` of its routing table filled with one representative per
// differing digit.
func (o *Overlay) buildTables(lo, hi, depth int) {
	if hi-lo <= 1 || depth >= o.rows {
		return
	}
	// Partition [lo,hi) by the digit at position depth. The slice is
	// sorted, so each digit occupies a contiguous subrange.
	type span struct{ lo, hi int }
	spans := make([]span, o.fanout)
	for d := range spans {
		spans[d] = span{-1, -1}
	}
	i := lo
	for i < hi {
		d := o.ids[o.sorted[i]].Digit(depth, o.cfg.B)
		j := i
		for j < hi && o.ids[o.sorted[j]].Digit(depth, o.cfg.B) == d {
			j++
		}
		spans[d] = span{i, j}
		i = j
	}
	// Each node's row `depth`: a representative of every other digit's
	// subrange. The representative is the subrange member nearest the
	// node's ring position, which is what Pastry's locality-aware
	// construction degenerates to without a proximity metric.
	for d := 0; d < o.fanout; d++ {
		sp := spans[d]
		if sp.lo < 0 {
			continue
		}
		for k := sp.lo; k < sp.hi; k++ {
			idx := o.sorted[k]
			st := &o.nodes[idx]
			if st.table == nil {
				st.table = make([]int, o.rows*o.fanout)
				for t := range st.table {
					st.table[t] = -1
				}
			}
			row := st.table[depth*o.fanout : (depth+1)*o.fanout]
			for d2 := 0; d2 < o.fanout; d2++ {
				if d2 == d || spans[d2].lo < 0 {
					continue
				}
				// Nearest member of spans[d2] to position k keeps
				// entries varied across nodes yet deterministic.
				row[d2] = o.sorted[nearestIn(spans[d2].lo, spans[d2].hi, k)]
			}
		}
	}
	for d := 0; d < o.fanout; d++ {
		if spans[d].lo >= 0 {
			o.buildTables(spans[d].lo, spans[d].hi, depth+1)
		}
	}
}

// nearestIn returns the index in [lo,hi) closest to pos.
func nearestIn(lo, hi, pos int) int {
	if pos < lo {
		return lo
	}
	if pos >= hi {
		return hi - 1
	}
	return pos // can only happen for the node's own span
}

// Owner returns the live node numerically closest to key (Pastry's
// responsibility rule), breaking exact ties toward the smaller ID.
func (o *Overlay) Owner(key nodeid.ID) int {
	n := o.nLive
	pos := sort.Search(n, func(i int) bool {
		return o.ids[o.sorted[i]].Cmp(key) >= 0
	})
	// Candidates: the flanking nodes on the sorted ring.
	a := o.sorted[(pos-1+n)%n]
	b := o.sorted[pos%n]
	return o.closerToKey(a, b, key)
}

// closerToKey picks whichever of nodes a, b is numerically closer to
// key, breaking distance ties toward the smaller ID.
func (o *Overlay) closerToKey(a, b int, key nodeid.ID) int {
	if a == b {
		return a
	}
	da := nodeid.AbsDist(o.ids[a], key)
	db := nodeid.AbsDist(o.ids[b], key)
	switch da.Cmp(db) {
	case -1:
		return a
	case 1:
		return b
	}
	if o.ids[a].Cmp(o.ids[b]) < 0 {
		return a
	}
	return b
}

// NextHop implements Pastry routing from node i toward key. It returns
// i when i is responsible for key.
func (o *Overlay) NextHop(i int, key nodeid.ID) int {
	if !o.alive[i] {
		panic(fmt.Sprintf("pastry: NextHop from dead node %d", i))
	}
	st := &o.nodes[i]
	self := o.ids[i]

	// 1. Leaf-set shortcut: if key falls within the leaf set's ring
	// span, the numerically closest of {self} ∪ leaves is responsible.
	if best, ok := o.leafRoute(i, key); ok {
		return best
	}
	// 2. Prefix routing: forward to the table entry matching one more
	// digit of the key.
	l := nodeid.CommonPrefixLen(self, key, o.cfg.B)
	if l < o.rows && st.table != nil {
		if t := st.table[l*o.fanout+key.Digit(l, o.cfg.B)]; t >= 0 && o.alive[t] {
			return t
		}
	}
	// 3. Rare case: any known node sharing ≥ l digits with the key and
	// numerically closer to it than self.
	selfDist := nodeid.AbsDist(self, key)
	best := i
	bestDist := selfDist
	consider := func(c int) {
		if c < 0 || !o.alive[c] {
			return
		}
		if nodeid.CommonPrefixLen(o.ids[c], key, o.cfg.B) < l {
			return
		}
		d := nodeid.AbsDist(o.ids[c], key)
		if d.Cmp(bestDist) < 0 {
			best, bestDist = c, d
		}
	}
	for _, c := range st.leaves {
		consider(c)
	}
	if st.table != nil {
		for _, c := range st.table {
			consider(c)
		}
	}
	return best
}

// leafRoute applies the leaf-set rule: when key lies within the span of
// node i's leaf set it returns the numerically closest member of
// {i} ∪ leaves and true.
func (o *Overlay) leafRoute(i int, key nodeid.ID) (int, bool) {
	st := &o.nodes[i]
	if len(st.leaves) == 0 {
		return i, true // singleton ring: everything is ours
	}
	if len(st.leaves) >= o.nLive-1 {
		// Leaf set covers the entire ring; pick globally closest.
		return o.Owner(key), true
	}
	// Find the span [min, max] of the leaf set around self on the ring.
	// Leaves alternate successor/predecessor at increasing distance, so
	// the extremes are the last two entries.
	cw := st.leaves[len(st.leaves)-2]  // farthest clockwise
	ccw := st.leaves[len(st.leaves)-1] // farthest counter-clockwise
	if !nodeid.BetweenIncl(key, o.ids[ccw], o.ids[cw]) && key != o.ids[ccw] {
		return 0, false
	}
	best := i
	for _, c := range st.leaves {
		best = o.closerToKey(best, c, key)
	}
	return best, true
}

// Neighbors returns node i's overlay links: the union of its leaf set
// and routing-table entries, live, deduplicated, and sorted. Its size is
// the per-node neighbor count g in the paper's formula S_it = gN.
func (o *Overlay) Neighbors(i int) []int {
	st := &o.nodes[i]
	set := make(map[int]struct{}, len(st.leaves)+len(st.table))
	add := func(c int) {
		if c >= 0 && c != i && o.alive[c] {
			set[c] = struct{}{}
		}
	}
	for _, c := range st.leaves {
		add(c)
	}
	for _, c := range st.table {
		add(c)
	}
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
