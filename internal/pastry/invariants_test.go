package pastry

import (
	"sort"
	"testing"

	"p2prank/internal/nodeid"
)

// Structural invariants of the Pastry state, checked directly rather
// than through routing behaviour.

// Every routing-table entry at row ℓ, column d must share exactly the
// node's first ℓ digits and have digit d at position ℓ.
func TestRoutingTableEntryInvariant(t *testing.T) {
	o := newOverlay(t, 150)
	b := o.cfg.B
	for i := 0; i < o.NumNodes(); i++ {
		st := &o.nodes[i]
		if st.table == nil {
			continue
		}
		self := o.NodeID(i)
		for row := 0; row < o.rows; row++ {
			for d := 0; d < o.fanout; d++ {
				e := st.table[row*o.fanout+d]
				if e < 0 {
					continue
				}
				eid := o.NodeID(e)
				if got := nodeid.CommonPrefixLen(self, eid, b); got < row {
					t.Fatalf("node %d row %d col %d: entry shares only %d digits", i, row, d, got)
				}
				if got := eid.Digit(row, b); got != d {
					t.Fatalf("node %d row %d col %d: entry digit %d", i, row, d, got)
				}
			}
		}
	}
}

// Leaf sets must hold exactly the nearest ring neighbors on each side.
func TestLeafSetInvariant(t *testing.T) {
	o := newOverlay(t, 120)
	// Reconstruct the sorted ring.
	ring := make([]int, o.NumNodes())
	for i := range ring {
		ring[i] = i
	}
	sort.Slice(ring, func(a, b int) bool {
		return o.NodeID(ring[a]).Cmp(o.NodeID(ring[b])) < 0
	})
	pos := make(map[int]int)
	for p, idx := range ring {
		pos[idx] = p
	}
	n := len(ring)
	half := o.cfg.LeafSize / 2
	for i := 0; i < o.NumNodes(); i++ {
		want := map[int]bool{}
		for k := 1; k <= half; k++ {
			want[ring[(pos[i]+k)%n]] = true
			want[ring[(pos[i]-k+n)%n]] = true
		}
		got := map[int]bool{}
		for _, l := range o.nodes[i].leaves {
			got[l] = true
		}
		if len(got) != len(want) {
			t.Fatalf("node %d leaf set size %d, want %d", i, len(got), len(want))
		}
		for l := range want {
			if !got[l] {
				t.Fatalf("node %d leaf set missing ring neighbor %d", i, l)
			}
		}
	}
}

// Routing makes monotone progress: along any route, the prefix match
// with the key never decreases, and when it stays equal the numeric
// distance shrinks.
func TestRouteProgressInvariant(t *testing.T) {
	o := newOverlay(t, 200)
	b := o.cfg.B
	for _, key := range randKeys(100, 77) {
		cur := 3
		for hop := 0; hop < 64; hop++ {
			next := o.NextHop(cur, key)
			if next == cur {
				break
			}
			curPfx := nodeid.CommonPrefixLen(o.NodeID(cur), key, b)
			nextPfx := nodeid.CommonPrefixLen(o.NodeID(next), key, b)
			if nextPfx < curPfx {
				// Allowed only via the leaf-set rule, which must then
				// deliver the final owner.
				if o.NextHop(next, key) != next {
					t.Fatalf("key %s: prefix regressed %d->%d without terminating", key, curPfx, nextPfx)
				}
			}
			if nextPfx == curPfx {
				dc := nodeid.AbsDist(o.NodeID(cur), key)
				dn := nodeid.AbsDist(o.NodeID(next), key)
				if dn.Cmp(dc) >= 0 {
					t.Fatalf("key %s: no numeric progress at hop %d", key, hop)
				}
			}
			cur = next
		}
	}
}
