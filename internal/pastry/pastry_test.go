package pastry

import (
	"fmt"
	"math"
	"testing"

	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/xrand"
)

var _ overlay.Network = (*Overlay)(nil)

func makeIDs(n int) []nodeid.ID {
	ids := make([]nodeid.ID, n)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	return ids
}

func newOverlay(t testing.TB, n int) *Overlay {
	t.Helper()
	o, err := New(makeIDs(n), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func randKeys(n int, seed uint64) []nodeid.ID {
	r := xrand.New(seed)
	keys := make([]nodeid.ID, n)
	for i := range keys {
		keys[i] = nodeid.ID{Hi: r.Uint64(), Lo: r.Uint64()}
	}
	return keys
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("empty membership accepted")
	}
	ids := makeIDs(3)
	ids[2] = ids[0]
	if _, err := New(ids, DefaultConfig()); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := New(makeIDs(3), Config{B: 3}); err == nil {
		t.Error("non-dividing digit width accepted")
	}
	if _, err := New(makeIDs(3), Config{LeafSize: 5}); err == nil {
		t.Error("odd leaf size accepted")
	}
}

func TestOwnerIsNumericallyClosest(t *testing.T) {
	o := newOverlay(t, 64)
	for _, key := range randKeys(200, 3) {
		got := o.Owner(key)
		best := 0
		for i := 1; i < o.NumNodes(); i++ {
			d := nodeid.AbsDist(o.NodeID(i), key)
			bd := nodeid.AbsDist(o.NodeID(best), key)
			if c := d.Cmp(bd); c < 0 || (c == 0 && o.NodeID(i).Cmp(o.NodeID(best)) < 0) {
				best = i
			}
		}
		if got != best {
			t.Fatalf("Owner(%s) = %d, brute force says %d", key, got, best)
		}
	}
}

func TestRoutingConvergesEverywhere(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17, 50, 200} {
		o := newOverlay(t, n)
		if err := overlay.CheckConvergent(o, randKeys(40, uint64(n))); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestOwnerIsFixedPoint(t *testing.T) {
	o := newOverlay(t, 100)
	for _, key := range randKeys(100, 5) {
		own := o.Owner(key)
		if next := o.NextHop(own, key); next != own {
			t.Fatalf("owner %d forwarded key %s to %d", own, key, next)
		}
	}
}

func TestHopCountsLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: builds a 1000-node overlay")
	}
	o := newOverlay(t, 1000)
	rng := xrand.New(11)
	h, err := overlay.AvgHops(o, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// log₁₆(1000) ≈ 2.49; Pastry's reported figure is ~2.5. Leaf sets
	// shave a little, so accept a band around it.
	if h < 1.6 || h > 3.2 {
		t.Fatalf("avg hops at N=1000 = %v, want ≈2.5", h)
	}
	small := newOverlay(t, 50)
	hs, err := overlay.AvgHops(small, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if hs >= h {
		t.Fatalf("hops did not grow with N: %v (N=50) vs %v (N=1000)", hs, h)
	}
}

func TestNeighborsWellFormed(t *testing.T) {
	o := newOverlay(t, 120)
	for i := 0; i < o.NumNodes(); i++ {
		ns := o.Neighbors(i)
		if len(ns) == 0 {
			t.Fatalf("node %d has no neighbors", i)
		}
		for k, c := range ns {
			if c == i {
				t.Fatalf("node %d lists itself", i)
			}
			if k > 0 && ns[k-1] >= c {
				t.Fatalf("node %d neighbors unsorted or duplicated: %v", i, ns)
			}
			if !o.Alive(c) {
				t.Fatalf("node %d lists dead neighbor %d", i, c)
			}
		}
	}
}

func TestNeighborCountLogarithmic(t *testing.T) {
	// "In P2P networks one node commonly has roughly some dozens of
	// neighbors" (§4.4). For N=200 at b=4 the leaf set (16) plus a few
	// populated table rows should land in the dozens, far below N.
	o := newOverlay(t, 200)
	total := 0
	for i := 0; i < o.NumNodes(); i++ {
		total += len(o.Neighbors(i))
	}
	g := float64(total) / float64(o.NumNodes())
	if g < 10 || g > 80 {
		t.Fatalf("mean neighbor count %v, want a few dozen", g)
	}
}

func TestFailRecover(t *testing.T) {
	o := newOverlay(t, 60)
	rng := xrand.New(9)
	var failed []int
	for i := 0; i < 6; i++ {
		v := rng.Intn(o.NumNodes())
		if o.Alive(v) {
			if err := o.Fail(v); err != nil {
				t.Fatal(err)
			}
			failed = append(failed, v)
		}
	}
	if err := overlay.CheckConvergent(o, randKeys(30, 13)); err != nil {
		t.Fatalf("after failures: %v", err)
	}
	for _, key := range randKeys(50, 14) {
		own := o.Owner(key)
		if !o.Alive(own) {
			t.Fatalf("dead owner %d for key %s", own, key)
		}
	}
	for i := 0; i < o.NumNodes(); i++ {
		if !o.Alive(i) {
			continue
		}
		for _, c := range o.Neighbors(i) {
			if !o.Alive(c) {
				t.Fatalf("dead neighbor %d survives in node %d's state", c, i)
			}
		}
	}
	for _, v := range failed {
		o.Recover(v)
	}
	if o.NumLive() != o.NumNodes() {
		t.Fatalf("live=%d after recovery, want %d", o.NumLive(), o.NumNodes())
	}
	if err := overlay.CheckConvergent(o, randKeys(30, 15)); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestFailLastNodeRejected(t *testing.T) {
	o := newOverlay(t, 1)
	if err := o.Fail(0); err == nil {
		t.Fatal("failing the last node accepted")
	}
}

func TestFailIdempotent(t *testing.T) {
	o := newOverlay(t, 3)
	if err := o.Fail(1); err != nil {
		t.Fatal(err)
	}
	if err := o.Fail(1); err != nil {
		t.Fatalf("re-failing failed node: %v", err)
	}
	o.Recover(1)
	o.Recover(1) // idempotent
	if o.NumLive() != 3 {
		t.Fatalf("live = %d", o.NumLive())
	}
}

func TestJoin(t *testing.T) {
	o := newOverlay(t, 20)
	id := nodeid.Hash("late-arrival")
	idx, err := o.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	if o.NodeID(idx) != id || !o.Alive(idx) {
		t.Fatal("joined node state wrong")
	}
	if err := overlay.CheckConvergent(o, append(randKeys(20, 17), id)); err != nil {
		t.Fatalf("after join: %v", err)
	}
	// The new node owns its own ID.
	if own := o.Owner(id); own != idx {
		t.Fatalf("Owner(own id) = %d, want %d", own, idx)
	}
	if _, err := o.Join(id); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestSingleton(t *testing.T) {
	o := newOverlay(t, 1)
	key := randKeys(1, 19)[0]
	if o.Owner(key) != 0 {
		t.Fatal("singleton does not own everything")
	}
	if o.NextHop(0, key) != 0 {
		t.Fatal("singleton forwards")
	}
	if len(o.Neighbors(0)) != 0 {
		t.Fatal("singleton has neighbors")
	}
}

func TestNextHopFromDeadPanics(t *testing.T) {
	o := newOverlay(t, 4)
	if err := o.Fail(2); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NextHop from dead node did not panic")
		}
	}()
	o.NextHop(2, randKeys(1, 1)[0])
}

func TestDeterministicConstruction(t *testing.T) {
	a := newOverlay(t, 80)
	b := newOverlay(t, 80)
	key := randKeys(1, 23)[0]
	for i := 0; i < 80; i++ {
		if a.NextHop(i, key) != b.NextHop(i, key) {
			t.Fatalf("construction nondeterministic at node %d", i)
		}
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatalf("neighbor sets differ at node %d", i)
		}
		for k := range na {
			if na[k] != nb[k] {
				t.Fatalf("neighbor sets differ at node %d", i)
			}
		}
	}
}

// Routes should shorten as they progress: each hop's distance to the key
// never increases beyond the previous hop's (prefix match grows or
// numeric distance shrinks). We verify the weaker, observable property
// that routes are loop-free and bounded.
func TestRoutesLoopFree(t *testing.T) {
	o := newOverlay(t, 300)
	bound := 10 // generous for log₁₆(300) ≈ 2.1
	for _, key := range randKeys(200, 29) {
		p, err := overlay.Route(o, 0, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) > bound {
			t.Fatalf("route of %d hops for key %s", len(p)-1, key)
		}
		seen := map[int]bool{}
		for _, n := range p {
			if seen[n] {
				t.Fatalf("loop in route %v", p)
			}
			seen[n] = true
		}
	}
}

func TestAvgHopsMatchesPaperScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: builds large overlays")
	}
	rng := xrand.New(31)
	// The paper quotes h ≈ 2.5 / 3.5 / 4.0 at N = 10³/10⁴/10⁵. Testing
	// 10⁵ is too slow here; check the 10³ → 10⁴ increment ≈ +0.8 (one
	// base-16 digit).
	o1 := newOverlay(t, 1000)
	h1, err := overlay.AvgHops(o1, 1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	o2 := newOverlay(t, 10000)
	h2, err := overlay.AvgHops(o2, 1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := h2 - h1; math.Abs(d-0.83) > 0.45 {
		t.Fatalf("hop growth from 10³ to 10⁴ nodes = %v, want ≈0.83", d)
	}
}

func BenchmarkBuild1000(b *testing.B) {
	ids := makeIDs(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(ids, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPastryHops(b *testing.B) {
	// Regenerates the Pastry hop-count row feeding Table 1: reports
	// avg hops at N=1000 as a custom metric.
	o := newOverlay(b, 1000)
	rng := xrand.New(1)
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		h, err := overlay.AvgHops(o, 100, rng)
		if err != nil {
			b.Fatal(err)
		}
		sum += h
	}
	b.ReportMetric(sum/float64(b.N), "hops/lookup")
}
