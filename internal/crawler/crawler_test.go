package crawler

import (
	"fmt"
	"testing"

	"p2prank/internal/nodeid"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/webgraph"
)

func web(t testing.TB, pages int) *webgraph.Graph {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = 9
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCrawlProgresses(t *testing.T) {
	w := web(t, 2000)
	c, err := New(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Crawl(500); got != 500 {
		t.Fatalf("crawled %d, want 500", got)
	}
	if c.Crawled() != 500 || c.Done() {
		t.Fatalf("crawled=%d done=%v", c.Crawled(), c.Done())
	}
	// Crawl past the end.
	if got := c.Crawl(10000); got != 1500 {
		t.Fatalf("second crawl fetched %d, want 1500", got)
	}
	if !c.Done() {
		t.Fatal("not done after exhausting the web")
	}
	if c.Crawl(10) != 0 {
		t.Fatal("crawled pages beyond the web")
	}
}

func TestSnapshotInvariants(t *testing.T) {
	w := web(t, 3000)
	c, err := New(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	var lastInternal int64 = -1
	for !c.Done() {
		c.Crawl(700)
		snap, toWeb, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := snap.Validate(); err != nil {
			t.Fatalf("invalid snapshot: %v", err)
		}
		if snap.NumPages() != len(toWeb) || snap.NumPages() != c.Crawled() {
			t.Fatalf("snapshot pages %d, mapping %d, crawled %d",
				snap.NumPages(), len(toWeb), c.Crawled())
		}
		// d(u) is invariant: crawling cannot change a page's total
		// out-degree, only reclassify links internal/external.
		for sp, wp := range toWeb {
			if snap.OutDegree(int32(sp)) != w.OutDegree(wp) {
				t.Fatalf("page %d degree changed: %d vs %d",
					wp, snap.OutDegree(int32(sp)), w.OutDegree(wp))
			}
			if snap.URL(int32(sp)) != w.URL(wp) {
				t.Fatalf("page %d URL changed: %q vs %q",
					wp, snap.URL(int32(sp)), w.URL(wp))
			}
		}
		if snap.NumInternalLinks() < lastInternal {
			t.Fatal("internal links shrank as the crawl grew")
		}
		lastInternal = snap.NumInternalLinks()
	}
	// The final snapshot is the whole web.
	snap, _, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumPages() != w.NumPages() || snap.NumInternalLinks() != w.NumInternalLinks() {
		t.Fatalf("final snapshot %d pages / %d links, web has %d / %d",
			snap.NumPages(), snap.NumInternalLinks(), w.NumPages(), w.NumInternalLinks())
	}
	if snap.NumExternalLinks() != w.NumExternalLinks() {
		t.Fatalf("final snapshot external links %d, web %d",
			snap.NumExternalLinks(), w.NumExternalLinks())
	}
}

func TestDifferentSeedsDifferentOrder(t *testing.T) {
	w := web(t, 1500)
	c1, _ := New(w, 1)
	c2, _ := New(w, 2)
	c1.Crawl(400)
	c2.Crawl(400)
	_, to1, err := c1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, to2, err := c2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	set1 := map[int32]bool{}
	for _, p := range to1 {
		set1[p] = true
	}
	for _, p := range to2 {
		if !set1[p] {
			same = false
			break
		}
	}
	if same && len(to1) == len(to2) {
		t.Fatal("different seeds crawled the identical page set — no order dependence modeled")
	}
}

// The §4.1 determinism claim: under hash partitioning, a page that
// appears in two different crawls (different discovery orders, different
// subsets) is assigned to the same ranker both times. Under random
// partitioning it generally is not.
func TestRecrawlPartitionDeterminism(t *testing.T) {
	w := web(t, 4000)
	ids := make([]nodeid.ID, 16)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	ov, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := func(seed uint64, n int) (*webgraph.Graph, []int32) {
		c, err := New(w, seed)
		if err != nil {
			t.Fatal(err)
		}
		c.Crawl(n)
		g, toWeb, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return g, toWeb
	}
	g1, to1 := snap(1, 2500)
	g2, to2 := snap(99, 3000) // a later, larger recrawl in another order

	for _, strat := range []partition.Strategy{partition.BySite, partition.ByPage} {
		a1, err := partition.Assign(g1, ov, strat, 7)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := partition.Assign(g2, ov, strat, 8) // seed must not matter
		if err != nil {
			t.Fatal(err)
		}
		idx2 := map[int32]int32{}
		for i, wp := range to2 {
			idx2[wp] = int32(i)
		}
		for i, wp := range to1 {
			j, ok := idx2[wp]
			if !ok {
				continue
			}
			if a1.GroupOf[i] != a2.GroupOf[j] {
				t.Fatalf("%v: page %d moved ranker across recrawls (%d -> %d)",
					strat, wp, a1.GroupOf[i], a2.GroupOf[j])
			}
		}
	}
	// Random partitioning moves pages across recrawls.
	a1, err := partition.Assign(g1, ov, partition.Random, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := partition.Assign(g2, ov, partition.Random, 7)
	if err != nil {
		t.Fatal(err)
	}
	idx2 := map[int32]int32{}
	for i, wp := range to2 {
		idx2[wp] = int32(i)
	}
	moved := 0
	shared := 0
	for i, wp := range to1 {
		if j, ok := idx2[wp]; ok {
			shared++
			if a1.GroupOf[i] != a2.GroupOf[j] {
				moved++
			}
		}
	}
	if shared == 0 {
		t.Fatal("no shared pages between crawls")
	}
	if float64(moved)/float64(shared) < 0.5 {
		t.Fatalf("random partitioning moved only %d/%d shared pages", moved, shared)
	}
}

func TestCarryOver(t *testing.T) {
	prev := []int32{10, 20, 30}
	next := []int32{20, 30, 40, 10}
	co := CarryOver(prev, next)
	want := []int32{1, 2, -1, 0}
	for i := range want {
		if co[i] != want[i] {
			t.Fatalf("carry-over = %v, want %v", co, want)
		}
	}
}

func TestNewNilWeb(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Fatal("nil web accepted")
	}
}

func TestCrawlDeterministicInSeed(t *testing.T) {
	w := web(t, 1000)
	c1, _ := New(w, 42)
	c2, _ := New(w, 42)
	c1.Crawl(600)
	c2.Crawl(600)
	_, to1, err := c1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	_, to2, err := c2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(to1) != len(to2) {
		t.Fatal("same seed crawled different amounts")
	}
	for i := range to1 {
		if to1[i] != to2[i] {
			t.Fatal("same seed crawled different pages")
		}
	}
}
