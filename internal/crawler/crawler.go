// Package crawler simulates the incremental crawl that feeds a
// distributed search engine. The paper's setting assumes crawlers keep
// discovering and revisiting pages (§4.1 bases its partitioning
// argument on revisits, and §4.3 notes the link graph is dynamic in
// practice); this package produces the growing sequence of crawl
// snapshots that models it.
//
// A Crawler walks a fixed "true web" (any webgraph.Graph) in a seeded
// breadth-first order. At any point Snapshot materializes the crawled
// subset as its own open-system graph: links between crawled pages are
// internal, links to not-yet-crawled or truly external pages count as
// external — so a page's total out-degree d(u) is invariant across
// snapshots, exactly the property that keeps GroupPageRank's transition
// weights α/d(u) stable while the crawl grows.
//
// Snapshots preserve page identity: a crawled page keeps the site and
// local ordinal (hence the URL) it has in the true web, regardless of
// the order the crawler found it in. That is what makes hash-based
// partitioning deterministic across recrawls — the §4.1 claim the
// tests verify.
package crawler

import (
	"fmt"

	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// Crawler incrementally discovers the pages of a fixed web graph.
type Crawler struct {
	web     webgraph.Store
	rng     *xrand.Rand
	order   []int32 // pages in crawl order, filled as the frontier drains
	crawled map[int32]bool
	// frontier is a FIFO of discovered-but-uncrawled pages; seeds are
	// injected when it empties (disconnected webs).
	frontier []int32
	queued   map[int32]bool
	// seedPerm is the random order used to pick fresh seeds.
	seedPerm []int
	seedPos  int
}

// New returns a crawler over web whose visit order is determined by
// seed. Different seeds model different crawl runs discovering the same
// web in different orders.
func New(web webgraph.Store, seed uint64) (*Crawler, error) {
	if web == nil {
		return nil, fmt.Errorf("crawler: nil web")
	}
	rng := xrand.New(seed)
	return &Crawler{
		web:      web,
		rng:      rng,
		crawled:  make(map[int32]bool, web.NumPages()),
		queued:   make(map[int32]bool),
		seedPerm: rng.Perm(web.NumPages()),
	}, nil
}

// Crawled returns how many pages have been crawled.
func (c *Crawler) Crawled() int { return len(c.order) }

// Done reports whether every page of the web has been crawled.
func (c *Crawler) Done() bool { return len(c.order) == c.web.NumPages() }

// Crawl fetches up to n more pages (fewer if the web runs out) and
// returns how many it actually crawled.
func (c *Crawler) Crawl(n int) int {
	fetched := 0
	for fetched < n && !c.Done() {
		p, ok := c.nextPage()
		if !ok {
			break
		}
		c.crawled[p] = true
		c.order = append(c.order, p)
		fetched++
		// Discover out-links in shuffled order, modeling the crawler's
		// nondeterministic queue growth.
		out := c.web.InternalOut(p)
		perm := c.rng.Perm(len(out))
		for _, k := range perm {
			v := out[k]
			if !c.crawled[v] && !c.queued[v] {
				c.queued[v] = true
				c.frontier = append(c.frontier, v)
			}
		}
	}
	return fetched
}

// nextPage pops the frontier, injecting a fresh random seed when it is
// empty.
func (c *Crawler) nextPage() (int32, bool) {
	for len(c.frontier) > 0 {
		p := c.frontier[0]
		c.frontier = c.frontier[1:]
		delete(c.queued, p)
		if !c.crawled[p] {
			return p, true
		}
	}
	for c.seedPos < len(c.seedPerm) {
		p := int32(c.seedPerm[c.seedPos])
		c.seedPos++
		if !c.crawled[p] {
			return p, true
		}
	}
	return 0, false
}

// Snapshot materializes the crawled subset as a standalone graph, plus
// the mapping from snapshot page index to true-web page index.
// Page identity (site, local ordinal, URL) matches the true web.
func (c *Crawler) Snapshot() (*webgraph.Graph, []int32, error) {
	var b webgraph.Builder
	for s := 0; s < c.web.NumSites(); s++ {
		b.AddSite(c.web.SiteHost(int32(s)))
	}
	// Snapshot pages in true-web order so snapshots of the same crawl
	// set are identical regardless of discovery order.
	toWeb := make([]int32, 0, len(c.order))
	fromWeb := make(map[int32]int32, len(c.order))
	for p := 0; p < c.web.NumPages(); p++ {
		if c.crawled[int32(p)] {
			local := b.AddPage(c.web.SiteOf(int32(p)))
			fromWeb[int32(p)] = local
			toWeb = append(toWeb, int32(p))
		}
	}
	for _, wp := range toWeb {
		sp := fromWeb[wp]
		ext := int(c.web.ExtOut(wp)) // truly external links
		for _, v := range c.web.InternalOut(wp) {
			if dst, ok := fromWeb[v]; ok {
				if err := b.AddLink(sp, dst); err != nil {
					return nil, nil, err
				}
			} else {
				ext++ // link to a not-yet-crawled page
			}
		}
		if err := b.AddExternalLinks(sp, ext); err != nil {
			return nil, nil, err
		}
	}
	// Preserve true-web local ordinals so URLs are crawl-order
	// independent (see the package comment).
	for i, wp := range toWeb {
		if err := b.SetLocalID(int32(i), c.web.LocalID(wp)); err != nil {
			return nil, nil, err
		}
	}
	return b.Build(), toWeb, nil
}

// CarryOver maps the pages of a newer snapshot onto an older one: for
// each page of next (given by its true-web indices), the index of the
// same page in prev, or -1 if prev had not crawled it yet. This is the
// warm-start mapping engine.RunIncremental consumes.
func CarryOver(prevToWeb, nextToWeb []int32) []int32 {
	prevIdx := make(map[int32]int32, len(prevToWeb))
	for i, wp := range prevToWeb {
		prevIdx[wp] = int32(i)
	}
	out := make([]int32, len(nextToWeb))
	for i, wp := range nextToWeb {
		if j, ok := prevIdx[wp]; ok {
			out[i] = j
		} else {
			out[i] = -1
		}
	}
	return out
}
