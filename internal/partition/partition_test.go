package partition

import (
	"fmt"
	"testing"

	"p2prank/internal/nodeid"
	"p2prank/internal/pastry"
	"p2prank/internal/webgraph"
)

func makeOverlay(t testing.TB, k int) *pastry.Overlay {
	t.Helper()
	ids := make([]nodeid.ID, k)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("ranker-%d", i))
	}
	o, err := pastry.New(ids, pastry.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func makeGraph(t testing.TB, pages int) *webgraph.Graph {
	t.Helper()
	g, err := webgraph.Generate(webgraph.DefaultGenConfig(pages))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkAssignment(t *testing.T, g *webgraph.Graph, a *Assignment) {
	t.Helper()
	if len(a.GroupOf) != g.NumPages() || len(a.LocalIdx) != g.NumPages() {
		t.Fatal("assignment length mismatch")
	}
	counted := 0
	for grp, ps := range a.Pages {
		for li, p := range ps {
			if a.GroupOf[p] != int32(grp) {
				t.Fatalf("page %d in group %d's list but GroupOf says %d", p, grp, a.GroupOf[p])
			}
			if a.LocalIdx[p] != int32(li) {
				t.Fatalf("page %d local index %d, list position %d", p, a.LocalIdx[p], li)
			}
			counted++
		}
	}
	if counted != g.NumPages() {
		t.Fatalf("assignment covers %d of %d pages", counted, g.NumPages())
	}
}

func TestAssignBySiteKeepsSitesTogether(t *testing.T) {
	g := makeGraph(t, 5000)
	ov := makeOverlay(t, 16)
	a, err := Assign(g, ov, BySite, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, g, a)
	for p := 0; p < g.NumPages(); p++ {
		// All pages of a site share a group.
		first := webgraph.PagesOfSite(g, g.SiteOf(int32(p)))[0]
		if a.GroupOf[p] != a.GroupOf[first] {
			t.Fatalf("site %d split across groups", g.SiteOf(int32(p)))
		}
	}
}

func TestAssignByPageCoversAll(t *testing.T) {
	g := makeGraph(t, 3000)
	ov := makeOverlay(t, 8)
	a, err := Assign(g, ov, ByPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, g, a)
	// With 3000 pages over 8 rankers, every ranker should get some.
	for grp, ps := range a.Pages {
		if len(ps) == 0 {
			t.Fatalf("group %d empty under by-page hashing", grp)
		}
	}
}

func TestAssignRandomDeterministicInSeed(t *testing.T) {
	g := makeGraph(t, 2000)
	ov := makeOverlay(t, 8)
	a1, err := Assign(g, ov, Random, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Assign(g, ov, Random, 42)
	if err != nil {
		t.Fatal(err)
	}
	for p := range a1.GroupOf {
		if a1.GroupOf[p] != a2.GroupOf[p] {
			t.Fatal("same seed, different random assignment")
		}
	}
	a3, err := Assign(g, ov, Random, 43)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for p := range a1.GroupOf {
		if a1.GroupOf[p] != a3.GroupOf[p] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds, identical assignment")
	}
	checkAssignment(t, g, a1)
}

func TestHashStrategiesIgnoreSeed(t *testing.T) {
	g := makeGraph(t, 1000)
	ov := makeOverlay(t, 8)
	for _, strat := range []Strategy{BySite, ByPage} {
		a1, err := Assign(g, ov, strat, 1)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Assign(g, ov, strat, 999)
		if err != nil {
			t.Fatal(err)
		}
		for p := range a1.GroupOf {
			if a1.GroupOf[p] != a2.GroupOf[p] {
				t.Fatalf("%v: seed changed a hash assignment", strat)
			}
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	g := makeGraph(t, 100)
	ov := makeOverlay(t, 4)
	if _, err := Assign(g, ov, Strategy(99), 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestAssignSkipsDeadRankers(t *testing.T) {
	g := makeGraph(t, 2000)
	ov := makeOverlay(t, 10)
	if err := ov.Fail(3); err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{BySite, ByPage, Random} {
		a, err := Assign(g, ov, strat, 7)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for p, grp := range a.GroupOf {
			if grp == 3 {
				t.Fatalf("%v: page %d assigned to dead ranker", strat, p)
			}
		}
	}
}

// The §4.1 claim: by-site partitioning cuts far fewer links than
// by-page or random, because ~90% of links are intra-site.
func TestBySiteCutsFewestLinks(t *testing.T) {
	g := makeGraph(t, 20000)
	ov := makeOverlay(t, 32)
	cuts := map[Strategy]float64{}
	for _, strat := range []Strategy{BySite, ByPage, Random} {
		a, err := Assign(g, ov, strat, 5)
		if err != nil {
			t.Fatal(err)
		}
		cuts[strat] = Cut(g, a).CutFrac()
	}
	if cuts[BySite] >= cuts[ByPage]/3 {
		t.Fatalf("by-site cut %.3f not well below by-page cut %.3f", cuts[BySite], cuts[ByPage])
	}
	if cuts[BySite] >= cuts[Random]/3 {
		t.Fatalf("by-site cut %.3f not well below random cut %.3f", cuts[BySite], cuts[Random])
	}
	// By-site cut is bounded by the inter-site link fraction (~10%).
	stats := webgraph.ComputeStats(g)
	interSite := 1 - stats.IntraSiteFrac()
	if cuts[BySite] > interSite+1e-9 {
		t.Fatalf("by-site cut %.3f exceeds inter-site fraction %.3f", cuts[BySite], interSite)
	}
}

func TestCutStatsAccounting(t *testing.T) {
	g := makeGraph(t, 5000)
	ov := makeOverlay(t, 8)
	a, err := Assign(g, ov, ByPage, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := Cut(g, a)
	if c.IntraGroupLinks+c.InterGroupLinks != g.NumInternalLinks() {
		t.Fatalf("cut stats count %d links, graph has %d",
			c.IntraGroupLinks+c.InterGroupLinks, g.NumInternalLinks())
	}
	if c.MaxPages < c.MinPages {
		t.Fatalf("MaxPages %d < MinPages %d", c.MaxPages, c.MinPages)
	}
	if c.CutFrac() < 0 || c.CutFrac() > 1 {
		t.Fatalf("cut frac %v", c.CutFrac())
	}
}

func TestStrategyString(t *testing.T) {
	if BySite.String() != "by-site" || ByPage.String() != "by-page" || Random.String() != "random" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(42).String() == "" {
		t.Fatal("unknown strategy has empty name")
	}
}

func BenchmarkAssignBySite(b *testing.B) {
	g := makeGraph(b, 50000)
	ov := makeOverlay(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assign(g, ov, BySite, 0); err != nil {
			b.Fatal(err)
		}
	}
}
