// Package partition divides crawled pages among the K page rankers,
// implementing the three strategies of §4.1:
//
//   - BySite: hash the page's site hostname onto the overlay keyspace and
//     assign the page to the ranker owning that key. Deterministic under
//     recrawls, and because ~90% of links are intra-site it keeps most
//     rank flow local — the strategy the paper recommends.
//   - ByPage: hash the page URL. Deterministic but splits sites, so far
//     more rank crosses ranker boundaries.
//   - Random: uniform random assignment. The paper rejects it because a
//     recrawled page can land on a different ranker; it is implemented as
//     the baseline its argument is measured against.
package partition

import (
	"fmt"

	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// Strategy selects how pages map onto rankers.
type Strategy int

const (
	// BySite hashes the site hostname (recommended, §4.1).
	BySite Strategy = iota
	// ByPage hashes the page URL.
	ByPage
	// Random assigns uniformly at random (the rejected baseline).
	Random
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case BySite:
		return "by-site"
	case ByPage:
		return "by-page"
	case Random:
		return "random"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Assignment is the result of partitioning: every page mapped to a
// ranker (its page group) with a dense local index inside that group.
type Assignment struct {
	// K is the number of rankers (groups).
	K int
	// GroupOf maps a page to its ranker index.
	GroupOf []int32
	// LocalIdx maps a page to its index within its group's page list.
	LocalIdx []int32
	// Pages lists each group's pages in ascending global order.
	Pages [][]int32
}

// Assign partitions the pages of g over the live rankers of the overlay
// ov using the given strategy. seed is used only by Random. The hashing
// strategies place a page on the overlay owner of its hash key, exactly
// how a DHT-based search engine would resolve storage responsibility.
func Assign(g webgraph.Store, ov overlay.Network, strat Strategy, seed uint64) (*Assignment, error) {
	k := ov.NumNodes()
	if k == 0 {
		return nil, fmt.Errorf("partition: overlay has no nodes")
	}
	a := &Assignment{
		K:        k,
		GroupOf:  make([]int32, g.NumPages()),
		LocalIdx: make([]int32, g.NumPages()),
		Pages:    make([][]int32, k),
	}
	switch strat {
	case BySite:
		// All pages of a site share a key: hash once per site.
		siteOwner := make([]int32, g.NumSites())
		for s := range siteOwner {
			siteOwner[s] = int32(ov.Owner(nodeid.Hash(g.SiteHost(int32(s)))))
		}
		for p := range a.GroupOf {
			a.GroupOf[p] = siteOwner[g.SiteOf(int32(p))]
		}
	case ByPage:
		for p := range a.GroupOf {
			a.GroupOf[p] = int32(ov.Owner(nodeid.Hash(g.URL(int32(p)))))
		}
	case Random:
		rng := xrand.New(seed)
		live := make([]int32, 0, k)
		for i := 0; i < k; i++ {
			if ov.Alive(i) {
				live = append(live, int32(i))
			}
		}
		if len(live) == 0 {
			return nil, fmt.Errorf("partition: no live rankers")
		}
		for p := range a.GroupOf {
			a.GroupOf[p] = live[rng.Intn(len(live))]
		}
	default:
		return nil, fmt.Errorf("partition: unknown strategy %d", int(strat))
	}
	for p, grp := range a.GroupOf {
		if !ov.Alive(int(grp)) {
			return nil, fmt.Errorf("partition: page %d assigned to dead ranker %d", p, grp)
		}
		a.LocalIdx[p] = int32(len(a.Pages[grp]))
		a.Pages[grp] = append(a.Pages[grp], int32(p))
	}
	return a, nil
}

// CutStats quantifies a partition: how many internal links cross group
// boundaries (each crossing link forces rank transmission between
// rankers) and how balanced the groups are.
type CutStats struct {
	IntraGroupLinks int64
	InterGroupLinks int64
	MaxPages        int
	MinPages        int
	EmptyGroups     int
}

// CutFrac returns the fraction of internal links that cross group
// boundaries.
func (c CutStats) CutFrac() float64 {
	total := c.IntraGroupLinks + c.InterGroupLinks
	if total == 0 {
		return 0
	}
	return float64(c.InterGroupLinks) / float64(total)
}

// Cut measures the partition against the graph's internal links.
func Cut(g webgraph.Store, a *Assignment) CutStats {
	var c CutStats
	for p := 0; p < g.NumPages(); p++ {
		u := int32(p)
		for _, v := range g.InternalOut(u) {
			if a.GroupOf[u] == a.GroupOf[v] {
				c.IntraGroupLinks++
			} else {
				c.InterGroupLinks++
			}
		}
	}
	c.MinPages = g.NumPages() + 1
	for _, ps := range a.Pages {
		if len(ps) > c.MaxPages {
			c.MaxPages = len(ps)
		}
		if len(ps) < c.MinPages {
			c.MinPages = len(ps)
		}
		if len(ps) == 0 {
			c.EmptyGroups++
		}
	}
	if len(a.Pages) == 0 {
		c.MinPages = 0
	}
	return c
}
