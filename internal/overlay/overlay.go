// Package overlay defines the surface the distributed page-ranking layer
// consumes from a structured P2P network, and helpers shared by the
// Pastry and Chord implementations.
//
// The paper uses the overlay for exactly three things: mapping a key
// (page-group hash) to the responsible page ranker, looking up the
// address of a destination ranker (direct transmission, Figure 3B), and
// walking neighbor links hop by hop (indirect transmission, Figures 4–5).
// Network captures that surface so DPR code is overlay-agnostic.
package overlay

import (
	"fmt"

	"p2prank/internal/nodeid"
	"p2prank/internal/xrand"
)

// Network is a structured overlay over a set of member nodes, addressed
// by dense indices 0..NumNodes()-1. Implementations must be
// deterministic: the same membership yields the same routes.
type Network interface {
	// NumNodes returns the number of member nodes, dead or alive.
	NumNodes() int
	// NodeID returns the ring identifier of node i.
	NodeID(i int) nodeid.ID
	// Alive reports whether node i is live.
	Alive(i int) bool
	// Owner returns the live node responsible for key.
	Owner(key nodeid.ID) int
	// NextHop returns the next node on the route from node i toward
	// the owner of key. It returns i itself when i is the owner.
	NextHop(i int, key nodeid.ID) int
	// Neighbors returns the overlay links of node i — the nodes it can
	// reach in one hop (leaf set and routing table for Pastry,
	// successors and fingers for Chord). The result is sorted and
	// contains no duplicates, dead nodes, or i itself.
	Neighbors(i int) []int
}

// Route returns the full node path from node i to the owner of key,
// starting with i and ending with the owner. It fails if the overlay
// routes in a cycle or takes implausibly many hops, which would indicate
// a broken routing table.
func Route(n Network, from int, key nodeid.ID) ([]int, error) {
	path := []int{from}
	cur := from
	maxHops := 4 * 64 // generous: honest overlays need O(log N)
	for hop := 0; ; hop++ {
		next := n.NextHop(cur, key)
		if next == cur {
			return path, nil
		}
		if hop >= maxHops {
			return nil, fmt.Errorf("overlay: route from %d to %s exceeded %d hops", from, key, maxHops)
		}
		path = append(path, next)
		cur = next
	}
}

// Hops returns the number of overlay hops from node i to the owner of
// key (0 when i is the owner).
func Hops(n Network, from int, key nodeid.ID) (int, error) {
	p, err := Route(n, from, key)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

// AvgHops estimates the mean lookup hop count by routing `samples`
// random keys from random live source nodes. This is the h that enters
// the paper's formulas 4.1–4.4 and Table 1.
func AvgHops(n Network, samples int, rng *xrand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("overlay: AvgHops needs positive samples, got %d", samples)
	}
	live := make([]int, 0, n.NumNodes())
	for i := 0; i < n.NumNodes(); i++ {
		if n.Alive(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return 0, fmt.Errorf("overlay: no live nodes")
	}
	total := 0
	for s := 0; s < samples; s++ {
		from := live[rng.Intn(len(live))]
		key := nodeid.ID{Hi: rng.Uint64(), Lo: rng.Uint64()}
		h, err := Hops(n, from, key)
		if err != nil {
			return 0, err
		}
		total += h
	}
	return float64(total) / float64(samples), nil
}

// CheckConvergent verifies that routing from every live node reaches the
// owner for each of the given keys — the integration-level sanity check
// used in tests.
func CheckConvergent(n Network, keys []nodeid.ID) error {
	for _, key := range keys {
		want := n.Owner(key)
		for i := 0; i < n.NumNodes(); i++ {
			if !n.Alive(i) {
				continue
			}
			p, err := Route(n, i, key)
			if err != nil {
				return err
			}
			if got := p[len(p)-1]; got != want {
				return fmt.Errorf("overlay: route from %d for key %s ended at %d, owner is %d",
					i, key, got, want)
			}
		}
	}
	return nil
}
