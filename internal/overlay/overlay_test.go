package overlay

import (
	"testing"

	"p2prank/internal/nodeid"
	"p2prank/internal/xrand"
)

// lineNet is a toy overlay: nodes 0..n-1 in a line, key owned by node
// (key.Lo mod n), routed one step at a time toward the owner. It
// exercises the package helpers without pulling in a real overlay.
type lineNet struct {
	n    int
	dead map[int]bool
}

func (l *lineNet) NumNodes() int          { return l.n }
func (l *lineNet) NodeID(i int) nodeid.ID { return nodeid.ID{Lo: uint64(i)} }
func (l *lineNet) Alive(i int) bool       { return !l.dead[i] }
func (l *lineNet) Owner(k nodeid.ID) int  { return int(k.Lo % uint64(l.n)) }
func (l *lineNet) Neighbors(i int) []int {
	var ns []int
	if i > 0 {
		ns = append(ns, i-1)
	}
	if i < l.n-1 {
		ns = append(ns, i+1)
	}
	return ns
}
func (l *lineNet) NextHop(i int, k nodeid.ID) int {
	own := l.Owner(k)
	switch {
	case own == i:
		return i
	case own > i:
		return i + 1
	default:
		return i - 1
	}
}

// loopNet always forwards to the other node, never terminating.
type loopNet struct{ lineNet }

func (l *loopNet) NextHop(i int, k nodeid.ID) int { return (i + 1) % l.n }

func TestRoutePath(t *testing.T) {
	l := &lineNet{n: 10}
	p, err := Route(l, 2, nodeid.ID{Lo: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 4, 5, 6, 7}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	l := &lineNet{n: 5}
	p, err := Route(l, 3, nodeid.ID{Lo: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0] != 3 {
		t.Fatalf("self-route path = %v", p)
	}
	h, err := Hops(l, 3, nodeid.ID{Lo: 3})
	if err != nil || h != 0 {
		t.Fatalf("self hops = %d, %v", h, err)
	}
}

func TestRouteDetectsLoops(t *testing.T) {
	l := &loopNet{lineNet{n: 3}}
	if _, err := Route(l, 0, nodeid.ID{Lo: 1}); err == nil {
		t.Fatal("cyclic route not detected")
	}
}

func TestHops(t *testing.T) {
	l := &lineNet{n: 10}
	h, err := Hops(l, 1, nodeid.ID{Lo: 8})
	if err != nil {
		t.Fatal(err)
	}
	if h != 7 {
		t.Fatalf("hops = %d, want 7", h)
	}
}

func TestAvgHopsValidation(t *testing.T) {
	l := &lineNet{n: 5}
	if _, err := AvgHops(l, 0, xrand.New(1)); err == nil {
		t.Error("zero samples accepted")
	}
	dead := &lineNet{n: 2, dead: map[int]bool{0: true, 1: true}}
	if _, err := AvgHops(dead, 10, xrand.New(1)); err == nil {
		t.Error("all-dead overlay accepted")
	}
}

func TestAvgHopsRange(t *testing.T) {
	l := &lineNet{n: 10}
	h, err := AvgHops(l, 3000, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Uniform src and dst on a 10-node line: mean distance = 3.3.
	if h < 2.5 || h > 4.1 {
		t.Fatalf("avg hops = %v, want ≈3.3", h)
	}
}

func TestCheckConvergent(t *testing.T) {
	if err := CheckConvergent(&lineNet{n: 6}, []nodeid.ID{{Lo: 2}, {Lo: 5}}); err != nil {
		t.Fatalf("line net flagged: %v", err)
	}
	if err := CheckConvergent(&loopNet{lineNet{n: 3}}, []nodeid.ID{{Lo: 1}}); err == nil {
		t.Fatal("loop net passed convergence check")
	}
}
