package telemetry

import "fmt"

// DefaultBytesPerLink mirrors the paper's l = 100 bytes per link record
// (transport.DefaultSizeModel); collectors use it to attribute payload
// bytes to emitted chunks without depending on the transport package.
const DefaultBytesPerLink = 100

// simSlot is one ranker's private accumulator. Each ranker's hooks
// write only its own slot, so concurrent compute phases never contend
// and aggregation order cannot perturb the totals.
type simSlot struct {
	rounds   int64
	inner    int64
	chunks   int64
	entries  int64
	links    int64
	hops     int64
	faults   [numFaultKinds]int64
	retries  int64
	acks     int64
	recovers int64
	residual float64
	firstT   float64
	lastT    float64
	seen     bool
}

// SimCollector is the deterministic in-sim Observer: per-ranker slot
// accumulators (no locks, no order-dependent float math) with virtual
// timestamps from the simulator's clock. Attach one via
// engine.Config.Observer; engine.Run injects the clock and the overlay
// hop function and copies Summary() into Result.Telemetry. Attaching a
// SimCollector never perturbs the schedule — runs stay byte-identical
// to observer-free runs (see the engine determinism tests).
type SimCollector struct {
	clock        Clock
	hops         func(src, dst int) int
	bytesPerLink int64
	slots        []simSlot
	milestones   []Milestone
}

// NewSimCollector builds a collector for k rankers.
func NewSimCollector(k int) *SimCollector {
	return &SimCollector{
		bytesPerLink: DefaultBytesPerLink,
		slots:        make([]simSlot, k),
	}
}

// SetClock injects the runtime's clock (ClockSetter).
func (c *SimCollector) SetClock(clk Clock) { c.clock = clk }

// SetHops injects the runtime's overlay hop function (HopsSetter).
func (c *SimCollector) SetHops(h func(src, dst int) int) { c.hops = h }

// SetBytesPerLink overrides the per-link payload size used for byte
// attribution (default DefaultBytesPerLink).
func (c *SimCollector) SetBytesPerLink(l int64) { c.bytesPerLink = l }

func (c *SimCollector) stamp(s *simSlot) {
	if c.clock == nil {
		return
	}
	t := c.clock.Now()
	if !s.seen {
		s.firstT = t
		s.seen = true
	}
	s.lastT = t
}

// ComputeStart implements Observer.
func (c *SimCollector) ComputeStart(ranker int, round int64) {
	c.stamp(&c.slots[ranker])
}

// ComputeEnd implements Observer.
func (c *SimCollector) ComputeEnd(ranker int, round int64, s ComputeStats) {
	sl := &c.slots[ranker]
	sl.rounds = round
	sl.inner += int64(s.InnerIterations)
	sl.residual = s.Residual
	c.stamp(sl)
}

// ChunkSent implements Observer.
func (c *SimCollector) ChunkSent(ranker int, ch ChunkStats) {
	sl := &c.slots[ranker]
	sl.chunks++
	sl.entries += int64(ch.Entries)
	sl.links += ch.Links
	if c.hops != nil {
		sl.hops += int64(c.hops(ranker, ch.Dst))
	} else {
		sl.hops++
	}
	c.stamp(sl)
}

// FaultInjected implements Observer.
func (c *SimCollector) FaultInjected(ranker int, kind FaultKind) {
	sl := &c.slots[ranker]
	if int(kind) < len(sl.faults) {
		sl.faults[kind]++
	}
	c.stamp(sl)
}

// ChunkRetried implements Observer. In-sim, retransmission timers fire
// as serial events, so the slot write is race-free like every other
// hook.
func (c *SimCollector) ChunkRetried(ranker int, dst int, attempt int) {
	sl := &c.slots[ranker]
	sl.retries++
	c.stamp(sl)
}

// AckReceived implements Observer.
func (c *SimCollector) AckReceived(ranker int, dst int, round int64) {
	sl := &c.slots[ranker]
	sl.acks++
	c.stamp(sl)
}

// Recovered implements Observer.
func (c *SimCollector) Recovered(ranker int, round int64) {
	sl := &c.slots[ranker]
	sl.recovers++
	c.stamp(sl)
}

// Milestone implements Observer. Milestones fire from the serial
// sampling context, so a plain append is safe.
func (c *SimCollector) Milestone(m Milestone) {
	c.milestones = append(c.milestones, m)
}

// RankerTotals is one ranker's share of a Summary.
type RankerTotals struct {
	// Rounds is the ranker's committed main-loop count.
	Rounds int64
	// InnerIterations is the ranker's total inner solver steps.
	InnerIterations int64
	// Chunks, Entries, Links count the ranker's emitted score traffic.
	Chunks, Entries, Links int64
	// LastResidual is the inner residual of the last compute phase.
	LastResidual float64
}

// Summary is the deterministic aggregate of one run's telemetry.
type Summary struct {
	// Rankers is the collector's slot count (the run's K).
	Rankers int
	// Rounds is the total committed main-loop count across rankers.
	Rounds int64
	// InnerIterations is the total inner solver step count.
	InnerIterations int64
	// Chunks, Entries, Links count all emitted score chunks at the
	// dprcore Sender seam (before transport framing).
	Chunks, Entries, Links int64
	// PayloadBytes is Links × the per-link size model — the paper's
	// l·W data term measured at the seam.
	PayloadBytes int64
	// ChunkHops is the total overlay hop count attributed to emitted
	// chunks (1 per chunk when no hop function was injected).
	ChunkHops int64
	// Dropped, Delayed, Duplicated count injected transport faults.
	Dropped, Delayed, Duplicated int64
	// Retries, Acks, Recoveries count the reliable-delivery seam's
	// retransmissions, clearing acknowledgements, and checkpoint
	// restores (all zero when reliability/churn are disabled).
	Retries, Acks, Recoveries int64
	// FirstEvent and LastEvent bound the observed activity in the
	// runtime's clock (virtual time in-sim); zero without a clock.
	FirstEvent, LastEvent float64
	// Milestones are the convergence checkpoints in emission order.
	Milestones []Milestone
	// PerRanker holds each ranker's totals, indexed by group.
	PerRanker []RankerTotals
}

// MeanRounds returns the mean committed loop count per ranker.
func (s Summary) MeanRounds() float64 {
	if s.Rankers == 0 {
		return 0
	}
	return float64(s.Rounds) / float64(s.Rankers)
}

// MeanChunkHops returns the mean overlay hops per emitted chunk.
func (s Summary) MeanChunkHops() float64 {
	if s.Chunks == 0 {
		return 0
	}
	return float64(s.ChunkHops) / float64(s.Chunks)
}

// String renders the headline totals.
func (s Summary) String() string {
	return fmt.Sprintf("telemetry: %d rankers, %d rounds, %d chunks (%d links, %d B payload, %.2f hops/chunk), faults %d/%d/%d",
		s.Rankers, s.Rounds, s.Chunks, s.Links, s.PayloadBytes, s.MeanChunkHops(), s.Dropped, s.Delayed, s.Duplicated)
}

// Summary folds the slots in ranker order. Call it after the run; the
// simulator's final barrier orders every slot write before this read.
func (c *SimCollector) Summary() Summary {
	s := Summary{Rankers: len(c.slots)}
	s.Milestones = append(s.Milestones, c.milestones...)
	s.PerRanker = make([]RankerTotals, len(c.slots))
	for i := range c.slots {
		sl := &c.slots[i]
		s.PerRanker[i] = RankerTotals{
			Rounds:          sl.rounds,
			InnerIterations: sl.inner,
			Chunks:          sl.chunks,
			Entries:         sl.entries,
			Links:           sl.links,
			LastResidual:    sl.residual,
		}
		s.Rounds += sl.rounds
		s.InnerIterations += sl.inner
		s.Chunks += sl.chunks
		s.Entries += sl.entries
		s.Links += sl.links
		s.ChunkHops += sl.hops
		s.Dropped += sl.faults[FaultDrop]
		s.Delayed += sl.faults[FaultDelay]
		s.Duplicated += sl.faults[FaultDup]
		s.Retries += sl.retries
		s.Acks += sl.acks
		s.Recoveries += sl.recovers
		if sl.seen {
			if s.FirstEvent == 0 || sl.firstT < s.FirstEvent {
				s.FirstEvent = sl.firstT
			}
			if sl.lastT > s.LastEvent {
				s.LastEvent = sl.lastT
			}
		}
	}
	s.PayloadBytes = s.Links * c.bytesPerLink
	return s
}
