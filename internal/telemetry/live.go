package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// innerIterBuckets are the histogram boundaries for per-compute-phase
// inner solver steps (DPR1's inner loop length; DPR2 always lands in
// the first bucket).
var innerIterBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64, 128}

// queryLatencyBuckets are the histogram boundaries (seconds) for
// serving-tier query latency: 50µs up to 100ms.
var queryLatencyBuckets = [...]float64{
	50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
}

// TraceEvent is one entry of the live collector's per-round JSONL
// trace. T is the runtime clock minus the collector's first-event time
// (nanoseconds live); zero-valued fields are omitted from the JSON.
type TraceEvent struct {
	T      float64 `json:"t"`
	Ranker int     `json:"ranker"`
	Event  string  `json:"event"`
	Round  int64   `json:"round,omitempty"`
	Inner  int     `json:"inner,omitempty"`
	Resid  float64 `json:"residual,omitempty"`
	Dst    int     `json:"dst,omitempty"`
	Links  int64   `json:"links,omitempty"`
	Kind   string  `json:"kind,omitempty"`
	RelErr float64 `json:"rel_err,omitempty"`
}

type liveSlot struct {
	rounds   int64
	inner    int64
	chunks   int64
	entries  int64
	links    int64
	hops     int64
	retries  int64
	acks     int64
	recovers int64
	residual float64
}

// LiveCollector is the Observer for real network runs: mutex-guarded
// counters, gauges, and histograms exported in Prometheus text format
// (WriteMetrics), plus a fixed-size ring of per-round trace events
// dumped as JSONL (DumpTrace — dprnode wires it to SIGQUIT). One
// collector serves a whole in-process cluster; hooks arrive from many
// peer goroutines.
type LiveCollector struct {
	mu           sync.Mutex
	clock        Clock
	hops         func(src, dst int) int
	bytesPerLink int64
	slots        []liveSlot

	faults      [numFaultKinds]int64
	milestones  int64
	lastRelErr  float64
	converged   bool
	histoBucket [len(innerIterBuckets) + 1]int64
	histoSum    int64
	histoCount  int64

	queryBucket   [len(queryLatencyBuckets) + 1]int64
	querySum      float64
	queryCount    int64
	stalenessLast int64
	stalenessMax  int64
	snapPublishes int64
	snapVersion   int64

	ring     []TraceEvent
	ringNext int
	ringLen  int
	epoch    float64
	started  bool
}

// DefaultTraceCap is the default trace ring capacity.
const DefaultTraceCap = 4096

// NewLiveCollector builds a collector for k rankers with the default
// trace capacity.
func NewLiveCollector(k int) *LiveCollector {
	return &LiveCollector{
		bytesPerLink: DefaultBytesPerLink,
		slots:        make([]liveSlot, k),
		ring:         make([]TraceEvent, DefaultTraceCap),
	}
}

// SetClock injects the runtime's clock (ClockSetter). Peers of one
// cluster all inject the same wall-clock adapter; repeat calls are
// harmless.
func (c *LiveCollector) SetClock(clk Clock) {
	c.mu.Lock()
	c.clock = clk
	c.mu.Unlock()
}

// SetHops injects the runtime's overlay hop function (HopsSetter).
func (c *LiveCollector) SetHops(h func(src, dst int) int) {
	c.mu.Lock()
	c.hops = h
	c.mu.Unlock()
}

// SetTraceCap resizes the trace ring (discarding recorded events).
func (c *LiveCollector) SetTraceCap(n int) {
	if n <= 0 {
		n = 1
	}
	c.mu.Lock()
	c.ring = make([]TraceEvent, n)
	c.ringNext, c.ringLen = 0, 0
	c.mu.Unlock()
}

// now returns the trace timestamp: runtime units since the collector's
// first event. Callers hold mu.
func (c *LiveCollector) now() float64 {
	if c.clock == nil {
		return 0
	}
	t := c.clock.Now()
	if !c.started {
		c.epoch = t
		c.started = true
	}
	return t - c.epoch
}

// trace appends one event to the ring, overwriting the oldest. Callers
// hold mu.
func (c *LiveCollector) trace(ev TraceEvent) {
	c.ring[c.ringNext] = ev
	c.ringNext = (c.ringNext + 1) % len(c.ring)
	if c.ringLen < len(c.ring) {
		c.ringLen++
	}
}

// ComputeStart implements Observer.
func (c *LiveCollector) ComputeStart(ranker int, round int64) {}

// ComputeEnd implements Observer.
func (c *LiveCollector) ComputeEnd(ranker int, round int64, s ComputeStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sl := &c.slots[ranker]
	sl.rounds = round
	sl.inner += int64(s.InnerIterations)
	sl.residual = s.Residual
	for i, b := range innerIterBuckets {
		if int64(s.InnerIterations) <= b {
			c.histoBucket[i]++
			break
		}
		if i == len(innerIterBuckets)-1 {
			c.histoBucket[len(innerIterBuckets)]++ // +Inf
		}
	}
	c.histoSum += int64(s.InnerIterations)
	c.histoCount++
	c.trace(TraceEvent{T: c.now(), Ranker: ranker, Event: "compute",
		Round: round, Inner: s.InnerIterations, Resid: s.Residual})
}

// ChunkSent implements Observer.
func (c *LiveCollector) ChunkSent(ranker int, ch ChunkStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sl := &c.slots[ranker]
	sl.chunks++
	sl.entries += int64(ch.Entries)
	sl.links += ch.Links
	if c.hops != nil {
		sl.hops += int64(c.hops(ranker, ch.Dst))
	} else {
		sl.hops++
	}
	c.trace(TraceEvent{T: c.now(), Ranker: ranker, Event: "chunk",
		Round: ch.Round, Dst: ch.Dst, Links: ch.Links})
}

// FaultInjected implements Observer.
func (c *LiveCollector) FaultInjected(ranker int, kind FaultKind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(kind) < len(c.faults) {
		c.faults[kind]++
	}
	c.trace(TraceEvent{T: c.now(), Ranker: ranker, Event: "fault", Kind: kind.String()})
}

// ChunkRetried implements Observer. Retries fire from retransmission
// timer goroutines; the collector mutex covers them like every hook.
func (c *LiveCollector) ChunkRetried(ranker int, dst int, attempt int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots[ranker].retries++
	c.trace(TraceEvent{T: c.now(), Ranker: ranker, Event: "retry", Dst: dst, Inner: attempt})
}

// AckReceived implements Observer.
func (c *LiveCollector) AckReceived(ranker int, dst int, round int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots[ranker].acks++
	c.trace(TraceEvent{T: c.now(), Ranker: ranker, Event: "ack", Dst: dst, Round: round})
}

// Recovered implements Observer.
func (c *LiveCollector) Recovered(ranker int, round int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.slots[ranker].recovers++
	c.trace(TraceEvent{T: c.now(), Ranker: ranker, Event: "recover", Round: round})
}

// Milestone implements Observer.
func (c *LiveCollector) Milestone(m Milestone) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.milestones++
	c.lastRelErr = m.RelErr
	if m.Converged {
		c.converged = true
	}
	c.trace(TraceEvent{T: c.now(), Ranker: -1, Event: "milestone", RelErr: m.RelErr})
}

// QueryServed records one serving-tier query: wall-clock latency in
// seconds plus the staleness (rounds behind) of the served ranks. It
// implements the serving layer's Telemetry sink.
func (c *LiveCollector) QueryServed(latencySeconds float64, staleness int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	placed := false
	for i, le := range queryLatencyBuckets {
		if latencySeconds <= le {
			c.queryBucket[i]++
			placed = true
			break
		}
	}
	if !placed {
		c.queryBucket[len(queryLatencyBuckets)]++ // +Inf
	}
	c.querySum += latencySeconds
	c.queryCount++
	c.stalenessLast = staleness
	if staleness > c.stalenessMax {
		c.stalenessMax = staleness
	}
}

// SnapshotPublished records a rank-snapshot swap in the serving store.
func (c *LiveCollector) SnapshotPublished(shard int, version, round int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snapPublishes++
	if version > c.snapVersion {
		c.snapVersion = version
	}
	c.trace(TraceEvent{T: c.now(), Ranker: shard, Event: "publish", Round: round})
}

// QueriesServed returns the query count — the serve smoke tests' "load
// generator ran" probe, without a scrape.
func (c *LiveCollector) QueriesServed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queryCount
}

// Rounds returns the total committed loop count across rankers — the
// smoke tests' "round counters advance" probe, without a scrape.
func (c *LiveCollector) Rounds() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for i := range c.slots {
		sum += c.slots[i].rounds
	}
	return sum
}

// DumpTrace writes the ring's events, oldest first, one JSON object per
// line.
func (c *LiveCollector) DumpTrace(w io.Writer) error {
	c.mu.Lock()
	events := make([]TraceEvent, 0, c.ringLen)
	start := c.ringNext - c.ringLen
	for i := 0; i < c.ringLen; i++ {
		events = append(events, c.ring[(start+i+len(c.ring))%len(c.ring)])
	}
	c.mu.Unlock()
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetrics renders the collector in Prometheus text exposition
// format (version 0.0.4): per-ranker counters for rounds, inner
// iterations, chunks, links, payload bytes, and hops; fault counters by
// kind; residual and relative-error gauges; and the inner-iteration
// histogram.
func (c *LiveCollector) WriteMetrics(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b []byte
	counter := func(name, help string, get func(*liveSlot) int64) {
		b = append(b, "# HELP p2prank_"+name+" "+help+"\n# TYPE p2prank_"+name+" counter\n"...)
		for i := range c.slots {
			b = append(b, "p2prank_"+name+"{ranker=\""...)
			b = strconv.AppendInt(b, int64(i), 10)
			b = append(b, "\"} "...)
			b = strconv.AppendInt(b, get(&c.slots[i]), 10)
			b = append(b, '\n')
		}
	}
	counter("rounds_total", "Main-loop iterations committed.", func(s *liveSlot) int64 { return s.rounds })
	counter("inner_iterations_total", "Inner solver steps executed.", func(s *liveSlot) int64 { return s.inner })
	counter("chunks_sent_total", "Score chunks emitted at the Sender seam.", func(s *liveSlot) int64 { return s.chunks })
	counter("links_sent_total", "Inter-group link records emitted.", func(s *liveSlot) int64 { return s.links })
	counter("chunk_bytes_total", "Payload bytes emitted (links x size model).", func(s *liveSlot) int64 { return s.links * c.bytesPerLink })
	counter("chunk_hops_total", "Overlay hops attributed to emitted chunks.", func(s *liveSlot) int64 { return s.hops })
	counter("retries_total", "Chunk retransmissions by the reliable-delivery seam.", func(s *liveSlot) int64 { return s.retries })
	counter("acks_total", "Cumulative acks that cleared a pending chunk.", func(s *liveSlot) int64 { return s.acks })
	counter("recoveries_total", "Checkpoint restores after a crash.", func(s *liveSlot) int64 { return s.recovers })

	b = append(b, "# HELP p2prank_faults_total Injected transport faults by kind.\n# TYPE p2prank_faults_total counter\n"...)
	for k := FaultKind(0); k < numFaultKinds; k++ {
		b = append(b, "p2prank_faults_total{kind=\""+k.String()+"\"} "...)
		b = strconv.AppendInt(b, c.faults[k], 10)
		b = append(b, '\n')
	}

	b = append(b, "# HELP p2prank_residual Last inner residual per ranker.\n# TYPE p2prank_residual gauge\n"...)
	for i := range c.slots {
		b = append(b, "p2prank_residual{ranker=\""...)
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, "\"} "...)
		b = strconv.AppendFloat(b, c.slots[i].residual, 'e', -1, 64)
		b = append(b, '\n')
	}

	b = append(b, "# HELP p2prank_milestones_total Convergence checkpoints recorded.\n# TYPE p2prank_milestones_total counter\n"...)
	b = append(b, "p2prank_milestones_total "...)
	b = strconv.AppendInt(b, c.milestones, 10)
	b = append(b, "\n# HELP p2prank_rel_err Relative error at the last checkpoint.\n# TYPE p2prank_rel_err gauge\np2prank_rel_err "...)
	b = strconv.AppendFloat(b, c.lastRelErr, 'e', -1, 64)
	b = append(b, '\n')

	b = append(b, "# HELP p2prank_inner_iterations Inner solver steps per compute phase.\n# TYPE p2prank_inner_iterations histogram\n"...)
	var cum int64
	for i, le := range innerIterBuckets {
		cum += c.histoBucket[i]
		b = append(b, "p2prank_inner_iterations_bucket{le=\""...)
		b = strconv.AppendInt(b, le, 10)
		b = append(b, "\"} "...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	cum += c.histoBucket[len(innerIterBuckets)]
	b = append(b, "p2prank_inner_iterations_bucket{le=\"+Inf\"} "...)
	b = strconv.AppendInt(b, cum, 10)
	b = append(b, "\np2prank_inner_iterations_sum "...)
	b = strconv.AppendInt(b, c.histoSum, 10)
	b = append(b, "\np2prank_inner_iterations_count "...)
	b = strconv.AppendInt(b, c.histoCount, 10)
	b = append(b, '\n')

	b = append(b, "# HELP p2prank_queries_total Serving-tier queries answered.\n# TYPE p2prank_queries_total counter\np2prank_queries_total "...)
	b = strconv.AppendInt(b, c.queryCount, 10)
	b = append(b, '\n')

	b = append(b, "# HELP p2prank_query_latency_seconds Serving-tier query latency.\n# TYPE p2prank_query_latency_seconds histogram\n"...)
	var qcum int64
	for i, le := range queryLatencyBuckets {
		qcum += c.queryBucket[i]
		b = append(b, "p2prank_query_latency_seconds_bucket{le=\""...)
		b = strconv.AppendFloat(b, le, 'g', -1, 64)
		b = append(b, "\"} "...)
		b = strconv.AppendInt(b, qcum, 10)
		b = append(b, '\n')
	}
	qcum += c.queryBucket[len(queryLatencyBuckets)]
	b = append(b, "p2prank_query_latency_seconds_bucket{le=\"+Inf\"} "...)
	b = strconv.AppendInt(b, qcum, 10)
	b = append(b, "\np2prank_query_latency_seconds_sum "...)
	b = strconv.AppendFloat(b, c.querySum, 'e', -1, 64)
	b = append(b, "\np2prank_query_latency_seconds_count "...)
	b = strconv.AppendInt(b, c.queryCount, 10)
	b = append(b, '\n')

	b = append(b, "# HELP p2prank_served_staleness Rounds behind on the last served query.\n# TYPE p2prank_served_staleness gauge\np2prank_served_staleness "...)
	b = strconv.AppendInt(b, c.stalenessLast, 10)
	b = append(b, "\n# HELP p2prank_served_staleness_max Worst staleness served so far.\n# TYPE p2prank_served_staleness_max gauge\np2prank_served_staleness_max "...)
	b = strconv.AppendInt(b, c.stalenessMax, 10)
	b = append(b, '\n')

	b = append(b, "# HELP p2prank_snapshot_publishes_total Rank snapshots swapped into the serving store.\n# TYPE p2prank_snapshot_publishes_total counter\np2prank_snapshot_publishes_total "...)
	b = strconv.AppendInt(b, c.snapPublishes, 10)
	b = append(b, "\n# HELP p2prank_snapshot_version Newest published snapshot version.\n# TYPE p2prank_snapshot_version gauge\np2prank_snapshot_version "...)
	b = strconv.AppendInt(b, c.snapVersion, 10)
	b = append(b, '\n')

	_, err := w.Write(b)
	if err != nil {
		return fmt.Errorf("telemetry: write metrics: %w", err)
	}
	return nil
}
