package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fakeClock is a scripted Clock for tests.
type fakeClock struct{ t float64 }

func (c *fakeClock) Now() float64 { return c.t }

func TestSimCollectorAggregates(t *testing.T) {
	c := NewSimCollector(2)
	clk := &fakeClock{t: 10}
	c.SetClock(clk)
	c.SetHops(func(src, dst int) int { return 3 })

	c.ComputeStart(0, 1)
	c.ComputeEnd(0, 1, ComputeStats{InnerIterations: 5, Residual: 1e-9, XSources: 1, XEntries: 4})
	c.ChunkSent(0, ChunkStats{Dst: 1, Round: 1, Entries: 2, Links: 7})
	clk.t = 20
	c.ComputeStart(1, 1)
	c.ComputeEnd(1, 1, ComputeStats{InnerIterations: 3})
	c.ChunkSent(1, ChunkStats{Dst: 0, Round: 1, Entries: 1, Links: 2})
	c.FaultInjected(1, FaultDrop)
	c.FaultInjected(1, FaultDelay)
	c.FaultInjected(1, FaultDup)
	c.Milestone(Milestone{Time: 20, RelErr: 0.5})

	s := c.Summary()
	if s.Rankers != 2 || s.Rounds != 2 || s.InnerIterations != 8 {
		t.Fatalf("bad totals: %+v", s)
	}
	if s.Chunks != 2 || s.Entries != 3 || s.Links != 9 {
		t.Fatalf("bad chunk totals: %+v", s)
	}
	if s.PayloadBytes != 9*DefaultBytesPerLink {
		t.Fatalf("PayloadBytes = %d", s.PayloadBytes)
	}
	if s.ChunkHops != 6 {
		t.Fatalf("ChunkHops = %d, want 6", s.ChunkHops)
	}
	if s.Dropped != 1 || s.Delayed != 1 || s.Duplicated != 1 {
		t.Fatalf("bad fault totals: %+v", s)
	}
	if s.FirstEvent != 10 || s.LastEvent != 20 {
		t.Fatalf("event window [%v, %v]", s.FirstEvent, s.LastEvent)
	}
	if len(s.Milestones) != 1 || s.Milestones[0].RelErr != 0.5 {
		t.Fatalf("milestones %+v", s.Milestones)
	}
	if s.PerRanker[0].InnerIterations != 5 || s.PerRanker[1].Rounds != 1 {
		t.Fatalf("per-ranker %+v", s.PerRanker)
	}
	if s.MeanRounds() != 1 || s.MeanChunkHops() != 3 {
		t.Fatalf("means: %v %v", s.MeanRounds(), s.MeanChunkHops())
	}
	if !strings.Contains(s.String(), "2 rankers") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestLiveCollectorMetricsText(t *testing.T) {
	c := NewLiveCollector(2)
	c.SetClock(&fakeClock{t: 100})
	c.ComputeEnd(0, 1, ComputeStats{InnerIterations: 4, Residual: 1e-8})
	c.ComputeEnd(0, 2, ComputeStats{InnerIterations: 200})
	c.ChunkSent(0, ChunkStats{Dst: 1, Round: 1, Entries: 3, Links: 5})
	c.FaultInjected(1, FaultDrop)
	c.Milestone(Milestone{RelErr: 1e-3, Converged: true})

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`p2prank_rounds_total{ranker="0"} 2`,
		`p2prank_rounds_total{ranker="1"} 0`,
		`p2prank_inner_iterations_total{ranker="0"} 204`,
		`p2prank_chunks_sent_total{ranker="0"} 1`,
		`p2prank_links_sent_total{ranker="0"} 5`,
		`p2prank_chunk_bytes_total{ranker="0"} 500`,
		`p2prank_faults_total{kind="drop"} 1`,
		`p2prank_faults_total{kind="delay"} 0`,
		`p2prank_milestones_total 1`,
		`p2prank_rel_err 1e-03`,
		`p2prank_inner_iterations_bucket{le="4"} 1`,
		`p2prank_inner_iterations_bucket{le="+Inf"} 2`,
		`p2prank_inner_iterations_sum 204`,
		`p2prank_inner_iterations_count 2`,
		"# TYPE p2prank_inner_iterations histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	if c.Rounds() != 2 {
		t.Fatalf("Rounds() = %d", c.Rounds())
	}
}

func TestLiveCollectorServingMetrics(t *testing.T) {
	c := NewLiveCollector(2)
	c.QueryServed(30e-6, 2)  // below the first bucket
	c.QueryServed(700e-6, 5) // lands in le="0.001"
	c.QueryServed(1.5, 1)    // beyond the last bucket: +Inf only
	c.SnapshotPublished(0, 1, 3)
	c.SnapshotPublished(1, 2, 3)

	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`p2prank_queries_total 3`,
		`p2prank_query_latency_seconds_bucket{le="5e-05"} 1`,
		`p2prank_query_latency_seconds_bucket{le="0.001"} 2`,
		`p2prank_query_latency_seconds_bucket{le="0.1"} 2`,
		`p2prank_query_latency_seconds_bucket{le="+Inf"} 3`,
		`p2prank_query_latency_seconds_count 3`,
		`p2prank_served_staleness 1`,
		`p2prank_served_staleness_max 5`,
		`p2prank_snapshot_publishes_total 2`,
		`p2prank_snapshot_version 2`,
		"# TYPE p2prank_query_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	if c.QueriesServed() != 3 {
		t.Fatalf("QueriesServed() = %d", c.QueriesServed())
	}
}

func TestLiveCollectorTraceRingWraps(t *testing.T) {
	c := NewLiveCollector(1)
	c.SetTraceCap(3)
	for round := int64(1); round <= 5; round++ {
		c.ComputeEnd(0, round, ComputeStats{InnerIterations: 1})
	}
	var buf bytes.Buffer
	if err := c.DumpTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var rounds []int64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		rounds = append(rounds, ev.Round)
	}
	if len(rounds) != 3 || rounds[0] != 3 || rounds[2] != 5 {
		t.Fatalf("ring kept rounds %v, want [3 4 5]", rounds)
	}
}

func TestServeEndpoints(t *testing.T) {
	c := NewLiveCollector(1)
	c.ComputeEnd(0, 1, ComputeStats{InnerIterations: 2})
	s, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get(s.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, `p2prank_rounds_total{ranker="0"} 1`) {
		t.Fatalf("metrics body:\n%s", out)
	}
	if out := get("/trace"); !strings.Contains(out, `"event":"compute"`) {
		t.Fatalf("trace body:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("pprof cmdline empty")
	}
}

// TestNoopIsAllocationFree pins the hot-path contract: hooks through
// the Noop observer must not allocate.
func TestNoopIsAllocationFree(t *testing.T) {
	var obs Observer = Noop{}
	allocs := testing.AllocsPerRun(100, func() {
		obs.ComputeStart(0, 1)
		obs.ComputeEnd(0, 1, ComputeStats{InnerIterations: 3, Residual: 1e-9})
		obs.ChunkSent(0, ChunkStats{Dst: 1, Round: 1, Entries: 2, Links: 5})
		obs.FaultInjected(0, FaultDrop)
	})
	if allocs != 0 {
		t.Fatalf("Noop observer hooks allocate %v per run", allocs)
	}
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{FaultDrop: "drop", FaultDelay: "delay", FaultDup: "dup", FaultPartition: "partition", FaultStraggle: "straggle", FaultKind(9): "unknown"} {
		if k.String() != want {
			t.Fatalf("FaultKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
