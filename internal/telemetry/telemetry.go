// Package telemetry is the observability seam of the DPR runtime: an
// Observer interface that plugs into the loop core (dprcore.Loop and
// dprcore.FaultSender) alongside Clock/Sender/Waiter/RNG, plus two
// collectors — a deterministic in-sim aggregator (SimCollector, virtual
// timestamps) and a live exporter (LiveCollector, Prometheus text +
// JSONL event trace, served by Server).
//
// The paper's §4.4 cost model (messages ≈ (h+1)·N², data ≈ lW + hrN²)
// and Table 1 are claims about runtime traffic; the hooks here measure
// them where they happen — compute-phase solves, commit-phase chunk
// emissions, injected faults — instead of re-deriving them from
// experiment curves.
//
// Layering: this package imports nothing from the repository, so the
// loop core can depend on it without cycles. Hooks carry scalars and
// small value structs only; an Observer must never feed information
// back into the algorithm. Determinism: the package never reads the
// wall clock or global randomness (enforced by p2plint); time enters
// only through the Clock interface, which the simulator backs with
// virtual time and netpeer with its wall-clock adapter.
//
// Hot-path contract: runtimes install an Observer by storing it in a
// field that is nil-checked before every hook, so a run without an
// observer (or with the explicit Noop) neither allocates nor branches
// into this package beyond that one comparison.
package telemetry

// Clock is the one time source an observer may consult. Units are the
// driving runtime's (virtual units in-sim, nanoseconds live); the
// collectors only difference and aggregate them, never interpret them.
type Clock interface {
	// Now returns the current time.
	Now() float64
}

// ClockSetter is implemented by collectors that want timestamps. The
// runtime injects its clock after construction (the simulator is built
// inside engine.Run, so the caller cannot wire it up front).
type ClockSetter interface {
	SetClock(Clock)
}

// HopsSetter is implemented by collectors that attribute overlay hop
// counts to emitted chunks. The runtime injects a (src, dst) → hops
// function derived from its overlay; chunks count 1 hop without one.
type HopsSetter interface {
	SetHops(func(src, dst int) int)
}

// ComputeStats summarizes one compute phase (refresh X, update R).
type ComputeStats struct {
	// InnerIterations is the number of inner solver steps: DPR1's
	// GroupPageRank iteration count, always 1 for DPR2's single step.
	InnerIterations int
	// Residual is the last inner step's ‖ΔR‖₁ (DPR1) or the step's
	// ‖ΔR‖∞ (DPR2, computed only when an observer is installed).
	Residual float64
	// XSources is how many source groups contributed to the refreshed X.
	XSources int
	// XEntries is the total entry count summed into X.
	XEntries int
}

// ChunkStats describes one score chunk handed to the Sender during a
// commit phase. Byte and hop attribution happen collector-side (bytes
// from Links × the wire size model, hops from the injected hop
// function), keeping the loop core ignorant of wire formats and
// overlays.
type ChunkStats struct {
	// Dst is the destination group index.
	Dst int
	// Round is the emitting loop's iteration count.
	Round int64
	// Entries is the number of merged score entries in the chunk.
	Entries int
	// Links is the number of inter-group links the chunk aggregates
	// (the paper's W contribution of this emission).
	Links int64
}

// FaultKind labels one injected message fault.
type FaultKind uint8

const (
	// FaultDrop is a chunk discarded outright.
	FaultDrop FaultKind = iota
	// FaultDelay is a chunk held back and re-injected later.
	FaultDelay
	// FaultDup is a chunk sent twice.
	FaultDup
	// FaultPartition is a chunk blackholed because sender and receiver
	// sit on opposite sides of an active network partition.
	FaultPartition
	// FaultStraggle is a chunk held back by a straggler node's
	// persistent slowdown factor.
	FaultStraggle

	numFaultKinds = 5
)

// String returns the fault label used in metrics and traces.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDup:
		return "dup"
	case FaultPartition:
		return "partition"
	case FaultStraggle:
		return "straggle"
	}
	return "unknown"
}

// Milestone is a convergence checkpoint emitted by the orchestration
// layer (engine samples, dprnode demo polls), not by the loop core.
type Milestone struct {
	// Time is the runtime's time of the checkpoint (virtual units
	// in-sim, seconds since start for the live demo).
	Time float64
	// RelErr is the global relative error against centralized PageRank.
	RelErr float64
	// MeanLoops is the mean main-loop count across rankers.
	MeanLoops float64
	// Converged reports whether this checkpoint reached the run's
	// target error.
	Converged bool
}

// Observer receives telemetry at the loop core's seams. Hooks for one
// ranker are serialized by its driver, but different rankers' compute
// hooks may fire concurrently (the simulator batches same-instant
// compute phases onto a worker pool; live peers run in parallel
// goroutines), so implementations must be safe for per-ranker
// concurrency. Implementations must not call back into the runtime.
type Observer interface {
	// ComputeStart fires when ranker begins the compute phase of round.
	ComputeStart(ranker int, round int64)
	// ComputeEnd fires when the compute phase finishes.
	ComputeEnd(ranker int, round int64, s ComputeStats)
	// ChunkSent fires for every chunk the ranker's commit phase hands
	// to its Sender (after the algorithm's own SendProb loss, before
	// any injected transport fault).
	ChunkSent(ranker int, c ChunkStats)
	// FaultInjected fires when the fault seam drops, delays, or
	// duplicates one of the ranker's chunks.
	FaultInjected(ranker int, kind FaultKind)
	// ChunkRetried fires when the reliable-delivery seam retransmits a
	// chunk whose ack timed out (attempt counts retransmissions of that
	// chunk, starting at 1). It may fire from a timer context, not just
	// the ranker's commit context.
	ChunkRetried(ranker int, dst int, attempt int)
	// AckReceived fires when a cumulative ack from dst clears the
	// ranker's pending chunk for that destination (acks that confirm
	// nothing new do not fire).
	AckReceived(ranker int, dst int, round int64)
	// Recovered fires when a ranker restores its loop state from a
	// checkpoint after a crash; round is the restored loop count.
	Recovered(ranker int, round int64)
	// Milestone fires at convergence checkpoints.
	Milestone(m Milestone)
}

// Noop is the explicit do-nothing Observer. Installing it is
// behaviorally identical to installing nothing: all hooks are empty and
// allocation-free (value structs, zero-size receiver).
type Noop struct{}

// ComputeStart implements Observer.
func (Noop) ComputeStart(int, int64) {}

// ComputeEnd implements Observer.
func (Noop) ComputeEnd(int, int64, ComputeStats) {}

// ChunkSent implements Observer.
func (Noop) ChunkSent(int, ChunkStats) {}

// FaultInjected implements Observer.
func (Noop) FaultInjected(int, FaultKind) {}

// ChunkRetried implements Observer.
func (Noop) ChunkRetried(int, int, int) {}

// AckReceived implements Observer.
func (Noop) AckReceived(int, int, int64) {}

// Recovered implements Observer.
func (Noop) Recovered(int, int64) {}

// Milestone implements Observer.
func (Noop) Milestone(Milestone) {}
