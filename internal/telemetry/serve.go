package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server exposes a LiveCollector over HTTP: Prometheus text on
// /metrics, the JSONL event trace on /trace, and the standard pprof
// handlers under /debug/pprof/. dprnode starts one with -obs addr:port.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port) and serves col in a
// background goroutine until Close.
func Serve(addr string, col *LiveCollector) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := col.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := col.DumpTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// The pprof handlers are registered explicitly on a private mux so
	// importing this package never touches http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) on Close;
		// either way the goroutine just exits.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound host:port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
