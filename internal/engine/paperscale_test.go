package engine

import (
	"os"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/webgraph"
)

// TestPaperScale runs the experiment at the paper's actual scale: a
// 1M-page, 100-site crawl with 15M links (7M internal) ranked by 1000
// asynchronous page rankers — the Figure 6 configuration. It takes a
// few minutes and a few GB of memory, so it is opt-in:
//
//	P2PRANK_PAPERSCALE=1 go test ./internal/engine -run TestPaperScale -v -timeout 30m
func TestPaperScale(t *testing.T) {
	if os.Getenv("P2PRANK_PAPERSCALE") == "" {
		t.Skip("set P2PRANK_PAPERSCALE=1 to run the 1M-page experiment")
	}
	cfg := webgraph.DefaultGenConfig(1_000_000)
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := webgraph.ComputeStats(g)
	t.Logf("crawl: %d pages, %d sites, %d internal + %d external links",
		stats.Pages, stats.Sites, stats.InternalLinks, stats.ExternalLinks)
	if stats.Pages != 1_000_000 || stats.Sites != 100 {
		t.Fatalf("wrong scale: %+v", stats)
	}
	res, err := Run(Config{
		Params:       dprcore.Params{Alg: dprcore.DPR1, T1: 0, T2: 6},
		Graph:        g,
		K:            1000,
		MaxTime:      300,
		SampleEvery:  5,
		TargetRelErr: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not reach 0.01%% relative error (final %v)", res.RelErr)
	}
	t.Logf("converged at t=%v after %.1f loops/ranker; avg rank %.3f; %d messages, %.1f GB",
		res.ConvergedAt, res.LoopsAtConvergence,
		res.Final.Mean(),
		res.NetStats.MessagesSent, float64(res.NetStats.BytesSent)/1e9)
	avg := res.Final.Mean()
	if avg < 0.2 || avg > 0.4 {
		t.Fatalf("average rank %v outside the paper's ≈0.3 band", avg)
	}
}
