package engine

import (
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/partition"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

func genGraph(t testing.TB, pages int, seed uint64) *webgraph.Graph {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = seed
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func baseConfig(g *webgraph.Graph) Config {
	return Config{
		Params:      dprcore.Params{Alg: dprcore.DPR1, T1: 0.5, T2: 3},
		Graph:       g,
		K:           8,
		MaxTime:     300,
		SampleEvery: 5,
	}
}

func TestRunConvergesDPR1(t *testing.T) {
	g := genGraph(t, 2500, 1)
	cfg := baseConfig(g)
	cfg.TargetRelErr = 1e-6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge; final rel err %v", res.RelErr)
	}
	if res.RelErr > 1e-6 {
		t.Fatalf("final rel err %v above target", res.RelErr)
	}
	if res.LoopsAtConvergence <= 0 {
		t.Fatal("loop count not recorded")
	}
	if len(res.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	if res.NetStats.MessagesSent == 0 {
		t.Fatal("no network traffic recorded")
	}
}

func TestRunConvergesDPR2(t *testing.T) {
	g := genGraph(t, 2500, 1)
	cfg := baseConfig(g)
	cfg.Alg = dprcore.DPR2
	cfg.MaxTime = 800
	cfg.TargetRelErr = 1e-5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("DPR2 did not converge; final rel err %v", res.RelErr)
	}
}

func TestRelErrDecreasesOverTime(t *testing.T) {
	g := genGraph(t, 2000, 3)
	cfg := baseConfig(g)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Samples[0].RelErr
	last := res.Samples[len(res.Samples)-1].RelErr
	if last >= first {
		t.Fatalf("relative error did not decrease: %v -> %v", first, last)
	}
}

// Figure 7's shape: the average rank rises monotonically (Theorem 4.1)
// and settles well below 1 because of external-link leakage.
func TestAvgRankMonotoneAndLeaky(t *testing.T) {
	g := genGraph(t, 2500, 5)
	cfg := baseConfig(g)
	cfg.SendProb = 0.7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].AvgRank < res.Samples[i-1].AvgRank-1e-12 {
			t.Fatalf("average rank decreased at sample %d", i)
		}
	}
	final := res.Samples[len(res.Samples)-1].AvgRank
	if final < 0.15 || final > 0.45 {
		t.Fatalf("converged average rank %v, want ≈0.3 (paper, Figure 7)", final)
	}
}

func TestDeterminism(t *testing.T) {
	g := genGraph(t, 1500, 7)
	cfg := baseConfig(g)
	cfg.MaxTime = 60
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Samples) != len(r2.Samples) {
		t.Fatal("sample counts differ")
	}
	for i := range r1.Samples {
		if r1.Samples[i] != r2.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, r1.Samples[i], r2.Samples[i])
		}
	}
	if vecmath.Diff1(r1.Final, r2.Final) != 0 {
		t.Fatal("final ranks differ across identical runs")
	}
	if r1.NetStats != r2.NetStats {
		t.Fatalf("network stats differ: %+v vs %+v", r1.NetStats, r2.NetStats)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	g := genGraph(t, 1500, 7)
	cfg := baseConfig(g)
	cfg.MaxTime = 60
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NetStats == r2.NetStats {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestChordOverlayWorks(t *testing.T) {
	g := genGraph(t, 2000, 9)
	cfg := baseConfig(g)
	cfg.Overlay = Chord
	cfg.TargetRelErr = 1e-5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("Chord run did not converge (rel err %v)", res.RelErr)
	}
}

func TestDirectTransportWorks(t *testing.T) {
	g := genGraph(t, 2000, 11)
	cfg := baseConfig(g)
	cfg.Transport = transport.Direct
	cfg.TargetRelErr = 1e-5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatal("direct-transport run did not converge")
	}
	if res.TransportStats.LookupMessages == 0 {
		t.Fatal("direct transport did no lookups")
	}
}

func TestIndirectUsesFewerMessages(t *testing.T) {
	g := genGraph(t, 3000, 13)
	run := func(k transport.Kind) *Result {
		cfg := baseConfig(g)
		cfg.K = 24
		cfg.Transport = k
		cfg.MaxTime = 60
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	direct := run(transport.Direct)
	indirect := run(transport.Indirect)
	// Normalize by loop count: per iteration, indirect needs ≤ gN
	// messages, direct (h+1)·(pairs). With K=24 rankers the by-site
	// partition makes nearly all pairs talk.
	dPer := float64(direct.NetStats.MessagesSent) / direct.LoopsAtConvergence
	iPer := float64(indirect.NetStats.MessagesSent) / indirect.LoopsAtConvergence
	if iPer >= dPer {
		t.Fatalf("indirect %.1f msgs/iter not below direct %.1f", iPer, dPer)
	}
}

func TestRandomPartitionMovesMoreBytes(t *testing.T) {
	g := genGraph(t, 3000, 15)
	run := func(s partition.Strategy) *Result {
		cfg := baseConfig(g)
		cfg.Strategy = s
		cfg.MaxTime = 40
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bySite := run(partition.BySite)
	random := run(partition.Random)
	if bySite.Cut.CutFrac() >= random.Cut.CutFrac() {
		t.Fatalf("by-site cut %.3f not below random %.3f",
			bySite.Cut.CutFrac(), random.Cut.CutFrac())
	}
	sitePer := float64(bySite.NetStats.BytesSent) / bySite.LoopsAtConvergence
	randPer := float64(random.NetStats.BytesSent) / random.LoopsAtConvergence
	if sitePer >= randPer {
		t.Fatalf("by-site %.0f B/iter not below random %.0f B/iter", sitePer, randPer)
	}
}

func TestConfigValidation(t *testing.T) {
	g := genGraph(t, 200, 17)
	bad := []Config{
		{K: 4, MaxTime: 10},           // no graph
		{Graph: g, K: 0, MaxTime: 10}, // no rankers
		{Graph: g, K: 4},              // no horizon
		{Graph: g, K: 4, MaxTime: 10, Params: dprcore.Params{T1: 5, T2: 2}},  // inverted range
		{Graph: g, K: 4, MaxTime: 10, Params: dprcore.Params{T1: -1, T2: 2}}, // negative wait
		{Graph: g, K: 4, MaxTime: 10, SampleEvery: -1},
		{Graph: g, K: 4, MaxTime: 10, TargetRelErr: -1},
		{Graph: g, K: 4, MaxTime: 10, Overlay: OverlayKind(9)},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSampleEveryBeyondMaxTime(t *testing.T) {
	g := genGraph(t, 300, 19)
	cfg := baseConfig(g)
	cfg.SampleEvery = 1000 // beyond MaxTime=300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 0 {
		t.Fatalf("%d samples recorded", len(res.Samples))
	}
	if res.RelErr <= 0 {
		t.Fatal("final state not computed")
	}
}

func TestCPRIterations(t *testing.T) {
	g := genGraph(t, 2000, 21)
	it, err := CPRIterations(g, 0.85, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Geometric contraction at rate ≲0.85·(internal fraction): needs
	// on the order of 10–40 iterations for 0.01%.
	if it < 5 || it > 60 {
		t.Fatalf("CPR iterations = %d, implausible", it)
	}
	it2, err := CPRIterations(g, 0.85, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if it2 >= it {
		t.Fatalf("looser target needs %d ≥ %d iterations", it2, it)
	}
	if _, err := CPRIterations(g, 0.85, 0); err == nil {
		t.Fatal("zero target accepted")
	}
}

// Figure 8's headline ordering: DPR1 converges in fewer outer
// iterations than CPR (each DPR1 loop runs the inner solve to a fixed
// point, so only inter-group propagation costs iterations), and DPR2
// needs the most (one Jacobi step per loop plus staleness).
func TestFig8Ordering(t *testing.T) {
	g := genGraph(t, 2500, 23)
	const target = 1e-4
	cpr, err := CPRIterations(g, 0.85, target)
	if err != nil {
		t.Fatal(err)
	}
	run := func(alg dprcore.Algorithm) float64 {
		cfg := baseConfig(g)
		cfg.Alg = alg
		cfg.T1, cfg.T2 = 15, 15
		cfg.MaxTime = 3000
		cfg.SampleEvery = 5
		cfg.TargetRelErr = target
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ConvergedAt < 0 {
			t.Fatalf("%v did not converge", alg)
		}
		return res.LoopsAtConvergence
	}
	dpr1 := run(dprcore.DPR1)
	dpr2 := run(dprcore.DPR2)
	if dpr1 >= float64(cpr) {
		t.Fatalf("DPR1 used %.1f iterations, CPR %d — paper says DPR1 < CPR", dpr1, cpr)
	}
	if dpr2 <= dpr1 {
		t.Fatalf("DPR2 used %.1f iterations, DPR1 %.1f — paper says DPR2 > DPR1", dpr2, dpr1)
	}
	if dpr2 < float64(cpr)*0.8 {
		t.Fatalf("DPR2 used %.1f iterations, CPR %d — paper says DPR2 ≳ CPR", dpr2, cpr)
	}
}

func TestOverlayKindString(t *testing.T) {
	if Pastry.String() != "pastry" || Chord.String() != "chord" {
		t.Fatal("overlay names wrong")
	}
	if OverlayKind(9).String() == "" {
		t.Fatal("unknown overlay name empty")
	}
}

func BenchmarkRunSmall(b *testing.B) {
	cfg := webgraph.DefaultGenConfig(2000)
	g, err := webgraph.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ecfg := Config{
		Params: dprcore.Params{Alg: dprcore.DPR1, T1: 0.5, T2: 3},
		Graph:  g, K: 8, MaxTime: 50, SampleEvery: 10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ecfg); err != nil {
			b.Fatal(err)
		}
	}
}

// §4.2's asynchrony taken to its extreme: a ranker that suspends (or
// effectively shuts down) mid-run stalls global convergence while it is
// away — its stale ranks hold the error floor — and the system resumes
// and converges once it returns.
func TestDisruptionDelaysButDoesNotPreventConvergence(t *testing.T) {
	g := genGraph(t, 2500, 25)
	base := baseConfig(g)
	base.T1, base.T2 = 2, 2
	base.MaxTime = 600
	base.TargetRelErr = 1e-7
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// Disrupt the busiest ranker; under by-site partitioning some
	// rankers own no pages and suspending one of those changes nothing.
	target := 0
	for i, n := range clean.PagesPerRanker {
		if n > clean.PagesPerRanker[target] {
			target = i
		}
	}
	disrupted := base
	disrupted.Disruptions = []Disruption{{Ranker: target, From: 1, To: 100}}
	res, err := Run(disrupted)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge after outage (rel err %v)", res.RelErr)
	}
	if res.ConvergedAt <= clean.ConvergedAt {
		t.Fatalf("outage did not delay convergence: %v vs clean %v",
			res.ConvergedAt, clean.ConvergedAt)
	}
	if res.ConvergedAt <= 100 {
		t.Fatalf("converged at %v while the busiest ranker was still down", res.ConvergedAt)
	}
	if re := res.RelErr; re > 1e-7 {
		t.Fatalf("final error %v above target", re)
	}
}

func TestDisruptionValidation(t *testing.T) {
	g := genGraph(t, 300, 27)
	base := baseConfig(g)
	bad := [][]Disruption{
		{{Ranker: -1, From: 1, To: 2}},
		{{Ranker: 99, From: 1, To: 2}},
		{{Ranker: 0, From: 5, To: 5}},
		{{Ranker: 0, From: -1, To: 2}},
		{{Ranker: 0, From: 1, To: 1e9}},
	}
	for i, ds := range bad {
		cfg := base
		cfg.Disruptions = ds
		if _, err := Run(cfg); err == nil {
			t.Errorf("disruption set %d accepted", i)
		}
	}
}

// DPR1's monotone property survives outages: the suspended ranker's
// vector freezes, everyone else keeps growing.
func TestDisruptionPreservesMonotonicity(t *testing.T) {
	g := genGraph(t, 2000, 29)
	cfg := baseConfig(g)
	cfg.SendProb = 0.8
	cfg.MaxTime = 200
	cfg.Disruptions = []Disruption{
		{Ranker: 1, From: 10, To: 60},
		{Ranker: 3, From: 30, To: 90},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].AvgRank < res.Samples[i-1].AvgRank-1e-12 {
			t.Fatalf("average rank decreased at sample %d despite Theorem 4.1", i)
		}
	}
}
