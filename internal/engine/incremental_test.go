package engine

import (
	"testing"

	"p2prank/internal/crawler"
	"p2prank/internal/dprcore"
	"p2prank/internal/vecmath"
)

func crawlPhases(t *testing.T, pages, batches int) []Phase {
	t.Helper()
	w := genGraph(t, pages, 41)
	c, err := crawler.New(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	per := pages / batches
	var phases []Phase
	var prevToWeb []int32
	for !c.Done() {
		c.Crawl(per)
		g, toWeb, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		ph := Phase{Graph: g}
		if prevToWeb != nil {
			ph.CarryOver = crawler.CarryOver(prevToWeb, toWeb)
		}
		phases = append(phases, ph)
		prevToWeb = toWeb
	}
	return phases
}

func TestRunIncrementalConvergesEveryPhase(t *testing.T) {
	phases := crawlPhases(t, 3000, 3)
	cfg := Config{
		K: 6, Params: dprcore.Params{Alg: dprcore.DPR1, T1: 0.5, T2: 3},
		MaxTime: 400, SampleEvery: 5,
		TargetRelErr: 1e-6,
	}
	results, err := RunIncremental(cfg, phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(phases) {
		t.Fatalf("%d results for %d phases", len(results), len(phases))
	}
	for i, res := range results {
		if res.ConvergedAt < 0 {
			t.Fatalf("phase %d did not converge (rel err %v)", i, res.RelErr)
		}
	}
}

// Growing the crawl only converts external links to internal ones, so
// the fixed point grows pointwise: each phase's reference dominates the
// previous one on shared pages.
func TestIncrementalFixedPointMonotone(t *testing.T) {
	phases := crawlPhases(t, 3000, 3)
	cfg := Config{
		K: 6, Params: dprcore.Params{Alg: dprcore.DPR1, T1: 0.5, T2: 3},
		MaxTime: 300, SampleEvery: 5,
		TargetRelErr: 1e-7,
	}
	results, err := RunIncremental(cfg, phases)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(phases); i++ {
		co := phases[i].CarryOver
		for p, prevIdx := range co {
			if prevIdx < 0 {
				continue
			}
			if results[i].Reference[p] < results[i-1].Reference[prevIdx]-1e-6 {
				t.Fatalf("phase %d: reference rank of page %d dropped (%v -> %v)",
					i, p, results[i-1].Reference[prevIdx], results[i].Reference[p])
			}
		}
	}
}

// Warm-starting the final snapshot from the previous phase's ranks
// begins an order of magnitude closer to the new fixed point than a
// cold start, and never takes longer to converge. (Time-to-converge
// itself is quantized by communication rounds — error drops in bursts
// of roughly one round of the slowest dependency chain — so the robust
// observable is the head start, not the wall-clock delta.)
func TestWarmStartBeatsColdStart(t *testing.T) {
	phases := crawlPhases(t, 4000, 8)
	cfg := Config{
		K: 6, Params: dprcore.Params{Alg: dprcore.DPR1, T1: 5, T2: 5},
		MaxTime: 2000, SampleEvery: 1,
		TargetRelErr: 1e-9,
	}
	results, err := RunIncremental(cfg, phases)
	if err != nil {
		t.Fatal(err)
	}
	warm := results[len(results)-1]
	coldCfg := cfg
	coldCfg.Graph = phases[len(phases)-1].Graph
	cold, err := Run(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ConvergedAt < 0 || cold.ConvergedAt < 0 {
		t.Fatal("a run did not converge")
	}
	if warm.ConvergedAt > cold.ConvergedAt {
		t.Fatalf("warm start (t=%v) slower than cold start (t=%v)",
			warm.ConvergedAt, cold.ConvergedAt)
	}
	warmFirst := warm.Samples[0].RelErr
	coldFirst := cold.Samples[0].RelErr
	if warmFirst >= coldFirst/3 {
		t.Fatalf("warm start error %v not well below cold start %v at the first sample",
			warmFirst, coldFirst)
	}
}

func TestRunIncrementalValidation(t *testing.T) {
	if _, err := RunIncremental(Config{}, nil); err == nil {
		t.Error("no phases accepted")
	}
	if _, err := RunIncremental(Config{K: 2, MaxTime: 10}, []Phase{{}}); err == nil {
		t.Error("nil phase graph accepted")
	}
	g := genGraph(t, 300, 1)
	bad := []Phase{
		{Graph: g},
		{Graph: g, CarryOver: []int32{1}}, // wrong length
	}
	if _, err := RunIncremental(Config{K: 2, MaxTime: 10}, bad); err == nil {
		t.Error("wrong-length carry-over accepted")
	}
	badIdx := []Phase{
		{Graph: g},
		{Graph: g, CarryOver: make([]int32, g.NumPages())},
	}
	badIdx[1].CarryOver[0] = 99999
	if _, err := RunIncremental(Config{K: 2, MaxTime: 10}, badIdx); err == nil {
		t.Error("out-of-range carry-over accepted")
	}
}

func TestSetInitialRanksAfterStartRejected(t *testing.T) {
	g := genGraph(t, 300, 1)
	cfg := baseConfig(g)
	cfg.MaxTime = 5
	// Exercise through the engine: warm start with wrong-length vector.
	if _, err := run(cfg, vecmath.Const(5, 1)); err == nil {
		t.Error("wrong-length initial ranks accepted")
	}
}
