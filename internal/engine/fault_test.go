package engine

import (
	"testing"

	"p2prank/internal/dprcore"
)

// TestFaultDropsStillConverge injects message drops below the
// algorithm's own loss parameter and checks the run still reaches the
// fixed point — the paper's loss tolerance, exercised at the transport
// seam rather than through SendProb.
func TestFaultDropsStillConverge(t *testing.T) {
	g := genGraph(t, 2500, 1)
	cfg := baseConfig(g)
	cfg.TargetRelErr = 1e-6
	cfg.Fault = dprcore.FaultConfig{DropProb: 0.3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.Dropped == 0 {
		t.Fatal("fault injector dropped nothing")
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge under 30%% drops; final rel err %v", res.RelErr)
	}
}

// TestFaultDelayDupStillConverge exercises the other two fault kinds:
// delayed chunks arrive stale (and are discarded by round tracking),
// duplicates are idempotent.
func TestFaultDelayDupStillConverge(t *testing.T) {
	g := genGraph(t, 2000, 3)
	cfg := baseConfig(g)
	cfg.TargetRelErr = 1e-6
	cfg.Fault = dprcore.FaultConfig{DelayProb: 0.2, MeanDelay: 10, DupProb: 0.2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.Delayed == 0 || res.FaultStats.Duplicated == 0 {
		t.Fatalf("fault stats %+v missing delays or duplicates", res.FaultStats)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge under delays+duplicates; final rel err %v", res.RelErr)
	}
}

// TestFaultRunsAreDeterministic checks the injector draws from a seeded
// stream like everything else: same config, same faults, same floats.
func TestFaultRunsAreDeterministic(t *testing.T) {
	g := genGraph(t, 2000, 3)
	cfg := baseConfig(g)
	cfg.MaxTime = 60
	cfg.Fault = dprcore.FaultConfig{DropProb: 0.2, DelayProb: 0.1, MeanDelay: 5, DupProb: 0.1}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultStats != b.FaultStats {
		t.Fatalf("fault stats differ across identical runs: %+v vs %+v", a.FaultStats, b.FaultStats)
	}
	for i := range a.Final {
		if a.Final[i] != b.Final[i] {
			t.Fatalf("final ranks differ at page %d across identical fault runs", i)
		}
	}
}

func TestFaultConfigValidation(t *testing.T) {
	g := genGraph(t, 500, 1)
	for name, f := range map[string]dprcore.FaultConfig{
		"drop>1":         {DropProb: 1.5},
		"negative dup":   {DupProb: -0.1},
		"delay no mean":  {DelayProb: 0.5},
		"negative delay": {DelayProb: 0.5, MeanDelay: -1},
	} {
		cfg := baseConfig(g)
		cfg.Fault = f
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid fault config accepted", name)
		}
	}
}
