package engine

import (
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/webgraph"
)

// TestFaultDropsStillConverge injects message drops below the
// algorithm's own loss parameter and checks the run still reaches the
// fixed point — the paper's loss tolerance, exercised at the transport
// seam rather than through SendProb.
func TestFaultDropsStillConverge(t *testing.T) {
	g := genGraph(t, 2500, 1)
	cfg := baseConfig(g)
	cfg.TargetRelErr = 1e-6
	cfg.Fault = dprcore.FaultConfig{DropProb: 0.3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.Dropped == 0 {
		t.Fatal("fault injector dropped nothing")
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge under 30%% drops; final rel err %v", res.RelErr)
	}
}

// TestFaultDelayDupStillConverge exercises the other two fault kinds:
// delayed chunks arrive stale (and are discarded by round tracking),
// duplicates are idempotent.
func TestFaultDelayDupStillConverge(t *testing.T) {
	g := genGraph(t, 2000, 3)
	cfg := baseConfig(g)
	cfg.TargetRelErr = 1e-6
	cfg.Fault = dprcore.FaultConfig{DelayProb: 0.2, MeanDelay: 10, DupProb: 0.2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.Delayed == 0 || res.FaultStats.Duplicated == 0 {
		t.Fatalf("fault stats %+v missing delays or duplicates", res.FaultStats)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge under delays+duplicates; final rel err %v", res.RelErr)
	}
}

// TestFaultRunsAreDeterministic checks the injector draws from a seeded
// stream like everything else: same config, same faults, same floats.
func TestFaultRunsAreDeterministic(t *testing.T) {
	g := genGraph(t, 2000, 3)
	cfg := baseConfig(g)
	cfg.MaxTime = 60
	cfg.Fault = dprcore.FaultConfig{DropProb: 0.2, DelayProb: 0.1, MeanDelay: 5, DupProb: 0.1}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultStats != b.FaultStats {
		t.Fatalf("fault stats differ across identical runs: %+v vs %+v", a.FaultStats, b.FaultStats)
	}
	for i := range a.Final {
		if a.Final[i] != b.Final[i] {
			t.Fatalf("final ranks differ at page %d across identical fault runs", i)
		}
	}
}

func TestFaultConfigValidation(t *testing.T) {
	g := genGraph(t, 500, 1)
	for name, f := range map[string]dprcore.FaultConfig{
		"drop>1":             {DropProb: 1.5},
		"negative dup":       {DupProb: -0.1},
		"delay no mean":      {DelayProb: 0.5},
		"negative delay":     {DelayProb: 0.5, MeanDelay: -1},
		"partition>1":        {PartitionFrac: 1.5, PartitionFrom: 0, PartitionTo: 1},
		"partition no heal":  {PartitionFrac: 0.3, PartitionFrom: 5, PartitionTo: 5},
		"partition neg from": {PartitionFrac: 0.3, PartitionFrom: -1, PartitionTo: 5},
		"straggle no factor": {StraggleFrac: 0.2},
	} {
		cfg := baseConfig(g)
		cfg.Fault = f
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid fault config accepted", name)
		}
	}
}

// latticeGraph is the graph the partition/straggler tests run on. The
// single-site default graph funnels nearly all cross-group traffic
// through two rankers, so a random cut can miss it entirely; 40 sites
// spread cross-group edges over every ranker and make the partition's
// effect on convergence unambiguous.
func latticeGraph(t *testing.T) *webgraph.Graph {
	t.Helper()
	gc := webgraph.DefaultGenConfig(2500)
	gc.Sites = 40
	gc.Seed = 5
	g, err := webgraph.Generate(gc)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFaultPartitionHealsAndConverges runs a 30% partition from t=0:
// while the window is active every chunk crossing the cut is blackholed
// in both directions, so the run cannot reach the fixed point (the
// never-healing control pins that), and after the heal it must get
// there with no help beyond the loops' own resends.
func TestFaultPartitionHealsAndConverges(t *testing.T) {
	g := latticeGraph(t)
	cfg := baseConfig(g)
	cfg.TargetRelErr = 1e-6
	// Seed 13 cuts rankers {1,6} onto the minority side of the 8-way
	// deployment (see TestLatticeMembershipPureAndProportional for the
	// hash's statistical behavior; the specific cut is pinned here so
	// the test exercises a real two-sided partition).
	cfg.Fault = dprcore.FaultConfig{
		PartitionFrac: 0.3, PartitionFrom: 0, PartitionTo: 60, Seed: 13,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.Partitioned == 0 {
		t.Fatal("partition window blackholed nothing")
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge after heal; final rel err %v", res.RelErr)
	}
	if res.ConvergedAt <= cfg.Fault.PartitionTo {
		t.Fatalf("ConvergedAt %v inside the partition window [%v,%v): minority traffic cannot have been blackholed",
			res.ConvergedAt, cfg.Fault.PartitionFrom, cfg.Fault.PartitionTo)
	}

	// Control: the same cut without a heal must never converge — the
	// minority's score mass stays frozen out of the global fixed point.
	cfg.Fault.PartitionTo = 1e9
	ctl, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.ConvergedAt >= 0 {
		t.Fatalf("converged at %v under a never-healing partition (rel err %v)", ctl.ConvergedAt, ctl.RelErr)
	}
}

// TestFaultStragglersStillConverge marks a quarter of the rankers as
// persistent stragglers: every chunk they emit is held back by a fixed
// factor. Unlike DelayProb's per-chunk lottery the same seeded nodes
// stay slow all run, so convergence is gated on the slowest quartile.
func TestFaultStragglersStillConverge(t *testing.T) {
	g := latticeGraph(t)
	cfg := baseConfig(g)
	cfg.TargetRelErr = 1e-6
	cfg.Fault = dprcore.FaultConfig{StraggleFrac: 0.25, StraggleFactor: 2, Seed: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultStats.Straggled == 0 {
		t.Fatal("straggler hold-back applied to nothing")
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge with stragglers; final rel err %v", res.RelErr)
	}
}

// TestReliableBreakerRidesOutPartition is the simulated half of the
// breaker/partition acceptance: with reliable delivery on, a partition
// makes every cross-cut chunk time out until the sender's dead-peer
// circuit opens (BreakerTrips), subsequent rounds are swallowed by the
// open circuit instead of burning retries (Suppressed), and after the
// heal the next post-cooldown send probes the peer, the ack closes the
// circuit, and the run converges — open, half-open, closed, in one
// virtual-time run.
func TestReliableBreakerRidesOutPartition(t *testing.T) {
	g := latticeGraph(t)
	cfg := baseConfig(g)
	cfg.MaxTime = 450
	cfg.TargetRelErr = 1e-6
	cfg.Fault = dprcore.FaultConfig{
		PartitionFrac: 0.3, PartitionFrom: 0, PartitionTo: 120, Seed: 13,
	}
	// Timeout 2 against T2=3 round cadence: a blackholed chunk blows
	// through MaxAttempts well inside the 120-unit window, and the
	// 20-unit cooldown expires several times mid-partition (re-probe,
	// re-trip) and once more after the heal (probe succeeds, ack
	// closes the circuit).
	cfg.Reliable = dprcore.ReliableConfig{Timeout: 2, MaxAttempts: 2, Cooldown: 20}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReliableStats.BreakerTrips == 0 {
		t.Fatalf("reliable stats %+v: no circuit opened during the partition", res.ReliableStats)
	}
	if res.ReliableStats.Suppressed == 0 {
		t.Fatalf("reliable stats %+v: open circuit suppressed nothing", res.ReliableStats)
	}
	if res.ReliableStats.Acks == 0 {
		t.Fatalf("reliable stats %+v: no acks — circuits never closed", res.ReliableStats)
	}
	if res.ConvergedAt < 0 {
		t.Fatalf("did not converge after heal; final rel err %v", res.RelErr)
	}
	if res.ConvergedAt <= cfg.Fault.PartitionTo {
		t.Fatalf("ConvergedAt %v inside the partition window", res.ConvergedAt)
	}
}
