package engine

import (
	"fmt"

	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// Phase is one step of an incremental crawl-and-rank sequence: a crawl
// snapshot plus the mapping of its pages onto the previous snapshot
// (crawler.CarryOver produces it). CarryOver[p] is the previous-phase
// index of page p, or -1 for a newly crawled page; nil CarryOver
// cold-starts the phase.
type Phase struct {
	Graph     webgraph.Store
	CarryOver []int32
}

// RunIncremental ranks a sequence of growing crawl snapshots, warm-
// starting each phase from the previous phase's final ranks. This is
// the paper's §4.3 dynamic-graph setting made concrete: the crawler
// keeps discovering pages, and rankers continue from their current
// state instead of recomputing from zero. cfg.Graph is ignored; each
// phase supplies its own. The returned slice holds one Result per
// phase, each with its own centralized reference.
func RunIncremental(cfg Config, phases []Phase) ([]*Result, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("engine: no phases")
	}
	results := make([]*Result, 0, len(phases))
	var prev vecmath.Vec
	for i, ph := range phases {
		if ph.Graph == nil {
			return nil, fmt.Errorf("engine: phase %d has no graph", i)
		}
		c := cfg
		c.Graph = ph.Graph
		var initial vecmath.Vec
		if prev != nil && ph.CarryOver != nil {
			if len(ph.CarryOver) != ph.Graph.NumPages() {
				return nil, fmt.Errorf("engine: phase %d carry-over has length %d, want %d",
					i, len(ph.CarryOver), ph.Graph.NumPages())
			}
			initial = vecmath.NewVec(ph.Graph.NumPages())
			for p, co := range ph.CarryOver {
				if co >= 0 {
					if int(co) >= len(prev) {
						return nil, fmt.Errorf("engine: phase %d carry-over index %d out of range", i, co)
					}
					initial[p] = prev[co]
				}
			}
		}
		res, err := run(c, initial)
		if err != nil {
			return nil, fmt.Errorf("engine: phase %d: %w", i, err)
		}
		results = append(results, res)
		prev = res.Final
	}
	return results, nil
}
