package engine_test

import (
	"runtime"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/webgraph"
)

// latticeConfig is the degraded-mode robustness preset: a 30% network
// partition across the first third of the run, a quarter of the rankers
// straggling the whole run, 10% background loss, and the reliable layer
// riding over all of it.
func latticeConfig(g *webgraph.Graph) engine.Config {
	return engine.Config{
		Params: dprcore.Params{
			Alg: dprcore.DPR1, T1: 0.5, T2: 3,
			Fault: dprcore.FaultConfig{
				DropProb:      0.1,
				PartitionFrac: 0.3, PartitionFrom: 0, PartitionTo: 60,
				StraggleFrac: 0.25, StraggleFactor: 2,
				// Seed 1 cuts rankers {1,6} minority and marks {4,7}
				// stragglers — all four emit cross-group traffic on
				// this graph, so both fault kinds actually fire.
				Seed: 1,
			},
			Reliable: dprcore.ReliableConfig{Timeout: 10},
		},
		Graph: g, K: 8, Seed: 11, SampleEvery: 5, MaxTime: 450, TargetRelErr: 1e-4,
	}
}

// TestPartitionStragglerRunsBitIdenticalAcrossParallelism pins the
// fault lattice's determinism: partition membership and straggler
// hold-backs are pure hashes plus virtual-time events (zero RNG draws),
// so a run combining them with probabilistic loss and retransmission
// timers must fingerprint identically at any GOMAXPROCS.
func TestPartitionStragglerRunsBitIdenticalAcrossParallelism(t *testing.T) {
	g := detGraph(t)
	cfg := latticeConfig(g)
	var want uint64
	var wantFaults engine.FaultStats
	for i, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		res, err := engine.Run(cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if res.FaultStats.Partitioned == 0 || res.FaultStats.Straggled == 0 {
			t.Fatalf("procs=%d: fault stats %+v — lattice idle, nothing to pin", procs, res.FaultStats)
		}
		got := fingerprint(t, res)
		if i == 0 {
			want, wantFaults = got, res.FaultStats
		} else {
			if got != want {
				t.Fatalf("procs=%d: partitioned fingerprint %#016x differs from serial %#016x", procs, got, want)
			}
			if res.FaultStats != wantFaults {
				t.Fatalf("procs=%d: fault stats %+v differ from serial %+v", procs, res.FaultStats, wantFaults)
			}
		}
	}
}
