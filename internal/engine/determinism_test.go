package engine_test

import (
	"fmt"
	"hash/fnv"
	"math"
	"path/filepath"
	"runtime"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/partition"
	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// The determinism suite is the tentpole's acceptance test: the parallel
// kernels and the parallel compute-phase executor must produce results
// bit-identical to serial execution at any GOMAXPROCS and any CSR shard
// count. Each preset below is a reduced-scale Figure 6/7/8 run; its
// whole observable output (reference, final ranks, every sample) is
// fingerprinted and compared across the execution matrix.

func detGraph(t *testing.T) *webgraph.Graph {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(2500)
	cfg.Sites = 40
	cfg.Seed = 5
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return g
}

// detPresets are reduced-scale stand-ins for the paper figures: Fig 6
// (DPR1, lossy sends, indirect transport), Fig 7 (DPR1, by-site), and
// Fig 8 (DPR2, fixed wait, direct transport).
func detPresets(g webgraph.Store) map[string]engine.Config {
	return map[string]engine.Config{
		"fig6": {
			Params: dprcore.Params{Alg: dprcore.DPR1, SendProb: 0.7, T1: 0, T2: 6},
			Graph:  g, K: 8, Seed: 3, SampleEvery: 2, MaxTime: 30,
			Transport: transport.Indirect, Strategy: partition.BySite,
		},
		"fig7": {
			Params: dprcore.Params{Alg: dprcore.DPR1, T1: 0, T2: 6},
			Graph:  g, K: 6, Seed: 4, SampleEvery: 2, MaxTime: 24,
			Transport: transport.Indirect, Strategy: partition.BySite,
		},
		"fig8": {
			Params: dprcore.Params{Alg: dprcore.DPR2, T1: 15, T2: 15},
			Graph:  g, K: 8, Seed: 5, SampleEvery: 5, MaxTime: 120, TargetRelErr: 1e-3,
			Transport: transport.Direct, Strategy: partition.ByPage,
		},
	}
}

// fingerprint hashes every float the run exposes, by bits — any change
// in any low bit of any sample or rank changes the digest.
func fingerprint(t *testing.T, res *engine.Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	word := func(v float64) {
		b := math.Float64bits(v)
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	vec := func(x vecmath.Vec) {
		for _, v := range x {
			word(v)
		}
	}
	vec(res.Reference)
	vec(res.Final)
	word(res.RelErr)
	word(res.ConvergedAt)
	word(res.LoopsAtConvergence)
	for _, s := range res.Samples {
		word(s.Time)
		word(s.RelErr)
		word(s.AvgRank)
		word(s.MeanLoops)
	}
	fmt.Fprintf(h, "samples=%d msgs=%d bytes=%d",
		len(res.Samples), res.NetStats.MessagesSent, res.NetStats.BytesSent)
	return h.Sum64()
}

func TestRunsBitIdenticalAcrossParallelism(t *testing.T) {
	g := detGraph(t)
	for name, cfg := range detPresets(g) {
		t.Run(name, func(t *testing.T) {
			// Serial baseline: single shard per matrix, one scheduler thread.
			prevShards := vecmath.SetDefaultCSRShards(1)
			prevProcs := runtime.GOMAXPROCS(1)
			base, err := engine.Run(cfg)
			runtime.GOMAXPROCS(prevProcs)
			vecmath.SetDefaultCSRShards(prevShards)
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			want := fingerprint(t, base)

			for _, procs := range []int{1, 2, 8} {
				for _, shards := range []int{1, 4, 16} {
					prevShards := vecmath.SetDefaultCSRShards(shards)
					prevProcs := runtime.GOMAXPROCS(procs)
					res, err := engine.Run(cfg)
					runtime.GOMAXPROCS(prevProcs)
					vecmath.SetDefaultCSRShards(prevShards)
					if err != nil {
						t.Fatalf("procs=%d shards=%d: %v", procs, shards, err)
					}
					if got := fingerprint(t, res); got != want {
						t.Fatalf("procs=%d shards=%d: fingerprint %x differs from serial %x",
							procs, shards, got, want)
					}
				}
			}
		})
	}
}

// fig6GoldenFingerprint is the fig6 preset's fingerprint as measured
// on the pre-refactor tree (before the DPR loop moved to
// internal/dprcore), pinning the extraction as behavior-preserving on
// the simulation path: same seed, same schedule, same floats, bit for
// bit. If an *intentional* algorithmic change shifts it, re-capture
// the value and say so in the commit.
const fig6GoldenFingerprint = 0xb51aa41cefefc9c4

// TestFig6FingerprintMatchesPreRefactorGolden runs the fig6 preset
// through the refactored ranker driver (dprcore.Loop under the simnet
// scheduler) at GOMAXPROCS 1 and 8 and requires the exact pre-refactor
// fingerprint both times.
func TestFig6FingerprintMatchesPreRefactorGolden(t *testing.T) {
	g := detGraph(t)
	cfg := detPresets(g)["fig6"]
	for _, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		res, err := engine.Run(cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if got := fingerprint(t, res); got != fig6GoldenFingerprint {
			t.Fatalf("procs=%d: fig6 fingerprint %#016x != pre-refactor golden %#016x",
				procs, got, uint64(fig6GoldenFingerprint))
		}
	}
}

// fig7/fig8 golden fingerprints, captured on the binary-heap scheduler
// immediately before the calendar-queue rewrite. Together with fig6 they
// cover all three transports/presets: the calendar queue, the Timer
// re-arm path, and the sparse transport outbox must pop and send in the
// exact (at, seq) order the old global heap produced.
const (
	fig7GoldenFingerprint = 0xccd8cf73dcfebc42
	fig8GoldenFingerprint = 0xcf7b4bf6ae1eb2ed
)

// TestSchedulerFingerprintsMatchHeapGoldens runs the fig7 and fig8
// presets at GOMAXPROCS 1 and 8 and requires the fingerprints captured
// on the pre-calendar-queue scheduler, bit for bit.
func TestSchedulerFingerprintsMatchHeapGoldens(t *testing.T) {
	g := detGraph(t)
	presets := detPresets(g)
	for _, tc := range []struct {
		name   string
		golden uint64
	}{
		{"fig7", fig7GoldenFingerprint},
		{"fig8", fig8GoldenFingerprint},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, procs := range []int{1, 8} {
				prev := runtime.GOMAXPROCS(procs)
				res, err := engine.Run(presets[tc.name])
				runtime.GOMAXPROCS(prev)
				if err != nil {
					t.Fatalf("procs=%d: %v", procs, err)
				}
				if got := fingerprint(t, res); got != tc.golden {
					t.Fatalf("procs=%d: %s fingerprint %#016x != pre-calendar-queue golden %#016x",
						procs, tc.name, got, tc.golden)
				}
			}
		})
	}
}

// TestFig6FingerprintUnchangedByObservers is the tentpole's determinism
// claim: attaching telemetry — the no-op observer or the full in-sim
// collector — must not move a single bit of the run. The fig6 preset
// must reproduce the pre-refactor golden fingerprint with each observer
// installed, serial and parallel, and the collector must actually have
// seen the run (non-vacuous).
func TestFig6FingerprintUnchangedByObservers(t *testing.T) {
	g := detGraph(t)
	base := detPresets(g)["fig6"]
	for _, procs := range []int{1, 8} {
		for name, obs := range map[string]telemetry.Observer{
			"noop": telemetry.Noop{},
			"sim":  telemetry.NewSimCollector(base.K),
		} {
			cfg := base
			cfg.Observer = obs
			prev := runtime.GOMAXPROCS(procs)
			res, err := engine.Run(cfg)
			runtime.GOMAXPROCS(prev)
			if err != nil {
				t.Fatalf("procs=%d obs=%s: %v", procs, name, err)
			}
			if got := fingerprint(t, res); got != fig6GoldenFingerprint {
				t.Fatalf("procs=%d obs=%s: fingerprint %#016x != golden %#016x",
					procs, name, got, uint64(fig6GoldenFingerprint))
			}
			if name == "sim" {
				sum := res.Telemetry
				if sum == nil {
					t.Fatalf("procs=%d: SimCollector installed but Result.Telemetry nil", procs)
				}
				if sum.Rounds == 0 || sum.Chunks == 0 || sum.PayloadBytes == 0 ||
					sum.ChunkHops < sum.Chunks || len(sum.Milestones) == 0 {
					t.Fatalf("procs=%d: collector saw a vacuous run: %+v", procs, sum)
				}
			} else if res.Telemetry != nil {
				t.Fatalf("procs=%d: Noop observer produced a Telemetry summary", procs)
			}
		}
	}
}

// TestGoldenFingerprintsBothStores is the storage refactor's acceptance
// test: the same presets ranked off the mmap-backed on-disk store must
// reproduce the in-memory goldens bit for bit — the Store seam is
// purely a representation change, invisible to every float downstream.
func TestGoldenFingerprintsBothStores(t *testing.T) {
	g := detGraph(t)
	path := filepath.Join(t.TempDir(), "det.bin")
	if err := webgraph.WriteMappedFile(path, g); err != nil {
		t.Fatalf("writing mapped graph: %v", err)
	}
	m, err := webgraph.OpenMapped(path)
	if err != nil {
		t.Fatalf("opening mapped graph: %v", err)
	}
	defer m.Close()
	if m.Fingerprint() != g.Fingerprint() {
		t.Fatalf("store fingerprints disagree before ranking: mem %#x disk %#x",
			g.Fingerprint(), m.Fingerprint())
	}

	goldens := map[string]uint64{
		"fig6": fig6GoldenFingerprint,
		"fig7": fig7GoldenFingerprint,
		"fig8": fig8GoldenFingerprint,
	}
	for _, store := range []struct {
		name string
		g    webgraph.Store
	}{{"mem", g}, {"mapped", m}} {
		presets := detPresets(store.g)
		for name, golden := range goldens {
			t.Run(store.name+"/"+name, func(t *testing.T) {
				for _, procs := range []int{1, 8} {
					prev := runtime.GOMAXPROCS(procs)
					res, err := engine.Run(presets[name])
					runtime.GOMAXPROCS(prev)
					if err != nil {
						t.Fatalf("procs=%d: %v", procs, err)
					}
					if got := fingerprint(t, res); got != golden {
						t.Fatalf("procs=%d store=%s: %s fingerprint %#016x != golden %#016x",
							procs, store.name, name, got, golden)
					}
				}
			})
		}
	}
}

// TestSharedReferenceMatchesOwnReference checks that handing a
// precomputed R* to Config.Reference changes nothing about the run.
func TestSharedReferenceMatchesOwnReference(t *testing.T) {
	g := detGraph(t)
	cfg := detPresets(g)["fig6"]
	own, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.Reference(g, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Reference = ref
	shared, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, own) != fingerprint(t, shared) {
		t.Fatal("run with shared reference differs from self-computed reference")
	}
}
