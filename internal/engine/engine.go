// Package engine orchestrates a full distributed page-ranking
// experiment: it builds the overlay, partitions the crawl, wires K
// asynchronous rankers to a transport fabric over the simulated
// network, runs them against the centralized reference vector, and
// records the time series behind the paper's Figures 6–8.
package engine

import (
	"fmt"

	"p2prank/internal/chord"
	"p2prank/internal/dprcore"
	"p2prank/internal/nodeid"
	"p2prank/internal/overlay"
	"p2prank/internal/pagerank"
	"p2prank/internal/partition"
	"p2prank/internal/pastry"
	"p2prank/internal/ranker"
	"p2prank/internal/simnet"
	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// OverlayKind selects the structured overlay implementation.
type OverlayKind int

const (
	// Pastry is the overlay the paper runs on.
	Pastry OverlayKind = iota
	// Chord demonstrates overlay-independence of the ranking layer.
	Chord
)

// String returns the overlay name.
func (k OverlayKind) String() string {
	switch k {
	case Pastry:
		return "pastry"
	case Chord:
		return "chord"
	}
	return fmt.Sprintf("OverlayKind(%d)", int(k))
}

// Config describes one experiment. Zero values select the defaults
// noted per field; Graph, K, and MaxTime are required.
//
// The algorithm knobs (Alg, Alpha, InnerEpsilon, SendProb, T1/T2,
// Fault, Observer) live in the embedded dprcore.Params, the
// configuration surface shared with netpeer — see DESIGN.md §9.
// Engine-specific notes: T1/T2 are in virtual time units and default
// to 15/15 (the Figure 8 setting); drawn means are clamped to at
// least MinMeanWait to keep event counts finite. An Observer that is
// a *telemetry.SimCollector additionally gets the simulator as its
// clock, the overlay route lengths as its hop source, and its
// aggregate published in Result.Telemetry.
type Config struct {
	// Params are the shared DPR loop parameters (see dprcore.Params).
	dprcore.Params
	// Graph is the crawl to rank; any Store works (in-memory Graph or
	// an mmap-backed Mapped that must stay open for the whole run).
	Graph webgraph.Store
	// K is the number of page rankers.
	K int
	// Strategy selects the page-partitioning strategy (default BySite).
	Strategy partition.Strategy
	// Transport selects direct or indirect transmission (default
	// Indirect, the paper's scalable scheme).
	Transport transport.Kind
	// Overlay selects Pastry or Chord (default Pastry).
	Overlay OverlayKind
	// Seed drives all randomness (default 1).
	Seed uint64
	// Net configures the simulated network (zero → DefaultNetConfig).
	Net simnet.NetConfig
	// Size configures wire sizes (zero → DefaultSizeModel).
	Size transport.SizeModel
	// Codec optionally encodes score chunks on the wire (see
	// internal/codec): message sizes then reflect the real encoding,
	// and lossy codecs genuinely perturb the exchanged scores. Nil
	// keeps the paper's analytic l-bytes-per-link accounting.
	Codec transport.ChunkCodec
	// Reference optionally supplies the centralized PageRank fixed
	// point R* (page-indexed, as returned by Reference). When nil the
	// run computes it itself; experiment suites that run several curves
	// over one graph compute it once and share it across runs.
	Reference vecmath.Vec
	// SampleEvery is the sampling interval for the time series
	// (default 5 time units).
	SampleEvery float64
	// MaxTime is the virtual-time horizon; the run always stops here.
	MaxTime float64
	// TargetRelErr stops the run early once the global relative error
	// against centralized PageRank drops to this threshold (0 = run to
	// MaxTime). Figure 8 uses 1e-4 (0.01%).
	TargetRelErr float64
	// Disruptions take rankers offline for windows of virtual time —
	// the paper's §4.2 asynchrony model taken to its extreme ("sleep
	// for some time, suspend itself as its wish, or even shutdown").
	// While down, a ranker's host drops all traffic and its loops
	// no-op; on recovery it resumes from its pre-outage state.
	Disruptions []Disruption
	// Churn schedules ranker crash/restart cycles — full node failure,
	// one step beyond Disruptions' suspend/resume: a crashed ranker
	// loses its in-memory state and its host drops traffic; at restart
	// it resumes cold (R0 = 0) or warm from its last checkpoint (see
	// Params.Checkpoint; the engine installs an in-memory sink when a
	// FromCheckpoint event needs one). Crash and restart are serial
	// virtual-time events, so a seeded churn schedule is part of the
	// deterministic run: same seed + schedule, byte-identical results
	// at any GOMAXPROCS.
	Churn []ChurnEvent
}

// Disruption is one ranker outage window.
type Disruption struct {
	// Ranker is the index of the ranker to take down.
	Ranker int
	// From and To bound the outage in virtual time (From < To).
	From, To float64
}

// ChurnEvent is one ranker crash/restart cycle.
type ChurnEvent struct {
	// Ranker is the index of the ranker to crash.
	Ranker int
	// CrashAt and RestartAt bound the outage in virtual time
	// (CrashAt < RestartAt <= MaxTime).
	CrashAt, RestartAt float64
	// FromCheckpoint restarts the ranker from its last checkpoint
	// instead of cold (R0 = 0).
	FromCheckpoint bool
}

// MinMeanWait is the lower clamp for a ranker's mean waiting time. A
// zero mean would schedule unboundedly many loops at one instant.
const MinMeanWait = 0.1

func (c *Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("engine: Graph is required")
	}
	if c.K <= 0 {
		return fmt.Errorf("engine: K = %d, must be positive", c.K)
	}
	if c.MaxTime <= 0 {
		return fmt.Errorf("engine: MaxTime = %v, must be positive", c.MaxTime)
	}
	c.Params.Defaults(15, 15)
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Net == (simnet.NetConfig{}) {
		c.Net = simnet.DefaultNetConfig()
	}
	if c.Size == (transport.SizeModel{}) {
		c.Size = transport.DefaultSizeModel()
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 5
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("engine: negative SampleEvery %v", c.SampleEvery)
	}
	if c.TargetRelErr < 0 {
		return fmt.Errorf("engine: negative TargetRelErr %v", c.TargetRelErr)
	}
	for i, d := range c.Disruptions {
		if d.Ranker < 0 || d.Ranker >= c.K {
			return fmt.Errorf("engine: disruption %d targets ranker %d of %d", i, d.Ranker, c.K)
		}
		if d.From < 0 || d.To <= d.From {
			return fmt.Errorf("engine: disruption %d window [%v, %v) invalid", i, d.From, d.To)
		}
		if d.To > c.MaxTime {
			return fmt.Errorf("engine: disruption %d ends at %v, beyond MaxTime %v", i, d.To, c.MaxTime)
		}
	}
	needLoad := false
	for i, ev := range c.Churn {
		if ev.Ranker < 0 || ev.Ranker >= c.K {
			return fmt.Errorf("engine: churn %d targets ranker %d of %d", i, ev.Ranker, c.K)
		}
		if ev.CrashAt < 0 || ev.RestartAt <= ev.CrashAt {
			return fmt.Errorf("engine: churn %d window [%v, %v) invalid", i, ev.CrashAt, ev.RestartAt)
		}
		if ev.RestartAt > c.MaxTime {
			return fmt.Errorf("engine: churn %d restarts at %v, beyond MaxTime %v", i, ev.RestartAt, c.MaxTime)
		}
		if ev.FromCheckpoint {
			needLoad = true
		}
	}
	if needLoad && c.Checkpoint.Every == 0 {
		c.Checkpoint.Every = 5
	}
	if needLoad && c.Checkpoint.Sink != nil {
		if _, ok := c.Checkpoint.Sink.(*dprcore.MemCheckpointer); !ok {
			return fmt.Errorf("engine: FromCheckpoint churn needs a *dprcore.MemCheckpointer sink (or nil for the default)")
		}
	}
	return nil
}

// Sample is one point of the experiment time series.
type Sample struct {
	// Time is the virtual time of the sample.
	Time float64
	// RelErr is ‖R − R*‖₁/‖R*‖₁ against centralized PageRank.
	RelErr float64
	// AvgRank is the mean page rank (the Figure 7 metric).
	AvgRank float64
	// MeanLoops is the mean main-loop count across rankers.
	MeanLoops float64
}

// Result is the outcome of one experiment run.
type Result struct {
	// Samples is the recorded time series, one entry per SampleEvery.
	Samples []Sample
	// Final is the assembled global rank vector at the end of the run.
	Final vecmath.Vec
	// Reference is the centralized PageRank fixed point R*.
	Reference vecmath.Vec
	// RelErr is the final relative error.
	RelErr float64
	// ConvergedAt is the virtual time TargetRelErr was reached, or -1.
	ConvergedAt float64
	// LoopsAtConvergence is the mean ranker loop count when the target
	// was reached (or at MaxTime when it was not) — the Figure 8
	// "number of iterations" metric.
	LoopsAtConvergence float64
	// FaultStats counts injected message faults (all zero when
	// Config.Fault is disabled).
	FaultStats FaultStats
	// ReliableStats counts the reliable-delivery layer's retries, acks,
	// and breaker trips (all zero when Config.Reliable is disabled).
	ReliableStats dprcore.ReliableStats
	// Recoveries is the number of checkpoint restores performed by
	// Config.Churn restarts (cold restarts don't count).
	Recoveries int64
	// NetStats are network-level counters for the whole run.
	NetStats simnet.Stats
	// TransportStats are transport-level counters for the whole run.
	TransportStats transport.Stats
	// AvgHops is the overlay's measured mean lookup hop count.
	AvgHops float64
	// AvgNeighbors is the overlay's mean neighbor count (g in S_it=gN).
	AvgNeighbors float64
	// Cut describes the partition quality.
	Cut partition.CutStats
	// PagesPerRanker is each ranker's page-group size. Under by-site
	// partitioning with few sites, some rankers own nothing.
	PagesPerRanker []int
	// Telemetry is the in-sim collector's aggregate, filled when
	// Config.Observer is a *telemetry.SimCollector (nil otherwise).
	Telemetry *telemetry.Summary
	// Events is the number of simulator events the run executed —
	// paired with wall time it gives the scale experiments their
	// events/sec throughput metric.
	Events uint64
}

// FaultStats counts the faults a run's injector applied.
type FaultStats struct {
	// Dropped is the number of chunks discarded outright.
	Dropped int64
	// Delayed is the number of chunks held back and re-injected later.
	Delayed int64
	// Duplicated is the number of chunks sent twice.
	Duplicated int64
	// Partitioned is the number of chunks blackholed by an active
	// network partition.
	Partitioned int64
	// Straggled is the number of chunks straggler nodes held back.
	Straggled int64
}

// cluster is the assembled machinery of one run.
type cluster struct {
	cfg     Config
	sim     *simnet.Simulator
	net     *simnet.Network
	ov      overlay.Network
	fab     *transport.Fabric
	faults  *dprcore.FaultSender     // nil unless cfg.Fault.Enabled()
	rel     *dprcore.ReliableSender  // nil unless cfg.Reliable.Enabled()
	ckpt    *dprcore.MemCheckpointer // nil unless checkpoint restarts need loads
	assign  *partition.Assignment
	rankers []*ranker.Ranker
}

// BuildOverlay constructs the requested overlay over k ranker IDs
// (hashed from stable names, as a DHT would).
func BuildOverlay(kind OverlayKind, k int) (overlay.Network, error) {
	ids := make([]nodeid.ID, k)
	for i := range ids {
		ids[i] = nodeid.Hash(fmt.Sprintf("p2prank-ranker-%d", i))
	}
	switch kind {
	case Pastry:
		return pastry.New(ids, pastry.DefaultConfig())
	case Chord:
		return chord.New(ids, chord.DefaultConfig())
	}
	return nil, fmt.Errorf("engine: unknown overlay kind %d", int(kind))
}

func build(cfg Config) (*cluster, error) {
	sim := simnet.New(cfg.Seed)
	net, err := simnet.NewNetwork(sim, cfg.Net)
	if err != nil {
		return nil, err
	}
	ov, err := BuildOverlay(cfg.Overlay, cfg.K)
	if err != nil {
		return nil, err
	}
	fab, err := transport.NewFabric(net, ov, cfg.Transport, cfg.Size)
	if err != nil {
		return nil, err
	}
	if cfg.Codec != nil {
		if err := fab.SetCodec(cfg.Codec); err != nil {
			return nil, err
		}
	}
	assign, err := partition.Assign(cfg.Graph, ov, cfg.Strategy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	groups, err := dprcore.BuildGroups(cfg.Graph, assign, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	if cfg.Observer != nil {
		// Collectors that want timestamps or hop attribution get the
		// simulator's virtual clock and the overlay's route lengths; the
		// optional-interface probes keep telemetry a leaf package.
		if cs, ok := cfg.Observer.(telemetry.ClockSetter); ok {
			cs.SetClock(sim)
		}
		if hs, ok := cfg.Observer.(telemetry.HopsSetter); ok {
			hs.SetHops(overlayHops(ov, cfg.Transport, cfg.Seed))
		}
	}
	root := xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	var sender dprcore.Sender = fab
	var faults *dprcore.FaultSender
	if cfg.Fault.Enabled() {
		// The fault-lattice seed defaults to the run seed so partition
		// and straggler membership re-cut with -seed like everything
		// else; an explicit Fault.Seed pins the cut independently.
		if cfg.Fault.Seed == 0 {
			cfg.Fault.Seed = cfg.Seed
		}
		// The fault stream is forked only when faults are on, so a
		// disabled config draws nothing and runs stay bit-identical.
		// The simulator is the Clock: delays land on virtual time.
		faults, err = dprcore.NewFaultSender(fab, sim, root.Fork(), cfg.Fault)
		if err != nil {
			return nil, err
		}
		faults.Observe(cfg.Observer)
		sender = faults
	}
	var rel *dprcore.ReliableSender
	if cfg.Reliable.Enabled() {
		// Reliability layers above the fault injector so retransmissions
		// are themselves subject to injected loss. Its jitter stream is
		// forked only when enabled — same bit-identity rule as faults.
		rel, err = dprcore.NewReliableSender(sender, sim, root.Fork(), cfg.Reliable)
		if err != nil {
			return nil, err
		}
		rel.Observe(cfg.Observer)
		sender = rel
	}
	var ckpt *dprcore.MemCheckpointer
	needLoad := false
	for _, ev := range cfg.Churn {
		if ev.FromCheckpoint {
			needLoad = true
		}
	}
	if needLoad {
		if cfg.Checkpoint.Sink == nil {
			cfg.Checkpoint.Sink = dprcore.NewMemCheckpointer()
		}
		ckpt = cfg.Checkpoint.Sink.(*dprcore.MemCheckpointer) // validate() pinned the type
	}
	rankers := make([]*ranker.Ranker, cfg.K)
	for i := 0; i < cfg.K; i++ {
		mean := cfg.T1 + root.Float64()*(cfg.T2-cfg.T1)
		if mean < MinMeanWait {
			mean = MinMeanWait
		}
		rk, err := ranker.New(groups[i], cfg.Params, mean, sim, sender, root.Fork())
		if err != nil {
			return nil, err
		}
		deliver := rk.Deliver
		if rel != nil {
			// Acked delivery: every chunk that reaches its owner is
			// acknowledged straight back to its source (end-to-end, one
			// hop). Wrapped only when reliability is on, so disabled
			// configs keep the exact pre-existing delivery path.
			i, rk := i, rk
			deliver = func(c transport.ScoreChunk) {
				rk.Deliver(c)
				fab.SendAck(i, c.SrcGroup, c.Round)
			}
			if err := fab.RegisterAck(i, func(src int32, round int64) {
				rel.Ack(i, src, round)
			}); err != nil {
				return nil, err
			}
		}
		if err := fab.Register(i, deliver); err != nil {
			return nil, err
		}
		rankers[i] = rk
	}
	return &cluster{
		cfg: cfg, sim: sim, net: net, ov: ov, fab: fab, faults: faults,
		rel: rel, ckpt: ckpt, assign: assign, rankers: rankers,
	}, nil
}

// overlayHops returns the chunk hop source for telemetry collectors:
// the overlay route length from the sender to the destination group's
// node under indirect transmission, 1 under direct (the payload takes
// one trip after the lookup). Routes are memoized — the overlay is
// static for the duration of a run. Past hopsExactMaxK rankers,
// per-pair routing (and its memo) would dominate the run, so chunks
// are attributed the overlay's sampled mean hop count instead.
func overlayHops(ov overlay.Network, kind transport.Kind, seed uint64) func(src, dst int) int {
	if kind != transport.Indirect {
		return func(src, dst int) int { return 1 }
	}
	const hopsExactMaxK = 4096
	if ov.NumNodes() > hopsExactMaxK {
		est := 0
		return func(src, dst int) int {
			if est == 0 {
				est = 1
				if h, err := overlay.AvgHops(ov, 200, xrand.New(seed^0x5bd1e995)); err == nil && h > 1 {
					est = int(h + 0.5)
				}
			}
			return est
		}
	}
	// The memo is capped: at paper scale the set of observed
	// (src, dst) pairs approaches K², which would quietly pin gigabytes
	// for a telemetry nicety. Past the cap, extra pairs recompute.
	const memoMax = 1 << 18
	memo := make(map[[2]int]int)
	return func(src, dst int) int {
		key := [2]int{src, dst}
		if h, ok := memo[key]; ok {
			return h
		}
		h := 1
		if path, err := overlay.Route(ov, src, ov.NodeID(dst)); err == nil && len(path) > 1 {
			h = len(path) - 1
		}
		if len(memo) < memoMax {
			memo[key] = h
		}
		return h
	}
}

// assemble copies every ranker's local ranks into a global vector.
func (cl *cluster) assemble(dst vecmath.Vec) {
	for _, rk := range cl.rankers {
		r := rk.Ranks()
		for li, p := range rk.Group().Pages {
			dst[p] = r[li]
		}
	}
}

func (cl *cluster) meanLoops() float64 {
	var sum int64
	for _, rk := range cl.rankers {
		sum += rk.Loops()
	}
	return float64(sum) / float64(len(cl.rankers))
}

// Run executes one experiment, ranking from R0 = 0.
func Run(cfg Config) (*Result, error) {
	return run(cfg, nil)
}

// run executes one experiment, optionally warm-starting every ranker
// from the global vector initial (page-indexed; nil means R0 = 0).
func run(cfg Config, initial vecmath.Vec) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if initial != nil && len(initial) != cfg.Graph.NumPages() {
		return nil, fmt.Errorf("engine: initial ranks have length %d, want %d",
			len(initial), cfg.Graph.NumPages())
	}
	ref := cfg.Reference
	if ref == nil {
		var err error
		ref, err = Reference(cfg.Graph, cfg.Alpha)
		if err != nil {
			return nil, err
		}
	} else if len(ref) != cfg.Graph.NumPages() {
		return nil, fmt.Errorf("engine: Reference has length %d, want %d",
			len(ref), cfg.Graph.NumPages())
	}
	cl, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if initial != nil {
		for _, rk := range cl.rankers {
			local := vecmath.NewVec(rk.Group().N())
			for li, p := range rk.Group().Pages {
				local[li] = initial[p]
			}
			if err := rk.SetInitialRanks(local); err != nil {
				return nil, err
			}
		}
	}
	res := &Result{
		Reference:   ref,
		ConvergedAt: -1,
		Cut:         partition.Cut(cfg.Graph, cl.assign),
	}
	res.PagesPerRanker = make([]int, cfg.K)
	for i, ps := range cl.assign.Pages {
		res.PagesPerRanker[i] = len(ps)
	}
	hops, err := overlay.AvgHops(cl.ov, 500, xrand.New(cfg.Seed^0xabcdef))
	if err != nil {
		return nil, err
	}
	res.AvgHops = hops
	totalN := 0
	for i := 0; i < cl.ov.NumNodes(); i++ {
		totalN += len(cl.ov.Neighbors(i))
	}
	res.AvgNeighbors = float64(totalN) / float64(cl.ov.NumNodes())

	for _, rk := range cl.rankers {
		rk.Start()
	}
	for _, d := range cfg.Disruptions {
		d := d
		cl.sim.At(d.From, func() {
			cl.net.SetDown(cl.fab.Addr(d.Ranker), true)
			cl.rankers[d.Ranker].Suspend()
		})
		cl.sim.At(d.To, func() {
			cl.net.SetDown(cl.fab.Addr(d.Ranker), false)
			cl.rankers[d.Ranker].Resume()
		})
	}
	for _, ev := range cfg.Churn {
		ev := ev
		cl.sim.At(ev.CrashAt, func() {
			// Crash: host down (in-flight traffic toward it is lost),
			// loop state destroyed, and the reliable layer forgets the
			// crashed sender's pending chunks — the checkpoint, not the
			// wrapper, is the surviving record of what was in flight.
			cl.net.SetDown(cl.fab.Addr(ev.Ranker), true)
			cl.rankers[ev.Ranker].Crash()
			if cl.rel != nil {
				cl.rel.Forget(ev.Ranker)
			}
		})
		cl.sim.At(ev.RestartAt, func() {
			cl.net.SetDown(cl.fab.Addr(ev.Ranker), false)
			var snap []byte
			if ev.FromCheckpoint && cl.ckpt != nil {
				if data, _, ok := cl.ckpt.Load(ev.Ranker); ok {
					snap = data
					res.Recoveries++
				}
			}
			if err := cl.rankers[ev.Ranker].Restart(snap); err != nil {
				panic(fmt.Sprintf("engine: restart ranker %d: %v", ev.Ranker, err))
			}
			if cl.rel != nil {
				// Senders whose breaker gave the crashed ranker up resume
				// immediately on restart instead of waiting out the cooldown.
				cl.rel.ClearBreaker(ev.Ranker)
			}
		})
	}
	global := vecmath.NewVec(cfg.Graph.NumPages())
	stopAll := func() {
		for _, rk := range cl.rankers {
			rk.Stop()
		}
	}
	var sampleAt func(t float64)
	sampleAt = func(t float64) {
		cl.sim.At(t, func() {
			cl.assemble(global)
			s := Sample{
				Time:      t,
				RelErr:    vecmath.RelErr1(global, ref),
				AvgRank:   global.Mean(),
				MeanLoops: cl.meanLoops(),
			}
			res.Samples = append(res.Samples, s)
			converged := cfg.TargetRelErr > 0 && s.RelErr <= cfg.TargetRelErr && res.ConvergedAt < 0
			if cfg.Observer != nil {
				cfg.Observer.Milestone(telemetry.Milestone{
					Time: t, RelErr: s.RelErr, MeanLoops: s.MeanLoops, Converged: converged,
				})
			}
			if converged {
				res.ConvergedAt = t
				res.LoopsAtConvergence = s.MeanLoops
				stopAll()
				return
			}
			if t+cfg.SampleEvery <= cfg.MaxTime {
				sampleAt(t + cfg.SampleEvery)
			} else {
				stopAll()
			}
		})
	}
	if cfg.SampleEvery <= cfg.MaxTime {
		sampleAt(cfg.SampleEvery)
	} else {
		cl.sim.At(cfg.MaxTime, stopAll)
	}
	cl.sim.Run(0)

	cl.assemble(global)
	res.Final = global.Clone()
	res.RelErr = vecmath.RelErr1(res.Final, ref)
	if res.ConvergedAt < 0 {
		res.LoopsAtConvergence = cl.meanLoops()
	}
	res.NetStats = cl.net.TotalStats()
	res.TransportStats = cl.fab.Stats()
	res.Events = cl.sim.Processed()
	if cl.faults != nil {
		res.FaultStats = FaultStats{
			Dropped:     cl.faults.Dropped(),
			Delayed:     cl.faults.Delayed(),
			Duplicated:  cl.faults.Duplicated(),
			Partitioned: cl.faults.Partitioned(),
			Straggled:   cl.faults.Straggled(),
		}
	}
	if cl.rel != nil {
		res.ReliableStats = cl.rel.Stats()
	}
	if sc, ok := cfg.Observer.(*telemetry.SimCollector); ok {
		sum := sc.Summary()
		res.Telemetry = &sum
	}
	return res, nil
}

// Reference computes the centralized PageRank fixed point R* that every
// run measures against, at the engine's standard tolerance. Experiment
// suites call it once per graph and pass the result to each run via
// Config.Reference instead of re-deriving it per curve.
func Reference(g webgraph.Store, alpha float64) (vecmath.Vec, error) {
	ref, err := pagerank.Open(g, pagerank.Options{
		Alpha:   alpha,
		Epsilon: 1e-12,
		MaxIter: 100000,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: centralized reference: %w", err)
	}
	return ref.Ranks, nil
}

// CPRIterations returns the number of centralized power-iteration steps
// (starting from R0 = 0, like the distributed algorithms) needed to
// bring the relative error against the fixed point below target. This
// is the CPR curve of Figure 8.
func CPRIterations(g webgraph.Store, alpha, target float64) (int, error) {
	star, err := Reference(g, alpha)
	if err != nil {
		return 0, err
	}
	return CPRIterationsFrom(g, alpha, target, star)
}

// CPRIterationsFrom is CPRIterations with the fixed point star already
// in hand (see Reference).
func CPRIterationsFrom(g webgraph.Store, alpha, target float64, star vecmath.Vec) (int, error) {
	if target <= 0 {
		return 0, fmt.Errorf("engine: target must be positive, got %v", target)
	}
	a, err := pagerank.BuildTransition(g, alpha)
	if err != nil {
		return 0, err
	}
	n := g.NumPages()
	r := vecmath.NewVec(n)
	next := vecmath.NewVec(n)
	betaE := vecmath.Const(n, 1-alpha) // βE with E = 1
	for it := 1; ; it++ {
		a.StepInto(next, r, betaE, nil)
		r, next = next, r
		if vecmath.RelErr1(r, star) <= target {
			return it, nil
		}
		if it > 100000 {
			return 0, fmt.Errorf("engine: CPR did not reach %v", target)
		}
	}
}
