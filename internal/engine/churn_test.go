package engine_test

import (
	"runtime"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/webgraph"
)

// churnConfig is the robustness preset: 10% injected loss, the reliable
// delivery layer on, checkpoints every 3 rounds, and two of the eight
// rankers crashing mid-run and restarting from their checkpoints.
func churnConfig(g *webgraph.Graph, alg dprcore.Algorithm) engine.Config {
	return engine.Config{
		Params: dprcore.Params{
			Alg: alg, T1: 0.5, T2: 3,
			Fault:      dprcore.FaultConfig{DropProb: 0.1},
			Reliable:   dprcore.ReliableConfig{Timeout: 10},
			Checkpoint: dprcore.CheckpointConfig{Every: 3},
		},
		Graph: g, K: 8, Seed: 11, SampleEvery: 5, MaxTime: 450, TargetRelErr: 1e-4,
		// Both outages sit well before either algorithm's convergence
		// (~t=65 for DPR2), so the run has to ride out the churn, not
		// merely get restated by it after the fact.
		Churn: []engine.ChurnEvent{
			{Ranker: 2, CrashAt: 20, RestartAt: 35, FromCheckpoint: true},
			{Ranker: 5, CrashAt: 30, RestartAt: 50, FromCheckpoint: true},
		},
	}
}

// TestChurnedRunsConvergeAndRecover is the tentpole's simulation
// acceptance: with two rankers crashing mid-run under 10% message loss,
// both algorithms still reach the fault-free tolerance, every crash is
// recovered from a checkpoint, and the reliable layer actually retried.
func TestChurnedRunsConvergeAndRecover(t *testing.T) {
	g := detGraph(t)
	for name, alg := range map[string]dprcore.Algorithm{"DPR1": dprcore.DPR1, "DPR2": dprcore.DPR2} {
		t.Run(name, func(t *testing.T) {
			res, err := engine.Run(churnConfig(g, alg))
			if err != nil {
				t.Fatal(err)
			}
			if res.Recoveries != 2 {
				t.Fatalf("Recoveries = %d, want both restarts from checkpoint", res.Recoveries)
			}
			if res.ReliableStats.Retries == 0 || res.ReliableStats.Acks == 0 {
				t.Fatalf("reliable stats %+v: layer never exercised", res.ReliableStats)
			}
			if res.ConvergedAt < 0 {
				t.Fatalf("%s did not reconverge after churn; final rel err %v", name, res.RelErr)
			}
			if res.RelErr > 1e-4 {
				t.Fatalf("%s final rel err %v above fault-free tolerance", name, res.RelErr)
			}
		})
	}
}

// TestChurnRunsBitIdenticalAcrossParallelism pins the failure path's
// determinism: crash events, checkpointed restarts, retransmission
// timers, and ack deliveries are all virtual-time events, so the whole
// churned run must fingerprint identically at any GOMAXPROCS.
func TestChurnRunsBitIdenticalAcrossParallelism(t *testing.T) {
	g := detGraph(t)
	cfg := churnConfig(g, dprcore.DPR1)
	var want uint64
	for i, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		res, err := engine.Run(cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		got := fingerprint(t, res)
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("procs=%d: churned fingerprint %#016x differs from serial %#016x", procs, got, want)
		}
	}
}

func TestChurnConfigValidation(t *testing.T) {
	g := detGraph(t)
	base := churnConfig(g, dprcore.DPR1)
	for name, churn := range map[string][]engine.ChurnEvent{
		"ranker out of range": {{Ranker: 8, CrashAt: 1, RestartAt: 2}},
		"window inverted":     {{Ranker: 0, CrashAt: 5, RestartAt: 5}},
		"restart past end":    {{Ranker: 0, CrashAt: 1, RestartAt: 1e9}},
	} {
		cfg := base
		cfg.Churn = churn
		if _, err := engine.Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
