package pagerank

import (
	"fmt"

	"p2prank/internal/vecmath"
)

// GroupSystem is the open-system equation of one page group
// (Algorithm 2): R = A·R + βE + X. A is the transposed intra-group
// transition matrix (row v gathers α/d(u) over inner links u→v), BetaE
// is the precomputed virtual-link source βE, and X is the afferent rank
// vector refreshed from other groups by the distributed loop.
type GroupSystem struct {
	A     *vecmath.CSR
	BetaE vecmath.Vec
}

// NewGroupSystem builds a GroupSystem from local links. n is the number
// of pages in the group, links are (src,dst) pairs in local indices,
// deg[u] is the TOTAL out-degree of local page u (inner + efferent +
// external), e is the E vector restricted to the group (nil for the
// paper's E(v)=1), and alpha is the real-link rank fraction.
func NewGroupSystem(n int, links [][2]int32, deg []int32, e vecmath.Vec, alpha float64) (*GroupSystem, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("pagerank: alpha = %v, must be in (0,1)", alpha)
	}
	if len(deg) != n {
		return nil, fmt.Errorf("pagerank: deg has length %d, want %d", len(deg), n)
	}
	entries := make([]vecmath.Entry, 0, len(links))
	for _, l := range links {
		u, v := l[0], l[1]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("pagerank: link (%d,%d) out of range for %d pages", u, v, n)
		}
		if deg[u] <= 0 {
			return nil, fmt.Errorf("pagerank: page %d has links but degree %d", u, deg[u])
		}
		entries = append(entries, vecmath.Entry{Row: int(v), Col: int(u), Val: alpha / float64(deg[u])})
	}
	a, err := vecmath.NewCSR(n, n, entries)
	if err != nil {
		return nil, err
	}
	if e == nil {
		e = vecmath.Const(n, 1)
	}
	if len(e) != n {
		return nil, fmt.Errorf("pagerank: E has length %d, want %d", len(e), n)
	}
	be := e.Clone()
	be.Scale(1 - alpha)
	return &GroupSystem{A: a, BetaE: be}, nil
}

// N returns the number of pages in the group.
func (s *GroupSystem) N() int { return len(s.BetaE) }

// NormA returns ‖A‖∞, the contraction factor certifying convergence
// (Theorem 3.2 gives ρ(A) ≤ ‖A‖∞ ≤ α < 1).
func (s *GroupSystem) NormA() float64 { return s.A.NormInf() }

// Step performs one Jacobi step dst = A·r + βE + x. This is the body of
// DPR2's loop. dst must not alias r. A nil x means X = 0.
func (s *GroupSystem) Step(dst, r, x vecmath.Vec) {
	s.A.StepInto(dst, r, s.BetaE, x)
}

// Solve runs Algorithm 2 (GroupPageRank): iterate Step from r0 until
// ‖R_{i+1} − R_i‖₁ ≤ opt.Epsilon. This is the inner loop of DPR1. The
// returned Result owns a fresh rank vector; r0 is not modified.
func (s *GroupSystem) Solve(r0, x vecmath.Vec, opt Options) (Result, error) {
	n := s.N()
	if len(r0) != n {
		return Result{}, fmt.Errorf("pagerank: r0 has length %d, want %d", len(r0), n)
	}
	return s.SolveInPlace(r0.Clone(), x, vecmath.NewVec(n), opt)
}

// SolveInPlace is Solve without the allocations: it iterates from the
// ranks already in r, using scratch (same length, no aliasing) as the
// swap buffer, and leaves the fixed point in r. Result.Ranks is r
// itself. The distributed loop calls this once per ranker wakeup, so
// the steady state allocates nothing.
func (s *GroupSystem) SolveInPlace(r, x, scratch vecmath.Vec, opt Options) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	n := s.N()
	if len(r) != n {
		return Result{}, fmt.Errorf("pagerank: r has length %d, want %d", len(r), n)
	}
	if len(scratch) != n {
		return Result{}, fmt.Errorf("pagerank: scratch has length %d, want %d", len(scratch), n)
	}
	if x != nil && len(x) != n {
		return Result{}, fmt.Errorf("pagerank: x has length %d, want %d", len(x), n)
	}
	res := Result{}
	if n == 0 {
		res.Converged = true
		res.Ranks = r
		return res, nil
	}
	cur, next := r, scratch
	for it := 0; it < opt.MaxIter; it++ {
		delta := s.A.StepDelta(next, cur, s.BetaE, x)
		cur, next = next, cur
		res.Iterations = it + 1
		res.FinalDelta = delta
		if opt.TrackResiduals {
			res.Residuals = append(res.Residuals, delta)
		}
		if delta <= opt.Epsilon {
			res.Converged = true
			break
		}
	}
	if res.Iterations%2 == 1 {
		copy(r, scratch) // odd step count: the newest iterate sits in scratch
	}
	res.Ranks = r
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}
