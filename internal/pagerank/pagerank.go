// Package pagerank implements the two centralized solvers of the paper:
//
//   - Classic: Algorithm 1, the original closed-system PageRank where the
//     crawled set is treated as the whole web and rank lost to dangling
//     links is redistributed through the source vector E.
//   - Open: the open-system variant of §3 applied to the whole crawl as a
//     single page group, R = AR + βE with A[v][u] = α/d(u) and d(u)
//     counting external links. Its fixed point is the reference vector R*
//     that the distributed algorithms (DPR1/DPR2) must converge to.
//
// It also provides GroupSystem, the per-group solver of Algorithm 2
// (GroupPageRank) used by each page ranker: R = AR + βE + X, where X is
// the afferent rank received from other groups.
package pagerank

import (
	"errors"
	"fmt"

	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// Options configures the solvers. The zero value is not usable; start
// from Defaults().
type Options struct {
	// Alpha is the fraction of a page's rank transmitted over real
	// links (the damping factor c of classic PageRank). β = 1 − Alpha
	// goes to virtual links. Must be in (0, 1).
	Alpha float64
	// E is the rank-source vector. For Open/GroupSystem the paper uses
	// E(v) = 1 for all pages; for Classic it must be a distribution
	// (entries summing to 1). Nil selects those defaults.
	E vecmath.Vec
	// Epsilon terminates iteration when ‖R_{i+1} − R_i‖₁ ≤ Epsilon.
	Epsilon float64
	// MaxIter bounds the number of iterations; 0 means 10000.
	MaxIter int
	// TrackResiduals records ‖ΔR‖₁ per iteration in Result.Residuals.
	TrackResiduals bool
}

// Defaults returns the paper's standard parameters: α = 0.85,
// ε = 1e-10, uniform E.
func Defaults() Options {
	return Options{Alpha: 0.85, Epsilon: 1e-10, MaxIter: 10000}
}

func (o *Options) validate() error {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return fmt.Errorf("pagerank: Alpha = %v, must be in (0,1)", o.Alpha)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("pagerank: negative Epsilon %v", o.Epsilon)
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10000
	}
	if o.MaxIter < 0 {
		return fmt.Errorf("pagerank: negative MaxIter %d", o.MaxIter)
	}
	return nil
}

// Result is the outcome of a solver run.
type Result struct {
	// Ranks is the final rank vector, indexed by page.
	Ranks vecmath.Vec
	// Iterations is the number of iteration steps performed.
	Iterations int
	// Converged reports whether the ε threshold was reached before
	// MaxIter.
	Converged bool
	// FinalDelta is ‖R_{i+1} − R_i‖₁ of the last step — the residual
	// the termination check compared against ε. Recorded always (a
	// scalar, unlike Residuals), so telemetry can report it without
	// turning on per-step tracking.
	FinalDelta float64
	// Residuals, if requested, holds ‖R_{i+1} − R_i‖₁ per step.
	Residuals []float64
}

// ErrNotConverged is wrapped into errors returned when MaxIter is
// exhausted before reaching Epsilon.
var ErrNotConverged = errors.New("pagerank: did not converge")

// buildTransposed streams the transposed link matrix straight into CSR
// arrays: a counting pass over the OutPtr windows sizes each
// destination row, then a scatter pass in ascending source order fills
// it. Scattering source-ascending makes every row's columns arrive
// sorted (with duplicate links adjacent), which is exactly the (row,
// col) order NewCSR's stable counting sort produces — so the resulting
// matrix, and every fingerprint downstream of it, is bit-identical to
// the old Entry-slice path while allocating only the final arrays (the
// Entry slice cost 24 transient bytes per link, ~720 MB at the 10⁵
// scale point). weight(u, internalDeg) supplies the per-source value.
func buildTransposed(g webgraph.Store, weight func(u int32, internalDeg int) float64) (*vecmath.CSR, error) {
	n := g.NumPages()
	rowPtr := make([]int64, n+1)
	for p := 0; p < n; p++ {
		for _, v := range g.InternalOut(int32(p)) {
			rowPtr[v+1]++
		}
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	nnz := rowPtr[n]
	cols := make([]int32, nnz)
	vals := make([]float64, nnz)
	next := make([]int64, n)
	copy(next, rowPtr[:n])
	for p := 0; p < n; p++ {
		u := int32(p)
		out := g.InternalOut(u)
		if len(out) == 0 {
			continue
		}
		w := weight(u, len(out))
		for _, v := range out {
			pos := next[v]
			next[v]++
			cols[pos] = u
			vals[pos] = w
		}
	}
	return vecmath.NewCSRSorted(n, n, rowPtr, cols, vals)
}

// BuildTransition assembles the transposed open-system transition matrix
// over all pages of g: row v gathers α/d(u) from every internal link
// u→v. Because d(u) also counts external links, ‖A‖∞ ≤ α < 1 and the
// open-system iteration converges (Theorems 3.1/3.2).
func BuildTransition(g webgraph.Store, alpha float64) (*vecmath.CSR, error) {
	return buildTransposed(g, func(u int32, _ int) float64 {
		return alpha / float64(g.OutDegree(u))
	})
}

// Open solves the open-system equation R = AR + βE over the whole crawl,
// producing the centralized reference vector R*. Rank flows out of the
// system through external links, so ‖R‖ settles below the closed-system
// value — the effect behind Figure 7's ≈0.3 average rank.
func Open(g webgraph.Store, opt Options) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	a, err := BuildTransition(g, opt.Alpha)
	if err != nil {
		return Result{}, err
	}
	n := g.NumPages()
	e := opt.E
	if e == nil {
		e = vecmath.Const(n, 1)
	}
	if len(e) != n {
		return Result{}, fmt.Errorf("pagerank: E has length %d, want %d", len(e), n)
	}
	sys := &GroupSystem{A: a, BetaE: e.Clone()}
	sys.BetaE.Scale(1 - opt.Alpha)
	r0 := vecmath.Const(n, 1)
	return sys.Solve(r0, nil, opt)
}

// Classic runs Algorithm 1: the closed-system power iteration with
// rank-sink compensation. R stays a distribution (‖R‖₁ = 1): each step
// computes R' = cMR with M[v][u] = 1/d_int(u) over internal links only,
// measures the lost mass D = ‖R‖₁ − ‖R'‖₁ (damping + dangling pages),
// and redistributes it as R' += D·E.
func Classic(g webgraph.Store, opt Options) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	n := g.NumPages()
	if n == 0 {
		return Result{Ranks: vecmath.NewVec(0), Converged: true}, nil
	}
	e := opt.E
	if e == nil {
		e = vecmath.Const(n, 1/float64(n))
	}
	if len(e) != n {
		return Result{}, fmt.Errorf("pagerank: E has length %d, want %d", len(e), n)
	}
	// Closed system: only internal links exist, degree is internal
	// degree, damping c = Alpha folded into the matrix.
	a, err := buildTransposed(g, func(_ int32, internalDeg int) float64 {
		return opt.Alpha / float64(internalDeg)
	})
	if err != nil {
		return Result{}, err
	}
	r := vecmath.Const(n, 1/float64(n))
	next := vecmath.NewVec(n)
	res := Result{}
	for it := 0; it < opt.MaxIter; it++ {
		a.MulVec(next, r)
		// Lost mass: damping plus dangling pages.
		d := r.Norm1() - next.Norm1()
		next.Axpy(d, e)
		delta := vecmath.Diff1(next, r)
		r, next = next, r
		res.Iterations = it + 1
		if opt.TrackResiduals {
			res.Residuals = append(res.Residuals, delta)
		}
		if delta <= opt.Epsilon {
			res.Converged = true
			break
		}
	}
	res.Ranks = r
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

// ErrorBound returns the a-posteriori bound of Theorem 3.3:
// ‖x* − x_m‖ ≤ ‖A‖/(1−‖A‖) · ‖x_m − x_{m−1}‖. It is how GroupPageRank's
// termination threshold translates into a true-error guarantee. normA
// must be < 1.
func ErrorBound(normA, lastDelta float64) float64 {
	if normA >= 1 || normA < 0 {
		return 0
	}
	return normA / (1 - normA) * lastDelta
}
