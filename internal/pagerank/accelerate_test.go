package pagerank

import (
	"testing"

	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

func TestAcceleratedMatchesPlain(t *testing.T) {
	g := genGraph(t, 3000, 31)
	opt := Defaults()
	plain, err := Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	accel, err := OpenAccelerated(g, opt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if re := vecmath.RelErr1(accel.Ranks, plain.Ranks); re > 1e-8 {
		t.Fatalf("accelerated ranks differ by %v", re)
	}
}

func TestAcceleratedSavesIterations(t *testing.T) {
	// Slow-mixing workload: high α and no external heterogeneity would
	// still decay at α·f_int; use a harder instance via larger alpha.
	cfg := webgraph.DefaultGenConfig(4000)
	cfg.Seed = 33
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.Alpha = 0.95
	opt.Epsilon = 1e-10
	plain, err := Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	accel, err := OpenAccelerated(g, opt, 5)
	if err != nil {
		t.Fatal(err)
	}
	if accel.Iterations >= plain.Iterations {
		t.Fatalf("extrapolation did not help: %d vs %d iterations",
			accel.Iterations, plain.Iterations)
	}
	if re := vecmath.RelErr1(accel.Ranks, plain.Ranks); re > 1e-7 {
		t.Fatalf("accelerated ranks differ by %v", re)
	}
}

func TestAcceleratedValidation(t *testing.T) {
	g := genGraph(t, 200, 1)
	if _, err := OpenAccelerated(g, Defaults(), 2); err == nil {
		t.Error("period 2 accepted")
	}
	bad := Defaults()
	bad.Alpha = 0
	if _, err := OpenAccelerated(g, bad, 5); err == nil {
		t.Error("bad alpha accepted")
	}
	withE := Defaults()
	withE.E = vecmath.Const(3, 1)
	if _, err := OpenAccelerated(g, withE, 5); err == nil {
		t.Error("wrong-length E accepted")
	}
}

func TestAcceleratedEmptyGraph(t *testing.T) {
	var b webgraph.Builder
	g := b.Build()
	res, err := OpenAccelerated(g, Defaults(), 5)
	if err != nil || !res.Converged {
		t.Fatalf("empty graph: %v", err)
	}
}

func TestTopicEBiasesRanks(t *testing.T) {
	g := genGraph(t, 5000, 35)
	topic := []int32{1}
	e, err := TopicE(g, topic, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Defaults()
	opt.E = e
	biased, err := Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Open(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	bm, err := SiteRankMass(g, biased.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	um, err := SiteRankMass(g, uniform.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	// The boosted site's share of total rank must grow.
	bShare := bm[1] / biased.Ranks.Sum()
	uShare := um[1] / uniform.Ranks.Sum()
	if bShare <= uShare {
		t.Fatalf("topic share did not grow: %v vs %v", bShare, uShare)
	}
}

func TestTopicEValidation(t *testing.T) {
	g := genGraph(t, 300, 1)
	if _, err := TopicE(g, []int32{99}, 1, 0); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, err := TopicE(g, []int32{0}, -1, 0); err == nil {
		t.Error("negative boost accepted")
	}
	if _, err := TopicE(g, []int32{0}, 0, 0); err == nil {
		t.Error("all-zero E accepted")
	}
}

func TestSiteRankMass(t *testing.T) {
	g := genGraph(t, 1000, 3)
	ranks := vecmath.Const(g.NumPages(), 1)
	mass, err := SiteRankMass(g, ranks)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, m := range mass {
		total += m
	}
	if total != float64(g.NumPages()) {
		t.Fatalf("mass sums to %v", total)
	}
	if _, err := SiteRankMass(g, vecmath.Const(3, 1)); err == nil {
		t.Error("wrong-length ranks accepted")
	}
}

func BenchmarkOpenAccelerated10k(b *testing.B) {
	cfg := webgraph.DefaultGenConfig(10000)
	g, err := webgraph.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	opt := Defaults()
	opt.Alpha = 0.95
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OpenAccelerated(g, opt, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// The safeguards make extrapolation never much worse than the plain
// iteration, across varied workloads.
func TestAcceleratedNeverMuchWorse(t *testing.T) {
	for _, tc := range []struct {
		pages int
		sites int
		alpha float64
		seed  uint64
	}{
		{3000, 4, 0.85, 1},
		{3000, 50, 0.95, 2},
		{5000, 20, 0.9, 3},
		{2000, 10, 0.99, 4},
	} {
		cfg := webgraph.DefaultGenConfig(tc.pages)
		cfg.Sites = tc.sites
		cfg.Seed = tc.seed
		g, err := webgraph.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt := Defaults()
		opt.Alpha = tc.alpha
		plain, err := Open(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		accel, err := OpenAccelerated(g, opt, 5)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if float64(accel.Iterations) > float64(plain.Iterations)*1.3+10 {
			t.Errorf("%+v: accelerated %d iterations vs plain %d", tc, accel.Iterations, plain.Iterations)
		}
		if re := vecmath.RelErr1(accel.Ranks, plain.Ranks); re > 1e-7 {
			t.Errorf("%+v: ranks differ by %v", tc, re)
		}
	}
}
