package pagerank

import (
	"fmt"
	"math"

	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// OpenAccelerated solves the same open-system fixed point as Open but
// applies periodic geometric extrapolation in the spirit of Kamvar,
// Haveliwala, Manning et al., "Extrapolation Methods for Accelerating
// PageRank Computations" — the paper's reference [8]. Every `every`
// iterations the dominant error mode's decay rate is estimated from
// successive difference norms, λ ≈ ‖x₂−x₁‖₁/‖x₁−x₀‖₁, and the
// remaining geometric tail is summed in closed form:
//
//	x* ≈ x₂ + λ/(1−λ) · (x₂−x₁)
//
// (Aitken Δ² applied to the sequence as a whole rather than per
// component, which is unstable when several modes have similar
// magnitude.) Two safeguards keep the method never-much-worse than the
// plain iteration: a jump is attempted only when two successive rate
// estimates agree (a single dominant mode is actually in control), and
// if a jump fails to shrink the residual the extrapolator disables
// itself for the rest of the run.
func OpenAccelerated(g webgraph.Store, opt Options, every int) (Result, error) {
	if every < 3 {
		return Result{}, fmt.Errorf("pagerank: extrapolation period %d, need ≥ 3", every)
	}
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	a, err := BuildTransition(g, opt.Alpha)
	if err != nil {
		return Result{}, err
	}
	n := g.NumPages()
	e := opt.E
	if e == nil {
		e = vecmath.Const(n, 1)
	}
	if len(e) != n {
		return Result{}, fmt.Errorf("pagerank: E has length %d, want %d", len(e), n)
	}
	betaE := e.Clone()
	betaE.Scale(1 - opt.Alpha)

	r := vecmath.Const(n, 1)
	next := vecmath.NewVec(n)
	prevDiff := vecmath.NewVec(n) // x₁−x₀ of the current window
	diff := vecmath.NewVec(n)     // x₂−x₁
	res := Result{}
	if n == 0 {
		res.Converged = true
		res.Ranks = r
		return res, nil
	}
	havePrev := false
	enabled := true
	lastRate := -1.0
	// pendingCheck > 0 means a jump just happened; compare the next
	// residual against preJumpDelta to judge it.
	pendingCheck := false
	preJumpDelta := 0.0
	for it := 0; it < opt.MaxIter; it++ {
		a.MulVec(next, r)
		next.Add(betaE)
		for i := range diff {
			diff[i] = next[i] - r[i]
		}
		delta := diff.Norm1()
		r, next = next, r
		res.Iterations = it + 1
		if opt.TrackResiduals {
			res.Residuals = append(res.Residuals, delta)
		}
		if delta <= opt.Epsilon {
			res.Converged = true
			break
		}
		if pendingCheck {
			pendingCheck = false
			if delta >= preJumpDelta {
				// The jump made things worse: this spectrum is not
				// single-mode dominated. Stop extrapolating.
				enabled = false
			}
		}
		if enabled && (it+1)%every == 0 && havePrev {
			lambda := geometricRate(prevDiff, diff)
			stable := lambda > 0 && lastRate > 0 &&
				math.Abs(lambda-lastRate) <= 0.05*lastRate
			if lambda > 0 {
				lastRate = lambda
			}
			if stable {
				// Sum the remaining geometric tail:
				// x* ≈ x₂ + λ/(1−λ)·d₂.
				r.Axpy(lambda/(1-lambda), diff)
				havePrev = false // restart the window after the jump
				pendingCheck = true
				preJumpDelta = delta
				continue
			}
		} else if havePrev {
			if lambda := geometricRate(prevDiff, diff); lambda > 0 {
				lastRate = lambda
			}
		}
		prevDiff, diff = diff, prevDiff
		havePrev = true
	}
	res.Ranks = r
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
	}
	return res, nil
}

// geometricRate estimates the dominant decay rate λ from two successive
// difference vectors. It returns 0 when the estimate is unusable (flat
// or non-contractive sequence).
func geometricRate(d1, d2 vecmath.Vec) float64 {
	n1, n2 := d1.Norm1(), d2.Norm1()
	if n1 <= 0 || n2 <= 0 {
		return 0
	}
	lambda := n2 / n1
	if math.IsNaN(lambda) || lambda <= 0 || lambda >= 0.999 {
		return 0
	}
	return lambda
}
