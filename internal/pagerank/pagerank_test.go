package pagerank

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// chain builds a 3-page chain 0 -> 1 -> 2 with one external link on 2.
func chain(t *testing.T) *webgraph.Graph {
	t.Helper()
	var b webgraph.Builder
	s := b.AddSite("a.edu")
	for i := 0; i < 3; i++ {
		b.AddPage(s)
	}
	if err := b.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddExternalLinks(2, 1); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func genGraph(t testing.TB, pages int, seed uint64) *webgraph.Graph {
	t.Helper()
	cfg := webgraph.DefaultGenConfig(pages)
	cfg.Seed = seed
	g, err := webgraph.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOpenChainExact(t *testing.T) {
	// With α=0.85, β=0.15, E=1, d(0)=d(1)=d(2)=1:
	// R0 = β; R1 = α·R0 + β; R2 = α·R1 + β.
	g := chain(t)
	opt := Defaults()
	res, err := Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	beta := 0.15
	want := vecmath.Vec{beta, 0.85*beta + beta, 0.85*(0.85*beta+beta) + beta}
	if vecmath.Diff1(res.Ranks, want) > 1e-8 {
		t.Fatalf("Open ranks = %v, want %v", res.Ranks, want)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
}

func TestOpenFixedPointResidual(t *testing.T) {
	g := genGraph(t, 3000, 7)
	opt := Defaults()
	res, err := Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildTransition(g, opt.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Residual ‖AR + βE − R‖₁ must be tiny.
	n := g.NumPages()
	ar := vecmath.NewVec(n)
	a.MulVec(ar, res.Ranks)
	ar.AddConst(1 - opt.Alpha) // βE with E=1
	if d := vecmath.Diff1(ar, res.Ranks); d > 1e-7 {
		t.Fatalf("fixed-point residual = %v", d)
	}
}

func TestOpenRanksPositive(t *testing.T) {
	g := genGraph(t, 2000, 3)
	res, err := Open(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks.Min() <= 0 {
		t.Fatalf("min rank = %v, want > 0 (Lemma 1)", res.Ranks.Min())
	}
}

// The external-leak effect behind Figure 7: with the paper-calibrated
// external fraction (8/15 of links), the converged mean rank sits near
// 0.25–0.35 rather than 1.
func TestOpenMeanRankLeak(t *testing.T) {
	g := genGraph(t, 20000, 11)
	res, err := Open(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	mean := res.Ranks.Mean()
	if mean < 0.2 || mean > 0.4 {
		t.Fatalf("mean rank = %v, want in [0.2, 0.4] (paper reports ≈0.3)", mean)
	}
}

func TestClassicIsDistribution(t *testing.T) {
	g := genGraph(t, 3000, 5)
	res, err := Classic(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Ranks.Sum()-1) > 1e-9 {
		t.Fatalf("‖R‖₁ = %v, want 1", res.Ranks.Sum())
	}
	if res.Ranks.Min() < 0 {
		t.Fatalf("negative rank %v", res.Ranks.Min())
	}
}

func TestClassicHubOutranksLeaf(t *testing.T) {
	// Star: pages 1..9 all link to page 0; page 0 dangles.
	var b webgraph.Builder
	s := b.AddSite("a.edu")
	for i := 0; i < 10; i++ {
		b.AddPage(s)
	}
	for i := 1; i < 10; i++ {
		if err := b.AddLink(int32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	res, err := Classic(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if res.Ranks[0] <= res.Ranks[i] {
			t.Fatalf("hub rank %v not above leaf rank %v", res.Ranks[0], res.Ranks[i])
		}
	}
}

func TestClassicEmptyGraph(t *testing.T) {
	var b webgraph.Builder
	g := b.Build()
	res, err := Classic(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 0 || !res.Converged {
		t.Fatalf("empty-graph result: %+v", res)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := chain(t)
	for _, opt := range []Options{
		{Alpha: 0, Epsilon: 1e-8},
		{Alpha: 1, Epsilon: 1e-8},
		{Alpha: -0.5, Epsilon: 1e-8},
		{Alpha: 0.85, Epsilon: -1},
		{Alpha: 0.85, Epsilon: 1e-8, MaxIter: -3},
	} {
		if _, err := Open(g, opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
		if _, err := Classic(g, opt); err == nil {
			t.Errorf("options %+v accepted by Classic", opt)
		}
	}
}

func TestBadEVector(t *testing.T) {
	g := chain(t)
	opt := Defaults()
	opt.E = vecmath.Const(99, 1)
	if _, err := Open(g, opt); err == nil {
		t.Error("wrong-length E accepted by Open")
	}
	if _, err := Classic(g, opt); err == nil {
		t.Error("wrong-length E accepted by Classic")
	}
}

func TestNotConvergedError(t *testing.T) {
	g := genGraph(t, 2000, 1)
	opt := Defaults()
	opt.MaxIter = 2
	opt.Epsilon = 1e-15
	_, err := Open(g, opt)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	_, err = Classic(g, opt)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("Classic err = %v, want ErrNotConverged", err)
	}
}

func TestResidualsMonotoneDecay(t *testing.T) {
	g := genGraph(t, 3000, 9)
	opt := Defaults()
	opt.TrackResiduals = true
	res, err := Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residuals) != res.Iterations {
		t.Fatalf("%d residuals for %d iterations", len(res.Residuals), res.Iterations)
	}
	// Geometric decay with ratio ≤ α must hold eventually; check the
	// last residual is far below the first.
	first, last := res.Residuals[0], res.Residuals[len(res.Residuals)-1]
	if last >= first {
		t.Fatalf("residuals did not decay: first=%v last=%v", first, last)
	}
}

func TestTransitionNormBound(t *testing.T) {
	g := genGraph(t, 5000, 13)
	const alpha = 0.85
	a, err := BuildTransition(g, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Column sums are ≤ α by construction; ‖A‖∞ (max row sum of the
	// transposed matrix) equals the max column sum of the original, so
	// it is ≤ α. This is the Theorem 3.1/3.2 convergence certificate.
	if n := a.Transpose().NormInf(); n > alpha+1e-12 {
		t.Fatalf("max column sum %v exceeds α", n)
	}
}

func TestErrorBound(t *testing.T) {
	if got := ErrorBound(0.5, 2); got != 2 {
		t.Errorf("ErrorBound(0.5,2) = %v, want 2", got)
	}
	if got := ErrorBound(1.0, 2); got != 0 {
		t.Errorf("ErrorBound must reject normA >= 1, got %v", got)
	}
	if got := ErrorBound(-0.1, 2); got != 0 {
		t.Errorf("ErrorBound must reject negative normA, got %v", got)
	}
}

// Theorem 3.3 holds empirically: the a-posteriori bound dominates the
// true error at every iteration.
func TestErrorBoundDominatesTrueError(t *testing.T) {
	g := genGraph(t, 2000, 21)
	opt := Defaults()
	opt.TrackResiduals = true
	res, err := Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	star := res.Ranks
	// Re-run with few iterations and compare.
	for _, iters := range []int{1, 3, 7, 15} {
		o := Defaults()
		o.MaxIter = iters
		o.Epsilon = 0
		o.TrackResiduals = true
		partial, err := Open(g, o)
		if partial.Converged || err == nil {
			// ε=0 can never converge; the error must be ErrNotConverged.
			if !errors.Is(err, ErrNotConverged) {
				t.Fatalf("expected ErrNotConverged, got %v", err)
			}
		}
		trueErr := vecmath.Diff1(partial.Ranks, star)
		bound := ErrorBound(opt.Alpha, partial.Residuals[len(partial.Residuals)-1])
		if trueErr > bound+1e-9 {
			t.Fatalf("iter %d: true error %v exceeds Thm 3.3 bound %v", iters, trueErr, bound)
		}
	}
}

// Lemma 1 property: for random group systems with X ≥ 0, the solution is
// non-negative.
func TestGroupSolutionNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(20)
		var links [][2]int32
		deg := make([]int32, n)
		for u := 0; u < n; u++ {
			k := r.Intn(4)
			deg[u] = int32(k + r.Intn(3)) // total degree ≥ internal links
			if deg[u] < int32(k) {
				deg[u] = int32(k)
			}
			if k > 0 && deg[u] == 0 {
				deg[u] = int32(k)
			}
			for j := 0; j < k; j++ {
				links = append(links, [2]int32{int32(u), int32(r.Intn(n))})
			}
		}
		x := vecmath.NewVec(n)
		for i := range x {
			x[i] = r.Float64() * 3
		}
		sys, err := NewGroupSystem(n, links, deg, nil, 0.85)
		if err != nil {
			return true // invalid random instance; skip
		}
		res, err := sys.Solve(vecmath.NewVec(n), x, Defaults())
		if err != nil {
			return false
		}
		return res.Ranks.Min() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Lemma 2 property: X₁ ≥ X₂ ⇒ R₁ ≥ R₂ (monotonicity of the fixed point
// in the afferent vector).
func TestGroupMonotoneInXProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(15)
		var links [][2]int32
		deg := make([]int32, n)
		for u := 0; u < n; u++ {
			k := r.Intn(4)
			deg[u] = int32(k) + int32(r.Intn(3))
			for j := 0; j < k; j++ {
				links = append(links, [2]int32{int32(u), int32(r.Intn(n))})
			}
		}
		sys, err := NewGroupSystem(n, links, deg, nil, 0.85)
		if err != nil {
			return true
		}
		x2 := vecmath.NewVec(n)
		x1 := vecmath.NewVec(n)
		for i := range x2 {
			x2[i] = r.Float64()
			x1[i] = x2[i] + r.Float64() // x1 ≥ x2
		}
		res1, err1 := sys.Solve(vecmath.NewVec(n), x1, Defaults())
		res2, err2 := sys.Solve(vecmath.NewVec(n), x2, Defaults())
		if err1 != nil || err2 != nil {
			return false
		}
		return vecmath.Dominates(res1.Ranks, res2.Ranks, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewGroupSystemErrors(t *testing.T) {
	deg := []int32{1, 1}
	if _, err := NewGroupSystem(2, [][2]int32{{0, 5}}, deg, nil, 0.85); err == nil {
		t.Error("out-of-range link accepted")
	}
	if _, err := NewGroupSystem(2, nil, []int32{1}, nil, 0.85); err == nil {
		t.Error("short degree vector accepted")
	}
	if _, err := NewGroupSystem(2, nil, deg, nil, 1.5); err == nil {
		t.Error("alpha out of range accepted")
	}
	if _, err := NewGroupSystem(2, [][2]int32{{0, 1}}, []int32{0, 0}, nil, 0.85); err == nil {
		t.Error("zero degree with links accepted")
	}
	if _, err := NewGroupSystem(2, nil, deg, vecmath.Const(5, 1), 0.85); err == nil {
		t.Error("wrong-length E accepted")
	}
}

func TestGroupSystemEmpty(t *testing.T) {
	sys, err := NewGroupSystem(0, nil, nil, nil, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Solve(vecmath.NewVec(0), nil, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("empty system did not converge")
	}
}

// Stacking group fixed points with exact afferent vectors reproduces the
// global fixed point — the consistency property that makes DPR1/DPR2
// converge to centralized PageRank.
func TestGroupDecompositionConsistency(t *testing.T) {
	g := genGraph(t, 4000, 17)
	opt := Defaults()
	global, err := Open(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Partition pages into 4 groups round-robin (deliberately bad
	// locality to stress cross-group traffic).
	const k = 4
	groupOf := func(p int32) int { return int(p) % k }
	localIdx := make([]int32, g.NumPages())
	var sizes [k]int
	for p := 0; p < g.NumPages(); p++ {
		localIdx[p] = int32(sizes[groupOf(int32(p))])
		sizes[groupOf(int32(p))]++
	}
	for gi := 0; gi < k; gi++ {
		var links [][2]int32
		deg := make([]int32, sizes[gi])
		x := vecmath.NewVec(sizes[gi])
		for p := 0; p < g.NumPages(); p++ {
			u := int32(p)
			if groupOf(u) == gi {
				deg[localIdx[u]] = int32(g.OutDegree(u))
			}
			for _, v := range g.InternalOut(u) {
				if groupOf(v) != gi {
					continue
				}
				if groupOf(u) == gi {
					links = append(links, [2]int32{localIdx[u], localIdx[v]})
				} else {
					// Afferent link: exact rank flow from the global
					// fixed point.
					x[localIdx[v]] += opt.Alpha * global.Ranks[u] / float64(g.OutDegree(u))
				}
			}
		}
		sys, err := NewGroupSystem(sizes[gi], links, deg, nil, opt.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Solve(vecmath.NewVec(sizes[gi]), x, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Compare against the global ranks restricted to this group.
		for p := 0; p < g.NumPages(); p++ {
			if groupOf(int32(p)) != gi {
				continue
			}
			if math.Abs(res.Ranks[localIdx[p]]-global.Ranks[p]) > 1e-6 {
				t.Fatalf("group %d page %d: local %v != global %v",
					gi, p, res.Ranks[localIdx[p]], global.Ranks[p])
			}
		}
	}
}

func BenchmarkOpen10k(b *testing.B) {
	g := genGraph(b, 10000, 1)
	opt := Defaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassic10k(b *testing.B) {
	g := genGraph(b, 10000, 1)
	opt := Defaults()
	opt.Epsilon = 1e-9
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Classic(g, opt); err != nil {
			b.Fatal(err)
		}
	}
}
