package pagerank

import (
	"fmt"

	"p2prank/internal/vecmath"
	"p2prank/internal/webgraph"
)

// TopicE builds a personalization vector for topic-sensitive PageRank
// (§3 notes the non-uniform-E case "can be used for personalized page
// ranking", citing Jeh & Widom and Haveliwala). Pages of the given
// sites receive `boost` units of rank source, all other pages
// `baseline`. With baseline 0 this is pure topic-restricted
// personalization; with baseline 1 it is the paper's uniform E plus a
// topical boost.
func TopicE(g webgraph.Store, sites []int32, boost, baseline float64) (vecmath.Vec, error) {
	if boost < 0 || baseline < 0 {
		return nil, fmt.Errorf("pagerank: negative personalization weights (%v, %v)", boost, baseline)
	}
	//p2plint:allow floateq -- exact-zero validation of user-supplied weights, not a computed-score comparison
	if boost == 0 && baseline == 0 {
		return nil, fmt.Errorf("pagerank: all-zero personalization vector")
	}
	inTopic := make(map[int32]bool, len(sites))
	for _, s := range sites {
		if s < 0 || int(s) >= g.NumSites() {
			return nil, fmt.Errorf("pagerank: site %d out of range (%d sites)", s, g.NumSites())
		}
		inTopic[s] = true
	}
	e := vecmath.NewVec(g.NumPages())
	for p := 0; p < g.NumPages(); p++ {
		if inTopic[g.SiteOf(int32(p))] {
			e[p] = boost
		} else {
			e[p] = baseline
		}
	}
	return e, nil
}

// SiteRankMass sums the ranks of each site's pages — a coarse
// per-site importance useful for inspecting personalization effects.
func SiteRankMass(g webgraph.Store, ranks vecmath.Vec) (vecmath.Vec, error) {
	if len(ranks) != g.NumPages() {
		return nil, fmt.Errorf("pagerank: rank vector has length %d, want %d", len(ranks), g.NumPages())
	}
	mass := vecmath.NewVec(g.NumSites())
	for p := 0; p < g.NumPages(); p++ {
		mass[g.SiteOf(int32(p))] += ranks[p]
	}
	return mass, nil
}
