package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"

	"p2prank/internal/dprcore"
	"p2prank/internal/metrics"
	"p2prank/internal/search"
	"p2prank/internal/serve"
)

// DegradeBench is the deterministic half of the degraded-serving
// experiment: the ServeBench crawl and query plan, served through a
// SECOND frontend whose shard health comes from the fault lattice and
// whose admission controller sheds on staleness. The bench's "clock"
// is the query index — the partition window, staleness ticks, and
// publish cadence are all expressed in queries, so every outcome
// (which queries shed, which degrade, their coverage and rank error)
// is reproducible. The wall-clock half — latency percentiles and QPS
// pacing — lives in cmd/dprsim, like the serve experiment.
//
// The storm's schedule, for Q queries:
//
//	tick (every Q/16 queries): every shard's staleness +1
//	publish (every Q/8, offset Q/16): republish all shards, staleness 0
//	partition window [Q/4, Q/2): PartitionFrac of the shards become
//	    unreachable AND publishing is suspended — the rankers behind
//	    the cut cannot make progress, so staleness climbs past the
//	    admission bound and the frontend starts shedding
//	heal at Q/2: shards reachable again, but the first post-heal
//	    publish only lands at 9Q/16 — the gap is the recovery time the
//	    row reports
//
// Stragglers (StraggleFrac of the shards) are slow for the whole storm:
// every query touching one hedges to the replica snapshot.
type DegradeBench struct {
	*ServeBench

	PartitionFrac float64
	StraggleFrac  float64

	deg  *serve.Frontend
	dq   *serve.Querier
	base *serve.Querier

	qi      atomic.Int64 // health clock: index of the query being served
	winFrom int
	winTo   int

	answered    int64
	shed        int64
	unavailable int64
	degraded    int64
	coverageSum float64
	rankErrSum  float64
	rankErrN    int64
	recovery    int64 // queries from heal to first full-coverage answer; -1 until seen

	full search.Response // scratch for the ground-truth serve
}

// degradeStalenessBound is the admission staleness bound, in rounds:
// the bench publishes every second tick, so the checkpoint-cadence
// guarantee is 2·Every−1 = 3 rounds. Staleness beyond that means the
// publishers have stalled and load should be refused.
const degradeStalenessBound = 3

// NewDegradeBench builds the degraded tier next to the baseline one.
// partFrac is the fraction of shards cut off during the partition
// window, stragFrac the fraction hedging all storm long.
func NewDegradeBench(w Workload, k, queries int, partFrac, stragFrac float64) (*DegradeBench, error) {
	if queries < 32 {
		return nil, fmt.Errorf("experiments: degrade needs >= 32 queries for its schedule, got %d", queries)
	}
	sb, err := NewServeBench(w, k, queries)
	if err != nil {
		return nil, err
	}
	b := &DegradeBench{
		ServeBench:    sb,
		PartitionFrac: partFrac,
		StraggleFrac:  stragFrac,
		winFrom:       queries / 4,
		winTo:         queries / 2,
		recovery:      -1,
	}

	// The health source is the same fault lattice the injectors cut
	// from, on the query-index axis. The frontend sits on a majority
	// node, so the minority side is what drops out of its fan-outs.
	fcfg := dprcore.FaultConfig{
		PartitionFrac: partFrac,
		PartitionFrom: float64(b.winFrom),
		PartitionTo:   float64(b.winTo),
		StraggleFrac:  stragFrac,
		Seed:          w.Seed,
	}
	if stragFrac > 0 {
		fcfg.StraggleFactor = 1
	}
	at := 0
	for at < k && fcfg.PartitionMinority(at) {
		at++
	}
	health, err := serve.NewLatticeHealth(fcfg, at, func() float64 { return float64(b.qi.Load()) })
	if err != nil {
		return nil, err
	}
	deg, err := serve.NewFrontend(sb.graph, sb.ov, sb.assign, sb.store, serve.Config{
		Text:      sb.text,
		Health:    health,
		Admission: serve.Admission{StalenessBound: degradeStalenessBound},
	})
	if err != nil {
		return nil, err
	}
	b.deg = deg
	b.dq = deg.NewQuerier()

	// Ground truth: a health-free, cache-free frontend over the same
	// snapshots. Degraded answers are scored against what the full
	// fan-out would have returned at the same instant.
	base, err := serve.NewFrontend(sb.graph, sb.ov, sb.assign, sb.store, serve.Config{
		Text: sb.text, CacheEntries: -1,
	})
	if err != nil {
		return nil, err
	}
	b.base = base.NewQuerier()
	return b, nil
}

// Advance runs the schedule up to query i: it must be called before
// serving query i, in order.
func (b *DegradeBench) Advance(i int) error {
	b.qi.Store(int64(i))
	q := len(b.queries)
	if tick := q / 16; tick > 0 && i > 0 && i%tick == 0 {
		b.Tick()
	}
	pub := q / 8
	frozen := b.PartitionFrac > 0 && i >= b.winFrom && i < b.winTo
	if pub > 0 && i%pub == pub/2 && !frozen {
		return b.Republish()
	}
	return nil
}

// Serve answers one query through the degraded tier. The caller times
// this call and nothing else.
func (b *DegradeBench) Serve(req search.Request, resp *search.Response) error {
	return b.dq.Serve(req, resp)
}

// Record classifies query i's outcome: sheds are counted (and their
// error swallowed), degraded answers are scored against the
// ground-truth fan-out, and the first full-coverage answer after the
// heal pins the recovery time. Any other error is the bench's caller's
// problem.
func (b *DegradeBench) Record(i int, req search.Request, resp *search.Response, err error) error {
	if err != nil {
		if errors.Is(err, search.ErrOverloaded) {
			b.shed++
			return nil
		}
		// A query whose every planned shard is behind the cut has
		// nothing to serve from: zero coverage is an error, not a
		// partial answer.
		if errors.Is(err, search.ErrStaleIndex) && i >= b.winFrom && i < b.winTo {
			b.unavailable++
			return nil
		}
		return err
	}
	b.answered++
	if resp.Degraded {
		b.degraded++
		b.coverageSum += resp.Coverage
		if e, ok := b.rankErr(req, resp); ok {
			b.rankErrSum += e
			b.rankErrN++
		}
	}
	if b.recovery < 0 && i >= b.winTo && !resp.Degraded && resp.Coverage == 1 {
		b.recovery = int64(i - b.winTo)
	}
	return nil
}

// rankErr is the recall loss of a degraded answer: the fraction of the
// ground-truth top-k pages the partial fan-out failed to return.
// Queries whose ground truth is empty carry no signal and are skipped.
func (b *DegradeBench) rankErr(req search.Request, resp *search.Response) (float64, bool) {
	if err := b.base.Serve(req, &b.full); err != nil {
		return 0, false
	}
	if len(b.full.Postings) == 0 {
		return 0, false
	}
	got := make(map[int32]bool, len(resp.Postings))
	for _, p := range resp.Postings {
		got[p.Page] = true
	}
	hit := 0
	for _, p := range b.full.Postings {
		if got[p.Page] {
			hit++
		}
	}
	return 1 - float64(hit)/float64(len(b.full.Postings)), true
}

// DegradeRow is one (partition span, straggler fraction) cell of the
// degrade sweep. The wall-clock fields are the caller's.
type DegradeRow struct {
	K       int
	Pages   int
	Queries int64

	PartitionFrac float64
	StraggleFrac  float64

	// Answered, Shed, and Unavailable partition the storm; ShedRate =
	// Shed/Queries. Unavailable counts queries whose every planned
	// shard was behind the cut (zero possible coverage).
	Answered    int64
	Shed        int64
	Unavailable int64
	// Degraded counts partial-coverage answers; MeanCoverage averages
	// their reported shard coverage.
	Degraded     int64
	MeanCoverage float64
	// RankErr is the mean recall loss of degraded answers against the
	// full fan-out at the same instant.
	RankErr float64
	// Hedged counts replica reads for slow shards.
	Hedged int64
	// RecoveryQueries is how many queries after the heal the frontend
	// took to serve its first full-coverage answer again (-1 if never).
	RecoveryQueries int64

	// Caller-measured.
	TargetQPS   int
	AchievedQPS float64
	P50Micros   float64
	P99Micros   float64
	WallSeconds float64
}

// Finish folds the bench's accumulators into a row.
func (b *DegradeBench) Finish() DegradeRow {
	st := b.deg.DegradeStats()
	row := DegradeRow{
		K:               b.K,
		Pages:           b.Pages,
		Queries:         int64(len(b.queries)),
		PartitionFrac:   b.PartitionFrac,
		StraggleFrac:    b.StraggleFrac,
		Answered:        b.answered,
		Shed:            b.shed,
		Unavailable:     b.unavailable,
		Degraded:        b.degraded,
		Hedged:          st.Hedged,
		RecoveryQueries: b.recovery,
	}
	if b.degraded > 0 {
		row.MeanCoverage = b.coverageSum / float64(b.degraded)
	}
	if b.rankErrN > 0 {
		row.RankErr = b.rankErrSum / float64(b.rankErrN)
	}
	return row
}

// RenderDegrade formats the degrade sweep.
func RenderDegrade(rows []DegradeRow) string {
	t := metrics.NewTable("K", "part", "strag", "answered", "shed", "unavail",
		"degraded", "coverage", "rank err", "hedged", "recovery", "QPS", "p50", "p99")
	for _, r := range rows {
		shedRate := 0.0
		if r.Queries > 0 {
			shedRate = float64(r.Shed) / float64(r.Queries)
		}
		recovery := "-"
		if r.RecoveryQueries >= 0 {
			recovery = fmt.Sprintf("%dq", r.RecoveryQueries)
		}
		t.AddRow(r.K,
			fmt.Sprintf("%.0f%%", 100*r.PartitionFrac),
			fmt.Sprintf("%.0f%%", 100*r.StraggleFrac),
			r.Answered,
			fmt.Sprintf("%d (%.0f%%)", r.Shed, 100*shedRate),
			r.Unavailable,
			r.Degraded,
			fmt.Sprintf("%.2f", r.MeanCoverage),
			fmt.Sprintf("%.3f", r.RankErr),
			r.Hedged,
			recovery,
			fmt.Sprintf("%.0f", r.AchievedQPS),
			fmt.Sprintf("%.0fµs", r.P50Micros),
			fmt.Sprintf("%.0fµs", r.P99Micros))
	}
	return t.String()
}
