// Package experiments packages the paper's evaluation section as
// runnable presets: one function per figure/table that builds the
// workload, sweeps the parameters, and returns the series or rows the
// paper plots. cmd/dprsim and the top-level benchmark harness both
// consume these, so the numbers printed by either always come from the
// same code.
//
// Scale note: the paper ranks ~1M real pages (Google programming
// contest crawl, 100 .edu sites) on a simulator. The presets default to
// a generator-calibrated crawl a few tens of thousands of pages large —
// the same site count and link statistics, sized to run in seconds.
// Pass a bigger Pages to approach the paper's scale.
package experiments

import (
	"fmt"

	"p2prank/internal/bwmodel"
	"p2prank/internal/dprcore"
	"p2prank/internal/engine"
	"p2prank/internal/metrics"
	"p2prank/internal/overlay"
	"p2prank/internal/par"
	"p2prank/internal/partition"
	"p2prank/internal/simnet"
	"p2prank/internal/telemetry"
	"p2prank/internal/transport"
	"p2prank/internal/webgraph"
	"p2prank/internal/xrand"
)

// defaultAlpha mirrors engine.Config's Alpha default; presets that rely
// on the default pass it to engine.Reference explicitly.
const defaultAlpha = 0.85

// firstErr returns the first non-nil error of a parallel sweep — the
// same one a serial loop would have stopped at.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Workload describes the synthetic crawl a preset runs on.
type Workload struct {
	// Pages is the crawl size (default 20000).
	Pages int
	// Sites is the number of sites (default 100, the paper's count).
	Sites int
	// Seed drives generation and the experiment (default 1).
	Seed uint64
	// Source, if set, is used verbatim instead of generating — this is
	// how presets run against an mmap-backed on-disk graph (or a real
	// crawl) rather than an in-memory synthetic one. The caller keeps
	// ownership: a Mapped source must stay open for the preset's
	// duration.
	Source webgraph.Store
}

func (w *Workload) defaults() {
	if w.Pages == 0 {
		w.Pages = 20000
	}
	if w.Sites == 0 {
		w.Sites = 100
	}
	if w.Seed == 0 {
		w.Seed = 1
	}
}

// Generate builds the workload's crawl, or returns Source when one is
// set.
func (w Workload) Generate() (webgraph.Store, error) {
	if w.Source != nil {
		return w.Source, nil
	}
	w.defaults()
	cfg := webgraph.DefaultGenConfig(w.Pages)
	if w.Sites <= w.Pages {
		cfg.Sites = w.Sites
	}
	cfg.Seed = w.Seed
	return webgraph.Generate(cfg)
}

// WriteToDisk generates the workload's crawl and writes it at path in
// the version-2 mapped format, without retaining the in-memory graph.
// Pair with webgraph.OpenMapped to run presets at scales where the
// graph must not live in this process's heap.
func (w Workload) WriteToDisk(path string) error {
	g, err := w.Generate()
	if err != nil {
		return err
	}
	return webgraph.WriteMappedFile(path, g)
}

// curveParams are the three (p, T1, T2) settings of Figures 6 and 7.
var curveParams = []struct {
	name     string
	sendProb float64
	t1, t2   float64
}{
	{"A (p=1, T1=0, T2=6)", 1.0, 0, 6},
	{"B (p=0.7, T1=0, T2=6)", 0.7, 0, 6},
	{"C (p=0.7, T1=0, T2=15)", 0.7, 0, 15},
}

// FigureResult is a set of named curves over virtual time.
type FigureResult struct {
	// Curves holds one series per paper curve (A, B, C).
	Curves []*metrics.Series
	// Graph statistics for the caption.
	GraphStats webgraph.Stats
}

// Fig6 reproduces Figure 6: relative error of DPR1 against centralized
// PageRank over time, at K rankers (paper: 1000), for the three
// loss/speed settings.
func Fig6(w Workload, k int, maxTime float64) (*FigureResult, error) {
	return errorOverTime(w, k, maxTime, func(s *engine.Sample) float64 {
		return s.RelErr * 100 // the paper plots percent
	}, "relative error (%)")
}

// Fig7 reproduces Figure 7: the monotone average-rank sequence of DPR1
// at K rankers (paper: 100). The converged level sits near 0.25–0.3
// because 8/15 of links leave the dataset.
func Fig7(w Workload, k int, maxTime float64) (*FigureResult, error) {
	return errorOverTime(w, k, maxTime, func(s *engine.Sample) float64 {
		return s.AvgRank
	}, "average rank")
}

func errorOverTime(w Workload, k int, maxTime float64, metric func(*engine.Sample) float64, _ string) (*FigureResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k = %d, must be positive", k)
	}
	if maxTime <= 0 {
		return nil, fmt.Errorf("experiments: maxTime = %v, must be positive", maxTime)
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	res := &FigureResult{GraphStats: webgraph.ComputeStats(g)}
	// The three curves share one graph, so they share one centralized
	// reference (the dominant fixed cost) and run as independent
	// simulations in parallel — each owns its simulator and rng.
	ref, err := engine.Reference(g, defaultAlpha)
	if err != nil {
		return nil, err
	}
	curves := make([]*metrics.Series, len(curveParams))
	errs := make([]error, len(curveParams))
	par.Default().Run(len(curveParams), func(ci int) {
		cp := curveParams[ci]
		cfg := engine.Config{
			Params:      dprcore.Params{Alg: dprcore.DPR1, SendProb: cp.sendProb, T1: cp.t1, T2: cp.t2},
			Graph:       g,
			K:           k,
			Seed:        w.Seed,
			Reference:   ref,
			SampleEvery: 1,
			MaxTime:     maxTime,
			Transport:   transport.Indirect,
			Strategy:    partition.BySite,
		}
		run, err := engine.Run(cfg)
		if err != nil {
			errs[ci] = fmt.Errorf("experiments: curve %q: %w", cp.name, err)
			return
		}
		s := metrics.NewSeries(cp.name)
		for i := range run.Samples {
			s.Add(run.Samples[i].Time, metric(&run.Samples[i]))
		}
		curves[ci] = s
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	res.Curves = curves
	return res, nil
}

// Fig8Row is one point of Figure 8: iterations to reach the threshold
// relative error for each algorithm at a ranker population.
type Fig8Row struct {
	K    int
	DPR1 float64
	DPR2 float64
	CPR  float64
}

// Fig8 reproduces Figure 8: the number of iterations each algorithm
// needs to reach relative error 0.01%, versus the number of page
// rankers (paper: 2..10000; p=1, T1=T2=15). Pages are partitioned by
// site hash, the paper's recommended strategy; note that a 100-site
// crawl occupies at most 100 rankers, which is also why the paper's
// curve is flat from K=100 to K=10000.
func Fig8(w Workload, ks []int) ([]Fig8Row, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("experiments: no ranker counts")
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	const target = 1e-4 // the paper's 0.01%
	ref, err := engine.Reference(g, defaultAlpha)
	if err != nil {
		return nil, err
	}
	cpr, err := engine.CPRIterationsFrom(g, defaultAlpha, target, ref)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, len(ks))
	for i, k := range ks {
		if k <= 0 {
			return nil, fmt.Errorf("experiments: k = %d, must be positive", k)
		}
		rows[i] = Fig8Row{K: k, CPR: float64(cpr)}
	}
	// Every (K, algorithm) cell is an independent simulation; run the
	// grid in parallel, each job writing only its own row field.
	algs := []dprcore.Algorithm{dprcore.DPR1, dprcore.DPR2}
	errs := make([]error, len(ks)*len(algs))
	par.Default().Run(len(errs), func(job int) {
		k, alg := ks[job/len(algs)], algs[job%len(algs)]
		cfg := engine.Config{
			Params:       dprcore.Params{Alg: alg, T1: 15, T2: 15},
			Graph:        g,
			K:            k,
			Seed:         w.Seed,
			Reference:    ref,
			SampleEvery:  5,
			MaxTime:      6000,
			TargetRelErr: target,
			Strategy:     partition.BySite,
			Transport:    transport.Indirect,
		}
		run, err := engine.Run(cfg)
		if err != nil {
			errs[job] = fmt.Errorf("experiments: fig8 K=%d %v: %w", k, alg, err)
			return
		}
		if run.ConvergedAt < 0 {
			errs[job] = fmt.Errorf("experiments: fig8 K=%d %v did not converge (rel err %v)",
				k, alg, run.RelErr)
			return
		}
		switch alg {
		case dprcore.DPR1:
			rows[job/len(algs)].DPR1 = run.LoopsAtConvergence
		case dprcore.DPR2:
			rows[job/len(algs)].DPR2 = run.LoopsAtConvergence
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderFig8 formats Figure 8 rows as a table.
func RenderFig8(rows []Fig8Row) string {
	t := metrics.NewTable("# of Page Rankers", "DPR1", "DPR2", "CPR")
	for _, r := range rows {
		t.AddRow(r.K, fmt.Sprintf("%.1f", r.DPR1), fmt.Sprintf("%.1f", r.DPR2), fmt.Sprintf("%.0f", r.CPR))
	}
	return t.String()
}

// TransmissionRow compares measured per-iteration traffic of the two
// transmission schemes against the closed-form model (formulas
// 4.1–4.4) at one ranker population.
type TransmissionRow struct {
	K int
	// Measured per-iteration means.
	DirectMsgs, IndirectMsgs   float64
	DirectBytes, IndirectBytes float64
	// Model predictions with the measured h and g plugged in.
	ModelDirectMsgs, ModelIndirectMsgs float64
	AvgHops, AvgNeighbors              float64
}

// Transmission measures both transports at each ranker population and
// returns rows pairing measurement with the §4.4 model. Pages are
// partitioned by URL hash so all ranker pairs communicate, the regime
// formulas 4.1–4.4 assume.
func Transmission(w Workload, ks []int, timePerRun float64) ([]TransmissionRow, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("experiments: no ranker counts")
	}
	if timePerRun <= 0 {
		return nil, fmt.Errorf("experiments: timePerRun must be positive")
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	ref, err := engine.Reference(g, defaultAlpha)
	if err != nil {
		return nil, err
	}
	rows := make([]TransmissionRow, len(ks))
	for i, k := range ks {
		rows[i] = TransmissionRow{K: k}
	}
	// One independent simulation per (K, transport) cell; the Direct and
	// Indirect jobs for a row write disjoint fields.
	kinds := []transport.Kind{transport.Direct, transport.Indirect}
	errs := make([]error, len(ks)*len(kinds))
	par.Default().Run(len(errs), func(job int) {
		ki, kind := job/len(kinds), kinds[job%len(kinds)]
		k := ks[ki]
		cfg := engine.Config{
			Params:      dprcore.Params{Alg: dprcore.DPR1, T1: 3, T2: 3},
			Graph:       g,
			K:           k,
			Seed:        w.Seed,
			Reference:   ref,
			SampleEvery: timePerRun, // one sample at the end
			MaxTime:     timePerRun,
			Strategy:    partition.ByPage,
			Transport:   kind,
		}
		run, err := engine.Run(cfg)
		if err != nil {
			errs[job] = fmt.Errorf("experiments: transmission K=%d %v: %w", k, kind, err)
			return
		}
		iters := run.LoopsAtConvergence
		if iters == 0 {
			iters = 1
		}
		msgs := float64(run.NetStats.MessagesSent) / iters
		bytes := float64(run.NetStats.BytesSent) / iters
		row := &rows[ki]
		switch kind {
		case transport.Direct:
			row.DirectMsgs, row.DirectBytes = msgs, bytes
		case transport.Indirect:
			row.IndirectMsgs, row.IndirectBytes = msgs, bytes
			row.AvgHops, row.AvgNeighbors = run.AvgHops, run.AvgNeighbors
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	for i := range rows {
		p := bwmodel.Params{
			W: float64(w.Pages), N: float64(rows[i].K),
			H: rows[i].AvgHops, L: 100, R: 48, G: rows[i].AvgNeighbors,
		}
		rows[i].ModelDirectMsgs = p.DirectMessages()
		rows[i].ModelIndirectMsgs = p.IndirectMessages()
	}
	return rows, nil
}

// RenderTransmission formats transmission rows as a table.
func RenderTransmission(rows []TransmissionRow) string {
	t := metrics.NewTable("K", "direct msgs/iter", "indirect msgs/iter",
		"model S_dt", "model S_it", "direct B/iter", "indirect B/iter")
	for _, r := range rows {
		t.AddRow(r.K,
			fmt.Sprintf("%.0f", r.DirectMsgs), fmt.Sprintf("%.0f", r.IndirectMsgs),
			fmt.Sprintf("%.0f", r.ModelDirectMsgs), fmt.Sprintf("%.0f", r.ModelIndirectMsgs),
			fmt.Sprintf("%.0f", r.DirectBytes), fmt.Sprintf("%.0f", r.IndirectBytes))
	}
	return t.String()
}

// TrafficRow is one §4.4 traffic measurement taken at the telemetry
// seam: per-iteration chunk, message, and payload-byte counts from the
// in-sim collector, paired with the closed-form model predictions.
type TrafficRow struct {
	K int
	// MeanRounds is the mean committed main-loop count per ranker.
	MeanRounds float64
	// ChunksPerIter counts score chunks emitted per iteration at the
	// dprcore Sender seam (before transport framing).
	ChunksPerIter float64
	// MsgsPerIter counts overlay messages per iteration: each chunk
	// weighted by its route's hop count.
	MsgsPerIter float64
	// BytesPerIter is the per-iteration payload volume (links × l).
	BytesPerIter float64
	// AvgHops is the measured mean overlay hops per chunk.
	AvgHops float64
	// ModelMsgs is formula 4.3's S_it = g·N with the measured overlay
	// neighbor count plugged in.
	ModelMsgs float64
	// ModelBytes is formula 4.1's D_it = h·l·W with the measured h and
	// the links actually shipped per iteration as W·l.
	ModelBytes float64
}

// Traffic reproduces the §4.4 message/data cost table from telemetry:
// each ranker population runs DPR1 under indirect transmission with a
// SimCollector attached, and every measured column comes from the
// collector's Summary — counted at the dprcore seam the paper's model
// describes, not reverse-engineered from transport totals. Pages are
// partitioned by URL hash so all ranker pairs communicate, the regime
// the formulas assume.
func Traffic(w Workload, ks []int, timePerRun float64) ([]TrafficRow, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("experiments: no ranker counts")
	}
	if timePerRun <= 0 {
		return nil, fmt.Errorf("experiments: timePerRun must be positive")
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	ref, err := engine.Reference(g, defaultAlpha)
	if err != nil {
		return nil, err
	}
	rows := make([]TrafficRow, len(ks))
	errs := make([]error, len(ks))
	par.Default().Run(len(ks), func(i int) {
		k := ks[i]
		if k <= 0 {
			errs[i] = fmt.Errorf("experiments: k = %d, must be positive", k)
			return
		}
		col := telemetry.NewSimCollector(k)
		cfg := engine.Config{
			Params:      dprcore.Params{Alg: dprcore.DPR1, T1: 3, T2: 3, Observer: col},
			Graph:       g,
			K:           k,
			Seed:        w.Seed,
			Reference:   ref,
			SampleEvery: timePerRun, // one sample at the end
			MaxTime:     timePerRun,
			Strategy:    partition.ByPage,
			Transport:   transport.Indirect,
		}
		run, err := engine.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: traffic K=%d: %w", k, err)
			return
		}
		sum := run.Telemetry
		if sum == nil {
			errs[i] = fmt.Errorf("experiments: traffic K=%d: no telemetry summary", k)
			return
		}
		iters := sum.MeanRounds()
		if iters == 0 {
			iters = 1
		}
		h := sum.MeanChunkHops()
		bytesPerIter := float64(sum.PayloadBytes) / iters
		rows[i] = TrafficRow{
			K:             k,
			MeanRounds:    sum.MeanRounds(),
			ChunksPerIter: float64(sum.Chunks) / iters,
			MsgsPerIter:   float64(sum.ChunkHops) / iters,
			BytesPerIter:  bytesPerIter,
			AvgHops:       h,
			ModelMsgs: bwmodel.Params{
				W: float64(w.Pages), N: float64(k),
				H: h, L: telemetry.DefaultBytesPerLink, R: 48, G: run.AvgNeighbors,
			}.IndirectMessages(),
			ModelBytes: h * bytesPerIter,
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderTraffic formats §4.4 traffic rows as a table.
func RenderTraffic(rows []TrafficRow) string {
	t := metrics.NewTable("K", "rounds/ranker", "chunks/iter", "msgs/iter",
		"payload B/iter", "hops/chunk", "model S_it", "model D_it")
	for _, r := range rows {
		t.AddRow(r.K,
			fmt.Sprintf("%.1f", r.MeanRounds),
			fmt.Sprintf("%.0f", r.ChunksPerIter), fmt.Sprintf("%.0f", r.MsgsPerIter),
			fmt.Sprintf("%.0f", r.BytesPerIter), fmt.Sprintf("%.2f", r.AvgHops),
			fmt.Sprintf("%.0f", r.ModelMsgs), fmt.Sprintf("%.0f", r.ModelBytes))
	}
	return t.String()
}

// CutRow is the §4.1 partition comparison at one strategy.
type CutRow struct {
	Strategy partition.Strategy
	CutFrac  float64
	MaxPages int
	MinPages int
}

// PartitionCut measures the fraction of internal links crossing ranker
// boundaries under each partitioning strategy — the evidence behind
// §4.1's recommendation of hash-by-site.
func PartitionCut(w Workload, k int) ([]CutRow, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k = %d, must be positive", k)
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	ov, err := engine.BuildOverlay(engine.Pastry, k)
	if err != nil {
		return nil, err
	}
	var rows []CutRow
	for _, strat := range []partition.Strategy{partition.BySite, partition.ByPage, partition.Random} {
		a, err := partition.Assign(g, ov, strat, w.Seed)
		if err != nil {
			return nil, err
		}
		c := partition.Cut(g, a)
		rows = append(rows, CutRow{Strategy: strat, CutFrac: c.CutFrac(), MaxPages: c.MaxPages, MinPages: c.MinPages})
	}
	return rows, nil
}

// RenderCut formats partition-cut rows.
func RenderCut(rows []CutRow) string {
	t := metrics.NewTable("strategy", "cut fraction", "max pages/ranker", "min pages/ranker")
	for _, r := range rows {
		t.AddRow(r.Strategy, fmt.Sprintf("%.4f", r.CutFrac), r.MaxPages, r.MinPages)
	}
	return t.String()
}

// HopsRow pairs an overlay population with its measured mean lookup
// hops — the h(N) inputs of Table 1.
type HopsRow struct {
	N       int
	Hops    float64
	PaperH  float64
	Overlay engine.OverlayKind
}

// OverlayHops measures mean lookup hop counts at each population.
func OverlayHops(kind engine.OverlayKind, ns []int, samples int, seed uint64) ([]HopsRow, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("experiments: samples must be positive")
	}
	rng := xrand.New(seed)
	rows := make([]HopsRow, 0, len(ns))
	for _, n := range ns {
		ov, err := engine.BuildOverlay(kind, n)
		if err != nil {
			return nil, err
		}
		h, err := overlay.AvgHops(ov, samples, rng)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HopsRow{N: n, Hops: h, PaperH: bwmodel.PastryHops(float64(n)), Overlay: kind})
	}
	return rows, nil
}

// BandwidthRow records convergence under one per-node bandwidth budget
// — the measured counterpart of §4.5's constraint 4.7.
type BandwidthRow struct {
	// Bandwidth is the per-node uplink in bytes per virtual time unit
	// (0 = unlimited).
	Bandwidth float64
	// ConvergedAt is the virtual time the target error was reached, or
	// -1 when the horizon expired first.
	ConvergedAt float64
	// FinalRelErr is the relative error at the end of the run.
	FinalRelErr float64
}

// ConvergenceVsBandwidth reruns the same DPR1 workload under shrinking
// per-node uplink budgets. The paper's §4.5 argues analytically that
// bandwidth bounds the iteration interval and hence convergence time;
// here the simulator serializes every message through the sender's
// uplink, so the effect is measured instead of modeled.
func ConvergenceVsBandwidth(w Workload, k int, bws []float64, maxTime float64) ([]BandwidthRow, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k = %d, must be positive", k)
	}
	if len(bws) == 0 {
		return nil, fmt.Errorf("experiments: no bandwidth values")
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	for _, bw := range bws {
		if bw < 0 {
			return nil, fmt.Errorf("experiments: negative bandwidth %v", bw)
		}
	}
	ref, err := engine.Reference(g, defaultAlpha)
	if err != nil {
		return nil, err
	}
	rows := make([]BandwidthRow, len(bws))
	errs := make([]error, len(bws))
	par.Default().Run(len(bws), func(i int) {
		bw := bws[i]
		cfg := engine.Config{
			Params:       dprcore.Params{Alg: dprcore.DPR1, T1: 3, T2: 3},
			Graph:        g,
			K:            k,
			Seed:         w.Seed,
			Reference:    ref,
			SampleEvery:  1,
			MaxTime:      maxTime,
			TargetRelErr: 1e-4,
			Strategy:     partition.BySite,
			Transport:    transport.Indirect,
			Net: simnet.NetConfig{
				MinLatency:    0.05,
				MaxLatency:    0.15,
				NodeBandwidth: bw,
			},
		}
		run, err := engine.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: bandwidth %v: %w", bw, err)
			return
		}
		rows[i] = BandwidthRow{
			Bandwidth:   bw,
			ConvergedAt: run.ConvergedAt,
			FinalRelErr: run.RelErr,
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderBandwidth formats bandwidth-sweep rows.
func RenderBandwidth(rows []BandwidthRow) string {
	t := metrics.NewTable("node bandwidth (B/unit)", "converged at", "final rel err")
	for _, r := range rows {
		conv := "never"
		if r.ConvergedAt >= 0 {
			conv = fmt.Sprintf("%.0f", r.ConvergedAt)
		}
		bw := "unlimited"
		if r.Bandwidth > 0 {
			bw = fmt.Sprintf("%.0f", r.Bandwidth)
		}
		t.AddRow(bw, conv, fmt.Sprintf("%.2e", r.FinalRelErr))
	}
	return t.String()
}

// FaultRow records convergence under one transport fault severity.
type FaultRow struct {
	// DropProb is the injected per-chunk drop probability.
	DropProb float64
	// ConvergedAt is the virtual time the target error was reached, or
	// -1 when the horizon expired first.
	ConvergedAt float64
	// FinalRelErr is the relative error at the end of the run.
	FinalRelErr float64
	// Dropped is how many chunks the injector discarded.
	Dropped int64
}

// Faults reruns the same DPR1 workload under increasing message-drop
// rates injected at the dprcore.FaultSender seam — loss below the
// algorithm's own SendProb parameter, the regime Theorem 4.1 says must
// still converge. Delays and duplicates ride along at a fixed low rate
// so all three fault kinds are exercised.
func Faults(w Workload, k int, drops []float64, maxTime float64) ([]FaultRow, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k = %d, must be positive", k)
	}
	if len(drops) == 0 {
		return nil, fmt.Errorf("experiments: no drop probabilities")
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	ref, err := engine.Reference(g, defaultAlpha)
	if err != nil {
		return nil, err
	}
	rows := make([]FaultRow, len(drops))
	errs := make([]error, len(drops))
	par.Default().Run(len(drops), func(i int) {
		cfg := engine.Config{
			Params:       dprcore.Params{Alg: dprcore.DPR1, T1: 0, T2: 6},
			Graph:        g,
			K:            k,
			Seed:         w.Seed,
			Reference:    ref,
			SampleEvery:  2,
			MaxTime:      maxTime,
			TargetRelErr: 1e-4,
			Strategy:     partition.BySite,
			Transport:    transport.Indirect,
		}
		if drops[i] > 0 {
			cfg.Fault = dprcore.FaultConfig{
				DropProb:  drops[i],
				DelayProb: 0.05,
				MeanDelay: 5,
				DupProb:   0.05,
			}
		}
		run, err := engine.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: drop %v: %w", drops[i], err)
			return
		}
		rows[i] = FaultRow{
			DropProb:    drops[i],
			ConvergedAt: run.ConvergedAt,
			FinalRelErr: run.RelErr,
			Dropped:     run.FaultStats.Dropped,
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// ChurnRow records convergence under one churn severity: a number of
// rankers crashed mid-run and restarted from their checkpoints.
type ChurnRow struct {
	// Crashes is how many rankers crash (and later restart) in the run.
	Crashes int
	// ConvergedAt is the virtual time the target error was reached, or
	// -1 when the horizon expired first.
	ConvergedAt float64
	// FinalRelErr is the relative error at the end of the run.
	FinalRelErr float64
	// Retries and Acks are the reliable layer's counters.
	Retries, Acks int64
	// Recoveries is the number of checkpoint restores performed.
	Recoveries int64
}

// Churn reruns the same DPR1 workload while crashing an increasing
// number of rankers mid-run. Every run carries 10% injected loss, the
// reliable delivery layer, and round-cadence checkpoints; each crashed
// ranker restarts from its last checkpoint a fixed outage later. The
// outage windows sit early in the run so convergence has to ride out
// the churn rather than finish before it.
func Churn(w Workload, k int, crashes []int, maxTime float64) ([]ChurnRow, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k = %d, must be positive", k)
	}
	if len(crashes) == 0 {
		return nil, fmt.Errorf("experiments: no crash counts")
	}
	for _, c := range crashes {
		if c < 0 || c >= k {
			return nil, fmt.Errorf("experiments: %d crashes with %d rankers", c, k)
		}
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	ref, err := engine.Reference(g, defaultAlpha)
	if err != nil {
		return nil, err
	}
	rows := make([]ChurnRow, len(crashes))
	errs := make([]error, len(crashes))
	par.Default().Run(len(crashes), func(i int) {
		// Stagger the outages across the convergence ramp (these
		// T1/T2 settings reach 1e-4 around t≈16-20): ranker j crashes
		// at 6+2j and returns 7 time units later, so the run has to
		// converge through the churn, not after it.
		events := make([]engine.ChurnEvent, crashes[i])
		for j := range events {
			events[j] = engine.ChurnEvent{
				Ranker:         j,
				CrashAt:        6 + 2*float64(j),
				RestartAt:      13 + 2*float64(j),
				FromCheckpoint: true,
			}
		}
		cfg := engine.Config{
			Params: dprcore.Params{
				Alg: dprcore.DPR1, T1: 0.5, T2: 3,
				Fault:    dprcore.FaultConfig{DropProb: 0.1},
				Reliable: dprcore.ReliableConfig{Timeout: 10},
				// Per-round checkpoints: the crashes land early in the
				// ramp, and a sparser cadence would turn them into cold
				// restarts instead of recoveries.
				Checkpoint: dprcore.CheckpointConfig{Every: 1},
			},
			Graph:        g,
			K:            k,
			Seed:         w.Seed,
			Reference:    ref,
			SampleEvery:  2,
			MaxTime:      maxTime,
			TargetRelErr: 1e-4,
			Strategy:     partition.BySite,
			Transport:    transport.Indirect,
			Churn:        events,
		}
		run, err := engine.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: churn %d: %w", crashes[i], err)
			return
		}
		rows[i] = ChurnRow{
			Crashes:     crashes[i],
			ConvergedAt: run.ConvergedAt,
			FinalRelErr: run.RelErr,
			Retries:     run.ReliableStats.Retries,
			Acks:        run.ReliableStats.Acks,
			Recoveries:  run.Recoveries,
		}
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderChurn formats churn-sweep rows.
func RenderChurn(rows []ChurnRow) string {
	t := metrics.NewTable("crashes", "converged at", "final rel err",
		"retries", "acks", "recoveries")
	for _, r := range rows {
		conv := "never"
		if r.ConvergedAt >= 0 {
			conv = fmt.Sprintf("%.0f", r.ConvergedAt)
		}
		t.AddRow(r.Crashes, conv, fmt.Sprintf("%.2e", r.FinalRelErr),
			r.Retries, r.Acks, r.Recoveries)
	}
	return t.String()
}

// RenderFaults formats fault-sweep rows.
func RenderFaults(rows []FaultRow) string {
	t := metrics.NewTable("drop prob", "converged at", "final rel err", "chunks dropped")
	for _, r := range rows {
		conv := "never"
		if r.ConvergedAt >= 0 {
			conv = fmt.Sprintf("%.0f", r.ConvergedAt)
		}
		t.AddRow(fmt.Sprintf("%.2f", r.DropProb), conv,
			fmt.Sprintf("%.2e", r.FinalRelErr), r.Dropped)
	}
	return t.String()
}

// ScaleRow is one decade of the paper-scale run: DPR at K rankers on a
// proportionally sized crawl, with the §4.4–4.5 model validated against
// what the run actually measured. WallSeconds, PeakRSSMB, and
// EventsPerSec are filled by the caller (cmd/dprsim): wall-clock and
// process measurements are banned inside simulation-path packages by
// the nowallclock analyzer, and belong with the process owner anyway.
type ScaleRow struct {
	K     int
	Pages int
	Alg   dprcore.Algorithm
	// RelErr is the final relative error against centralized PageRank.
	RelErr float64
	// MeanRounds is the mean committed loop count per ranker.
	MeanRounds float64
	// Events is the number of simulator events the run executed.
	Events uint64
	// Messages and Bytes are network-level send totals.
	Messages int64
	Bytes    int64
	// AvgHops is the overlay's sampled mean lookup hop count.
	AvgHops float64
	// Validation compares the bwmodel predictions against telemetry.
	Validation []bwmodel.ValidationRow

	// Caller-measured process metrics (see type comment).
	WallSeconds  float64
	PeakRSSMB    float64
	EventsPerSec float64
}

// ScaleMaxTime is the virtual-time horizon of one scale run: with
// T1 = T2 = 3 it gives every ranker ~10 iterations — enough for the
// per-iteration traffic rates to reach steady state without paying for
// a full convergence run at 10⁵ nodes.
const ScaleMaxTime = 30.0

// ScaleWorkload returns the proportionally sized crawl for K rankers:
// 20 pages per ranker (the Fig-6 ratio of 20k pages / 1k rankers),
// keeping per-ranker work constant as K sweeps 10³ → 10⁵.
func ScaleWorkload(k int, seed uint64) Workload {
	return Workload{Pages: 20 * k, Sites: 100, Seed: seed}
}

// ScaleRun executes one decade of the scale experiment: DPR under
// indirect transmission at K rankers, pages partitioned by URL hash
// (the all-pairs regime the §4.4 formulas assume), fixed network
// latency with batched delivery — the configuration the calendar-queue
// scheduler and the coalesced network layer exist for. The returned
// row carries the measured traffic and the bwmodel validation;
// reference ranks are computed per run (the graph differs per K).
func ScaleRun(w Workload, k int, alg dprcore.Algorithm, maxTime float64) (*ScaleRow, error) {
	if k <= 0 {
		return nil, fmt.Errorf("experiments: k = %d, must be positive", k)
	}
	if maxTime <= 0 {
		maxTime = ScaleMaxTime
	}
	w.defaults()
	g, err := w.Generate()
	if err != nil {
		return nil, err
	}
	col := telemetry.NewSimCollector(k)
	cfg := engine.Config{
		Params:      dprcore.Params{Alg: alg, T1: 3, T2: 3, Observer: col},
		Graph:       g,
		K:           k,
		Seed:        w.Seed,
		SampleEvery: maxTime, // one sample at the end
		MaxTime:     maxTime,
		Strategy:    partition.ByPage,
		Transport:   transport.Indirect,
		// Fixed latency makes same-instant deliveries to one node
		// coalesce; BatchDelivery turns the per-message events they
		// would have been into one pooled event per (destination,
		// instant). Off the fingerprint path: scale runs are their own
		// deterministic schedule (see simnet.NetConfig.BatchDelivery).
		Net: simnet.NetConfig{MinLatency: 0.1, MaxLatency: 0.1, BatchDelivery: true},
	}
	res, err := engine.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: scale K=%d: %w", k, err)
	}
	sum := res.Telemetry
	if sum == nil {
		return nil, fmt.Errorf("experiments: scale K=%d: no telemetry summary", k)
	}
	iters := sum.MeanRounds()
	if iters <= 0 {
		iters = 1
	}
	size := transport.DefaultSizeModel()
	ts := res.TransportStats
	obs := bwmodel.IndirectObserved{
		Hops:             res.AvgHops,
		MsgsPerIter:      float64(ts.DataMessages) / iters,
		SeamBytesPerIter: float64(sum.PayloadBytes) / iters,
		WireBytesPerIter: float64(ts.DataBytes-ts.DataMessages*size.HeaderBytes) / iters,
		IterInterval:     maxTime / iters,
		NodeSendRate:     float64(res.NetStats.BytesSent) / (float64(k) * maxTime),
	}
	p := bwmodel.Params{
		W: float64(w.Pages), N: float64(k), H: bwmodel.PastryHops(float64(k)),
		L: telemetry.DefaultBytesPerLink, R: 48, G: res.AvgNeighbors,
	}
	return &ScaleRow{
		K:          k,
		Pages:      w.Pages,
		Alg:        alg,
		RelErr:     res.RelErr,
		MeanRounds: sum.MeanRounds(),
		Events:     res.Events,
		Messages:   res.NetStats.MessagesSent,
		Bytes:      res.NetStats.BytesSent,
		AvgHops:    res.AvgHops,
		Validation: bwmodel.ValidateIndirect(p, obs),
	}, nil
}

// RenderScale formats the scale sweep: the headline wall-time/memory/
// throughput table, then one bwmodel-vs-telemetry validation table per
// decade of K.
func RenderScale(rows []*ScaleRow) string {
	t := metrics.NewTable("alg", "K", "pages", "rounds", "rel err", "events",
		"events/s", "msgs", "bytes", "wall", "peak RSS")
	for _, r := range rows {
		t.AddRow(r.Alg, r.K, r.Pages,
			fmt.Sprintf("%.1f", r.MeanRounds),
			fmt.Sprintf("%.2e", r.RelErr),
			r.Events,
			fmt.Sprintf("%.2e", r.EventsPerSec),
			r.Messages, r.Bytes,
			fmt.Sprintf("%.1fs", r.WallSeconds),
			fmt.Sprintf("%.0fMB", r.PeakRSSMB))
	}
	out := t.String()
	for _, r := range rows {
		out += fmt.Sprintf("\n%s K=%d: model vs telemetry\n%s",
			r.Alg, r.K, bwmodel.RenderValidation(r.Validation))
	}
	return out
}
