package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"p2prank/internal/dprcore"
	"p2prank/internal/webgraph"
)

// TestScaleSmoke runs one decade of the scale experiment (N = 10⁴,
// bounded virtual-time horizon) end to end: calendar-queue scheduler,
// batched delivery, sparse transport outbox, and the bwmodel validation
// table. It takes on the order of a minute, so it is opt-in:
//
//	P2PRANK_SCALE=1 go test ./internal/experiments -run TestScaleSmoke -v -timeout 20m
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("P2PRANK_SCALE") == "" {
		t.Skip("set P2PRANK_SCALE=1 to run the 10⁴-ranker scale smoke")
	}
	const k = 10_000
	w := ScaleWorkload(k, 1)
	// Run off the on-disk store, as `dprsim -exp scale` does by default:
	// generate once, write the mapped format, and rank the mmapped file
	// so the graph never sits on this process's heap.
	path := filepath.Join(t.TempDir(), "scale.bin")
	if err := w.WriteToDisk(path); err != nil {
		t.Fatal(err)
	}
	m, err := webgraph.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	w.Source = m
	row, err := ScaleRun(w, k, dprcore.DPR1, ScaleMaxTime)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("K=%d pages=%d rounds=%.1f relerr=%.3g events=%d msgs=%d bytes=%d",
		row.K, row.Pages, row.MeanRounds, row.RelErr, row.Events, row.Messages, row.Bytes)
	if row.MeanRounds < 2 {
		t.Fatalf("rankers barely iterated: %.2f mean rounds", row.MeanRounds)
	}
	if row.Events == 0 || row.Messages == 0 {
		t.Fatalf("vacuous run: %+v", row)
	}
	if row.RelErr <= 0 || row.RelErr >= 1 {
		t.Fatalf("relative error %v outside (0, 1) after %v time units", row.RelErr, ScaleMaxTime)
	}
	// The validation table must exist and be sane: every measured value
	// within an order of magnitude of its prediction (the model is
	// asymptotic; ratios near 1 are the expected regime, 10× would mean
	// the accounting is wired to the wrong counter).
	if len(row.Validation) == 0 {
		t.Fatal("no validation rows")
	}
	for _, v := range row.Validation {
		r := v.Ratio()
		if !(r > 0.1 && r < 10) {
			t.Errorf("%s: measured/predicted = %.3f (predicted %g, measured %g)",
				v.Quantity, r, v.Predicted, v.Measured)
		}
	}
	t.Log("\n" + RenderScale([]*ScaleRow{row}))
}
